package barytree_test

import (
	"math/rand"
	"sync"
	"testing"

	"barytree"
)

// TestPlanSolveMatchesSolve pins the Plan reuse contract: solving through a
// cached Plan is byte-identical (exact ==) to the one-shot Solve for the
// same geometry, charges and kernel, for several kernels on one plan.
func TestPlanSolveMatchesSolve(t *testing.T) {
	pts := barytree.UniformCube(3000, 61)
	p := smallParams()
	pl, err := barytree.NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumTargets() != 3000 || pl.NumSources() != 3000 {
		t.Fatalf("counts %d/%d", pl.NumTargets(), pl.NumSources())
	}
	for _, k := range []barytree.Kernel{barytree.Coulomb(), barytree.Yukawa(0.5)} {
		want, err := barytree.Solve(k, pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.Solve(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: potential %d: plan %g vs solve %g", k.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestPlanSolveWithCharges pins the charge-replacement path: Plan.Solve
// with explicit charges equals a from-scratch Solve on a particle set
// carrying those charges, exactly.
func TestPlanSolveWithCharges(t *testing.T) {
	pts := barytree.UniformCube(2500, 62)
	p := smallParams()
	k := barytree.Coulomb()
	pl, err := barytree.NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	q := make([]float64, pts.Len())
	for i := range q {
		q[i] = 2*rng.Float64() - 1
	}
	got, err := pl.Solve(k, q)
	if err != nil {
		t.Fatal(err)
	}
	mod := pts.Clone()
	copy(mod.Q, q)
	want, err := barytree.Solve(k, mod, mod, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("potential %d: plan %g vs solve %g", i, got[i], want[i])
		}
	}
	if _, err := pl.Solve(k, q[:10]); err == nil {
		t.Fatal("wrong charge count accepted")
	}
}

// TestPlanSolveConcurrent shares one Plan across goroutines, each solving
// with its own charge vector, and checks every result bit-for-bit against
// a serial Plan.Solve with the same charges. Run under -race this is the
// immutability proof of the shared plan.
func TestPlanSolveConcurrent(t *testing.T) {
	pts := barytree.UniformCube(2000, 64)
	p := smallParams()
	k := barytree.Yukawa(0.25)
	pl, err := barytree.NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	charges := make([][]float64, goroutines)
	want := make([][]float64, goroutines)
	for g := range charges {
		rng := rand.New(rand.NewSource(int64(100 + g)))
		q := make([]float64, pts.Len())
		for i := range q {
			q[i] = 2*rng.Float64() - 1
		}
		charges[g] = q
		w, err := pl.Solve(k, q)
		if err != nil {
			t.Fatal(err)
		}
		want[g] = w
	}
	var wg sync.WaitGroup
	errs := make([]string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := pl.Solve(k, charges[g])
			if err != nil {
				errs[g] = err.Error()
				return
			}
			for i := range got {
				if got[i] != want[g][i] {
					errs[g] = "mismatch"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e != "" {
			t.Fatalf("goroutine %d: %s", g, e)
		}
	}
}

// TestSolverFromPlanSharesPlan builds two independent Solvers on one Plan
// and checks they iterate independently with exact agreement against
// Plan.Solve.
func TestSolverFromPlanSharesPlan(t *testing.T) {
	pts := barytree.UniformCube(2000, 65)
	p := smallParams()
	k := barytree.Coulomb()
	pl, err := barytree.NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	s1 := barytree.NewSolverFromPlan(k, pl)
	s2 := barytree.NewSolverFromPlan(k, pl)
	if s1.Plan() != pl || s2.Plan() != pl {
		t.Fatal("solvers do not share the plan")
	}
	rng := rand.New(rand.NewSource(66))
	q1 := make([]float64, pts.Len())
	q2 := make([]float64, pts.Len())
	for i := range q1 {
		q1[i] = 2*rng.Float64() - 1
		q2[i] = 2*rng.Float64() - 1
	}
	got1, err := s1.MatVec(q1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s2.MatVec(q2)
	if err != nil {
		t.Fatal(err)
	}
	want1, err := pl.Solve(k, q1)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := pl.Solve(k, q2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want1 {
		if got1[i] != want1[i] || got2[i] != want2[i] {
			t.Fatalf("solver-from-plan mismatch at %d", i)
		}
	}
	// s1's state must be unaffected by s2's iteration: repeat without update.
	again := s1.Potentials()
	for i := range want1 {
		if again[i] != want1[i] {
			t.Fatalf("solver state perturbed by sibling at %d", i)
		}
	}
}

// TestPlanSolveWithFieldMatchesOneShot pins the stepping path: potentials
// and gradients through a cached Plan are byte-identical to the one-shot
// SolveWithField, for both the midpoint and the Morton build.
func TestPlanSolveWithFieldMatchesOneShot(t *testing.T) {
	pts := barytree.UniformCube(2500, 64)
	k := barytree.Coulomb()
	for _, morton := range []bool{false, true} {
		p := smallParams()
		p.Morton = morton
		want, err := barytree.SolveWithField(k, pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := barytree.NewPlan(pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.SolveWithField(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Phi {
			if got.Phi[i] != want.Phi[i] || got.GX[i] != want.GX[i] ||
				got.GY[i] != want.GY[i] || got.GZ[i] != want.GZ[i] {
				t.Fatalf("morton=%v: field %d differs: plan (%g,%g,%g,%g) vs one-shot (%g,%g,%g,%g)",
					morton, i, got.Phi[i], got.GX[i], got.GY[i], got.GZ[i],
					want.Phi[i], want.GX[i], want.GY[i], want.GZ[i])
			}
		}
	}
}

// TestPlanUpdate pins the public update contract end to end: a zero-drift
// Update refits and solves byte-identically to the pre-update plan, and an
// Update that restructures solves byte-identically to a one-shot Solve at
// the new positions.
func TestPlanUpdate(t *testing.T) {
	pts := barytree.UniformCube(2500, 65)
	p := smallParams()
	p.Morton = true
	p.LeafSize, p.BatchSize = 100, 100
	k := barytree.Coulomb()
	pl, err := barytree.NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	pl.SetTracer(barytree.NewTracer())
	before, err := pl.Solve(k, nil)
	if err != nil {
		t.Fatal(err)
	}

	st, err := pl.Update(pts.X, pts.Y, pts.Z)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action != barytree.UpdateRefit {
		t.Fatalf("zero drift took %v, want refit", st.Action)
	}
	after, err := pl.Solve(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("zero-drift update changed potential %d: %g vs %g", i, after[i], before[i])
		}
	}

	// Teleport a block of particles; whichever non-refit path runs, the
	// plan must solve exactly like a one-shot at the new positions.
	rng := rand.New(rand.NewSource(66))
	moved := pts.Clone()
	for m := 0; m < 100; m++ {
		i := rng.Intn(pts.Len())
		moved.X[i] = 1.8*rng.Float64() - 0.9
		moved.Y[i] = 1.8*rng.Float64() - 0.9
		moved.Z[i] = 1.8*rng.Float64() - 0.9
	}
	st, err = pl.Update(moved.X, moved.Y, moved.Z)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action == barytree.UpdateRefit {
		t.Fatalf("teleported block still refit: %+v", st)
	}
	got, err := pl.Solve(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := barytree.Solve(k, moved, moved, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-%v potential %d: plan %g vs one-shot %g", st.Action, i, got[i], want[i])
		}
	}
}
