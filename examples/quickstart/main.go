// Quickstart: compute Coulomb potentials for 20,000 random particles with
// the barycentric Lagrange treecode, on the CPU and on a simulated GPU,
// and verify the accuracy against exact direct summation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"barytree"
)

func main() {
	const n = 20_000

	// Particles uniformly random in [-1,1]^3 with charges in [-1,1] — the
	// distribution used throughout the paper's experiments.
	pts := barytree.UniformCube(n, 1)

	// Treecode parameters (Section 2.4 of the paper): MAC parameter
	// theta, interpolation degree, and leaf/batch sizes. theta=0.8, n=8
	// give 5-6 digit accuracy.
	params := barytree.Params{Theta: 0.8, Degree: 8, LeafSize: 1000, BatchSize: 1000}
	k := barytree.Coulomb()

	// The one-call API: potentials in input order.
	phi, err := barytree.Solve(k, pts, pts, params)
	if err != nil {
		log.Fatal(err)
	}

	// Exact reference by O(N^2) direct summation.
	ref := barytree.DirectSum(k, pts, pts)
	fmt.Printf("treecode vs direct sum: relative 2-norm error %.2e\n",
		barytree.RelErr2(ref, phi))

	// The same computation on a simulated Titan V: identical numerics,
	// plus modeled phase times for the paper's hardware.
	gpu, err := barytree.SolveDevice(k, pts, pts, params, barytree.DeviceConfig{GPU: barytree.TitanV})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device result deviates from CPU by %.2e\n", barytree.RelErr2(phi, gpu.Phi))
	fmt.Printf("modeled Titan V times: %v\n", gpu.Times)

	cpu, err := barytree.SolveCPU(k, pts, pts, params, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled 6-core CPU times: %v\n", cpu.Times)
}
