// Yukawa plasma: screened electrostatics in a Debye plasma. The Yukawa
// potential G(x,y) = exp(-kappa|x-y|)/|x-y| models electrostatic
// interactions screened by mobile charges with inverse Debye length kappa
// (one of the paper's two benchmark kernels, kappa = 0.5).
//
// This example sweeps the screening length and shows (1) the treecode
// error is insensitive to kappa (kernel independence in action) and
// (2) stronger screening weakens the far field, visible in the total
// electrostatic energy.
//
//	go run ./examples/yukawa-plasma
package main

import (
	"fmt"
	"log"

	"barytree"
)

func main() {
	const n = 15_000
	pts := barytree.UniformCube(n, 7)
	params := barytree.Params{Theta: 0.7, Degree: 7, LeafSize: 800, BatchSize: 800}

	fmt.Println("kappa    rel.err    energy U = 1/2 sum q_i phi_i")
	for _, kappa := range []float64{0.0, 0.25, 0.5, 1.0, 2.0} {
		k := barytree.Yukawa(kappa)
		phi, err := barytree.Solve(k, pts, pts, params)
		if err != nil {
			log.Fatal(err)
		}
		// Sampled error against the exact direct sum.
		sample := barytree.SampleIndices(n, 500, 11)
		ref := barytree.DirectSumAt(k, pts, sample, pts)
		approx := make([]float64, len(sample))
		for i, idx := range sample {
			approx[i] = phi[idx]
		}
		var energy float64
		for i := 0; i < n; i++ {
			energy += 0.5 * pts.Q[i] * phi[i]
		}
		fmt.Printf("%5.2f   %.2e   %+.4f\n", kappa, barytree.RelErr2(ref, approx), energy)
	}
	fmt.Println("\nkappa = 0 is the bare Coulomb limit; screening shrinks |U| monotonically.")
}
