// Kernel independence: the BLTC needs nothing from a kernel except point
// evaluations, so user-defined kernels plug in directly — no multipole
// expansions, no Taylor coefficients, no kernel-specific code (Section 1
// of the paper contrasts this with kernel-specific FMMs).
//
// This example sums three kernels the library does not special-case:
// a 6-12 Lennard-Jones-like tail, an exponential (Slater) kernel, and the
// multiquadric RBF, verifying each against direct summation.
//
//	go run ./examples/custom-kernel
package main

import (
	"fmt"
	"log"
	"math"

	"barytree"
)

func main() {
	const n = 40_000
	pts := barytree.UniformCube(n, 9)
	// Geometry matters at small N: the leaf bound of 700 makes the octree
	// terminate with ~625-particle leaves at depth 2 — deep enough that
	// well-separated batch/cluster pairs exist for theta = 0.6, and large
	// enough that leaves exceed the (n+1)^3 = 216 interpolation points
	// (otherwise the cluster-size check routes everything to exact direct
	// summation and the error would be machine precision, not a test of
	// the interpolation at all).
	params := barytree.Params{Theta: 0.6, Degree: 5, LeafSize: 700, BatchSize: 700}

	kernels := []barytree.Kernel{
		// Attractive dispersion tail ~ -1/r^6 (regularized at the origin).
		barytree.KernelFunc("dispersion-r6", func(tx, ty, tz, sx, sy, sz float64) float64 {
			dx, dy, dz := tx-sx, ty-sy, tz-sz
			r2 := dx*dx + dy*dy + dz*dz + 1e-4
			return -1 / (r2 * r2 * r2)
		}, 14, 12),
		// Slater-type orbital kernel exp(-2r).
		barytree.KernelFunc("slater", func(tx, ty, tz, sx, sy, sz float64) float64 {
			dx, dy, dz := tx-sx, ty-sy, tz-sz
			return math.Exp(-2 * math.Sqrt(dx*dx+dy*dy+dz*dz))
		}, 40, 22),
		// Multiquadric RBF (built-in, but exercised the same way).
		barytree.Multiquadric(0.8),
	}

	fmt.Println("kernel            rel.err     (vs direct summation at 400 sampled targets)")
	for _, k := range kernels {
		phi, err := barytree.Solve(k, pts, pts, params)
		if err != nil {
			log.Fatal(err)
		}
		sample := barytree.SampleIndices(n, 400, 10)
		ref := barytree.DirectSumAt(k, pts, sample, pts)
		approx := make([]float64, len(sample))
		for i, idx := range sample {
			approx[i] = phi[idx]
		}
		fmt.Printf("%-16s  %.2e\n", k.Name(), barytree.RelErr2(ref, approx))
	}
	fmt.Println("\nEvery kernel went through the identical treecode machinery: build tree,")
	fmt.Println("interpolate G at Chebyshev points, modified charges, batch/cluster sums.")
}
