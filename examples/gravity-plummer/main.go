// Gravitational N-body: potentials of a Plummer star cluster, the classic
// astrophysical treecode workload (Barnes & Hut 1986 — reference [3] of
// the paper). Uses the Plummer-softened kernel 1/sqrt(r^2 + eps^2) and the
// *distributed* backend: the cluster is decomposed over 4 simulated GPUs
// with recursive coordinate bisection, each rank builds a locally
// essential tree via one-sided RMA, and per-rank devices evaluate the
// potentials.
//
//	go run ./examples/gravity-plummer
package main

import (
	"fmt"
	"log"
	"math"

	"barytree"
)

func main() {
	const (
		n     = 30_000
		eps   = 0.01 // Plummer softening
		ranks = 4
	)
	// Equal-mass stars sampled from the Plummer profile (scale radius 1).
	stars := barytree.PlummerSphere(n, 1.0, 3)
	k := barytree.RegularizedCoulomb(eps)
	params := barytree.Params{Theta: 0.7, Degree: 6, LeafSize: 500, BatchSize: 500}

	res, err := barytree.SolveDistributed(k, stars, params, barytree.DistributedConfig{
		Ranks: ranks, GPU: barytree.P100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy at sampled stars.
	sample := barytree.SampleIndices(n, 300, 4)
	ref := barytree.DirectSumAt(k, stars, sample, stars)
	approx := make([]float64, len(sample))
	for i, idx := range sample {
		approx[i] = res.Phi[idx]
	}
	fmt.Printf("distributed treecode over %d ranks: rel err %.2e\n",
		ranks, barytree.RelErr2(ref, approx))
	fmt.Printf("modeled times (max over ranks): %v\n", res.Times)

	// Physics check: the total potential energy of a Plummer sphere with
	// total mass M = 1 and scale radius a = 1 is W = -3*pi/32 (in G = 1
	// units); phi here is positive (kernel 1/r), so W = -1/2 sum m_i phi_i.
	var w float64
	for i := 0; i < n; i++ {
		w -= 0.5 * stars.Q[i] * res.Phi[i]
	}
	exact := -3 * math.Pi / 32
	fmt.Printf("potential energy: measured %+.4f, Plummer theory %+.4f (%.1f%% off)\n",
		w, exact, 100*math.Abs((w-exact)/exact))

	// Per-rank phase profile: the distributed accounting of Figure 6.
	for r, t := range res.RankTimes {
		fmt.Printf("  rank %d: %v\n", r, t)
	}
}
