// N-body dynamics: kick-drift-kick leapfrog integration of a self-
// gravitating cluster with treecode forces. This is the canonical
// downstream use of a gravitational treecode (Barnes & Hut's original
// application): every step needs the field at every particle, computed
// here via SolveWithField — the potential gradient obtained from the same
// modified charges as the potential itself.
//
// The demo integrates a Plummer cluster for a few dynamical times and
// reports total-energy drift, the standard quality metric for N-body
// integrators: with a symplectic integrator and accurate forces the drift
// stays small and non-secular.
//
//	go run ./examples/nbody-leapfrog
package main

import (
	"fmt"
	"log"
	"math"

	"barytree"
)

func main() {
	const (
		n     = 4_000
		eps   = 0.05 // Plummer softening
		dt    = 0.01
		steps = 100
	)
	stars := barytree.PlummerSphere(n, 1.0, 17)
	k := barytree.RegularizedCoulomb(eps)
	params := barytree.Params{Theta: 0.6, Degree: 6, LeafSize: 300, BatchSize: 300}

	// Cold-ish start: small random velocities (the cluster contracts and
	// oscillates; energy must still be conserved).
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)

	field := func() *barytree.FieldResult {
		f, err := barytree.SolveWithField(k, stars, stars, params)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	energy := func(f *barytree.FieldResult) (kin, pot float64) {
		for i := 0; i < n; i++ {
			m := stars.Q[i]
			kin += 0.5 * m * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i])
			pot -= 0.5 * m * f.Phi[i] // gravity: U = -1/2 sum m_i phi_i
		}
		return kin, pot
	}

	f := field()
	k0, p0 := energy(f)
	e0 := k0 + p0
	fmt.Printf("step %3d: K=%+.5f U=%+.5f E=%+.6f\n", 0, k0, p0, e0)

	var maxDrift float64
	for s := 1; s <= steps; s++ {
		// Kick (half): a = -grad phi (attractive; phi > 0 for kernel 1/r).
		for i := 0; i < n; i++ {
			vx[i] += 0.5 * dt * f.GX[i]
			vy[i] += 0.5 * dt * f.GY[i]
			vz[i] += 0.5 * dt * f.GZ[i]
		}
		// Drift.
		for i := 0; i < n; i++ {
			stars.X[i] += dt * vx[i]
			stars.Y[i] += dt * vy[i]
			stars.Z[i] += dt * vz[i]
		}
		// New forces (tree rebuilt: positions moved).
		f = field()
		// Kick (half).
		for i := 0; i < n; i++ {
			vx[i] += 0.5 * dt * f.GX[i]
			vy[i] += 0.5 * dt * f.GY[i]
			vz[i] += 0.5 * dt * f.GZ[i]
		}
		if s%20 == 0 {
			kin, pot := energy(f)
			drift := math.Abs((kin + pot - e0) / e0)
			if drift > maxDrift {
				maxDrift = drift
			}
			fmt.Printf("step %3d: K=%+.5f U=%+.5f E=%+.6f  |dE/E|=%.2e\n", s, kin, pot, kin+pot, drift)
		}
	}
	fmt.Printf("\nmax relative energy drift over %d steps: %.2e\n", steps, maxDrift)
	fmt.Println("(leapfrog is symplectic: with accurate treecode forces the drift is small and bounded)")
}
