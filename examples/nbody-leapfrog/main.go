// N-body dynamics: kick-drift-kick leapfrog integration of a self-
// gravitating cluster with treecode forces. This is the canonical
// downstream use of a gravitational treecode (Barnes & Hut's original
// application): every step needs the field at every particle, computed
// here via Plan.SolveWithField — the potential gradient obtained from the
// same modified charges as the potential itself.
//
// The plan is built once and then follows the particles with Plan.Update:
// each step the plan picks the cheapest exact structural path (box refit,
// local tree repair, or full rebuild) instead of paying the whole setup
// phase again. The demo integrates a Plummer cluster for a few dynamical
// times and reports total-energy drift — the standard quality metric for
// N-body integrators — plus the breakdown of update actions taken.
//
//	go run ./examples/nbody-leapfrog
package main

import (
	"fmt"
	"log"
	"math"

	"barytree"
)

func main() {
	const (
		n     = 4_000
		eps   = 0.05 // Plummer softening
		dt    = 0.01
		steps = 100
	)
	stars := barytree.PlummerSphere(n, 1.0, 17)
	k := barytree.RegularizedCoulomb(eps)
	params := barytree.Params{Theta: 0.6, Degree: 6, LeafSize: 300, BatchSize: 300, Morton: true}

	// Build the plan once; Plan.Update keeps it exact as the cluster moves.
	pl, err := barytree.NewPlan(stars, stars, params)
	if err != nil {
		log.Fatal(err)
	}
	x := append([]float64(nil), stars.X...)
	y := append([]float64(nil), stars.Y...)
	z := append([]float64(nil), stars.Z...)

	// Cold-ish start: zero velocities (the cluster contracts and
	// oscillates; energy must still be conserved).
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)

	field := func() *barytree.FieldResult {
		f, err := pl.SolveWithField(k, nil)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}

	energy := func(f *barytree.FieldResult) (kin, pot float64) {
		for i := 0; i < n; i++ {
			m := stars.Q[i]
			kin += 0.5 * m * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i])
			pot -= 0.5 * m * f.Phi[i] // gravity: U = -1/2 sum m_i phi_i
		}
		return kin, pot
	}

	f := field()
	k0, p0 := energy(f)
	e0 := k0 + p0
	fmt.Printf("step %3d: K=%+.5f U=%+.5f E=%+.6f\n", 0, k0, p0, e0)

	actions := map[barytree.UpdateAction]int{}
	var maxDrift float64
	for s := 1; s <= steps; s++ {
		// Kick (half): a = +grad phi for phi = sum m/r (attractive).
		for i := 0; i < n; i++ {
			vx[i] += 0.5 * dt * f.GX[i]
			vy[i] += 0.5 * dt * f.GY[i]
			vz[i] += 0.5 * dt * f.GZ[i]
		}
		// Drift.
		for i := 0; i < n; i++ {
			x[i] += dt * vx[i]
			y[i] += dt * vy[i]
			z[i] += dt * vz[i]
		}
		// Follow the particles: refit boxes, repair the tree, or rebuild —
		// whichever is the cheapest path that keeps the plan exact.
		st, err := pl.Update(x, y, z)
		if err != nil {
			log.Fatal(err)
		}
		actions[st.Action]++
		// New forces on the maintained plan.
		f = field()
		// Kick (half).
		for i := 0; i < n; i++ {
			vx[i] += 0.5 * dt * f.GX[i]
			vy[i] += 0.5 * dt * f.GY[i]
			vz[i] += 0.5 * dt * f.GZ[i]
		}
		if s%20 == 0 {
			kin, pot := energy(f)
			drift := math.Abs((kin + pot - e0) / e0)
			if drift > maxDrift {
				maxDrift = drift
			}
			fmt.Printf("step %3d: K=%+.5f U=%+.5f E=%+.6f  |dE/E|=%.2e\n", s, kin, pot, kin+pot, drift)
		}
	}
	fmt.Printf("\nmax relative energy drift over %d steps: %.2e\n", steps, maxDrift)
	fmt.Printf("update actions: refit %d, repair %d, rebuild %d\n",
		actions[barytree.UpdateRefit], actions[barytree.UpdateRepair], actions[barytree.UpdateRebuild])
	fmt.Println("(leapfrog is symplectic: with accurate treecode forces the drift is small and bounded)")
}
