// Boundary-element solvation: the treecode as the summation engine of a
// boundary integral Poisson-Boltzmann solver (the application in reference
// [33] of the paper, where this GPU BLTC is deployed). In such solvers the
// "particles" are quadrature points of a discretized surface integral:
// sources live on the molecular surface with quadrature weights as
// charges, and the screened (Yukawa) kernel encodes the ionic solvent.
//
// This example discretizes a spherical "molecule" of radius R with a
// Fibonacci quadrature, places a screened surface charge density on it,
// and evaluates the potential it induces at interior probe points with
// targets != sources — the regime the treecode's batch machinery was
// designed for. For a uniformly charged sphere the exterior Yukawa
// potential has a closed form, giving an analytic accuracy check on top of
// the direct-sum comparison.
//
//	go run ./examples/bem-solvation
package main

import (
	"fmt"
	"log"
	"math"

	"barytree"
)

func main() {
	const (
		nSurf  = 40_000 // surface quadrature points
		nProbe = 2_000  // exterior probe points
		radius = 1.0
		kappa  = 0.8 // inverse Debye length of the solvent
		sigma  = 1.0 // uniform surface charge density
	)

	// Fibonacci-lattice quadrature on the sphere: near-uniform points,
	// each carrying weight sigma * area/nSurf as its "charge".
	surface := barytree.NewParticles(nSurf)
	area := 4 * math.Pi * radius * radius
	w := sigma * area / float64(nSurf)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < nSurf; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(nSurf)
		r := math.Sqrt(1 - z*z)
		phi := golden * float64(i)
		surface.Append(radius*r*math.Cos(phi), radius*r*math.Sin(phi), radius*z, w)
	}

	// Exterior probes on a shell at 2R (targets distinct from sources).
	probes := barytree.NewParticles(nProbe)
	for i := 0; i < nProbe; i++ {
		z := 1 - 2*(float64(i)+0.5)/float64(nProbe)
		r := math.Sqrt(1 - z*z)
		phi := golden * float64(i) * 1.7
		probes.Append(2*radius*r*math.Cos(phi), 2*radius*r*math.Sin(phi), 2*radius*z, 0)
	}

	k := barytree.Yukawa(kappa)
	// Leaf bound 700 makes the octree keep ~625-point leaves (above the
	// (6+1)^3 = 343 interpolation points), so far-field surface clusters
	// really are approximated rather than summed directly.
	params := barytree.Params{Theta: 0.6, Degree: 6, LeafSize: 700, BatchSize: 250}
	res, err := barytree.SolveDevice(k, probes, surface, params, barytree.DeviceConfig{GPU: barytree.P100})
	if err != nil {
		log.Fatal(err)
	}

	// Check 1: against exact direct summation at sampled probes.
	sample := barytree.SampleIndices(nProbe, 400, 5)
	ref := barytree.DirectSumAt(k, probes, sample, surface)
	approx := make([]float64, len(sample))
	for i, idx := range sample {
		approx[i] = res.Phi[idx]
	}
	fmt.Printf("treecode vs direct quadrature sum: rel err %.2e\n", barytree.RelErr2(ref, approx))

	// Check 2: against the analytic exterior potential of a uniformly
	// charged sphere in screened electrostatics,
	//   phi(r) = sigma * 4*pi*R^2 * sinh(kappa R)/(kappa R) * exp(-kappa r)/r,
	// which the quadrature itself approaches as nSurf grows.
	rp := 2 * radius
	analytic := sigma * area * math.Sinh(kappa*radius) / (kappa * radius) * math.Exp(-kappa*rp) / rp
	var mean float64
	for _, v := range res.Phi {
		mean += v
	}
	mean /= float64(nProbe)
	fmt.Printf("mean probe potential %.6f vs analytic %.6f (%.3f%% off)\n",
		mean, analytic, 100*math.Abs(mean-analytic)/analytic)
	fmt.Printf("modeled P100 times: %v\n", res.Times)
}
