package barytree_test

import (
	"math/rand"
	"testing"

	"barytree"
)

func TestSolverMatchesSolve(t *testing.T) {
	pts := barytree.UniformCube(3000, 41)
	k := barytree.Yukawa(0.5)
	p := smallParams()
	want, err := barytree.Solve(k, pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := barytree.NewSolver(k, pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Potentials()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("potential %d: solver %g vs solve %g", i, got[i], want[i])
		}
	}
	if s.NumTargets() != 3000 || s.NumSources() != 3000 {
		t.Errorf("counts %d/%d", s.NumTargets(), s.NumSources())
	}
}

func TestSolverUpdateCharges(t *testing.T) {
	pts := barytree.UniformCube(2500, 42)
	k := barytree.Coulomb()
	p := smallParams()
	s, err := barytree.NewSolver(k, pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.Potentials() // warm: charges for original Q

	// New charges; the solver must match a from-scratch solve on a
	// particle set with those charges.
	rng := rand.New(rand.NewSource(43))
	q := make([]float64, pts.Len())
	for i := range q {
		q[i] = 2*rng.Float64() - 1
	}
	got, err := s.MatVec(q)
	if err != nil {
		t.Fatal(err)
	}

	fresh := pts.Clone()
	copy(fresh.Q, q)
	want, err := barytree.Solve(k, fresh, fresh, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if d := got[i] - want[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("potential %d after charge update: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestSolverLinearity(t *testing.T) {
	// The treecode is linear in the charges: G*(a*q1 + q2) = a*G*q1 + G*q2
	// up to floating-point reassociation. (The barycentric compression is
	// itself linear in q, so this holds to near machine precision.)
	pts := barytree.UniformCube(2000, 44)
	s, err := barytree.NewSolver(barytree.Coulomb(), pts, pts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	q1 := make([]float64, pts.Len())
	q2 := make([]float64, pts.Len())
	for i := range q1 {
		q1[i] = rng.NormFloat64()
		q2[i] = rng.NormFloat64()
	}
	p1, err := s.MatVec(q1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.MatVec(q2)
	if err != nil {
		t.Fatal(err)
	}
	comb := make([]float64, len(q1))
	for i := range comb {
		comb[i] = 3*q1[i] + q2[i]
	}
	pc, err := s.MatVec(comb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pc {
		want := 3*p1[i] + p2[i]
		scale := abs(want) + 1
		if d := (pc[i] - want) / scale; d > 1e-10 || d < -1e-10 {
			t.Fatalf("linearity violated at %d: %g vs %g", i, pc[i], want)
		}
	}
}

func TestSolverJacobiIterationConverges(t *testing.T) {
	// A miniature "BEM-style" workflow: solve (I + c*G) q = b by Jacobi
	// iteration using the treecode as the matvec. With small c the
	// iteration contracts; convergence exercises repeated charge updates.
	pts := barytree.UniformCube(1500, 46)
	s, err := barytree.NewSolver(barytree.Yukawa(1.0), pts, pts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	n := pts.Len()
	const c = 1e-4
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	q := append([]float64(nil), b...)
	var residual float64
	for iter := 0; iter < 25; iter++ {
		gq, err := s.MatVec(q)
		if err != nil {
			t.Fatal(err)
		}
		residual = 0
		for i := range q {
			next := b[i] - c*gq[i]
			if d := abs(next - q[i]); d > residual {
				residual = d
			}
			q[i] = next
		}
		if residual < 1e-12 {
			break
		}
	}
	if residual > 1e-10 {
		t.Errorf("Jacobi iteration did not converge: residual %.3g", residual)
	}
}

func TestSolverRejectsWrongChargeCount(t *testing.T) {
	pts := barytree.UniformCube(100, 47)
	s, err := barytree.NewSolver(barytree.Coulomb(), pts, pts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.UpdateCharges(make([]float64, 99)); err == nil {
		t.Error("wrong charge count accepted")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
