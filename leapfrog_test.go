package barytree_test

// Dynamic-simulation stepping: leapfrog integration on a reused Plan that
// follows the particles with Plan.Update instead of rebuilding the setup
// phase every timestep (ROADMAP item 1, docs/performance.md "Dynamic
// simulation").
//
// TestLeapfrogEnergyDrift is the correctness pin: a fixed-seed Plummer
// cluster integrated with kick-drift-kick leapfrog through the Update path
// must conserve total energy to a pinned tolerance — the standard N-body
// quality metric, sensitive to any force error the incremental plan
// maintenance might introduce.
//
// BenchmarkLeapfrogStep100k / BenchmarkLeapfrogStep100kRebuild track the
// per-step plan maintenance cost at 100k particles (steps/sec). The real
// wall time covers the position advance plus the geometry work (Update vs
// a from-scratch NewPlan) — the per-step host cost of the paper's
// GPU-resident treecode, where the force evaluation itself runs on the
// device (the CPU reference evaluation takes minutes per step at this
// scale and is pinned separately by the energy test). The modeled hybrid
// step time (host maintenance + device compute at TitanV rates) rides
// along as a custom metric.

import (
	"math"
	"math/rand"
	"testing"

	"barytree"
	"barytree/internal/core"
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/trace"
)

func TestLeapfrogEnergyDrift(t *testing.T) {
	const (
		n     = 1500
		eps   = 0.05 // Plummer softening
		dt    = 0.004
		steps = 30
		// Pinned regression tolerance for the max relative energy drift:
		// leapfrog is symplectic, so with treecode forces at these
		// parameters the drift stays far under this bound (measured
		// ~7e-9); a force bug in the update path blows it immediately.
		maxDrift = 1e-6
	)
	stars := barytree.PlummerSphere(n, 1.0, 17)
	k := barytree.RegularizedCoulomb(eps)
	p := barytree.Params{Theta: 0.7, Degree: 5, LeafSize: 100, BatchSize: 100, Morton: true}

	pl, err := barytree.NewPlan(stars, stars, p)
	if err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), stars.X...)
	y := append([]float64(nil), stars.Y...)
	z := append([]float64(nil), stars.Z...)
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)

	energy := func(f *barytree.FieldResult) float64 {
		var e float64
		for i := 0; i < n; i++ {
			m := stars.Q[i]
			e += 0.5 * m * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i])
			e -= 0.5 * m * f.Phi[i] // gravity: U = -1/2 sum m_i phi_i
		}
		return e
	}

	f, err := pl.SolveWithField(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	e0 := energy(f)
	actions := map[barytree.UpdateAction]int{}
	var worst float64
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ { // kick (half): a = +grad phi for phi = sum m/r
			vx[i] += 0.5 * dt * f.GX[i]
			vy[i] += 0.5 * dt * f.GY[i]
			vz[i] += 0.5 * dt * f.GZ[i]
		}
		for i := 0; i < n; i++ { // drift
			x[i] += dt * vx[i]
			y[i] += dt * vy[i]
			z[i] += dt * vz[i]
		}
		st, err := pl.Update(x, y, z)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		actions[st.Action]++
		if f, err = pl.SolveWithField(k, nil); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		for i := 0; i < n; i++ { // kick (half)
			vx[i] += 0.5 * dt * f.GX[i]
			vy[i] += 0.5 * dt * f.GY[i]
			vz[i] += 0.5 * dt * f.GZ[i]
		}
		if d := math.Abs((energy(f) - e0) / e0); d > worst {
			worst = d
		}
	}
	t.Logf("max |dE/E| over %d steps: %.3e (refit %d, repair %d, rebuild %d)",
		steps, worst, actions[barytree.UpdateRefit], actions[barytree.UpdateRepair], actions[barytree.UpdateRebuild])
	if worst > maxDrift {
		t.Fatalf("energy drift %.3e exceeds pinned %.0e", worst, maxDrift)
	}
	if worst == 0 {
		t.Fatal("energy drift exactly zero: the integrator never engaged")
	}
	if actions[barytree.UpdateRefit] == 0 {
		t.Fatalf("no step took the refit fast path: %v", actions)
	}
}

// leapfrogBenchSetup builds the 100k stepping scenario shared by the two
// benchmarks: a fixed-seed Plummer cluster and a deterministic velocity
// field at cluster-typical speeds (the virial velocity scale of a unit-mass
// Plummer sphere is ~0.4), advanced with a small timestep so per-step drift
// is the realistic fraction of a leaf that keeps all three update paths in
// play over a run.
func leapfrogBenchSetup(n int) (x, y, z, q, vx, vy, vz []float64) {
	stars := barytree.PlummerSphere(n, 1.0, 17)
	rng := rand.New(rand.NewSource(18))
	vx = make([]float64, n)
	vy = make([]float64, n)
	vz = make([]float64, n)
	for i := 0; i < n; i++ {
		vx[i] = 0.3 * rng.NormFloat64()
		vy[i] = 0.3 * rng.NormFloat64()
		vz[i] = 0.3 * rng.NormFloat64()
	}
	return stars.X, stars.Y, stars.Z, stars.Q, vx, vy, vz
}

const leapfrogBenchDT = 0.002

func leapfrogParams() core.Params {
	return core.Params{Theta: 0.6, Degree: 6, LeafSize: 300, BatchSize: 300, Morton: true}
}

// reportLeapfrogMetrics emits the stepping metrics: real steps/sec of the
// maintained path, and the modeled hybrid step time with the device compute
// phase at TitanV rates (the same GradCost accounting as RunCPUFields).
func reportLeapfrogMetrics(b *testing.B, pl *core.Plan, maintModeled float64) {
	b.Helper()
	steps := float64(b.N)
	b.ReportMetric(steps/b.Elapsed().Seconds(), "steps/s")
	k := kernel.RegularizedCoulomb{Eps: 0.05}
	compute := float64(pl.Lists.Stats.TotalInteractions()) *
		(kernel.GradCost(k, kernel.ArchGPU) + 8) / perfmodel.TitanV().EffectiveFlopRate()
	b.ReportMetric((maintModeled/steps+compute)*1e3, "modeled-step-ms")
}

// BenchmarkLeapfrogStep100k steps a 100k-particle plan with Plan.Update:
// advance positions one leapfrog drift, follow with the cheapest exact
// structural path (refit / repair / rebuild). Compare against
// BenchmarkLeapfrogStep100kRebuild, which pays the full setup phase every
// step; docs/performance.md records the ratio.
func BenchmarkLeapfrogStep100k(b *testing.B) {
	const n = 100_000
	x, y, z, q, vx, vy, vz := leapfrogBenchSetup(n)
	pts := &particle.Set{X: x, Y: y, Z: z, Q: q}
	pl, err := core.NewPlan(pts, pts, leapfrogParams())
	if err != nil {
		b.Fatal(err)
	}
	tr := trace.New()
	actions := map[core.UpdateAction]int{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			x[j] += leapfrogBenchDT * vx[j]
			y[j] += leapfrogBenchDT * vy[j]
			z[j] += leapfrogBenchDT * vz[j]
		}
		st, err := pl.Update(x, y, z, tr)
		if err != nil {
			b.Fatal(err)
		}
		actions[st.Action]++
	}
	b.StopTimer()
	var maintModeled float64
	for _, s := range tr.Spans() {
		maintModeled += s.Dur()
	}
	reportLeapfrogMetrics(b, pl, maintModeled)
	b.ReportMetric(float64(actions[core.UpdateRefit])/float64(b.N), "refit/step")
	b.ReportMetric(float64(actions[core.UpdateRepair])/float64(b.N), "repair/step")
	b.ReportMetric(float64(actions[core.UpdateRebuild])/float64(b.N), "rebuild/step")
}

// BenchmarkLeapfrogStep100kRebuild is the baseline the update path is
// measured against: identical dynamics, but every step rebuilds the plan
// from scratch (the only option before Plan.Update existed).
func BenchmarkLeapfrogStep100kRebuild(b *testing.B) {
	const n = 100_000
	x, y, z, q, vx, vy, vz := leapfrogBenchSetup(n)
	p := leapfrogParams()
	var pl *core.Plan
	var maintModeled float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			x[j] += leapfrogBenchDT * vx[j]
			y[j] += leapfrogBenchDT * vy[j]
			z[j] += leapfrogBenchDT * vz[j]
		}
		pts := &particle.Set{X: x, Y: y, Z: z, Q: q}
		var err error
		pl, err = core.NewPlan(pts, pts, p)
		if err != nil {
			b.Fatal(err)
		}
		maintModeled += pl.SetupWork(perfmodel.XeonX5650())
	}
	b.StopTimer()
	reportLeapfrogMetrics(b, pl, maintModeled)
}
