package barytree_test

import (
	"math"
	"testing"

	"barytree"
)

func smallParams() barytree.Params {
	return barytree.Params{Theta: 0.7, Degree: 5, LeafSize: 150, BatchSize: 150}
}

func TestSolveMatchesDirectSum(t *testing.T) {
	pts := barytree.UniformCube(3000, 1)
	k := barytree.Coulomb()
	ref := barytree.DirectSum(k, pts, pts)
	phi, err := barytree.Solve(k, pts, pts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if e := barytree.RelErr2(ref, phi); e > 1e-5 || e == 0 {
		t.Fatalf("error %.3g outside (0, 1e-5]", e)
	}
}

func TestSolveDeviceMatchesCPU(t *testing.T) {
	pts := barytree.UniformCube(3000, 2)
	k := barytree.Yukawa(0.5)
	cpu, err := barytree.SolveCPU(k, pts, pts, smallParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := barytree.SolveDevice(k, pts, pts, smallParams(), barytree.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if e := barytree.RelErr2(cpu.Phi, gpu.Phi); e > 1e-13 {
		t.Fatalf("device deviates from CPU by %.3g", e)
	}
	// No timing assertion here: at 3k particles the GPU's launch overhead
	// dominates and the CPU legitimately wins; the speedup claims are
	// verified at realistic sizes in internal/core and internal/sweep.
}

func TestSolveDistributed(t *testing.T) {
	pts := barytree.UniformCube(4000, 3)
	k := barytree.Coulomb()
	ref := barytree.DirectSum(k, pts, pts)
	res, err := barytree.SolveDistributed(k, pts, smallParams(), barytree.DistributedConfig{Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e := barytree.RelErr2(ref, res.Phi); e > 1e-5 {
		t.Fatalf("distributed error %.3g", e)
	}
	if len(res.RankTimes) != 4 {
		t.Fatalf("got %d rank profiles", len(res.RankTimes))
	}
}

func TestCustomKernel(t *testing.T) {
	// Kernel independence: a user-defined kernel goes through the same
	// machinery with no kernel-specific code.
	k := barytree.KernelFunc("inverse-r4", func(tx, ty, tz, sx, sy, sz float64) float64 {
		dx, dy, dz := tx-sx, ty-sy, tz-sz
		r2 := dx*dx + dy*dy + dz*dz
		if r2 == 0 {
			return 0
		}
		return 1 / (r2 * r2)
	}, 0, 0)
	pts := barytree.UniformCube(2000, 4)
	ref := barytree.DirectSum(k, pts, pts)
	phi, err := barytree.Solve(k, pts, pts, barytree.Params{Theta: 0.5, Degree: 8, LeafSize: 100, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if e := barytree.RelErr2(ref, phi); e > 1e-4 || e == 0 {
		t.Fatalf("custom kernel error %.3g", e)
	}
}

func TestSinglePrecisionDevice(t *testing.T) {
	pts := barytree.UniformCube(2000, 5)
	k := barytree.Coulomb()
	ref := barytree.DirectSum(k, pts, pts)
	p := smallParams()
	fp32, err := barytree.SolveDevice(k, pts, pts, p, barytree.DeviceConfig{SinglePrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	e := barytree.RelErr2(ref, fp32.Phi)
	if e > 1e-3 || e < 1e-9 {
		t.Fatalf("fp32 error %.3g outside single-precision band", e)
	}
	// A kernel without an fp32 path must be rejected.
	custom := barytree.KernelFunc("c", func(a, b, c, d, e, f float64) float64 { return 0 }, 0, 0)
	if _, err := barytree.SolveDevice(custom, pts, pts, p, barytree.DeviceConfig{SinglePrecision: true}); err == nil {
		t.Error("expected error for fp32 with custom kernel")
	}
}

func TestDirectSumAt(t *testing.T) {
	pts := barytree.UniformCube(1000, 6)
	k := barytree.Coulomb()
	full := barytree.DirectSum(k, pts, pts)
	sample := barytree.SampleIndices(1000, 25, 7)
	at := barytree.DirectSumAt(k, pts, sample, pts)
	for i, idx := range sample {
		if at[i] != full[idx] {
			t.Fatalf("sampled direct sum mismatch at %d", idx)
		}
	}
}

func TestGenerators(t *testing.T) {
	if n := barytree.UniformCube(123, 1).Len(); n != 123 {
		t.Errorf("UniformCube len %d", n)
	}
	pl := barytree.PlummerSphere(500, 1, 2)
	if math.Abs(pl.TotalCharge()-1) > 1e-9 {
		t.Errorf("Plummer total mass %g", pl.TotalCharge())
	}
	if n := barytree.GaussianBlob(77, 0.5, 3).Len(); n != 77 {
		t.Errorf("GaussianBlob len %d", n)
	}
}

func TestBadParamsRejected(t *testing.T) {
	pts := barytree.UniformCube(100, 8)
	if _, err := barytree.Solve(barytree.Coulomb(), pts, pts, barytree.Params{Theta: 1.5, Degree: 4, LeafSize: 10, BatchSize: 10}); err == nil {
		t.Error("theta out of range accepted")
	}
	if _, err := barytree.SolveDistributed(barytree.Coulomb(), pts, smallParams(), barytree.DistributedConfig{Ranks: 0}); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestNonUniformDistributions(t *testing.T) {
	k := barytree.RegularizedCoulomb(0.01)
	for name, pts := range map[string]*barytree.Particles{
		"plummer": barytree.PlummerSphere(3000, 1, 9),
		"blob":    barytree.GaussianBlob(3000, 0.4, 10),
	} {
		ref := barytree.DirectSum(k, pts, pts)
		phi, err := barytree.Solve(k, pts, pts, barytree.Params{Theta: 0.6, Degree: 6, LeafSize: 100, BatchSize: 100})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if e := barytree.RelErr2(ref, phi); e > 1e-4 {
			t.Errorf("%s: error %.3g", name, e)
		}
	}
}
