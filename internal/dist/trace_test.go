package dist

import (
	"bytes"
	"math/rand"
	"testing"

	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/trace"
)

// TestTraceDeterministicAcrossRuns runs the same distributed solve twice
// with a tracer attached and checks the exported Chrome trace is
// byte-identical. Rank goroutines emit spans concurrently in nondeterministic
// order, so this exercises both the tracer's internal locking (under -race)
// and the total ordering its export imposes.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	solve := func() ([]byte, []float64, []trace.Span) {
		rng := rand.New(rand.NewSource(7))
		pts := particle.UniformCube(4000, rng)
		cfg := testConfig(4)
		cfg.Tracer = trace.New()
		res, err := Run(cfg, kernel.Coulomb{}, pts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Tracer.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), res.Phi, cfg.Tracer.Spans()
	}

	traceA, phiA, spansA := solve()
	traceB, phiB, _ := solve()
	if !bytes.Equal(traceA, traceB) {
		t.Errorf("trace export differs between identical runs (%d vs %d bytes)",
			len(traceA), len(traceB))
	}
	for i := range phiA {
		if phiA[i] != phiB[i] {
			t.Fatalf("phi[%d] differs between identical runs", i)
		}
	}

	// The trace must cover every layer: kernels per stream, copy engines,
	// RMA, and phases, on all four ranks.
	cats := map[trace.Category]bool{}
	ranks := map[int]bool{}
	for _, s := range spansA {
		cats[s.Cat] = true
		ranks[s.Rank] = true
	}
	for _, cat := range []trace.Category{
		trace.CatPhase, trace.CatKernel, trace.CatTransfer, trace.CatComm, trace.CatBuild,
	} {
		if !cats[cat] {
			t.Errorf("no spans of category %q in distributed trace", cat)
		}
	}
	if len(ranks) != 4 {
		t.Errorf("spans cover %d ranks, want 4", len(ranks))
	}
}

// TestOverlappedTraceDeterministicAcrossRuns is the golden-trace check for
// the pipelined schedule: a 2-rank overlapped run must export a
// byte-identical Chrome trace across runs even though per-batch waits
// interleave rma.wait spans with kernel launches, and the async span
// taxonomy (rma.iget / rma.wait) must actually appear.
func TestOverlappedTraceDeterministicAcrossRuns(t *testing.T) {
	solve := func() ([]byte, []trace.Span) {
		rng := rand.New(rand.NewSource(11))
		pts := particle.UniformCube(3000, rng)
		cfg := testConfig(2)
		cfg.OverlapComm = true
		cfg.Tracer = trace.New()
		if _, err := Run(cfg, kernel.Coulomb{}, pts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Tracer.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), cfg.Tracer.Spans()
	}

	traceA, spansA := solve()
	traceB, _ := solve()
	if !bytes.Equal(traceA, traceB) {
		t.Errorf("overlapped trace export differs between identical runs (%d vs %d bytes)",
			len(traceA), len(traceB))
	}
	names := map[string]int{}
	for _, s := range spansA {
		names[s.Name]++
	}
	for _, name := range []string{"rma.iget", "rma.wait"} {
		if names[name] == 0 {
			t.Errorf("no %q spans in overlapped trace", name)
		}
	}
	// The eager tree-array fetch stays synchronous (rma.get); the bulk
	// fetch must be fully nonblocking, so igets dominate the gets.
	if names["rma.iget"] <= names["rma.get"] {
		t.Errorf("only %d rma.iget spans vs %d rma.get — bulk fetch not asynchronous",
			names["rma.iget"], names["rma.get"])
	}
}
