package dist

import (
	"math"
	"math/rand"
	"testing"

	"barytree/internal/core"
	"barytree/internal/device"
	"barytree/internal/direct"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
)

func testConfig(ranks int) Config {
	return Config{
		Ranks:  ranks,
		Params: core.Params{Theta: 0.7, Degree: 5, LeafSize: 150, BatchSize: 150},
	}
}

func TestDistributedMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := particle.UniformCube(6000, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)

	for _, ranks := range []int{1, 2, 3, 4, 8} {
		res, err := Run(testConfig(ranks), k, pts)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		e := metrics.RelErr2(ref, res.Phi)
		if e > 1e-5 || e == 0 {
			t.Errorf("ranks=%d: error %.3g outside (0, 1e-5]", ranks, e)
		}
	}
}

func TestDistributedYukawa(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := particle.UniformCube(5000, rng)
	k := kernel.Yukawa{Kappa: 0.5}
	ref := direct.SumParallel(k, pts, pts, 0)
	res, err := Run(testConfig(4), k, pts)
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.RelErr2(ref, res.Phi); e > 1e-5 {
		t.Errorf("yukawa error %.3g too large", e)
	}
}

func TestSingleRankMatchesSingleDevice(t *testing.T) {
	// With one rank there is no LET; the result must match the
	// single-device driver bit-for-bit (same tree, same kernels, same
	// per-target accumulation order within a launch).
	rng := rand.New(rand.NewSource(3))
	pts := particle.UniformCube(3000, rng)
	k := kernel.Coulomb{}
	cfg := testConfig(1)

	res, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := core.NewPlan(pts, pts, cfg.Params)
	if err != nil {
		t.Fatal(err)
	}
	devRes := core.RunDevice(pl, k, device.New(perfmodel.P100(), 0), core.DeviceOptions{})
	if e := metrics.RelErr2(devRes.Phi, res.Phi); e > 1e-14 {
		t.Errorf("single-rank distributed deviates from single device: %.3g", e)
	}
}

func TestRemoteDataActuallyUsed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := particle.UniformCube(4000, rng)
	res, err := Run(testConfig(4), kernel.Coulomb{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.Ranks {
		if rep.Remote.TotalInteractions() == 0 {
			t.Errorf("rank %d performed no remote interactions", r)
		}
		if rep.LETBytes == 0 {
			t.Errorf("rank %d fetched no LET data", r)
		}
		if rep.Comm.Gets == 0 {
			t.Errorf("rank %d issued no RMA gets", r)
		}
	}
}

func TestModelOnlyMatchesFunctionalTimes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := particle.UniformCube(4000, rng)
	k := kernel.Coulomb{}
	cfg := testConfig(3)

	functional, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ModelOnly = true
	modelOnly, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	if modelOnly.Phi != nil {
		t.Error("model-only run returned potentials")
	}
	for ph := 0; ph < 3; ph++ {
		f, m := functional.Times[ph], modelOnly.Times[ph]
		if diff := (f - m) / f; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("phase %d: functional %.6g vs model-only %.6g", ph, f, m)
		}
	}
}

func TestStrongScalingImprovesTotalTime(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := particle.UniformCube(30000, rng)
	k := kernel.Coulomb{}
	cfg := Config{
		Ranks:     1,
		Params:    core.Params{Theta: 0.8, Degree: 6, LeafSize: 2000, BatchSize: 2000},
		ModelOnly: true,
	}
	r1, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ranks = 4
	r4, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Times.Total() >= r1.Times.Total() {
		t.Errorf("4 ranks (%.4gs) not faster than 1 rank (%.4gs)",
			r4.Times.Total(), r1.Times.Total())
	}
	speedup := r1.Times.Total() / r4.Times.Total()
	t.Logf("strong scaling 1->4 ranks: %.2fx", speedup)
	if speedup > 4.2 {
		t.Errorf("speedup %.2fx exceeds ideal", speedup)
	}
}

func TestOverlapCommReducesSetupAndTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := particle.UniformCube(12000, rng)
	k := kernel.Coulomb{}
	cfg := testConfig(4)
	cfg.ModelOnly = true

	plain, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OverlapComm = true
	overlapped, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	// The pipelined schedule removes the bulk-fetch wait from setup
	// entirely; compute may grow by the stalls actually paid, but the wire
	// time hidden under list construction and local-list kernels must win
	// on the whole: setup AND total strictly lower.
	if overlapped.Times[perfmodel.PhaseSetup] >= plain.Times[perfmodel.PhaseSetup] {
		t.Errorf("overlap did not reduce setup: %.4g vs %.4g",
			overlapped.Times[perfmodel.PhaseSetup], plain.Times[perfmodel.PhaseSetup])
	}
	if overlapped.Times.Total() >= plain.Times.Total() {
		t.Errorf("overlap did not reduce total: %.4g vs %.4g",
			overlapped.Times.Total(), plain.Times.Total())
	}
	// Precompute happens before the fetch is issued and is untouched.
	if overlapped.Times[perfmodel.PhasePrecompute] != plain.Times[perfmodel.PhasePrecompute] {
		t.Errorf("overlap changed precompute time")
	}
	for i := range plain.Ranks {
		if s := plain.Ranks[i].OverlapSaved; s != 0 {
			t.Errorf("rank %d: serial schedule reports OverlapSaved=%.4g, want 0", i, s)
		}
		ov := &overlapped.Ranks[i]
		if ov.OverlapSaved <= 0 {
			t.Errorf("rank %d: overlapped schedule hid no wire time", i)
		}
		// The executed timeline must balance: the serial schedule pays the
		// whole fetch as stalls, so the RMA-time reduction equals the
		// reported hidden time (up to fp summation order).
		drop := plain.Ranks[i].CommTime - ov.CommTime
		if diff := math.Abs(drop-ov.OverlapSaved) / ov.OverlapSaved; diff > 1e-9 {
			t.Errorf("rank %d: OverlapSaved %.6g but RMA time dropped by %.6g",
				i, ov.OverlapSaved, drop)
		}
		if ov.CommTime >= plain.Ranks[i].CommTime {
			t.Errorf("rank %d: overlap did not reduce RMA stall time: %.4g vs %.4g",
				i, ov.CommTime, plain.Ranks[i].CommTime)
		}
	}
}

func TestOverlapDoesNotChangeResults(t *testing.T) {
	// The acceptance bar for the pipelined schedule: Phi byte-identical
	// (exact ==) with and without OverlapComm at every rank count and
	// worker count, because kernel submission order is unchanged — only
	// submission *times* move.
	rng := rand.New(rand.NewSource(8))
	pts := particle.UniformCube(3000, rng)
	k := kernel.Coulomb{}
	for _, ranks := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2, 0} {
			cfg := testConfig(ranks)
			cfg.WorkersPerRank = workers
			plain, err := Run(cfg, k, pts)
			if err != nil {
				t.Fatal(err)
			}
			cfg.OverlapComm = true
			overlapped, err := Run(cfg, k, pts)
			if err != nil {
				t.Fatal(err)
			}
			for i := range plain.Phi {
				if plain.Phi[i] != overlapped.Phi[i] {
					t.Fatalf("ranks=%d workers=%d: potential %d differs with overlap",
						ranks, workers, i)
				}
			}
		}
	}
}

func TestCommTimeSplitFromTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := particle.UniformCube(6000, rng)
	res, err := Run(testConfig(4), kernel.Coulomb{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Ranks {
		rep := &res.Ranks[i]
		if rep.CommTime <= 0 {
			t.Errorf("rank %d: CommTime %.4g not positive", i, rep.CommTime)
		}
		if rep.LETTraversalTime <= 0 {
			t.Errorf("rank %d: LETTraversalTime %.4g not positive", i, rep.LETTraversalTime)
		}
		// CommTime is RMA-only, straight from the rank's counter.
		if rep.CommTime != rep.Comm.RMASeconds {
			t.Errorf("rank %d: CommTime %.6g != Comm.RMASeconds %.6g",
				i, rep.CommTime, rep.Comm.RMASeconds)
		}
		// The traversal share comes from its own counter.
		want := float64(rep.Remote.MACTests) / perfmodel.XeonX5650().MACTestRate
		if rep.LETTraversalTime != want {
			t.Errorf("rank %d: LETTraversalTime %.6g, want %.6g from MAC counter",
				i, rep.LETTraversalTime, want)
		}
	}
}

func TestRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := particle.UniformCube(100, rng)
	if _, err := Run(Config{Ranks: 0, Params: core.DefaultParams()}, kernel.Coulomb{}, pts); err == nil {
		t.Error("expected error for zero ranks")
	}
	if _, err := Run(Config{Ranks: 2, Params: core.Params{Theta: 2}}, kernel.Coulomb{}, pts); err == nil {
		t.Error("expected error for bad theta")
	}
	if _, err := Run(Config{Ranks: 2, Params: core.DefaultParams(), WorkersPerRank: -1}, kernel.Coulomb{}, pts); err == nil {
		t.Error("expected error for negative workers per rank")
	}
	if _, err := Run(Config{Ranks: 2, Params: core.DefaultParams(), Streams: -3}, kernel.Coulomb{}, pts); err == nil {
		t.Error("expected error for negative streams")
	}
}
