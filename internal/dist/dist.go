// Package dist is the distributed-memory multi-GPU driver of the BLTC,
// combining every substrate exactly as the paper's Section 3 does:
// recursive coordinate bisection assigns particles to ranks (one rank per
// GPU); each rank builds a local source tree and target batches, computes
// its clusters' modified charges on its device, exposes tree arrays,
// particles and charges through one-sided RMA windows, pulls the locally
// essential tree from every remote rank, and evaluates its local targets'
// potentials on its device.
//
// Phase accounting follows the paper's Section 4: *setup* is the domain
// decomposition, local tree/batch construction, LET construction and
// communication, and interaction-list creation; *precompute* is the
// modified-charge kernels; *compute* is the potential evaluation. Each
// phase's distributed duration is the maximum over ranks (phases are
// barrier-separated), and the run time is the sum over phases.
package dist

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"barytree/internal/core"
	"barytree/internal/device"
	"barytree/internal/interaction"
	"barytree/internal/kernel"
	"barytree/internal/let"
	"barytree/internal/mpisim"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/rcb"
	"barytree/internal/trace"
	"barytree/internal/tree"
)

// Config configures a distributed run.
type Config struct {
	// Ranks is the number of MPI ranks; the paper associates one rank with
	// each GPU.
	Ranks  int
	Params core.Params
	// GPU is the per-rank device model (zero value: P100, the paper's
	// scaling testbed).
	GPU perfmodel.GPUSpec
	// CPU is the host model per rank (zero value: Xeon X5650).
	CPU perfmodel.CPUSpec
	// Net is the interconnect model (zero value: Comet InfiniBand).
	Net perfmodel.NetworkSpec
	// WorkersPerRank bounds the host goroutines each rank uses for
	// functional execution and for its setup phase (tree/batch/cluster
	// construction, LET traversal, interaction lists); 0 divides
	// GOMAXPROCS evenly across ranks for setup and selects GOMAXPROCS for
	// device execution. Setup output is bit-identical for every value.
	WorkersPerRank int
	// Streams overrides the per-device stream count (0: device default).
	Streams int
	// ModelOnly skips functional kernel execution (timing model only);
	// Result.Phi is nil.
	ModelOnly bool
	// OverlapComm enables the paper's future-work extension of overlapping
	// LET communication with computation, as an actually executed pipelined
	// schedule: the LET bulk fetch is issued as nonblocking gets on the
	// rank's NIC-occupancy timeline, interaction-list construction and the
	// local-list batch kernels proceed while the data is in flight, and each
	// batch waits only on its own requests before launching its remote-list
	// kernels. Kernel submission order — and therefore Result.Phi — is
	// bit-identical with and without overlap; only the modeled times move.
	OverlapComm bool
	// Precision selects fp64 or fp32 potential kernels.
	Precision device.Precision
	// Tracer, when non-nil, records every rank's phase/build spans, kernel
	// and transfer spans, RMA operations and counters. The tracer is
	// shared across rank goroutines (it is internally synchronized) and
	// never changes modeled times.
	Tracer *trace.Tracer
}

func (c *Config) defaults() error {
	if c.Ranks < 1 {
		return fmt.Errorf("dist: ranks must be >= 1, got %d", c.Ranks)
	}
	if c.WorkersPerRank < 0 {
		return fmt.Errorf("dist: workers per rank must be >= 0, got %d", c.WorkersPerRank)
	}
	if c.Streams < 0 {
		return fmt.Errorf("dist: streams must be >= 0, got %d", c.Streams)
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	if c.GPU.SMs == 0 {
		c.GPU = perfmodel.P100()
	}
	if c.CPU.Cores == 0 {
		c.CPU = perfmodel.XeonX5650()
	}
	if c.Net.Bandwidth == 0 {
		c.Net = perfmodel.CometIB()
	}
	return nil
}

// RankReport is one rank's contribution to the run.
type RankReport struct {
	Times       perfmodel.PhaseTimes
	Particles   int
	TreeNodes   int
	Batches     int
	Local       interaction.Stats
	Remote      interaction.Stats
	Comm        mpisim.CommStats
	LETClusters int
	LETLeaves   int
	LETBytes    int64
	// CommTime is the modeled seconds this rank's clock advanced inside RMA
	// operations (synchronous transfers plus wait stalls), from the rank's
	// CommStats.RMASeconds counter. Wire time hidden under overlapped work
	// is not included.
	CommTime float64
	// LETTraversalTime is the modeled host seconds spent MAC-traversing
	// remote trees during LET construction, from the LET's MACTests counter.
	// It was previously folded into CommTime.
	LETTraversalTime float64
	// OverlapSaved is the communication wire time hidden under other work
	// by OverlapComm, measured from the executed timeline: seconds of
	// bulk-fetch occupancy issued minus stall seconds actually paid at
	// waits. Exactly zero when OverlapComm is off.
	OverlapSaved float64
}

// Result is the outcome of a distributed run.
type Result struct {
	// Phi holds potentials in the input particle order (nil if ModelOnly).
	Phi []float64
	// Times is the distributed phase profile: per-phase max over ranks.
	Times perfmodel.PhaseTimes
	// Ranks holds each rank's report.
	Ranks []RankReport
}

// TotalInteractions sums local and remote kernel evaluations over ranks.
func (r *Result) TotalInteractions() int64 {
	var t int64
	for i := range r.Ranks {
		t += r.Ranks[i].Local.TotalInteractions() + r.Ranks[i].Remote.TotalInteractions()
	}
	return t
}

// Run evaluates the potentials of pts (targets == sources, as in all of the
// paper's experiments) on cfg.Ranks simulated GPUs.
func Run(cfg Config, k kernel.Kernel, pts *particle.Set) (*Result, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if err := pts.Validate(); err != nil {
		return nil, fmt.Errorf("dist: bad particles: %w", err)
	}
	// Domain decomposition (the paper calls Zoltan here). The
	// decomposition is computed once and its parallel cost modeled per
	// rank: each bisection level scans the rank's particles once.
	dec := rcb.Partition(pts, cfg.Ranks, pts.Bounds())
	rcbLevels := math.Ceil(math.Log2(float64(cfg.Ranks)))

	res := &Result{Ranks: make([]RankReport, cfg.Ranks)}
	if !cfg.ModelOnly {
		res.Phi = make([]float64, pts.Len())
	}
	var phiMu sync.Mutex

	err := mpisim.Run(cfg.Ranks, cfg.Net, func(r *mpisim.Rank) error {
		rep := &res.Ranks[r.ID()]
		local, orig := dec.Extract(pts, r.ID())
		rep.Particles = local.Len()
		tr := cfg.Tracer
		r.Tracer = tr
		dev := device.New(cfg.GPU, cfg.WorkersPerRank)
		dev.Precision = cfg.Precision
		dev.Tracer = tr
		dev.Rank = r.ID()
		hc := &r.Clock
		mac := cfg.Params.MAC()
		// Host goroutines for this rank's setup phase. Rank goroutines run
		// concurrently, so the default splits the machine across ranks
		// instead of oversubscribing it Ranks-fold. Setup output is
		// bit-identical for every worker count, so this only affects wall
		// time.
		setupW := cfg.WorkersPerRank
		if setupW <= 0 {
			setupW = max(1, runtime.GOMAXPROCS(0)/cfg.Ranks)
		}

		// --- Setup (part 1): RCB + local tree and batches. ---
		hc.Advance(float64(local.Len()) * rcbLevels / cfg.CPU.TreeOpRate)
		rcbEnd := hc.Now()
		tr.Span("rcb", trace.CatBuild, r.ID(), trace.TrackHost, 0, rcbEnd,
			trace.A("particles", local.Len()), trace.A("levels", int(rcbLevels)))
		t := tree.BuildWorkers(local, cfg.Params.LeafSize, setupW)
		batches := tree.BuildBatchesWorkers(local, cfg.Params.BatchSize, setupW)
		cd := core.NewClusterDataWorkers(t, cfg.Params.Degree, setupW)
		treeOps := float64(t.Stats.ParticleScans + t.Stats.ParticleMoves +
			batches.Stats.ParticleScans + batches.Stats.ParticleMoves)
		hc.Advance(treeOps / cfg.CPU.TreeOpRate)
		rep.TreeNodes = len(t.Nodes)
		rep.Batches = len(batches.Batches)
		setup1 := hc.Now()
		if tr.Enabled() {
			treeT := float64(t.Stats.ParticleScans+t.Stats.ParticleMoves) / cfg.CPU.TreeOpRate
			t.Stats.TraceSpan(tr, "tree.build", r.ID(), rcbEnd, rcbEnd+treeT)
			batches.Stats.TraceSpan(tr, "batches.build", r.ID(), rcbEnd+treeT, setup1)
		}

		// --- Precompute: modified charges on the device. ---
		dev.BeginPhase(hc.Now())
		copyDone := dev.CopyIn(hc.Now(), 4*8*int64(local.Len()))
		core.LaunchChargeKernels(cd, t, dev, hc, copyDone, cfg.Streams, cfg.ModelOnly)
		hc.AdvanceTo(dev.Drain())
		hc.AdvanceTo(dev.CopyOut(hc.Now(), cd.ChargesBytes()))
		precompute := hc.Now() - setup1
		tr.Span("precompute", trace.CatPhase, r.ID(), trace.TrackHost, setup1, hc.Now())

		// --- Setup (part 2): windows, LET, interaction lists. ---
		np := mac.InterpPoints()
		var chargesFlat []float64
		if cfg.ModelOnly {
			chargesFlat = make([]float64, len(t.Nodes)*np)
		} else {
			var err error
			chargesFlat, err = let.FlattenCharges(cd.Qhat, cfg.Params.Degree)
			if err != nil {
				return err
			}
		}
		wins := let.Expose(r, t, chargesFlat, cfg.Params.Degree)
		r.Barrier() // all charges exposed before anyone gets them

		getsBefore := r.Stats.GetBytes
		rmaBefore := r.Stats.RMASeconds
		l, fetch, err := let.BuildAsync(r, wins, batches, mac, setupW)
		if err != nil {
			return err
		}
		if !cfg.OverlapComm {
			// Serial schedule: complete the bulk fetch before anything
			// else. The NIC timeline serializes the grouped gets at link
			// bandwidth, so this costs the same modeled seconds as the
			// pre-pipelining synchronous exchange.
			fetch.WaitAll()
		}
		rep.LETClusters = len(l.ClusterQhat)
		rep.LETLeaves = len(l.Leaves)
		rep.LETBytes = r.Stats.GetBytes - getsBefore
		rep.LETTraversalTime = float64(l.Stats.MACTests) / cfg.CPU.MACTestRate
		hc.Advance(rep.LETTraversalTime)

		listsStart := hc.Now()
		lists := interaction.BuildListsWorkers(batches, t, mac, cfg.WorkersPerRank)
		hc.Advance(float64(lists.Stats.MACTests) / cfg.CPU.MACTestRate)
		rep.Local = lists.Stats
		rep.Remote = l.Stats
		setup2 := hc.Now() - setup1 - precompute
		if tr.Enabled() {
			tr.Span("lists.build", trace.CatBuild, r.ID(), trace.TrackHost, listsStart, hc.Now(),
				trace.A("mac_tests", lists.Stats.MACTests),
				trace.A("direct_pairs", lists.Stats.DirectPairs),
				trace.A("approx_pairs", lists.Stats.ApproxPairs))
			// The setup phase is split around the device precompute: part 1
			// is RCB + local construction, part 2 is windows/LET/lists.
			tr.Span("setup", trace.CatPhase, r.ID(), trace.TrackHost, 0, setup1)
			tr.Span("setup", trace.CatPhase, r.ID(), trace.TrackHost, setup1+precompute, hc.Now())
		}

		// --- Compute: local + LET interaction lists on the device. ---
		computeStart := hc.Now()
		dev.BeginPhase(hc.Now())
		nTg := int64(local.Len())
		copyDone = dev.CopyIn(hc.Now(), 3*8*nTg+l.Bytes())
		var phi *device.AccumBuffer
		if !cfg.ModelOnly {
			phi = device.NewAccumBuffer(int(nTg))
		}
		ln := core.NewLauncher(dev, hc, k, cfg.Streams, false, cfg.Precision, cfg.ModelOnly, copyDone)
		tg := batches.Targets
		src := t.Particles
		for bi := range batches.Batches {
			b := &batches.Batches[bi]
			for _, ci := range lists.Direct[bi] {
				nd := &t.Nodes[ci]
				ln.LaunchDirect(tg, b.Lo, b.Count(), src, nd.Lo, nd.Hi, phi)
			}
			for _, ci := range lists.Approx[bi] {
				ln.LaunchApprox(tg, b.Lo, b.Count(), cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci], phi)
			}
			if cfg.OverlapComm {
				// Pipelined schedule: the local-list launches above needed
				// no remote data and ran with the bulk fetch still in
				// flight; complete just this batch's LET requests before
				// its remote-list launches. Requests shared with earlier
				// batches are already done; stalls shrink as the fetch
				// progressively completes under compute. The launch call
				// sequence is identical to the serial schedule, so the
				// functional accumulation order — and Phi — is unchanged.
				fetch.WaitBatch(l, bi)
			}
			for _, li := range l.Direct[bi] {
				leaf := l.Leaves[li]
				ln.LaunchDirect(tg, b.Lo, b.Count(), leaf, 0, leaf.Len(), phi)
			}
			for _, li := range l.Approx[bi] {
				ln.LaunchApprox(tg, b.Lo, b.Count(),
					l.ClusterPX[li], l.ClusterPY[li], l.ClusterPZ[li], l.ClusterQhat[li], phi)
			}
		}
		fetch.WaitAll() // drain any LET requests no batch referenced
		hc.AdvanceTo(dev.Drain())
		hc.AdvanceTo(dev.CopyOut(hc.Now(), 8*nTg))
		compute := hc.Now() - computeStart
		tr.Span("compute", trace.CatPhase, r.ID(), trace.TrackHost, computeStart, hc.Now())

		rep.Times[perfmodel.PhaseSetup] = setup1 + setup2
		rep.Times[perfmodel.PhasePrecompute] = precompute
		rep.Times[perfmodel.PhaseCompute] = compute
		rep.Comm = r.Stats
		rep.CommTime = r.Stats.RMASeconds - rmaBefore
		// Overlap win, measured from the executed timeline: wire seconds
		// the bulk fetch occupied the NIC minus the stall seconds actually
		// paid waiting on it. Zero by construction on the serial schedule
		// (WaitAll immediately after issue pays every second).
		rep.OverlapSaved = fetch.IssuedSeconds() - fetch.StalledSeconds()

		// Scatter local potentials into the global result. The batch
		// permutation maps batch order back to local-partition order;
		// orig maps local-partition order to input order.
		if !cfg.ModelOnly {
			vals := phi.Values()
			localPhi := make([]float64, len(vals))
			batches.Perm.ScatterInto(localPhi, vals)
			phiMu.Lock()
			for i, o := range orig {
				res.Phi[o] = localPhi[i]
			}
			phiMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range res.Ranks {
		res.Times = res.Times.Max(res.Ranks[i].Times)
	}
	return res, nil
}
