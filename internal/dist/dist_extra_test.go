package dist

import (
	"math/rand"
	"testing"

	"barytree/internal/core"
	"barytree/internal/device"
	"barytree/internal/direct"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
)

func TestDistributedSinglePrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := particle.UniformCube(4000, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	cfg := testConfig(3)
	cfg.Precision = device.FP32
	res, err := Run(cfg, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	e := metrics.RelErr2(ref, res.Phi)
	if e > 1e-3 || e < 1e-9 {
		t.Errorf("fp32 distributed error %.3g outside single-precision band", e)
	}
}

func TestDistributedNonUniform(t *testing.T) {
	// A Gaussian blob concentrates particles near the center: RCB
	// produces very differently-shaped subdomains, and the sqrt(2)
	// aspect-ratio rule has to keep local trees healthy.
	rng := rand.New(rand.NewSource(32))
	pts := particle.GaussianBlob(6000, 0.4, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	res, err := Run(testConfig(6), k, pts)
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.RelErr2(ref, res.Phi); e > 1e-5 {
		t.Errorf("blob distributed error %.3g", e)
	}
	// Load balance: RCB guarantees near-equal counts despite clustering.
	for r, rep := range res.Ranks {
		if rep.Particles < 900 || rep.Particles > 1100 {
			t.Errorf("rank %d holds %d particles, want ~1000", r, rep.Particles)
		}
	}
}

func TestDistributedManyRanksFewParticles(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := particle.UniformCube(300, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	res, err := Run(testConfig(16), k, pts)
	if err != nil {
		t.Fatal(err)
	}
	// ~19 particles per rank: everything is direct, so the result is
	// exact up to summation order.
	if e := metrics.RelErr2(ref, res.Phi); e > 1e-12 {
		t.Errorf("tiny distributed error %.3g", e)
	}
}

func TestPhaseTimesAllPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pts := particle.UniformCube(5000, rng)
	res, err := Run(testConfig(4), kernel.Coulomb{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for r, rep := range res.Ranks {
		for ph := perfmodel.PhaseSetup; ph <= perfmodel.PhaseCompute; ph++ {
			if rep.Times[ph] <= 0 {
				t.Errorf("rank %d phase %v time %.3g not positive", r, ph, rep.Times[ph])
			}
		}
	}
	if res.TotalInteractions() == 0 {
		t.Error("no interactions recorded")
	}
}

func TestStreamsOverrideDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	pts := particle.UniformCube(8000, rng)
	k := kernel.Coulomb{}
	base := Config{
		Ranks:     2,
		Params:    core.Params{Theta: 0.8, Degree: 5, LeafSize: 1000, BatchSize: 1000},
		ModelOnly: true,
	}
	multi, err := Run(base, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	base.Streams = 1
	single, err := Run(base, k, pts)
	if err != nil {
		t.Fatal(err)
	}
	if single.Times[perfmodel.PhaseCompute] < multi.Times[perfmodel.PhaseCompute] {
		t.Errorf("1-stream compute %.4g unexpectedly below 4-stream %.4g",
			single.Times[perfmodel.PhaseCompute], multi.Times[perfmodel.PhaseCompute])
	}
}
