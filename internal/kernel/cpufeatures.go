package kernel

// cpuFeatureLevel is set by the amd64 init to the instruction-set level
// the assembly fast paths were selected for on this machine.
var cpuFeatureLevel = "none"

// CPUFeatures reports which instruction-set level the kernel package's
// assembly fast paths run at on this machine: "avx512vl", "avx2-fma",
// "avx", or "none" (non-amd64 builds and x86 CPUs without AVX). The
// value describes the hardware selection made at startup and does not
// change when SetAsmKernels toggles the loops off. Benchmark tooling
// records it so BENCH_*.json numbers are comparable across machines.
func CPUFeatures() string { return cpuFeatureLevel }
