#include "textflag.h"

// Constant 1.0 for the VDIVPD reciprocal broadcast.
DATA ·avxOne+0(SB)/8, $0x3ff0000000000000
GLOBL ·avxOne(SB), RODATA|NOPTR, $8

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 28 is AVX, bit 27 is OSXSAVE; XGETBV(0) bits 1 and
// 2 confirm the OS saves XMM and YMM state across context switches. All
// three are required before any VEX.256 instruction may execute.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, AX
	ANDL $(1<<27 | 1<<28), AX
	CMPL AX, $(1<<27 | 1<<28)
	JNE  notsupported
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  notsupported
	MOVB $1, ret+0(FP)
	RET
notsupported:
	MOVB $0, ret+0(FP)
	RET

// func coulombBlockAVX4(tx, ty, tz float64, sx, sy, sz, q *float64, n int) float64
//
// Four-wide Coulomb block evaluation. n must be a positive multiple of 4.
// Bit-identity with the scalar loop in block.go holds because every vector
// operation is the IEEE-correctly-rounded per-lane twin of its scalar
// counterpart (VSUBPD/VMULPD/VADDPD in the same expression order, VSQRTPD
// for math.Sqrt, VDIVPD for the reciprocal — never FMA), and the only
// order-sensitive step, the phi accumulation, is done with four scalar
// VADDSD in source order. The r2 == 0 self-interaction lanes are zeroed by
// mask, matching the scalar branch; NaN lanes compare unequal to zero and
// flow through the compute path exactly like the scalar code.
TEXT ·coulombBlockAVX4(SB), NOSPLIT, $0-72
	VBROADCASTSD tx+0(FP), Y0
	VBROADCASTSD ty+8(FP), Y1
	VBROADCASTSD tz+16(FP), Y2
	VBROADCASTSD ·avxOne(SB), Y4
	MOVQ   sx+24(FP), SI
	MOVQ   sy+32(FP), DI
	MOVQ   sz+40(FP), R8
	MOVQ   q+48(FP), R9
	MOVQ   n+56(FP), CX
	VXORPD Y3, Y3, Y3              // phi accumulator (low lane of X3)
	VXORPD Y5, Y5, Y5              // zeros for the r2 == 0 mask

loop:
	VMOVUPD (SI), Y6               // sx[j:j+4]
	VMOVUPD (DI), Y7               // sy[j:j+4]
	VMOVUPD (R8), Y8               // sz[j:j+4]
	VSUBPD  Y6, Y0, Y6             // dx = tx - sx
	VSUBPD  Y7, Y1, Y7             // dy = ty - sy
	VSUBPD  Y8, Y2, Y8             // dz = tz - sz
	VMULPD  Y6, Y6, Y6             // dx*dx
	VMULPD  Y7, Y7, Y7             // dy*dy
	VMULPD  Y8, Y8, Y8             // dz*dz
	VADDPD  Y7, Y6, Y6             // dx*dx + dy*dy
	VADDPD  Y8, Y6, Y6             // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPD  $0, Y5, Y6, Y8         // mask = (r2 == 0), EQ_OQ
	VSQRTPD Y6, Y7                 // sqrt(r2)
	VDIVPD  Y7, Y4, Y7             // g = 1 / sqrt(r2)
	VANDNPD Y7, Y8, Y7             // g = 0 on self-interaction lanes
	VMOVUPD (R9), Y9               // q[j:j+4]
	VMULPD  Y9, Y7, Y7             // g * q

	// phi += the four products, strictly in source order.
	VADDSD       X7, X3, X3
	VPERMILPD    $1, X7, X10
	VADDSD       X10, X3, X3
	VEXTRACTF128 $1, Y7, X11
	VADDSD       X11, X3, X3
	VPERMILPD    $1, X11, X12
	VADDSD       X12, X3, X3

	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	SUBQ $4, CX
	JNE  loop

	VZEROUPPER
	MOVSD X3, ret+64(FP)
	RET
