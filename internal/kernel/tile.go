package kernel

import "math"

// TileWidth is the number of targets a tile-kernel call evaluates together.
// It matches the four-lane width of the AVX tile loop; the drivers handle
// ragged batch edges with single-target block-path epilogues.
const TileWidth = 4

// Tile8Width is the width of the register-blocked fp64 tile fast path:
// kernels for which Tile8 resolves non-nil evaluate eight targets per
// source stream. The drivers treat the width as a per-kernel dispatch
// property — a width-8 main loop when available, then the width-4
// TileKernel loop, then single-target epilogues — so kernels without an
// 8-wide implementation lose nothing.
const Tile8Width = 8

// F32TileWidth is the number of targets a single-precision tile evaluates
// together. fp32 lanes are half as wide as fp64 lanes, so the same 256-bit
// vector holds eight float32 targets (the __m256 SoA layout): the fp32
// tile contract, drivers and assembly are all 8-wide.
const F32TileWidth = 8

// TileKernel is the target-tiled block-evaluation fast path: one call
// evaluates a whole block of sources against a *tile* of TileWidth targets,
// accumulating each target's charge-weighted potential into phi:
//
//	for t := range phi { phi[t] += sum_j G(tile_t, s_j) * q[j] }
//
// This is the host-side analogue of the paper's GPU thread-block layout,
// where a block of targets shares every streamed source/cluster block: the
// sx/sy/sz/q arrays are loaded once per tile instead of once per target,
// and the four per-target accumulator chains run independently.
//
// Contract: EvalTileAccum must be bit-identical to the per-target reference
//
//	for t := 0; t < TileWidth; t++ {
//		phi[t] += k.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
//	}
//
// — each target's inner sum accumulated in source order from zero, and
// exactly one add of that block total into phi[t] (so tiling never changes
// how partial sums are grouped across blocks). Implementations may
// interleave the four chains source-by-source — the chains are independent
// — but must not reorder any single target's accumulation. All built-in
// kernels implement TileKernel; every other kernel gets the generic
// adapter from AsTile, which falls back to the BlockKernel path per
// target, so kernel.Func and user kernels keep working unchanged.
type TileKernel interface {
	BlockKernel
	EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64)
}

// F32TileKernel is the single-precision tile fast path. Source coordinates
// and charges arrive as the float64 storage arrays and are rounded per
// element; per target the contract mirrors EvalBlockAccumF32:
//
//	for t := 0; t < F32TileWidth; t++ {
//		phi[t] += k.EvalBlockAccumF32(tx[t], ty[t], tz[t], sx, sy, sz, q)
//	}
//
// As with TileKernel, the per-target chains may be interleaved but not
// reordered, and exact kernels must stay bit-identical to that reference;
// transcendental kernels are covered by the F32TileMaxULP contract.
type F32TileKernel interface {
	F32BlockKernel
	EvalTileAccumF32(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32)
}

// Tile8Func evaluates a source block against an 8-target fp64 tile under
// the same contract as TileKernel.EvalTileAccum, at Tile8Width. len(q)
// must be positive.
type Tile8Func func(tx, ty, tz *[Tile8Width]float64, sx, sy, sz, q []float64, phi *[Tile8Width]float64)

// Tile8 resolves the register-blocked 8-wide fp64 tile fast path for k,
// or nil when k has none (non-amd64 builds, CPUs without the required
// features, kernels without an 8-wide loop, or asm kernels disabled via
// SetAsmKernels). There is deliberately no pure-Go 8-wide fallback: for
// exact kernels a width-8 tile is bit-identical to two width-4 tiles of
// the same targets — regrouping targets cannot change any target's
// chain — so the Go TileKernel loop already *is* the 8-wide reference,
// and the drivers simply skip the width-8 pass when Tile8 returns nil.
// Resolve once per run, outside the hot loops.
func Tile8(k Kernel) Tile8Func {
	switch k.(type) {
	case Coulomb:
		return coulombTile8Loop
	}
	return nil
}

// coulombTile8Loop, when non-nil, is the register-blocked 8-target Coulomb
// tile: two 4-lane groups sharing each source's broadcasts (tile_amd64.s).
var coulombTile8Loop Tile8Func

// AsTile resolves the tile fast path for k: kernels implementing
// TileKernel (all built-ins) are returned unchanged; any other Kernel —
// kernel.Func and user-defined kernels — is wrapped in a generic adapter
// that evaluates the tile one target at a time through the BlockKernel
// path (itself resolved with AsBlock, so a custom BlockKernel
// implementation is honored). Resolve once per run, outside the hot loops.
func AsTile(k Kernel) TileKernel {
	if tk, ok := k.(TileKernel); ok {
		return tk
	}
	return tileAdapter{AsBlock(k)}
}

// AsF32Tile resolves the single-precision tile fast path for k, wrapping
// kernels without a native F32TileKernel implementation in a generic
// per-target adapter over the F32 block path.
func AsF32Tile(k F32Kernel) F32TileKernel {
	if tk, ok := k.(F32TileKernel); ok {
		return tk
	}
	return f32TileAdapter{AsF32Block(k)}
}

// tileAdapter lifts any BlockKernel to TileKernel with a per-target block
// loop — the executable form of the TileKernel contract.
type tileAdapter struct {
	BlockKernel
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (a tileAdapter) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	for t := 0; t < TileWidth; t++ {
		phi[t] += a.BlockKernel.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
	}
}

// f32TileAdapter lifts any F32BlockKernel to F32TileKernel.
type f32TileAdapter struct {
	F32BlockKernel
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (a f32TileAdapter) EvalTileAccumF32(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32) {
	for t := 0; t < F32TileWidth; t++ {
		phi[t] += a.F32BlockKernel.EvalBlockAccumF32(tx[t], ty[t], tz[t], sx, sy, sz, q)
	}
}

// --- Hand-specialized fp64 tile loops for the built-in kernels. Each loop
// nest streams the source arrays once: for every source, all four targets
// evaluate their kernel expression (repeated verbatim from the scalar
// Eval, loop-invariant parameter products hoisted) and advance their own
// scalar accumulator chain, so each chain's bits match the per-target
// block loop exactly while the sources are loaded once per tile.

// coulombTileLoop, when non-nil, evaluates a whole Coulomb tile with the
// targets packed across SIMD lanes — per-lane IEEE-correctly-rounded
// vector sqrt/div, per-lane (hence per-target, in source order) vector
// accumulation — so the bits match the scalar chains exactly (see
// tile_amd64.s). The source block is handled whole: broadcasting one
// source at a time needs no multiple-of-anything prefix. Nil on
// architectures without an implementation and on x86 CPUs without AVX.
var coulombTileLoop func(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64)

// EvalTileAccum implements TileKernel.
//
//hot:path
func (Coulomb) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	if coulombTileLoop != nil && len(q) > 0 {
		coulombTileLoop(tx, ty, tz, sx, sy, sz, q, phi)
		return
	}
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// yukawaTileLoop, when non-nil, evaluates a whole Yukawa tile with the
// exp computed by a range-reduced polynomial on the FMA ports
// (tile_amd64.s). Unlike the Coulomb loops it is NOT bit-identical to
// the scalar chains: the polynomial and math.Exp are different faithful
// approximations, so the tile carries the measured-ULP contract below
// (YukawaTileMaxULP) instead of the exact `==` contract. negKappa is
// -k.Kappa, so the vector (-kappa)*r product matches the scalar's bits.
var yukawaTileLoop func(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, negKappa float64, phi *[TileWidth]float64)

// Accuracy contract for the vectorized tiles, per kernel:
//
//   - An exact kernel's tile paths are bit-identical to the per-target
//     scalar reference (the TileKernel contract) — TileMaxULP reports 0
//     and the tests compare with `==`.
//   - A transcendental kernel whose vector path approximates exp/log/...
//     differently from math.* cannot be exact; it instead pins a measured
//     per-pairwise-term ULP bound. TileMaxULP reports that bound, and the
//     tests check |tile - scalar| against it (scaled by the sum of
//     absolute terms for multi-source blocks, since per-term errors
//     accumulate additively at worst).
//
// The bounds are constants, not knobs: they were measured over the fuzz
// corpus and the full [-745, 710] exp argument range with margin, and
// TestYukawaTileULPContract fails if the implementation ever drifts past
// them, exactly as the bit-identity tests fail on a single flipped bit.
const (
	// YukawaTileMaxULP bounds |yukawaTileLoop - scalar| for one pairwise
	// Yukawa term, in fp64 ulps of the scalar term. EXPPD's error budget:
	// ~2.2 ulp from the polynomial + reduction, ~0.5 from each scale
	// multiply, ~0.5 from the division, against math.Exp's own ~1 ulp —
	// measured max over the fuzz corpus is 4 ulp; 6 leaves margin without
	// weakening the contract below observability.
	YukawaTileMaxULP = 6

	// YukawaTileF32MaxULP bounds the fp32 Yukawa tile's per-term error in
	// float32 ulps. The fp64 exp error above narrows to <= 1 ulp32 almost
	// everywhere; 3 covers the narrowing+division double rounding worst
	// case observed under fuzzing (max seen: 2).
	YukawaTileF32MaxULP = 3
)

// TileMaxULP reports the accuracy contract of k's vectorized fp64 tile
// paths against the scalar per-target reference: 0 means every installed
// vector path is bit-identical (`==`), n > 0 means pairwise terms may
// differ by up to n ulps (transcendental kernels whose vector exp is not
// math.Exp). Kernels currently running pure-Go tile loops are exact by
// construction. The result reflects the loops installed right now, so it
// follows SetAsmKernels.
func TileMaxULP(k Kernel) int {
	if _, ok := k.(Yukawa); ok && yukawaTileLoop != nil {
		return YukawaTileMaxULP
	}
	return 0
}

// F32TileMaxULP is TileMaxULP for the single-precision tile paths, in
// float32 ulps.
func F32TileMaxULP(k F32Kernel) int {
	if _, ok := k.(Yukawa); ok && yukawaTileF32Loop != nil {
		return YukawaTileF32MaxULP
	}
	return 0
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (k Yukawa) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	if yukawaTileLoop != nil && len(q) > 0 {
		yukawaTileLoop(tx, ty, tz, sx, sy, sz, q, -k.Kappa, phi)
		return
	}
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	kappa := k.Kappa
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (g Gaussian) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	s2 := g.Sigma * g.Sigma
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (m Multiquadric) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	c2 := m.C * m.C
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (r RegularizedCoulomb) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e2 := r.Eps * r.Eps
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (ip InversePower) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e := -ip.P / 2
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// --- Hand-specialized fp32 tile loops for the built-in F32 kernels, at
// the eight-lane F32TileWidth.

// coulombTileF32Loop, when non-nil, evaluates a whole fp32 Coulomb tile
// with the eight targets packed across float32 SIMD lanes. It is
// bit-identical to the scalar chains below: the per-element float32
// roundings of the source arrays, the fp32 distance math, the
// double-rounding-innocuous fp32 sqrt, the division and the per-lane
// source-order accumulation all have exact vector twins (tile_amd64.s).
var coulombTileF32Loop func(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32)

// yukawaTileF32Loop, when non-nil, is the fp32 Yukawa tile: exact twins
// everywhere except the exp, which runs the fp64 EXPPD polynomial on
// widened lanes and narrows back — the YukawaTileF32MaxULP contract.
var yukawaTileF32Loop func(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, negKappa float32, phi *[F32TileWidth]float32)

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (Coulomb) EvalTileAccumF32(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32) {
	if coulombTileF32Loop != nil && len(q) > 0 {
		coulombTileF32Loop(tx, ty, tz, sx, sy, sz, q, phi)
		return
	}
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	tx4, tx5, tx6, tx7 := tx[4], tx[5], tx[6], tx[7]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	ty4, ty5, ty6, ty7 := ty[4], ty[5], ty[6], ty[7]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	tz4, tz5, tz6, tz7 := tz[4], tz[5], tz[6], tz[7]
	var p0, p1, p2, p3, p4, p5, p6, p7 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		var g float32
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p3 += g * qj
		dx, dy, dz = tx4-sxj, ty4-syj, tz4-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p4 += g * qj
		dx, dy, dz = tx5-sxj, ty5-syj, tz5-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p5 += g * qj
		dx, dy, dz = tx6-sxj, ty6-syj, tz6-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p6 += g * qj
		dx, dy, dz = tx7-sxj, ty7-syj, tz7-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p7 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
	phi[4] += p4
	phi[5] += p5
	phi[6] += p6
	phi[7] += p7
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (k Yukawa) EvalTileAccumF32(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32) {
	if yukawaTileF32Loop != nil && len(q) > 0 {
		yukawaTileF32Loop(tx, ty, tz, sx, sy, sz, q, -float32(k.Kappa), phi)
		return
	}
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	kappa := float32(k.Kappa)
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	tx4, tx5, tx6, tx7 := tx[4], tx[5], tx[6], tx[7]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	ty4, ty5, ty6, ty7 := ty[4], ty[5], ty[6], ty[7]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	tz4, tz5, tz6, tz7 := tz[4], tz[5], tz[6], tz[7]
	var p0, p1, p2, p3, p4, p5, p6, p7 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		var g float32
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p3 += g * qj
		dx, dy, dz = tx4-sxj, ty4-syj, tz4-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p4 += g * qj
		dx, dy, dz = tx5-sxj, ty5-syj, tz5-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p5 += g * qj
		dx, dy, dz = tx6-sxj, ty6-syj, tz6-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p6 += g * qj
		dx, dy, dz = tx7-sxj, ty7-syj, tz7-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p7 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
	phi[4] += p4
	phi[5] += p5
	phi[6] += p6
	phi[7] += p7
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (g Gaussian) EvalTileAccumF32(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	s := float32(g.Sigma)
	s2 := s * s
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	tx4, tx5, tx6, tx7 := tx[4], tx[5], tx[6], tx[7]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	ty4, ty5, ty6, ty7 := ty[4], ty[5], ty[6], ty[7]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	tz4, tz5, tz6, tz7 := tz[4], tz[5], tz[6], tz[7]
	var p0, p1, p2, p3, p4, p5, p6, p7 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx4-sxj, ty4-syj, tz4-szj
		p4 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx5-sxj, ty5-syj, tz5-szj
		p5 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx6-sxj, ty6-syj, tz6-szj
		p6 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx7-sxj, ty7-syj, tz7-szj
		p7 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
	phi[4] += p4
	phi[5] += p5
	phi[6] += p6
	phi[7] += p7
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (r RegularizedCoulomb) EvalTileAccumF32(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e := float32(r.Eps)
	e2 := e * e
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	tx4, tx5, tx6, tx7 := tx[4], tx[5], tx[6], tx[7]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	ty4, ty5, ty6, ty7 := ty[4], ty[5], ty[6], ty[7]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	tz4, tz5, tz6, tz7 := tz[4], tz[5], tz[6], tz[7]
	var p0, p1, p2, p3, p4, p5, p6, p7 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx4-sxj, ty4-syj, tz4-szj
		p4 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx5-sxj, ty5-syj, tz5-szj
		p5 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx6-sxj, ty6-syj, tz6-szj
		p6 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx7-sxj, ty7-syj, tz7-szj
		p7 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
	phi[4] += p4
	phi[5] += p5
	phi[6] += p6
	phi[7] += p7
}
