package kernel

import "math"

// TileWidth is the number of targets a tile-kernel call evaluates together.
// It matches the four-lane width of the AVX tile loop; the drivers handle
// ragged batch edges with single-target block-path epilogues.
const TileWidth = 4

// TileKernel is the target-tiled block-evaluation fast path: one call
// evaluates a whole block of sources against a *tile* of TileWidth targets,
// accumulating each target's charge-weighted potential into phi:
//
//	for t := range phi { phi[t] += sum_j G(tile_t, s_j) * q[j] }
//
// This is the host-side analogue of the paper's GPU thread-block layout,
// where a block of targets shares every streamed source/cluster block: the
// sx/sy/sz/q arrays are loaded once per tile instead of once per target,
// and the four per-target accumulator chains run independently.
//
// Contract: EvalTileAccum must be bit-identical to the per-target reference
//
//	for t := 0; t < TileWidth; t++ {
//		phi[t] += k.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
//	}
//
// — each target's inner sum accumulated in source order from zero, and
// exactly one add of that block total into phi[t] (so tiling never changes
// how partial sums are grouped across blocks). Implementations may
// interleave the four chains source-by-source — the chains are independent
// — but must not reorder any single target's accumulation. All built-in
// kernels implement TileKernel; every other kernel gets the generic
// adapter from AsTile, which falls back to the BlockKernel path per
// target, so kernel.Func and user kernels keep working unchanged.
type TileKernel interface {
	BlockKernel
	EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64)
}

// F32TileKernel is the single-precision tile fast path. Source coordinates
// and charges arrive as the float64 storage arrays and are rounded per
// element; per target the contract mirrors EvalBlockAccumF32:
//
//	for t := 0; t < TileWidth; t++ {
//		phi[t] += k.EvalBlockAccumF32(tx[t], ty[t], tz[t], sx, sy, sz, q)
//	}
type F32TileKernel interface {
	F32BlockKernel
	EvalTileAccumF32(tx, ty, tz *[TileWidth]float32, sx, sy, sz, q []float64, phi *[TileWidth]float32)
}

// AsTile resolves the tile fast path for k: kernels implementing
// TileKernel (all built-ins) are returned unchanged; any other Kernel —
// kernel.Func and user-defined kernels — is wrapped in a generic adapter
// that evaluates the tile one target at a time through the BlockKernel
// path (itself resolved with AsBlock, so a custom BlockKernel
// implementation is honored). Resolve once per run, outside the hot loops.
func AsTile(k Kernel) TileKernel {
	if tk, ok := k.(TileKernel); ok {
		return tk
	}
	return tileAdapter{AsBlock(k)}
}

// AsF32Tile resolves the single-precision tile fast path for k, wrapping
// kernels without a native F32TileKernel implementation in a generic
// per-target adapter over the F32 block path.
func AsF32Tile(k F32Kernel) F32TileKernel {
	if tk, ok := k.(F32TileKernel); ok {
		return tk
	}
	return f32TileAdapter{AsF32Block(k)}
}

// tileAdapter lifts any BlockKernel to TileKernel with a per-target block
// loop — the executable form of the TileKernel contract.
type tileAdapter struct {
	BlockKernel
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (a tileAdapter) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	for t := 0; t < TileWidth; t++ {
		phi[t] += a.BlockKernel.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
	}
}

// f32TileAdapter lifts any F32BlockKernel to F32TileKernel.
type f32TileAdapter struct {
	F32BlockKernel
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (a f32TileAdapter) EvalTileAccumF32(tx, ty, tz *[TileWidth]float32, sx, sy, sz, q []float64, phi *[TileWidth]float32) {
	for t := 0; t < TileWidth; t++ {
		phi[t] += a.F32BlockKernel.EvalBlockAccumF32(tx[t], ty[t], tz[t], sx, sy, sz, q)
	}
}

// --- Hand-specialized fp64 tile loops for the built-in kernels. Each loop
// nest streams the source arrays once: for every source, all four targets
// evaluate their kernel expression (repeated verbatim from the scalar
// Eval, loop-invariant parameter products hoisted) and advance their own
// scalar accumulator chain, so each chain's bits match the per-target
// block loop exactly while the sources are loaded once per tile.

// coulombTileLoop, when non-nil, evaluates a whole Coulomb tile with the
// targets packed across SIMD lanes — per-lane IEEE-correctly-rounded
// vector sqrt/div, per-lane (hence per-target, in source order) vector
// accumulation — so the bits match the scalar chains exactly (see
// tile_amd64.s). The source block is handled whole: broadcasting one
// source at a time needs no multiple-of-anything prefix. Nil on
// architectures without an implementation and on x86 CPUs without AVX.
var coulombTileLoop func(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64)

// EvalTileAccum implements TileKernel.
//
//hot:path
func (Coulomb) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	if coulombTileLoop != nil && len(q) > 0 {
		coulombTileLoop(tx, ty, tz, sx, sy, sz, q, phi)
		return
	}
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (k Yukawa) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	kappa := k.Kappa
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (g Gaussian) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	s2 := g.Sigma * g.Sigma
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += math.Exp(-(dx*dx+dy*dy+dz*dz)/s2) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (m Multiquadric) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	c2 := m.C * m.C
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (r RegularizedCoulomb) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e2 := r.Eps * r.Eps
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccum implements TileKernel.
//
//hot:path
func (ip InversePower) EvalTileAccum(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e := -ip.P / 2
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float64
	for j := range q {
		sxj, syj, szj, qj := sx[j], sy[j], sz[j], q[j]
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// --- Hand-specialized fp32 tile loops for the built-in F32 kernels.

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (Coulomb) EvalTileAccumF32(tx, ty, tz *[TileWidth]float32, sx, sy, sz, q []float64, phi *[TileWidth]float32) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		var g float32
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (k Yukawa) EvalTileAccumF32(tx, ty, tz *[TileWidth]float32, sx, sy, sz, q []float64, phi *[TileWidth]float32) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	kappa := float32(k.Kappa)
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		r2 := dx*dx + dy*dy + dz*dz
		var g float32
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p0 += g * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p1 += g * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p2 += g * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		r2 = dx*dx + dy*dy + dz*dz
		g = 0
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		p3 += g * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (g Gaussian) EvalTileAccumF32(tx, ty, tz *[TileWidth]float32, sx, sy, sz, q []float64, phi *[TileWidth]float32) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	s := float32(g.Sigma)
	s2 := s * s
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += float32(math.Exp(float64(-(dx*dx+dy*dy+dz*dz)/s2))) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}

// EvalTileAccumF32 implements F32TileKernel.
//
//hot:path
func (r RegularizedCoulomb) EvalTileAccumF32(tx, ty, tz *[TileWidth]float32, sx, sy, sz, q []float64, phi *[TileWidth]float32) {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e := float32(r.Eps)
	e2 := e * e
	tx0, tx1, tx2, tx3 := tx[0], tx[1], tx[2], tx[3]
	ty0, ty1, ty2, ty3 := ty[0], ty[1], ty[2], ty[3]
	tz0, tz1, tz2, tz3 := tz[0], tz[1], tz[2], tz[3]
	var p0, p1, p2, p3 float32
	for j := range q {
		sxj, syj, szj := float32(sx[j]), float32(sy[j]), float32(sz[j])
		qj := float32(q[j])
		dx, dy, dz := tx0-sxj, ty0-syj, tz0-szj
		p0 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx1-sxj, ty1-syj, tz1-szj
		p1 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx2-sxj, ty2-syj, tz2-szj
		p2 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
		dx, dy, dz = tx3-sxj, ty3-syj, tz3-szj
		p3 += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * qj
	}
	phi[0] += p0
	phi[1] += p1
	phi[2] += p2
	phi[3] += p3
}
