//go:build amd64

package kernel

// coulombTileAVX evaluates a full Coulomb source block against a 4-target
// tile with the targets packed across YMM lanes (see tile_amd64.s). n must
// be positive; there is no alignment or multiple-of-anything requirement
// because each iteration broadcasts a single source to all four lanes.
//
//go:noescape
func coulombTileAVX(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q *float64, n int, phi *[TileWidth]float64)

// coulombTileAVX512 is the EVEX variant: same tile layout, but the
// reciprocal runs as a correctly-rounded Newton–Raphson sequence on the
// FMA ports, off the divide/sqrt unit that bounds the AVX loop. Requires
// AVX-512 F+VL. See tile_amd64.s.
//
//go:noescape
func coulombTileAVX512(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q *float64, n int, phi *[TileWidth]float64)

// cpuHasAVX512VL reports AVX512F+VL support with full OS state saving.
// Implemented in tile_amd64.s.
func cpuHasAVX512VL() bool

func init() {
	if !cpuHasAVX() {
		return
	}
	tile := coulombTileAVX
	if cpuHasAVX512VL() {
		tile = coulombTileAVX512
	}
	coulombTileLoop = func(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
		tile(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], len(q), phi)
	}
}
