//go:build amd64

package kernel

// coulombTileAVX evaluates a full Coulomb source block against a 4-target
// tile with the targets packed across YMM lanes (see tile_amd64.s). n must
// be positive; there is no alignment or multiple-of-anything requirement
// because each iteration broadcasts a single source to all four lanes.
//
//go:noescape
func coulombTileAVX(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q *float64, n int, phi *[TileWidth]float64)

// coulombTileAVX512 is the EVEX variant: same tile layout, but the
// reciprocal runs as a correctly-rounded Newton–Raphson sequence on the
// FMA ports, off the divide/sqrt unit that bounds the AVX loop. Requires
// AVX-512 F+VL. See tile_amd64.s.
//
//go:noescape
func coulombTileAVX512(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q *float64, n int, phi *[TileWidth]float64)

// coulombTile8AVX is the register-blocked 8-target Coulomb tile: two
// 4-lane groups sharing each source's broadcasts. AVX only. See
// tile_amd64.s.
//
//go:noescape
func coulombTile8AVX(tx, ty, tz *[Tile8Width]float64, sx, sy, sz, q *float64, n int, phi *[Tile8Width]float64)

// coulombTile8AVX512 is the EVEX 8-target variant: the second lane group
// lives entirely in the AVX-512VL upper register file (Y16-Y31) and both
// groups use the Newton–Raphson reciprocal. See tile_amd64.s.
//
//go:noescape
func coulombTile8AVX512(tx, ty, tz *[Tile8Width]float64, sx, sy, sz, q *float64, n int, phi *[Tile8Width]float64)

// coulombTile8ZMM is the 512-bit 8-target variant for parts with dual
// 512-bit FMA pipes: one ZMM lane group with the square root computed by
// a correctly-rounded Goldschmidt/Markstein sequence on the FMA ports,
// off the divide/sqrt unit that bounds the YMM tiles. Still bit-identical
// to the scalar loop. Requires AVX-512 F+VL. See tile_amd64.s.
//
//go:noescape
func coulombTile8ZMM(tx, ty, tz *[Tile8Width]float64, sx, sy, sz, q *float64, n int, phi *[Tile8Width]float64)

// yukawaTileFMA evaluates a Yukawa source block against a 4-target tile
// with exp computed by a range-reduced polynomial on the FMA ports
// (EXPPD in tile_amd64.s). Requires AVX2+FMA; carries the measured-ULP
// contract (YukawaTileMaxULP), not bit-identity. negKappa is -kappa.
//
//go:noescape
func yukawaTileFMA(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q *float64, n int, negKappa float64, phi *[TileWidth]float64)

// coulombTileF32AVX2 evaluates a Coulomb source block against an
// 8-target fp32 tile, bit-identical to the scalar fp32 chains. Requires
// AVX2 (register-source VBROADCASTSS). See tile_amd64.s.
//
//go:noescape
func coulombTileF32AVX2(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q *float64, n int, phi *[F32TileWidth]float32)

// yukawaTileF32FMA evaluates a Yukawa source block against an 8-target
// fp32 tile, exact except for the widened EXPPD exp (YukawaTileF32MaxULP
// contract). Requires AVX2+FMA. negKappa is -float32(kappa).
//
//go:noescape
func yukawaTileF32FMA(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q *float64, n int, negKappa float32, phi *[F32TileWidth]float32)

// cpuHasAVX512VL reports AVX512F+VL support with full OS state saving.
// Implemented in tile_amd64.s.
func cpuHasAVX512VL() bool

// cpuHasAVX2FMA reports AVX2 and FMA3 instruction support; the caller
// must additionally require cpuHasAVX for the OS-state half of the
// check. Implemented in tile_amd64.s.
func cpuHasAVX2FMA() bool

func init() {
	if !cpuHasAVX() {
		return
	}
	avx512 := cpuHasAVX512VL()
	fma := cpuHasAVX2FMA()
	switch {
	case avx512:
		cpuFeatureLevel = "avx512vl"
	case fma:
		cpuFeatureLevel = "avx2-fma"
	default:
		cpuFeatureLevel = "avx"
	}

	// One installer for every assembly loop in the package (including
	// block_amd64.go's coulombBlockHead, which its own init also sets —
	// idempotently), so SetAsmKernels can flip them all together.
	asmInstall = func(on bool) {
		if !on {
			coulombBlockHead = nil
			coulombTileLoop = nil
			coulombTile8Loop = nil
			yukawaTileLoop = nil
			coulombTileF32Loop = nil
			yukawaTileF32Loop = nil
			return
		}
		coulombBlockHead = coulombBlockHeadAVX
		tile := coulombTileAVX
		tile8 := coulombTile8AVX
		if avx512 {
			tile = coulombTileAVX512
			// The pair-wise Goldschmidt/divider ZMM tile overlaps the two
			// square-root resources (see tile_amd64.s); the register-blocked
			// coulombTile8AVX512 is kept built and tested as the 256-bit
			// alternative for parts where 512-bit execution doesn't pay.
			tile8 = coulombTile8ZMM
		}
		coulombTileLoop = func(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, phi *[TileWidth]float64) {
			tile(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], len(q), phi)
		}
		coulombTile8Loop = func(tx, ty, tz *[Tile8Width]float64, sx, sy, sz, q []float64, phi *[Tile8Width]float64) {
			// Unlike the TileWidth loops, which sit behind EvalTileAccum
			// dispatch that already skips empty blocks, Tile8Func is
			// called directly by the drivers — guard the empty block here.
			if len(q) == 0 {
				return
			}
			tile8(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], len(q), phi)
		}
		if !fma {
			return
		}
		yukawaTileLoop = func(tx, ty, tz *[TileWidth]float64, sx, sy, sz, q []float64, negKappa float64, phi *[TileWidth]float64) {
			yukawaTileFMA(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], len(q), negKappa, phi)
		}
		coulombTileF32Loop = func(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, phi *[F32TileWidth]float32) {
			coulombTileF32AVX2(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], len(q), phi)
		}
		yukawaTileF32Loop = func(tx, ty, tz *[F32TileWidth]float32, sx, sy, sz, q []float64, negKappa float32, phi *[F32TileWidth]float32) {
			yukawaTileF32FMA(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], len(q), negKappa, phi)
		}
	}
	asmInstall(true)
}
