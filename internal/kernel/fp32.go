package kernel

import "math"

// F32Kernel is the optional single-precision evaluation interface used by
// the mixed-precision extension (listed as future work in the paper's
// conclusions). A kernel implementing F32Kernel evaluates with float32
// inputs, float32 arithmetic where the standard library permits, and a
// float32 result; special functions round through float64 (as GPU SFUs
// effectively do at reduced precision).
type F32Kernel interface {
	Kernel
	EvalF32(tx, ty, tz, sx, sy, sz float32) float32
}

// EvalF32 implements F32Kernel.
func (Coulomb) EvalF32(tx, ty, tz, sx, sy, sz float32) float32 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	return 1 / float32(math.Sqrt(float64(r2)))
}

// EvalF32 implements F32Kernel.
func (k Yukawa) EvalF32(tx, ty, tz, sx, sy, sz float32) float32 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	r := float32(math.Sqrt(float64(r2)))
	return float32(math.Exp(float64(-float32(k.Kappa)*r))) / r
}

// EvalF32 implements F32Kernel.
func (g Gaussian) EvalF32(tx, ty, tz, sx, sy, sz float32) float32 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	s := float32(g.Sigma)
	return float32(math.Exp(float64(-r2 / (s * s))))
}

// EvalF32 implements F32Kernel.
func (r RegularizedCoulomb) EvalF32(tx, ty, tz, sx, sy, sz float32) float32 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	e := float32(r.Eps)
	return 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e*e)))
}
