#include "textflag.h"

// +Inf, for the 1/sqrt(overflowed r2) = +0 lanes of the AVX-512 path.
DATA ·avxInf+0(SB)/8, $0x7ff0000000000000
GLOBL ·avxInf(SB), RODATA|NOPTR, $8

// 0.5, for the Goldschmidt square-root iteration of the ZMM tile.
DATA ·avxHalf+0(SB)/8, $0x3fe0000000000000
GLOBL ·avxHalf(SB), RODATA|NOPTR, $8

// 2^-512, the ZMM tile's fast-path cutoff: below it the Markstein
// residual x - g*g can fall into the denormal range, where its rounding
// is too coarse to steer the final correction (observed 1-ulp misses at
// x ~ 2^-1022). Lanes below the cutoff take the VSQRTPD slow path.
DATA ·avxTiny+0(SB)/8, $0x1ff0000000000000
GLOBL ·avxTiny(SB), RODATA|NOPTR, $8

// --- Constants for the vectorized fp64 exp (EXPPD below). All are full
// 256-bit lanes of the same value because VEX instructions cannot
// broadcast a memory operand (that is EVEX-only) and the polynomial wants
// its coefficients as memory operands to stay out of the register file.

// Argument clamp: exp rounds to 0 below -745.14 (half the smallest
// subnormal) and overflows to +Inf above 709.79; clamping to [-746, 710]
// keeps the scale exponents k1, k2 in the normal range while mapping
// every out-of-range input to the correct 0 / +Inf through the scaling
// multiplies. The lower clamp sits BELOW the underflow cutoff so the
// round-to-zero / round-to-minimum-subnormal boundary at -745.13 is
// decided by the polynomial and scale multiplies themselves (p*2^-1075
// rounds up exactly when p > 1, i.e. x > -1075*ln2), never by the clamp;
// -746 still maps through k >= -1077, k1,k2 >= -539, biased exponents
// always positive.
DATA ·expMax+0(SB)/8, $0x4086300000000000 // 710.0
DATA ·expMax+8(SB)/8, $0x4086300000000000
DATA ·expMax+16(SB)/8, $0x4086300000000000
DATA ·expMax+24(SB)/8, $0x4086300000000000
GLOBL ·expMax(SB), RODATA|NOPTR, $32

DATA ·expMin+0(SB)/8, $0xc087500000000000 // -746.0
DATA ·expMin+8(SB)/8, $0xc087500000000000
DATA ·expMin+16(SB)/8, $0xc087500000000000
DATA ·expMin+24(SB)/8, $0xc087500000000000
GLOBL ·expMin(SB), RODATA|NOPTR, $32

DATA ·expLog2E+0(SB)/8, $0x3ff71547652b82fe // log2(e)
DATA ·expLog2E+8(SB)/8, $0x3ff71547652b82fe
DATA ·expLog2E+16(SB)/8, $0x3ff71547652b82fe
DATA ·expLog2E+24(SB)/8, $0x3ff71547652b82fe
GLOBL ·expLog2E(SB), RODATA|NOPTR, $32

// Cody-Waite split of ln2: the high part carries 32 significant bits, so
// k*Ln2Hi is exact for |k| <= 2^20 (we have |k| <= 1075) and the two
// VFNMADDs reduce x to r = x - k*ln2 with error below 2^-67.
DATA ·expLn2Hi+0(SB)/8, $0x3fe62e42fee00000 // 6.93147180369123816490e-01
DATA ·expLn2Hi+8(SB)/8, $0x3fe62e42fee00000
DATA ·expLn2Hi+16(SB)/8, $0x3fe62e42fee00000
DATA ·expLn2Hi+24(SB)/8, $0x3fe62e42fee00000
GLOBL ·expLn2Hi(SB), RODATA|NOPTR, $32

DATA ·expLn2Lo+0(SB)/8, $0x3dea39ef35793c76 // 1.90821492927058770002e-10
DATA ·expLn2Lo+8(SB)/8, $0x3dea39ef35793c76
DATA ·expLn2Lo+16(SB)/8, $0x3dea39ef35793c76
DATA ·expLn2Lo+24(SB)/8, $0x3dea39ef35793c76
GLOBL ·expLn2Lo(SB), RODATA|NOPTR, $32

// Taylor coefficients 1/i! for the degree-13 polynomial on |r| <= ln2/2;
// the truncation term r^14/14! < 3e-19 is far below fp64 epsilon, so the
// polynomial's error is rounding-dominated (a few ulp, see the measured
// bound pinned by YukawaTileMaxULP in tile.go).
DATA ·expC13+0(SB)/8, $0x3de6124613a86d09
DATA ·expC13+8(SB)/8, $0x3de6124613a86d09
DATA ·expC13+16(SB)/8, $0x3de6124613a86d09
DATA ·expC13+24(SB)/8, $0x3de6124613a86d09
GLOBL ·expC13(SB), RODATA|NOPTR, $32

DATA ·expC12+0(SB)/8, $0x3e21eed8eff8d898
DATA ·expC12+8(SB)/8, $0x3e21eed8eff8d898
DATA ·expC12+16(SB)/8, $0x3e21eed8eff8d898
DATA ·expC12+24(SB)/8, $0x3e21eed8eff8d898
GLOBL ·expC12(SB), RODATA|NOPTR, $32

DATA ·expC11+0(SB)/8, $0x3e5ae64567f544e4
DATA ·expC11+8(SB)/8, $0x3e5ae64567f544e4
DATA ·expC11+16(SB)/8, $0x3e5ae64567f544e4
DATA ·expC11+24(SB)/8, $0x3e5ae64567f544e4
GLOBL ·expC11(SB), RODATA|NOPTR, $32

DATA ·expC10+0(SB)/8, $0x3e927e4fb7789f5c
DATA ·expC10+8(SB)/8, $0x3e927e4fb7789f5c
DATA ·expC10+16(SB)/8, $0x3e927e4fb7789f5c
DATA ·expC10+24(SB)/8, $0x3e927e4fb7789f5c
GLOBL ·expC10(SB), RODATA|NOPTR, $32

DATA ·expC9+0(SB)/8, $0x3ec71de3a556c734
DATA ·expC9+8(SB)/8, $0x3ec71de3a556c734
DATA ·expC9+16(SB)/8, $0x3ec71de3a556c734
DATA ·expC9+24(SB)/8, $0x3ec71de3a556c734
GLOBL ·expC9(SB), RODATA|NOPTR, $32

DATA ·expC8+0(SB)/8, $0x3efa01a01a01a01a
DATA ·expC8+8(SB)/8, $0x3efa01a01a01a01a
DATA ·expC8+16(SB)/8, $0x3efa01a01a01a01a
DATA ·expC8+24(SB)/8, $0x3efa01a01a01a01a
GLOBL ·expC8(SB), RODATA|NOPTR, $32

DATA ·expC7+0(SB)/8, $0x3f2a01a01a01a01a
DATA ·expC7+8(SB)/8, $0x3f2a01a01a01a01a
DATA ·expC7+16(SB)/8, $0x3f2a01a01a01a01a
DATA ·expC7+24(SB)/8, $0x3f2a01a01a01a01a
GLOBL ·expC7(SB), RODATA|NOPTR, $32

DATA ·expC6+0(SB)/8, $0x3f56c16c16c16c17
DATA ·expC6+8(SB)/8, $0x3f56c16c16c16c17
DATA ·expC6+16(SB)/8, $0x3f56c16c16c16c17
DATA ·expC6+24(SB)/8, $0x3f56c16c16c16c17
GLOBL ·expC6(SB), RODATA|NOPTR, $32

DATA ·expC5+0(SB)/8, $0x3f81111111111111
DATA ·expC5+8(SB)/8, $0x3f81111111111111
DATA ·expC5+16(SB)/8, $0x3f81111111111111
DATA ·expC5+24(SB)/8, $0x3f81111111111111
GLOBL ·expC5(SB), RODATA|NOPTR, $32

DATA ·expC4+0(SB)/8, $0x3fa5555555555555
DATA ·expC4+8(SB)/8, $0x3fa5555555555555
DATA ·expC4+16(SB)/8, $0x3fa5555555555555
DATA ·expC4+24(SB)/8, $0x3fa5555555555555
GLOBL ·expC4(SB), RODATA|NOPTR, $32

DATA ·expC3+0(SB)/8, $0x3fc5555555555555
DATA ·expC3+8(SB)/8, $0x3fc5555555555555
DATA ·expC3+16(SB)/8, $0x3fc5555555555555
DATA ·expC3+24(SB)/8, $0x3fc5555555555555
GLOBL ·expC3(SB), RODATA|NOPTR, $32

DATA ·expC2+0(SB)/8, $0x3fe0000000000000 // 0.5
DATA ·expC2+8(SB)/8, $0x3fe0000000000000
DATA ·expC2+16(SB)/8, $0x3fe0000000000000
DATA ·expC2+24(SB)/8, $0x3fe0000000000000
GLOBL ·expC2(SB), RODATA|NOPTR, $32

DATA ·expOnes+0(SB)/8, $0x3ff0000000000000 // 1.0 (c1 and c0)
DATA ·expOnes+8(SB)/8, $0x3ff0000000000000
DATA ·expOnes+16(SB)/8, $0x3ff0000000000000
DATA ·expOnes+24(SB)/8, $0x3ff0000000000000
GLOBL ·expOnes(SB), RODATA|NOPTR, $32

DATA ·expBias+0(SB)/8, $1023 // fp64 exponent bias, as int64 lanes
DATA ·expBias+8(SB)/8, $1023
DATA ·expBias+16(SB)/8, $1023
DATA ·expBias+24(SB)/8, $1023
GLOBL ·expBias(SB), RODATA|NOPTR, $32

DATA ·avxOnesF32+0(SB)/4, $0x3f800000 // 1.0f x8 for VDIVPS reciprocals
DATA ·avxOnesF32+4(SB)/4, $0x3f800000
DATA ·avxOnesF32+8(SB)/4, $0x3f800000
DATA ·avxOnesF32+12(SB)/4, $0x3f800000
DATA ·avxOnesF32+16(SB)/4, $0x3f800000
DATA ·avxOnesF32+20(SB)/4, $0x3f800000
DATA ·avxOnesF32+24(SB)/4, $0x3f800000
GLOBL ·avxOnesF32(SB), RODATA|NOPTR, $32
DATA ·avxOnesF32+28(SB)/4, $0x3f800000

// EXPPD computes exp(x) on four fp64 lanes with AVX2+FMA only (VEX
// encoded, so it also runs on pre-AVX-512 hardware).
//
// Input:  Y11 = x.  Output: Y12 = exp(x).
// Clobbers Y10, Y11, Y13, Y14 (and X10/X11, their low halves).
//
// Algorithm (the classic range-reduced polynomial on the FMA ports):
//
//  1. clamp x to [-746, 710]; MIN/MAX keep x as the second source
//     operand, so NaN inputs propagate (Intel MIN/MAXPD return src2 on
//     any NaN), and -Inf / +Inf map to the clamp bounds whose exp
//     rounds to the correct 0 / +Inf through step 4.
//  2. k = roundne(x * log2e); r = x - k*Ln2Hi - k*Ln2Lo (Cody-Waite,
//     both FNMADDs; |r| <= ln2/2 + reduction error).
//  3. p = Taylor_13(r) by Horner on VFMADD213PD with the coefficients
//     as memory operands: 14 FMAs, no registers spent on constants.
//  4. exp = p * 2^k1 * 2^k2 with k1 = k>>1, k2 = k - k1, each scale
//     built as (ki + 1023) << 52. Splitting k keeps both biased
//     exponents in (0, 2047) for every clamped k in [-1077, 1024]:
//     one multiply would need 2^k with k down to -1075, which has no
//     normal representation. The two multiplies also round gradual
//     underflow into the subnormal range correctly (one extra rounding
//     at most, inside the pinned ULP contract) and overflow cleanly to
//     +Inf for k = 1024.
//
// The int32 path for the split (CVTPD2DQ / PSRAD / PSUBD / PMOVSXDQ) is
// exact: k is integral and |k| <= 1077 fits int32; PSRAD's arithmetic
// shift gives floor(k/2) so k1 and k2 differ by at most one.
#define EXPPD \
	VMOVUPD      ·expMax(SB), Y10;        \
	VMINPD       Y11, Y10, Y11;           \
	VMOVUPD      ·expMin(SB), Y10;        \
	VMAXPD       Y11, Y10, Y11;           \
	VMULPD       ·expLog2E(SB), Y11, Y10; \
	VROUNDPD     $0, Y10, Y10;            \
	VFNMADD231PD ·expLn2Hi(SB), Y10, Y11; \
	VFNMADD231PD ·expLn2Lo(SB), Y10, Y11; \
	VMOVUPD      ·expC13(SB), Y12;        \
	VFMADD213PD  ·expC12(SB), Y11, Y12;   \
	VFMADD213PD  ·expC11(SB), Y11, Y12;   \
	VFMADD213PD  ·expC10(SB), Y11, Y12;   \
	VFMADD213PD  ·expC9(SB), Y11, Y12;    \
	VFMADD213PD  ·expC8(SB), Y11, Y12;    \
	VFMADD213PD  ·expC7(SB), Y11, Y12;    \
	VFMADD213PD  ·expC6(SB), Y11, Y12;    \
	VFMADD213PD  ·expC5(SB), Y11, Y12;    \
	VFMADD213PD  ·expC4(SB), Y11, Y12;    \
	VFMADD213PD  ·expC3(SB), Y11, Y12;    \
	VFMADD213PD  ·expC2(SB), Y11, Y12;    \
	VFMADD213PD  ·expOnes(SB), Y11, Y12;  \
	VFMADD213PD  ·expOnes(SB), Y11, Y12;  \
	VCVTPD2DQY   Y10, X10;                \
	VPSRAD       $1, X10, X11;            \
	VPSUBD       X11, X10, X10;           \
	VPMOVSXDQ    X11, Y13;                \
	VPMOVSXDQ    X10, Y14;                \
	VPADDQ       ·expBias(SB), Y13, Y13;  \
	VPADDQ       ·expBias(SB), Y14, Y14;  \
	VPSLLQ       $52, Y13, Y13;           \
	VPSLLQ       $52, Y14, Y14;           \
	VMULPD       Y13, Y12, Y12;           \
	VMULPD       Y14, Y12, Y12

// func cpuHasAVX512VL() bool
//
// CPUID leaf 0 must report leaf 7; leaf 7 subleaf 0: EBX bit 16 is
// AVX512F, bit 31 is AVX512VL (EVEX-encoded 128/256-bit forms).
// XGETBV(0) must show the OS saving XMM, YMM, opmask, ZMM_Hi256 and
// Hi16_ZMM state (XCR0 bits 1,2,5,6,7) before any EVEX instruction or
// k-register may be used. cpuHasAVX (block_amd64.s) is checked
// separately by the caller for the OSXSAVE/AVX baseline.
TEXT ·cpuHasAVX512VL(SB), NOSPLIT, $0-1
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JLT  novl
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<16 | 1<<31), BX
	CMPL BX, $(1<<16 | 1<<31)
	JNE  novl
	XORL CX, CX
	XGETBV
	ANDL $0xe6, AX
	CMPL AX, $0xe6
	JNE  novl
	MOVB $1, ret+0(FP)
	RET

novl:
	MOVB $0, ret+0(FP)
	RET

// func cpuHasAVX2FMA() bool
//
// CPUID leaf 1 ECX bit 12 is FMA3; leaf 7 subleaf 0 EBX bit 5 is AVX2.
// The caller checks cpuHasAVX (block_amd64.s) first, which covers the
// OSXSAVE/AVX baseline and the XMM+YMM state-saving bits, so only the
// instruction-set bits are tested here.
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<12), CX
	JZ   nofma
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JLT  nofma
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   nofma
	MOVB $1, ret+0(FP)
	RET

nofma:
	MOVB $0, ret+0(FP)
	RET

// func coulombTileAVX512(tx, ty, tz *[4]float64, sx, sy, sz, q *float64, n int, phi *[4]float64)
//
// Coulomb source block against a 4-target tile, one target per YMM lane,
// with the reciprocal computed on the FMA ports instead of the divider.
// The tile loops are divider-throughput-bound on this generation of x86
// (VSQRTPD+VDIVPD ymm occupy the one divide/sqrt unit for ~13-16 cycles
// combined), so the division is replaced by the classic Newton–Raphson /
// Markstein sequence — the same construction GPUs use for IEEE fp64
// division in software, which keeps the result CORRECTLY ROUNDED and
// therefore bit-identical to VDIVPD:
//
//	y0 = rcp14(s)                         |rel err| <= 2^-14
//	y1 = y0 + y0*(1 - s*y0)  (2 FMAs)     err ~ 2^-28
//	y2 = y1 + y1*(1 - s*y1)  (2 FMAs)     err < 1 ulp (faithful)
//	y3 = y2 + y2*(1 - s*y2)  (2 FMAs)     == RN(1/s) exactly
//
// Each 1 - s*y is one VFNMADD (exact in the final step, by the standard
// cancellation lemma once y is faithful) and each update one VFMADD;
// Markstein's round-off theorem gives correct rounding of the last
// iterate for every s with normal 1/s. s = sqrt(r2) of a positive finite
// r2 lies in [2^-537, 2^512], so 1/s is always normal and the theorem
// applies on every unmasked lane; TestCoulombTileExtremeMagnitudes and
// FuzzTileAccum pin the equality empirically across the magnitude range.
// Edge lanes are handled with k-masks, matching the scalar code's
// branches: r2 == 0 lanes (self-interaction) and s == +Inf lanes
// (overflowed r2, where 1/Inf = +0) force g*q to +0 via zero-masking;
// NaN coordinates keep the lane valid so the NaN propagates like the
// scalar path (NEQ_UQ compares are unordered-true). Zeroing the product
// instead of g alone cannot change the accumulator bits: the chain
// starts at +0 and x + (+0) == x + (-0) for every x that is not -0, and
// no partial sum here can be -0.
//
// Per-lane accumulation order and the single phi[t] += add match
// coulombTileAVX below; bit-identity to the scalar loop in tile.go holds
// for the same reasons, with VDIVPD's role taken by the proven-equal NR
// reciprocal. The loop is deliberately one source per iteration and
// 256-bit throughout: the iteration's ~18 FP uops on two FMA ports (~9
// cycles) sit just above the 7-cycle VSQRTPD floor, and measured
// variants — a two-source unroll on disjoint YMM chains, and a packed
// two-sources-per-ZMM form — were no faster or slower here (the ZMM
// form progressively downclocks under sustained 512-bit sqrt+FMA load).
// n must be positive; sources are broadcast one at a time, so there is
// no alignment or multiple-of-anything requirement.
TEXT ·coulombTileAVX512(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0          // tx[0:4]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1          // ty[0:4]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2          // tz[0:4]
	VBROADCASTSD ·avxOne(SB), Y4
	VBROADCASTSD ·avxInf(SB), Y14
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	XORQ         DX, DX            // j; indexed loads keep the integer
	VXORPD       Y3, Y3, Y3        // per-lane block accumulators ...
	VXORPD       Y5, Y5, Y5        // ... bookkeeping off the FP ports

avx512loop:
	VBROADCASTSD (SI)(DX*8), Y6    // sx[j] in every lane
	VBROADCASTSD (DI)(DX*8), Y7    // sy[j]
	VBROADCASTSD (R8)(DX*8), Y8    // sz[j]
	VSUBPD       Y6, Y0, Y6        // dx = tx - sx[j]
	VSUBPD       Y7, Y1, Y7        // dy = ty - sy[j]
	VSUBPD       Y8, Y2, Y8        // dz = tz - sz[j]
	VMULPD       Y6, Y6, Y6        // dx*dx
	VMULPD       Y7, Y7, Y7        // dy*dy
	VMULPD       Y8, Y8, Y8        // dz*dz
	VADDPD       Y7, Y6, Y6        // dx*dx + dy*dy
	VADDPD       Y8, Y6, Y6        // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPD       $4, Y5, Y6, K1    // valid = (r2 != 0), NEQ_UQ
	VSQRTPD      Y6, Y9            // s = sqrt(r2)
	VCMPPD       $4, Y14, Y9, K2   // finite = (s != +Inf), NEQ_UQ
	KANDW        K2, K1, K1
	VRCP14PD     Y9, Y10           // y0 ~ 1/s
	VMOVAPD      Y4, Y11
	VFNMADD231PD Y10, Y9, Y11      // e0 = 1 - s*y0
	VFMADD213PD  Y10, Y10, Y11     // y1 = y0 + y0*e0
	VMOVAPD      Y4, Y12
	VFNMADD231PD Y11, Y9, Y12      // e1 = 1 - s*y1
	VFMADD213PD  Y11, Y11, Y12     // y2 = y1 + y1*e1
	VMOVAPD      Y4, Y13
	VFNMADD231PD Y12, Y9, Y13      // e2 = 1 - s*y2, exact
	VFMADD213PD  Y12, Y12, Y13     // g = y2 + y2*e2 = RN(1/s)
	VBROADCASTSD (R9)(DX*8), Y9    // q[j]
	VMULPD.Z     Y9, Y13, K1, Y10  // g*q[j]; +0 on masked lanes
	VADDPD       Y10, Y3, Y3       // p[t] += g*q[j], in source order per lane

	INCQ DX
	CMPQ DX, CX
	JNE  avx512loop

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VZEROUPPER
	RET

// func coulombTileAVX(tx, ty, tz *[4]float64, sx, sy, sz, q *float64, n int, phi *[4]float64)
//
// Coulomb source block against a 4-target tile, one target per YMM lane.
// Each iteration broadcasts one source to all lanes, so every lane t runs
// the exact scalar expression sequence for its target — dx = tx[t]-sx[j],
// r2 = (dx*dx + dy*dy) + dz*dz, g = 1/sqrt(r2) (zeroed by mask when
// r2 == 0), p += g*q[j] — with IEEE-correctly-rounded per-lane twins of
// the scalar ops (VSUBPD/VMULPD/VADDPD in the same expression order,
// VSQRTPD for math.Sqrt, VDIVPD for the reciprocal — never FMA). Per-lane
// VADDPD accumulation visits sources in j order, so each target's chain
// is bit-identical to the scalar loop in tile.go; unlike the single-target
// block loop in block_amd64.s there is no serial cross-lane VADDSD chain
// left to bound the iteration, only the divider. The final phi update is
// one per-lane add of the block total, matching the phi[t] += p contract.
TEXT ·coulombTileAVX(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0          // tx[0:4]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1          // ty[0:4]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2          // tz[0:4]
	VBROADCASTSD ·avxOne(SB), Y4
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	VXORPD       Y3, Y3, Y3        // per-lane block accumulators
	VXORPD       Y5, Y5, Y5        // zeros for the r2 == 0 mask

	SUBQ $1, CX
	JZ   tail                      // n == 1: single-source epilogue only

loop2:
	// Two sources per iteration, fully independent register chains, so
	// the sqrt/div pipeline always has a second problem in flight. The
	// two accumulator adds stay in j, j+1 order per lane.
	VBROADCASTSD (SI), Y6          // sx[j] in every lane
	VBROADCASTSD (DI), Y7          // sy[j]
	VBROADCASTSD (R8), Y8          // sz[j]
	VBROADCASTSD 8(SI), Y10        // sx[j+1]
	VBROADCASTSD 8(DI), Y11        // sy[j+1]
	VBROADCASTSD 8(R8), Y12        // sz[j+1]
	VSUBPD       Y6, Y0, Y6        // dx = tx - sx[j]
	VSUBPD       Y7, Y1, Y7        // dy = ty - sy[j]
	VSUBPD       Y8, Y2, Y8        // dz = tz - sz[j]
	VSUBPD       Y10, Y0, Y10
	VSUBPD       Y11, Y1, Y11
	VSUBPD       Y12, Y2, Y12
	VMULPD       Y6, Y6, Y6        // dx*dx
	VMULPD       Y7, Y7, Y7        // dy*dy
	VMULPD       Y8, Y8, Y8        // dz*dz
	VMULPD       Y10, Y10, Y10
	VMULPD       Y11, Y11, Y11
	VMULPD       Y12, Y12, Y12
	VADDPD       Y7, Y6, Y6        // dx*dx + dy*dy
	VADDPD       Y8, Y6, Y6        // r2 = (dx*dx + dy*dy) + dz*dz
	VADDPD       Y11, Y10, Y10
	VADDPD       Y12, Y10, Y10
	VCMPPD       $0, Y5, Y6, Y8    // mask = (r2 == 0), EQ_OQ
	VSQRTPD      Y6, Y7            // sqrt(r2)
	VCMPPD       $0, Y5, Y10, Y12
	VSQRTPD      Y10, Y11
	VDIVPD       Y7, Y4, Y7        // g = 1 / sqrt(r2)
	VDIVPD       Y11, Y4, Y11
	VANDNPD      Y7, Y8, Y7        // g = 0 on self-interaction lanes
	VANDNPD      Y11, Y12, Y11
	VBROADCASTSD (R9), Y9          // q[j]
	VMULPD       Y9, Y7, Y7        // g * q[j]
	VADDPD       Y7, Y3, Y3        // p[t] += g*q[j]
	VBROADCASTSD 8(R9), Y13        // q[j+1]
	VMULPD       Y13, Y11, Y11
	VADDPD       Y11, Y3, Y3       // p[t] += g*q[j+1], after source j

	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, R8
	ADDQ $16, R9
	SUBQ $2, CX
	JG   loop2
	JL   done                      // even n: no source left

tail:
	VBROADCASTSD (SI), Y6          // last source when n is odd
	VBROADCASTSD (DI), Y7
	VBROADCASTSD (R8), Y8
	VSUBPD       Y6, Y0, Y6
	VSUBPD       Y7, Y1, Y7
	VSUBPD       Y8, Y2, Y8
	VMULPD       Y6, Y6, Y6
	VMULPD       Y7, Y7, Y7
	VMULPD       Y8, Y8, Y8
	VADDPD       Y7, Y6, Y6
	VADDPD       Y8, Y6, Y6
	VCMPPD       $0, Y5, Y6, Y8
	VSQRTPD      Y6, Y7
	VDIVPD       Y7, Y4, Y7
	VANDNPD      Y7, Y8, Y7
	VBROADCASTSD (R9), Y9
	VMULPD       Y9, Y7, Y7
	VADDPD       Y7, Y3, Y3

done:

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VZEROUPPER
	RET

// func yukawaTileFMA(tx, ty, tz *[4]float64, sx, sy, sz, q *float64, n int, negKappa float64, phi *[4]float64)
//
// Yukawa source block against a 4-target tile: per lane
//
//	g = exp(-kappa*sqrt(r2)) / sqrt(r2)   (0 when r2 == 0)
//
// with exp evaluated by the EXPPD polynomial above. VEX-encoded
// AVX2+FMA only, so every x86-64 machine with FMA gets the vector
// Yukawa path, not just AVX-512 hardware.
//
// Unlike the Coulomb tiles this loop is NOT bit-identical to the scalar
// reference: math.Exp and EXPPD are different correctly-engineered
// approximations of the same transcendental, and neither is correctly
// rounded. Everything around the exp — the r2 expression order, VSQRTPD,
// the (-kappa)*s product, VDIVPD, the per-lane accumulation in source
// order, the single phi[t] += add, and the r2 == 0 masking — is the
// IEEE-exact twin of the scalar loop, so the only divergence is the exp
// value itself, which the measured-ULP contract in tile.go pins
// (YukawaTileMaxULP, enforced by TestYukawaTileULPContract). n must be
// positive. negKappa carries -kappa so the multiply matches the scalar
// (-kappa)*r exactly, including the kappa = 0 sign.
TEXT ·yukawaTileFMA(SB), NOSPLIT, $0-80
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0            // tx[0:4]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1            // ty[0:4]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2            // tz[0:4]
	VBROADCASTSD negKappa+64(FP), Y4
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	XORQ         DX, DX              // j
	VXORPD       Y3, Y3, Y3          // per-lane block accumulators
	VXORPD       Y5, Y5, Y5          // zeros for the r2 == 0 mask

yukloop:
	VBROADCASTSD (SI)(DX*8), Y6    // sx[j] in every lane
	VBROADCASTSD (DI)(DX*8), Y7    // sy[j]
	VBROADCASTSD (R8)(DX*8), Y8    // sz[j]
	VSUBPD       Y6, Y0, Y6        // dx = tx - sx[j]
	VSUBPD       Y7, Y1, Y7        // dy = ty - sy[j]
	VSUBPD       Y8, Y2, Y8        // dz = tz - sz[j]
	VMULPD       Y6, Y6, Y6        // dx*dx
	VMULPD       Y7, Y7, Y7        // dy*dy
	VMULPD       Y8, Y8, Y8        // dz*dz
	VADDPD       Y7, Y6, Y6        // dx*dx + dy*dy
	VADDPD       Y8, Y6, Y6        // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPD       $0, Y5, Y6, Y15   // mask = (r2 == 0), EQ_OQ
	VSQRTPD      Y6, Y9            // s = sqrt(r2)
	VMULPD       Y9, Y4, Y11       // x = -kappa * s
	EXPPD                          // Y12 = exp(x); clobbers Y10,Y11,Y13,Y14
	VDIVPD       Y9, Y12, Y12      // g = exp(-kappa*s) / s
	VANDNPD      Y12, Y15, Y12     // g = 0 on self-interaction lanes
	VBROADCASTSD (R9)(DX*8), Y10   // q[j]
	VMULPD       Y10, Y12, Y12     // g * q[j]
	VADDPD       Y12, Y3, Y3       // p[t] += g*q[j], in source order per lane

	INCQ DX
	CMPQ DX, CX
	JNE  yukloop

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+72(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VZEROUPPER
	RET

// func coulombTileF32AVX2(tx, ty, tz *[8]float32, sx, sy, sz, q *float64, n int, phi *[8]float32)
//
// Coulomb source block against an 8-target fp32 tile, one target per
// float32 YMM lane (the __m256 SoA layout of the CoolNBody reference in
// SNIPPETS.md, with targets across lanes instead of sources). The source
// arrays are the repo's float64 storage; each is rounded to float32 once
// per source with VCVTSD2SS and broadcast, exactly the float32(sx[j])
// per-element rounding of the F32 contract.
//
// This tile IS bit-identical to the scalar fp32 loop: every step is the
// per-lane IEEE twin of the scalar expression — VSUBPS/VMULPS/VADDPS in
// expression order (never FMA), and VSQRTPS for float32(math.Sqrt(
// float64(r2))), which is exact because rounding the correctly-rounded
// fp64 sqrt to fp32 equals the correctly-rounded fp32 sqrt whenever the
// intermediate carries >= 2p+2 bits (53 >= 2*24+2, the classic innocuous
// double rounding for sqrt). VDIVPS matches the scalar 1/r division, and
// the accumulation runs per lane in source order with one phi[t] += add,
// as in the fp64 tiles. r2 == 0 lanes are zeroed by mask; overflowed
// r2 = +Inf needs none (1/sqrt(+Inf) = +0 in both paths). n must be
// positive.
TEXT ·coulombTileF32AVX2(SB), NOSPLIT, $0-72
	MOVQ    tx+0(FP), AX
	VMOVUPS (AX), Y0               // tx[0:8]
	MOVQ    ty+8(FP), AX
	VMOVUPS (AX), Y1               // ty[0:8]
	MOVQ    tz+16(FP), AX
	VMOVUPS (AX), Y2               // tz[0:8]
	VMOVUPS ·avxOnesF32(SB), Y4
	MOVQ    sx+24(FP), SI
	MOVQ    sy+32(FP), DI
	MOVQ    sz+40(FP), R8
	MOVQ    q+48(FP), R9
	MOVQ    n+56(FP), CX
	XORQ    DX, DX                 // j
	VXORPS  Y3, Y3, Y3             // per-lane block accumulators
	VXORPS  Y5, Y5, Y5             // zeros for the r2 == 0 mask

cf32loop:
	VCVTSD2SS    (SI)(DX*8), X6, X6 // float32(sx[j])
	VBROADCASTSS X6, Y6
	VCVTSD2SS    (DI)(DX*8), X7, X7 // float32(sy[j])
	VBROADCASTSS X7, Y7
	VCVTSD2SS    (R8)(DX*8), X8, X8 // float32(sz[j])
	VBROADCASTSS X8, Y8
	VSUBPS       Y6, Y0, Y6         // dx = tx - sxj
	VSUBPS       Y7, Y1, Y7         // dy = ty - syj
	VSUBPS       Y8, Y2, Y8         // dz = tz - szj
	VMULPS       Y6, Y6, Y6         // dx*dx
	VMULPS       Y7, Y7, Y7         // dy*dy
	VMULPS       Y8, Y8, Y8         // dz*dz
	VADDPS       Y7, Y6, Y6         // dx*dx + dy*dy
	VADDPS       Y8, Y6, Y6         // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPS       $0, Y5, Y6, Y9     // mask = (r2 == 0), EQ_OQ
	VSQRTPS      Y6, Y7             // float32 sqrt(r2), see prologue
	VDIVPS       Y7, Y4, Y7         // g = 1 / sqrt(r2)
	VANDNPS      Y7, Y9, Y7         // g = 0 on self-interaction lanes
	VCVTSD2SS    (R9)(DX*8), X8, X8 // float32(q[j])
	VBROADCASTSS X8, Y8
	VMULPS       Y8, Y7, Y7         // g * qj
	VADDPS       Y7, Y3, Y3         // p[t] += g*qj, in source order per lane

	INCQ DX
	CMPQ DX, CX
	JNE  cf32loop

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+64(FP), AX
	VMOVUPS (AX), Y6
	VADDPS  Y3, Y6, Y6
	VMOVUPS Y6, (AX)
	VZEROUPPER
	RET

// func yukawaTileF32FMA(tx, ty, tz *[8]float32, sx, sy, sz, q *float64, n int, negKappa float32, phi *[8]float32)
//
// Yukawa source block against an 8-target fp32 tile. The distance math,
// VSQRTPS, the (-kappa32)*r product, VDIVPS, masking and accumulation
// are the exact IEEE twins of the scalar fp32 loop (VSQRTPS by the same
// double-rounding argument as coulombTileF32AVX2). The exp follows the
// scalar's own widening — the scalar computes math.Exp(float64(x32)) —
// by converting the 8 fp32 arguments to 2x4 fp64 lanes, running EXPPD
// on each half, and narrowing back with VCVTPD2PS. The only divergence
// from the scalar is again EXPPD vs math.Exp in the fp64 middle; after
// the fp32 narrowing that difference is at most YukawaTileF32MaxULP
// float32 ulps per pairwise term (measured contract in tile.go,
// enforced by TestYukawaTileULPContract). n must be positive.
TEXT ·yukawaTileF32FMA(SB), NOSPLIT, $0-80
	MOVQ         tx+0(FP), AX
	VMOVUPS      (AX), Y0          // tx[0:8]
	MOVQ         ty+8(FP), AX
	VMOVUPS      (AX), Y1          // ty[0:8]
	MOVQ         tz+16(FP), AX
	VMOVUPS      (AX), Y2          // tz[0:8]
	VBROADCASTSS negKappa+64(FP), Y4
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	XORQ         DX, DX            // j
	VXORPS       Y3, Y3, Y3        // per-lane block accumulators
	VXORPS       Y5, Y5, Y5        // zeros for the r2 == 0 mask

yf32loop:
	VCVTSD2SS    (SI)(DX*8), X6, X6 // float32(sx[j])
	VBROADCASTSS X6, Y6
	VCVTSD2SS    (DI)(DX*8), X7, X7 // float32(sy[j])
	VBROADCASTSS X7, Y7
	VCVTSD2SS    (R8)(DX*8), X8, X8 // float32(sz[j])
	VBROADCASTSS X8, Y8
	VSUBPS       Y6, Y0, Y6         // dx = tx - sxj
	VSUBPS       Y7, Y1, Y7         // dy = ty - syj
	VSUBPS       Y8, Y2, Y8         // dz = tz - szj
	VMULPS       Y6, Y6, Y6         // dx*dx
	VMULPS       Y7, Y7, Y7         // dy*dy
	VMULPS       Y8, Y8, Y8         // dz*dz
	VADDPS       Y7, Y6, Y6         // dx*dx + dy*dy
	VADDPS       Y8, Y6, Y6         // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPS       $0, Y5, Y6, Y9     // mask = (r2 == 0), EQ_OQ
	VSQRTPS      Y6, Y7             // r = float32 sqrt(r2)
	VMULPS       Y7, Y4, Y8         // x32 = -kappa32 * r

	// exp(float64(x32)) on the low four lanes ...
	VCVTPS2PD    X8, Y11
	EXPPD                          // Y12 = exp; clobbers Y10,Y11,Y13,Y14
	VCVTPD2PSY   Y12, X6           // float32(exp), lanes 0:4

	// ... and the high four.
	VEXTRACTF128 $1, Y8, X8
	VCVTPS2PD    X8, Y11
	EXPPD
	VCVTPD2PSY   Y12, X8           // float32(exp), lanes 4:8
	VINSERTF128  $1, X8, Y6, Y6    // all eight exp lanes

	VDIVPS       Y7, Y6, Y6         // g = exp(-kappa*r) / r
	VANDNPS      Y6, Y9, Y6         // g = 0 on self-interaction lanes
	VCVTSD2SS    (R9)(DX*8), X8, X8 // float32(q[j])
	VBROADCASTSS X8, Y8
	VMULPS       Y8, Y6, Y6         // g * qj
	VADDPS       Y6, Y3, Y3         // p[t] += g*qj, in source order per lane

	INCQ DX
	CMPQ DX, CX
	JNE  yf32loop

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+72(FP), AX
	VMOVUPS (AX), Y6
	VADDPS  Y3, Y6, Y6
	VMOVUPS Y6, (AX)
	VZEROUPPER
	RET

// func coulombTile8AVX512(tx, ty, tz *[8]float64, sx, sy, sz, q *float64, n int, phi *[8]float64)
//
// Coulomb source block against an 8-target fp64 tile: two independent
// 4-lane YMM groups (targets 0:4 and 4:8) that SHARE each iteration's
// three source broadcasts and q broadcast — the register-blocked form of
// coulombTileAVX512. Doubling the tile width amortizes the per-source
// broadcast traffic and the per-block dispatch overhead over twice the
// targets while staying 256-bit (the ZMM form downclocks, see the
// 4-wide prologue). EVEX register space (Y16-Y31, via AVX-512VL) holds
// the second group's entire dataflow, so the two groups never spill.
//
// Bit-identity: each lane of either group runs exactly the 4-wide
// AVX-512 sequence — same expression order, same NR reciprocal (equal
// to VDIVPD by Markstein, see coulombTileAVX512), same masking, and
// per-lane accumulation in source order with a single phi[t] += add.
// Regrouping targets into tiles of a different width cannot change any
// target's chain, so the 8-wide tile is bit-identical to both the
// 4-wide tile and the scalar loop. n must be positive.
TEXT ·coulombTile8AVX512(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0          // tx[0:4]
	VMOVUPD      32(AX), Y16       // tx[4:8]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1          // ty[0:4]
	VMOVUPD      32(AX), Y17       // ty[4:8]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2          // tz[0:4]
	VMOVUPD      32(AX), Y18       // tz[4:8]
	VBROADCASTSD ·avxOne(SB), Y4
	VBROADCASTSD ·avxInf(SB), Y14
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	XORQ         DX, DX            // j
	VXORPD       Y3, Y3, Y3        // accumulators, lanes 0:4
	VPXORQ       Y19, Y19, Y19     // accumulators, lanes 4:8
	VXORPD       Y5, Y5, Y5        // zeros for the r2 != 0 compare

tile8loop:
	VBROADCASTSD (SI)(DX*8), Y6    // sx[j], shared by both groups
	VBROADCASTSD (DI)(DX*8), Y7    // sy[j]
	VBROADCASTSD (R8)(DX*8), Y8    // sz[j]

	// r2 for both groups first, so both VSQRTPDs are in flight before
	// the FMA-port NR sequences begin.
	VSUBPD       Y6, Y0, Y10       // dxA
	VSUBPD       Y7, Y1, Y11       // dyA
	VSUBPD       Y8, Y2, Y12       // dzA
	VMULPD       Y10, Y10, Y10
	VMULPD       Y11, Y11, Y11
	VMULPD       Y12, Y12, Y12
	VADDPD       Y11, Y10, Y10
	VADDPD       Y12, Y10, Y10     // r2A = (dx*dx + dy*dy) + dz*dz
	VSUBPD       Y6, Y16, Y20      // dxB
	VSUBPD       Y7, Y17, Y21      // dyB
	VSUBPD       Y8, Y18, Y22      // dzB
	VMULPD       Y20, Y20, Y20
	VMULPD       Y21, Y21, Y21
	VMULPD       Y22, Y22, Y22
	VADDPD       Y21, Y20, Y20
	VADDPD       Y22, Y20, Y20     // r2B
	VCMPPD       $4, Y5, Y10, K1   // validA = (r2A != 0), NEQ_UQ
	VCMPPD       $4, Y5, Y20, K3   // validB
	VSQRTPD      Y10, Y9           // sA
	VSQRTPD      Y20, Y23          // sB
	VCMPPD       $4, Y14, Y9, K2   // finiteA = (sA != +Inf)
	VCMPPD       $4, Y14, Y23, K4
	KANDW        K2, K1, K1
	KANDW        K4, K3, K3

	// Newton-Raphson reciprocals, both groups (see coulombTileAVX512).
	VRCP14PD     Y9, Y10
	VMOVAPD      Y4, Y11
	VFNMADD231PD Y10, Y9, Y11      // e0 = 1 - sA*y0
	VFMADD213PD  Y10, Y10, Y11     // y1
	VMOVAPD      Y4, Y12
	VFNMADD231PD Y11, Y9, Y12
	VFMADD213PD  Y11, Y11, Y12     // y2
	VMOVAPD      Y4, Y13
	VFNMADD231PD Y12, Y9, Y13
	VFMADD213PD  Y12, Y12, Y13     // gA = RN(1/sA)
	VRCP14PD     Y23, Y20
	VMOVAPD      Y4, Y21
	VFNMADD231PD Y20, Y23, Y21
	VFMADD213PD  Y20, Y20, Y21
	VMOVAPD      Y4, Y22
	VFNMADD231PD Y21, Y23, Y22
	VFMADD213PD  Y21, Y21, Y22
	VMOVAPD      Y4, Y24
	VFNMADD231PD Y22, Y23, Y24
	VFMADD213PD  Y22, Y22, Y24     // gB = RN(1/sB)

	VBROADCASTSD (R9)(DX*8), Y9    // q[j], shared
	VMULPD.Z     Y9, Y13, K1, Y10  // gA*q[j]; +0 on masked lanes
	VADDPD       Y10, Y3, Y3       // pA[t] += gA*q[j], in source order
	VMULPD.Z     Y9, Y24, K3, Y20
	VADDPD       Y20, Y19, Y19     // pB[t] += gB*q[j]

	INCQ DX
	CMPQ DX, CX
	JNE  tile8loop

	// phi[t] += p[t]: one per-lane add of each block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VMOVUPD 32(AX), Y6
	VADDPD  Y19, Y6, Y6
	VMOVUPD Y6, 32(AX)
	VZEROUPPER
	RET

// func coulombTile8AVX(tx, ty, tz *[8]float64, sx, sy, sz, q *float64, n int, phi *[8]float64)
//
// The VEX-only 8-target Coulomb tile: two 4-lane groups sharing each
// source's broadcasts, with VDIVPD for the reciprocal (coulombTileAVX's
// arithmetic, coulombTile8AVX512's register blocking). The sixteen VEX
// registers force the two groups to run back-to-back per source with a
// two-register working set each; out-of-order execution still overlaps
// group B's distance math with group A's sqrt/divide latency. Bit-
// identity per lane follows exactly as in coulombTileAVX. n must be
// positive.
TEXT ·coulombTile8AVX(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0          // tx[0:4]
	VMOVUPD      32(AX), Y10       // tx[4:8]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1          // ty[0:4]
	VMOVUPD      32(AX), Y11       // ty[4:8]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2          // tz[0:4]
	VMOVUPD      32(AX), Y12       // tz[4:8]
	VBROADCASTSD ·avxOne(SB), Y4
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	XORQ         DX, DX            // j
	VXORPD       Y3, Y3, Y3        // accumulators, lanes 0:4
	VXORPD       Y13, Y13, Y13     // accumulators, lanes 4:8
	VXORPD       Y5, Y5, Y5        // zeros for the r2 == 0 mask

tile8avxloop:
	VBROADCASTSD (SI)(DX*8), Y6    // sx[j], shared by both groups
	VBROADCASTSD (DI)(DX*8), Y7    // sy[j]
	VBROADCASTSD (R8)(DX*8), Y8    // sz[j]
	VBROADCASTSD (R9)(DX*8), Y9    // q[j]

	// Group A (lanes 0:4) in the Y14/Y15 working pair.
	VSUBPD  Y6, Y0, Y14            // dx
	VMULPD  Y14, Y14, Y14          // dx*dx
	VSUBPD  Y7, Y1, Y15            // dy
	VMULPD  Y15, Y15, Y15
	VADDPD  Y15, Y14, Y14          // dx*dx + dy*dy
	VSUBPD  Y8, Y2, Y15            // dz
	VMULPD  Y15, Y15, Y15
	VADDPD  Y15, Y14, Y14          // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPD  $0, Y5, Y14, Y15       // mask = (r2 == 0), EQ_OQ
	VSQRTPD Y14, Y14
	VDIVPD  Y14, Y4, Y14           // g = 1 / sqrt(r2)
	VANDNPD Y14, Y15, Y14          // g = 0 on self-interaction lanes
	VMULPD  Y9, Y14, Y14           // g * q[j]
	VADDPD  Y14, Y3, Y3            // pA[t] += g*q[j], in source order

	// Group B (lanes 4:8), same sequence against the shared broadcasts.
	VSUBPD  Y6, Y10, Y14
	VMULPD  Y14, Y14, Y14
	VSUBPD  Y7, Y11, Y15
	VMULPD  Y15, Y15, Y15
	VADDPD  Y15, Y14, Y14
	VSUBPD  Y8, Y12, Y15
	VMULPD  Y15, Y15, Y15
	VADDPD  Y15, Y14, Y14
	VCMPPD  $0, Y5, Y14, Y15
	VSQRTPD Y14, Y14
	VDIVPD  Y14, Y4, Y14
	VANDNPD Y14, Y15, Y14
	VMULPD  Y9, Y14, Y14
	VADDPD  Y14, Y13, Y13          // pB[t] += g*q[j]

	INCQ DX
	CMPQ DX, CX
	JNE  tile8avxloop

	// phi[t] += p[t]: one per-lane add of each block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VMOVUPD 32(AX), Y6
	VADDPD  Y13, Y6, Y6
	VMOVUPD Y6, 32(AX)
	VZEROUPPER
	RET


// func coulombTile8ZMM(tx, ty, tz *[8]float64, sx, sy, sz, q *float64, n int, phi *[8]float64)
//
// Coulomb source block against an 8-target fp64 tile in one ZMM lane
// group, processing sources in PAIRS so that the two square roots run on
// DIFFERENT execution resources concurrently: the even source's sqrt goes
// to the divide/sqrt unit (VSQRTPD zmm, ~22 cycles throughput), while the
// odd source's sqrt is computed entirely on the FMA ports by a
// Goldschmidt/Markstein sequence (~27 FMA-port uops). The YMM tiles above
// serialize two VSQRTPD ymm on the one divider (~23 cycles per 8
// targets); here a PAIR of sources (16 interactions) retires in
// max(divider ~22, FMA-ports ~27-31) cycles because the streams overlap,
// which measures ~1.5x faster per interaction on dual-512-bit-FMA parts.
//
// The even/A stream is coulombTileAVX512's proven arithmetic: VSQRTPD
// then the Newton-Raphson reciprocal (correctly rounded by Markstein's
// theorem, see the 4-wide prologue). The odd/B stream computes the square
// root itself on the FMA ports with the classic Goldschmidt/Markstein
// construction (Markstein, "IA-64 and Elementary Functions"; the same
// scheme GPUs use for IEEE fp64 sqrt in software), which keeps the result
// CORRECTLY ROUNDED and therefore bit-identical to VSQRTPD / math.Sqrt:
//
//	y0 = rsqrt14(x)                     |y0*sqrt(x) - 1| <= 2^-14
//	g = x*y0, h = 0.5*y0                ~ sqrt(x), 1/(2 sqrt(x))
//	r = 0.5 - g*h; g += g*r; h += h*r   rel err ~ 2^-27
//	r = 0.5 - g*h; g += g*r; h += h*r   rel err ~ 2.5*2^-53
//	d = x - g*g;   g += d*h             faithful (< 1 ulp)
//	d = x - g*g;   s = g + d*h          == RN(sqrt(x))
//
// Each d is one VFNMADD whose tiny exact residual steers g to the nearest
// double; Markstein's square-root theorem gives correct rounding of the
// final iterate (h is accurate to ~1.25 ulp, well inside the theorem's
// slack). The reciprocal then seeds from y = 2h ~ 1/s, one ulp-class
// error, so two Markstein steps (faithful, then RN) deliver RN(1/s) in 5
// more FMA-port ops instead of VRCP14PD + 6.
//
// The Goldschmidt proof needs x comfortably normal: VRSQRT14PD flushes
// denormal inputs to zero (giving +Inf seeds) and maps +Inf to +0, and
// even for normal x below ~2^-512 the residual x - g*g can land in the
// denormal range, where its coarse rounding no longer steers the final
// correction (observed 1-ulp misses at x ~ 2^-1022). Two range compares
// per B source — (x < 2^-512 && x != 0) || x == +Inf — route such
// iterations to a patch block that redoes the B source on the divider.
// Every path produces the same correctly rounded RN(1/RN(sqrt(x)))*q per
// valid lane, so a target whose sources take different paths still
// accumulates bit-identically to the scalar loop: the two per-pair
// accumulator adds retire in source order (j then j+1), x == 0
// (self-interaction) lanes are zero-masked exactly like the YMM tiles
// (the B stream's NaN dataflow on those lanes is discarded by the mask;
// VPTESTMQ on the bit pattern equals the r2 != 0 compare because r2 is
// never -0), and NaN coordinates (unordered on both range compares) stay
// in the fast path and propagate like the scalar code. In treecode
// workloads the patch block is cold: unit-box distances never leave
// [2^-512, +Inf).
//
// The whole function deliberately stays inside ZMM0-ZMM15, taking the
// compare constants as EVEX embedded broadcasts: writes to ZMM16-ZMM31
// dirty the Hi16_ZMM XSAVE state, which VZEROUPPER does NOT clear, and a
// dirty upper state taxes every SSE-encoded scalar FP op in the
// surrounding Go driver code for the rest of the process. With only
// ZMM0-15 touched, the closing VZEROUPPER returns the SIMD state to
// clean and the caller pays no transition penalty (measured: an
// identical tile on ZMM16+ was ~15% faster in isolation yet ~10% slower
// end-to-end).
//
// Expression order for dx/dy/dz/r2 and the per-lane accumulate matches
// the scalar loop exactly, as in the other tiles; bit-identity of the
// whole tile follows. An odd trailing source runs through a single-source
// copy of the A stream. Requires AVX-512 F+VL. n must be positive.
TEXT ·coulombTile8ZMM(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Z0          // tx[0:8]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Z1          // ty[0:8]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Z2          // tz[0:8]
	VBROADCASTSD ·avxOne(SB), Z4
	VBROADCASTSD ·avxHalf(SB), Z5
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	MOVQ         CX, BX
	DECQ         BX                // BX = n-1: pair loop runs while j < n-1
	XORQ         DX, DX            // j
	VPXORQ       Z3, Z3, Z3        // per-lane block accumulators
	CMPQ         DX, BX
	JGE          tile8ztail        // n == 1

tile8zpair:
	// Stream A (source j): r2, then VSQRTPD issues immediately so the
	// divide/sqrt unit runs underneath stream B's FMA sequence.
	VBROADCASTSD (SI)(DX*8), Z6    // sx[j] in every lane
	VBROADCASTSD (DI)(DX*8), Z7    // sy[j]
	VBROADCASTSD (R8)(DX*8), Z8    // sz[j]
	VSUBPD       Z6, Z0, Z6        // dx = tx - sx[j]
	VSUBPD       Z7, Z1, Z7        // dy
	VSUBPD       Z8, Z2, Z8        // dz
	VMULPD       Z6, Z6, Z6
	VMULPD       Z7, Z7, Z7
	VMULPD       Z8, Z8, Z8
	VADDPD       Z7, Z6, Z6
	VADDPD       Z8, Z6, Z6        // r2A = (dx*dx + dy*dy) + dz*dz
	VPTESTMQ     Z6, Z6, K1        // validA = (r2A != 0)
	VSQRTPD      Z6, Z7            // sA, on the divider

	// Stream B (source j+1): r2 and the fast-range guard.
	VBROADCASTSD 8(SI)(DX*8), Z8   // sx[j+1]
	VBROADCASTSD 8(DI)(DX*8), Z9   // sy[j+1]
	VBROADCASTSD 8(R8)(DX*8), Z10  // sz[j+1]
	VSUBPD       Z8, Z0, Z8
	VSUBPD       Z9, Z1, Z9
	VSUBPD       Z10, Z2, Z10
	VMULPD       Z8, Z8, Z8
	VMULPD       Z9, Z9, Z9
	VMULPD       Z10, Z10, Z10
	VADDPD       Z9, Z8, Z8
	VADDPD       Z10, Z8, Z8       // xB = r2B
	VPTESTMQ     Z8, Z8, K3        // validB = (r2B != 0)
	VCMPPD.BCST  $17, ·avxTiny(SB), Z8, K5 // small = (r2B < 2^-512), LT_OQ
	VCMPPD.BCST  $0, ·avxInf(SB), Z8, K6   // huge = (r2B == +Inf), EQ_OQ
	KANDW        K3, K5, K5        // small lanes that are not self terms
	KORW         K6, K5, K5
	KORTESTW     K5, K5
	JNZ          tile8zpatch

	// B: sB = RN(sqrt(xB)) on the FMA ports (see prologue).
	VRSQRT14PD   Z8, Z9            // y0
	VMULPD       Z9, Z8, Z10       // g = x*y0
	VMULPD       Z9, Z5, Z11       // h = 0.5*y0
	VMOVAPD      Z5, Z12
	VFNMADD231PD Z11, Z10, Z12     // r = 0.5 - g*h
	VFMADD231PD  Z12, Z10, Z10     // g += g*r
	VFMADD213PD  Z11, Z11, Z12     // h += h*r         (h now in Z12)
	VMOVAPD      Z5, Z11
	VFNMADD231PD Z12, Z10, Z11     // r = 0.5 - g*h
	VFMADD231PD  Z11, Z10, Z10     // g += g*r
	VFMADD213PD  Z12, Z12, Z11     // h += h*r         (h now in Z11)
	VMOVAPD      Z8, Z12
	VFNMADD231PD Z10, Z10, Z12     // d = x - g*g
	VFMADD231PD  Z11, Z12, Z10     // g += d*h, faithful
	VMOVAPD      Z8, Z12
	VFNMADD231PD Z10, Z10, Z12     // d = x - g*g
	VFMADD231PD  Z11, Z12, Z10     // sB = RN(sqrt(xB))

	// B: gB = RN(1/sB), seeded from y = 2h.
	VADDPD       Z11, Z11, Z9      // y ~ 1/sB
	VMOVAPD      Z4, Z12
	VFNMADD231PD Z9, Z10, Z12      // e = 1 - s*y
	VFMADD213PD  Z9, Z9, Z12       // y1 = y + y*e, faithful (in Z12)
	VMOVAPD      Z4, Z13
	VFNMADD231PD Z12, Z10, Z13     // e1 = 1 - s*y1, exact
	VFMADD213PD  Z12, Z12, Z13     // gB = RN(1/sB), in Z13

tile8zjoin:
	// A: Newton-Raphson reciprocal of sA (see coulombTileAVX512), then
	// both accumulator adds in source order: j first, j+1 second.
	VCMPPD.BCST  $4, ·avxInf(SB), Z7, K2 // finiteA = (sA != +Inf), NEQ_UQ
	KANDW        K2, K1, K1
	VRCP14PD     Z7, Z9            // y0 ~ 1/sA
	VMOVAPD      Z4, Z10
	VFNMADD231PD Z9, Z7, Z10       // e0 = 1 - sA*y0
	VFMADD213PD  Z9, Z9, Z10       // y1
	VMOVAPD      Z4, Z9
	VFNMADD231PD Z10, Z7, Z9
	VFMADD213PD  Z10, Z10, Z9      // y2
	VMOVAPD      Z4, Z10
	VFNMADD231PD Z9, Z7, Z10
	VFMADD213PD  Z9, Z9, Z10       // gA = RN(1/sA)
	VBROADCASTSD (R9)(DX*8), Z11   // q[j]
	VMULPD.Z     Z11, Z10, K1, Z12 // gA*q[j]; +0 on masked lanes
	VADDPD       Z12, Z3, Z3       // p[t] += gA*q[j]
	VBROADCASTSD 8(R9)(DX*8), Z11  // q[j+1]
	VMULPD.Z     Z11, Z13, K3, Z12 // gB*q[j+1]; +0 on masked lanes
	VADDPD       Z12, Z3, Z3       // p[t] += gB*q[j+1]

	ADDQ $2, DX
	CMPQ DX, BX
	JLT  tile8zpair

tile8ztail:
	CMPQ DX, CX
	JGE  tile8zdone

	// Odd trailing source: one pass of the A-stream arithmetic.
	VBROADCASTSD (SI)(DX*8), Z6
	VBROADCASTSD (DI)(DX*8), Z7
	VBROADCASTSD (R8)(DX*8), Z8
	VSUBPD       Z6, Z0, Z6
	VSUBPD       Z7, Z1, Z7
	VSUBPD       Z8, Z2, Z8
	VMULPD       Z6, Z6, Z6
	VMULPD       Z7, Z7, Z7
	VMULPD       Z8, Z8, Z8
	VADDPD       Z7, Z6, Z6
	VADDPD       Z8, Z6, Z6        // r2
	VPTESTMQ     Z6, Z6, K1        // valid = (r2 != 0)
	VSQRTPD      Z6, Z7            // s
	VCMPPD.BCST  $4, ·avxInf(SB), Z7, K2 // finite = (s != +Inf)
	KANDW        K2, K1, K1
	VRCP14PD     Z7, Z9
	VMOVAPD      Z4, Z10
	VFNMADD231PD Z9, Z7, Z10
	VFMADD213PD  Z9, Z9, Z10
	VMOVAPD      Z4, Z9
	VFNMADD231PD Z10, Z7, Z9
	VFMADD213PD  Z10, Z10, Z9
	VMOVAPD      Z4, Z10
	VFNMADD231PD Z9, Z7, Z10
	VFMADD213PD  Z9, Z9, Z10       // g = RN(1/s)
	VBROADCASTSD (R9)(DX*8), Z11
	VMULPD.Z     Z11, Z10, K1, Z12
	VADDPD       Z12, Z3, Z3

tile8zdone:
	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Z6
	VADDPD  Z3, Z6, Z6
	VMOVUPD Z6, (AX)
	VZEROUPPER
	RET

tile8zpatch:
	// Source j+1 has a lane outside the Goldschmidt fast range (denormal
	// or overflowed r2): redo it on the divider, which is proven over the
	// full magnitude range. Correctly rounded values are path-independent,
	// so taking this block for some sources changes no bits.
	VSQRTPD      Z8, Z9            // sB
	VCMPPD.BCST  $4, ·avxInf(SB), Z9, K6 // finiteB = (sB != +Inf)
	KANDW        K6, K3, K3
	VRCP14PD     Z9, Z10
	VMOVAPD      Z4, Z11
	VFNMADD231PD Z10, Z9, Z11
	VFMADD213PD  Z10, Z10, Z11     // y1
	VMOVAPD      Z4, Z10
	VFNMADD231PD Z11, Z9, Z10
	VFMADD213PD  Z11, Z11, Z10     // y2
	VMOVAPD      Z4, Z13
	VFNMADD231PD Z10, Z9, Z13
	VFMADD213PD  Z10, Z10, Z13     // gB = RN(1/sB), in Z13
	JMP          tile8zjoin
