#include "textflag.h"

// +Inf, for the 1/sqrt(overflowed r2) = +0 lanes of the AVX-512 path.
DATA ·avxInf+0(SB)/8, $0x7ff0000000000000
GLOBL ·avxInf(SB), RODATA|NOPTR, $8

// func cpuHasAVX512VL() bool
//
// CPUID leaf 0 must report leaf 7; leaf 7 subleaf 0: EBX bit 16 is
// AVX512F, bit 31 is AVX512VL (EVEX-encoded 128/256-bit forms).
// XGETBV(0) must show the OS saving XMM, YMM, opmask, ZMM_Hi256 and
// Hi16_ZMM state (XCR0 bits 1,2,5,6,7) before any EVEX instruction or
// k-register may be used. cpuHasAVX (block_amd64.s) is checked
// separately by the caller for the OSXSAVE/AVX baseline.
TEXT ·cpuHasAVX512VL(SB), NOSPLIT, $0-1
	XORL AX, AX
	CPUID
	CMPL AX, $7
	JLT  novl
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<16 | 1<<31), BX
	CMPL BX, $(1<<16 | 1<<31)
	JNE  novl
	XORL CX, CX
	XGETBV
	ANDL $0xe6, AX
	CMPL AX, $0xe6
	JNE  novl
	MOVB $1, ret+0(FP)
	RET

novl:
	MOVB $0, ret+0(FP)
	RET

// func coulombTileAVX512(tx, ty, tz *[4]float64, sx, sy, sz, q *float64, n int, phi *[4]float64)
//
// Coulomb source block against a 4-target tile, one target per YMM lane,
// with the reciprocal computed on the FMA ports instead of the divider.
// The tile loops are divider-throughput-bound on this generation of x86
// (VSQRTPD+VDIVPD ymm occupy the one divide/sqrt unit for ~13-16 cycles
// combined), so the division is replaced by the classic Newton–Raphson /
// Markstein sequence — the same construction GPUs use for IEEE fp64
// division in software, which keeps the result CORRECTLY ROUNDED and
// therefore bit-identical to VDIVPD:
//
//	y0 = rcp14(s)                         |rel err| <= 2^-14
//	y1 = y0 + y0*(1 - s*y0)  (2 FMAs)     err ~ 2^-28
//	y2 = y1 + y1*(1 - s*y1)  (2 FMAs)     err < 1 ulp (faithful)
//	y3 = y2 + y2*(1 - s*y2)  (2 FMAs)     == RN(1/s) exactly
//
// Each 1 - s*y is one VFNMADD (exact in the final step, by the standard
// cancellation lemma once y is faithful) and each update one VFMADD;
// Markstein's round-off theorem gives correct rounding of the last
// iterate for every s with normal 1/s. s = sqrt(r2) of a positive finite
// r2 lies in [2^-537, 2^512], so 1/s is always normal and the theorem
// applies on every unmasked lane; TestCoulombTileExtremeMagnitudes and
// FuzzTileAccum pin the equality empirically across the magnitude range.
// Edge lanes are handled with k-masks, matching the scalar code's
// branches: r2 == 0 lanes (self-interaction) and s == +Inf lanes
// (overflowed r2, where 1/Inf = +0) force g*q to +0 via zero-masking;
// NaN coordinates keep the lane valid so the NaN propagates like the
// scalar path (NEQ_UQ compares are unordered-true). Zeroing the product
// instead of g alone cannot change the accumulator bits: the chain
// starts at +0 and x + (+0) == x + (-0) for every x that is not -0, and
// no partial sum here can be -0.
//
// Per-lane accumulation order and the single phi[t] += add match
// coulombTileAVX below; bit-identity to the scalar loop in tile.go holds
// for the same reasons, with VDIVPD's role taken by the proven-equal NR
// reciprocal. The loop is deliberately one source per iteration and
// 256-bit throughout: the iteration's ~18 FP uops on two FMA ports (~9
// cycles) sit just above the 7-cycle VSQRTPD floor, and measured
// variants — a two-source unroll on disjoint YMM chains, and a packed
// two-sources-per-ZMM form — were no faster or slower here (the ZMM
// form progressively downclocks under sustained 512-bit sqrt+FMA load).
// n must be positive; sources are broadcast one at a time, so there is
// no alignment or multiple-of-anything requirement.
TEXT ·coulombTileAVX512(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0          // tx[0:4]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1          // ty[0:4]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2          // tz[0:4]
	VBROADCASTSD ·avxOne(SB), Y4
	VBROADCASTSD ·avxInf(SB), Y14
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	XORQ         DX, DX            // j; indexed loads keep the integer
	VXORPD       Y3, Y3, Y3        // per-lane block accumulators ...
	VXORPD       Y5, Y5, Y5        // ... bookkeeping off the FP ports

avx512loop:
	VBROADCASTSD (SI)(DX*8), Y6    // sx[j] in every lane
	VBROADCASTSD (DI)(DX*8), Y7    // sy[j]
	VBROADCASTSD (R8)(DX*8), Y8    // sz[j]
	VSUBPD       Y6, Y0, Y6        // dx = tx - sx[j]
	VSUBPD       Y7, Y1, Y7        // dy = ty - sy[j]
	VSUBPD       Y8, Y2, Y8        // dz = tz - sz[j]
	VMULPD       Y6, Y6, Y6        // dx*dx
	VMULPD       Y7, Y7, Y7        // dy*dy
	VMULPD       Y8, Y8, Y8        // dz*dz
	VADDPD       Y7, Y6, Y6        // dx*dx + dy*dy
	VADDPD       Y8, Y6, Y6        // r2 = (dx*dx + dy*dy) + dz*dz
	VCMPPD       $4, Y5, Y6, K1    // valid = (r2 != 0), NEQ_UQ
	VSQRTPD      Y6, Y9            // s = sqrt(r2)
	VCMPPD       $4, Y14, Y9, K2   // finite = (s != +Inf), NEQ_UQ
	KANDW        K2, K1, K1
	VRCP14PD     Y9, Y10           // y0 ~ 1/s
	VMOVAPD      Y4, Y11
	VFNMADD231PD Y10, Y9, Y11      // e0 = 1 - s*y0
	VFMADD213PD  Y10, Y10, Y11     // y1 = y0 + y0*e0
	VMOVAPD      Y4, Y12
	VFNMADD231PD Y11, Y9, Y12      // e1 = 1 - s*y1
	VFMADD213PD  Y11, Y11, Y12     // y2 = y1 + y1*e1
	VMOVAPD      Y4, Y13
	VFNMADD231PD Y12, Y9, Y13      // e2 = 1 - s*y2, exact
	VFMADD213PD  Y12, Y12, Y13     // g = y2 + y2*e2 = RN(1/s)
	VBROADCASTSD (R9)(DX*8), Y9    // q[j]
	VMULPD.Z     Y9, Y13, K1, Y10  // g*q[j]; +0 on masked lanes
	VADDPD       Y10, Y3, Y3       // p[t] += g*q[j], in source order per lane

	INCQ DX
	CMPQ DX, CX
	JNE  avx512loop

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VZEROUPPER
	RET

// func coulombTileAVX(tx, ty, tz *[4]float64, sx, sy, sz, q *float64, n int, phi *[4]float64)
//
// Coulomb source block against a 4-target tile, one target per YMM lane.
// Each iteration broadcasts one source to all lanes, so every lane t runs
// the exact scalar expression sequence for its target — dx = tx[t]-sx[j],
// r2 = (dx*dx + dy*dy) + dz*dz, g = 1/sqrt(r2) (zeroed by mask when
// r2 == 0), p += g*q[j] — with IEEE-correctly-rounded per-lane twins of
// the scalar ops (VSUBPD/VMULPD/VADDPD in the same expression order,
// VSQRTPD for math.Sqrt, VDIVPD for the reciprocal — never FMA). Per-lane
// VADDPD accumulation visits sources in j order, so each target's chain
// is bit-identical to the scalar loop in tile.go; unlike the single-target
// block loop in block_amd64.s there is no serial cross-lane VADDSD chain
// left to bound the iteration, only the divider. The final phi update is
// one per-lane add of the block total, matching the phi[t] += p contract.
TEXT ·coulombTileAVX(SB), NOSPLIT, $0-72
	MOVQ         tx+0(FP), AX
	VMOVUPD      (AX), Y0          // tx[0:4]
	MOVQ         ty+8(FP), AX
	VMOVUPD      (AX), Y1          // ty[0:4]
	MOVQ         tz+16(FP), AX
	VMOVUPD      (AX), Y2          // tz[0:4]
	VBROADCASTSD ·avxOne(SB), Y4
	MOVQ         sx+24(FP), SI
	MOVQ         sy+32(FP), DI
	MOVQ         sz+40(FP), R8
	MOVQ         q+48(FP), R9
	MOVQ         n+56(FP), CX
	VXORPD       Y3, Y3, Y3        // per-lane block accumulators
	VXORPD       Y5, Y5, Y5        // zeros for the r2 == 0 mask

	SUBQ $1, CX
	JZ   tail                      // n == 1: single-source epilogue only

loop2:
	// Two sources per iteration, fully independent register chains, so
	// the sqrt/div pipeline always has a second problem in flight. The
	// two accumulator adds stay in j, j+1 order per lane.
	VBROADCASTSD (SI), Y6          // sx[j] in every lane
	VBROADCASTSD (DI), Y7          // sy[j]
	VBROADCASTSD (R8), Y8          // sz[j]
	VBROADCASTSD 8(SI), Y10        // sx[j+1]
	VBROADCASTSD 8(DI), Y11        // sy[j+1]
	VBROADCASTSD 8(R8), Y12        // sz[j+1]
	VSUBPD       Y6, Y0, Y6        // dx = tx - sx[j]
	VSUBPD       Y7, Y1, Y7        // dy = ty - sy[j]
	VSUBPD       Y8, Y2, Y8        // dz = tz - sz[j]
	VSUBPD       Y10, Y0, Y10
	VSUBPD       Y11, Y1, Y11
	VSUBPD       Y12, Y2, Y12
	VMULPD       Y6, Y6, Y6        // dx*dx
	VMULPD       Y7, Y7, Y7        // dy*dy
	VMULPD       Y8, Y8, Y8        // dz*dz
	VMULPD       Y10, Y10, Y10
	VMULPD       Y11, Y11, Y11
	VMULPD       Y12, Y12, Y12
	VADDPD       Y7, Y6, Y6        // dx*dx + dy*dy
	VADDPD       Y8, Y6, Y6        // r2 = (dx*dx + dy*dy) + dz*dz
	VADDPD       Y11, Y10, Y10
	VADDPD       Y12, Y10, Y10
	VCMPPD       $0, Y5, Y6, Y8    // mask = (r2 == 0), EQ_OQ
	VSQRTPD      Y6, Y7            // sqrt(r2)
	VCMPPD       $0, Y5, Y10, Y12
	VSQRTPD      Y10, Y11
	VDIVPD       Y7, Y4, Y7        // g = 1 / sqrt(r2)
	VDIVPD       Y11, Y4, Y11
	VANDNPD      Y7, Y8, Y7        // g = 0 on self-interaction lanes
	VANDNPD      Y11, Y12, Y11
	VBROADCASTSD (R9), Y9          // q[j]
	VMULPD       Y9, Y7, Y7        // g * q[j]
	VADDPD       Y7, Y3, Y3        // p[t] += g*q[j]
	VBROADCASTSD 8(R9), Y13        // q[j+1]
	VMULPD       Y13, Y11, Y11
	VADDPD       Y11, Y3, Y3       // p[t] += g*q[j+1], after source j

	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, R8
	ADDQ $16, R9
	SUBQ $2, CX
	JG   loop2
	JL   done                      // even n: no source left

tail:
	VBROADCASTSD (SI), Y6          // last source when n is odd
	VBROADCASTSD (DI), Y7
	VBROADCASTSD (R8), Y8
	VSUBPD       Y6, Y0, Y6
	VSUBPD       Y7, Y1, Y7
	VSUBPD       Y8, Y2, Y8
	VMULPD       Y6, Y6, Y6
	VMULPD       Y7, Y7, Y7
	VMULPD       Y8, Y8, Y8
	VADDPD       Y7, Y6, Y6
	VADDPD       Y8, Y6, Y6
	VCMPPD       $0, Y5, Y6, Y8
	VSQRTPD      Y6, Y7
	VDIVPD       Y7, Y4, Y7
	VANDNPD      Y7, Y8, Y7
	VBROADCASTSD (R9), Y9
	VMULPD       Y9, Y7, Y7
	VADDPD       Y7, Y3, Y3

done:

	// phi[t] += p[t]: one per-lane add of the block total.
	MOVQ    phi+64(FP), AX
	VMOVUPD (AX), Y6
	VADDPD  Y3, Y6, Y6
	VMOVUPD Y6, (AX)
	VZEROUPPER
	RET
