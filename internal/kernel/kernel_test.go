package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCoulombValues(t *testing.T) {
	k := Coulomb{}
	if got := k.Eval(0, 0, 0, 1, 0, 0); got != 1 {
		t.Errorf("G at distance 1 = %g", got)
	}
	if got := k.Eval(0, 0, 0, 0, 2, 0); got != 0.5 {
		t.Errorf("G at distance 2 = %g", got)
	}
	if got := k.Eval(1, 2, 3, 1, 2, 3); got != 0 {
		t.Errorf("self interaction = %g, want 0", got)
	}
}

func TestYukawaValues(t *testing.T) {
	k := Yukawa{Kappa: 0.5}
	r := 2.0
	want := math.Exp(-0.5*r) / r
	if got := k.Eval(0, 0, 0, 0, 0, r); math.Abs(got-want) > 1e-15 {
		t.Errorf("yukawa at distance 2 = %g, want %g", got, want)
	}
	if got := k.Eval(1, 1, 1, 1, 1, 1); got != 0 {
		t.Errorf("self interaction = %g", got)
	}
	// kappa = 0 degenerates to Coulomb.
	k0 := Yukawa{Kappa: 0}
	c := Coulomb{}
	if got, want := k0.Eval(0, 0, 0, 1, 2, 2), c.Eval(0, 0, 0, 1, 2, 2); math.Abs(got-want) > 1e-15 {
		t.Errorf("kappa=0 yukawa %g != coulomb %g", got, want)
	}
}

func TestYukawaBelowCoulomb(t *testing.T) {
	// Screening always reduces the interaction.
	f := func(x, y, z float64) bool {
		x, y, z = math.Mod(x, 10), math.Mod(y, 10), math.Mod(z, 10)
		if math.IsNaN(x+y+z) || (x == 0 && y == 0 && z == 0) {
			return true
		}
		yk := Yukawa{Kappa: 0.5}.Eval(0, 0, 0, x, y, z)
		cl := Coulomb{}.Eval(0, 0, 0, x, y, z)
		return yk <= cl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKernelSymmetry(t *testing.T) {
	// All provided kernels are radial: G(x,y) = G(y,x).
	kernels := []Kernel{
		Coulomb{}, Yukawa{Kappa: 0.7}, Gaussian{Sigma: 1.2},
		Multiquadric{C: 0.5}, RegularizedCoulomb{Eps: 0.1}, InversePower{P: 2},
	}
	pts := [][6]float64{
		{0, 0, 0, 1, 2, 3},
		{-1, 0.5, 2, 0.25, -3, 1},
		{5, 5, 5, 5, 5, 6},
	}
	for _, k := range kernels {
		for _, p := range pts {
			a := k.Eval(p[0], p[1], p[2], p[3], p[4], p[5])
			b := k.Eval(p[3], p[4], p[5], p[0], p[1], p[2])
			if a != b {
				t.Errorf("%s not symmetric: %g vs %g", k.Name(), a, b)
			}
		}
	}
}

func TestKernelDecay(t *testing.T) {
	// Decaying kernels must be monotone in distance.
	decaying := []Kernel{Coulomb{}, Yukawa{Kappa: 0.5}, Gaussian{Sigma: 1}, RegularizedCoulomb{Eps: 0.2}, InversePower{P: 3}}
	for _, k := range decaying {
		prev := math.Inf(1)
		for r := 0.5; r < 16; r *= 2 {
			v := k.Eval(0, 0, 0, r, 0, 0)
			if v >= prev {
				t.Errorf("%s not decaying at r=%g: %g >= %g", k.Name(), r, v, prev)
			}
			if v <= 0 {
				t.Errorf("%s non-positive at r=%g: %g", k.Name(), r, v)
			}
			prev = v
		}
	}
}

func TestYukawaCostRatios(t *testing.T) {
	// The paper observes Yukawa/Coulomb run-time ratios of ~1.8 on the
	// CPU and ~1.5 on the GPU; the cost table must reproduce both.
	c := Coulomb{}
	y := Yukawa{Kappa: 0.5}
	cpuRatio := y.Cost(ArchCPU) / c.Cost(ArchCPU)
	gpuRatio := y.Cost(ArchGPU) / c.Cost(ArchGPU)
	if cpuRatio < 1.6 || cpuRatio > 2.0 {
		t.Errorf("CPU Yukawa/Coulomb cost ratio %.2f outside [1.6, 2.0]", cpuRatio)
	}
	if gpuRatio < 1.3 || gpuRatio > 1.7 {
		t.Errorf("GPU Yukawa/Coulomb cost ratio %.2f outside [1.3, 1.7]", gpuRatio)
	}
	if cpuRatio <= gpuRatio {
		t.Errorf("CPU ratio %.2f should exceed GPU ratio %.2f (exp is relatively cheaper on GPUs)",
			cpuRatio, gpuRatio)
	}
}

func TestAllCostsPositive(t *testing.T) {
	kernels := []Kernel{
		Coulomb{}, Yukawa{Kappa: 0.5}, Gaussian{Sigma: 1},
		Multiquadric{C: 1}, RegularizedCoulomb{Eps: 0.1}, InversePower{P: 2},
		Func{KernelName: "custom", F: func(a, b, c, d, e, f float64) float64 { return 0 }},
	}
	for _, k := range kernels {
		for _, arch := range []Arch{ArchCPU, ArchGPU} {
			if k.Cost(arch) <= 0 {
				t.Errorf("%s cost on %v is %g", k.Name(), arch, k.Cost(arch))
			}
		}
	}
}

func TestMultiquadricGrowsWithDistance(t *testing.T) {
	k := Multiquadric{C: 1}
	if k.Eval(0, 0, 0, 0, 0, 0) != 1 {
		t.Errorf("mq at 0 = %g, want c = 1", k.Eval(0, 0, 0, 0, 0, 0))
	}
	if k.Eval(0, 0, 0, 3, 0, 0) <= k.Eval(0, 0, 0, 1, 0, 0) {
		t.Error("multiquadric should grow with distance")
	}
}

func TestInversePowerGeneralizesCoulomb(t *testing.T) {
	ip := InversePower{P: 1}
	c := Coulomb{}
	for _, r := range []float64{0.5, 1, 2, 7} {
		a, b := ip.Eval(0, 0, 0, r, 0, 0), c.Eval(0, 0, 0, r, 0, 0)
		if math.Abs(a-b) > 1e-14*b {
			t.Errorf("p=1 inverse power %g != coulomb %g at r=%g", a, b, r)
		}
	}
}

func TestFuncKernel(t *testing.T) {
	k := Func{
		KernelName: "screened-r2",
		F: func(tx, ty, tz, sx, sy, sz float64) float64 {
			dx, dy, dz := tx-sx, ty-sy, tz-sz
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				return 0
			}
			return 1 / r2
		},
		CPUCost: 15,
		GPUCost: 12,
	}
	if k.Name() != "screened-r2" {
		t.Errorf("name = %q", k.Name())
	}
	if got := k.Eval(0, 0, 0, 2, 0, 0); got != 0.25 {
		t.Errorf("eval = %g", got)
	}
	if k.Cost(ArchCPU) != 15 || k.Cost(ArchGPU) != 12 {
		t.Errorf("costs = %g, %g", k.Cost(ArchCPU), k.Cost(ArchGPU))
	}
	if (Func{KernelName: "d", F: k.F}).Cost(ArchCPU) != 20 {
		t.Error("default cost should be 20")
	}
}

func TestF32MatchesF64Approximately(t *testing.T) {
	f32Kernels := []F32Kernel{Coulomb{}, Yukawa{Kappa: 0.5}, Gaussian{Sigma: 1}, RegularizedCoulomb{Eps: 0.1}}
	for _, k := range f32Kernels {
		for _, r := range []float64{0.25, 1, 3.7} {
			f64 := k.Eval(0, 0, 0, r, 0.1, -0.2)
			f32 := float64(k.EvalF32(0, 0, 0, float32(r), 0.1, -0.2))
			if rel := math.Abs(f64-f32) / math.Max(math.Abs(f64), 1e-30); rel > 1e-5 {
				t.Errorf("%s: f32 deviates by %.3g at r=%g", k.Name(), rel, r)
			}
		}
	}
	// Self interaction still zero in fp32.
	if (Coulomb{}).EvalF32(1, 1, 1, 1, 1, 1) != 0 {
		t.Error("fp32 self interaction nonzero")
	}
}

func TestArchString(t *testing.T) {
	if ArchCPU.String() != "cpu" || ArchGPU.String() != "gpu" {
		t.Errorf("arch strings %q %q", ArchCPU.String(), ArchGPU.String())
	}
}
