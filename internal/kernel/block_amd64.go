//go:build amd64

package kernel

// cpuHasAVX reports whether this CPU and OS support AVX (VEX.256 float
// math). Implemented in block_amd64.s.
func cpuHasAVX() bool

// coulombBlockAVX4 evaluates sum_j q[j]/|t-s_j| over n sources four lanes
// at a time with bit-identical rounding and accumulation order to the
// scalar loop. n must be a positive multiple of 4. Implemented in
// block_amd64.s.
func coulombBlockAVX4(tx, ty, tz float64, sx, sy, sz, q *float64, n int) float64

func init() {
	if cpuHasAVX() {
		coulombBlockHead = coulombBlockHeadAVX
	}
}

// coulombBlockHeadAVX runs the vectorized Coulomb loop over the longest
// multiple-of-four prefix and reports how many sources it consumed; the
// caller's scalar loop finishes the tail, preserving the overall
// accumulation order.
//
//hot:path
func coulombBlockHeadAVX(tx, ty, tz float64, sx, sy, sz, q []float64) (float64, int) {
	n4 := len(q) &^ 3
	if n4 == 0 {
		return 0, 0
	}
	return coulombBlockAVX4(tx, ty, tz, &sx[0], &sy[0], &sz[0], &q[0], n4), n4
}
