package kernel

import "math"

// BlockKernel is the block-evaluation fast path: one call evaluates a whole
// block of sources against a single target and returns the accumulated
// charge-weighted potential
//
//	sum_j G(t, s_j) * q[j]
//
// in index order. This is the host-side analogue of the paper's inner GPU
// loop (Figure 3): the treecode's hot paths resolve a BlockKernel once per
// run (AsBlock) and then pay one dynamic dispatch per *block* instead of
// one per pairwise interaction, with a concrete, vectorizable loop inside.
//
// Contract: EvalBlockAccum must be bit-identical to the scalar reference
//
//	var phi float64
//	for j := range q { phi += k.Eval(tx, ty, tz, sx[j], sy[j], sz[j]) * q[j] }
//
// — same operations, same order, same rounding. Implementations may hoist
// loop-invariant parameter arithmetic (e.g. eps*eps) but must not reorder
// or fuse the per-source accumulation. sx, sy, sz and q always have equal
// length. All built-in kernels implement BlockKernel; custom kernels get
// the generic adapter from AsBlock and keep working unchanged. See
// docs/performance.md for the full contract.
type BlockKernel interface {
	Kernel
	EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64
}

// F32BlockKernel is the single-precision block fast path. Source
// coordinates and charges arrive as the float64 storage arrays and are
// rounded per element, exactly like the scalar F32 reference
//
//	var phi float32
//	for j := range q {
//		phi += k.EvalF32(tx, ty, tz, float32(sx[j]), float32(sy[j]), float32(sz[j])) * float32(q[j])
//	}
//
// with float32 accumulation (mirroring an fp32 GPU kernel).
type F32BlockKernel interface {
	F32Kernel
	EvalBlockAccumF32(tx, ty, tz float32, sx, sy, sz, q []float64) float32
}

// AsBlock resolves the block fast path for k: kernels implementing
// BlockKernel (all built-ins) are returned unchanged; any other Kernel —
// kernel.Func and user-defined kernels — is wrapped in a generic adapter
// whose block loop calls Eval per source, bit-identical to the scalar path.
// Resolve once per run, outside the hot loops.
func AsBlock(k Kernel) BlockKernel {
	if bk, ok := k.(BlockKernel); ok {
		return bk
	}
	return blockAdapter{k}
}

// AsF32Block resolves the single-precision block fast path for k, wrapping
// kernels without a native F32BlockKernel implementation in a generic
// adapter.
func AsF32Block(k F32Kernel) F32BlockKernel {
	if bk, ok := k.(F32BlockKernel); ok {
		return bk
	}
	return f32BlockAdapter{k}
}

// blockAdapter lifts any Kernel to BlockKernel with a per-source Eval loop.
type blockAdapter struct {
	Kernel
}

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (a blockAdapter) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	var phi float64
	for j := range q {
		phi += a.Kernel.Eval(tx, ty, tz, sx[j], sy[j], sz[j]) * q[j]
	}
	return phi
}

// f32BlockAdapter lifts any F32Kernel to F32BlockKernel.
type f32BlockAdapter struct {
	F32Kernel
}

// EvalBlockAccumF32 implements F32BlockKernel.
//
//hot:path
func (a f32BlockAdapter) EvalBlockAccumF32(tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	var phi float32
	for j := range q {
		phi += a.F32Kernel.EvalF32(tx, ty, tz, float32(sx[j]), float32(sy[j]), float32(sz[j])) * float32(q[j])
	}
	return phi
}

// --- Hand-specialized fp64 block loops for the built-in kernels. Each body
// repeats its kernel's Eval expression verbatim (loop-invariant parameter
// products hoisted) so the accumulated sum is bit-identical to the scalar
// path while the loop itself is free of dynamic dispatch.

// coulombBlockHead, when non-nil, evaluates a prefix of a Coulomb block
// with SIMD sqrt/div — IEEE-correctly-rounded per lane, with the phi
// accumulation performed scalar in source order, so the bits match the
// plain loop exactly (see block_amd64.s). It returns the partial sum and
// the number of sources consumed; the caller finishes the tail with the
// scalar loop. Nil on architectures without an implementation and on x86
// CPUs without AVX.
var coulombBlockHead func(tx, ty, tz float64, sx, sy, sz, q []float64) (float64, int)

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (Coulomb) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	var phi float64
	j := 0
	if coulombBlockHead != nil {
		phi, j = coulombBlockHead(tx, ty, tz, sx, sy, sz, q)
	}
	for ; j < len(q); j++ {
		dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			g = 1 / math.Sqrt(r2)
		}
		phi += g * q[j]
	}
	return phi
}

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (k Yukawa) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	kappa := k.Kappa
	var phi float64
	for j := range q {
		dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			r := math.Sqrt(r2)
			g = math.Exp(-kappa*r) / r
		}
		phi += g * q[j]
	}
	return phi
}

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (g Gaussian) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	s2 := g.Sigma * g.Sigma
	var phi float64
	for j := range q {
		dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
		r2 := dx*dx + dy*dy + dz*dz
		phi += math.Exp(-r2/s2) * q[j]
	}
	return phi
}

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (m Multiquadric) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	c2 := m.C * m.C
	var phi float64
	for j := range q {
		dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
		phi += math.Sqrt(dx*dx+dy*dy+dz*dz+c2) * q[j]
	}
	return phi
}

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (r RegularizedCoulomb) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e2 := r.Eps * r.Eps
	var phi float64
	for j := range q {
		dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
		phi += 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+e2) * q[j]
	}
	return phi
}

// EvalBlockAccum implements BlockKernel.
//
//hot:path
func (ip InversePower) EvalBlockAccum(tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e := -ip.P / 2
	var phi float64
	for j := range q {
		dx, dy, dz := tx-sx[j], ty-sy[j], tz-sz[j]
		r2 := dx*dx + dy*dy + dz*dz
		g := 0.0
		if r2 != 0 {
			g = math.Pow(r2, e)
		}
		phi += g * q[j]
	}
	return phi
}

// --- Hand-specialized fp32 block loops for the built-in F32 kernels.

// EvalBlockAccumF32 implements F32BlockKernel.
//
//hot:path
func (Coulomb) EvalBlockAccumF32(tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	var phi float32
	for j := range q {
		dx, dy, dz := tx-float32(sx[j]), ty-float32(sy[j]), tz-float32(sz[j])
		r2 := dx*dx + dy*dy + dz*dz
		var g float32
		if r2 != 0 {
			g = 1 / float32(math.Sqrt(float64(r2)))
		}
		phi += g * float32(q[j])
	}
	return phi
}

// EvalBlockAccumF32 implements F32BlockKernel.
//
//hot:path
func (k Yukawa) EvalBlockAccumF32(tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	kappa := float32(k.Kappa)
	var phi float32
	for j := range q {
		dx, dy, dz := tx-float32(sx[j]), ty-float32(sy[j]), tz-float32(sz[j])
		r2 := dx*dx + dy*dy + dz*dz
		var g float32
		if r2 != 0 {
			r := float32(math.Sqrt(float64(r2)))
			g = float32(math.Exp(float64(-kappa*r))) / r
		}
		phi += g * float32(q[j])
	}
	return phi
}

// EvalBlockAccumF32 implements F32BlockKernel.
//
//hot:path
func (g Gaussian) EvalBlockAccumF32(tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	s := float32(g.Sigma)
	s2 := s * s
	var phi float32
	for j := range q {
		dx, dy, dz := tx-float32(sx[j]), ty-float32(sy[j]), tz-float32(sz[j])
		r2 := dx*dx + dy*dy + dz*dz
		phi += float32(math.Exp(float64(-r2/s2))) * float32(q[j])
	}
	return phi
}

// EvalBlockAccumF32 implements F32BlockKernel.
//
//hot:path
func (r RegularizedCoulomb) EvalBlockAccumF32(tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	// Hoist the slice bounds: one check here instead of three per source.
	sx, sy, sz = sx[:len(q)], sy[:len(q)], sz[:len(q)]
	e := float32(r.Eps)
	e2 := e * e
	var phi float32
	for j := range q {
		dx, dy, dz := tx-float32(sx[j]), ty-float32(sy[j]), tz-float32(sz[j])
		phi += 1 / float32(math.Sqrt(float64(dx*dx+dy*dy+dz*dz+e2))) * float32(q[j])
	}
	return phi
}
