package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// gradKernels returns every built-in kernel implementing GradKernel.
func gradKernels() []GradKernel {
	return []GradKernel{
		Coulomb{},
		Yukawa{Kappa: 0.5},
		Yukawa{Kappa: 2},
		Gaussian{Sigma: 0.8},
		Multiquadric{C: 0.7},
		RegularizedCoulomb{Eps: 0.05},
	}
}

func TestEvalGradValueMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, k := range gradKernels() {
		for trial := 0; trial < 50; trial++ {
			tx, ty, tz := rng.Float64(), rng.Float64(), rng.Float64()
			sx, sy, sz := 2+rng.Float64(), rng.Float64(), rng.Float64()
			g, _, _, _ := k.EvalGrad(tx, ty, tz, sx, sy, sz)
			want := k.Eval(tx, ty, tz, sx, sy, sz)
			if math.Abs(g-want) > 1e-14*math.Max(1, math.Abs(want)) {
				t.Errorf("%s: EvalGrad value %g != Eval %g", k.Name(), g, want)
			}
		}
	}
}

func TestEvalGradMatchesFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const h = 1e-6
	for _, k := range gradKernels() {
		for trial := 0; trial < 30; trial++ {
			tx, ty, tz := rng.Float64(), rng.Float64(), rng.Float64()
			// Keep the pair well separated so finite differences are
			// well conditioned.
			sx, sy, sz := 2+rng.Float64(), 2+rng.Float64(), rng.Float64()
			_, gx, gy, gz := k.EvalGrad(tx, ty, tz, sx, sy, sz)
			fdx := (k.Eval(tx+h, ty, tz, sx, sy, sz) - k.Eval(tx-h, ty, tz, sx, sy, sz)) / (2 * h)
			fdy := (k.Eval(tx, ty+h, tz, sx, sy, sz) - k.Eval(tx, ty-h, tz, sx, sy, sz)) / (2 * h)
			fdz := (k.Eval(tx, ty, tz+h, sx, sy, sz) - k.Eval(tx, ty, tz-h, sx, sy, sz)) / (2 * h)
			scale := math.Max(1e-6, math.Abs(fdx)+math.Abs(fdy)+math.Abs(fdz))
			if math.Abs(gx-fdx)/scale > 1e-5 || math.Abs(gy-fdy)/scale > 1e-5 || math.Abs(gz-fdz)/scale > 1e-5 {
				t.Errorf("%s: gradient (%g,%g,%g) vs FD (%g,%g,%g)", k.Name(), gx, gy, gz, fdx, fdy, fdz)
			}
		}
	}
}

func TestEvalGradSelfInteractionZero(t *testing.T) {
	for _, k := range gradKernels() {
		if _, ok := k.(Gaussian); ok {
			continue // Gaussian has no singularity: G(x,x)=1 is fine
		}
		if _, ok := k.(Multiquadric); ok {
			continue // multiquadric is regular at r=0 too
		}
		if _, ok := k.(RegularizedCoulomb); ok {
			continue // regularized: finite at r=0
		}
		g, gx, gy, gz := k.EvalGrad(1, 2, 3, 1, 2, 3)
		if g != 0 || gx != 0 || gy != 0 || gz != 0 {
			t.Errorf("%s: self interaction gradient nonzero: %g (%g,%g,%g)", k.Name(), g, gx, gy, gz)
		}
	}
}

func TestGradPointsDownhill(t *testing.T) {
	// For decaying radial kernels the gradient at the target points away
	// from the source (potential decreases with distance).
	for _, k := range []GradKernel{Coulomb{}, Yukawa{Kappa: 0.5}, Gaussian{Sigma: 1}, RegularizedCoulomb{Eps: 0.1}} {
		_, gx, gy, gz := k.EvalGrad(2, 0, 0, 0, 0, 0)
		// Direction target-source is +x; a decaying kernel has d/dx < 0.
		if gx >= 0 || gy != 0 || gz != 0 {
			t.Errorf("%s: gradient (%g,%g,%g) not pointing downhill", k.Name(), gx, gy, gz)
		}
	}
	// Multiquadric grows with r: gradient points along +x.
	_, gx, _, _ := (Multiquadric{C: 1}).EvalGrad(2, 0, 0, 0, 0, 0)
	if gx <= 0 {
		t.Errorf("multiquadric gradient %g should be positive", gx)
	}
}

func TestGradCostExceedsBase(t *testing.T) {
	for _, k := range gradKernels() {
		for _, arch := range []Arch{ArchCPU, ArchGPU} {
			if GradCost(k, arch) <= k.Cost(arch) {
				t.Errorf("%s: grad cost not above base on %v", k.Name(), arch)
			}
		}
	}
}
