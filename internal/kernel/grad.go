package kernel

import "math"

// GradKernel is the optional interface for kernels with an analytic
// gradient with respect to the *target* coordinate. The treecode computes
// forces kernel-independently from it: because the barycentric
// approximation interpolates in the source variable only, the field at a
// target is
//
//	grad phi(x) ~= sum_k grad_x G(x, s_k) qhat_k,
//
// a direct sum over the same proxy charges used for the potential — no new
// expansions, just gradient evaluations.
type GradKernel interface {
	Kernel
	// EvalGrad returns G(x, y) and its gradient with respect to x.
	// The self-interaction convention extends to the gradient:
	// EvalGrad(x, x) = (0, 0, 0, 0).
	EvalGrad(tx, ty, tz, sx, sy, sz float64) (g, gx, gy, gz float64)
}

// EvalGrad implements GradKernel: grad 1/r = -(x-y)/r^3.
func (Coulomb) EvalGrad(tx, ty, tz, sx, sy, sz float64) (g, gx, gy, gz float64) {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0, 0, 0, 0
	}
	r := math.Sqrt(r2)
	inv := 1 / r
	c := -inv * inv * inv
	return inv, c * dx, c * dy, c * dz
}

// EvalGrad implements GradKernel:
// grad e^{-kr}/r = -e^{-kr} (kr + 1)/r^3 * (x-y).
func (k Yukawa) EvalGrad(tx, ty, tz, sx, sy, sz float64) (g, gx, gy, gz float64) {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0, 0, 0, 0
	}
	r := math.Sqrt(r2)
	e := math.Exp(-k.Kappa * r)
	g = e / r
	c := -e * (k.Kappa*r + 1) / (r2 * r)
	return g, c * dx, c * dy, c * dz
}

// EvalGrad implements GradKernel:
// grad e^{-r^2/s^2} = -2/s^2 e^{-r^2/s^2} (x-y).
func (gk Gaussian) EvalGrad(tx, ty, tz, sx, sy, sz float64) (g, gx, gy, gz float64) {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	s2 := gk.Sigma * gk.Sigma
	g = math.Exp(-r2 / s2)
	c := -2 / s2 * g
	return g, c * dx, c * dy, c * dz
}

// EvalGrad implements GradKernel:
// grad sqrt(r^2+c^2) = (x-y)/sqrt(r^2+c^2).
func (m Multiquadric) EvalGrad(tx, ty, tz, sx, sy, sz float64) (g, gx, gy, gz float64) {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	g = math.Sqrt(dx*dx + dy*dy + dz*dz + m.C*m.C)
	inv := 1 / g
	return g, inv * dx, inv * dy, inv * dz
}

// EvalGrad implements GradKernel:
// grad (r^2+eps^2)^{-1/2} = -(x-y)(r^2+eps^2)^{-3/2}.
func (rk RegularizedCoulomb) EvalGrad(tx, ty, tz, sx, sy, sz float64) (g, gx, gy, gz float64) {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	d2 := dx*dx + dy*dy + dz*dz + rk.Eps*rk.Eps
	g = 1 / math.Sqrt(d2)
	c := -g / d2
	return g, c * dx, c * dy, c * dz
}

// GradCost returns the modeled flop-equivalents of one EvalGrad call: the
// base kernel cost plus the gradient arithmetic (~6 extra mul-adds and one
// extra divide-class operation).
func GradCost(k Kernel, arch Arch) float64 {
	c := costs(arch)
	return k.Cost(arch) + 6 + c.div
}
