// Package kernel defines the interaction kernels G(x, y) that the treecode
// sums. The BLTC is kernel-independent: it only ever *evaluates* G, so any
// non-oscillatory kernel that is smooth for x != y plugs in unchanged. The
// package ships the paper's two kernels (Coulomb and Yukawa) plus several
// others that exercise the kernel-independence claim.
//
// Each kernel also carries an evaluation-cost descriptor used by the
// performance model: the paper observes Yukawa running ~1.8x slower than
// Coulomb on the CPU and ~1.5x slower on the GPU, which is a property of
// the kernel body (the extra exp) interacting with each architecture.
package kernel

import (
	"fmt"
	"math"
)

// Kernel is a pairwise interaction kernel G(target, source). Implementations
// must be safe for concurrent use; all provided kernels are stateless.
type Kernel interface {
	// Name returns a short identifier, e.g. "coulomb".
	Name() string

	// Eval returns G(x, y) for target x = (tx,ty,tz) and source
	// y = (sx,sy,sz). Eval is called with x != y by the treecode except in
	// self-interaction direct sums, where the convention G(x,x) = 0 applies
	// (the singular self term is excluded from the potential).
	Eval(tx, ty, tz, sx, sy, sz float64) float64

	// Cost returns the modeled cost of one kernel evaluation in
	// flop-equivalents on the given architecture class. Divides, square
	// roots and exponentials are weighted per architecture, which is what
	// produces kernel-dependent CPU/GPU time ratios.
	Cost(arch Arch) float64
}

// Arch is a coarse architecture class used by the evaluation-cost model.
type Arch int

const (
	// ArchCPU is a conventional out-of-order CPU core (scalar/SIMD fp64).
	ArchCPU Arch = iota
	// ArchGPU is a throughput-oriented GPU SM (fp64 units, SFU-assisted
	// special functions).
	ArchGPU
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case ArchCPU:
		return "cpu"
	case ArchGPU:
		return "gpu"
	}
	return fmt.Sprintf("arch(%d)", int(a))
}

// opCost captures per-architecture weights for the expensive operations in a
// kernel body; simple multiply-adds count as 1.
type opCost struct {
	sqrt, div, exp float64
}

func costs(arch Arch) opCost {
	switch arch {
	case ArchGPU:
		// GPUs hide sqrt/div latency well and have SFU support; exp is
		// relatively cheaper than on a CPU but still dominant. These
		// weights put Yukawa at ~1.5x Coulomb, the GPU ratio the paper
		// observes in Figure 4.
		return opCost{sqrt: 4, div: 4, exp: 7}
	default:
		// CPU fp64 sqrt/div ~20 cycles, exp (libm) considerably more.
		// These weights put Yukawa at ~1.8x Coulomb, the CPU ratio the
		// paper observes in Figure 4.
		return opCost{sqrt: 8, div: 8, exp: 18}
	}
}

// Coulomb is the Coulomb (Newtonian) kernel G(x,y) = 1/|x-y|.
type Coulomb struct{}

// Name implements Kernel.
func (Coulomb) Name() string { return "coulomb" }

// Eval implements Kernel. G(x,x) = 0 by convention.
func (Coulomb) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	return 1 / math.Sqrt(r2)
}

// Cost implements Kernel: 8 mul-adds + sqrt + div.
func (Coulomb) Cost(arch Arch) float64 {
	c := costs(arch)
	return 8 + c.sqrt + c.div
}

// Yukawa is the screened Coulomb kernel G(x,y) = exp(-kappa*|x-y|)/|x-y|,
// with kappa the inverse Debye length.
type Yukawa struct {
	Kappa float64
}

// Name implements Kernel.
func (k Yukawa) Name() string { return "yukawa" }

// Eval implements Kernel. G(x,x) = 0 by convention.
func (k Yukawa) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	r := math.Sqrt(r2)
	return math.Exp(-k.Kappa*r) / r
}

// Cost implements Kernel: 9 mul-adds + sqrt + div + exp. With the default
// per-arch weights this yields Yukawa/Coulomb cost ratios of ~1.8 (CPU) and
// ~1.5 (GPU), matching the ratios observed in the paper's Figure 4.
func (k Yukawa) Cost(arch Arch) float64 {
	c := costs(arch)
	return 9 + c.sqrt + c.div + c.exp
}

// Gaussian is the kernel G(x,y) = exp(-|x-y|^2 / sigma^2), smooth everywhere
// (no singularity at x = y). It appears in kernel summation for density
// estimation and RBF interpolation.
type Gaussian struct {
	Sigma float64
}

// Name implements Kernel.
func (g Gaussian) Name() string { return "gaussian" }

// Eval implements Kernel.
func (g Gaussian) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	return math.Exp(-r2 / (g.Sigma * g.Sigma))
}

// Cost implements Kernel.
func (g Gaussian) Cost(arch Arch) float64 {
	c := costs(arch)
	return 8 + c.div + c.exp
}

// Multiquadric is the RBF kernel G(x,y) = sqrt(|x-y|^2 + c^2), used in
// scattered-data interpolation (Deng & Driscoll treecode).
type Multiquadric struct {
	C float64
}

// Name implements Kernel.
func (m Multiquadric) Name() string { return "multiquadric" }

// Eval implements Kernel.
func (m Multiquadric) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	return math.Sqrt(dx*dx + dy*dy + dz*dz + m.C*m.C)
}

// Cost implements Kernel.
func (m Multiquadric) Cost(arch Arch) float64 {
	c := costs(arch)
	return 8 + c.sqrt
}

// RegularizedCoulomb is G(x,y) = 1/sqrt(|x-y|^2 + eps^2), the Plummer-
// softened Coulomb kernel common in gravitational N-body codes.
type RegularizedCoulomb struct {
	Eps float64
}

// Name implements Kernel.
func (r RegularizedCoulomb) Name() string { return "regularized-coulomb" }

// Eval implements Kernel.
func (r RegularizedCoulomb) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	return 1 / math.Sqrt(dx*dx+dy*dy+dz*dz+r.Eps*r.Eps)
}

// Cost implements Kernel.
func (r RegularizedCoulomb) Cost(arch Arch) float64 {
	c := costs(arch)
	return 9 + c.sqrt + c.div
}

// InversePower is G(x,y) = 1/|x-y|^p for p > 0, a family generalizing the
// Coulomb kernel (p = 1).
type InversePower struct {
	P float64
}

// Name implements Kernel.
func (ip InversePower) Name() string { return fmt.Sprintf("inverse-power-%g", ip.P) }

// Eval implements Kernel. G(x,x) = 0 by convention.
func (ip InversePower) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	dx, dy, dz := tx-sx, ty-sy, tz-sz
	r2 := dx*dx + dy*dy + dz*dz
	if r2 == 0 {
		return 0
	}
	return math.Pow(r2, -ip.P/2)
}

// Cost implements Kernel (pow modeled as exp+log ~ 2x exp weight).
func (ip InversePower) Cost(arch Arch) float64 {
	c := costs(arch)
	return 8 + 2*c.exp
}

// Func adapts a plain function (plus a name and cost) into a Kernel. It is
// the hook for user-defined kernels; see examples/custom-kernel.
type Func struct {
	KernelName string
	F          func(tx, ty, tz, sx, sy, sz float64) float64
	CPUCost    float64 // flop-equivalents per eval on a CPU (default 20)
	GPUCost    float64 // flop-equivalents per eval on a GPU (default 20)
}

// Name implements Kernel.
func (f Func) Name() string { return f.KernelName }

// Eval implements Kernel.
func (f Func) Eval(tx, ty, tz, sx, sy, sz float64) float64 {
	return f.F(tx, ty, tz, sx, sy, sz)
}

// Cost implements Kernel.
func (f Func) Cost(arch Arch) float64 {
	switch {
	case arch == ArchGPU && f.GPUCost > 0:
		return f.GPUCost
	case arch == ArchCPU && f.CPUCost > 0:
		return f.CPUCost
	}
	return 20
}
