package kernel

// The assembly fast paths install themselves into the package-level loop
// variables (coulombBlockHead, coulombTileLoop, ...) from an arch init.
// asmInstall, registered by that init, can re-run or undo the whole
// installation, which gives tests a way to exercise the pure-Go fallback
// loops on machines where init() would otherwise shadow them forever.
var asmInstall func(on bool)

// asmOn tracks the current switch position for SetAsmKernels' return
// value; it starts true because the arch init (when there is one) runs
// with the kernels enabled.
var asmOn = true

// AsmKernelsAvailable reports whether this build and CPU have assembly
// kernel loops to toggle. False on non-amd64 architectures and on x86
// CPUs without AVX, where the pure-Go loops are the only implementation
// and SetAsmKernels is a no-op.
func AsmKernelsAvailable() bool {
	return asmInstall != nil
}

// SetAsmKernels enables (true) or disables (false) every assembly kernel
// loop at once, returning the previous setting so callers can restore
// it. With the kernels disabled, dispatch falls through to the pure-Go
// loops — the reference implementations the assembly is tested against —
// and the accuracy API (TileMaxULP, F32TileMaxULP) reflects the change,
// reporting the Go loops' exactness.
//
// The switch is package-global and not synchronized with running
// evaluations: it is a test and benchmark knob, to be flipped only while
// no solve is in flight. On builds without assembly kernels it does
// nothing and returns true.
func SetAsmKernels(on bool) (prev bool) {
	prev = asmOn
	if asmInstall != nil && on != asmOn {
		asmInstall(on)
		asmOn = on
	}
	return prev
}
