package kernel

import (
	"math/rand"
	"testing"
)

// blockTestKernels lists every built-in kernel with non-trivial parameters.
func blockTestKernels() []Kernel {
	return []Kernel{
		Coulomb{},
		Yukawa{Kappa: 0.7},
		Gaussian{Sigma: 1.3},
		Multiquadric{C: 0.4},
		RegularizedCoulomb{Eps: 0.05},
		InversePower{P: 3},
	}
}

// blockTestSources builds a random source block that includes a source
// coincident with the target, exercising the r2 == 0 branch of the
// singular kernels exactly as self-interactions do in the treecode.
func blockTestSources(rng *rand.Rand, n int, tx, ty, tz float64) (sx, sy, sz, q []float64) {
	sx = make([]float64, n)
	sy = make([]float64, n)
	sz = make([]float64, n)
	q = make([]float64, n)
	for j := range sx {
		sx[j] = rng.Float64()*2 - 1
		sy[j] = rng.Float64()*2 - 1
		sz[j] = rng.Float64()*2 - 1
		q[j] = rng.Float64()*2 - 1
	}
	sx[n/2], sy[n/2], sz[n/2] = tx, ty, tz // self term
	return sx, sy, sz, q
}

// scalarAccum is the reference the BlockKernel contract is defined
// against: per-source interface Eval, accumulated in index order.
func scalarAccum(k Kernel, tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	var phi float64
	for j := range q {
		phi += k.Eval(tx, ty, tz, sx[j], sy[j], sz[j]) * q[j]
	}
	return phi
}

// scalarAccumF32 is the single-precision reference: per-element rounding
// of the float64 storage, float32 accumulation.
func scalarAccumF32(k F32Kernel, tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	var phi float32
	for j := range q {
		phi += k.EvalF32(tx, ty, tz, float32(sx[j]), float32(sy[j]), float32(sz[j])) * float32(q[j])
	}
	return phi
}

// TestBlockKernelBitIdentical verifies the BlockKernel contract for every
// built-in kernel: the specialized block loop, the generic adapter around
// the same kernel (forced through kernel.Func so AsBlock cannot return the
// specialization), and the scalar reference loop all produce the same
// bits.
func TestBlockKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range blockTestKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			bk := AsBlock(k)
			if _, ok := k.(BlockKernel); !ok {
				t.Fatalf("built-in kernel %s does not implement BlockKernel", k.Name())
			}
			adapter := AsBlock(Func{KernelName: k.Name() + "-func", F: k.Eval})
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.Intn(200)
				tx, ty, tz := rng.Float64(), rng.Float64(), rng.Float64()
				sx, sy, sz, q := blockTestSources(rng, n, tx, ty, tz)

				want := scalarAccum(k, tx, ty, tz, sx, sy, sz, q)
				if got := bk.EvalBlockAccum(tx, ty, tz, sx, sy, sz, q); got != want {
					t.Fatalf("n=%d: specialized block %v != scalar %v (diff %g)",
						n, got, want, got-want)
				}
				if got := adapter.EvalBlockAccum(tx, ty, tz, sx, sy, sz, q); got != want {
					t.Fatalf("n=%d: adapter block %v != scalar %v", n, got, want)
				}
			}
		})
	}
}

// TestF32BlockKernelBitIdentical is the fp32 analogue for the built-in
// kernels that implement F32Kernel.
func TestF32BlockKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, k := range blockTestKernels() {
		f32, ok := k.(F32Kernel)
		if !ok {
			continue
		}
		t.Run(k.Name(), func(t *testing.T) {
			bk := AsF32Block(f32)
			if _, ok := f32.(F32BlockKernel); !ok {
				t.Fatalf("built-in F32 kernel %s does not implement F32BlockKernel", k.Name())
			}
			adapter := f32BlockAdapter{f32}
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.Intn(200)
				tx, ty, tz := float32(rng.Float64()), float32(rng.Float64()), float32(rng.Float64())
				sx, sy, sz, q := blockTestSources(rng, n, float64(tx), float64(ty), float64(tz))

				want := scalarAccumF32(f32, tx, ty, tz, sx, sy, sz, q)
				if got := bk.EvalBlockAccumF32(tx, ty, tz, sx, sy, sz, q); got != want {
					t.Fatalf("n=%d: specialized fp32 block %v != scalar %v", n, got, want)
				}
				if got := adapter.EvalBlockAccumF32(tx, ty, tz, sx, sy, sz, q); got != want {
					t.Fatalf("n=%d: fp32 adapter %v != scalar %v", n, got, want)
				}
			}
		})
	}
}

// TestAsBlockResolution pins the dispatch rules: built-ins resolve to
// themselves, foreign kernels to the generic adapter, and resolving an
// adapter's result again is a no-op.
func TestAsBlockResolution(t *testing.T) {
	for _, k := range blockTestKernels() {
		if bk := AsBlock(k); bk != k {
			t.Errorf("AsBlock(%s) wrapped a kernel that already implements BlockKernel", k.Name())
		}
	}
	f := Func{KernelName: "custom", F: Coulomb{}.Eval}
	bk := AsBlock(f)
	if _, ok := bk.(blockAdapter); !ok {
		t.Errorf("AsBlock(Func) = %T, want blockAdapter", bk)
	}
	if again, ok := AsBlock(bk).(blockAdapter); !ok {
		t.Errorf("AsBlock(AsBlock(k)) lost the adapter")
	} else if _, double := again.Kernel.(blockAdapter); double {
		t.Errorf("AsBlock(AsBlock(k)) double-wrapped the adapter")
	}
	// The adapter must preserve the wrapped kernel's metadata.
	if bk.Name() != "custom" {
		t.Errorf("adapter name = %q, want custom", bk.Name())
	}
}

// TestBlockKernelEmpty verifies the degenerate empty block sums to zero.
func TestBlockKernelEmpty(t *testing.T) {
	for _, k := range blockTestKernels() {
		if got := AsBlock(k).EvalBlockAccum(0.1, 0.2, 0.3, nil, nil, nil, nil); got != 0 {
			t.Errorf("%s: empty block = %v, want 0", k.Name(), got)
		}
	}
}
