package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// tileTestSizes covers every residue mod TileWidth at small and moderate
// block lengths, so the specialized loops, the AVX tile (which handles any
// n), and the adapters all see ragged sizes.
var tileTestSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 31, 32, 33, 34, 63, 64, 65, 66, 127, 128, 129, 130}

// tileTestTargets builds a random 4-target tile.
func tileTestTargets(rng *rand.Rand) (tx, ty, tz [TileWidth]float64) {
	for t := 0; t < TileWidth; t++ {
		tx[t] = rng.Float64()*2 - 1
		ty[t] = rng.Float64()*2 - 1
		tz[t] = rng.Float64()*2 - 1
	}
	return
}

// TestTileKernelBitIdentical verifies the TileKernel contract for every
// built-in kernel at tile-ragged sizes: the specialized tile loop, the
// generic adapter around the same kernel (forced through kernel.Func so
// AsTile cannot return the specialization), the per-target block path, and
// the scalar reference all produce the same bits — including the single
// phi[t] += add into a preloaded, nonzero phi tile.
func TestTileKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, k := range blockTestKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			tk := AsTile(k)
			if _, ok := k.(TileKernel); !ok {
				t.Fatalf("built-in kernel %s does not implement TileKernel", k.Name())
			}
			adapter := AsTile(Func{KernelName: k.Name() + "-func", F: k.Eval})
			bk := AsBlock(k)
			for _, n := range tileTestSizes {
				tx, ty, tz := tileTestTargets(rng)
				// The self term sits on target 1, so one lane exercises
				// the r2 == 0 branch while the others stay regular.
				sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])

				var phi0 [TileWidth]float64
				for t := range phi0 {
					phi0[t] = rng.Float64()*2 - 1
				}
				want := phi0
				for t := 0; t < TileWidth; t++ {
					want[t] += bk.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				scalar := phi0
				for t := 0; t < TileWidth; t++ {
					scalar[t] += scalarAccum(k, tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				if want != scalar {
					t.Fatalf("n=%d: block reference %v != scalar reference %v", n, want, scalar)
				}

				got := phi0
				tk.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
				if got != want {
					t.Fatalf("n=%d: specialized tile %v != per-target block %v", n, got, want)
				}
				got = phi0
				adapter.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
				if got != want {
					t.Fatalf("n=%d: adapter tile %v != per-target block %v", n, got, want)
				}
			}
		})
	}
}

// TestF32TileKernelBitIdentical is the fp32 analogue for the built-in
// kernels that implement F32Kernel.
func TestF32TileKernelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, k := range blockTestKernels() {
		f32, ok := k.(F32Kernel)
		if !ok {
			continue
		}
		t.Run(k.Name(), func(t *testing.T) {
			tk := AsF32Tile(f32)
			if _, ok := f32.(F32TileKernel); !ok {
				t.Fatalf("built-in F32 kernel %s does not implement F32TileKernel", k.Name())
			}
			adapter := f32TileAdapter{f32BlockAdapter{f32}}
			bk := AsF32Block(f32)
			for _, n := range tileTestSizes {
				var tx, ty, tz [TileWidth]float32
				for t := 0; t < TileWidth; t++ {
					tx[t] = float32(rng.Float64()*2 - 1)
					ty[t] = float32(rng.Float64()*2 - 1)
					tz[t] = float32(rng.Float64()*2 - 1)
				}
				sx, sy, sz, q := blockTestSources(rng, n, float64(tx[1]), float64(ty[1]), float64(tz[1]))

				var phi0 [TileWidth]float32
				for t := range phi0 {
					phi0[t] = float32(rng.Float64()*2 - 1)
				}
				want := phi0
				for t := 0; t < TileWidth; t++ {
					want[t] += bk.EvalBlockAccumF32(tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				scalar := phi0
				for t := 0; t < TileWidth; t++ {
					scalar[t] += scalarAccumF32(f32, tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				if want != scalar {
					t.Fatalf("n=%d: fp32 block reference %v != scalar reference %v", n, want, scalar)
				}

				got := phi0
				tk.EvalTileAccumF32(&tx, &ty, &tz, sx, sy, sz, q, &got)
				if got != want {
					t.Fatalf("n=%d: specialized fp32 tile %v != per-target block %v", n, got, want)
				}
				got = phi0
				adapter.EvalTileAccumF32(&tx, &ty, &tz, sx, sy, sz, q, &got)
				if got != want {
					t.Fatalf("n=%d: fp32 adapter tile %v != per-target block %v", n, got, want)
				}
			}
		})
	}
}

// TestAsTileResolution pins the dispatch rules: built-ins resolve to
// themselves, foreign kernels to the generic adapter over their block
// path, and resolving an adapter's result again is a no-op.
func TestAsTileResolution(t *testing.T) {
	for _, k := range blockTestKernels() {
		if tk := AsTile(k); tk != k {
			t.Errorf("AsTile(%s) wrapped a kernel that already implements TileKernel", k.Name())
		}
	}
	f := Func{KernelName: "custom", F: Coulomb{}.Eval}
	tk := AsTile(f)
	ad, ok := tk.(tileAdapter)
	if !ok {
		t.Fatalf("AsTile(Func) = %T, want tileAdapter", tk)
	}
	if _, ok := ad.BlockKernel.(blockAdapter); !ok {
		t.Errorf("AsTile(Func) wraps %T, want the blockAdapter fallback", ad.BlockKernel)
	}
	if again, ok := AsTile(tk).(tileAdapter); !ok {
		t.Errorf("AsTile(AsTile(k)) lost the adapter")
	} else if _, double := again.BlockKernel.(tileAdapter); double {
		t.Errorf("AsTile(AsTile(k)) double-wrapped the adapter")
	}
	if tk.Name() != "custom" {
		t.Errorf("adapter name = %q, want custom", tk.Name())
	}
}

// TestTileKernelEmpty verifies the degenerate empty block leaves the
// accumulated values unchanged (phi[t] += 0 at most).
func TestTileKernelEmpty(t *testing.T) {
	tx := [TileWidth]float64{0.1, 0.2, 0.3, 0.4}
	for _, k := range blockTestKernels() {
		phi := [TileWidth]float64{1, 2, 3, 4}
		AsTile(k).EvalTileAccum(&tx, &tx, &tx, nil, nil, nil, nil, &phi)
		if phi != [TileWidth]float64{1, 2, 3, 4} {
			t.Errorf("%s: empty block changed phi to %v", k.Name(), phi)
		}
	}
}

// TestCoulombTileExtremeMagnitudes sweeps coordinate scales across the
// full binary exponent range, so s = sqrt(r2) runs from the bottom of its
// domain (r2 subnormal) to +Inf overflow. This is the empirical pin for
// the AVX-512 tile's Newton–Raphson reciprocal being correctly rounded —
// hence bit-identical to the scalar 1/math.Sqrt — at every magnitude, and
// for the masked s == +Inf lanes matching the scalar 1/Inf = +0.
func TestCoulombTileExtremeMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tk := AsTile(Coulomb{})
	bk := AsBlock(Coulomb{})
	trials := 40
	if testing.Short() {
		trials = 4
	}
	for scale := -538.0; scale <= 520; scale += 1 {
		mag := math.Ldexp(1, int(scale))
		for trial := 0; trial < trials; trial++ {
			n := 1 + rng.Intn(9)
			var tx, ty, tz [TileWidth]float64
			for i := range tx {
				tx[i] = (rng.Float64()*2 - 1) * mag
				ty[i] = (rng.Float64()*2 - 1) * mag
				tz[i] = (rng.Float64()*2 - 1) * mag
			}
			sx := make([]float64, n)
			sy := make([]float64, n)
			sz := make([]float64, n)
			q := make([]float64, n)
			for j := range sx {
				sx[j] = (rng.Float64()*2 - 1) * mag
				sy[j] = (rng.Float64()*2 - 1) * mag
				sz[j] = (rng.Float64()*2 - 1) * mag
				q[j] = rng.Float64()*2 - 1
			}
			sx[n/2], sy[n/2], sz[n/2] = tx[0], ty[0], tz[0] // self term

			var want, got [TileWidth]float64
			for i := 0; i < TileWidth; i++ {
				want[i] = bk.EvalBlockAccum(tx[i], ty[i], tz[i], sx, sy, sz, q)
			}
			tk.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
			if got != want {
				t.Fatalf("scale 2^%g n=%d: tile %v != block %v", scale, n, got, want)
			}
		}
	}
}

// FuzzTileAccum cross-checks the specialized tile loops (including the
// AVX Coulomb tile on capable hardware) against the per-target scalar
// reference on randomized blocks for every built-in kernel, fp64 and fp32.
func FuzzTileAccum(f *testing.F) {
	f.Add(int64(1), uint(4))
	f.Add(int64(2), uint(7))
	f.Add(int64(3), uint(129))
	f.Fuzz(func(t *testing.T, seed int64, size uint) {
		n := int(size%256) + 1
		rng := rand.New(rand.NewSource(seed))
		tx, ty, tz := tileTestTargets(rng)
		sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
		var phi0 [TileWidth]float64
		for i := range phi0 {
			phi0[i] = rng.Float64()*2 - 1
		}
		for _, k := range blockTestKernels() {
			want := phi0
			for i := 0; i < TileWidth; i++ {
				want[i] += scalarAccum(k, tx[i], ty[i], tz[i], sx, sy, sz, q)
			}
			got := phi0
			AsTile(k).EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
			if got != want {
				t.Fatalf("%s n=%d: tile %v != scalar %v", k.Name(), n, got, want)
			}
			if f32, ok := k.(F32Kernel); ok {
				var ftx, fty, ftz [TileWidth]float32
				for i := 0; i < TileWidth; i++ {
					ftx[i], fty[i], ftz[i] = float32(tx[i]), float32(ty[i]), float32(tz[i])
				}
				var fwant, fgot [TileWidth]float32
				for i := range fwant {
					fwant[i] = float32(phi0[i])
				}
				fgot = fwant
				for i := 0; i < TileWidth; i++ {
					fwant[i] += scalarAccumF32(f32, ftx[i], fty[i], ftz[i], sx, sy, sz, q)
				}
				AsF32Tile(f32).EvalTileAccumF32(&ftx, &fty, &ftz, sx, sy, sz, q, &fgot)
				if fgot != fwant {
					t.Fatalf("%s n=%d: fp32 tile %v != scalar %v", k.Name(), n, fgot, fwant)
				}
			}
		}
	})
}

// BenchmarkEvalTile compares one tile call against four single-target
// block calls over the same 2000-source Coulomb block — the amortization
// the tile path exists to provide.
func BenchmarkEvalTile(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	tx, ty, tz := tileTestTargets(rng)
	sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
	b.Run("coulomb/block-x4", func(b *testing.B) {
		bk := AsBlock(Coulomb{})
		var phi [TileWidth]float64
		b.SetBytes(4 * n * 8)
		for i := 0; i < b.N; i++ {
			for t := 0; t < TileWidth; t++ {
				phi[t] += bk.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
			}
		}
	})
	b.Run("coulomb/tile", func(b *testing.B) {
		tk := AsTile(Coulomb{})
		var phi [TileWidth]float64
		b.SetBytes(4 * n * 8)
		for i := 0; i < b.N; i++ {
			tk.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &phi)
		}
	})
}
