package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// tileTestSizes covers every residue mod TileWidth and mod F32TileWidth at
// small and moderate block lengths, so the specialized loops, the AVX
// tiles (which handle any n), and the adapters all see ragged sizes.
var tileTestSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 31, 32, 33, 34, 63, 64, 65, 66, 127, 128, 129, 130}

// tileTestTargets builds a random 4-target tile.
func tileTestTargets(rng *rand.Rand) (tx, ty, tz [TileWidth]float64) {
	for t := 0; t < TileWidth; t++ {
		tx[t] = rng.Float64()*2 - 1
		ty[t] = rng.Float64()*2 - 1
		tz[t] = rng.Float64()*2 - 1
	}
	return
}

// ulpDiff64 measures the distance between a and b in units in the last
// place, using the ordered-integer representation of the fp64 line (so the
// distance is exact across exponent boundaries and through zero). Two NaNs
// count as equal.
func ulpDiff64(a, b float64) uint64 {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return 0
	}
	ia, ib := orderedBits64(a), orderedBits64(b)
	if ia > ib {
		return uint64(ia - ib)
	}
	return uint64(ib - ia)
}

func orderedBits64(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

// ulpDiff32 is ulpDiff64 on the float32 line.
func ulpDiff32(a, b float32) uint32 {
	if a == b || (a != a && b != b) {
		return 0
	}
	ia, ib := orderedBits32(a), orderedBits32(b)
	if ia > ib {
		return uint32(ia - ib)
	}
	return uint32(ib - ia)
}

func orderedBits32(f float32) int32 {
	b := int32(math.Float32bits(f))
	if b < 0 {
		b = math.MinInt32 - b
	}
	return b
}

// tileAccumTol converts a per-pairwise-term ULP bound into an absolute
// tolerance for an accumulated n-term block: each term may be off by
// maxULP ulps of itself, each of the n adds may round differently by half
// an ulp of the running sum, and every involved ulp is at most one ulp of
// the block's sum of absolute terms. An exact kernel (maxULP = 0) gets
// tolerance 0, i.e. the `==` contract.
func tileAccumTol(maxULP, n int, absSum float64) float64 {
	if maxULP == 0 {
		return 0
	}
	return float64(maxULP+1) * float64(n) * ulpOf64(absSum)
}

func ulpOf64(x float64) float64 {
	x = math.Abs(x)
	return math.Nextafter(x, math.Inf(1)) - x
}

func tileAccumTol32(maxULP, n int, absSum float32) float32 {
	if maxULP == 0 {
		return 0
	}
	return float32(maxULP+1) * float32(n) * ulpOf32(absSum)
}

func ulpOf32(x float32) float32 {
	x = float32(math.Abs(float64(x)))
	return math.Nextafter32(x, float32(math.Inf(1))) - x
}

// scalarAccumAbs is scalarAccum over |G*q|: the sum of absolute pairwise
// terms that scales the ULP tolerance for transcendental tiles.
func scalarAccumAbs(k Kernel, tx, ty, tz float64, sx, sy, sz, q []float64) float64 {
	var sum float64
	for j := range q {
		sum += math.Abs(k.Eval(tx, ty, tz, sx[j], sy[j], sz[j]) * q[j])
	}
	return sum
}

func scalarAccumAbsF32(k F32Kernel, tx, ty, tz float32, sx, sy, sz, q []float64) float32 {
	var sum float32
	for j := range q {
		t := k.EvalF32(tx, ty, tz, float32(sx[j]), float32(sy[j]), float32(sz[j])) * float32(q[j])
		sum += float32(math.Abs(float64(t)))
	}
	return sum
}

// checkTilePhi compares an accumulated tile against the reference under
// the kernel's accuracy contract: exact bits when maxULP is 0, otherwise
// within the additive ULP tolerance.
func checkTilePhi(t *testing.T, label string, n, maxULP int, got, want, absSum []float64) {
	t.Helper()
	for i := range got {
		if maxULP == 0 {
			if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("%s n=%d lane %d: got %v (%x) != want %v (%x)",
					label, n, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
			continue
		}
		tol := tileAccumTol(maxULP, n, absSum[i])
		if d := math.Abs(got[i] - want[i]); !(d <= tol) && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s n=%d lane %d: |%v - %v| = %v exceeds %d-ULP tolerance %v",
				label, n, i, got[i], want[i], d, maxULP, tol)
		}
	}
}

func checkTilePhiF32(t *testing.T, label string, n, maxULP int, got, want, absSum []float32) {
	t.Helper()
	for i := range got {
		if maxULP == 0 {
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
				t.Fatalf("%s n=%d lane %d: got %v (%x) != want %v (%x)",
					label, n, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
			}
			continue
		}
		tol := tileAccumTol32(maxULP, n, absSum[i])
		if d := float32(math.Abs(float64(got[i] - want[i]))); !(d <= tol) && !(got[i] != got[i] && want[i] != want[i]) {
			t.Fatalf("%s n=%d lane %d: |%v - %v| = %v exceeds %d-ULP tolerance %v",
				label, n, i, got[i], want[i], d, maxULP, tol)
		}
	}
}

// TestTileKernelBitIdentical verifies the TileKernel accuracy contract for
// every built-in kernel at tile-ragged sizes, twice: once with whatever
// loops init() installed (assembly on capable hardware) and once forced
// through the pure-Go fallbacks via SetAsmKernels(false). Exact kernels
// must match the per-target block path, the generic adapter (forced
// through kernel.Func so AsTile cannot return the specialization), and
// the scalar reference bit-for-bit — including the single phi[t] += add
// into a preloaded, nonzero phi tile. Transcendental tiles (the asm
// Yukawa) are held to their pinned TileMaxULP bound instead; with the
// assembly off, TileMaxULP reports 0 and the same code path re-pins the
// Go loops as exact.
func TestTileKernelBitIdentical(t *testing.T) {
	t.Run("installed", func(t *testing.T) { testTileKernelContract(t, 44) })
	t.Run("pure-go", func(t *testing.T) {
		if !AsmKernelsAvailable() {
			t.Skip("no assembly kernels on this machine; installed == pure-go")
		}
		prev := SetAsmKernels(false)
		defer SetAsmKernels(prev)
		testTileKernelContract(t, 44)
	})
}

func testTileKernelContract(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, k := range blockTestKernels() {
		t.Run(k.Name(), func(t *testing.T) {
			tk := AsTile(k)
			if _, ok := k.(TileKernel); !ok {
				t.Fatalf("built-in kernel %s does not implement TileKernel", k.Name())
			}
			maxULP := TileMaxULP(k)
			adapter := AsTile(Func{KernelName: k.Name() + "-func", F: k.Eval})
			bk := AsBlock(k)
			for _, n := range tileTestSizes {
				tx, ty, tz := tileTestTargets(rng)
				// The self term sits on target 1, so one lane exercises
				// the r2 == 0 branch while the others stay regular.
				sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])

				var phi0 [TileWidth]float64
				for t := range phi0 {
					phi0[t] = rng.Float64()*2 - 1
				}
				want := phi0
				var absSum [TileWidth]float64
				for t := 0; t < TileWidth; t++ {
					want[t] += bk.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
					absSum[t] = scalarAccumAbs(k, tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				scalar := phi0
				for t := 0; t < TileWidth; t++ {
					scalar[t] += scalarAccum(k, tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				if want != scalar {
					t.Fatalf("n=%d: block reference %v != scalar reference %v", n, want, scalar)
				}

				got := phi0
				tk.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
				checkTilePhi(t, "specialized tile", n, maxULP, got[:], want[:], absSum[:])
				got = phi0
				adapter.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
				checkTilePhi(t, "adapter tile", n, 0, got[:], want[:], absSum[:])
			}
		})
	}
}

// TestF32TileKernelBitIdentical is the fp32 analogue for the built-in
// kernels that implement F32Kernel, at the eight-lane F32TileWidth and
// with the same installed/pure-go double pass. Sizes cover every residue
// mod 4 and mod 8 (tileTestSizes), which is the fp32 ragged-tail pin: the
// drivers' width-8 main loop plus epilogues must agree with a straight
// per-target reference at every residue.
func TestF32TileKernelBitIdentical(t *testing.T) {
	t.Run("installed", func(t *testing.T) { testF32TileKernelContract(t, 45) })
	t.Run("pure-go", func(t *testing.T) {
		if !AsmKernelsAvailable() {
			t.Skip("no assembly kernels on this machine; installed == pure-go")
		}
		prev := SetAsmKernels(false)
		defer SetAsmKernels(prev)
		testF32TileKernelContract(t, 45)
	})
}

func testF32TileKernelContract(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, k := range blockTestKernels() {
		f32, ok := k.(F32Kernel)
		if !ok {
			continue
		}
		t.Run(k.Name(), func(t *testing.T) {
			tk := AsF32Tile(f32)
			if _, ok := f32.(F32TileKernel); !ok {
				t.Fatalf("built-in F32 kernel %s does not implement F32TileKernel", k.Name())
			}
			maxULP := F32TileMaxULP(f32)
			adapter := f32TileAdapter{f32BlockAdapter{f32}}
			bk := AsF32Block(f32)
			for _, n := range tileTestSizes {
				var tx, ty, tz [F32TileWidth]float32
				for t := 0; t < F32TileWidth; t++ {
					tx[t] = float32(rng.Float64()*2 - 1)
					ty[t] = float32(rng.Float64()*2 - 1)
					tz[t] = float32(rng.Float64()*2 - 1)
				}
				sx, sy, sz, q := blockTestSources(rng, n, float64(tx[1]), float64(ty[1]), float64(tz[1]))

				var phi0 [F32TileWidth]float32
				for t := range phi0 {
					phi0[t] = float32(rng.Float64()*2 - 1)
				}
				want := phi0
				var absSum [F32TileWidth]float32
				for t := 0; t < F32TileWidth; t++ {
					want[t] += bk.EvalBlockAccumF32(tx[t], ty[t], tz[t], sx, sy, sz, q)
					absSum[t] = scalarAccumAbsF32(f32, tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				scalar := phi0
				for t := 0; t < F32TileWidth; t++ {
					scalar[t] += scalarAccumF32(f32, tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
				if want != scalar {
					t.Fatalf("n=%d: fp32 block reference %v != scalar reference %v", n, want, scalar)
				}

				got := phi0
				tk.EvalTileAccumF32(&tx, &ty, &tz, sx, sy, sz, q, &got)
				checkTilePhiF32(t, "specialized fp32 tile", n, maxULP, got[:], want[:], absSum[:])
				got = phi0
				adapter.EvalTileAccumF32(&tx, &ty, &tz, sx, sy, sz, q, &got)
				checkTilePhiF32(t, "fp32 adapter tile", n, 0, got[:], want[:], absSum[:])
			}
		})
	}
}

// TestCoulombTile8BitIdentical pins the register-blocked 8-wide Coulomb
// tile against the per-target block reference: bit-identity at every
// ragged size, self terms included — regrouping targets into a wider tile
// must not change any target's accumulation chain. Skipped where Tile8
// resolves nil (no assembly); the dispatch rules themselves are pinned
// for all kernels.
func TestCoulombTile8BitIdentical(t *testing.T) {
	for _, k := range blockTestKernels() {
		if _, isCoulomb := k.(Coulomb); !isCoulomb {
			if Tile8(k) != nil {
				t.Fatalf("Tile8(%s) resolved an 8-wide loop; only Coulomb has one", k.Name())
			}
		}
	}
	t8 := Tile8(Coulomb{})
	if t8 == nil {
		t.Skip("no 8-wide Coulomb tile on this machine")
	}
	rng := rand.New(rand.NewSource(47))
	bk := AsBlock(Coulomb{})
	for _, n := range tileTestSizes {
		var tx, ty, tz [Tile8Width]float64
		for i := range tx {
			tx[i] = rng.Float64()*2 - 1
			ty[i] = rng.Float64()*2 - 1
			tz[i] = rng.Float64()*2 - 1
		}
		// Self terms on two lanes, one per 4-lane group.
		sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
		if n > 1 {
			sx[0], sy[0], sz[0] = tx[6], ty[6], tz[6]
		}

		var phi0 [Tile8Width]float64
		for i := range phi0 {
			phi0[i] = rng.Float64()*2 - 1
		}
		want := phi0
		for i := 0; i < Tile8Width; i++ {
			want[i] += bk.EvalBlockAccum(tx[i], ty[i], tz[i], sx, sy, sz, q)
		}
		got := phi0
		t8(&tx, &ty, &tz, sx, sy, sz, q, &got)
		if got != want {
			t.Fatalf("n=%d: tile8 %v != per-target block %v", n, got, want)
		}
	}
}

// TestAsmVsGoTiles pins asm-vs-Go equivalence for every vectorized tile
// on the same inputs, via the SetAsmKernels dispatch override: each block
// is evaluated once with the assembly loops installed and once through
// the pure-Go fallbacks, and the results must agree under the kernel's
// accuracy contract (bit-identical for Coulomb fp64/fp32; within the
// pinned ULP bound for the Yukawa transcendental tiles). Before this
// knob existed the fallback loops were dead code on machines where
// init() installed the assembly.
func TestAsmVsGoTiles(t *testing.T) {
	if !AsmKernelsAvailable() {
		t.Skip("no assembly kernels to compare on this machine")
	}
	rng := rand.New(rand.NewSource(48))
	kernels := []Kernel{Coulomb{}, Yukawa{Kappa: 0.7}, Yukawa{Kappa: 0}}
	for _, n := range tileTestSizes {
		tx, ty, tz := tileTestTargets(rng)
		sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
		var phi0 [TileWidth]float64
		for i := range phi0 {
			phi0[i] = rng.Float64()*2 - 1
		}
		var ftx, fty, ftz [F32TileWidth]float32
		for i := range ftx {
			ftx[i] = float32(rng.Float64()*2 - 1)
			fty[i] = float32(rng.Float64()*2 - 1)
			ftz[i] = float32(rng.Float64()*2 - 1)
		}
		ftx[1], fty[1], ftz[1] = float32(tx[1]), float32(ty[1]), float32(tz[1])
		var fphi0 [F32TileWidth]float32
		for i := range fphi0 {
			fphi0[i] = float32(rng.Float64()*2 - 1)
		}

		var tx8, ty8, tz8, phi80 [Tile8Width]float64
		copy(tx8[:], tx[:])
		copy(ty8[:], ty[:])
		copy(tz8[:], tz[:])
		copy(tx8[4:], tx[:])
		copy(ty8[4:], ty[:])
		copy(tz8[4:], tz[:])
		for i := range phi80 {
			phi80[i] = rng.Float64()*2 - 1
		}

		for _, k := range kernels {
			maxULP := TileMaxULP(k)

			asm := phi0
			AsTile(k).EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &asm)
			asm8 := phi80
			t8 := Tile8(k)
			if t8 != nil {
				t8(&tx8, &ty8, &tz8, sx, sy, sz, q, &asm8)
			}
			fasm := fphi0
			var f32k F32Kernel
			var f32ULP int
			if fk, ok := k.(F32Kernel); ok {
				f32k = fk
				f32ULP = F32TileMaxULP(fk)
				AsF32Tile(fk).EvalTileAccumF32(&ftx, &fty, &ftz, sx, sy, sz, q, &fasm)
			}
			asmBlock := AsBlock(k).EvalBlockAccum(tx[0], ty[0], tz[0], sx, sy, sz, q)

			// Same inputs through the pure-Go loops. The width-8 go
			// reference is the per-target block loop: there is no Go
			// 8-wide tile because regrouping cannot change the chains.
			prev := SetAsmKernels(false)
			goPhi := phi0
			AsTile(k).EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &goPhi)
			go8 := phi80
			bk := AsBlock(k)
			for i := 0; i < Tile8Width; i++ {
				go8[i] += bk.EvalBlockAccum(tx8[i], ty8[i], tz8[i], sx, sy, sz, q)
			}
			fgo := fphi0
			if f32k != nil {
				AsF32Tile(f32k).EvalTileAccumF32(&ftx, &fty, &ftz, sx, sy, sz, q, &fgo)
			}
			goBlock := bk.EvalBlockAccum(tx[0], ty[0], tz[0], sx, sy, sz, q)
			if Tile8(k) != nil {
				t.Errorf("%s: Tile8 still resolves with asm kernels disabled", k.Name())
			}
			SetAsmKernels(prev)

			var absSum [TileWidth]float64
			for i := 0; i < TileWidth; i++ {
				absSum[i] = scalarAccumAbs(k, tx[i], ty[i], tz[i], sx, sy, sz, q)
			}
			checkTilePhi(t, k.Name()+" asm-vs-go tile", n, maxULP, asm[:], goPhi[:], absSum[:])
			if t8 != nil {
				var absSum8 [Tile8Width]float64
				copy(absSum8[:], absSum[:])
				copy(absSum8[4:], absSum[:])
				checkTilePhi(t, k.Name()+" asm-vs-go tile8", n, maxULP, asm8[:], go8[:], absSum8[:])
			}
			if f32k != nil {
				var fabsSum [F32TileWidth]float32
				for i := range fabsSum {
					fabsSum[i] = scalarAccumAbsF32(f32k, ftx[i], fty[i], ftz[i], sx, sy, sz, q)
				}
				checkTilePhiF32(t, k.Name()+" asm-vs-go fp32 tile", n, f32ULP, fasm[:], fgo[:], fabsSum[:])
			}
			if asmBlock != goBlock {
				t.Fatalf("%s n=%d: asm block head %v != go block loop %v", k.Name(), n, asmBlock, goBlock)
			}
		}
	}
}

// TestAsTileResolution pins the dispatch rules: built-ins resolve to
// themselves, foreign kernels to the generic adapter over their block
// path, and resolving an adapter's result again is a no-op.
func TestAsTileResolution(t *testing.T) {
	for _, k := range blockTestKernels() {
		if tk := AsTile(k); tk != k {
			t.Errorf("AsTile(%s) wrapped a kernel that already implements TileKernel", k.Name())
		}
	}
	f := Func{KernelName: "custom", F: Coulomb{}.Eval}
	tk := AsTile(f)
	ad, ok := tk.(tileAdapter)
	if !ok {
		t.Fatalf("AsTile(Func) = %T, want tileAdapter", tk)
	}
	if _, ok := ad.BlockKernel.(blockAdapter); !ok {
		t.Errorf("AsTile(Func) wraps %T, want the blockAdapter fallback", ad.BlockKernel)
	}
	if again, ok := AsTile(tk).(tileAdapter); !ok {
		t.Errorf("AsTile(AsTile(k)) lost the adapter")
	} else if _, double := again.BlockKernel.(tileAdapter); double {
		t.Errorf("AsTile(AsTile(k)) double-wrapped the adapter")
	}
	if tk.Name() != "custom" {
		t.Errorf("adapter name = %q, want custom", tk.Name())
	}
	if Tile8(f) != nil {
		t.Errorf("Tile8(Func) resolved an 8-wide loop for a foreign kernel")
	}
}

// TestTileKernelEmpty verifies the degenerate empty block leaves the
// accumulated values unchanged (phi[t] += 0 at most).
func TestTileKernelEmpty(t *testing.T) {
	tx := [TileWidth]float64{0.1, 0.2, 0.3, 0.4}
	for _, k := range blockTestKernels() {
		phi := [TileWidth]float64{1, 2, 3, 4}
		AsTile(k).EvalTileAccum(&tx, &tx, &tx, nil, nil, nil, nil, &phi)
		if phi != [TileWidth]float64{1, 2, 3, 4} {
			t.Errorf("%s: empty block changed phi to %v", k.Name(), phi)
		}
	}
}

// TestCoulombTileExtremeMagnitudes sweeps coordinate scales across the
// full binary exponent range, so s = sqrt(r2) runs from the bottom of its
// domain (r2 subnormal) to +Inf overflow. This is the empirical pin for
// the AVX-512 tile's Newton–Raphson reciprocal being correctly rounded —
// hence bit-identical to the scalar 1/math.Sqrt — at every magnitude, and
// for the masked s == +Inf lanes matching the scalar 1/Inf = +0.
func TestCoulombTileExtremeMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	tk := AsTile(Coulomb{})
	bk := AsBlock(Coulomb{})
	t8 := Tile8(Coulomb{})
	trials := 40
	if testing.Short() {
		trials = 4
	}
	for scale := -538.0; scale <= 520; scale += 1 {
		mag := math.Ldexp(1, int(scale))
		for trial := 0; trial < trials; trial++ {
			n := 1 + rng.Intn(9)
			var tx, ty, tz [Tile8Width]float64
			for i := range tx {
				tx[i] = (rng.Float64()*2 - 1) * mag
				ty[i] = (rng.Float64()*2 - 1) * mag
				tz[i] = (rng.Float64()*2 - 1) * mag
			}
			sx := make([]float64, n)
			sy := make([]float64, n)
			sz := make([]float64, n)
			q := make([]float64, n)
			for j := range sx {
				sx[j] = (rng.Float64()*2 - 1) * mag
				sy[j] = (rng.Float64()*2 - 1) * mag
				sz[j] = (rng.Float64()*2 - 1) * mag
				q[j] = rng.Float64()*2 - 1
			}
			sx[n/2], sy[n/2], sz[n/2] = tx[0], ty[0], tz[0] // self term

			var want [Tile8Width]float64
			for i := 0; i < Tile8Width; i++ {
				want[i] = bk.EvalBlockAccum(tx[i], ty[i], tz[i], sx, sy, sz, q)
			}
			var got4 [TileWidth]float64
			tx4 := [TileWidth]float64(tx[:4])
			ty4 := [TileWidth]float64(ty[:4])
			tz4 := [TileWidth]float64(tz[:4])
			tk.EvalTileAccum(&tx4, &ty4, &tz4, sx, sy, sz, q, &got4)
			if got4 != [TileWidth]float64(want[:4]) {
				t.Fatalf("scale 2^%g n=%d: tile %v != block %v", scale, n, got4, want[:4])
			}
			if t8 != nil {
				var got8 [Tile8Width]float64
				t8(&tx, &ty, &tz, sx, sy, sz, q, &got8)
				if got8 != want {
					t.Fatalf("scale 2^%g n=%d: tile8 %v != block %v", scale, n, got8, want)
				}
			}
		}
	}
}

// TestF32TileExtremeMagnitudes is the fp32 magnitude sweep (the fp32 half
// of the extreme-magnitude pin): coordinate scales span the float32
// exponent range past both ends — r2 subnormal in fp32 at the bottom,
// r2 = +Inf overflow at the top, where both paths must produce g = +0.
// Coulomb must stay bit-identical; Yukawa is held to its fp32 ULP bound.
func TestF32TileExtremeMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	kernels := []F32Kernel{Coulomb{}, Yukawa{Kappa: 0.9}}
	trials := 12
	if testing.Short() {
		trials = 2
	}
	for scale := -70.0; scale <= 70; scale += 1 {
		mag := math.Ldexp(1, int(scale))
		for trial := 0; trial < trials; trial++ {
			n := 1 + rng.Intn(9)
			var tx, ty, tz [F32TileWidth]float32
			for i := range tx {
				tx[i] = float32((rng.Float64()*2 - 1) * mag)
				ty[i] = float32((rng.Float64()*2 - 1) * mag)
				tz[i] = float32((rng.Float64()*2 - 1) * mag)
			}
			sx := make([]float64, n)
			sy := make([]float64, n)
			sz := make([]float64, n)
			q := make([]float64, n)
			for j := range sx {
				sx[j] = (rng.Float64()*2 - 1) * mag
				sy[j] = (rng.Float64()*2 - 1) * mag
				sz[j] = (rng.Float64()*2 - 1) * mag
				q[j] = rng.Float64()*2 - 1
			}
			sx[n/2], sy[n/2], sz[n/2] = float64(tx[0]), float64(ty[0]), float64(tz[0])

			for _, k := range kernels {
				maxULP := F32TileMaxULP(k)
				var want, absSum [F32TileWidth]float32
				for i := 0; i < F32TileWidth; i++ {
					want[i] = scalarAccumF32(k, tx[i], ty[i], tz[i], sx, sy, sz, q)
					absSum[i] = scalarAccumAbsF32(k, tx[i], ty[i], tz[i], sx, sy, sz, q)
				}
				var got [F32TileWidth]float32
				AsF32Tile(k).EvalTileAccumF32(&tx, &ty, &tz, sx, sy, sz, q, &got)
				checkTilePhiF32(t, k.Name()+" fp32 tile @2^"+itoa(int(scale)), n, maxULP, got[:], want[:], absSum[:])
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestYukawaTileULPContract is the per-pairwise-term pin for the
// transcendental tiles: over a sweep of kappa and log-spaced distances
// covering the exp argument range from ~-0 down through the underflow
// cutoff, single-source single-term tiles are compared against the scalar
// term in exact ULP distance, which must stay within YukawaTileMaxULP
// (fp64) and YukawaTileF32MaxULP (fp32). This is the measured bound the
// constants document; if the polynomial, the reduction, or the scaling
// ever drift past it, this test fails just as the bit-identity tests fail
// on a flipped bit. Skipped when no vector Yukawa is installed (the Go
// loops ARE the scalar reference).
func TestYukawaTileULPContract(t *testing.T) {
	if yukawaTileLoop == nil && yukawaTileF32Loop == nil {
		t.Skip("no vectorized Yukawa tile on this machine")
	}
	rng := rand.New(rand.NewSource(50))
	kappas := []float64{1e-6, 0.3, 0.7, 2.5, 10, 100, 1500}
	points := 4000
	if testing.Short() {
		points = 400
	}
	q := []float64{1}
	sx, sy, sz := []float64{0}, []float64{0}, []float64{0}
	var maxSeen uint64
	var maxSeen32 uint32
	for _, kappa := range kappas {
		k := Yukawa{Kappa: kappa}
		// Distances such that x = -kappa*r sweeps [-760, -1e-8]: past the
		// underflow cutoff at the bottom (where the clamp and scale
		// rounding must agree with math.Exp's flush to zero / minimum
		// subnormal), to vanishing arguments at the top (exp -> 1).
		lo, hi := 1e-8/kappa, 760/kappa
		step := math.Pow(hi/lo, 1/float64(points-1))
		d := lo
		for i := 0; i < points; i += TileWidth {
			var tx, ty, tz [TileWidth]float64
			for l := 0; l < TileWidth; l++ {
				// Jitter the mantissa so the sweep isn't phase-locked.
				tx[l] = d * (1 + rng.Float64()*1e-3)
				d *= step
			}
			var want, got, absSum [TileWidth]float64
			for l := 0; l < TileWidth; l++ {
				want[l] = scalarAccum(k, tx[l], ty[l], tz[l], sx, sy, sz, q)
				absSum[l] = math.Abs(want[l])
			}
			if yukawaTileLoop != nil {
				k.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
				for l := 0; l < TileWidth; l++ {
					if ud := ulpDiff64(got[l], want[l]); ud > maxSeen {
						maxSeen = ud
						if ud > YukawaTileMaxULP {
							t.Errorf("kappa=%g r=%g: fp64 tile %v vs scalar %v = %d ulps > %d",
								kappa, tx[l], got[l], want[l], ud, YukawaTileMaxULP)
						}
					}
				}
			}
			if yukawaTileF32Loop != nil && kappa*float64(float32(d)) < 100 {
				var ftx, fty, ftz, fwant, fgot [F32TileWidth]float32
				for l := 0; l < F32TileWidth; l++ {
					ftx[l] = float32(tx[l%TileWidth]) * (1 + float32(l/TileWidth)*0.25)
					fwant[l] = scalarAccumF32(k, ftx[l], fty[l], ftz[l], sx, sy, sz, q)
				}
				k.EvalTileAccumF32(&ftx, &fty, &ftz, sx, sy, sz, q, &fgot)
				for l := 0; l < F32TileWidth; l++ {
					if ud := ulpDiff32(fgot[l], fwant[l]); ud > maxSeen32 {
						maxSeen32 = ud
						if ud > YukawaTileF32MaxULP {
							t.Errorf("kappa=%g r=%g: fp32 tile %v vs scalar %v = %d ulps > %d",
								kappa, ftx[l], fgot[l], fwant[l], ud, YukawaTileF32MaxULP)
						}
					}
				}
			}
		}
	}
	t.Logf("max ULP distance seen: fp64 %d (bound %d), fp32 %d (bound %d)",
		maxSeen, YukawaTileMaxULP, maxSeen32, YukawaTileF32MaxULP)
}

// FuzzTileAccum cross-checks the specialized tile loops (including the
// assembly tiles on capable hardware) against the per-target scalar
// reference on randomized blocks for every built-in kernel, fp64 and
// fp32, under each kernel's accuracy contract — exact bits for exact
// kernels, the pinned ULP tolerance for transcendental tiles.
func FuzzTileAccum(f *testing.F) {
	f.Add(int64(1), uint(4))
	f.Add(int64(2), uint(7))
	f.Add(int64(3), uint(129))
	f.Fuzz(func(t *testing.T, seed int64, size uint) {
		n := int(size%256) + 1
		rng := rand.New(rand.NewSource(seed))
		tx, ty, tz := tileTestTargets(rng)
		sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
		var phi0 [TileWidth]float64
		for i := range phi0 {
			phi0[i] = rng.Float64()*2 - 1
		}
		var ftx, fty, ftz [F32TileWidth]float32
		for i := range ftx {
			ftx[i] = float32(rng.Float64()*2 - 1)
			fty[i] = float32(rng.Float64()*2 - 1)
			ftz[i] = float32(rng.Float64()*2 - 1)
		}
		ftx[1], fty[1], ftz[1] = float32(tx[1]), float32(ty[1]), float32(tz[1])
		for _, k := range blockTestKernels() {
			maxULP := TileMaxULP(k)
			want := phi0
			var absSum [TileWidth]float64
			for i := 0; i < TileWidth; i++ {
				want[i] += scalarAccum(k, tx[i], ty[i], tz[i], sx, sy, sz, q)
				absSum[i] = scalarAccumAbs(k, tx[i], ty[i], tz[i], sx, sy, sz, q)
			}
			got := phi0
			AsTile(k).EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &got)
			checkTilePhi(t, k.Name()+" tile", n, maxULP, got[:], want[:], absSum[:])
			if t8 := Tile8(k); t8 != nil {
				var tx8, ty8, tz8, phi8, want8, abs8 [Tile8Width]float64
				for i := range tx8 {
					tx8[i] = rng.Float64()*2 - 1
					ty8[i] = rng.Float64()*2 - 1
					tz8[i] = rng.Float64()*2 - 1
					phi8[i] = rng.Float64()*2 - 1
				}
				tx8[5], ty8[5], tz8[5] = tx[1], ty[1], tz[1] // self term, high group
				want8 = phi8
				for i := 0; i < Tile8Width; i++ {
					want8[i] += scalarAccum(k, tx8[i], ty8[i], tz8[i], sx, sy, sz, q)
					abs8[i] = scalarAccumAbs(k, tx8[i], ty8[i], tz8[i], sx, sy, sz, q)
				}
				got8 := phi8
				t8(&tx8, &ty8, &tz8, sx, sy, sz, q, &got8)
				checkTilePhi(t, k.Name()+" tile8", n, maxULP, got8[:], want8[:], abs8[:])
			}
			if f32, ok := k.(F32Kernel); ok {
				f32ULP := F32TileMaxULP(f32)
				var fwant, fgot, fabsSum [F32TileWidth]float32
				for i := range fwant {
					fwant[i] = float32(phi0[i%TileWidth])
				}
				fgot = fwant
				for i := 0; i < F32TileWidth; i++ {
					fwant[i] += scalarAccumF32(f32, ftx[i], fty[i], ftz[i], sx, sy, sz, q)
					fabsSum[i] = scalarAccumAbsF32(f32, ftx[i], fty[i], ftz[i], sx, sy, sz, q)
				}
				AsF32Tile(f32).EvalTileAccumF32(&ftx, &fty, &ftz, sx, sy, sz, q, &fgot)
				checkTilePhiF32(t, k.Name()+" fp32 tile", n, f32ULP, fgot[:], fwant[:], fabsSum[:])
			}
		}
	})
}

// BenchmarkEvalTile compares tile calls against per-target block calls
// over the same 2000-source block — the amortization the tile path exists
// to provide — for the Coulomb and Yukawa fp64 paths, the 8-wide
// register-blocked Coulomb tile, and the fp32 tiles.
func BenchmarkEvalTile(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	tx, ty, tz := tileTestTargets(rng)
	sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
	var tx8, ty8, tz8 [Tile8Width]float64
	copy(tx8[:], tx[:])
	copy(ty8[:], ty[:])
	copy(tz8[:], tz[:])
	for i := TileWidth; i < Tile8Width; i++ {
		tx8[i] = rng.Float64()*2 - 1
		ty8[i] = rng.Float64()*2 - 1
		tz8[i] = rng.Float64()*2 - 1
	}
	var ftx, fty, ftz [F32TileWidth]float32
	for i := range ftx {
		ftx[i] = float32(tx8[i])
		fty[i] = float32(ty8[i])
		ftz[i] = float32(tz8[i])
	}
	for _, k := range []Kernel{Coulomb{}, Yukawa{Kappa: 0.7}} {
		k := k
		b.Run(k.Name()+"/block-x4", func(b *testing.B) {
			bk := AsBlock(k)
			var phi [TileWidth]float64
			b.SetBytes(4 * n * 8)
			for i := 0; i < b.N; i++ {
				for t := 0; t < TileWidth; t++ {
					phi[t] += bk.EvalBlockAccum(tx[t], ty[t], tz[t], sx, sy, sz, q)
				}
			}
		})
		b.Run(k.Name()+"/tile", func(b *testing.B) {
			tk := AsTile(k)
			var phi [TileWidth]float64
			b.SetBytes(4 * n * 8)
			for i := 0; i < b.N; i++ {
				tk.EvalTileAccum(&tx, &ty, &tz, sx, sy, sz, q, &phi)
			}
		})
		if t8 := Tile8(k); t8 != nil {
			b.Run(k.Name()+"/tile8", func(b *testing.B) {
				var phi [Tile8Width]float64
				b.SetBytes(8 * n * 8)
				for i := 0; i < b.N; i++ {
					t8(&tx8, &ty8, &tz8, sx, sy, sz, q, &phi)
				}
			})
		}
		if f32, ok := k.(F32Kernel); ok {
			b.Run(k.Name()+"/tile-f32", func(b *testing.B) {
				tk := AsF32Tile(f32)
				var phi [F32TileWidth]float32
				b.SetBytes(8 * n * 8)
				for i := 0; i < b.N; i++ {
					tk.EvalTileAccumF32(&ftx, &fty, &ftz, sx, sy, sz, q, &phi)
				}
			})
		}
	}
}
