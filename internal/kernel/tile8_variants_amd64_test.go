//go:build amd64

package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// TestCoulombTile8Variants pins every 8-wide Coulomb tile implementation
// — not just the one init() selected for this machine — against the
// scalar block reference, bit for bit. Dispatch prefers coulombTile8ZMM
// on AVX-512 parts, which would otherwise leave the AVX and
// register-blocked AVX-512VL variants untested there; and the ZMM tile's
// Goldschmidt fast path, divider patch path (r2 below 2^-512 or
// overflowed to +Inf), and their mid-block hand-offs only differ when
// coordinate magnitudes are driven across the exponent range, so the
// sweep here goes well past both ends on every variant.
func TestCoulombTile8Variants(t *testing.T) {
	if !cpuHasAVX() {
		t.Skip("no AVX")
	}
	type variant struct {
		name string
		ok   bool
		f    func(tx, ty, tz *[Tile8Width]float64, sx, sy, sz, q *float64, n int, phi *[Tile8Width]float64)
	}
	avx512 := cpuHasAVX512VL()
	variants := []variant{
		{"avx", true, coulombTile8AVX},
		{"avx512vl", avx512, coulombTile8AVX512},
		{"zmm", avx512, coulombTile8ZMM},
	}
	bk := AsBlock(Coulomb{})
	scales := []float64{0, -300, -500, -510, -520, -538, 300, 500, 511}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if !v.ok {
				t.Skip("variant not supported on this machine")
			}
			rng := rand.New(rand.NewSource(53))
			for _, scale := range scales {
				mag := math.Ldexp(1, int(scale))
				for _, n := range tileTestSizes {
					var tx, ty, tz [Tile8Width]float64
					for i := range tx {
						tx[i] = (rng.Float64()*2 - 1) * mag
						ty[i] = (rng.Float64()*2 - 1) * mag
						tz[i] = (rng.Float64()*2 - 1) * mag
					}
					sx, sy, sz, q := blockTestSources(rng, n, tx[1], ty[1], tz[1])
					if n > 2 {
						// Second self term in the other 4-lane group, at an
						// odd source index so the ZMM tile's B stream sees it.
						sx[1], sy[1], sz[1] = tx[6], ty[6], tz[6]
					}
					var phi0 [Tile8Width]float64
					for i := range phi0 {
						phi0[i] = rng.Float64()*2 - 1
					}
					want := phi0
					for i := 0; i < Tile8Width; i++ {
						want[i] += bk.EvalBlockAccum(tx[i], ty[i], tz[i], sx, sy, sz, q)
					}
					got := phi0
					v.f(&tx, &ty, &tz, &sx[0], &sy[0], &sz[0], &q[0], n, &got)
					if got != want {
						t.Fatalf("scale=2^%g n=%d: %v != scalar %v", scale, n, got, want)
					}
				}
			}
		})
	}
}
