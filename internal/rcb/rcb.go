// Package rcb implements recursive coordinate bisection, the domain
// decomposition the paper performs with the Zoltan library (Section 3.1):
// the domain is recursively cut by hyperplanes perpendicular to coordinate
// axes, each cut balancing the number of particles against the number of
// ranks assigned to each side. Rank counts need not be powers of two — a
// group of 6 ranks first splits 3/3, then each side splits 2/1 with the
// cut placed at the 2/3 particle quantile, reproducing Figure 2(b).
package rcb

import (
	"fmt"
	"sort"

	"barytree/internal/geom"
	"barytree/internal/particle"
)

// Cut records one bisection: the region it divided, the cut dimension and
// coordinate, and how many ranks went to each side.
type Cut struct {
	Region     geom.Box
	Dim        int
	Coord      float64
	LeftRanks  int
	RightRanks int
}

// Decomposition is the result of recursive coordinate bisection.
type Decomposition struct {
	Parts int
	// Owner[i] is the rank assigned particle i (input index).
	Owner []int
	// Region[r] is the box of subdomain r (the domain recursively cut by
	// the hyperplanes).
	Region []geom.Box
	// Count[r] is the number of particles assigned to rank r.
	Count []int
	// Cuts records every bisection in recursion order (root first).
	Cuts []Cut
	// Scans counts particle visits during partitioning, for the
	// performance model.
	Scans int
}

// Partition decomposes the particles of s into parts subdomains over the
// given domain box (pass s.Bounds() or the enclosing physical domain). It
// panics if parts < 1; parts may exceed the particle count, in which case
// some ranks receive zero particles.
func Partition(s *particle.Set, parts int, domain geom.Box) *Decomposition {
	if parts < 1 {
		panic(fmt.Sprintf("rcb: parts must be >= 1, got %d", parts))
	}
	d := &Decomposition{
		Parts:  parts,
		Owner:  make([]int, s.Len()),
		Region: make([]geom.Box, parts),
		Count:  make([]int, parts),
	}
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	d.recurse(s, idx, 0, parts, domain)
	return d
}

// recurse assigns the particles in idx to ranks [rank0, rank0+nranks) over
// the given region.
func (d *Decomposition) recurse(s *particle.Set, idx []int, rank0, nranks int, region geom.Box) {
	if nranks == 1 {
		d.Region[rank0] = region
		d.Count[rank0] = len(idx)
		for _, i := range idx {
			d.Owner[i] = rank0
		}
		return
	}
	left := nranks / 2
	right := nranks - left
	dim := cutDim(region)
	// The cut index balances particles proportionally to rank counts.
	k := len(idx) * left / nranks
	coord := selectKth(s, idx, dim, k)
	d.Scans += len(idx)

	lo, hi := region.Interval(dim)
	if coord < lo {
		coord = lo
	}
	if coord > hi {
		coord = hi
	}
	d.Cuts = append(d.Cuts, Cut{
		Region:     region,
		Dim:        dim,
		Coord:      coord,
		LeftRanks:  left,
		RightRanks: right,
	})
	leftRegion := region
	leftRegion.Hi = region.Hi.WithComponent(dim, coord)
	rightRegion := region
	rightRegion.Lo = region.Lo.WithComponent(dim, coord)

	d.recurse(s, idx[:k], rank0, left, leftRegion)
	d.recurse(s, idx[k:], rank0+left, right, rightRegion)
}

// cutDim picks the dimension to bisect: the longest side of the region,
// breaking ties toward the highest dimension index. For the unit square of
// Figure 2 (z degenerate, x and y tied) this selects y first, then x,
// matching the figure.
func cutDim(region geom.Box) int {
	s := region.Size()
	sides := [3]float64{s.X, s.Y, s.Z}
	dim := 0
	for dm := 1; dm < 3; dm++ {
		if sides[dm] >= sides[dim] {
			dim = dm
		}
	}
	return dim
}

// selectKth reorders idx so that the k particles with the smallest
// coordinate along dim come first, and returns the cut coordinate (the
// smallest coordinate of the right part, i.e. the k-th order statistic).
// k = 0 or k = len(idx) are degenerate and return the region-agnostic
// extremes. Runs in expected O(n) via quickselect with median-of-three
// pivots and a deterministic fallback.
func selectKth(s *particle.Set, idx []int, dim, k int) float64 {
	coord := s.X
	switch dim {
	case 1:
		coord = s.Y
	case 2:
		coord = s.Z
	}
	if len(idx) == 0 {
		return 0
	}
	if k <= 0 {
		min := coord[idx[0]]
		for _, i := range idx {
			if coord[i] < min {
				min = coord[i]
			}
		}
		return min
	}
	if k >= len(idx) {
		max := coord[idx[0]]
		for _, i := range idx {
			if coord[i] > max {
				max = coord[i]
			}
		}
		return max
	}
	lo, hi := 0, len(idx)
	for hi-lo > 32 {
		p := medianOfThree(coord, idx, lo, hi)
		i, j := lo, hi-1
		for i <= j {
			for coord[idx[i]] < p {
				i++
			}
			for coord[idx[j]] > p {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j + 1
		case k >= i:
			lo = i
		default:
			// k landed between j and i: all elements there equal the pivot.
			return coord[idx[k]]
		}
	}
	sub := idx[lo:hi]
	sort.Slice(sub, func(a, b int) bool { return coord[sub[a]] < coord[sub[b]] })
	return coord[idx[k]]
}

// medianOfThree returns the median coordinate of the first, middle and last
// elements of idx[lo:hi].
func medianOfThree(coord []float64, idx []int, lo, hi int) float64 {
	a := coord[idx[lo]]
	b := coord[idx[(lo+hi)/2]]
	c := coord[idx[hi-1]]
	switch {
	case (a <= b && b <= c) || (c <= b && b <= a):
		return b
	case (b <= a && a <= c) || (c <= a && a <= b):
		return a
	}
	return c
}

// Extract returns rank r's particles as a new set together with their
// original indices (so results can be scattered back).
func (d *Decomposition) Extract(s *particle.Set, r int) (*particle.Set, []int) {
	out := particle.NewSet(d.Count[r])
	orig := make([]int, 0, d.Count[r])
	for i := 0; i < s.Len(); i++ {
		if d.Owner[i] == r {
			out.Append(s.X[i], s.Y[i], s.Z[i], s.Q[i])
			orig = append(orig, i)
		}
	}
	return out, orig
}

// Validate checks the decomposition invariants: every particle assigned to
// exactly one in-range rank, counts consistent, regions tile the domain
// (pairwise disjoint interiors and union equal to the domain volume), and
// load balance within the quantile-split guarantee.
func (d *Decomposition) Validate(s *particle.Set, domain geom.Box) error {
	counts := make([]int, d.Parts)
	for i, r := range d.Owner {
		if r < 0 || r >= d.Parts {
			return fmt.Errorf("rcb: particle %d assigned to invalid rank %d", i, r)
		}
		counts[r]++
	}
	for r, c := range counts {
		if c != d.Count[r] {
			return fmt.Errorf("rcb: rank %d count mismatch: recorded %d, actual %d", r, d.Count[r], c)
		}
	}
	var vol float64
	for r, box := range d.Region {
		if !domain.ContainsBox(box) {
			return fmt.Errorf("rcb: rank %d region %v escapes domain %v", r, box, domain)
		}
		vol += box.Volume()
	}
	if dv := domain.Volume(); dv > 0 {
		if rel := (vol - dv) / dv; rel > 1e-9 || rel < -1e-9 {
			return fmt.Errorf("rcb: region volumes sum to %g, domain volume %g", vol, dv)
		}
	}
	// Quantile splits guarantee |count - N/P| < P (each cut rounds once).
	n := s.Len()
	for r, c := range counts {
		ideal := float64(n) / float64(d.Parts)
		if diff := float64(c) - ideal; diff > float64(d.Parts)+1 || diff < -float64(d.Parts)-1 {
			return fmt.Errorf("rcb: rank %d load %d deviates from ideal %.1f by more than P+1", r, c, ideal)
		}
	}
	return nil
}
