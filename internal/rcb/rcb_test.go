package rcb

import (
	"math"
	"math/rand"
	"testing"

	"barytree/internal/geom"
	"barytree/internal/particle"
)

// unitSquare returns n particles uniform in the unit square [0,1]^2 (z=0),
// the Figure 2 workload.
func unitSquare(n int, seed int64) *particle.Set {
	rng := rand.New(rand.NewSource(seed))
	s := particle.NewSet(n)
	for i := 0; i < n; i++ {
		s.Append(rng.Float64(), rng.Float64(), 0, 1)
	}
	return s
}

func unitSquareDomain() geom.Box {
	return geom.Box{Lo: geom.Vec3{X: 0, Y: 0, Z: 0}, Hi: geom.Vec3{X: 1, Y: 1, Z: 0}}
}

func TestFig2aFourPartitions(t *testing.T) {
	// Figure 2(a): the unit square into 4 partitions, first cut in y at
	// ~0.5, each partition owning area ~1/4.
	s := unitSquare(40000, 1)
	domain := unitSquareDomain()
	d := Partition(s, 4, domain)
	if err := d.Validate(s, domain); err != nil {
		t.Fatal(err)
	}
	if len(d.Cuts) != 3 {
		t.Fatalf("got %d cuts, want 3", len(d.Cuts))
	}
	first := d.Cuts[0]
	if first.Dim != 1 {
		t.Errorf("first cut in dim %d, want y (1)", first.Dim)
	}
	if math.Abs(first.Coord-0.5) > 0.02 {
		t.Errorf("first cut at y=%.4f, want ~0.5", first.Coord)
	}
	if first.LeftRanks != 2 || first.RightRanks != 2 {
		t.Errorf("first cut splits ranks %d/%d, want 2/2", first.LeftRanks, first.RightRanks)
	}
	for r := 0; r < 4; r++ {
		// Project to 2D area (z side is zero): use x*y spans.
		sz := d.Region[r].Size()
		area := sz.X * sz.Y
		if math.Abs(area-0.25) > 0.03 {
			t.Errorf("rank %d area %.4f, want ~0.25", r, area)
		}
	}
}

func TestFig2bSixPartitions(t *testing.T) {
	// Figure 2(b): 6 partitions; first bisection in y at 0.5 assigns 3
	// ranks to each half; each partition owns area ~1/6.
	s := unitSquare(60000, 2)
	domain := unitSquareDomain()
	d := Partition(s, 6, domain)
	if err := d.Validate(s, domain); err != nil {
		t.Fatal(err)
	}
	first := d.Cuts[0]
	if first.Dim != 1 {
		t.Errorf("first cut in dim %d, want y (1)", first.Dim)
	}
	if math.Abs(first.Coord-0.5) > 0.02 {
		t.Errorf("first cut at y=%.4f, want ~0.5", first.Coord)
	}
	if first.LeftRanks != 3 || first.RightRanks != 3 {
		t.Errorf("first cut splits ranks %d/%d, want 3/3", first.LeftRanks, first.RightRanks)
	}
	for r := 0; r < 6; r++ {
		sz := d.Region[r].Size()
		area := sz.X * sz.Y
		if math.Abs(area-1.0/6) > 0.03 {
			t.Errorf("rank %d area %.4f, want ~%.4f", r, area, 1.0/6)
		}
	}
}

func TestLoadBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, parts := range []int{1, 2, 3, 5, 7, 8, 16, 32} {
		s := particle.UniformCube(10000, rng)
		d := Partition(s, parts, s.Bounds())
		if err := d.Validate(s, s.Bounds()); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		min, max := s.Len(), 0
		for _, c := range d.Count {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > parts {
			t.Errorf("parts=%d: load imbalance %d-%d", parts, min, max)
		}
	}
}

func TestNonUniformDistributionStillBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := particle.GaussianBlob(20000, 0.3, rng)
	d := Partition(s, 12, s.Bounds())
	if err := d.Validate(s, s.Bounds()); err != nil {
		t.Fatal(err)
	}
	for r, c := range d.Count {
		ideal := float64(s.Len()) / 12
		if math.Abs(float64(c)-ideal) > 13 {
			t.Errorf("rank %d count %d far from ideal %.0f", r, c, ideal)
		}
	}
}

func TestRegionsContainOwnedParticles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := particle.UniformCube(5000, rng)
	d := Partition(s, 6, s.Bounds())
	// Every particle must lie inside (or on the boundary of) its rank's
	// region box.
	const eps = 1e-12
	for i := 0; i < s.Len(); i++ {
		r := d.Owner[i]
		box := d.Region[r]
		p := s.At(i)
		grown := geom.Box{
			Lo: geom.Vec3{X: box.Lo.X - eps, Y: box.Lo.Y - eps, Z: box.Lo.Z - eps},
			Hi: geom.Vec3{X: box.Hi.X + eps, Y: box.Hi.Y + eps, Z: box.Hi.Z + eps},
		}
		if !grown.Contains(p) {
			t.Fatalf("particle %d at %v assigned to rank %d with region %v", i, p, r, box)
		}
	}
}

func TestSinglePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := particle.UniformCube(100, rng)
	d := Partition(s, 1, s.Bounds())
	if d.Count[0] != 100 {
		t.Fatalf("single partition owns %d particles, want 100", d.Count[0])
	}
	if len(d.Cuts) != 0 {
		t.Fatalf("single partition should need no cuts, got %d", len(d.Cuts))
	}
}

func TestMorePartsThanParticles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := particle.UniformCube(3, rng)
	d := Partition(s, 8, s.Bounds())
	total := 0
	for _, c := range d.Count {
		total += c
	}
	if total != 3 {
		t.Fatalf("counts sum to %d, want 3", total)
	}
}

func TestExtractRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := particle.UniformCube(1000, rng)
	d := Partition(s, 4, s.Bounds())
	seen := make([]bool, s.Len())
	for r := 0; r < 4; r++ {
		sub, orig := d.Extract(s, r)
		if sub.Len() != d.Count[r] {
			t.Fatalf("rank %d extract %d particles, recorded %d", r, sub.Len(), d.Count[r])
		}
		for i, o := range orig {
			if seen[o] {
				t.Fatalf("particle %d extracted twice", o)
			}
			seen[o] = true
			if sub.X[i] != s.X[o] || sub.Y[i] != s.Y[o] || sub.Z[i] != s.Z[o] || sub.Q[i] != s.Q[o] {
				t.Fatalf("extracted particle %d differs from original %d", i, o)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("particle %d never extracted", i)
		}
	}
}

func TestSelectKthAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		s := particle.UniformCube(n, rng)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		dim := rng.Intn(3)
		k := rng.Intn(n)
		got := selectKth(s, idx, dim, k)
		coord := s.X
		switch dim {
		case 1:
			coord = s.Y
		case 2:
			coord = s.Z
		}
		sorted := make([]float64, n)
		for i := 0; i < n; i++ {
			sorted[i] = coord[i]
		}
		sortFloat64s(sorted)
		want := sorted[k]
		if k == 0 {
			want = sorted[0]
		}
		if got != want {
			t.Fatalf("trial %d: selectKth(dim=%d,k=%d)=%g, want %g", trial, dim, k, got, want)
		}
		// The partition property: idx[:k] coordinates <= got, idx[k:] >= got.
		for i := 0; i < k; i++ {
			if coord[idx[i]] > got {
				t.Fatalf("trial %d: left element %g above cut %g", trial, coord[idx[i]], got)
			}
		}
		for i := k; i < n; i++ {
			if coord[idx[i]] < got {
				t.Fatalf("trial %d: right element %g below cut %g", trial, coord[idx[i]], got)
			}
		}
	}
}

func sortFloat64s(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
