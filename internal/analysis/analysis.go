// Package analysis is the treecode's project-specific static analysis
// suite: a zero-dependency analyzer framework on the standard library's
// go/parser, go/ast and go/types, plus the analyzers that turn this
// repository's reproducibility conventions into machine-checked invariants.
//
// The simulator's core guarantee — byte-identical results and trace exports
// across runs (see docs/observability.md) — rests on rules that ordinary
// `go vet` does not know about: modeled-time packages must never read the
// wall clock, all randomness must flow from explicitly seeded *rand.Rand
// values, nothing ordered may be emitted straight out of a map iteration,
// and *trace.Tracer receivers must stay nil-safe. Each rule is one
// Analyzer; `cmd/bltcvet` runs them all and exits nonzero on findings, and
// verify.sh invokes it between `go vet` and the build.
//
// Findings can be suppressed with a justification comment on the flagged
// line or the line directly above it:
//
//	//lint:ignore maporder keys are written to a set, order is irrelevant
//
// The directive must name the analyzer (a comma-separated list is
// accepted) and must carry a reason; a bare directive is itself reported.
// See docs/static-analysis.md for each analyzer's contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that raised it, and a
// human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Analyzer is one named check. Run inspects the package held by the Pass
// and reports findings through Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:ignore
	// directives (lower-case, no spaces).
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions back to file coordinates.
	Fset *token.FileSet
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Check runs every analyzer over every package, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by file, line,
// column and analyzer name. Malformed suppression directives (missing
// reason) are reported as findings of the pseudo-analyzer "lint".
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// A directive naming an analyzer that does not exist is a typo that
	// would silently suppress nothing forever; validate names against the
	// analyzers in this run plus the full default suite (so running a
	// single analyzer does not flag directives aimed at the others).
	known := map[string]bool{"lint": true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range DefaultAnalyzers() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := directives(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Fset: pkg.Fset, Pkg: pkg, diags: &raw}
			a.Run(pass)
		}
		for _, d := range raw {
			if !dirs.suppresses(d) {
				diags = append(diags, d)
			}
		}
		diags = append(diags, dirs.malformed...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
}

// directiveSet indexes a package's suppression directives.
type directiveSet struct {
	byLoc     map[string]map[int]*ignoreDirective // file -> line -> directive
	malformed []Diagnostic
}

const ignorePrefix = "//lint:ignore"

// directives parses every //lint:ignore comment in the package. A directive
// suppresses matching diagnostics on its own line (trailing comment) or on
// the line immediately below it (comment above the flagged statement).
// Directives naming an analyzer outside the known set are reported as
// malformed: a misspelled name suppresses nothing, silently, forever.
func directives(pkg *Package, known map[string]bool) directiveSet {
	ds := directiveSet{byLoc: map[string]map[int]*ignoreDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					ds.malformed = append(ds.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				d := &ignoreDirective{file: pos.Filename, line: pos.Line, analyzers: map[string]bool{}}
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						ds.malformed = append(ds.malformed, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  fmt.Sprintf("malformed //lint:ignore directive: unknown analyzer %q", name),
						})
						continue
					}
					d.analyzers[name] = true
				}
				if ds.byLoc[pos.Filename] == nil {
					ds.byLoc[pos.Filename] = map[int]*ignoreDirective{}
				}
				ds.byLoc[pos.Filename][pos.Line] = d
			}
		}
	}
	return ds
}

// suppresses reports whether a directive covers the diagnostic: same file,
// matching analyzer name, on the diagnostic's line or the line above.
func (ds directiveSet) suppresses(d Diagnostic) bool {
	lines := ds.byLoc[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir := lines[l]; dir != nil && dir.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}

// DefaultModeledTimePackages lists the packages whose clocks are modeled,
// never wall-clock: everything under them must derive time from
// perfmodel.Clock (see docs/observability.md, "modeled time").
var DefaultModeledTimePackages = []string{
	"barytree/internal/device",
	"barytree/internal/mpisim",
	"barytree/internal/perfmodel",
	"barytree/internal/trace",
	"barytree/internal/dist",
}

// DefaultAnalyzers returns the full suite with this repository's settings,
// in the order cmd/bltcvet runs them.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		ModeledTime(DefaultModeledTimePackages...),
		DetRand(),
		MapOrder(),
		NilTracer(),
		MutexCopy(),
		GoroutineCapture(),
		HotAlloc(),
		LockCheck(DefaultLockCheckBlockingPackages...),
		GoroLeak(),
		FloatDet(DefaultFloatDetPackages...),
		ErrDrop(DefaultErrDropPackages...),
		RmaLeak(),
	}
}

// exprIdent unwraps an expression to its identifier, looking through
// parentheses. It returns nil if the expression is not an identifier.
func exprIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
