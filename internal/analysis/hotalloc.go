package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotPathDirective marks a function as allocation-free by contract.
const hotPathDirective = "//hot:path"

// HotAlloc returns the analyzer that enforces the repository's hot-path
// allocation contract: a function whose doc comment carries a //hot:path
// directive is an inner loop of the treecode (kernel block evaluation,
// charge passes, MAC tests) and must not allocate. The analyzer flags
// every make and append builtin call inside such a function, including
// inside function literals it defines: either is a per-call heap or
// growth allocation that the benchmarks would report as B/op regressions
// long after the fact. Code that legitimately needs scratch space should
// take it from a caller-owned, reused buffer (see internal/core's
// chargeScratch) and drop the directive from whatever function owns the
// growth.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc: "flag make/append calls inside functions marked //hot:path: hot loops " +
			"must use caller-owned reused scratch, never allocate",
	}
	a.Run = func(pass *Pass) {
		funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
			if !isHotPath(fd) {
				return
			}
			name := fd.Name.Name
			info := pass.Pkg.Info
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id := exprIdent(call.Fun)
				if id == nil {
					return true
				}
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "append":
						pass.Reportf(call.Pos(),
							"%s in //hot:path function %s: hot loops must not allocate, use reused scratch",
							b.Name(), name)
					}
				}
				return true
			})
		})
	}
	return a
}

// isHotPath reports whether the function's doc comment group contains a
// //hot:path directive line. Directive comments are part of the doc group
// in the AST even though go/doc strips them from rendered text.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotPathDirective {
			return true
		}
	}
	return false
}
