package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function and returns its CFG.
// src is the bare statement list.
func parseBody(t *testing.T, src string) *Graph {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body)
}

// reachable returns the set of blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// pathsToExit reports whether Exit is reachable from Entry.
func pathsToExit(g *Graph) bool {
	return reachable(g)[g.Exit]
}

func TestCFGStraightLine(t *testing.T) {
	g := parseBody(t, "x := 1\ny := x + 1\n_ = y")
	if len(g.Entry.Nodes) != 3 {
		t.Errorf("entry block has %d nodes, want 3", len(g.Entry.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("straight-line body should flow entry -> exit, got succs %v", g.Entry.Succs)
	}
}

func TestCFGIfElse(t *testing.T) {
	g := parseBody(t, `
x := 1
if x > 0 {
	x = 2
} else {
	x = 3
}
_ = x`)
	// Entry (cond) must have two successors: then and else.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2 (then, else)", len(g.Entry.Succs))
	}
	// Both branches must rejoin: exactly one block flows to Exit.
	var toExit int
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				toExit++
			}
		}
	}
	if toExit != 1 {
		t.Errorf("if/else should rejoin before exit; %d blocks flow to exit, want 1", toExit)
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := parseBody(t, `
x := 1
if x > 0 {
	x = 2
}
_ = x`)
	// The condition block must flow both into the then-branch and around it.
	if len(g.Entry.Succs) != 2 {
		t.Errorf("if head has %d successors, want 2 (then, after)", len(g.Entry.Succs))
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	g := parseBody(t, `
x := 1
if x > 0 {
	return
}
_ = x`)
	// Two distinct paths must reach Exit: the early return and the fall-off.
	var toExit int
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == g.Exit {
				toExit++
			}
		}
	}
	if toExit != 2 {
		t.Errorf("%d blocks flow to exit, want 2 (early return + fall-off)", toExit)
	}
	// The return's block must not fall through to the statement after the if.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("return block succs = %v, want [exit]", b.Succs)
				}
			}
		}
	}
}

func TestCFGForLoop(t *testing.T) {
	g := parseBody(t, `
s := 0
for i := 0; i < 10; i++ {
	s += i
}
_ = s`)
	// Find the loop head: the block holding the condition with two succs.
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no for.head block")
	}
	if len(head.Succs) != 2 {
		t.Errorf("loop head has %d successors, want 2 (body, after)", len(head.Succs))
	}
	// There must be a back edge: head reachable from its own body.
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(b *Block) bool {
		if b == head {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	found := false
	for _, s := range head.Succs {
		if s.Kind == "for.body" && walk(s) {
			found = true
		}
	}
	if !found {
		t.Error("no back edge from loop body to head")
	}
	if !pathsToExit(g) {
		t.Error("exit unreachable")
	}
}

func TestCFGInfiniteLoopWithBreak(t *testing.T) {
	g := parseBody(t, `
for {
	if true {
		break
	}
}`)
	// Exit must be reachable only through the break.
	if !pathsToExit(g) {
		t.Error("exit unreachable despite break")
	}
	// Without the break, the head must not flow to after directly.
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			for _, s := range b.Succs {
				if s.Kind == "for.after" {
					t.Error("condition-less for must not flow head -> after")
				}
			}
		}
	}
}

func TestCFGRange(t *testing.T) {
	g := parseBody(t, `
m := map[int]int{}
s := 0
for _, v := range m {
	s += v
}
_ = s`)
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no range.head block")
	}
	if len(head.Succs) != 2 {
		t.Errorf("range head has %d successors, want 2 (after, body)", len(head.Succs))
	}
	if len(head.Nodes) != 1 {
		t.Errorf("range head should hold the RangeStmt node, got %d nodes", len(head.Nodes))
	}
	if !pathsToExit(g) {
		t.Error("exit unreachable")
	}
}

func TestCFGSwitch(t *testing.T) {
	g := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
case 2:
	x = 20
}
_ = x`)
	// No default: the head must also flow directly to after.
	var cases, headToAfter int
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			cases++
		}
	}
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.after" {
			headToAfter++
		}
	}
	if cases != 2 {
		t.Errorf("%d case blocks, want 2", cases)
	}
	if headToAfter != 1 {
		t.Errorf("switch without default must flow head -> after (got %d such edges)", headToAfter)
	}
}

func TestCFGSwitchDefaultAndFallthrough(t *testing.T) {
	g := parseBody(t, `
x := 1
switch x {
case 1:
	x = 10
	fallthrough
case 2:
	x = 20
default:
	x = 0
}
_ = x`)
	// With a default, the head must NOT flow directly to after.
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.after" {
			t.Error("switch with default must not flow head -> after")
		}
	}
	// The first case must have an edge to the second (fallthrough).
	var caseBlocks []*Block
	for _, b := range g.Blocks {
		if b.Kind == "switch.case" {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) != 3 {
		t.Fatalf("%d case blocks, want 3", len(caseBlocks))
	}
	ft := false
	for _, s := range caseBlocks[0].Succs {
		if s == caseBlocks[1] {
			ft = true
		}
	}
	if !ft {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestCFGSelect(t *testing.T) {
	g := parseBody(t, `
a := make(chan int)
b := make(chan int)
select {
case v := <-a:
	_ = v
case b <- 1:
}`)
	var comms int
	for _, blk := range g.Blocks {
		if blk.Kind == "select.comm" {
			comms++
			if len(blk.Nodes) == 0 {
				t.Error("select comm block should start with its comm operation")
			}
		}
	}
	if comms != 2 {
		t.Errorf("%d comm blocks, want 2", comms)
	}
	// No default: the head must not bypass the comm clauses.
	for _, s := range g.Entry.Succs {
		if s.Kind == "switch.after" {
			t.Error("select without default must not flow head -> after")
		}
	}
}

func TestCFGDefer(t *testing.T) {
	g := parseBody(t, `
defer println("a")
if true {
	defer println("b")
	return
}
defer func() {
	defer println("inner")
}()`)
	// Three defers belong to this function; the one inside the literal
	// does not.
	if len(g.Defers) != 3 {
		t.Errorf("%d defers recorded, want 3 (literal-internal defer excluded)", len(g.Defers))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	g := parseBody(t, `
x := 1
if x > 0 {
	panic("boom")
}
_ = x`)
	// The panic block must flow to Exit and not fall through.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
					if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
						t.Errorf("panic block succs = %v, want [exit]", b.Succs)
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("panic statement not found in any block")
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	g := parseBody(t, `
outer:
for i := 0; i < 3; i++ {
	for j := 0; j < 3; j++ {
		if j == 1 {
			continue outer
		}
		if j == 2 {
			break outer
		}
	}
}`)
	if !pathsToExit(g) {
		t.Error("exit unreachable")
	}
	// break outer must target the outer loop's after block, which is the
	// only path to exit besides the outer condition.
	r := reachable(g)
	if !r[g.Exit] {
		t.Error("labeled break did not make exit reachable")
	}
}

func TestCFGGoto(t *testing.T) {
	g := parseBody(t, `
i := 0
loop:
if i < 3 {
	i++
	goto loop
}`)
	// The goto must create a back edge to the labeled block.
	var labelBlock *Block
	for _, b := range g.Blocks {
		if b.Kind == "label.loop" {
			labelBlock = b
		}
	}
	if labelBlock == nil {
		t.Fatal("no block for label loop")
	}
	back := false
	for _, b := range g.Blocks {
		if b == labelBlock {
			continue
		}
		for _, s := range b.Succs {
			if s == labelBlock && b.Index > labelBlock.Index {
				back = true
			}
		}
	}
	if !back {
		t.Error("goto back edge to labeled block missing")
	}
	if !pathsToExit(g) {
		t.Error("exit unreachable")
	}
}

func TestCFGNestedFuncLitNotSpliced(t *testing.T) {
	g := parseBody(t, `
f := func() {
	return
}
f()`)
	// The literal's return must not appear in this function's blocks.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				t.Error("nested literal's return leaked into the enclosing CFG")
			}
		}
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("body should be straight-line, got succs %v", g.Entry.Succs)
	}
}

// TestForwardReachingFlag exercises the dataflow driver with a trivial
// "flag set on some path" may-analysis over an if/else diamond and a loop.
func TestForwardReachingFlag(t *testing.T) {
	g := parseBody(t, `
x := 0
if x > 0 {
	x++ // the "event"
}
_ = x`)
	// State: did the event (an IncDecStmt) happen on some path?
	prob := FlowProblem[bool]{
		Init:  false,
		Copy:  func(s bool) bool { return s },
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(b *Block, s bool) bool {
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.IncDecStmt); ok {
					s = true
				}
			}
			return s
		},
	}
	res := Forward(g, prob)
	if !res.In[g.Exit] {
		t.Error("may-analysis: event on one branch should reach exit as true")
	}
	// And a must-analysis (join = &&) over the same graph: the event is
	// not on every path, so exit must be false.
	prob.Join = func(a, b bool) bool { return a && b }
	res = Forward(g, prob)
	if res.In[g.Exit] {
		t.Error("must-analysis: event missing on else path should reach exit as false")
	}
}

// TestForwardLoopFixpoint verifies the driver reaches a fixpoint over a
// loop back edge (the loop body's effect must propagate around the cycle).
func TestForwardLoopFixpoint(t *testing.T) {
	g := parseBody(t, `
x := 0
for i := 0; i < 3; i++ {
	x += 2
}
_ = x`)
	// The event is the compound assignment in the loop body; the i++ in
	// the post clause must not count, so match ADD_ASSIGN specifically.
	prob := FlowProblem[bool]{
		Init:  false,
		Copy:  func(s bool) bool { return s },
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
		Transfer: func(b *Block, s bool) bool {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ADD_ASSIGN {
					s = true
				}
			}
			return s
		},
	}
	res := Forward(g, prob)
	if !res.In[g.Exit] {
		t.Error("loop body's event should reach exit through the back edge")
	}
}
