package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak returns the analyzer that demands a join point for every
// spawned goroutine. A goroutine with no join outlives its spawner
// silently — under the serving stack's admission control that is a slow
// leak, and in the compute phases it breaks the byte-identity argument
// (results must not depend on whether a straggler finished).
//
// A `go func(){...}()` statement is accepted when the analyzer can tie the
// goroutine back to its spawner:
//
//   - WaitGroup pairing: the body calls wg.Done (usually deferred) on a
//     WaitGroup the spawning function Waits on. The Wait must be reached
//     on every path from the spawn to the function's exit; wg.Add must
//     happen on the spawning side, never inside the goroutine (calling
//     Add inside races with Wait).
//   - Channel pairing: the body sends on (or closes) a channel the
//     spawner receives from, or receives from a channel the spawner
//     sends on or closes. For an unbuffered channel the matching
//     operation must be reached on every path from the spawn to exit —
//     a receiver that can return early strands the sender forever. A
//     send on a locally-created buffered channel never blocks, which is
//     itself the join-free idiom (error channels of capacity 1).
//   - Escape: a WaitGroup or channel that outlives the function
//     (parameter, field, captured by another literal, passed to a call,
//     returned) is assumed joined by its owner.
//
// `go f(...)` calls on named functions are accepted when a channel, a
// WaitGroup or any sync-carrying value flows in (receiver or argument);
// a spawn with no synchronization anywhere in sight is reported.
func GoroLeak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc: "every spawned goroutine needs a join point: WaitGroup.Done/Wait pairing, " +
			"a channel the spawner drains, or a primitive that escapes to an owner",
	}
	a.Run = func(pass *Pass) {
		funcBodies(pass.Pkg, func(name string, decl *ast.FuncDecl, node ast.Node, body *ast.BlockStmt) {
			goroLeakFunc(pass, body)
		})
	}
	return a
}

func goroLeakFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Find the go statements and their blocks/positions in the CFG.
	var spawns []struct {
		b   *Block
		idx int
		gs  *ast.GoStmt
	}
	var g *Graph
	walkShallow(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok && g == nil {
			g = NewCFG(body)
		}
		return true
	})
	if g == nil {
		return
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if gs, ok := n.(*ast.GoStmt); ok {
				spawns = append(spawns, struct {
					b   *Block
					idx int
					gs  *ast.GoStmt
				}{b, i, gs})
			}
		}
	}

	for _, sp := range spawns {
		checkSpawn(pass, info, g, body, sp.b, sp.idx, sp.gs)
	}
}

func checkSpawn(pass *Pass, info *types.Info, g *Graph, body *ast.BlockStmt, b *Block, idx int, gs *ast.GoStmt) {
	fl, isLit := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !isLit {
		// Named function or method: accept if any synchronization can
		// reach it — the receiver or an argument is (or contains) a
		// channel, WaitGroup, mutex or function value.
		if sel, ok := ast.Unparen(gs.Call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := info.Types[sel.X]; ok && carriesSync(tv.Type) {
				return
			}
		}
		for _, arg := range gs.Call.Args {
			if tv, ok := info.Types[arg]; ok && carriesSync(tv.Type) {
				return
			}
		}
		pass.Reportf(gs.Pos(),
			"goroutine has no join point: nothing synchronizes %s with its spawner",
			callName(gs.Call))
		return
	}

	// Map the literal's parameters to the spawn-site arguments, so a
	// channel passed in (go func(ch chan int){...}(c)) is analyzed as the
	// outer channel object.
	paramArg := map[types.Object]ast.Expr{}
	if fl.Type.Params != nil {
		ai := 0
		for _, f := range fl.Type.Params.List {
			for _, pname := range f.Names {
				if ai < len(gs.Call.Args) {
					if obj := info.Defs[pname]; obj != nil {
						paramArg[obj] = gs.Call.Args[ai]
					}
				}
				ai++
			}
		}
	}

	// Scan the goroutine body for join-relevant operations on objects
	// from outside the literal (or parameters bound to outer arguments).
	type chanUse struct {
		obj        types.Object
		sends      bool
		recvs      bool
		closes     bool
		expr       ast.Expr // representative expression (for messages)
		viaLiteral bool
	}
	var wgDone, wgAddInside []types.Object
	chans := map[types.Object]*chanUse{}
	anySyncRef := false

	resolve := func(e ast.Expr) (types.Object, ast.Expr) {
		obj := useOf(info, e)
		if obj == nil {
			return nil, e
		}
		if outer, ok := paramArg[obj]; ok {
			if oo := useOf(info, outer); oo != nil {
				return oo, outer
			}
			return nil, outer
		}
		return obj, e
	}
	chanUseOf := func(e ast.Expr) *chanUse {
		obj, expr := resolve(e)
		if obj == nil {
			return nil
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			return nil
		}
		cu := chans[obj]
		if cu == nil {
			cu = &chanUse{obj: obj, expr: expr}
			chans[obj] = cu
		}
		return cu
	}

	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if cu := chanUseOf(x.Chan); cu != nil {
				cu.sends = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if cu := chanUseOf(x.X); cu != nil {
					cu.recvs = true
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[x.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					if cu := chanUseOf(x.X); cu != nil {
						cu.recvs = true
					}
				}
			}
		case *ast.CallExpr:
			if id := exprIdent(x.Fun); id != nil && id.Name == "close" && len(x.Args) == 1 {
				if cu := chanUseOf(x.Args[0]); cu != nil {
					cu.closes = true
				}
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if tv, ok := info.Types[sel.X]; ok && isNamedType(tv.Type, "sync", "WaitGroup") {
					obj, _ := resolve(sel.X)
					switch sel.Sel.Name {
					case "Done":
						if obj != nil {
							wgDone = append(wgDone, obj)
						}
					case "Add":
						if obj != nil {
							wgAddInside = append(wgAddInside, obj)
						}
					}
				}
			}
		case *ast.Ident:
			// Only variables of concretely synchronizing types count as a
			// join hint: a reference to a plain function or interface value
			// says nothing about the goroutine's lifetime.
			if obj, ok := info.Uses[x].(*types.Var); ok && carriesSyncStrict(obj.Type()) {
				anySyncRef = true
			}
		}
		return true
	})

	// Add inside the goroutine races with the spawner's Wait.
	for _, obj := range wgAddInside {
		pass.Reportf(gs.Pos(),
			"goroutine calls %s.Add: Add must happen on the spawning side before the Wait, never inside the goroutine",
			obj.Name())
	}

	// WaitGroup join: Done in the body, Wait on every path after the spawn.
	for _, obj := range wgDone {
		if !objLocalTo(info, body, obj) {
			continue // the owner joins it
		}
		if escapes(info, body, obj, fl) {
			continue
		}
		isWait := func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return false
			}
			o, _ := resolve(sel.X)
			return o == obj
		}
		if !joinOnAllPaths(g, b, idx, isWait) {
			pass.Reportf(gs.Pos(),
				"goroutine signals %s.Done but %s.Wait is not reached on every path to return: the goroutine can outlive its spawner",
				obj.Name(), obj.Name())
		}
	}

	// Channel joins. A WaitGroup join already bounds the goroutine's
	// lifetime, so its channel traffic is off the hook.
	wgJoined := len(wgDone) > 0 && allJoined(info, body, g, b, idx, wgDone, resolve)
	for _, cu := range chans {
		if wgJoined {
			break
		}
		if !cu.sends && !cu.recvs {
			continue // only closes the channel: close never blocks
		}
		if !objLocalTo(info, body, cu.obj) || escapes(info, body, cu.obj, fl) {
			continue // owned elsewhere
		}
		if cu.sends && !cu.recvs && chanBuffered(info, body, cu.obj) {
			continue // non-blocking send: the error-channel idiom
		}
		// The spawner's matching operation, required on every path.
		matches := func(n ast.Node) bool {
			return spawnerMatches(info, n, cu.obj, cu.sends, cu.recvs)
		}
		if deferredJoin(info, g, matches) || joinOnAllPaths(g, b, idx, matches) {
			continue
		}
		what := "receive from"
		if cu.recvs && !cu.sends {
			what = "send on or close"
		}
		pass.Reportf(gs.Pos(),
			"goroutine blocks on channel %s but the spawner does not %s it on every path to return",
			cu.obj.Name(), what)
	}

	if len(wgDone) == 0 && len(chans) == 0 && !anySyncRef {
		pass.Reportf(gs.Pos(),
			"goroutine has no join point: no WaitGroup, channel or other synchronization ties it to its spawner")
	}
}

// allJoined reports whether every WaitGroup the goroutine signals is
// waited on along all paths (used to let a wg-joined goroutine's channel
// traffic off the hook: the Wait already bounds its lifetime).
func allJoined(info *types.Info, body *ast.BlockStmt, g *Graph, b *Block, idx int,
	wgs []types.Object, resolve func(ast.Expr) (types.Object, ast.Expr)) bool {
	for _, obj := range wgs {
		if !objLocalTo(info, body, obj) || escapes(info, body, obj, nil) {
			continue
		}
		isWait := func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Wait" {
				return false
			}
			o, _ := resolve(sel.X)
			return o == obj
		}
		if !joinOnAllPaths(g, b, idx, isWait) {
			return false
		}
	}
	return true
}

// spawnerMatches reports whether node n performs the spawner-side join for
// a channel: a receive (when the goroutine sends) or a send/close (when
// the goroutine receives). Passing the channel to a call also counts — the
// callee owns the join then.
func spawnerMatches(info *types.Info, n ast.Node, ch types.Object, goroutineSends, goroutineRecvs bool) bool {
	switch x := n.(type) {
	case *ast.UnaryExpr:
		if goroutineSends && x.Op == token.ARROW && useOf(info, x.X) == ch {
			return true
		}
	case *ast.RangeStmt:
		if goroutineSends && useOf(info, x.X) == ch {
			return true
		}
	case *ast.SendStmt:
		if goroutineRecvs && useOf(info, x.Chan) == ch {
			return true
		}
	case *ast.CallExpr:
		if id := exprIdent(x.Fun); id != nil && id.Name == "close" && len(x.Args) == 1 {
			if goroutineRecvs && useOf(info, x.Args[0]) == ch {
				return true
			}
		}
		for _, arg := range x.Args {
			if useOf(info, arg) == ch {
				return true // handed to a callee; it owns the join
			}
		}
	}
	return false
}

// deferredJoin reports whether a deferred call performs the join (e.g.
// defer close(done), defer wg.Wait() in a literal).
func deferredJoin(info *types.Info, g *Graph, matches func(ast.Node) bool) bool {
	found := false
	for _, d := range g.Defers {
		walkShallow(d.Call, func(n ast.Node) bool {
			if matches(n) {
				found = true
			}
			return !found
		})
		if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			walkShallow(fl.Body, func(n ast.Node) bool {
				if matches(n) {
					found = true
				}
				return !found
			})
		}
	}
	return found
}

// joinOnAllPaths reports whether every path from the node at (b, idx) to
// the graph's Exit passes through a node satisfying isJoin. A cycle that
// never reaches Exit trivially satisfies the property (greatest fixpoint:
// in-progress blocks count as joined).
func joinOnAllPaths(g *Graph, b *Block, idx int, isJoin func(ast.Node) bool) bool {
	nodeJoins := func(n ast.Node) bool {
		found := false
		walkCFGNode(n, func(c ast.Node) bool {
			if isJoin(c) {
				found = true
			}
			return !found
		})
		return found
	}

	// 0 = unvisited, 1 = in progress (assume joined), 2 = joined, 3 = not.
	state := make([]byte, len(g.Blocks))
	var blockJoins func(blk *Block) bool
	blockJoins = func(blk *Block) bool {
		if blk == g.Exit {
			return false
		}
		switch state[blk.Index] {
		case 1, 2:
			return true
		case 3:
			return false
		}
		state[blk.Index] = 1
		ok := func() bool {
			for _, n := range blk.Nodes {
				if nodeJoins(n) {
					return true
				}
			}
			if len(blk.Succs) == 0 {
				return true // dead end (unreachable tail): vacuously joined
			}
			for _, s := range blk.Succs {
				if !blockJoins(s) {
					return false
				}
			}
			return true
		}()
		if ok {
			state[blk.Index] = 2
		} else {
			state[blk.Index] = 3
		}
		return ok
	}

	// Rest of the spawn block after the go statement.
	for _, n := range b.Nodes[idx+1:] {
		if nodeJoins(n) {
			return true
		}
	}
	if len(b.Succs) == 0 {
		return true
	}
	for _, s := range b.Succs {
		if !blockJoins(s) {
			return false
		}
	}
	return true
}

// objLocalTo reports whether obj is declared inside the function body
// (as opposed to a parameter, receiver, field or outer-scope variable).
func objLocalTo(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	return obj.Pos() >= body.Pos() && obj.Pos() < body.End()
}

// escapes reports whether obj leaks out of the function other than via the
// goroutine literal under analysis: returned, captured by a different
// function literal, passed as a call argument, has its address taken, or
// assigned to a field/element of something non-local. An escaping
// primitive has an owner elsewhere that is assumed to join.
func escapes(info *types.Info, body *ast.BlockStmt, obj types.Object, exclude *ast.FuncLit) bool {
	found := false
	var inExcluded func(n ast.Node) bool
	inExcluded = func(n ast.Node) bool {
		return exclude != nil && n.Pos() >= exclude.Pos() && n.End() <= exclude.End()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if x == exclude {
				return true
			}
			if refersTo(info, x.Body, obj) {
				found = true
			}
			return false
		case *ast.ReturnStmt:
			// Returning the primitive itself is an escape; returning a value
			// received from it (`return <-ch`) is a join, not an escape.
			for _, r := range x.Results {
				if useOf(info, r) == obj {
					found = true
				}
			}
		case *ast.CallExpr:
			if inExcluded(x) {
				return true
			}
			if id := exprIdent(x.Fun); id != nil {
				switch id.Name {
				case "close", "len", "cap", "make":
					return true // not an escape
				}
			}
			for _, arg := range x.Args {
				if useOf(info, arg) == obj {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// &wg passed around: the address-of makes it shareable. The
			// receive operator is not an escape.
			if x.Op == token.AND && refersTo(info, x.X, obj) && !inExcluded(x) {
				found = true
			}
		case *ast.AssignStmt:
			if inExcluded(x) {
				return true
			}
			for _, lhs := range x.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr:
					_ = l
					for _, rhs := range x.Rhs {
						if refersTo(info, rhs, obj) {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// carriesSync reports whether a value of type t can carry synchronization:
// it is (or contains, through structs and pointers) a channel, a
// WaitGroup, a mutex, a Cond, a context, or a function value. Used for
// named-call spawns, where any such value flowing in is assumed to tie the
// goroutine to an owner.
func carriesSync(t types.Type) bool { return syncWalk(t, false) }

// carriesSyncStrict is the narrow form used when scanning a goroutine body
// for join hints: only concretely synchronizing types count — a plain
// function or interface value says nothing about lifetime.
func carriesSyncStrict(t types.Type) bool { return syncWalk(t, true) }

func syncWalk(t types.Type, strict bool) bool {
	seen := map[types.Type]bool{}
	var walk func(types.Type, int) bool
	walk = func(t types.Type, depth int) bool {
		if t == nil || depth > 4 || seen[t] {
			return false
		}
		seen[t] = true
		for _, nm := range []string{"Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map"} {
			if isNamedType(t, "sync", nm) {
				return true
			}
		}
		if isNamedType(t, "context", "Context") {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Chan:
			return true
		case *types.Signature, *types.Interface:
			return !strict
		case *types.Pointer:
			return walk(u.Elem(), depth+1)
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type(), depth+1) {
					return true
				}
			}
		case *types.Slice:
			return walk(u.Elem(), depth+1)
		}
		return false
	}
	return walk(t, 0)
}

// callName renders the spawned call for messages.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id := exprIdent(fun.X); id != nil {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the function"
}

// chanBuffered reports whether the channel object's local definition is a
// buffered make: `ch := make(chan T, n)` with a constant capacity >= 1. A
// buffered channel absorbs the goroutine's single send without a waiting
// receiver — the error-channel idiom.
func chanBuffered(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	buffered := false
	ast.Inspect(body, func(n ast.Node) bool {
		if buffered {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isID := ast.Unparen(lhs).(*ast.Ident)
			if !isID || info.Defs[id] != obj {
				continue
			}
			if i >= len(as.Rhs) {
				continue
			}
			call, isCall := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !isCall || len(call.Args) < 2 {
				continue
			}
			if fid := exprIdent(call.Fun); fid == nil || fid.Name != "make" {
				continue
			}
			if tv, okT := info.Types[call.Args[1]]; okT && tv.Value != nil {
				buffered = true
			}
		}
		return !buffered
	})
	return buffered
}
