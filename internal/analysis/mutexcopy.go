package analysis

import (
	"go/ast"
	"go/types"
)

// syncLockTypes are the sync types that must never be copied after first
// use (each embeds state or a noCopy marker).
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Map":       true,
	"Pool":      true,
}

// MutexCopy returns the analyzer that flags locks passed or copied by
// value: function parameters and value receivers whose type contains a sync
// lock, and `range` value variables that copy a lock per iteration. The
// stock go vet copylocks check catches assignments; this is the stricter
// project rule that the *signatures* of the mpisim/device layers never
// traffic in lock values at all — a copied barrier or window mutex
// deadlocks rank goroutines in ways that only reproduce under load.
func MutexCopy() *Analyzer {
	a := &Analyzer{
		Name: "mutexcopy",
		Doc: "flag sync.Mutex (and friends) passed by value in parameters, receivers, " +
			"results, or copied by range value variables",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
			check := func(kind string, fields *ast.FieldList) {
				if fields == nil {
					return
				}
				for _, field := range fields.List {
					tv, ok := info.Types[field.Type]
					if !ok || !containsLock(tv.Type, nil) {
						continue
					}
					pass.Reportf(field.Pos(), "%s of %s copies a lock (%s); use a pointer",
						kind, fd.Name.Name, tv.Type)
				}
			}
			check("receiver", fd.Recv)
			check("parameter", fd.Type.Params)
			check("result", fd.Type.Results)

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || rs.Value == nil {
					return true
				}
				var vt types.Type
				if id := exprIdent(rs.Value); id != nil {
					if id.Name == "_" {
						return true
					}
					// A `:=` range value is a definition, recorded in Defs
					// rather than Types.
					if obj := info.Defs[id]; obj != nil {
						vt = obj.Type()
					}
				}
				if vt == nil {
					tv, ok := info.Types[rs.Value]
					if !ok {
						return true
					}
					vt = tv.Type
				}
				if !containsLock(vt, nil) {
					return true
				}
				pass.Reportf(rs.Value.Pos(),
					"range value copies a lock (%s) each iteration; range over indices or pointers", vt)
				return true
			})
		})
	}
	return a
}

// containsLock reports whether t holds a sync lock by value, looking
// through named types, struct fields and arrays. seen guards recursive
// types.
func containsLock(t types.Type, seen map[*types.Named]bool) bool {
	switch x := t.(type) {
	case *types.Named:
		obj := x.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		if seen[x] {
			return false
		}
		if seen == nil {
			seen = map[*types.Named]bool{}
		}
		seen[x] = true
		return containsLock(x.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if containsLock(x.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(x.Elem(), seen)
	}
	return false
}
