package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DefaultFloatDetPackages lists the compute packages where floating-point
// reduction order is part of the correctness contract (the repository's
// byte-identity guarantee: serial and parallel runs must agree bit for
// bit). Within them — and inside any //hot:path function anywhere —
// FloatDet polices the two ways an accumulation silently becomes
// order-dependent.
var DefaultFloatDetPackages = []string{
	"barytree/internal/kernel",
	"barytree/internal/core",
	"barytree/internal/direct",
	"barytree/internal/chebyshev",
	"barytree/internal/interaction",
	"barytree/internal/tree",
	"barytree/internal/let",
	"barytree/internal/variants",
	"barytree/internal/sweep",
}

// FloatDet returns the analyzer enforcing deterministic floating-point
// reduction in the compute packages. Two patterns are reported:
//
//   - A float compound assignment (+=, -=, *=, /=) whose target is
//     declared outside a worker function literal — a goroutine body or a
//     closure handed to the worker pool — is a shared accumulator: the
//     interleaving of workers decides the summation order. Accumulate
//     into a per-worker slot (partial[w] += ...) and merge in a fixed
//     order instead.
//   - A float compound assignment inside a range-over-map body folds
//     values in Go's randomized map order. Collect the keys, sort them,
//     and reduce in sorted order.
//
// Indexed targets (partial[w] += x) are exempt from the shared-accumulator
// rule: indexing is exactly how the per-worker idiom looks, and disjoint
// slots have a fixed merge order downstream.
func FloatDet(pkgs ...string) *Analyzer {
	if pkgs == nil {
		pkgs = DefaultFloatDetPackages
	}
	gated := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		gated[p] = true
	}
	a := &Analyzer{
		Name: "floatdet",
		Doc: "float accumulation in compute packages must be order-deterministic: no shared " +
			"+= across worker goroutines, no reduction in map-iteration order",
	}
	a.Run = func(pass *Pass) {
		pkgGated := gated[pass.Pkg.Path]
		funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
			if !pkgGated && !isHotPath(fd) {
				return
			}
			floatDetFunc(pass, fd)
		})
	}
	return a
}

func floatDetFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Workers: function literals whose body runs concurrently — `go
	// func(){...}` bodies, and literals passed to the worker pool
	// (internal/pool) or to anything named like a parallel-for.
	workers := map[*ast.FuncLit]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				workers[fl] = true
			}
		case *ast.CallExpr:
			if isWorkerPoolCall(info, x) {
				for _, arg := range x.Args {
					if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						workers[fl] = true
					}
				}
			}
		}
		return true
	})

	// Map-range bodies: ranges whose operand is a map.
	type mapRange struct{ body *ast.BlockStmt }
	var mapRanges []mapRange
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if tv, okT := info.Types[rs.X]; okT {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mapRanges = append(mapRanges, mapRange{rs.Body})
				}
			}
		}
		return true
	})
	within := func(n ast.Node, body *ast.BlockStmt) bool {
		return n.Pos() >= body.Pos() && n.End() <= body.End()
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := ast.Unparen(as.Lhs[0])
		tv, okT := info.Types[lhs]
		if !okT || !isFloat(tv.Type) {
			return true
		}

		// Rule 2: reduction in map-iteration order. Applies regardless of
		// the target's shape — even an indexed slot folds values in random
		// order when the loop itself is over a map.
		for _, mr := range mapRanges {
			if within(as, mr.body) && !insideAnyFuncLit(fd.Body, as, nil) {
				pass.Reportf(as.Pos(),
					"float accumulation inside range over map folds in randomized map order; collect and sort the keys, then reduce")
				return true
			}
		}

		// Rule 1: shared accumulator across workers. Only plain
		// ident/selector targets count; an indexed slot is the sanctioned
		// per-worker layout.
		fl := enclosingWorker(fd.Body, as, workers)
		if fl == nil {
			return true
		}
		if hasIndex(lhs) {
			return true
		}
		root := rootObject(info, lhs)
		if root == nil || root.Pos() == token.NoPos {
			return true
		}
		if root.Pos() >= fl.Pos() && root.Pos() < fl.End() {
			return true // worker-local accumulator, merged elsewhere
		}
		pass.Reportf(as.Pos(),
			"float accumulator %s is shared across worker goroutines: summation order depends on scheduling; accumulate per worker and merge in fixed order",
			exprString(lhs))
		return true
	})
}

// isWorkerPoolCall reports whether the call dispatches work to the
// repository's worker pool (internal/pool Blocks/For and friends) or any
// callee whose name marks it a parallel-for.
func isWorkerPoolCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "/pool") {
		return true
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Parallel") || name == "Blocks" || name == "For"
}

// enclosingWorker returns the innermost worker literal containing n, or nil.
func enclosingWorker(body *ast.BlockStmt, n ast.Node, workers map[*ast.FuncLit]bool) *ast.FuncLit {
	var best *ast.FuncLit
	for fl := range workers {
		if n.Pos() >= fl.Pos() && n.End() <= fl.End() {
			if best == nil || fl.Pos() > best.Pos() {
				best = fl
			}
		}
	}
	return best
}

// insideAnyFuncLit reports whether n sits inside a function literal within
// body other than allow. A nested literal's accumulation is that closure's
// business (it may run once, later, elsewhere); rule 2 only polices code
// that executes in the ranging goroutine itself.
func insideAnyFuncLit(body *ast.BlockStmt, n ast.Node, allow *ast.FuncLit) bool {
	inside := false
	ast.Inspect(body, func(c ast.Node) bool {
		if inside {
			return false
		}
		fl, ok := c.(*ast.FuncLit)
		if !ok || fl == allow {
			return true
		}
		if n.Pos() >= fl.Pos() && n.End() <= fl.End() {
			inside = true
		}
		return !inside
	})
	return inside
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func hasIndex(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return false
		}
	}
}

// rootObject resolves the base object of an ident/selector chain
// (s.acc → s, *p → p), or nil for anything more exotic.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a simple ident/selector chain for messages.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprString(x.X)
	}
	return "accumulator"
}
