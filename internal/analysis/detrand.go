package analysis

import (
	"go/ast"
)

// randConstructors are the math/rand (and math/rand/v2) package functions
// that build explicitly seeded generators; everything else at package level
// draws from or mutates the shared global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true, // takes an explicit *Rand
	// math/rand/v2 source constructors, should the module migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// DetRand returns the analyzer that forbids the global math/rand source in
// non-test code. Every random draw must flow from an explicitly seeded
// generator — rand.New(rand.NewSource(seed)) — threaded to where it is
// used, so particle distributions, sampled error estimates and sweep
// configurations are reproducible from the seed alone. Calls like
// rand.Intn or rand.Shuffle use the package-global source, whose stream
// depends on every other global draw in the process (and, seeded by
// default, on nothing the run records).
func DetRand() *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc: "forbid global math/rand functions in non-test code; thread an explicitly " +
			"seeded *rand.Rand (rand.New(rand.NewSource(seed))) instead",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgFunc(pass.Pkg.Info, sel)
				if fn == nil {
					return true
				}
				if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
					return true
				}
				if randConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the global math/rand source; thread an explicitly seeded *rand.Rand through instead",
					fn.Name())
				return true
			})
		}
	}
	return a
}
