package analysis

// Forward dataflow over a Graph: a small worklist fixpoint driver that the
// flow-sensitive analyzers (lockcheck today) share. The framing is
// conventional: a state S per block boundary, a join at control-flow
// merges, a transfer function flowing one block, iteration to a fixed
// point. The lattice is supplied by the analyzer; the driver only promises
// to call Transfer with a private copy of the joined input, so transfer
// functions may mutate their argument freely.

// FlowProblem describes one forward dataflow problem.
type FlowProblem[S any] struct {
	// Init is the state at function entry.
	Init S
	// Copy returns an independent copy of a state.
	Copy func(S) S
	// Join merges two states at a control-flow merge point. It may mutate
	// and return its first argument.
	Join func(S, S) S
	// Equal reports whether two states are equal (fixpoint test).
	Equal func(S, S) bool
	// Transfer flows one block: given the state at block entry it returns
	// the state at block exit. It may mutate and return its argument.
	Transfer func(*Block, S) S
}

// FlowResult is the fixpoint of a forward problem: the state at each
// block's entry and exit.
type FlowResult[S any] struct {
	In, Out map[*Block]S
}

// Forward runs the problem to its fixpoint and returns the per-block
// boundary states. Blocks unreachable from Entry keep their zero state in
// the maps (they are never joined into reachable states). Termination is
// the analyzer's lattice obligation: Join must be monotone with finite
// ascending chains, which every analyzer here satisfies (finite key sets
// with three-point per-key lattices).
func Forward[S any](g *Graph, p FlowProblem[S]) FlowResult[S] {
	res := FlowResult[S]{In: make(map[*Block]S, len(g.Blocks)), Out: make(map[*Block]S, len(g.Blocks))}
	preds := g.Preds()

	// Worklist seeded in block order (entry first ≈ reverse postorder for
	// the structured CFGs NewCFG builds).
	inList := make([]bool, len(g.Blocks))
	list := make([]*Block, 0, len(g.Blocks))
	push := func(b *Block) {
		if !inList[b.Index] {
			inList[b.Index] = true
			list = append(list, b)
		}
	}
	seen := make([]bool, len(g.Blocks))
	push(g.Entry)
	for len(list) > 0 {
		b := list[0]
		list = list[1:]
		inList[b.Index] = false

		in := p.Copy(p.Init)
		first := true
		if b == g.Entry {
			first = false
		}
		for _, pb := range preds[b] {
			if !seen[pb.Index] {
				continue
			}
			if first {
				in = p.Copy(res.Out[pb])
				first = false
			} else {
				in = p.Join(in, res.Out[pb])
			}
		}
		out := p.Transfer(b, p.Copy(in))
		if seen[b.Index] && p.Equal(res.Out[b], out) {
			res.In[b] = in
			continue
		}
		seen[b.Index] = true
		res.In[b], res.Out[b] = in, out
		for _, s := range b.Succs {
			push(s)
		}
	}
	return res
}
