// Package clean holds error-handling idioms errdrop must not flag
// (configured as a serving package in the test).
package clean

import (
	"fmt"
	"io"
	"strconv"
)

// handled propagates with context.
func handled(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parse %q: %w", s, err)
	}
	return n, nil
}

// blankNonError blanks the count, keeps the error.
func blankNonError(r io.Reader, buf []byte) error {
	_, err := r.Read(buf)
	return err
}

// bareCall is established idiom for writers whose errors carry nothing.
func banner(w io.Writer) {
	fmt.Fprintln(w, "ready")
}

// assertOK blanks the ok of a type assertion, not an error.
func assertOK(x interface{}) int {
	v, _ := x.(int)
	return v
}
