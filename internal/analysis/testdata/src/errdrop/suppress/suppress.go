// Package suppress carries one justified errdrop suppression: a
// best-effort operation whose failure has no consumer.
package suppress

import "errors"

func flush() error { return errors.New("flush") }

// bestEffort flushes on shutdown; there is nowhere left to report to.
func bestEffort() {
	//lint:ignore errdrop best-effort flush during shutdown; no caller to report to
	_ = flush()
}
