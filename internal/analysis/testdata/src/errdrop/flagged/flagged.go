// Package flagged holds blank-identifier error discards (configured as a
// serving package in the test).
package flagged

import (
	"errors"
	"strconv"
)

func flush() error                   { return errors.New("flush") }
func write(b []byte) (int, error)    { return len(b), nil }
func lookup(k string) (string, bool) { return k, true }

// drops assigns a lone error to blank.
func drops() {
	_ = flush() // want "error result of flush discarded with blank identifier"
}

// tupleDrop blanks the error component of a two-result call.
func tupleDrop(s string) int {
	n, _ := strconv.Atoi(s) // want "error result of strconv.Atoi discarded with blank identifier"
	return n
}

// writeDrop does the same with a local function.
func writeDrop(b []byte) int {
	n, _ := write(b) // want "error result of write discarded with blank identifier"
	return n
}

// pairwise discards an already-captured error.
func pairwise() {
	err := flush()
	_ = err // want "error result of expression discarded with blank identifier"
}

// boolOK blanks a bool, which is fine — the analyzer only polices errors.
func boolOK(k string) string {
	v, _ := lookup(k)
	return v
}
