// Package flagged exercises the maporder analyzer: ordered output produced
// directly from randomized map iteration.
package flagged

import (
	"fmt"
	"io"
	"strings"

	"barytree/internal/trace"
)

// Keys collects map keys with no sort afterwards: callers see a different
// order every run.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append inside range over map without a deterministic sort"
	}
	return out
}

// Dump writes rows straight out of the map iteration.
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "fmt.Fprintf inside range over map"
	}
}

// Build concatenates in map order.
func Build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString inside range over map"
	}
	return b.String()
}

// EmitAll records spans in map order, so the trace's insertion order (and
// any export that is not re-sorted) differs between runs.
func EmitAll(t *trace.Tracer, m map[string]float64) {
	for name, end := range m {
		t.Span(name, trace.CatComm, 0, trace.TrackNet, 0, end) // want "trace span emitted inside range over map"
	}
}
