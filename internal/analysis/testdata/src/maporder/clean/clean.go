// Package clean exercises the maporder analyzer: the sanctioned
// collect-then-sort and sorted-keys idioms.
package clean

import (
	"fmt"
	"io"
	"sort"
)

// Keys collects then sorts — the standard idiom, allowed.
func Keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump iterates a sorted key slice, not the map.
func Dump(w io.Writer, m map[string]int) {
	for _, k := range Keys(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Total only folds commutatively over the map; no ordered output.
func Total(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}
