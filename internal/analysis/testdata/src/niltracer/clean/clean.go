// Package trace exercises the niltracer analyzer's clean side: guarded
// field access, guard-or-return shapes, and the always-allowed method
// calls. (The analyzer keys on a type named Tracer in a package named
// trace, so fixtures mirror that shape.)
package trace

// Tracer mirrors the real tracer: nil must mean "tracing disabled".
type Tracer struct {
	spans []string
}

// Record guards before touching fields — the convention.
func (t *Tracer) Record(name string) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, name)
}

// Len uses the positive-guard shape.
func (t *Tracer) Len() int {
	if t != nil {
		return len(t.spans)
	}
	return 0
}

// Enabled only compares the receiver, which is always safe.
func (t *Tracer) Enabled() bool { return t != nil }

// Forward calls methods on a possibly-nil tracer: methods are nil-safe by
// convention, so no guard is needed.
func Forward(t *Tracer, names []string) {
	for _, n := range names {
		t.Record(n)
	}
}

// lowercase is unexported, so the exported-surface rule does not apply.
func lowercase(t *Tracer) []string {
	return t.spans
}
