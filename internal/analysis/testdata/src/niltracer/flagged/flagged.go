// Package trace exercises the niltracer analyzer: a Tracer-shaped type
// whose exported entry points touch fields without the nil guard that the
// real tracer's no-op convention requires. (The analyzer keys on a type
// named Tracer in a package named trace, so fixtures mirror that shape.)
package trace

// Tracer mirrors the real tracer: nil must mean "tracing disabled".
type Tracer struct {
	spans []string
}

// Record appends without guarding the receiver: a nil tracer panics.
func (t *Tracer) Record(name string) {
	t.spans = append(t.spans, name) // want "Record uses tracer t .* without a preceding nil check"
}

// LateGuard checks nil only after the field access.
func (t *Tracer) LateGuard(name string) {
	t.spans = append(t.spans, name) // want "LateGuard uses tracer t .* without a preceding nil check"
	if t == nil {
		return
	}
}

// Dump reads a field of a parameter tracer without a guard.
func Dump(t *Tracer) []string {
	return t.spans // want "Dump uses tracer t .* without a preceding nil check"
}

// Clone dereferences a parameter tracer without a guard.
func Clone(t *Tracer) Tracer {
	return *t // want "Clone uses tracer t .* without a preceding nil check"
}
