// Package clean exercises the modeledtime analyzer: duration arithmetic
// and formatting are allowed in modeled-time packages, only wall-clock
// reads are not.
package clean

import "time"

// Tick is pure duration arithmetic, no clock involved.
const Tick = 10 * time.Millisecond

// Seconds converts a duration without touching any clock.
func Seconds(d time.Duration) float64 {
	return d.Seconds()
}

// Format renders a modeled duration.
func Format(modeledSeconds float64) string {
	return time.Duration(modeledSeconds * float64(time.Second)).String()
}
