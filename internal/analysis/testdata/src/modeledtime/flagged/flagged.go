// Package flagged exercises the modeledtime analyzer: wall-clock reads in
// a package configured as modeled-time.
package flagged

import "time"

// Stamp reads the wall clock.
func Stamp() float64 {
	return float64(time.Now().UnixNano()) // want "time.Now depends on the wall clock"
}

// Wait blocks on the wall clock.
func Wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep depends on the wall clock"
}

// Elapsed measures wall time.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want "time.Since depends on the wall clock"
}

// Deadline arms a wall-clock timer.
func Deadline() <-chan time.Time {
	return time.After(time.Second) // want "time.After depends on the wall clock"
}
