// Package clean exercises the hotalloc analyzer on conforming code:
// unmarked functions may allocate freely, and marked functions that use
// caller-owned scratch pass.
package clean

// Reserve allocates, but is not marked: growth belongs to the caller-owned
// scratch, outside the hot path.
func Reserve(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

// accumulate is a hot loop that writes only into caller-owned scratch.
//
//hot:path
func accumulate(sx, q, scratch []float64) float64 {
	var phi float64
	for j := range sx {
		scratch[j] = sx[j] * q[j]
		phi += scratch[j]
	}
	return phi
}

// helper has a doc comment mentioning hot paths in prose without the
// directive; it is not checked.
// This function supports hot:path functions by allocating their scratch.
func helper(n int) []float64 {
	return make([]float64, n)
}

// tileCascade is the shape of the new register-blocked drivers
// (direct.sumRange, core.evalBatchLists): fixed-size tile arrays live on
// the stack — no make — and the wide tile arrives as a function value
// resolved once by the caller, invoked per tile. Neither the arrays nor
// the indirect call may trip the analyzer.
//
//hot:path
func tileCascade(t8 func(tx *[8]float64, phi *[8]float64), xs, phi []float64) {
	var tx, acc [8]float64
	i := 0
	for ; i+8 <= len(xs); i += 8 {
		for l := 0; l < 8; l++ {
			tx[l] = xs[i+l]
			acc[l] = 0
		}
		t8(&tx, &acc)
		for l := 0; l < 8; l++ {
			phi[i+l] = acc[l]
		}
	}
}
