// Package flagged exercises the hotalloc analyzer: allocations inside
// functions marked //hot:path.
package flagged

// accumulate is a hot inner loop that allocates its scratch per call.
//
//hot:path
func accumulate(sx, q []float64) float64 {
	tmp := make([]float64, len(sx)) // want "make in //hot:path function accumulate"
	var phi float64
	for j := range sx {
		tmp[j] = sx[j] * q[j]
		phi += tmp[j]
	}
	return phi
}

// gather grows a result slice inside a hot loop.
//
//hot:path
func gather(xs []float64, cut float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x > cut {
			out = append(out, x) // want "append in //hot:path function gather"
		}
	}
	return out
}

// viaClosure allocates inside a function literal defined by a hot
// function; the literal runs on the hot path too.
//
//hot:path
func viaClosure(xs []float64) float64 {
	f := func() []float64 {
		return make([]float64, len(xs)) // want "make in //hot:path function viaClosure"
	}
	return f()[0]
}

// suppressed documents a justified exception.
//
//hot:path
func suppressed(n int) []float64 {
	//lint:ignore hotalloc one-time reserve, amortized across the run
	return make([]float64, n)
}

// tileCascadeAlloc is the broken variant of the register-blocked driver
// shape: gathering the tile into a fresh slice per iteration instead of
// a stack array.
//
//hot:path
func tileCascadeAlloc(t8 func(tx []float64, phi []float64), xs, phi []float64) {
	for i := 0; i+8 <= len(xs); i += 8 {
		tx := make([]float64, 8) // want "make in //hot:path function tileCascadeAlloc"
		t8(tx, phi[i:i+8])
	}
}
