// Package clean exercises the mutexcopy analyzer: lock-bearing values
// passed by pointer and ranged by index.
package clean

import "sync"

// guarded embeds a mutex; it must always travel by pointer.
type guarded struct {
	mu sync.Mutex
	n  int
}

// ByPointer receives the lock-bearing struct by pointer.
func ByPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Value uses a pointer receiver.
func (g *guarded) Value() int {
	return g.n
}

// Sum ranges by index, never copying an element.
func Sum(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// Plain copies of lock-free values are fine.
func Plain(pairs []struct{ a, b int }) int {
	total := 0
	for _, p := range pairs {
		total += p.a + p.b
	}
	return total
}
