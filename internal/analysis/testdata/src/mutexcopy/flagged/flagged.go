// Package flagged exercises the mutexcopy analyzer: locks passed or copied
// by value.
package flagged

import "sync"

// guarded embeds a mutex, so any by-value copy of it copies the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue receives a lock by value.
func ByValue(mu sync.Mutex) { // want "parameter of ByValue copies a lock"
	mu.Lock()
	defer mu.Unlock()
}

// Nested receives a lock inside a struct by value.
func Nested(g guarded) int { // want "parameter of Nested copies a lock"
	return g.n
}

// Value uses a by-value receiver on a lock-bearing type.
func (g guarded) Value() int { // want "receiver of Value copies a lock"
	return g.n
}

// Sum copies a lock per iteration through the range value.
func Sum(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value copies a lock"
		total += g.n
	}
	return total
}
