// Package suppress carries one justified rmaleak suppression: a prefetch
// whose completion is observed by the next phase's collective flush,
// outside this function.
package suppress

type Request struct{ done bool }

func (rq *Request) Wait() float64 { rq.done = true; return 0 }

type Rank struct{ pending []*Request }

func (r *Rank) Flush() float64 { return 0 }

type Window struct{ data []float64 }

func (w *Window) Iget(r *Rank, target, offset int, dst []float64) *Request {
	return &Request{}
}

// prefetch warms the next phase's data; the phase barrier's Flush (in the
// caller) completes it.
func prefetch(w *Window, r *Rank, dst []float64) {
	//lint:ignore rmaleak completed by the phase barrier's Flush in the caller
	w.Iget(r, 1, 0, dst)
}
