// Package flagged holds nonblocking RMA requests that never reach a
// completion point on some path.
package flagged

// Request is the completion handle shape rmaleak recognizes.
type Request struct{ done bool }

func (rq *Request) Wait() float64 { rq.done = true; return 0 }

type Rank struct{ pending []*Request }

func (r *Rank) Flush() float64 { return 0 }

type Window struct{ data []float64 }

func (w *Window) Iget(r *Rank, target, offset int, dst []float64) *Request {
	return &Request{}
}

// discardNoFlush throws the handle away with nothing to complete it.
func discardNoFlush(w *Window, r *Rank, dst []float64) {
	w.Iget(r, 1, 0, dst) // want "result of Iget discarded with no Flush"
}

// blankNoFlush discards via blank assignment — same leak, no handle.
func blankNoFlush(w *Window, r *Rank, dst []float64) {
	_ = w.Iget(r, 1, 0, dst) // want "result of Iget discarded with no Flush"
}

// neverWaited keeps the handle but completes nothing; the blank
// assignment silences the compiler, not the request.
func neverWaited(w *Window, r *Rank, dst []float64) {
	rq := w.Iget(r, 1, 0, dst) // want "Iget request in rq reaches no Wait or Flush before neverWaited returns"
	_ = rq
}

// waitOnlySometimes misses the wait on the early-return path.
func waitOnlySometimes(w *Window, r *Rank, dst []float64, cond bool) {
	rq := w.Iget(r, 1, 0, dst) // want "Iget request in rq misses Wait and Flush on some path before waitOnlySometimes returns"
	if cond {
		rq.Wait()
	}
}

// overwritten drops the first request by reusing the variable.
func overwritten(w *Window, r *Rank, dst []float64) {
	rq := w.Iget(r, 1, 0, dst)
	rq = w.Iget(r, 2, 0, dst) // want "Iget request in rq overwritten before Wait or Flush"
	rq.Wait()
}

// loopDiscard issues one leaked request per iteration and never flushes.
func loopDiscard(w *Window, r *Rank, dst []float64) {
	for i := 0; i < 4; i++ {
		w.Iget(r, i, 0, dst) // want "result of Iget discarded with no Flush"
	}
}

// flushOnlySometimes completes the requests on one branch only.
func flushOnlySometimes(w *Window, r *Rank, dst []float64, cond bool) {
	w.Iget(r, 1, 0, dst) // want "result of Iget discarded with no Flush"
	if cond {
		r.Flush()
	}
}
