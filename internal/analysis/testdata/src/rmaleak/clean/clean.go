// Package clean holds nonblocking RMA usage where every request reaches a
// completion point on all paths.
package clean

type Request struct{ done bool }

func (rq *Request) Wait() float64 { rq.done = true; return 0 }

type Rank struct{ pending []*Request }

func (r *Rank) Flush() float64 { return 0 }

type Window struct{ data []float64 }

func (w *Window) Iget(r *Rank, target, offset int, dst []float64) *Request {
	return &Request{}
}

// waitDirect is the basic issue-then-wait pattern.
func waitDirect(w *Window, r *Rank, dst []float64) {
	rq := w.Iget(r, 1, 0, dst)
	rq.Wait()
}

// discardThenFlush is the bulk-issue idiom: handles dropped, one Flush
// completes everything.
func discardThenFlush(w *Window, r *Rank, dst []float64) {
	for i := 0; i < 3; i++ {
		w.Iget(r, i, 0, dst)
	}
	r.Flush()
}

// deferFlush completes on every exit path, early returns included.
func deferFlush(w *Window, r *Rank, dst []float64, cond bool) {
	defer r.Flush()
	w.Iget(r, 1, 0, dst)
	if cond {
		return
	}
	w.Iget(r, 2, 0, dst)
}

// appended hands the request off to a list whose owner completes it — the
// grouped bulk-fetch idiom of the LET exchange.
func appended(w *Window, r *Rank, dst []float64) []*Request {
	var reqs []*Request
	for i := 0; i < 3; i++ {
		rq := w.Iget(r, i, 0, dst)
		reqs = append(reqs, rq)
	}
	return reqs
}

// appendedInline passes the result straight into the hand-off call.
func appendedInline(w *Window, r *Rank, dst []float64) []*Request {
	var reqs []*Request
	reqs = append(reqs, w.Iget(r, 1, 0, dst))
	return reqs
}

// returned transfers the completion obligation to the caller.
func returned(w *Window, r *Rank, dst []float64) *Request {
	return w.Iget(r, 1, 0, dst)
}

// storedInField hands the request to the struct's owner.
type batch struct{ reqs []*Request }

func storedInField(w *Window, r *Rank, b *batch, dst []float64) {
	b.reqs = append(b.reqs, w.Iget(r, 1, 0, dst))
}

// waitOnBothPaths completes the request on every branch.
func waitOnBothPaths(w *Window, r *Rank, dst []float64, cond bool) {
	rq := w.Iget(r, 1, 0, dst)
	if cond {
		rq.Wait()
	} else {
		r.Flush()
	}
}

// passedToHelper hands the request to a helper that owns it from there.
func complete(rq *Request) { rq.Wait() }

func passedToHelper(w *Window, r *Rank, dst []float64) {
	rq := w.Iget(r, 1, 0, dst)
	complete(rq)
}
