// Package clean holds lockcheck patterns that must produce no findings,
// with the blocking rule active (the test configures this package as
// blocking-checked).
package clean

import "sync"

type cache struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	cond  *sync.Cond
	locks []sync.Mutex
	data  map[string]int
}

// deferred is the canonical shape.
func (c *cache) deferred(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.data[k]
}

// allPaths releases explicitly on every path, early return included.
func (c *cache) allPaths(k string) int {
	c.mu.Lock()
	v, ok := c.data[k]
	if !ok {
		c.mu.Unlock()
		return -1
	}
	c.mu.Unlock()
	return v
}

// deferredLiteral unlocks inside a deferred function literal.
func (c *cache) deferredLiteral(k string, v int) {
	c.mu.Lock()
	defer func() {
		c.data[k] = v
		c.mu.Unlock()
	}()
}

// readThenWrite pairs RLock/RUnlock and Lock/Unlock on an RWMutex.
func (c *cache) readThenWrite(k string) {
	c.rw.RLock()
	_, ok := c.data[k]
	c.rw.RUnlock()
	if !ok {
		c.rw.Lock()
		c.data[k] = 0
		c.rw.Unlock()
	}
}

// selectDefault performs a non-blocking send under the lock: a select
// with a default never blocks.
func (c *cache) selectDefault(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- len(c.data):
	default:
	}
}

// condWait blocks on a condition variable, which requires holding its
// lock — deliberately exempt from the blocking rule.
func (c *cache) condWait() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.data) == 0 {
		c.cond.Wait()
	}
}

// unlockBeforeSend releases before the blocking operation.
func (c *cache) unlockBeforeSend(ch chan int) {
	c.mu.Lock()
	v := c.data["k"]
	c.mu.Unlock()
	ch <- v
}

// indexed locks have data-dependent identity and are not tracked.
func (c *cache) indexed(i int) {
	c.locks[i].Lock()
	defer c.locks[i].Unlock()
}
