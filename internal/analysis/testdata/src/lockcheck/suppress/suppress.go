// Package suppress carries one justified lockcheck suppression: a
// lock-transfer API whose contract moves the release to the caller.
package suppress

import "sync"

type guard struct {
	mu sync.Mutex
	n  int
}

// acquire hands the locked guard to the caller; release() is the
// documented counterpart.
func (g *guard) acquire() *guard {
	//lint:ignore lockcheck lock ownership transfers to the caller; released by release()
	g.mu.Lock()
	g.n++
	return g
}

func (g *guard) release() {
	g.mu.Unlock()
}
