// Package flagged exercises both lockcheck rules: locks that escape the
// function still held, and blocking operations under a held lock (this
// fixture package is configured as a blocking-checked package in the
// test).
package flagged

import (
	"net/http"
	"sync"
	"time"
)

// Solve stands in for the solver entry point.
func Solve() {}

type cache struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// earlyReturn leaves the mutex held on the miss path.
func (c *cache) earlyReturn(k string) int {
	c.mu.Lock() // want "c.mu.Lock.. is not released before earlyReturn returns"
	v, ok := c.data[k]
	if !ok {
		return -1
	}
	c.mu.Unlock()
	return v
}

// leaks never unlocks at all.
func (c *cache) leaks() {
	c.mu.Lock() // want "c.mu.Lock.. is not released before leaks returns"
	c.data["k"] = 1
}

// rlockLeak holds the read lock past the return.
func (c *cache) rlockLeak() int {
	c.rw.RLock() // want "c.rw.RLock.. is not released before rlockLeak returns"
	return len(c.data)
}

// double locks a mutex it already holds.
func (c *cache) double() {
	c.mu.Lock()
	c.mu.Lock() // want "c.mu.Lock.. while c.mu is already held .*self-deadlock"
	c.mu.Unlock()
}

// blockSend sends on a channel under the lock.
func (c *cache) blockSend(ch chan int) {
	c.mu.Lock()
	ch <- len(c.data) // want "channel send while c.mu is held"
	c.mu.Unlock()
}

// blockRecv receives under a deferred unlock: the lock is released
// correctly but still held across the blocking receive.
func (c *cache) blockRecv(ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-ch // want "channel receive while c.mu is held"
}

// blockWait waits on a WaitGroup under the lock.
func (c *cache) blockWait(wg *sync.WaitGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wg.Wait() // want "WaitGroup.Wait while c.mu is held"
}

// blockSleep sleeps holding the read lock.
func (c *cache) blockSleep() {
	c.rw.RLock()
	defer c.rw.RUnlock()
	time.Sleep(time.Millisecond) // want "time.Sleep while c.rw is held"
}

// blockHTTP performs a network round-trip under the lock.
func (c *cache) blockHTTP(url string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := http.Get(url) // want "net/http call Get while c.mu is held"
	return err
}

// blockSolve runs the solver under the lock.
func (c *cache) blockSolve() {
	c.mu.Lock()
	defer c.mu.Unlock()
	Solve() // want "solver call Solve while c.mu is held"
}
