// Package suppress exercises the //lint:ignore directive: justified
// suppressions on the flagged line or the line above, a wrong analyzer
// name that does not suppress, and a malformed directive (missing reason)
// that is itself reported. Checked by TestSuppression with the detrand
// analyzer.
package suppress

import "math/rand"

// Above is suppressed by a directive on the line above the finding.
func Above() int {
	//lint:ignore detrand fixture exercises the line-above suppression path
	return rand.Intn(3)
}

// Trailing is suppressed by a trailing directive on the finding's line.
func Trailing() int {
	return rand.Intn(3) //lint:ignore detrand fixture exercises the trailing suppression path
}

// Wrong names a different analyzer, so the finding survives.
func Wrong() int {
	//lint:ignore maporder wrong analyzer name must not suppress detrand
	return rand.Intn(3)
}

// Bare has no reason, so the directive itself is reported (and nothing is
// suppressed by it).
func Bare() float64 {
	//lint:ignore detrand
	return rand.Float64()
}

// Unknown names an analyzer that does not exist: the directive is
// malformed (a typo would suppress nothing, silently) and the finding
// survives.
func Unknown() float64 {
	//lint:ignore detrandd misspelled analyzer name
	return rand.Float64()
}
