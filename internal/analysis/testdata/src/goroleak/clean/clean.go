// Package clean holds goroutine spawns whose join points goroleak must
// recognize.
package clean

import "sync"

func compute(i int) int { return i * i }

// pooled is the canonical worker pool: Add before spawn, deferred Done,
// Wait before return.
func pooled(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute(i)
		}()
	}
	wg.Wait()
}

// errChan uses the buffered error-channel idiom: the send can never
// block, so the goroutine cannot leak on it.
func errChan() int {
	out := make(chan int, 1)
	go func() {
		out <- compute(6)
	}()
	return <-out
}

// drained receives on the only path out.
func drained() int {
	ch := make(chan int)
	go func() {
		ch <- compute(7)
	}()
	return <-ch
}

// handedOff passes the channel to a callee, which owns the join.
func handedOff(sink func(<-chan int)) {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	sink(ch)
}

// deferClose joins the draining goroutine with a deferred close.
func deferClose(items []int) {
	ch := make(chan int)
	defer close(ch)
	go func() {
		for v := range ch {
			compute(v)
		}
	}()
	for _, v := range items {
		ch <- v
	}
}

// spawnInto signals a WaitGroup owned by the caller: the caller joins.
func spawnInto(wg *sync.WaitGroup, jobs []int) {
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			compute(j)
		}()
	}
}

// paramChan receives the channel as a literal parameter bound to an
// outer channel that the spawner drains.
func paramChan() int {
	ch := make(chan int)
	go func(out chan<- int) {
		out <- compute(8)
	}(ch)
	return <-ch
}
