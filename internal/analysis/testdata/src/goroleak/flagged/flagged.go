// Package flagged holds goroutine spawns with no (or broken) join points.
package flagged

import "sync"

func compute(i int) int { return i * i }

// fireAndForget spawns a literal nothing can wait for.
func fireAndForget() {
	go func() { // want "goroutine has no join point: no WaitGroup, channel or other synchronization"
		compute(1)
	}()
}

// namedNoSync spawns a named function with no synchronization flowing in.
func namedNoSync() {
	go compute(2) // want "goroutine has no join point: nothing synchronizes compute"
}

// addInside calls Add inside the goroutine, racing with Wait.
func addInside() {
	var wg sync.WaitGroup
	go func() { // want "goroutine calls wg.Add: Add must happen on the spawning side"
		wg.Add(1)
		defer wg.Done()
		compute(3)
	}()
	wg.Wait()
}

// waitSkipped can return before Wait on the early path.
func waitSkipped(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "wg.Wait is not reached on every path to return"
		defer wg.Done()
		compute(4)
	}()
	if cond {
		return
	}
	wg.Wait()
}

// recvEarlyReturn strands the sender when the early path is taken.
func recvEarlyReturn(cond bool) int {
	ch := make(chan int)
	go func() { // want "goroutine blocks on channel ch but the spawner does not receive from it on every path"
		ch <- compute(5)
	}()
	if cond {
		return 0
	}
	return <-ch
}

// rangeNeverClosed can leave the draining goroutine parked forever: the
// early return skips both the send and the close.
func rangeNeverClosed(items []int) {
	ch := make(chan int)
	go func() { // want "goroutine blocks on channel ch but the spawner does not send on or close it on every path"
		for v := range ch {
			compute(v)
		}
	}()
	for _, v := range items {
		if v < 0 {
			return
		}
		ch <- v
	}
	close(ch)
}
