// Package suppress carries one justified goroleak suppression: a
// process-lifetime background loop that is detached by design.
package suppress

func tick() {}

// startFlusher runs for the life of the process; nothing ever joins it.
func startFlusher() {
	//lint:ignore goroleak process-lifetime flusher, detached by design
	go func() {
		for {
			tick()
		}
	}()
}
