// Package flagged holds order-dependent float reductions (this fixture
// package is configured as a compute package in the test).
package flagged

import "sync"

// Blocks stands in for the worker pool's parallel-for.
func Blocks(n int, f func(lo, hi int)) { f(0, n) }

type accum struct{ sum float64 }

// sumShared accumulates into one shared variable from every worker: the
// summation order is the scheduler's choice.
func sumShared(xs []float64) float64 {
	var total float64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, x := range xs {
				total += x // want "float accumulator total is shared across worker goroutines"
			}
		}()
	}
	wg.Wait()
	return total
}

// poolShared does the same through the worker pool with a struct field.
func poolShared(a *accum, xs []float64) {
	Blocks(len(xs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.sum += xs[i] // want "float accumulator a.sum is shared across worker goroutines"
		}
	})
}

// sumMap folds values in randomized map-iteration order.
func sumMap(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "float accumulation inside range over map folds in randomized map order"
	}
	return total
}
