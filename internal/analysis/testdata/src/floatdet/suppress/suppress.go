// Package suppress carries one justified floatdet suppression: a
// tolerance-bounded reduction where summation order is accepted.
package suppress

import "sync"

// sumTolerant accepts order-dependent rounding: its consumer applies a
// tolerance, not byte-identity.
func sumTolerant(xs []float64) float64 {
	var total float64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, x := range xs {
			//lint:ignore floatdet tolerance-bounded diagnostic sum; order accepted
			total += x
		}
	}()
	wg.Wait()
	return total
}
