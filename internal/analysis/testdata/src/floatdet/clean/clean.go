// Package clean holds deterministic reduction idioms floatdet must not
// flag (configured as a compute package in the test).
package clean

import (
	"sort"
	"sync"
)

// sumPerWorker is the sanctioned layout: disjoint indexed slots per
// worker, merged serially in fixed order.
func sumPerWorker(xs []float64) float64 {
	partial := make([]float64, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(xs); i += 4 {
				partial[w] += xs[i]
			}
		}(w)
	}
	wg.Wait()
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// sumViaLocal accumulates into a worker-local variable and hands the
// result off over a channel.
func sumViaLocal(xs []float64) float64 {
	out := make(chan float64, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local float64
			for i := w; i < len(xs); i += 4 {
				local += xs[i]
			}
			out <- local
		}(w)
	}
	wg.Wait()
	close(out)
	var total float64
	for v := range out {
		total += v
	}
	return total
}

// sumMapSorted reduces a map in sorted-key order.
func sumMapSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// serial accumulation outside any worker is fine.
func sumSerial(xs []float64) float64 {
	var total float64
	for _, x := range xs {
		total += x
	}
	return total
}
