// Package flagged exercises the goroutinecapture analyzer: goroutine
// literals closing over loop variables instead of receiving them as
// parameters.
package flagged

import "sync"

func sink(int) {}

// Spawn captures the range value in the goroutine body.
func Spawn(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(x) // want "goroutine closes over loop variable x"
		}()
	}
	wg.Wait()
}

// Index captures the for-clause index.
func Index(n int) {
	for i := 0; i < n; i++ {
		go func() {
			sink(i) // want "goroutine closes over loop variable i"
		}()
	}
}
