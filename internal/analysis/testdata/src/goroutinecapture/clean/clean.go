// Package clean exercises the goroutinecapture analyzer: loop variables
// passed as goroutine arguments, and loops owned by the goroutine itself.
package clean

import "sync"

func sink(int) {}

// Spawn pins the loop variable in the goroutine's parameter list — the
// mpisim rank-goroutine pattern.
func Spawn(xs []int) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			sink(x)
		}(x)
	}
	wg.Wait()
}

// Pool is the worker-pool shape used by device.run and core: the inner
// loop is declared inside the goroutine literal, which is the goroutine's
// own iteration, not a capture.
func Pool(grid, workers int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * grid / workers
		hi := (w + 1) * grid / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for b := lo; b < hi; b++ {
				fn(b)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// NotALoopVar captures an ordinary local, which is allowed.
func NotALoopVar(x int) {
	go func() {
		sink(x)
	}()
}
