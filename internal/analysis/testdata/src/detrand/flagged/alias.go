package flagged

import mr "math/rand"

// Aliased shows that import renaming does not hide the global source.
func Aliased() int64 {
	return mr.Int63() // want "rand.Int63 draws from the global math/rand source"
}
