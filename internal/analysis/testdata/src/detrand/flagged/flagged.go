// Package flagged exercises the detrand analyzer: draws from the global
// math/rand source.
package flagged

import "math/rand"

// Roll draws from the shared global source.
func Roll() int {
	return rand.Intn(6) // want "rand.Intn draws from the global math/rand source"
}

// Jitter draws from the shared global source.
func Jitter() float64 {
	return rand.Float64() // want "rand.Float64 draws from the global math/rand source"
}

// Mix permutes via the shared global source.
func Mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle draws from the global math/rand source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}
