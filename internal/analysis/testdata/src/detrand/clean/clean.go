// Package clean exercises the detrand analyzer: every draw flows from an
// explicitly seeded generator, the repository convention.
package clean

import "math/rand"

// Roll derives every draw from the seed.
func Roll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// Zipf builds a derived distribution from a caller-threaded generator.
func Zipf(rng *rand.Rand) uint64 {
	z := rand.NewZipf(rng, 1.5, 1, 100)
	return z.Uint64()
}

// Threaded consumes a caller-threaded generator.
func Threaded(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
