package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockCheck returns the flow-sensitive mutex analyzer. Two invariants:
//
//  1. Everywhere: every sync.Mutex/sync.RWMutex Lock (or RLock) is
//     released on every path out of the function — early returns, explicit
//     panics, falling off the end. A `defer mu.Unlock()` (directly or
//     inside a deferred literal) releases on all paths including panics
//     and satisfies the check. A Lock while the same mutex is definitely
//     held is a self-deadlock and is reported too.
//
//  2. In the configured packages (the serving stack): no blocking
//     operation runs while a mutex is held — channel sends/receives
//     (outside a select with a default), WaitGroup.Wait, net/http calls,
//     time.Sleep, and the solver entry points (Solve, RunCompute*). A
//     request blocked under the cache or queue mutex stalls every other
//     request behind a bounded-latency lock.
//
// The analysis runs on the per-function CFG (one graph per declaration
// and per function literal) with a forward may/must fixpoint per mutex.
// Mutexes reached through index expressions (locks[i]) are not tracked:
// their identity is data-dependent.
// DefaultLockCheckBlockingPackages lists the packages where invariant 2
// (no blocking call under a held mutex) is enforced: the serving stack,
// whose locks sit on the request path and carry a bounded-latency
// expectation.
var DefaultLockCheckBlockingPackages = []string{
	"barytree/internal/serve",
}

func LockCheck(blockingPkgs ...string) *Analyzer {
	blocking := map[string]bool{}
	for _, p := range blockingPkgs {
		blocking[p] = true
	}
	a := &Analyzer{
		Name: "lockcheck",
		Doc: "every mutex Lock must be released on all paths (defer counts); " +
			"no blocking call while a serving-stack mutex is held",
	}
	a.Run = func(pass *Pass) {
		checkBlocking := blocking[pass.Pkg.Path]
		funcBodies(pass.Pkg, func(name string, decl *ast.FuncDecl, node ast.Node, body *ast.BlockStmt) {
			lockCheckFunc(pass, name, body, checkBlocking)
		})
	}
	return a
}

// lockHeld is one mutex's state: how certainly it is held and where it was
// acquired.
type lockHeld struct {
	level    int // 1 = held on some path (may), 2 = held on all paths (must)
	pos      token.Pos
	viaRLock bool
	disp     string
}

type lockState map[string]lockHeld

func copyLockState(s lockState) lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func joinLockState(a, b lockState) lockState {
	for k, vb := range b {
		va, ok := a[k]
		if !ok {
			vb.level = 1 // held on b's path only
			a[k] = vb
			continue
		}
		if vb.level < va.level {
			va.level = vb.level
		}
		a[k] = va
	}
	for k, va := range a {
		if _, ok := b[k]; !ok && va.level > 1 {
			va.level = 1 // held on a's path only
			a[k] = va
		}
	}
	return a
}

func equalLockState(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.level != vb.level {
			return false
		}
	}
	return true
}

// lockCheckFunc runs both lockcheck rules over one function body.
func lockCheckFunc(pass *Pass, name string, body *ast.BlockStmt, checkBlocking bool) {
	info := pass.Pkg.Info
	g := NewCFG(body)

	// Fast path: no lock operations at all.
	any := false
	walkShallow(body, func(n ast.Node) bool {
		if _, ok := lockOpOf(info, n); ok {
			any = true
		}
		return !any
	})
	if !any {
		return
	}

	// Mutexes released by defer run on every exit path, panics included.
	deferred := map[string]bool{}
	for _, d := range g.Defers {
		collectUnlocks(info, d.Call, deferred)
	}

	// Comm operations of selects that have a default never block.
	nonBlocking := map[ast.Node]bool{}
	walkShallow(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					nonBlocking[cc.Comm] = true
				}
			}
		}
		return true
	})

	transfer := func(b *Block, s lockState, report bool) lockState {
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				// A deferred unlock runs at function exit, not here; its
				// effect is modeled by the deferred set.
				continue
			}
			walkCFGNode(n, func(c ast.Node) bool {
				if nonBlocking[c] {
					return false // comm op of a select with a default
				}
				if op, ok := lockOpOf(info, c); ok {
					switch op.method {
					case "Lock", "RLock":
						if prev, held := s[op.key]; report && held &&
							prev.level == 2 && !prev.viaRLock && op.method == "Lock" {
							pass.Reportf(op.pos,
								"%s.Lock() while %s is already held (locked at line %d): self-deadlock",
								op.disp, op.disp, pass.Fset.Position(prev.pos).Line)
						}
						s[op.key] = lockHeld{level: 2, pos: op.pos, viaRLock: op.method == "RLock", disp: op.disp}
					case "Unlock", "RUnlock":
						delete(s, op.key)
					}
					return true
				}
				if report && checkBlocking && len(s) > 0 {
					if what, blocks := blockingOpOf(info, c); blocks {
						for _, h := range sortedHeld(s) {
							pass.Reportf(c.Pos(),
								"%s while %s is held (locked at line %d): release the lock before blocking",
								what, h.disp, pass.Fset.Position(h.pos).Line)
						}
						return false // one report per operation is enough
					}
				}
				return true
			})
		}
		return s
	}

	res := Forward(g, FlowProblem[lockState]{
		Init:  lockState{},
		Copy:  copyLockState,
		Join:  joinLockState,
		Equal: equalLockState,
		Transfer: func(b *Block, s lockState) lockState {
			return transfer(b, s, false)
		},
	})

	// Reporting pass: flow each reachable block once from its fixpoint
	// in-state, in block order (deterministic).
	for _, b := range g.Blocks {
		if _, ok := res.In[b]; !ok {
			continue // unreachable
		}
		transfer(b, copyLockState(res.In[b]), true)
	}

	// Exit check: a mutex still held when control reaches Exit, with no
	// deferred unlock, leaks out of the function.
	reported := map[string]bool{}
	for _, b := range g.Blocks {
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		out, ok := res.Out[b]
		if !ok {
			continue
		}
		for _, h := range sortedHeld(out) {
			if deferred[h.key] || reported[h.key+"@"+fmt.Sprint(h.pos)] {
				continue
			}
			reported[h.key+"@"+fmt.Sprint(h.pos)] = true
			how := "is not released"
			if h.level == 1 {
				how = "is not released on some path"
			}
			method := "Lock"
			if h.viaRLock {
				method = "RLock"
			}
			pass.Reportf(h.pos,
				"%s.%s() %s before %s returns: unlock on every path or use defer %s.Unlock()",
				h.disp, method, how, name, h.disp)
		}
	}
}

type heldEntry struct {
	key string
	lockHeld
}

// sortedHeld returns the held mutexes in deterministic (display) order.
func sortedHeld(s lockState) []heldEntry {
	out := make([]heldEntry, 0, len(s))
	for k, v := range s {
		out = append(out, heldEntry{key: k, lockHeld: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// lockOp is one recognized mutex operation.
type lockOp struct {
	key    string // canonical identity of the mutex expression
	disp   string // display form ("c.mu")
	method string // Lock, Unlock, RLock, RUnlock
	pos    token.Pos
}

// lockOpOf recognizes n as a Lock/Unlock/RLock/RUnlock call on a
// sync.Mutex or sync.RWMutex whose receiver is a trackable expression (an
// identifier or selector chain; no index expressions or calls).
func lockOpOf(info *types.Info, n ast.Node) (lockOp, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return lockOp{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return lockOp{}, false
	}
	if !isNamedType(tv.Type, "sync", "Mutex") && !isNamedType(tv.Type, "sync", "RWMutex") {
		return lockOp{}, false
	}
	key, disp, ok := lockKey(info, sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: key, disp: disp, method: sel.Sel.Name, pos: call.Pos()}, true
}

// lockKey canonicalizes a mutex expression to a stable identity: the root
// object's declaration position plus the field path. Expressions with
// index operations or calls in the chain are rejected.
func lockKey(info *types.Info, e ast.Expr) (key, disp string, ok bool) {
	var path []string
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if obj == nil {
				return "", "", false
			}
			parts := append([]string{x.Name}, path...)
			disp = strings.Join(parts, ".")
			return fmt.Sprintf("%d.%s", obj.Pos(), strings.Join(path, ".")), disp, true
		case *ast.SelectorExpr:
			path = append([]string{x.Sel.Name}, path...)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return "", "", false
			}
			e = x.X
		default:
			return "", "", false
		}
	}
}

// collectUnlocks records every mutex whose Unlock/RUnlock the expression
// performs — a direct deferred call, or calls inside a deferred literal.
func collectUnlocks(info *types.Info, call *ast.CallExpr, out map[string]bool) {
	record := func(n ast.Node) bool {
		if op, ok := lockOpOf(info, n); ok && (op.method == "Unlock" || op.method == "RUnlock") {
			out[op.key] = true
		}
		return true
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		walkShallow(fl.Body, record)
		return
	}
	record(call)
}

// blockingOpOf recognizes an operation that can block indefinitely: a
// channel send or receive, ranging over a channel, WaitGroup.Wait,
// time.Sleep, any net/http call, and the solver entry points (Solve,
// RunCompute*). sync.Cond.Wait is deliberately excluded — waiting on a
// condition requires holding its lock.
func blockingOpOf(info *types.Info, n ast.Node) (string, bool) {
	switch x := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.RangeStmt:
		if tv, ok := info.Types[x.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "ranging over a channel", true
			}
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			if tv, ok := info.Types[sel.X]; ok && isNamedType(tv.Type, "sync", "WaitGroup") {
				return "WaitGroup.Wait", true
			}
		}
		fn := calleeFunc(info, x)
		if fn == nil {
			return "", false
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
			return "net/http call " + fn.Name(), true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
		if fn.Name() == "Solve" || strings.HasPrefix(fn.Name(), "RunCompute") {
			return "solver call " + fn.Name(), true
		}
	}
	return "", false
}

// isNamedType reports whether t (or its pointee) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
