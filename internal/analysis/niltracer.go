package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilTracer returns the analyzer enforcing the tracer nil-safety
// convention: a nil *trace.Tracer is the documented "tracing disabled"
// value, so call sites stay branch-free. That only holds if every exported
// function or method that takes a *Tracer (receiver or parameter) checks it
// against nil before touching its fields or dereferencing it. Method calls
// are fine — methods are themselves nil-safe — but a single unguarded
// t.mu.Lock() would turn every untraced run into a panic.
func NilTracer() *Analyzer {
	a := &Analyzer{
		Name: "niltracer",
		Doc: "exported functions and methods taking a *Tracer must nil-check it before " +
			"accessing fields or dereferencing; nil is the documented no-op tracer",
	}
	a.Run = func(pass *Pass) {
		funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
			if !fd.Name.IsExported() {
				return
			}
			for _, obj := range tracerParams(pass.Pkg.Info, fd) {
				checkTracerUse(pass, fd, obj)
			}
		})
	}
	return a
}

// tracerParams collects the receiver and parameters of fd whose type is a
// *Tracer.
func tracerParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isTracerPtr(obj.Type()) {
					out = append(out, obj)
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// checkTracerUse reports the first field access or dereference of obj in
// fd's body that is not preceded by a nil check of obj.
func checkTracerUse(pass *Pass, fd *ast.FuncDecl, obj types.Object) {
	info := pass.Pkg.Info

	// Position of the first guard: an if (or any) condition comparing obj
	// against nil. The lexical position is an approximation of dominance,
	// which matches how the guards in this codebase are written (an early
	// `if t == nil { return }`).
	guard := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if guard >= 0 {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if (useOf(info, x) == obj && isNilIdent(info, y)) ||
			(useOf(info, y) == obj && isNilIdent(info, x)) {
			guard = be.Pos()
			return false
		}
		return true
	})

	var unsafe ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if unsafe != nil {
			return false
		}
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if useOf(info, x.X) != obj {
				return true
			}
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				unsafe = x
				return false
			}
		case *ast.StarExpr:
			if useOf(info, x.X) == obj {
				unsafe = x
				return false
			}
		}
		return true
	})
	if unsafe == nil {
		return
	}
	if guard < 0 || guard > unsafe.Pos() {
		pass.Reportf(unsafe.Pos(),
			"%s uses tracer %s (field access or dereference) without a preceding nil check; nil tracers must be no-ops",
			fd.Name.Name, obj.Name())
	}
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id := exprIdent(e)
	if id == nil {
		return false
	}
	_, ok := info.Uses[id].(*types.Nil)
	return ok
}
