package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the flow-sensitive layer of the suite: a zero-dependency
// control-flow graph over go/ast function bodies. The syntactic analyzers
// (modeledtime, detrand, ...) match single statements; the concurrency
// analyzers (lockcheck, goroleak) need to answer path questions — "is this
// mutex released on every path to return?", "does every path after the
// spawn pass through the join?" — which require basic blocks and edges.
//
// The graph is deliberately small: blocks hold the ast.Nodes executed in
// straight-line order (statements, plus the conditions and comm operations
// that branch points evaluate), edges follow Go's structured control flow
// (if/for/range/switch/type-switch/select, break/continue/goto/fallthrough
// with labels, return, explicit panic and os.Exit-style terminators), and
// a synthetic Exit block receives every function-leaving edge. Function
// literals nested in the body are *not* spliced in — a literal's body runs
// at an unknown later time (often on another goroutine), so it gets its
// own graph via funcBodies.

// Block is one basic block: a maximal straight-line sequence of nodes with
// a single entry at the top. Nodes are statements plus the expressions a
// branch evaluates before choosing a successor (an if/for condition, a
// switch tag, a select comm operation), in execution order.
type Block struct {
	// Index is the block's position in Graph.Blocks (entry is 0).
	Index int
	// Kind labels what created the block ("entry", "exit", "if.then",
	// "for.head", "select.comm", ...) for tests and debugging.
	Kind string
	// Nodes are the block's statements and branch expressions in order.
	Nodes []ast.Node
	// Succs are the possible successors in execution order.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the synthetic block every return, terminal panic and
	// fall-off-the-end edge leads to. It holds no nodes.
	Exit *Block
	// Blocks lists every block, entry first, exit last.
	Blocks []*Block
	// Defers are the body's defer statements in registration order
	// (excluding defers inside nested function literals). Deferred calls
	// run on every exit path, including panics — analyzers consult this
	// list when deciding what holds at Exit.
	Defers []*ast.DeferStmt
}

// Preds returns the predecessor map of the graph (computed, not cached).
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// cfgBuilder carries the state of one graph construction.
type cfgBuilder struct {
	g   *Graph
	cur *Block

	// breakTargets / continueTargets are the innermost-last stacks of
	// enclosing breakable (for/range/switch/select) and continuable
	// (for/range) statements.
	breakTargets    []*Block
	continueTargets []*Block

	// labels maps a label name to the targets its loop (or other labeled
	// statement) registered; gotos maps pending goto edges resolved after
	// the walk when the label's block is known.
	labels map[string]*labelTarget
	gotos  []pendingGoto

	// pendingLabel is set between seeing "L:" and building the labeled
	// statement, so the loop builders can register L's break/continue
	// targets.
	pendingLabel string

	// fallthroughTarget is the next case clause's block while building a
	// switch case body.
	fallthroughTarget *Block
}

type labelTarget struct {
	start *Block // first block of the labeled statement (goto target)
	brk   *Block // break L target (nil until the labeled loop/switch builds)
	cont  *Block // continue L target (nil unless labeled loop)
}

type pendingGoto struct {
	from  *Block
	label string
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &cfgBuilder{g: g, labels: map[string]*labelTarget{}}
	g.Entry = b.newBlock("entry")
	g.Exit = &Block{Kind: "exit"}
	b.cur = g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, g.Exit) // fall off the end
	for _, pg := range b.gotos {
		if lt := b.labels[pg.label]; lt != nil && lt.start != nil {
			b.edge(pg.from, lt.start)
		}
	}
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds a→to unless a is nil.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// terminate marks the current block finished with no fall-through: the
// following statements (if any) are unreachable and land in a fresh block
// with no predecessors.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Consume the pending label for anything but the statements that
	// register their own targets below.
	label := b.pendingLabel
	b.pendingLabel = ""

	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(x.List)

	case *ast.LabeledStmt:
		// Start a fresh block so goto L has a well-defined target.
		start := b.newBlock("label." + x.Label.Name)
		b.edge(b.cur, start)
		b.cur = start
		lt := &labelTarget{start: start}
		b.labels[x.Label.Name] = lt
		b.pendingLabel = x.Label.Name
		b.stmt(x.Stmt)

	case *ast.IfStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Cond)
		cond := b.cur
		after := b.newBlock("if.after")
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmtList(x.Body.List)
		b.edge(b.cur, after)
		if x.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(x.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		b.cur = head
		if x.Cond != nil {
			b.add(x.Cond)
		}
		after := b.newBlock("for.after")
		cont := head
		var post *Block
		if x.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, x.Post)
			b.edge(post, head)
			cont = post
		}
		if x.Cond != nil {
			b.edge(head, after)
		}
		if label != "" {
			b.labels[label].brk, b.labels[label].cont = after, cont
		}
		body := b.newBlock("for.body")
		b.edge(head, body)
		b.cur = body
		b.pushLoop(after, cont)
		b.stmtList(x.Body.List)
		b.popLoop()
		b.edge(b.cur, cont)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		// The RangeStmt node itself stands for the per-iteration
		// evaluation (the next key/value assignment).
		head.Nodes = append(head.Nodes, x)
		after := b.newBlock("range.after")
		b.edge(head, after) // the range may be empty or exhausted
		if label != "" {
			b.labels[label].brk, b.labels[label].cont = after, head
		}
		body := b.newBlock("range.body")
		b.edge(head, body)
		b.cur = body
		b.pushLoop(after, head)
		b.stmtList(x.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.buildSwitch(x.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			b.add(x.Init)
		}
		b.add(x.Assign)
		b.buildSwitch(x.Body.List, label, false)

	case *ast.SelectStmt:
		b.buildSwitch(x.Body.List, label, true)

	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.g.Exit)
		b.terminate()

	case *ast.BranchStmt:
		b.add(x)
		switch x.Tok {
		case token.BREAK:
			if x.Label != nil {
				if lt := b.labels[x.Label.Name]; lt != nil && lt.brk != nil {
					b.edge(b.cur, lt.brk)
				}
			} else if n := len(b.breakTargets); n > 0 {
				b.edge(b.cur, b.breakTargets[n-1])
			}
			b.terminate()
		case token.CONTINUE:
			if x.Label != nil {
				if lt := b.labels[x.Label.Name]; lt != nil && lt.cont != nil {
					b.edge(b.cur, lt.cont)
				}
			} else if n := len(b.continueTargets); n > 0 {
				b.edge(b.cur, b.continueTargets[n-1])
			}
			b.terminate()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: x.Label.Name})
			b.terminate()
		case token.FALLTHROUGH:
			if b.fallthroughTarget != nil {
				b.edge(b.cur, b.fallthroughTarget)
			}
			b.terminate()
		}

	case *ast.DeferStmt:
		b.add(x)
		b.g.Defers = append(b.g.Defers, x)

	case *ast.ExprStmt:
		b.add(x)
		if isTerminalCall(x.X) {
			b.edge(b.cur, b.g.Exit)
			b.terminate()
		}

	default:
		// Assignments, declarations, sends, inc/dec, go statements,
		// empty statements: straight-line.
		b.add(s)
	}
}

// buildSwitch handles switch, type switch and select bodies: clauses run
// as alternative successors of the current block and rejoin after. For a
// switch without a default, the head also flows directly to after (no case
// matched). A select blocks until one comm is ready, so its head only
// flows to clauses; a select clause's comm operation is the first node of
// its block.
func (b *cfgBuilder) buildSwitch(clauses []ast.Stmt, label string, isSelect bool) {
	head := b.cur
	after := b.newBlock("switch.after")
	if label != "" {
		b.labels[label].brk = after
	}

	// Create the clause blocks first so fallthrough can target the next.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		kind := "switch.case"
		if isSelect {
			kind = "select.comm"
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	if !hasDefault && !isSelect {
		b.edge(head, after)
	}

	savedFT := b.fallthroughTarget
	b.pushBreak(after)
	for i, c := range clauses {
		b.cur = blocks[i]
		if i+1 < len(blocks) {
			b.fallthroughTarget = blocks[i+1]
		} else {
			b.fallthroughTarget = nil
		}
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.add(e)
			}
			b.stmtList(cc.Body)
		case *ast.CommClause:
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
		}
		b.edge(b.cur, after)
	}
	b.popBreak()
	b.fallthroughTarget = savedFT
	b.cur = after
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushBreak(brk *Block) {
	b.breakTargets = append(b.breakTargets, brk)
}

func (b *cfgBuilder) popBreak() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}

// isTerminalCall reports whether the expression is a call that never
// returns: the panic builtin, os.Exit, log.Fatal*, runtime.Goexit. The
// check is syntactic (the CFG has no type information); shadowing these
// names is assumed not to happen.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg := exprIdent(fun.X)
		if pkg == nil {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// funcBodies yields every function-like body of the package: declarations
// and the function literals nested anywhere inside them (each literal body
// is its own flow unit — it runs at an unknown later time, often on
// another goroutine, so its statements never belong to the enclosing
// graph). name is the enclosing declaration's name, with ".func" appended
// for literals.
func funcBodies(pkg *Package, fn func(name string, decl *ast.FuncDecl, node ast.Node, body *ast.BlockStmt)) {
	funcDecls(pkg, func(fd *ast.FuncDecl) {
		fn(fd.Name.Name, fd, fd, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				fn(fd.Name.Name+".func", fd, fl, fl.Body)
			}
			return true
		})
	})
}

// walkShallow visits the AST below n without descending into function
// literals: the flow-sensitive analyzers reason per function body, and a
// nested literal's operations happen on its own timeline.
func walkShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		return visit(c)
	})
}

// walkCFGNode visits one CFG block node shallowly. A RangeStmt node in a
// range.head block stands only for the per-iteration evaluation — its
// body's statements live in the range.body block — so only the range
// operands are walked, not the body.
func walkCFGNode(n ast.Node, visit func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if !visit(rs) {
			return
		}
		walkShallow(rs.X, visit)
		if rs.Key != nil {
			walkShallow(rs.Key, visit)
		}
		if rs.Value != nil {
			walkShallow(rs.Value, visit)
		}
		return
	}
	walkShallow(n, visit)
}
