package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineCapture returns the analyzer that flags `go func() { ... }()`
// literals closing over a loop variable instead of receiving it as an
// argument. Go 1.22 made per-iteration loop variables the language
// semantics, so this is no longer the classic aliasing bug — it is the
// project convention for the mpisim rank-goroutine pattern: a rank
// goroutine's identity (its rank id, its index range) must be pinned in
// the goroutine's parameter list, where the spawn site shows exactly what
// each goroutine received and the reviewer does not have to reason about
// closure capture at all.
func GoroutineCapture() *Analyzer {
	a := &Analyzer{
		Name: "goroutinecapture",
		Doc: "goroutine function literals must receive loop variables as parameters " +
			"(go func(id int) {...}(id)), not capture them",
	}
	a.Run = func(pass *Pass) {
		info := pass.Pkg.Info
		funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
			// Every loop variable declared in this function.
			loopVars := map[types.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.RangeStmt:
					if x.Tok == token.DEFINE {
						for _, e := range []ast.Expr{x.Key, x.Value} {
							if id := exprIdent(e); id != nil && id.Name != "_" {
								if obj := info.Defs[id]; obj != nil {
									loopVars[obj] = true
								}
							}
						}
					}
				case *ast.ForStmt:
					if init, ok := x.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
						for _, e := range init.Lhs {
							if id := exprIdent(e); id != nil && id.Name != "_" {
								if obj := info.Defs[id]; obj != nil {
									loopVars[obj] = true
								}
							}
						}
					}
				}
				return true
			})
			if len(loopVars) == 0 {
				return
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
				if !ok {
					return true
				}
				// A loop variable can only be referenced inside its loop's
				// scope, so any use inside the literal is a capture — unless
				// the loop itself is declared inside the literal, which is
				// the goroutine's own (safe) iteration. Uses in gs.Call.Args
				// are evaluated at spawn time and are the sanctioned pattern.
				reported := map[types.Object]bool{}
				ast.Inspect(fl.Body, func(c ast.Node) bool {
					id, ok := c.(*ast.Ident)
					if !ok {
						return true
					}
					obj := info.Uses[id]
					if obj == nil || !loopVars[obj] || reported[obj] {
						return true
					}
					if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
						return true // declared inside the goroutine's own body
					}
					reported[obj] = true
					pass.Reportf(id.Pos(),
						"goroutine closes over loop variable %s; pass it as an argument (go func(%s ...) {...}(%s))",
						obj.Name(), obj.Name(), obj.Name())
					return true
				})
				return true
			})
		})
	}
	return a
}
