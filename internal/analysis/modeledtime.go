package analysis

import (
	"go/ast"
)

// wallClockFuncs are the package time functions that read or depend on the
// wall clock. Pure time.Duration arithmetic and constants stay allowed.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// ModeledTime returns the analyzer that forbids wall-clock reads in
// modeled-time packages. The packages listed carry virtual clocks
// (perfmodel.Clock): every duration they report is modeled, so a single
// time.Now or time.Since would silently mix machine-dependent wall time
// into results that must be byte-identical across runs and hosts. Paper
// phase accounting (Section 4) and the trace exports both depend on it.
func ModeledTime(pkgPaths ...string) *Analyzer {
	modeled := map[string]bool{}
	for _, p := range pkgPaths {
		modeled[p] = true
	}
	a := &Analyzer{
		Name: "modeledtime",
		Doc: "forbid time.Now/time.Sleep/time.Since and friends in modeled-time packages; " +
			"all time there must come from perfmodel clocks",
	}
	a.Run = func(pass *Pass) {
		if !modeled[pass.Pkg.Path] {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgFunc(pass.Pkg.Info, sel)
				if fn == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
					return true
				}
				pass.Reportf(sel.Pos(),
					"time.%s depends on the wall clock in modeled-time package %s; derive time from perfmodel.Clock",
					fn.Name(), pass.Pkg.Path)
				return true
			})
		}
	}
	return a
}
