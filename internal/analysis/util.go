package analysis

import (
	"go/ast"
	"go/types"
)

// pkgFunc resolves a selector like rand.Intn or time.Now to the
// package-level function it names, returning nil if the selector is
// anything else (method call, field access, unresolved).
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return nil
	}
	// The qualifier must be a package name, not a value (a value selector
	// would make this a method or field even with a nil receiver above).
	if id := exprIdent(sel.X); id != nil {
		if _, ok := info.Uses[id].(*types.PkgName); ok {
			return fn
		}
	}
	return nil
}

// calleeFunc resolves a call expression's target to a package-level
// function or method, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// isFuncFrom reports whether fn is a package-level function of the package
// with the given import path.
func isFuncFrom(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Type().(*types.Signature).Recv() == nil
}

// isTracerPtr reports whether t is *Tracer for a named type Tracer declared
// in a package named "trace" (the project's tracer, or a fixture mirroring
// it).
func isTracerPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Tracer" && obj.Pkg() != nil && obj.Pkg().Name() == "trace"
}

// useOf returns the object an identifier expression refers to, or nil.
func useOf(info *types.Info, e ast.Expr) types.Object {
	if id := exprIdent(e); id != nil {
		return info.Uses[id]
	}
	return nil
}

// refersTo reports whether any identifier inside n resolves to obj.
func refersTo(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pkg *Package, f func(*ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				f(fd)
			}
		}
	}
}
