package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// RmaLeak returns the flow-sensitive nonblocking-RMA analyzer: every Iget
// request must reach a completion point on all paths out of the function.
// An issued request whose modeled completion is never observed leaves the
// rank's clock behind its NIC timeline — the simulation silently under-
// reports communication time, the exact bug class the pipelined LET
// exchange makes possible.
//
// A request is considered completed (locally) when:
//   - Wait is called on the variable holding it;
//   - any Flush or WaitAll call runs (they complete all pending requests),
//     directly or in a defer;
//   - the request is handed off: passed as a call argument (e.g. appended
//     to a request list), stored through a field/index, or returned — the
//     recipient owns the completion obligation from there.
//
// Iget calls whose result is discarded outright (an expression statement
// or an assignment to blank) have no handle to Wait on, so only a
// Flush/WaitAll on some path can complete them; with none, they are
// reported. Tracking is per function body on the CFG with a forward
// may/must fixpoint, mirroring lockcheck.
func RmaLeak() *Analyzer {
	a := &Analyzer{
		Name: "rmaleak",
		Doc: "every nonblocking RMA request (Iget) must reach a Wait or " +
			"Flush on all paths out of the function",
	}
	a.Run = func(pass *Pass) {
		funcBodies(pass.Pkg, func(name string, decl *ast.FuncDecl, node ast.Node, body *ast.BlockStmt) {
			rmaLeakFunc(pass, name, body)
		})
	}
	return a
}

// rmaPending is one in-flight request's state: how certainly it is still
// pending and where it was issued.
type rmaPending struct {
	level int // 1 = pending on some path (may), 2 = pending on all paths (must)
	pos   token.Pos
	disp  string // "rq" for var-held requests, "Iget" for discarded results
	held  bool   // held in a variable (can be Waited) vs discarded
}

type rmaState map[string]rmaPending

func copyRmaState(s rmaState) rmaState {
	c := make(rmaState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func joinRmaState(a, b rmaState) rmaState {
	for k, vb := range b {
		va, ok := a[k]
		if !ok {
			vb.level = 1 // pending on b's path only
			a[k] = vb
			continue
		}
		if vb.level < va.level {
			va.level = vb.level
		}
		a[k] = va
	}
	for k, va := range a {
		if _, ok := b[k]; !ok && va.level > 1 {
			va.level = 1 // pending on a's path only
			a[k] = va
		}
	}
	return a
}

func equalRmaState(a, b rmaState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || va.level != vb.level {
			return false
		}
	}
	return true
}

// rmaLeakFunc checks one function body.
func rmaLeakFunc(pass *Pass, name string, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Fast path: no Iget calls at all.
	any := false
	walkShallow(body, func(n ast.Node) bool {
		if isIgetCall(info, n) {
			any = true
		}
		return !any
	})
	if !any {
		return
	}

	g := NewCFG(body)

	// Completion points that run on every exit path, panics included.
	deferFlushAll := false
	deferWaited := map[string]bool{}
	for _, d := range g.Defers {
		collectCompletions(info, d.Call, &deferFlushAll, deferWaited)
	}

	objKey := func(obj types.Object) string { return fmt.Sprintf("obj:%d", obj.Pos()) }

	transfer := func(b *Block, s rmaState, report bool) rmaState {
		for _, n := range b.Nodes {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				// Deferred completions run at function exit, not here; they
				// are modeled by the deferred sets.
				continue
			}
			// LHS identifiers of tracking assignments must not count as
			// hand-off uses of their own new request.
			skip := map[ast.Node]bool{}
			walkCFGNode(n, func(c ast.Node) bool {
				switch x := c.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i, rhs := range x.Rhs {
						lhs := ast.Unparen(x.Lhs[i])
						if isIgetCall(info, rhs) {
							id := exprIdent(lhs)
							switch {
							case id == nil:
								// Stored through a field or index: handed
								// off to whatever owns that location.
							case id.Name == "_":
								// No handle: only a Flush can complete it.
								s[fmt.Sprintf("pos:%d", rhs.Pos())] = rmaPending{
									level: 2, pos: rhs.Pos(), disp: "Iget"}
							default:
								obj := info.Defs[id]
								if obj == nil {
									obj = info.Uses[id]
								}
								if obj == nil {
									continue
								}
								if prev, pending := s[objKey(obj)]; report && pending && prev.level == 2 {
									pass.Reportf(rhs.Pos(),
										"Iget request in %s overwritten before Wait or Flush (issued at line %d): the overwritten request can never complete",
										id.Name, pass.Fset.Position(prev.pos).Line)
								}
								s[objKey(obj)] = rmaPending{level: 2, pos: rhs.Pos(), disp: id.Name, held: true}
								skip[id] = true
							}
							continue
						}
						// `_ = rq` silences the compiler but completes
						// nothing: keep the request pending.
						if id := exprIdent(lhs); id != nil && id.Name == "_" {
							if rhsID := exprIdent(ast.Unparen(rhs)); rhsID != nil {
								if obj := info.Uses[rhsID]; obj != nil {
									if _, pending := s[objKey(obj)]; pending {
										skip[rhsID] = true
									}
								}
							}
						}
					}
					return true
				case *ast.ExprStmt:
					if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok && isIgetCall(info, call) {
						s[fmt.Sprintf("pos:%d", call.Pos())] = rmaPending{
							level: 2, pos: call.Pos(), disp: "Iget"}
					}
					return true
				case *ast.CallExpr:
					sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch sel.Sel.Name {
					case "Wait":
						if id := exprIdent(ast.Unparen(sel.X)); id != nil {
							if obj := info.Uses[id]; obj != nil {
								if _, pending := s[objKey(obj)]; pending {
									delete(s, objKey(obj))
									skip[id] = true
								}
							}
						}
					case "Flush", "WaitAll":
						// Completes every pending request on the rank.
						clear(s)
					}
					return true
				case *ast.Ident:
					if skip[x] {
						return true
					}
					if obj := info.Uses[x]; obj != nil {
						// Any other use hands the request off (appended to a
						// list, passed to a helper, returned): completion
						// becomes the recipient's obligation.
						delete(s, objKey(obj))
					}
					return true
				}
				return true
			})
		}
		return s
	}

	res := Forward(g, FlowProblem[rmaState]{
		Init:  rmaState{},
		Copy:  copyRmaState,
		Join:  joinRmaState,
		Equal: equalRmaState,
		Transfer: func(b *Block, s rmaState) rmaState {
			return transfer(b, s, false)
		},
	})

	// Reporting pass: flow each reachable block once from its fixpoint
	// in-state, in block order (deterministic).
	for _, b := range g.Blocks {
		if _, ok := res.In[b]; !ok {
			continue // unreachable
		}
		transfer(b, copyRmaState(res.In[b]), true)
	}

	// Exit check: a request still pending when control reaches Exit, with
	// no deferred completion, is leaked.
	if deferFlushAll {
		return
	}
	reported := map[token.Pos]bool{}
	for _, b := range g.Blocks {
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		out, ok := res.Out[b]
		if !ok {
			continue
		}
		for _, p := range sortedPending(out) {
			if deferWaited[p.key] || reported[p.pos] {
				continue
			}
			reported[p.pos] = true
			if !p.held {
				pass.Reportf(p.pos,
					"result of Iget discarded with no Flush on the path to %s returning: the request can never complete; keep the request and Wait, or Flush before returning",
					name)
				continue
			}
			how := "reaches no Wait or Flush"
			if p.level == 1 {
				how = "misses Wait and Flush on some path"
			}
			pass.Reportf(p.pos,
				"Iget request in %s %s before %s returns: complete every request with Wait or Flush on all paths",
				p.disp, how, name)
		}
	}
}

type pendingEntry struct {
	key string
	rmaPending
}

// sortedPending returns the pending requests in deterministic (issue
// position) order.
func sortedPending(s rmaState) []pendingEntry {
	out := make([]pendingEntry, 0, len(s))
	for k, v := range s {
		out = append(out, pendingEntry{key: k, rmaPending: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// isIgetCall recognizes n as a method call named Iget returning a request
// handle (a value or pointer of a type named Request). Matching by shape
// rather than by the concrete mpisim types keeps the analyzer honest on
// any window-like API (and the fixtures self-contained).
func isIgetCall(info *types.Info, n ast.Node) bool {
	e, ok := n.(ast.Expr)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Iget" {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Request"
}

// collectCompletions records the completion effect of one deferred call:
// a Flush/WaitAll (flushes everything), a Wait on a specific request
// variable, or any of those inside a deferred literal.
func collectCompletions(info *types.Info, call *ast.CallExpr, flushAll *bool, waited map[string]bool) {
	record := func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Flush", "WaitAll":
			*flushAll = true
		case "Wait":
			if id := exprIdent(ast.Unparen(sel.X)); id != nil {
				if obj := info.Uses[id]; obj != nil {
					waited[fmt.Sprintf("obj:%d", obj.Pos())] = true
				}
			}
		}
		return true
	}
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		walkShallow(fl.Body, record)
		return
	}
	record(call)
}
