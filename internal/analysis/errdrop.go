package analysis

import (
	"go/ast"
	"go/types"
)

// DefaultErrDropPackages lists the packages where errors may not be
// silently discarded: the serving boundary, where a dropped error is a
// request that failed without a trace.
var DefaultErrDropPackages = []string{
	"barytree/internal/serve",
	"barytree/cmd/bltcd",
}

// ErrDrop returns the analyzer that forbids discarding error results via
// the blank identifier in the serving packages. Both shapes are reported:
//
//	_ = w.Write(buf)          // single error assigned to blank
//	n, _ := conv(x)           // error component of a tuple blanked
//
// Bare expression statements (fmt.Fprintln(w, ...)) are left alone — that
// is established Go idiom for writers whose errors genuinely carry no
// information. Writing `_ =` is a deliberate act of discarding a value the
// author noticed; in these packages it must either be handled or carry a
// //lint:ignore errdrop justification.
func ErrDrop(pkgs ...string) *Analyzer {
	if pkgs == nil {
		pkgs = DefaultErrDropPackages
	}
	gated := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		gated[p] = true
	}
	a := &Analyzer{
		Name: "errdrop",
		Doc: "serving packages must not discard error results with the blank identifier; " +
			"handle the error or justify with //lint:ignore errdrop",
	}
	a.Run = func(pass *Pass) {
		if !gated[pass.Pkg.Path] {
			return
		}
		info := pass.Pkg.Info
		for _, file := range pass.Pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				checkErrDropAssign(pass, info, as)
				return true
			})
		}
	}
	return a
}

func checkErrDropAssign(pass *Pass, info *types.Info, as *ast.AssignStmt) {
	isBlank := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "_"
	}

	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple form: a, _ := g().
		tv, ok := info.Types[as.Rhs[0]]
		if !ok {
			return
		}
		tup, ok := tv.Type.(*types.Tuple)
		if !ok || tup.Len() != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(tup.At(i).Type()) {
				pass.Reportf(as.Pos(),
					"error result of %s discarded with blank identifier; handle it or justify with //lint:ignore errdrop",
					describeRHS(as.Rhs[0]))
			}
		}
		return
	}

	// Pairwise form: _ = f(), or x, _ = a, b.
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		tv, ok := info.Types[as.Rhs[i]]
		if !ok {
			continue
		}
		if isErrorType(tv.Type) {
			pass.Reportf(as.Pos(),
				"error result of %s discarded with blank identifier; handle it or justify with //lint:ignore errdrop",
				describeRHS(as.Rhs[i]))
		}
	}
}

// isErrorType reports whether t is the built-in error interface (or a
// named type whose underlying type is exactly it).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Identical(iface, errType)
}

// describeRHS renders the discarded expression's callee for messages.
func describeRHS(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		return callName(call)
	}
	return "expression"
}
