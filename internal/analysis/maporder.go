package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder returns the analyzer that flags ordered output produced directly
// from a map iteration. Go randomizes map iteration order per run, so a
// `range m` whose body appends to a slice, writes to an io.Writer (or any
// Write/WriteString method), or emits trace spans produces a different
// ordering every execution — exactly the failure mode that would break the
// repository's byte-identical trace/profile exports and reproducible
// figure tables. The collect-then-sort idiom is recognized: appending into
// a slice that is passed to a sort or slices call later in the same
// function is allowed. Writer and tracer emissions have no after-the-fact
// fix, so they are always flagged; iterate sorted keys instead.
func MapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc: "flag range-over-map bodies that append to slices without a later sort, write " +
			"to writers, or emit trace spans: map order is randomized per run",
	}
	a.Run = func(pass *Pass) {
		funcDecls(pass.Pkg, func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Pkg.Info.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		})
	}
	return a
}

// checkMapRange inspects one range-over-map statement for order-dependent
// emissions.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append(dst, ...) — allowed only when dst is sorted after the loop.
		if id := exprIdent(call.Fun); id != nil {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
				dst := appendDest(info, call.Args[0])
				if dst == nil || !sortedAfter(pass, fd, rs, dst) {
					pass.Reportf(call.Pos(),
						"append inside range over map without a deterministic sort after the loop; map iteration order is randomized")
				}
				return true
			}
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case isFuncFrom(fn, "fmt") && len(fn.Name()) > 5 && fn.Name()[:6] == "Fprint":
			pass.Reportf(call.Pos(),
				"fmt.%s inside range over map writes output in randomized map order; iterate sorted keys", fn.Name())
		case isFuncFrom(fn, "io") && fn.Name() == "WriteString":
			pass.Reportf(call.Pos(),
				"io.WriteString inside range over map writes output in randomized map order; iterate sorted keys")
		case isWriteMethod(fn):
			pass.Reportf(call.Pos(),
				"%s inside range over map writes output in randomized map order; iterate sorted keys", fn.Name())
		case isTracerEmit(info, call, fn):
			pass.Reportf(call.Pos(),
				"trace span emitted inside range over map: span record order becomes nondeterministic; iterate sorted keys")
		}
		return true
	})
}

// appendDest resolves the destination object of an append call: a plain
// variable or a struct field selection.
func appendDest(info *types.Info, arg ast.Expr) types.Object {
	switch x := ast.Unparen(arg).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// sortedAfter reports whether a sort-package (or slices-package) call
// referencing dst appears after the range statement in the same function —
// the collect-then-sort idiom.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, dst types.Object) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || !(isFuncFrom(fn, "sort") || isFuncFrom(fn, "slices")) {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(info, arg, dst) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// isWriteMethod reports whether fn is a Write/WriteString-style method
// (bytes.Buffer, bufio.Writer, strings.Builder, hash.Hash, ...).
func isWriteMethod(fn *types.Func) bool {
	if fn.Type().(*types.Signature).Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// isTracerEmit reports whether the call is Span or Emit on a *Tracer.
func isTracerEmit(info *types.Info, call *ast.CallExpr, fn *types.Func) bool {
	if fn.Name() != "Span" && fn.Name() != "Emit" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && isTracerPtr(tv.Type)
}
