package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module (or a test
// fixture loaded through Loader.LoadDir).
type Package struct {
	// Path is the import path ("barytree/internal/trace").
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Name is the package name ("trace", "main").
	Name string
	// Fset maps positions for Files.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression, definition, use and
	// selection records for Files.
	Info *types.Info
	// TypeErrors collects type-checking errors. Analyzers still run on a
	// package with errors, but drivers should surface them: findings on a
	// broken package are unreliable.
	TypeErrors []error
}

// Loader parses and type-checks packages of one module. Module-internal
// imports are resolved from source inside the module; standard library
// imports are type-checked from $GOROOT/src via go/importer's "source"
// compiler, so loading needs no export data, build cache or external
// tooling. Packages are cached by import path, so a Loader is cheap to
// reuse and must not be shared across goroutines.
type Loader struct {
	// Fset is shared by every package this loader loads.
	Fset *token.FileSet
	// ModulePath is the module path from go.mod ("barytree").
	ModulePath string
	// ModuleDir is the directory containing go.mod.
	ModuleDir string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// NewLoader returns a loader for the module rooted at moduleDir (a
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", moduleDir)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  moduleDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, "unsafe" maps to types.Unsafe, everything else (the standard
// library) is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load loads the module package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return l.LoadDir(filepath.Join(l.ModuleDir, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the non-test Go files of dir as the
// package with the given import path. Fixture packages outside the module's
// walk (e.g. under testdata/) load the same way; their import path only
// needs to be unique within this loader.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if f.Name.Name != pkg.Name {
			return nil, fmt.Errorf("analysis: %s: mixed packages %s and %s", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check reports the first error through conf.Error and keeps going; the
	// returned error duplicates TypeErrors, so it is deliberately dropped.
	pkg.Types, _ = conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll walks the module tree and loads every package, sorted by import
// path. Hidden directories, testdata and vendor trees are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := l.packageDirs(l.ModuleDir)
	if err != nil {
		return nil, err
	}
	return l.loadDirs(dirs)
}

// LoadPattern resolves one command-line package argument: a directory
// relative to the module root (or absolute), with an optional "/..." suffix
// selecting the whole subtree. "./..." selects the module.
func (l *Loader) LoadPattern(pattern string) ([]*Package, error) {
	rec := false
	if pattern == "..." || strings.HasSuffix(pattern, "/...") {
		rec = true
		pattern = strings.TrimSuffix(strings.TrimSuffix(pattern, "..."), "/")
	}
	if pattern == "" || pattern == "." || pattern == "./" {
		pattern = l.ModuleDir
	}
	if !filepath.IsAbs(pattern) {
		pattern = filepath.Join(l.ModuleDir, pattern)
	}
	pattern = filepath.Clean(pattern)
	if !rec {
		path, err := l.importPathFor(pattern)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(pattern, path)
		if err != nil {
			return nil, err
		}
		return []*Package{pkg}, nil
	}
	dirs, err := l.packageDirs(pattern)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no Go packages under %s", pattern)
	}
	return l.loadDirs(dirs)
}

func (l *Loader) loadDirs(dirs []string) ([]*Package, error) {
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// packageDirs returns every directory under root holding non-test Go files.
func (l *Loader) packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFiles(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// goFiles lists dir's non-test Go files, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
