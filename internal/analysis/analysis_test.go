package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one Loader for the whole test binary: the standard
// library is type-checked from source once and every fixture reuses it.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loader
}

// loadFixture loads testdata/src/<rel> under the synthetic import path
// "fixture/<rel>".
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	l := testLoader(t)
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	pkg, err := l.LoadDir(dir, "fixture/"+rel)
	if err != nil {
		t.Fatal(err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", rel, terr)
	}
	return pkg
}

// wantRe matches one quoted expectation in a // want comment.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectations extracts the fixture's // want "regex" comments, keyed by
// file:line.
func expectations(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	exp := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, q := range wantRe.FindAllString(text, -1) {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", key, q, err)
					}
					exp[key] = append(exp[key], regexp.MustCompile(s))
				}
			}
		}
	}
	return exp
}

// checkFixture runs the analyzer on the fixture and verifies the findings
// match the // want comments exactly: every diagnostic matched by an
// expectation on its line, every expectation matched by a diagnostic.
func checkFixture(t *testing.T, a *Analyzer, rel string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	exp := expectations(t, pkg)
	diags := Check([]*Package{pkg}, []*Analyzer{a})
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		res := exp[key]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic %v", d)
			continue
		}
		exp[key] = append(res[:matched], res[matched+1:]...)
	}
	for key, res := range exp {
		for _, re := range res {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
		}
	}
}

func TestModeledTime(t *testing.T) {
	checkFixture(t, ModeledTime("fixture/modeledtime/flagged"), "modeledtime/flagged")
	checkFixture(t, ModeledTime("fixture/modeledtime/clean"), "modeledtime/clean")
}

func TestModeledTimeOnlyConfiguredPackages(t *testing.T) {
	// The flagged fixture is full of wall-clock reads, but the analyzer
	// only applies to the packages it was configured with.
	pkg := loadFixture(t, "modeledtime/flagged")
	diags := Check([]*Package{pkg}, []*Analyzer{ModeledTime("barytree/internal/device")})
	if len(diags) != 0 {
		t.Errorf("modeledtime ran outside its configured packages: %v", diags)
	}
}

func TestDetRand(t *testing.T) {
	checkFixture(t, DetRand(), "detrand/flagged")
	checkFixture(t, DetRand(), "detrand/clean")
}

func TestMapOrder(t *testing.T) {
	checkFixture(t, MapOrder(), "maporder/flagged")
	checkFixture(t, MapOrder(), "maporder/clean")
}

func TestNilTracer(t *testing.T) {
	checkFixture(t, NilTracer(), "niltracer/flagged")
	checkFixture(t, NilTracer(), "niltracer/clean")
}

func TestMutexCopy(t *testing.T) {
	checkFixture(t, MutexCopy(), "mutexcopy/flagged")
	checkFixture(t, MutexCopy(), "mutexcopy/clean")
}

func TestGoroutineCapture(t *testing.T) {
	checkFixture(t, GoroutineCapture(), "goroutinecapture/flagged")
	checkFixture(t, GoroutineCapture(), "goroutinecapture/clean")
}

func TestHotAlloc(t *testing.T) {
	checkFixture(t, HotAlloc(), "hotalloc/flagged")
	checkFixture(t, HotAlloc(), "hotalloc/clean")
}

func TestLockCheck(t *testing.T) {
	checkFixture(t, LockCheck("fixture/lockcheck/flagged"), "lockcheck/flagged")
	checkFixture(t, LockCheck("fixture/lockcheck/clean"), "lockcheck/clean")
	checkFixture(t, LockCheck("fixture/lockcheck/suppress"), "lockcheck/suppress")
}

// TestLockCheckReleaseRuleUngated verifies rule 1 (release on all paths)
// applies even in packages not configured for the blocking rule.
func TestLockCheckReleaseRuleUngated(t *testing.T) {
	pkg := loadFixture(t, "lockcheck/flagged")
	diags := Check([]*Package{pkg}, []*Analyzer{LockCheck()})
	leaks := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "is not released") {
			leaks++
		}
		if strings.Contains(d.Message, "is held") {
			t.Errorf("blocking rule fired outside its configured packages: %v", d)
		}
	}
	if leaks != 3 {
		t.Errorf("got %d release-rule findings without blocking config, want 3", leaks)
	}
}

func TestGoroLeak(t *testing.T) {
	checkFixture(t, GoroLeak(), "goroleak/flagged")
	checkFixture(t, GoroLeak(), "goroleak/clean")
	checkFixture(t, GoroLeak(), "goroleak/suppress")
}

func TestFloatDet(t *testing.T) {
	checkFixture(t, FloatDet("fixture/floatdet/flagged"), "floatdet/flagged")
	checkFixture(t, FloatDet("fixture/floatdet/clean"), "floatdet/clean")
	checkFixture(t, FloatDet("fixture/floatdet/suppress"), "floatdet/suppress")
}

// TestFloatDetOnlyConfiguredPackages: the flagged fixture is full of
// order-dependent reductions, but outside the compute packages (and
// absent //hot:path) the analyzer stays quiet.
func TestFloatDetOnlyConfiguredPackages(t *testing.T) {
	pkg := loadFixture(t, "floatdet/flagged")
	diags := Check([]*Package{pkg}, []*Analyzer{FloatDet("barytree/internal/kernel")})
	if len(diags) != 0 {
		t.Errorf("floatdet ran outside its configured packages: %v", diags)
	}
}

func TestErrDrop(t *testing.T) {
	checkFixture(t, ErrDrop("fixture/errdrop/flagged"), "errdrop/flagged")
	checkFixture(t, ErrDrop("fixture/errdrop/clean"), "errdrop/clean")
	checkFixture(t, ErrDrop("fixture/errdrop/suppress"), "errdrop/suppress")
}

func TestRmaLeak(t *testing.T) {
	checkFixture(t, RmaLeak(), "rmaleak/flagged")
	checkFixture(t, RmaLeak(), "rmaleak/clean")
	checkFixture(t, RmaLeak(), "rmaleak/suppress")
}

// TestSuppression verifies //lint:ignore semantics on the suppress
// fixture: justified directives on the finding's line or the line above
// suppress it, a wrong analyzer name does not, and a directive without a
// reason is itself reported.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags := Check([]*Package{pkg}, []*Analyzer{DetRand()})

	var detrand, lint []Diagnostic
	for _, d := range diags {
		switch d.Analyzer {
		case "detrand":
			detrand = append(detrand, d)
		case "lint":
			lint = append(lint, d)
		default:
			t.Errorf("unexpected analyzer %q: %v", d.Analyzer, d)
		}
	}
	// Above and Trailing are suppressed; Wrong, Bare and Unknown survive.
	if len(detrand) != 3 {
		t.Fatalf("got %d surviving detrand findings, want 3 (Wrong, Bare, Unknown): %v", len(detrand), detrand)
	}
	for _, d := range detrand {
		if !strings.Contains(d.Message, "global math/rand source") {
			t.Errorf("unexpected detrand message: %v", d)
		}
	}
	// Two malformed directives: Bare (no reason) and Unknown (bad name).
	if len(lint) != 2 {
		t.Fatalf("want exactly two malformed-directive findings, got %v", lint)
	}
	for _, d := range lint {
		if !strings.Contains(d.Message, "malformed //lint:ignore") {
			t.Errorf("unexpected lint message: %v", d)
		}
	}
	if !strings.Contains(lint[0].Message, "<analyzer> <reason>") && !strings.Contains(lint[1].Message, "<analyzer> <reason>") {
		t.Errorf("missing no-reason malformed finding: %v", lint)
	}
	foundUnknown := false
	for _, d := range lint {
		if strings.Contains(d.Message, `unknown analyzer "detrandd"`) {
			foundUnknown = true
		}
	}
	if !foundUnknown {
		t.Errorf("missing unknown-analyzer malformed finding: %v", lint)
	}
}

// TestModuleLoads is the loader's integration test: the whole module
// type-checks from source with zero errors.
func TestModuleLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type check in -short mode")
	}
	pkgs, err := testLoader(t).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Errorf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: %v", pkg.Path, terr)
		}
	}
}

// TestRepositoryClean dogfoods the suite: the tree must stay free of
// findings, the same gate verify.sh enforces via cmd/bltcvet.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide analysis in -short mode")
	}
	pkgs, err := testLoader(t).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Check(pkgs, DefaultAnalyzers()) {
		t.Errorf("%v", d)
	}
}
