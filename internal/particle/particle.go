// Package particle provides structure-of-arrays particle storage and the
// synthetic particle distributions used by the paper's experiments
// (uniformly random points in the [-1,1]^3 cube with charges uniform on
// [-1,1]) plus additional distributions for broader testing.
package particle

import (
	"fmt"
	"math"
	"math/rand"

	"barytree/internal/geom"
)

// Set is a structure-of-arrays collection of charged particles. The SoA
// layout matches what both the CPU inner loops and the simulated GPU
// kernels stream over.
type Set struct {
	X, Y, Z []float64 // coordinates
	Q       []float64 // charges (or masses, or quadrature weights)
}

// NewSet returns an empty set with capacity for n particles.
func NewSet(n int) *Set {
	return &Set{
		X: make([]float64, 0, n),
		Y: make([]float64, 0, n),
		Z: make([]float64, 0, n),
		Q: make([]float64, 0, n),
	}
}

// Len returns the number of particles.
func (s *Set) Len() int { return len(s.X) }

// Append adds one particle.
func (s *Set) Append(x, y, z, q float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Z = append(s.Z, z)
	s.Q = append(s.Q, q)
}

// At returns the position of particle i.
func (s *Set) At(i int) geom.Vec3 { return geom.Vec3{X: s.X[i], Y: s.Y[i], Z: s.Z[i]} }

// Swap exchanges particles i and j.
func (s *Set) Swap(i, j int) {
	s.X[i], s.X[j] = s.X[j], s.X[i]
	s.Y[i], s.Y[j] = s.Y[j], s.Y[i]
	s.Z[i], s.Z[j] = s.Z[j], s.Z[i]
	s.Q[i], s.Q[j] = s.Q[j], s.Q[i]
}

// Slice returns a view of particles [lo, hi). The view shares storage with s.
func (s *Set) Slice(lo, hi int) *Set {
	return &Set{X: s.X[lo:hi], Y: s.Y[lo:hi], Z: s.Z[lo:hi], Q: s.Q[lo:hi]}
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{
		X: make([]float64, s.Len()),
		Y: make([]float64, s.Len()),
		Z: make([]float64, s.Len()),
		Q: make([]float64, s.Len()),
	}
	copy(c.X, s.X)
	copy(c.Y, s.Y)
	copy(c.Z, s.Z)
	copy(c.Q, s.Q)
	return c
}

// Bounds returns the minimal axis-aligned bounding box of the particles.
func (s *Set) Bounds() geom.Box { return geom.BoundingBox(s.X, s.Y, s.Z) }

// TotalCharge returns the sum of all charges.
func (s *Set) TotalCharge() float64 {
	var t float64
	for _, q := range s.Q {
		t += q
	}
	return t
}

// Validate checks structural invariants (equal slice lengths, finite
// coordinates) and returns a descriptive error on the first violation.
func (s *Set) Validate() error {
	n := len(s.X)
	if len(s.Y) != n || len(s.Z) != n || len(s.Q) != n {
		return fmt.Errorf("particle: ragged SoA lengths x=%d y=%d z=%d q=%d",
			len(s.X), len(s.Y), len(s.Z), len(s.Q))
	}
	for i := 0; i < n; i++ {
		for _, v := range [4]float64{s.X[i], s.Y[i], s.Z[i], s.Q[i]} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("particle: non-finite value at index %d", i)
			}
		}
	}
	return nil
}

// Permutation is a reordering of particle indices: perm[newIndex] = oldIndex.
// Tree construction sorts particles into leaf-contiguous order; the
// permutation maps results back to the caller's original ordering.
type Permutation []int

// Identity returns the identity permutation of length n.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Inverse returns the inverse permutation.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for newIdx, oldIdx := range p {
		inv[oldIdx] = newIdx
	}
	return inv
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p Permutation) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// GatherInto writes src[perm[i]] into dst[i] for every i. dst and src must
// have length len(p) and must not alias.
func (p Permutation) GatherInto(dst, src []float64) {
	if len(dst) != len(p) || len(src) != len(p) {
		panic("particle: GatherInto length mismatch")
	}
	for i, old := range p {
		dst[i] = src[old]
	}
}

// ScatterInto writes src[i] into dst[perm[i]] for every i: it undoes a
// gather, mapping tree-ordered values back to original order.
func (p Permutation) ScatterInto(dst, src []float64) {
	if len(dst) != len(p) || len(src) != len(p) {
		panic("particle: ScatterInto length mismatch")
	}
	for i, old := range p {
		dst[old] = src[i]
	}
}

// UniformCube returns n particles uniformly random in [-1,1]^3 with charges
// uniform on [-1,1], the distribution used throughout the paper's Section 4.
func UniformCube(n int, rng *rand.Rand) *Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Append(
			2*rng.Float64()-1,
			2*rng.Float64()-1,
			2*rng.Float64()-1,
			2*rng.Float64()-1,
		)
	}
	return s
}

// UniformBox returns n particles uniformly random in the box b with charges
// uniform on [-1,1].
func UniformBox(n int, b geom.Box, rng *rand.Rand) *Set {
	s := NewSet(n)
	sz := b.Size()
	for i := 0; i < n; i++ {
		s.Append(
			b.Lo.X+sz.X*rng.Float64(),
			b.Lo.Y+sz.Y*rng.Float64(),
			b.Lo.Z+sz.Z*rng.Float64(),
			2*rng.Float64()-1,
		)
	}
	return s
}

// Plummer returns n equal-mass particles drawn from the Plummer sphere with
// scale radius a, the classic gravitational N-body test distribution. Each
// particle carries mass 1/n.
func Plummer(n int, a float64, rng *rand.Rand) *Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		// Inverse-transform sample of the Plummer cumulative mass profile.
		m := rng.Float64()
		// Guard against the unbounded tail: clamp the outermost fraction.
		if m > 0.999 {
			m = 0.999
		}
		r := a / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		// Uniform direction on the sphere.
		u := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		st := math.Sqrt(1 - u*u)
		s.Append(r*st*math.Cos(phi), r*st*math.Sin(phi), r*u, 1/float64(n))
	}
	return s
}

// GaussianBlob returns n particles with coordinates drawn independently from
// N(0, sigma^2) and charges uniform on [-1,1]; it exercises strongly
// non-uniform octrees.
func GaussianBlob(n int, sigma float64, rng *rand.Rand) *Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		s.Append(
			sigma*rng.NormFloat64(),
			sigma*rng.NormFloat64(),
			sigma*rng.NormFloat64(),
			2*rng.Float64()-1,
		)
	}
	return s
}

// Lattice returns particles on a regular m x m x m grid spanning [-1,1]^3
// with unit charges; deterministic, used by accuracy golden tests. The
// returned set has m^3 particles.
func Lattice(m int) *Set {
	s := NewSet(m * m * m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			for k := 0; k < m; k++ {
				coord := func(t int) float64 {
					if m == 1 {
						return 0
					}
					return -1 + 2*float64(t)/float64(m-1)
				}
				s.Append(coord(i), coord(j), coord(k), 1)
			}
		}
	}
	return s
}
