package particle

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(4)
	if s.Len() != 0 {
		t.Fatalf("new set has %d particles", s.Len())
	}
	s.Append(1, 2, 3, -0.5)
	s.Append(4, 5, 6, 0.25)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if p := s.At(1); p.X != 4 || p.Y != 5 || p.Z != 6 {
		t.Errorf("At(1) = %v", p)
	}
	s.Swap(0, 1)
	if s.X[0] != 4 || s.Q[0] != 0.25 || s.X[1] != 1 || s.Q[1] != -0.5 {
		t.Errorf("swap failed: %+v", s)
	}
	if tc := s.TotalCharge(); tc != -0.25 {
		t.Errorf("total charge %g", tc)
	}
}

func TestSliceSharesStorage(t *testing.T) {
	s := NewSet(3)
	s.Append(0, 0, 0, 1)
	s.Append(1, 1, 1, 2)
	s.Append(2, 2, 2, 3)
	v := s.Slice(1, 3)
	if v.Len() != 2 || v.Q[0] != 2 {
		t.Fatalf("slice = %+v", v)
	}
	v.Q[0] = 42
	if s.Q[1] != 42 {
		t.Error("slice does not share storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := NewSet(1)
	s.Append(1, 2, 3, 4)
	c := s.Clone()
	c.X[0] = 99
	if s.X[0] != 1 {
		t.Error("clone shares storage")
	}
}

func TestValidate(t *testing.T) {
	s := NewSet(1)
	s.Append(1, 2, 3, 4)
	if err := s.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	s.X = append(s.X, 5)
	if err := s.Validate(); err == nil {
		t.Error("ragged set accepted")
	}
	bad := NewSet(1)
	bad.Append(math.NaN(), 0, 0, 1)
	if err := bad.Validate(); err == nil {
		t.Error("NaN accepted")
	}
	inf := NewSet(1)
	inf.Append(0, math.Inf(1), 0, 1)
	if err := inf.Validate(); err == nil {
		t.Error("Inf accepted")
	}
}

func TestUniformCubeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := UniformCube(10000, rng)
	if s.Len() != 10000 {
		t.Fatalf("len = %d", s.Len())
	}
	b := s.Bounds()
	if b.Lo.X < -1 || b.Hi.X > 1 || b.Lo.Y < -1 || b.Hi.Y > 1 || b.Lo.Z < -1 || b.Hi.Z > 1 {
		t.Errorf("bounds %v escape [-1,1]^3", b)
	}
	// With 10k uniform points the box should nearly fill the cube.
	if b.Size().X < 1.9 || b.Size().Y < 1.9 || b.Size().Z < 1.9 {
		t.Errorf("bounds %v suspiciously small", b)
	}
	for _, q := range s.Q {
		if q < -1 || q > 1 {
			t.Fatalf("charge %g outside [-1,1]", q)
		}
	}
}

func TestUniformBox(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := NewSet(0).Bounds() // empty box; build target box manually below
	_ = b
	s := UniformCube(10, rng)
	box := s.Bounds()
	u := UniformBox(500, box, rng)
	for i := 0; i < u.Len(); i++ {
		if !box.Contains(u.At(i)) {
			t.Fatalf("particle %d at %v outside box %v", i, u.At(i), box)
		}
	}
}

func TestPlummer(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Plummer(20000, 1, rng)
	// Total mass 1.
	if m := s.TotalCharge(); math.Abs(m-1) > 1e-9 {
		t.Errorf("total mass %g, want 1", m)
	}
	// Half-mass radius of a Plummer sphere is ~1.305 a.
	var inside int
	for i := 0; i < s.Len(); i++ {
		if s.At(i).Norm() < 1.305 {
			inside++
		}
	}
	frac := float64(inside) / float64(s.Len())
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("half-mass fraction %.3f, want ~0.5", frac)
	}
}

func TestGaussianBlobCentered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := GaussianBlob(20000, 0.5, rng)
	var mx, my, mz float64
	for i := 0; i < s.Len(); i++ {
		mx += s.X[i]
		my += s.Y[i]
		mz += s.Z[i]
	}
	n := float64(s.Len())
	if math.Abs(mx/n) > 0.02 || math.Abs(my/n) > 0.02 || math.Abs(mz/n) > 0.02 {
		t.Errorf("blob mean (%.3g, %.3g, %.3g) not near origin", mx/n, my/n, mz/n)
	}
}

func TestLattice(t *testing.T) {
	s := Lattice(3)
	if s.Len() != 27 {
		t.Fatalf("lattice has %d particles", s.Len())
	}
	b := s.Bounds()
	if b.Lo.X != -1 || b.Hi.X != 1 {
		t.Errorf("lattice bounds %v", b)
	}
	if s1 := Lattice(1); s1.Len() != 1 || s1.At(0) != s1.Bounds().Center() {
		t.Errorf("unit lattice %+v", s1)
	}
}

func TestPermutationInverse(t *testing.T) {
	p := Permutation{2, 0, 3, 1}
	inv := p.Inverse()
	want := Permutation{1, 3, 0, 2}
	for i := range want {
		if inv[i] != want[i] {
			t.Fatalf("inverse = %v, want %v", inv, want)
		}
	}
}

func TestPermutationValid(t *testing.T) {
	if !(Permutation{1, 0, 2}).Valid() {
		t.Error("valid permutation rejected")
	}
	if (Permutation{0, 0, 2}).Valid() {
		t.Error("duplicate accepted")
	}
	if (Permutation{0, 3, 1}).Valid() {
		t.Error("out of range accepted")
	}
	if !Identity(5).Valid() {
		t.Error("identity invalid")
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		p := Identity(n)
		rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.Float64()
		}
		gathered := make([]float64, n)
		p.GatherInto(gathered, src)
		back := make([]float64, n)
		p.ScatterInto(back, gathered)
		for i := range src {
			if back[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGatherSemantics(t *testing.T) {
	p := Permutation{2, 0, 1}
	src := []float64{10, 20, 30}
	dst := make([]float64, 3)
	p.GatherInto(dst, src)
	if dst[0] != 30 || dst[1] != 10 || dst[2] != 20 {
		t.Errorf("gather = %v", dst)
	}
	out := make([]float64, 3)
	p.ScatterInto(out, dst)
	if out[0] != 10 || out[1] != 20 || out[2] != 30 {
		t.Errorf("scatter = %v", out)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a := UniformCube(100, rand.New(rand.NewSource(42)))
	b := UniformCube(100, rand.New(rand.NewSource(42)))
	for i := 0; i < 100; i++ {
		if a.X[i] != b.X[i] || a.Q[i] != b.Q[i] {
			t.Fatal("same seed produced different particles")
		}
	}
}
