package variants

import (
	"math/rand"
	"testing"

	"barytree/internal/core"
	"barytree/internal/direct"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
	"barytree/internal/particle"
)

func variantParams() core.Params {
	// Leaf sizes well above (degree+1)^3 = 216 so all interaction types
	// actually engage.
	return core.Params{Theta: 0.6, Degree: 5, LeafSize: 400, BatchSize: 400}
}

func TestAllVariantsMatchDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := particle.UniformCube(8000, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	p := variantParams()

	for _, method := range []string{"pc", "cp", "cc"} {
		res, err := Run(method, k, pts, pts, p)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		e := metrics.RelErr2(ref, res.Phi)
		if e > 1e-5 || e == 0 {
			t.Errorf("%s: error %.3g outside (0, 1e-5]", method, e)
		}
		t.Logf("%s: err=%.3g total interactions=%d (pp=%d pc=%d cp=%d cc=%d)",
			method, e, res.Stats.Total(),
			res.Stats.PPInteractions, res.Stats.PCInteractions,
			res.Stats.CPInteractions, res.Stats.CCInteractions)
	}
}

func TestVariantsYukawa(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := particle.UniformCube(5000, rng)
	k := kernel.Yukawa{Kappa: 0.5}
	ref := direct.SumParallel(k, pts, pts, 0)
	for _, method := range []string{"cp", "cc"} {
		res, err := Run(method, k, pts, pts, p6())
		if err != nil {
			t.Fatal(err)
		}
		if e := metrics.RelErr2(ref, res.Phi); e > 1e-5 {
			t.Errorf("%s yukawa error %.3g", method, e)
		}
	}
}

func p6() core.Params {
	return core.Params{Theta: 0.6, Degree: 6, LeafSize: 500, BatchSize: 500}
}

func TestCCUsesProxyToProxy(t *testing.T) {
	// Geometry note: octree leaves snap to ~N/8^d particles; the leaf
	// bound of 700 at N=30000 yields ~469-particle leaves, comfortably
	// above the (5+1)^3 = 216 proxies, so cluster-cluster interactions
	// are admissible.
	rng := rand.New(rand.NewSource(3))
	pts := particle.UniformCube(30000, rng)
	p := core.Params{Theta: 0.6, Degree: 5, LeafSize: 700, BatchSize: 700}
	res, err := RunCC(kernel.Coulomb{}, pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CCPairs == 0 {
		t.Error("cluster-cluster run never used a CC interaction")
	}
	if res.Stats.PPPairs == 0 {
		t.Error("cluster-cluster run never used a direct interaction")
	}
}

func TestCPUsesProxies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := particle.UniformCube(10000, rng)
	res, err := RunCP(kernel.Coulomb{}, pts, pts, variantParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CPPairs == 0 {
		t.Error("cluster-particle run never used a CP interaction")
	}
	if res.Stats.DownwardInterp == 0 {
		t.Error("no downward interpolation happened")
	}
}

func TestCCReducesFarFieldWork(t *testing.T) {
	// The CC scheme's point: proxy-to-proxy interactions cost
	// (n+1)^3 x (n+1)^3 per admissible pair instead of involving every
	// target, so its total far-field work is below PC's at equal
	// parameters (for large enough N).
	rng := rand.New(rand.NewSource(5))
	pts := particle.UniformCube(30000, rng)
	p := core.Params{Theta: 0.7, Degree: 4, LeafSize: 700, BatchSize: 700}
	pc, err := RunPC(kernel.Coulomb{}, pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := RunCC(kernel.Coulomb{}, pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	farPC := pc.Stats.PCInteractions
	farCC := cc.Stats.CCInteractions + cc.Stats.PCInteractions + cc.Stats.CPInteractions
	t.Logf("far-field work: PC=%d CC=%d", farPC, farCC)
	if farCC >= farPC {
		t.Errorf("CC far-field work %d not below PC's %d", farCC, farPC)
	}
}

func TestVariantsErrorConvergesWithDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := particle.UniformCube(6000, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	for _, method := range []string{"cp", "cc"} {
		var prev = 1e300
		for _, n := range []int{2, 4, 6} {
			leaf := (n + 2) * (n + 2) * (n + 2) // keep leaves above the grid size
			p := core.Params{Theta: 0.6, Degree: n, LeafSize: leaf, BatchSize: leaf}
			res, err := Run(method, k, pts, pts, p)
			if err != nil {
				t.Fatal(err)
			}
			e := metrics.RelErr2(ref, res.Phi)
			if e > prev*1.5 && e > 1e-12 {
				t.Errorf("%s degree %d: error %.3g did not decrease from %.3g", method, n, e, prev)
			}
			prev = e
		}
		if prev > 1e-4 {
			t.Errorf("%s degree 6 error %.3g too large", method, prev)
		}
	}
}

func TestDisjointTargetsSources(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	targets := particle.UniformCube(2000, rng)
	sources := particle.UniformCube(6000, rng)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, targets, sources, 0)
	for _, method := range []string{"cp", "cc"} {
		res, err := Run(method, k, targets, sources, variantParams())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Phi) != targets.Len() {
			t.Fatalf("%s: %d potentials for %d targets", method, len(res.Phi), targets.Len())
		}
		if e := metrics.RelErr2(ref, res.Phi); e > 1e-5 {
			t.Errorf("%s disjoint error %.3g", method, e)
		}
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	pts := particle.UniformCube(100, rand.New(rand.NewSource(8)))
	if _, err := Run("fmm", kernel.Coulomb{}, pts, pts, variantParams()); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestBadParamsRejected(t *testing.T) {
	pts := particle.UniformCube(100, rand.New(rand.NewSource(9)))
	bad := core.Params{Theta: 0, Degree: 3, LeafSize: 10, BatchSize: 10}
	if _, err := RunCP(kernel.Coulomb{}, pts, pts, bad); err == nil {
		t.Error("CP accepted bad params")
	}
	if _, err := RunCC(kernel.Coulomb{}, pts, pts, bad); err == nil {
		t.Error("CC accepted bad params")
	}
}
