// Package variants implements the barycentric *cluster-particle* and
// *cluster-cluster* treecodes that the paper lists as future work for GPU
// acceleration (conclusions, refs [30]-[32]; the cluster-cluster scheme
// became the authors' follow-up dual-tree code, BLDTT).
//
// All three schemes share the same ingredients — cluster trees, Chebyshev
// grids, the MAC — and differ in which side of the interaction is
// compressed:
//
//   - particle-cluster (PC, the paper's BLTC; package core): source
//     clusters carry modified charges q-hat; targets sum over source
//     proxies.
//   - cluster-particle (CP): *target* clusters carry accumulated proxy
//     potentials phi-hat at their Chebyshev points; sources scatter into
//     them, and a downward interpolation pass (L2L + L2P in FMM language)
//     delivers the potential to each target.
//   - cluster-cluster (CC): both compressions at once; well-separated
//     cluster pairs interact proxy-to-proxy, which lowers the interaction
//     count from O(N_B (n+1)^3) to O((n+1)^6) per admissible pair.
//
// These run on the CPU backend; they reuse the same kernels, grids and
// charge machinery as package core, so accuracy properties carry over.
package variants

import (
	"fmt"

	"barytree/internal/core"
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/tree"
)

// Stats counts the interaction work of a variant run, split by interaction
// type (PP = particle-particle direct, PC = particle with source proxies,
// CP = target proxies with particles, CC = proxy with proxy).
type Stats struct {
	PPPairs, PCPairs, CPPairs, CCPairs                             int
	PPInteractions, PCInteractions, CPInteractions, CCInteractions int64
	MACTests                                                       int
	DownwardInterp                                                 int64 // L2L + L2P interpolation evaluations
}

// Total returns all pairwise kernel/proxy evaluations.
func (s Stats) Total() int64 {
	return s.PPInteractions + s.PCInteractions + s.CPInteractions + s.CCInteractions
}

// Result is the output of a variant run.
type Result struct {
	Phi   []float64 // potentials in original target order
	Stats Stats
}

// clusterPotentials holds the accumulated proxy potentials phi-hat of every
// target cluster.
type clusterPotentials struct {
	data [][]float64 // per target node, length (n+1)^3
}

func newClusterPotentials(t *tree.Tree, np int) *clusterPotentials {
	cp := &clusterPotentials{data: make([][]float64, len(t.Nodes))}
	for i := range cp.data {
		cp.data[i] = make([]float64, np)
	}
	return cp
}

// RunCP evaluates the potentials with the cluster-particle treecode: the
// dual of the paper's BLTC. Source particles are grouped into the leaves
// of a source tree (the analogue of target batches); each group scatters
// either directly into target particles or into the Chebyshev proxies of a
// well-separated target cluster; a downward pass interpolates the
// accumulated proxies to the targets.
func RunCP(k kernel.Kernel, targets, sources *particle.Set, p core.Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tt := tree.Build(targets, p.BatchSize)
	st := tree.Build(sources, p.LeafSize)
	if len(tt.Nodes) == 0 {
		return &Result{Phi: nil}, nil
	}
	tcd := core.NewClusterData(tt, p.Degree)
	np := tcd.Grids[0].NumPoints()
	phiHat := newClusterPotentials(tt, np)
	phi := make([]float64, targets.Len()) // tree order
	res := &Result{}

	// Scatter every source leaf into the target tree through the tiled fast
	// path (resolved once for the whole run).
	tk := kernel.AsTile(k)
	for _, si := range st.Leaves() {
		s := &st.Nodes[si]
		scatterCP(tk, tt, tcd, st.Particles, s, phiHat, phi, &res.Stats, p)
	}

	// Downward pass: L2L to leaves, then L2P to particles.
	downward(tt, tcd, phiHat, phi, &res.Stats)

	res.Phi = make([]float64, targets.Len())
	tt.Perm.ScatterInto(res.Phi, phi)
	return res, nil
}

// scatterCP walks the target tree for one source leaf s.
func scatterCP(tk kernel.TileKernel, tt *tree.Tree, tcd *core.ClusterData, src *particle.Set,
	s *tree.Node, phiHat *clusterPotentials, phi []float64, st *Stats, p core.Params) {

	np := tcd.Grids[0].NumPoints()
	stack := []int32{int32(tt.Root())}
	for len(stack) > 0 {
		ti := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := &tt.Nodes[ti]
		st.MACTests++
		dist := t.Center.Dist(s.Center)
		wellSeparated := (t.Radius + s.Radius) < p.Theta*dist
		if wellSeparated && np < t.Count() {
			// CP: accumulate onto the target cluster's proxies.
			scatterProxies(tk, tcd.PX[ti], tcd.PY[ti], tcd.PZ[ti], phiHat.data[ti],
				src.X[s.Lo:s.Hi], src.Y[s.Lo:s.Hi], src.Z[s.Lo:s.Hi], src.Q[s.Lo:s.Hi])
			st.CPPairs++
			st.CPInteractions += int64(np) * int64(s.Count())
			continue
		}
		if wellSeparated || t.IsLeaf() {
			// Direct: every target in t against every source in s. (When
			// well-separated but the cluster is smaller than its grid,
			// direct is cheaper and exact, mirroring the PC size check.)
			directRange(tk, tt.Particles, t.Lo, t.Hi, src, s.Lo, s.Hi, phi)
			st.PPPairs++
			st.PPInteractions += int64(t.Count()) * int64(s.Count())
			continue
		}
		stack = append(stack, t.Children...)
	}
}

// scatterProxies accumulates one source block into a target cluster's
// proxy potentials dst: the proxy points are the tile targets, seeded from
// and stored back to dst, so each proxy's add chain is exactly the
// per-proxy block path's. The ragged tail takes the single-target path.
//
//hot:path
func scatterProxies(tk kernel.TileKernel, px, py, pz, dst, sx, sy, sz, sq []float64) {
	var t core.TargetTile
	m := 0
	for ; m+kernel.TileWidth <= len(dst); m += kernel.TileWidth {
		t.LoadProxies(px, py, pz, m)
		t.LoadPotentials(dst, m)
		core.EvalApproxTileBlock(tk, &t, sx, sy, sz, sq)
		t.Store(dst, m)
	}
	for ; m < len(dst); m++ {
		dst[m] += tk.EvalBlockAccum(px[m], py[m], pz[m], sx, sy, sz, sq)
	}
}

// directRange accumulates source particles [sLo, sHi) into targets
// [lo, hi) through the tiled fast path, single-target tail included.
//
//hot:path
func directRange(tk kernel.TileKernel, tg *particle.Set, lo, hi int, src *particle.Set, sLo, sHi int, phi []float64) {
	var t core.TargetTile
	i := lo
	for ; i+kernel.TileWidth <= hi; i += kernel.TileWidth {
		t.LoadParticles(tg, i)
		t.LoadPotentials(phi, i)
		core.EvalDirectTileBlock(tk, &t, src, sLo, sHi)
		t.Store(phi, i)
	}
	for ; i < hi; i++ {
		phi[i] += core.EvalDirectTargetBlock(tk, tg, i, src, sLo, sHi)
	}
}

// approxRange accumulates a proxy block (source cluster's Chebyshev points
// with modified charges) into targets [lo, hi) through the tiled fast
// path, single-target tail included.
//
//hot:path
func approxRange(tk kernel.TileKernel, tg *particle.Set, lo, hi int, px, py, pz, qhat, phi []float64) {
	var t core.TargetTile
	i := lo
	for ; i+kernel.TileWidth <= hi; i += kernel.TileWidth {
		t.LoadParticles(tg, i)
		t.LoadPotentials(phi, i)
		core.EvalApproxTileBlock(tk, &t, px, py, pz, qhat)
		t.Store(phi, i)
	}
	for ; i < hi; i++ {
		phi[i] += core.EvalApproxTargetBlock(tk, tg, i, px, py, pz, qhat)
	}
}

// downward pushes accumulated proxy potentials from parents into children
// (evaluating the parent's interpolant at the child's Chebyshev points) and
// finally interpolates each leaf's proxies to its particles.
func downward(tt *tree.Tree, tcd *core.ClusterData, phiHat *clusterPotentials, phi []float64, st *Stats) {
	// Nodes are stored parent-before-children (construction order), so a
	// forward sweep is a correct topological order.
	for ti := range tt.Nodes {
		t := &tt.Nodes[ti]
		src := phiHat.data[ti]
		if t.IsLeaf() {
			g := tcd.Grids[ti]
			for i := t.Lo; i < t.Hi; i++ {
				phi[i] += g.Interpolate(src, tt.Particles.At(i))
				st.DownwardInterp++
			}
			continue
		}
		for _, ci := range t.Children {
			g := tcd.Grids[ti]
			dst := phiHat.data[ci]
			cg := tcd.Grids[ci]
			for m := range dst {
				dst[m] += g.Interpolate(src, cg.Point(m))
				st.DownwardInterp++
			}
		}
	}
}

// RunCC evaluates the potentials with the cluster-cluster (dual tree
// traversal) treecode: modified charges compress the source side, proxy
// potentials compress the target side, and well-separated cluster pairs
// interact proxy-to-proxy.
func RunCC(k kernel.Kernel, targets, sources *particle.Set, p core.Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tt := tree.Build(targets, p.BatchSize)
	st := tree.Build(sources, p.LeafSize)
	if len(tt.Nodes) == 0 || len(st.Nodes) == 0 {
		return &Result{Phi: make([]float64, targets.Len())}, nil
	}
	tcd := core.NewClusterData(tt, p.Degree)
	scd := core.NewClusterData(st, p.Degree)
	scd.ComputeCharges(st, 0) // upward pass: source modified charges

	np := tcd.Grids[0].NumPoints()
	phiHat := newClusterPotentials(tt, np)
	phi := make([]float64, targets.Len())
	res := &Result{}

	// Resolve the tiled fast path once for the whole dual traversal.
	tk := kernel.AsTile(k)
	var dual func(ti, si int32)
	dual = func(ti, si int32) {
		t := &tt.Nodes[ti]
		s := &st.Nodes[si]
		res.Stats.MACTests++
		dist := t.Center.Dist(s.Center)
		if (t.Radius + s.Radius) < p.Theta*dist {
			bigT := np < t.Count()
			bigS := np < s.Count()
			switch {
			case bigT && bigS:
				// CC: proxies-to-proxies.
				scatterProxies(tk, tcd.PX[ti], tcd.PY[ti], tcd.PZ[ti], phiHat.data[ti],
					scd.PX[si], scd.PY[si], scd.PZ[si], scd.Qhat[si])
				res.Stats.CCPairs++
				res.Stats.CCInteractions += int64(np) * int64(len(scd.Qhat[si]))
			case bigS:
				// PC: targets of t against source proxies (the BLTC form).
				approxRange(tk, tt.Particles, t.Lo, t.Hi,
					scd.PX[si], scd.PY[si], scd.PZ[si], scd.Qhat[si], phi)
				res.Stats.PCPairs++
				res.Stats.PCInteractions += int64(t.Count()) * int64(np)
			case bigT:
				// CP: target proxies against source particles.
				scatterProxies(tk, tcd.PX[ti], tcd.PY[ti], tcd.PZ[ti], phiHat.data[ti],
					st.Particles.X[s.Lo:s.Hi], st.Particles.Y[s.Lo:s.Hi], st.Particles.Z[s.Lo:s.Hi],
					st.Particles.Q[s.Lo:s.Hi])
				res.Stats.CPPairs++
				res.Stats.CPInteractions += int64(np) * int64(s.Count())
			default:
				directPP(tk, tt, t, st, s, phi, &res.Stats)
			}
			return
		}
		// Not well separated: split the larger cluster.
		switch {
		case t.IsLeaf() && s.IsLeaf():
			directPP(tk, tt, t, st, s, phi, &res.Stats)
		case s.IsLeaf() || (!t.IsLeaf() && t.Radius >= s.Radius):
			for _, ci := range t.Children {
				dual(ci, si)
			}
		default:
			for _, ci := range s.Children {
				dual(ti, ci)
			}
		}
	}
	dual(int32(tt.Root()), int32(st.Root()))

	downward(tt, tcd, phiHat, phi, &res.Stats)

	res.Phi = make([]float64, targets.Len())
	tt.Perm.ScatterInto(res.Phi, phi)
	return res, nil
}

func directPP(tk kernel.TileKernel, tt *tree.Tree, t *tree.Node, st *tree.Tree, s *tree.Node, phi []float64, stats *Stats) {
	directRange(tk, tt.Particles, t.Lo, t.Hi, st.Particles, s.Lo, s.Hi, phi)
	stats.PPPairs++
	stats.PPInteractions += int64(t.Count()) * int64(s.Count())
}

// RunPC evaluates the potentials with the paper's particle-cluster BLTC
// (package core) and adapts the result to this package's Result type, so
// the three variants can be compared uniformly.
func RunPC(k kernel.Kernel, targets, sources *particle.Set, p core.Params) (*Result, error) {
	pl, err := core.NewPlan(targets, sources, p)
	if err != nil {
		return nil, err
	}
	r := core.RunCPU(pl, k, core.CPUOptions{})
	return &Result{
		Phi: r.Phi,
		Stats: Stats{
			PPPairs:        r.Interactions.DirectPairs,
			PCPairs:        r.Interactions.ApproxPairs,
			PPInteractions: r.Interactions.DirectInteractions,
			PCInteractions: r.Interactions.ApproxInteractions,
			MACTests:       r.Interactions.MACTests,
		},
	}, nil
}

// Run dispatches by name ("pc", "cp", "cc"); it is the entry point used by
// the comparison bench and cmd tooling.
func Run(method string, k kernel.Kernel, targets, sources *particle.Set, p core.Params) (*Result, error) {
	switch method {
	case "pc":
		return RunPC(k, targets, sources, p)
	case "cp":
		return RunCP(k, targets, sources, p)
	case "cc":
		return RunCC(k, targets, sources, p)
	}
	return nil, fmt.Errorf("variants: unknown method %q (want pc, cp or cc)", method)
}
