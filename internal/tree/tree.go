// Package tree builds the hierarchical source-cluster octree and the
// localized target batches of the barycentric Lagrange treecode (Section 2.4
// of the paper).
//
// The root cluster is the minimal bounding box containing all source
// particles. A cluster is recursively divided at the midpoint of its
// bounding box; only dimensions whose side exceeds (longest side)/sqrt(2)
// are bisected, so a division produces 2, 4 or 8 children and children stay
// near-cubic even when recursive coordinate bisection hands a rank a skewed
// subdomain (Section 3.1). Recursion stops when a cluster holds LeafSize or
// fewer particles. Every node's box is shrunk to the minimal bounding box of
// its own particles, which is what guarantees that some particle coordinates
// coincide with Chebyshev interpolation-point coordinates (Section 2.3).
//
// Target batches are produced by the same partitioning routine applied to
// the target particles with bound BatchSize; when targets and sources are
// the same particles and BatchSize == LeafSize the batches coincide with the
// source-tree leaves, as in all of the paper's experiments.
package tree

import (
	"fmt"
	"math"

	"barytree/internal/geom"
	"barytree/internal/particle"
	"barytree/internal/trace"
)

// MaxAspectRatio is the sqrt(2) bound from the paper: a dimension is only
// bisected when doing so cannot leave children with aspect ratio beyond this
// bound relative to the longest side.
var MaxAspectRatio = math.Sqrt2

// Node is one cluster in the source tree (or one internal node of the batch
// partition). Particle indices refer to the tree-ordered particle set and
// occupy the contiguous range [Lo, Hi).
type Node struct {
	Box      geom.Box // minimal bounding box of the node's particles
	Center   geom.Vec3
	Radius   float64 // half box diagonal, the r_C of the MAC
	Lo, Hi   int     // particle range in tree order
	Parent   int32   // index of parent node, -1 for the root
	Children []int32 // indices of child nodes; empty for leaves
	Level    int     // depth, root = 0
}

// Count returns the number of particles in the node.
func (nd *Node) Count() int { return nd.Hi - nd.Lo }

// IsLeaf reports whether the node has no children.
func (nd *Node) IsLeaf() bool { return len(nd.Children) == 0 }

// BuildStats counts the work done during tree construction; the performance
// model converts these into modeled setup-phase time.
type BuildStats struct {
	Nodes         int // nodes created
	Leaves        int // leaf nodes
	ParticleMoves int // particle swaps during partitioning
	ParticleScans int // particle visits during box shrinking + partitioning
	MaxDepth      int
}

// TraceSpan emits a build-category span for the construction these stats
// describe, annotated with the node/leaf/depth counts and the particle
// traffic the performance model charges for it. Construction itself runs
// on the host wall clock, so the modeled interval [start, end] is supplied
// by the caller, which owns the rank's virtual clock. Safe on a nil tracer.
func (s BuildStats) TraceSpan(tr *trace.Tracer, name string, rank int, start, end float64) {
	tr.Span(name, trace.CatBuild, rank, trace.TrackHost, start, end,
		trace.A("nodes", s.Nodes), trace.A("leaves", s.Leaves),
		trace.A("max_depth", s.MaxDepth),
		trace.A("particle_scans", s.ParticleScans),
		trace.A("particle_moves", s.ParticleMoves))
}

// Tree is the cluster hierarchy over a (re-ordered) particle set.
type Tree struct {
	Nodes     []Node
	Particles *particle.Set        // tree-ordered deep copy of the input
	Perm      particle.Permutation // Perm[treeIndex] = original index
	LeafSize  int
	Stats     BuildStats
}

// Root returns the index of the root node (always 0 for a non-empty tree).
func (t *Tree) Root() int { return 0 }

// Leaves returns the indices of all leaf nodes in construction order.
func (t *Tree) Leaves() []int32 {
	var out []int32
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			out = append(out, int32(i))
		}
	}
	return out
}

// Build constructs the cluster tree over src with the given leaf size. The
// input set is not modified; the tree holds a reordered copy plus the
// permutation back to input order. Build panics if leafSize < 1 and returns
// an empty tree for an empty input.
func Build(src *particle.Set, leafSize int) *Tree {
	if leafSize < 1 {
		panic(fmt.Sprintf("tree: leaf size must be >= 1, got %d", leafSize))
	}
	t := &Tree{
		Particles: src.Clone(),
		Perm:      particle.Identity(src.Len()),
		LeafSize:  leafSize,
	}
	if src.Len() == 0 {
		return t
	}
	t.build(-1, 0, src.Len(), 0)
	return t
}

// build creates the node covering particle range [lo, hi) and recursively
// partitions it. It returns the index of the created node.
func (t *Tree) build(parent int32, lo, hi, level int) int32 {
	idx := int32(len(t.Nodes))
	box := t.shrinkBox(lo, hi)
	t.Nodes = append(t.Nodes, Node{
		Box:    box,
		Center: box.Center(),
		Radius: box.Radius(),
		Lo:     lo,
		Hi:     hi,
		Parent: parent,
		Level:  level,
	})
	t.Stats.Nodes++
	if level > t.Stats.MaxDepth {
		t.Stats.MaxDepth = level
	}
	if hi-lo <= t.LeafSize {
		t.Stats.Leaves++
		return idx
	}

	dims := splitDims(box)
	ranges := t.partition(lo, hi, box, dims)
	if len(ranges) <= 1 {
		// All particles landed in one cell (coincident points): stop.
		t.Stats.Leaves++
		return idx
	}
	children := make([]int32, 0, len(ranges))
	for _, r := range ranges {
		children = append(children, t.build(idx, r[0], r[1], level+1))
	}
	t.Nodes[idx].Children = children
	return idx
}

// shrinkBox computes the minimal bounding box of particles [lo, hi).
func (t *Tree) shrinkBox(lo, hi int) geom.Box {
	t.Stats.ParticleScans += hi - lo
	p := t.Particles
	return geom.BoundingBox(p.X[lo:hi], p.Y[lo:hi], p.Z[lo:hi])
}

// splitDims selects the dimensions to bisect: every dimension whose side
// exceeds (longest side)/MaxAspectRatio. The longest dimension is always
// selected.
func splitDims(box geom.Box) []int {
	long, _ := box.LongestSide()
	threshold := long / MaxAspectRatio
	var dims []int
	s := box.Size()
	for d, side := range [3]float64{s.X, s.Y, s.Z} {
		if side >= threshold && side > 0 {
			dims = append(dims, d)
		}
	}
	if len(dims) == 0 {
		// Degenerate box (all sides zero): no split possible.
		return nil
	}
	return dims
}

// partition splits the particle range [lo, hi) at the box midpoints of the
// chosen dimensions, producing up to 2^len(dims) contiguous sub-ranges. It
// returns the non-empty ranges in cell order.
func (t *Tree) partition(lo, hi int, box geom.Box, dims []int) [][2]int {
	ranges := [][2]int{{lo, hi}}
	for _, d := range dims {
		mid := (box.Lo.Component(d) + box.Hi.Component(d)) / 2
		next := ranges[:0:0]
		for _, r := range ranges {
			m := t.hoare(r[0], r[1], d, mid)
			if m > r[0] {
				next = append(next, [2]int{r[0], m})
			}
			if m < r[1] {
				next = append(next, [2]int{m, r[1]})
			}
		}
		ranges = next
	}
	return ranges
}

// hoare partitions particles [lo, hi) so that those with coordinate d < mid
// come first; it returns the index of the first particle with coordinate
// >= mid.
func (t *Tree) hoare(lo, hi, d int, mid float64) int {
	p := t.Particles
	coord := p.X
	switch d {
	case 1:
		coord = p.Y
	case 2:
		coord = p.Z
	}
	i, j := lo, hi
	for i < j {
		for i < j && coord[i] < mid {
			i++
		}
		for i < j && coord[j-1] >= mid {
			j--
		}
		if i < j-1 {
			p.Swap(i, j-1)
			t.Perm[i], t.Perm[j-1] = t.Perm[j-1], t.Perm[i]
			t.Stats.ParticleMoves++
			i++
			j--
		}
	}
	t.Stats.ParticleScans += hi - lo
	return i
}

// Validate checks the structural invariants of the tree and returns an error
// describing the first violation found. It is used by tests and by the
// distributed driver's debug mode.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		if t.Particles.Len() != 0 {
			return fmt.Errorf("tree: no nodes but %d particles", t.Particles.Len())
		}
		return nil
	}
	if !t.Perm.Valid() {
		return fmt.Errorf("tree: permutation is not a bijection")
	}
	root := &t.Nodes[0]
	if root.Lo != 0 || root.Hi != t.Particles.Len() {
		return fmt.Errorf("tree: root covers [%d,%d), want [0,%d)", root.Lo, root.Hi, t.Particles.Len())
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Count() <= 0 {
			return fmt.Errorf("tree: node %d is empty", i)
		}
		for j := nd.Lo; j < nd.Hi; j++ {
			if !nd.Box.Contains(t.Particles.At(j)) {
				return fmt.Errorf("tree: node %d box %v does not contain particle %d at %v",
					i, nd.Box, j, t.Particles.At(j))
			}
		}
		if nd.IsLeaf() {
			continue
		}
		// Children must tile the parent's range contiguously.
		pos := nd.Lo
		for _, c := range nd.Children {
			ch := &t.Nodes[c]
			if ch.Parent != int32(i) {
				return fmt.Errorf("tree: node %d has wrong parent %d, want %d", c, ch.Parent, i)
			}
			if ch.Lo != pos {
				return fmt.Errorf("tree: child %d of node %d starts at %d, want %d", c, i, ch.Lo, pos)
			}
			if !nd.Box.ContainsBox(ch.Box) {
				return fmt.Errorf("tree: child %d box %v escapes parent %d box %v", c, ch.Box, i, nd.Box)
			}
			pos = ch.Hi
		}
		if pos != nd.Hi {
			return fmt.Errorf("tree: children of node %d end at %d, want %d", i, pos, nd.Hi)
		}
	}
	return nil
}

// Batch is a geometrically localized group of target particles (Section 2.4).
// Indices refer to the batch-ordered target set and occupy [Lo, Hi).
type Batch struct {
	Center geom.Vec3
	Radius float64 // the r_B of the MAC
	Lo, Hi int
}

// Count returns the number of targets in the batch.
func (b *Batch) Count() int { return b.Hi - b.Lo }

// BatchSet holds the target batches and the batch-ordered target particles.
type BatchSet struct {
	Batches   []Batch
	Targets   *particle.Set
	Perm      particle.Permutation // Perm[batchOrderIndex] = original index
	BatchSize int
	Stats     BuildStats
}

// BuildBatches partitions the target particles into localized batches of at
// most batchSize targets using the same recursive partitioning routine as
// the source tree: the batches are exactly the leaves of a cluster tree with
// leaf size batchSize.
func BuildBatches(targets *particle.Set, batchSize int) *BatchSet {
	t := Build(targets, batchSize)
	bs := &BatchSet{
		Targets:   t.Particles,
		Perm:      t.Perm,
		BatchSize: batchSize,
		Stats:     t.Stats,
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.IsLeaf() {
			bs.Batches = append(bs.Batches, Batch{
				Center: nd.Center,
				Radius: nd.Radius,
				Lo:     nd.Lo,
				Hi:     nd.Hi,
			})
		}
	}
	return bs
}
