// Package tree builds the hierarchical source-cluster octree and the
// localized target batches of the barycentric Lagrange treecode (Section 2.4
// of the paper).
//
// The root cluster is the minimal bounding box containing all source
// particles. A cluster is recursively divided at the midpoint of its
// bounding box; only dimensions whose side exceeds (longest side)/sqrt(2)
// are bisected, so a division produces 2, 4 or 8 children and children stay
// near-cubic even when recursive coordinate bisection hands a rank a skewed
// subdomain (Section 3.1). Recursion stops when a cluster holds LeafSize or
// fewer particles. Every node's box is shrunk to the minimal bounding box of
// its own particles, which is what guarantees that some particle coordinates
// coincide with Chebyshev interpolation-point coordinates (Section 2.3).
//
// Target batches are produced by the same partitioning routine applied to
// the target particles with bound BatchSize; when targets and sources are
// the same particles and BatchSize == LeafSize the batches coincide with the
// source-tree leaves, as in all of the paper's experiments.
//
// Construction is parallel (BuildWorkers / BuildBatchesWorkers) and
// bit-identical to the serial build for every worker count: the top of the
// tree is partitioned with chunk-parallel box scans and a parallel Hoare
// partition that reproduces the serial swap set exactly, independent
// subtrees over disjoint particle ranges are built concurrently, and the
// finished subtrees are spliced back into the exact serial construction
// order. See docs/performance.md ("The setup phase") for the design and
// the bit-identity argument.
package tree

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"barytree/internal/geom"
	"barytree/internal/particle"
	"barytree/internal/pool"
	"barytree/internal/trace"
)

// MaxAspectRatio is the sqrt(2) bound from the paper: a dimension is only
// bisected when doing so cannot leave children with aspect ratio beyond this
// bound relative to the longest side.
var MaxAspectRatio = math.Sqrt2

// Parallel-construction thresholds. Variables (not constants) so the
// package tests can lower them and exercise every parallel code path on
// small inputs; real builds only fan out where the ranges are large enough
// to amortize goroutine handoff.
var (
	// parScanMin is the smallest particle range whose box-shrink scans and
	// Hoare partitions run chunk-parallel (top-of-tree nodes only).
	parScanMin = 1 << 15
	// parSwapMin is the smallest number of out-of-place pairs worth
	// swapping on the worker pool rather than inline.
	parSwapMin = 1 << 12
	// tasksPerWorker controls subtree-task granularity: child ranges at or
	// below n/(tasksPerWorker*workers) particles become independent
	// subtree tasks, so each worker gets several tasks to balance load.
	tasksPerWorker = 4
)

// Node is one cluster in the source tree (or one internal node of the batch
// partition). Particle indices refer to the tree-ordered particle set and
// occupy the contiguous range [Lo, Hi).
type Node struct {
	Box      geom.Box // minimal bounding box of the node's particles
	Center   geom.Vec3
	Radius   float64 // half box diagonal, the r_C of the MAC
	Lo, Hi   int     // particle range in tree order
	Parent   int32   // index of parent node, -1 for the root
	Children []int32 // indices of child nodes; empty for leaves
	Level    int     // depth, root = 0
}

// Count returns the number of particles in the node.
func (nd *Node) Count() int { return nd.Hi - nd.Lo }

// IsLeaf reports whether the node has no children.
func (nd *Node) IsLeaf() bool { return len(nd.Children) == 0 }

// BuildStats counts the work done during tree construction; the performance
// model converts these into modeled setup-phase time. The counters describe
// the partitioning algorithm, not its host execution, so they are identical
// for every worker count.
type BuildStats struct {
	Nodes         int // nodes created
	Leaves        int // leaf nodes
	ParticleMoves int // particle swaps during partitioning
	ParticleScans int // particle visits during box shrinking + partitioning
	MaxDepth      int
}

// TraceSpan emits a build-category span for the construction these stats
// describe, annotated with the node/leaf/depth counts and the particle
// traffic the performance model charges for it. Construction itself runs
// on the host wall clock, so the modeled interval [start, end] is supplied
// by the caller, which owns the rank's virtual clock. Safe on a nil tracer.
func (s BuildStats) TraceSpan(tr *trace.Tracer, name string, rank int, start, end float64) {
	tr.Span(name, trace.CatBuild, rank, trace.TrackHost, start, end,
		trace.A("nodes", s.Nodes), trace.A("leaves", s.Leaves),
		trace.A("max_depth", s.MaxDepth),
		trace.A("particle_scans", s.ParticleScans),
		trace.A("particle_moves", s.ParticleMoves))
}

// add accumulates o into s. All fields are sums (or a max) of per-node
// counts, so accumulation in any grouping reproduces the serial totals
// exactly.
func (s *BuildStats) add(o BuildStats) {
	s.Nodes += o.Nodes
	s.Leaves += o.Leaves
	s.ParticleMoves += o.ParticleMoves
	s.ParticleScans += o.ParticleScans
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
}

// Tree is the cluster hierarchy over a (re-ordered) particle set.
type Tree struct {
	Nodes     []Node
	Particles *particle.Set        // tree-ordered deep copy of the input
	Perm      particle.Permutation // Perm[treeIndex] = original index
	LeafSize  int
	Stats     BuildStats
}

// Root returns the index of the root node (always 0 for a non-empty tree).
func (t *Tree) Root() int { return 0 }

// Leaves returns the indices of all leaf nodes in construction order. The
// result is sized exactly from Stats.Leaves up front; the fill loop is
// allocation-free (LeavesInto).
func (t *Tree) Leaves() []int32 {
	return t.LeavesInto(make([]int32, t.Stats.Leaves))
}

// LeavesInto fills dst (which must have length Stats.Leaves) with the leaf
// node indices in construction order and returns it.
//
//hot:path
func (t *Tree) LeavesInto(dst []int32) []int32 {
	k := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			dst[k] = int32(i)
			k++
		}
	}
	return dst
}

// Build constructs the cluster tree over src with the given leaf size using
// all available cores; it is BuildWorkers with the default worker count.
// The input set is not modified; the tree holds a reordered copy plus the
// permutation back to input order. Build panics if leafSize < 1 or src is
// nil and returns an empty tree for an empty input.
func Build(src *particle.Set, leafSize int) *Tree {
	return BuildWorkers(src, leafSize, 0)
}

// BuildWorkers is Build with an explicit worker bound (workers <= 0 selects
// GOMAXPROCS, 1 is the serial build). The output — Nodes, Perm, the
// reordered Particles and Stats — is bit-identical for every worker count;
// workers only bounds the host goroutines used for construction.
//
// The argument checks run before any path is chosen, so the parallel path
// can never be entered with a nil particle set or an invalid leaf size:
// both paths fail with the same panic, and the empty-input and single-node
// cases never spawn a goroutine.
func BuildWorkers(src *particle.Set, leafSize, workers int) *Tree {
	if leafSize < 1 {
		panic(fmt.Sprintf("tree: leaf size must be >= 1, got %d", leafSize))
	}
	if src == nil {
		panic("tree: nil particle set")
	}
	t := &Tree{
		Particles: src.Clone(),
		Perm:      particle.Identity(src.Len()),
		LeafSize:  leafSize,
	}
	n := src.Len()
	if n == 0 {
		return t
	}
	b := &builder{
		p:        t.Particles,
		perm:     t.Perm,
		leafSize: leafSize,
		workers:  pool.Workers(n, workers),
	}
	// Serial fast path: one worker, or a tree that is a single leaf.
	if b.workers == 1 || n <= leafSize {
		b.workers = 1
		b.nodes = make([]Node, 0, nodeCapHint(n, leafSize))
		b.build(-1, 0, n, 0)
	} else {
		b.buildParallel(n)
	}
	t.Nodes = b.nodes
	t.Stats = b.stats
	return t
}

// nodeCapHint estimates the node count for preallocation: leaves hold at
// least leafSize/2^3 particles on typical distributions, and internal nodes
// are bounded by the leaf count. An undershoot only costs slice growth.
func nodeCapHint(n, leafSize int) int {
	return 4*(n/leafSize) + 8
}

// builder holds the mutable state of one construction. The particle set and
// permutation are shared by every subtree task (tasks own disjoint index
// ranges); nodes and stats are private to the builder.
type builder struct {
	p        *particle.Set
	perm     particle.Permutation
	leafSize int
	workers  int // host goroutine bound; 1 disables every parallel path

	nodes []Node
	stats BuildStats

	// Top-of-tree parallel construction state.
	skel  []skelNode
	tasks []subtreeTask

	// Scratch for the chunk-parallel scans, reused across nodes.
	chunkBoxes []geom.Box
	chunkCnt   []int
	posL, posR []int
}

// build creates the node covering particle range [lo, hi) and recursively
// partitions it, serially. It returns the index of the created node. This
// is the reference construction order: the parallel path reproduces its
// output exactly.
func (b *builder) build(parent int32, lo, hi, level int) int32 {
	idx := int32(len(b.nodes))
	box := b.shrinkBox(lo, hi)
	b.nodes = append(b.nodes, Node{
		Box:    box,
		Center: box.Center(),
		Radius: box.Radius(),
		Lo:     lo,
		Hi:     hi,
		Parent: parent,
		Level:  level,
	})
	b.stats.Nodes++
	if level > b.stats.MaxDepth {
		b.stats.MaxDepth = level
	}
	if hi-lo <= b.leafSize {
		b.stats.Leaves++
		return idx
	}

	dims := splitDims(box)
	var ranges [8][2]int
	nr := b.partition(lo, hi, box, dims, &ranges)
	if nr <= 1 {
		// All particles landed in one cell (coincident points): stop.
		b.stats.Leaves++
		return idx
	}
	children := make([]int32, 0, nr)
	for _, r := range ranges[:nr] {
		children = append(children, b.build(idx, r[0], r[1], level+1))
	}
	b.nodes[idx].Children = children
	return idx
}

// shrinkBox computes the minimal bounding box of particles [lo, hi). Large
// ranges scan chunk-parallel; the chunk results are combined left to right
// with the same first-wins comparisons as the serial scan, so the box bits
// do not depend on the worker count or chunking.
func (b *builder) shrinkBox(lo, hi int) geom.Box {
	b.stats.ParticleScans += hi - lo
	if b.workers > 1 && hi-lo >= parScanMin {
		return b.shrinkBoxPar(lo, hi)
	}
	return boundsRange(b.p, lo, hi)
}

// boundsRange is the serial minimal-bounding-box scan over [lo, hi), which
// must be non-empty. Plain comparisons keep the first-encountered value on
// ties (only observable for inputs mixing -0 and +0), a rule preserved by
// the left-to-right chunk combination in shrinkBoxPar.
func boundsRange(p *particle.Set, lo, hi int) geom.Box {
	xs, ys, zs := p.X[lo:hi], p.Y[lo:hi], p.Z[lo:hi]
	box := geom.Box{
		Lo: geom.Vec3{X: xs[0], Y: ys[0], Z: zs[0]},
		Hi: geom.Vec3{X: xs[0], Y: ys[0], Z: zs[0]},
	}
	for i := 1; i < len(xs); i++ {
		x, y, z := xs[i], ys[i], zs[i]
		if x < box.Lo.X {
			box.Lo.X = x
		}
		if x > box.Hi.X {
			box.Hi.X = x
		}
		if y < box.Lo.Y {
			box.Lo.Y = y
		}
		if y > box.Hi.Y {
			box.Hi.Y = y
		}
		if z < box.Lo.Z {
			box.Lo.Z = z
		}
		if z > box.Hi.Z {
			box.Hi.Z = z
		}
	}
	return box
}

func (b *builder) shrinkBoxPar(lo, hi int) geom.Box {
	n := hi - lo
	w := pool.Workers(n, b.workers)
	if cap(b.chunkBoxes) < w {
		b.chunkBoxes = make([]geom.Box, w)
	}
	boxes := b.chunkBoxes[:w]
	pool.Blocks(n, b.workers, func(wi, clo, chi int) {
		boxes[wi] = boundsRange(b.p, lo+clo, lo+chi)
	})
	box := boxes[0]
	for _, c := range boxes[1:] {
		combineBox(&box, c)
	}
	return box
}

// combineBox extends dst to cover c with the same first-wins strict
// comparisons as boundsRange (the difference from geom.Box.Union is only
// observable for inputs mixing -0 and +0). Both the chunk-parallel shrink
// and the bottom-up refit (RefitBoxesWorkers) combine left to right through
// this helper, which is what keeps their boxes bit-identical to a serial
// scan of the underlying particles.
func combineBox(dst *geom.Box, c geom.Box) {
	if c.Lo.X < dst.Lo.X {
		dst.Lo.X = c.Lo.X
	}
	if c.Hi.X > dst.Hi.X {
		dst.Hi.X = c.Hi.X
	}
	if c.Lo.Y < dst.Lo.Y {
		dst.Lo.Y = c.Lo.Y
	}
	if c.Hi.Y > dst.Hi.Y {
		dst.Hi.Y = c.Hi.Y
	}
	if c.Lo.Z < dst.Lo.Z {
		dst.Lo.Z = c.Lo.Z
	}
	if c.Hi.Z > dst.Hi.Z {
		dst.Hi.Z = c.Hi.Z
	}
}

// splitDims selects the dimensions to bisect: every dimension whose side
// exceeds (longest side)/MaxAspectRatio. The longest dimension is always
// selected.
func splitDims(box geom.Box) []int {
	long, _ := box.LongestSide()
	threshold := long / MaxAspectRatio
	var dims []int
	s := box.Size()
	for d, side := range [3]float64{s.X, s.Y, s.Z} {
		if side >= threshold && side > 0 {
			dims = append(dims, d)
		}
	}
	if len(dims) == 0 {
		// Degenerate box (all sides zero): no split possible.
		return nil
	}
	return dims
}

// partition splits the particle range [lo, hi) at the box midpoints of the
// chosen dimensions, producing up to 2^len(dims) contiguous sub-ranges. It
// fills out with the non-empty ranges in cell order and returns their
// count.
func (b *builder) partition(lo, hi int, box geom.Box, dims []int, out *[8][2]int) int {
	out[0] = [2]int{lo, hi}
	n := 1
	var tmp [8][2]int
	for _, d := range dims {
		mid := (box.Lo.Component(d) + box.Hi.Component(d)) / 2
		t := 0
		for i := 0; i < n; i++ {
			r0, r1 := out[i][0], out[i][1]
			m := b.hoare(r0, r1, d, mid)
			if m > r0 {
				tmp[t] = [2]int{r0, m}
				t++
			}
			if m < r1 {
				tmp[t] = [2]int{m, r1}
				t++
			}
		}
		*out = tmp
		n = t
	}
	return n
}

// coord returns the coordinate slice of dimension d.
func (b *builder) coord(d int) []float64 {
	switch d {
	case 1:
		return b.p.Y
	case 2:
		return b.p.Z
	}
	return b.p.X
}

// swap exchanges particles i and j together with their permutation entries.
func (b *builder) swap(i, j int) {
	b.p.Swap(i, j)
	b.perm[i], b.perm[j] = b.perm[j], b.perm[i]
}

// hoare partitions particles [lo, hi) so that those with coordinate d < mid
// come first; it returns the index of the first particle with coordinate
// >= mid. Large ranges take the parallel path, which performs the exact
// same swaps.
func (b *builder) hoare(lo, hi, d int, mid float64) int {
	if b.workers > 1 && hi-lo >= parScanMin {
		return b.hoarePar(lo, hi, d, mid)
	}
	coord := b.coord(d)
	i, j := lo, hi
	for i < j {
		for i < j && coord[i] < mid {
			i++
		}
		for i < j && coord[j-1] >= mid {
			j--
		}
		if i < j-1 {
			b.swap(i, j-1)
			b.stats.ParticleMoves++
			i++
			j--
		}
	}
	b.stats.ParticleScans += hi - lo
	return i
}

// hoarePar is the chunk-parallel Hoare partition. The serial loop always
// exchanges the k-th out-of-place element from the left (coordinate >= mid
// below the split point) with the k-th out-of-place element from the right
// (coordinate < mid above it), so the swap set — and therefore the final
// particle order, the permutation and the move count — is a pure function
// of the data, computable without the sequential two-pointer walk: count
// the elements below mid to locate the split point, collect the two
// out-of-place position lists, and swap pairs in parallel.
func (b *builder) hoarePar(lo, hi, d int, mid float64) int {
	n := hi - lo
	coord := b.coord(d)
	w := pool.Workers(n, b.workers)
	if cap(b.chunkCnt) < w {
		b.chunkCnt = make([]int, w)
	}
	cnt := b.chunkCnt[:w]
	pool.Blocks(n, b.workers, func(wi, clo, chi int) {
		c := 0
		for _, v := range coord[lo+clo : lo+chi] {
			if v < mid {
				c++
			}
		}
		cnt[wi] = c
	})
	less := 0
	for _, c := range cnt {
		less += c
	}
	m := lo + less
	b.stats.ParticleScans += n // same counter as the serial walk
	if m == lo || m == hi {
		return m
	}

	k := b.collect(coord, lo, m, mid, true, &b.posL)
	kr := b.collect(coord, m, hi, mid, false, &b.posR)
	if k != kr {
		panic("tree: internal error: unbalanced hoare partition")
	}
	posL, posR := b.posL[:k], b.posR[:k]
	if b.workers > 1 && k >= parSwapMin {
		pool.Blocks(k, b.workers, func(_, tlo, thi int) {
			for t := tlo; t < thi; t++ {
				b.swap(posL[t], posR[k-1-t])
			}
		})
	} else {
		for t := 0; t < k; t++ {
			b.swap(posL[t], posR[k-1-t])
		}
	}
	b.stats.ParticleMoves += k
	return m
}

// collect gathers into *dst the positions in [lo, hi) whose coordinate is
// >= mid (ge) or < mid (!ge), in ascending order, and returns their count.
// The chunk scans run on the worker pool; each chunk writes its positions
// at its prefix-sum offset, so the output order matches a serial scan.
func (b *builder) collect(coord []float64, lo, hi int, mid float64, ge bool, dst *[]int) int {
	n := hi - lo
	w := pool.Workers(n, b.workers)
	cnt := make([]int, w)
	pool.Blocks(n, b.workers, func(wi, clo, chi int) {
		c := 0
		for _, v := range coord[lo+clo : lo+chi] {
			if (v >= mid) == ge {
				c++
			}
		}
		cnt[wi] = c
	})
	total := 0
	for wi := range cnt {
		cnt[wi], total = total, total+cnt[wi]
	}
	if cap(*dst) < total {
		*dst = make([]int, total)
	}
	out := (*dst)[:total]
	pool.Blocks(n, b.workers, func(wi, clo, chi int) {
		at := cnt[wi]
		for p := lo + clo; p < lo+chi; p++ {
			if (coord[p] >= mid) == ge {
				out[at] = p
				at++
			}
		}
	})
	return total
}

// --- Parallel top-of-tree construction -----------------------------------

// skelNode is a node of the serially-built top of the tree; its children
// are either further skeleton nodes or subtree tasks.
type skelNode struct {
	node     Node
	children []skelChild
}

// skelChild points at a skeleton node (skel >= 0) or a subtree task
// (task >= 0); exactly one is set.
type skelChild struct {
	skel, task int
}

// subtreeTask is one independently-built subtree: a particle range finalized
// by the top-of-tree partitioning, built serially by one worker into a
// locally-indexed node buffer and spliced into the final node slice at base.
type subtreeTask struct {
	lo, hi, level int
	parent        int32 // final index of the parent node (set during numbering)
	base          int   // final index of the task's root (set during numbering)
	nodes         []Node
	stats         BuildStats
}

// buildParallel constructs the tree over [0, n) with the builder's worker
// budget: serial top-of-tree recursion with parallel scans, concurrent
// subtree tasks over disjoint ranges, then a deterministic renumbering
// that reproduces the serial construction order exactly.
func (b *builder) buildParallel(n int) {
	cutoff := n / (tasksPerWorker * b.workers)
	if cutoff < b.leafSize {
		cutoff = b.leafSize
	}
	b.buildTop(0, n, 0, cutoff)

	// Run the subtree tasks on the worker pool. Tasks vary in size, so
	// workers pull from a shared counter rather than owning fixed ranges;
	// the schedule does not affect the output, since every task writes
	// only its own node buffer and its disjoint particle range.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < min(b.workers, len(b.tasks)); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ti := int(cursor.Add(1)) - 1
				if ti >= len(b.tasks) {
					return
				}
				b.runTask(&b.tasks[ti])
			}
		}()
	}
	wg.Wait()

	for i := range b.tasks {
		b.stats.add(b.tasks[i].stats)
	}
	out := make([]Node, b.stats.Nodes)
	next := 0
	b.number(out, 0, -1, &next)
	if next != b.stats.Nodes {
		panic("tree: internal error: node numbering mismatch")
	}
	pool.For(len(b.tasks), b.workers, func(ti int) {
		spliceTask(out, &b.tasks[ti])
	})
	b.nodes = out
	b.skel, b.tasks = nil, nil
}

// buildTop creates the node covering [lo, hi) in the skeleton and
// recursively partitions it, handing child ranges of at most cutoff
// particles off as subtree tasks. The recursion itself is serial — node
// discovery order defines the construction order — but the scans and
// partitions of these large top ranges run on the worker pool.
func (b *builder) buildTop(lo, hi, level, cutoff int) int {
	si := len(b.skel)
	b.skel = append(b.skel, skelNode{})
	box := b.shrinkBox(lo, hi)
	nd := Node{
		Box:    box,
		Center: box.Center(),
		Radius: box.Radius(),
		Lo:     lo,
		Hi:     hi,
		Level:  level,
	}
	b.stats.Nodes++
	if level > b.stats.MaxDepth {
		b.stats.MaxDepth = level
	}
	// Top nodes always exceed cutoff >= leafSize particles, except the
	// root of a small build, which the caller routes serially; keep the
	// leaf check anyway so the invariant is local.
	if hi-lo <= b.leafSize {
		b.stats.Leaves++
		b.skel[si] = skelNode{node: nd}
		return si
	}
	dims := splitDims(box)
	var ranges [8][2]int
	nr := b.partition(lo, hi, box, dims, &ranges)
	if nr <= 1 {
		b.stats.Leaves++
		b.skel[si] = skelNode{node: nd}
		return si
	}
	children := make([]skelChild, 0, nr)
	for _, r := range ranges[:nr] {
		if r[1]-r[0] <= cutoff {
			b.tasks = append(b.tasks, subtreeTask{lo: r[0], hi: r[1], level: level + 1})
			children = append(children, skelChild{skel: -1, task: len(b.tasks) - 1})
		} else {
			ci := b.buildTop(r[0], r[1], level+1, cutoff)
			children = append(children, skelChild{skel: ci, task: -1})
		}
	}
	b.skel[si] = skelNode{node: nd, children: children}
	return si
}

// runTask builds one subtree serially into the task's private node buffer.
// The sub-builder shares the particle set and permutation — the task owns
// [lo, hi) exclusively — and runs with one worker, so it is exactly the
// serial recursion.
func (b *builder) runTask(t *subtreeTask) {
	tb := builder{
		p:        b.p,
		perm:     b.perm,
		leafSize: b.leafSize,
		workers:  1,
		nodes:    make([]Node, 0, nodeCapHint(t.hi-t.lo, b.leafSize)),
	}
	tb.build(-1, t.lo, t.hi, t.level)
	t.nodes = tb.nodes
	t.stats = tb.stats
}

// number walks the skeleton depth-first — the serial construction order —
// assigning final node indices: skeleton nodes are written to out directly,
// subtree tasks reserve a contiguous index block for spliceTask. It returns
// the final index of skeleton node si.
func (b *builder) number(out []Node, si int, parent int32, next *int) int32 {
	idx := int32(*next)
	*next++
	sn := &b.skel[si]
	nd := sn.node
	nd.Parent = parent
	if len(sn.children) > 0 {
		nd.Children = make([]int32, len(sn.children))
	}
	for ci, ch := range sn.children {
		if ch.task >= 0 {
			t := &b.tasks[ch.task]
			t.parent = idx
			t.base = *next
			nd.Children[ci] = int32(t.base)
			*next += len(t.nodes)
		} else {
			nd.Children[ci] = b.number(out, ch.skel, idx, next)
		}
	}
	out[idx] = nd
	return idx
}

// spliceTask copies a finished subtree into its reserved index block,
// shifting the task-local node references by the block base.
func spliceTask(out []Node, t *subtreeTask) {
	base := int32(t.base)
	for j := range t.nodes {
		nd := t.nodes[j]
		if j == 0 {
			nd.Parent = t.parent
		} else {
			nd.Parent += base
		}
		for ci := range nd.Children {
			nd.Children[ci] += base
		}
		out[t.base+j] = nd
	}
}

// Validate checks the structural invariants of the tree and returns an error
// describing the first violation found. It is used by tests and by the
// distributed driver's debug mode.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		if t.Particles.Len() != 0 {
			return fmt.Errorf("tree: no nodes but %d particles", t.Particles.Len())
		}
		return nil
	}
	if !t.Perm.Valid() {
		return fmt.Errorf("tree: permutation is not a bijection")
	}
	root := &t.Nodes[0]
	if root.Lo != 0 || root.Hi != t.Particles.Len() {
		return fmt.Errorf("tree: root covers [%d,%d), want [0,%d)", root.Lo, root.Hi, t.Particles.Len())
	}
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Count() <= 0 {
			return fmt.Errorf("tree: node %d is empty", i)
		}
		for j := nd.Lo; j < nd.Hi; j++ {
			if !nd.Box.Contains(t.Particles.At(j)) {
				return fmt.Errorf("tree: node %d box %v does not contain particle %d at %v",
					i, nd.Box, j, t.Particles.At(j))
			}
		}
		if nd.IsLeaf() {
			continue
		}
		// Children must tile the parent's range contiguously.
		pos := nd.Lo
		for _, c := range nd.Children {
			ch := &t.Nodes[c]
			if ch.Parent != int32(i) {
				return fmt.Errorf("tree: node %d has wrong parent %d, want %d", c, ch.Parent, i)
			}
			if ch.Lo != pos {
				return fmt.Errorf("tree: child %d of node %d starts at %d, want %d", c, i, ch.Lo, pos)
			}
			if !nd.Box.ContainsBox(ch.Box) {
				return fmt.Errorf("tree: child %d box %v escapes parent %d box %v", c, ch.Box, i, nd.Box)
			}
			pos = ch.Hi
		}
		if pos != nd.Hi {
			return fmt.Errorf("tree: children of node %d end at %d, want %d", i, pos, nd.Hi)
		}
	}
	return nil
}

// Batch is a geometrically localized group of target particles (Section 2.4).
// Indices refer to the batch-ordered target set and occupy [Lo, Hi).
type Batch struct {
	Center geom.Vec3
	Radius float64 // the r_B of the MAC
	Lo, Hi int
}

// Count returns the number of targets in the batch.
func (b *Batch) Count() int { return b.Hi - b.Lo }

// BatchSet holds the target batches and the batch-ordered target particles.
type BatchSet struct {
	Batches   []Batch
	Targets   *particle.Set
	Perm      particle.Permutation // Perm[batchOrderIndex] = original index
	BatchSize int
	Stats     BuildStats
}

// BuildBatches partitions the target particles into localized batches of at
// most batchSize targets using the same recursive partitioning routine as
// the source tree: the batches are exactly the leaves of a cluster tree with
// leaf size batchSize. It is BuildBatchesWorkers with the default worker
// count.
func BuildBatches(targets *particle.Set, batchSize int) *BatchSet {
	return BuildBatchesWorkers(targets, batchSize, 0)
}

// BuildBatchesWorkers is BuildBatches with an explicit worker bound
// (workers <= 0 selects GOMAXPROCS, 1 is the serial build). Like
// BuildWorkers, the output is bit-identical for every worker count.
func BuildBatchesWorkers(targets *particle.Set, batchSize, workers int) *BatchSet {
	return BatchSetFromTree(BuildWorkers(targets, batchSize, workers))
}
