package tree

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"barytree/internal/particle"
)

// lowerThresholds shrinks the parallel-path thresholds so that small test
// inputs exercise the chunk-parallel scans, the parallel Hoare swaps and
// multi-task subtree construction; it restores them on cleanup.
func lowerThresholds(t testing.TB) {
	t.Helper()
	oldScan, oldSwap, oldTasks := parScanMin, parSwapMin, tasksPerWorker
	parScanMin, parSwapMin, tasksPerWorker = 8, 4, 2
	t.Cleanup(func() { parScanMin, parSwapMin, tasksPerWorker = oldScan, oldSwap, oldTasks })
}

// workerCounts are the worker bounds every determinism test compares
// against the serial build.
func workerCounts() []int {
	return []int{2, 3, 4, 7, 8, runtime.GOMAXPROCS(0)}
}

// degenerateSets returns the adversarial particle distributions of the
// bit-identity tests: uniform, clustered, coincident, collinear, heavy
// duplicates, signed zeros, and sets no larger than a leaf.
func degenerateSets(n int) map[string]*particle.Set {
	rng := rand.New(rand.NewSource(11))
	sets := map[string]*particle.Set{
		"uniform": particle.UniformCube(n, rng),
		"blob":    particle.GaussianBlob(n, 0.3, rng),
	}
	coincident := particle.NewSet(n)
	for i := 0; i < n; i++ {
		coincident.Append(0.25, -0.5, 0.75, float64(i))
	}
	sets["coincident"] = coincident
	collinear := particle.NewSet(n)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		collinear.Append(x, 2*x, -x, 1)
	}
	sets["collinear"] = collinear
	dup := particle.NewSet(n)
	for i := 0; i < n; i++ {
		v := float64(i % 7)
		dup.Append(v, -v, v/2, float64(i))
	}
	sets["duplicates"] = dup
	zeros := particle.NewSet(n)
	for i := 0; i < n; i++ {
		x := 0.0
		if i%2 == 0 {
			x = math.Copysign(0, -1)
		}
		zeros.Append(x, float64(i%3)-1, 0, 1)
	}
	sets["signed-zeros"] = zeros
	small := particle.UniformCube(5, rng)
	sets["tiny"] = small
	return sets
}

// TestBuildWorkersDeterministic pins the tentpole contract: the full Tree —
// Nodes (order, boxes, ranges, topology), the reordered Particles, Perm and
// Stats — deep-equals the serial build for every worker count, on every
// degenerate distribution, with the parallel paths forced on.
func TestBuildWorkersDeterministic(t *testing.T) {
	lowerThresholds(t)
	for name, pts := range degenerateSets(4096) {
		for _, leaf := range []int{1, 7, 64, 5000} {
			want := BuildWorkers(pts, leaf, 1)
			if err := want.Validate(); err != nil {
				t.Fatalf("%s leaf=%d: serial tree invalid: %v", name, leaf, err)
			}
			for _, w := range workerCounts() {
				got := BuildWorkers(pts, leaf, w)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s leaf=%d workers=%d: tree differs from serial", name, leaf, w)
				}
			}
		}
	}
}

// TestBuildBatchesWorkersDeterministic is the same contract for the batch
// partition.
func TestBuildBatchesWorkersDeterministic(t *testing.T) {
	lowerThresholds(t)
	for name, pts := range degenerateSets(4096) {
		want := BuildBatchesWorkers(pts, 50, 1)
		for _, w := range workerCounts() {
			got := BuildBatchesWorkers(pts, 50, w)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s workers=%d: batches differ from serial", name, w)
			}
		}
	}
}

// TestBuildWorkersProperty drives random distributions through the
// parallel build and checks Validate plus serial equality.
func TestBuildWorkersProperty(t *testing.T) {
	lowerThresholds(t)
	f := func(seed int64, nRaw uint16, leafRaw uint8, wRaw uint8) bool {
		n := int(nRaw%2000) + 1
		leaf := int(leafRaw%100) + 1
		w := int(wRaw%8) + 1
		pts := particle.UniformCube(n, rand.New(rand.NewSource(seed)))
		want := BuildWorkers(pts, leaf, 1)
		got := BuildWorkers(pts, leaf, w)
		return want.Validate() == nil && got.Validate() == nil &&
			reflect.DeepEqual(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBuildWorkers feeds fuzzer-chosen coordinates (including NaN-free
// degenerate layouts the fuzzer discovers) through every worker count and
// requires a valid tree identical to serial.
func FuzzBuildWorkers(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(3))
	f.Add(int64(2), uint16(1), uint8(1))
	f.Add(int64(3), uint16(513), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, leafRaw uint8) {
		lowerThresholds(t)
		n := int(nRaw % 3000)
		leaf := int(leafRaw%64) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := particle.NewSet(n)
		for i := 0; i < n; i++ {
			// Quantized coordinates generate many exact duplicates and
			// shared coordinate values, the hard cases for partitioning.
			pts.Append(float64(rng.Intn(32))/8-2, float64(rng.Intn(32))/8-2,
				float64(rng.Intn(32))/8-2, rng.Float64())
		}
		want := BuildWorkers(pts, leaf, 1)
		if err := want.Validate(); err != nil {
			t.Fatalf("serial tree invalid: %v", err)
		}
		for _, w := range []int{2, 5, runtime.GOMAXPROCS(0)} {
			got := BuildWorkers(pts, leaf, w)
			if err := got.Validate(); err != nil {
				t.Fatalf("workers=%d: invalid tree: %v", w, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d: tree differs from serial", w)
			}
		}
	})
}

// TestBuildWorkersPanicsMatchSerial pins the bugfix guard: the argument
// checks run before the serial/parallel split, so both paths reject bad
// input with the same panic.
func TestBuildWorkersPanicsMatchSerial(t *testing.T) {
	mustPanic := func(fn func()) (msg string) {
		defer func() { msg = fmt.Sprint(recover()) }()
		fn()
		t.Fatal("no panic")
		return ""
	}
	pts := particle.UniformCube(10, rand.New(rand.NewSource(1)))
	for _, bad := range []int{0, -3} {
		serial := mustPanic(func() { BuildWorkers(pts, bad, 1) })
		parallel := mustPanic(func() { BuildWorkers(pts, bad, 4) })
		want := fmt.Sprintf("tree: leaf size must be >= 1, got %d", bad)
		if serial != want || parallel != want {
			t.Fatalf("leafSize=%d panics: serial %q, parallel %q, want %q", bad, serial, parallel, want)
		}
	}
	serial := mustPanic(func() { BuildWorkers(nil, 10, 1) })
	parallel := mustPanic(func() { BuildWorkers(nil, 10, 4) })
	if serial != "tree: nil particle set" || serial != parallel {
		t.Fatalf("nil-set panics: serial %q, parallel %q", serial, parallel)
	}
}

// TestBuildWorkersFastPaths pins the empty-input and single-node cases:
// both return without spawning the parallel machinery and are identical
// across worker counts.
func TestBuildWorkersFastPaths(t *testing.T) {
	empty := particle.NewSet(0)
	for _, w := range []int{1, 4} {
		tr := BuildWorkers(empty, 10, w)
		if len(tr.Nodes) != 0 || tr.Stats != (BuildStats{}) {
			t.Fatalf("workers=%d: empty input built %d nodes, stats %+v", w, len(tr.Nodes), tr.Stats)
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	small := particle.UniformCube(8, rand.New(rand.NewSource(4)))
	want := BuildWorkers(small, 20, 1)
	if len(want.Nodes) != 1 || want.Stats.Leaves != 1 {
		t.Fatalf("single-node build produced %d nodes", len(want.Nodes))
	}
	for _, w := range workerCounts() {
		got := BuildWorkers(small, 20, w)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: single-node tree differs", w)
		}
	}
}

// TestLeavesPreallocated pins the Leaves satellite: the returned slice is
// sized exactly from Stats.Leaves (no append growth) and matches the
// construction-order leaf walk.
func TestLeavesPreallocated(t *testing.T) {
	pts := particle.UniformCube(3000, rand.New(rand.NewSource(9)))
	tr := Build(pts, 100)
	leaves := tr.Leaves()
	if len(leaves) != tr.Stats.Leaves || cap(leaves) != tr.Stats.Leaves {
		t.Fatalf("Leaves len=%d cap=%d, want both %d", len(leaves), cap(leaves), tr.Stats.Leaves)
	}
	k := 0
	for i := range tr.Nodes {
		if tr.Nodes[i].IsLeaf() {
			if leaves[k] != int32(i) {
				t.Fatalf("leaf %d = %d, want %d", k, leaves[k], i)
			}
			k++
		}
	}
}
