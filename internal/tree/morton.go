// Morton-ordered construction: an alternative, canonical build of the
// cluster tree for dynamic simulations (ROADMAP item 1).
//
// The midpoint-split build (tree.go) derives its partition planes from the
// shrunken boxes of whatever ordering the particles arrive in, so after
// particles drift there is no cheap way to reconcile an existing tree with
// a freshly built one. The Morton build removes that obstacle by making the
// whole structure a pure function of the multiset of particles:
//
//  1. the quantization domain is a snapped cube (power-of-two side with 2x
//     headroom, corner snapped to the half-side grid) so small motion never
//     changes it;
//  2. every particle gets a 63-bit Morton (Z-order) code, and the tree order
//     is the particles sorted by (code, original index) — a strict total
//     order, so the sorted sequence is unique;
//  3. the topology is derived from the sorted codes alone: a node splits
//     into its non-empty octants (3-bit digit groups), skipping digit levels
//     shared by all of its codes, until a node holds at most LeafSize
//     particles or its codes are exhausted;
//  4. every box is the minimal bounding box of the node's own particles,
//     computed by one shared bottom-up refit routine.
//
// Because every step is canonical, an incremental repair that merely
// restores the sorted order after drift (per-leaf re-sorts plus a merge of
// the particles that left their leaf's cell) reproduces the fresh build
// bit for bit — boxes, permutation, statistics and all. That identity is
// what Plan.Update's repair path is built on; see docs/performance.md.
package tree

import (
	"math"
	"math/bits"
	"slices"
	"sort"

	"barytree/internal/geom"
	"barytree/internal/particle"
	"barytree/internal/pool"
)

// MortonBits is the per-dimension quantization depth: 21 bits per axis
// interleave into a 63-bit code with the top bit clear.
const MortonBits = 21

// mortonTopShift is the bit shift of the most significant 3-bit digit.
const mortonTopShift = 3 * (MortonBits - 1)

// SnapMortonDomain returns the Morton quantization cube for particles with
// bounding box b: the side is the smallest power of two at least twice the
// longest side of b (1 for a degenerate point), and the lower corner is b's
// corner snapped down to multiples of half the side. The 2x headroom plus
// grid snapping make the domain stable: particles can drift by a quarter of
// the cube side in any direction before a fresh build would pick a
// different domain, so an update can detect "same domain" with an exact
// comparison.
func SnapMortonDomain(b geom.Box) geom.Box {
	s := b.Size()
	long := s.X
	if s.Y > long {
		long = s.Y
	}
	if s.Z > long {
		long = s.Z
	}
	side := 1.0
	if long > 0 {
		frac, exp := math.Frexp(2 * long) // 2*long = frac * 2^exp, frac in [0.5, 1)
		if frac == 0.5 {
			exp--
		}
		side = math.Ldexp(1, exp)
	}
	if math.IsInf(side, 0) {
		// Astronomically wide inputs: fall back to an unsnapped cube. The
		// result is still a pure function of the bounds.
		side = math.MaxFloat64
		return geom.Box{Lo: b.Lo, Hi: geom.Vec3{X: b.Lo.X + side, Y: b.Lo.Y + side, Z: b.Lo.Z + side}}
	}
	g := side / 2
	lo := geom.Vec3{
		X: math.Floor(b.Lo.X/g) * g,
		Y: math.Floor(b.Lo.Y/g) * g,
		Z: math.Floor(b.Lo.Z/g) * g,
	}
	return geom.Box{Lo: lo, Hi: geom.Vec3{X: lo.X + side, Y: lo.Y + side, Z: lo.Z + side}}
}

// spread3 spaces the low 21 bits of v three apart (bit i moves to bit 3i).
func spread3(v uint64) uint64 {
	v &= 0x1fffff
	v = (v | v<<32) & 0x1f00000000ffff
	v = (v | v<<16) & 0x1f0000ff0000ff
	v = (v | v<<8) & 0x100f00f00f00f00f
	v = (v | v<<4) & 0x10c30c30c30c30c3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// MortonEncode quantizes (x, y, z) against the domain cube and interleaves
// the three 21-bit cell coordinates into a 63-bit Morton code. Coordinates
// outside the domain clamp to the boundary cells.
func MortonEncode(domain geom.Box, x, y, z float64) uint64 {
	side := domain.Hi.X - domain.Lo.X
	scale := float64(uint64(1)<<MortonBits) / side
	cell := func(v, lo float64) uint64 {
		f := (v - lo) * scale
		if !(f > 0) { // also catches NaN from side == Inf underflow
			return 0
		}
		c := uint64(f)
		if c > 1<<MortonBits-1 {
			c = 1<<MortonBits - 1
		}
		return c
	}
	return spread3(cell(x, domain.Lo.X)) |
		spread3(cell(y, domain.Lo.Y))<<1 |
		spread3(cell(z, domain.Lo.Z))<<2
}

// MortonIndex is the per-plan state of a Morton-mode tree: the quantization
// domain, the code of every particle in tree order (as of the last build,
// update or repair), and each node's Morton cell for O(1) membership checks.
type MortonIndex struct {
	Domain geom.Box
	// Codes[i] is the Morton code of tree-order particle i.
	Codes []uint64
	// CellPrefix[n] and CellShift[n] describe node n's Morton cell: a code c
	// belongs to the cell iff c>>CellShift[n] == CellPrefix[n]>>CellShift[n].
	// For a node whose particles share one code the cell is that single code
	// (shift 0).
	CellPrefix []uint64
	CellShift  []uint8
}

// EncodeInto fills dst (grown as needed) with the Morton codes of every
// particle of p, in p's order, against the index's domain, and returns it.
// Encoding is embarrassingly parallel; workers only bounds host goroutines.
func (mi *MortonIndex) EncodeInto(dst []uint64, p *particle.Set, workers int) []uint64 {
	n := p.Len()
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	pool.Blocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = MortonEncode(mi.Domain, p.X[i], p.Y[i], p.Z[i])
		}
	})
	return dst
}

// cellOf returns the smallest Morton cell (digit-aligned code prefix)
// containing both a and b, as a masked prefix and the shift below it.
func cellOf(a, b uint64) (prefix uint64, shift uint8) {
	if a == b {
		return a, 0
	}
	s := (uint8(bits.Len64(a^b)) + 2) / 3 * 3 // round the differing bit up to a digit boundary
	return a >> s << s, s
}

// BuildMorton is BuildMortonWorkers with the default worker count.
func BuildMorton(src *particle.Set, leafSize int) (*Tree, *MortonIndex) {
	return BuildMortonWorkers(src, leafSize, 0)
}

// BuildMortonWorkers constructs the canonical Morton-ordered cluster tree
// over src: particles sorted by (Morton code, input index), topology derived
// from the sorted codes by octant splitting with shared-digit skipping, and
// minimal boxes from RefitBoxesWorkers. The input set is not modified. The
// output is bit-identical for every worker count, and — unlike the midpoint
// build — it is a pure function of the particle multiset with input order
// only breaking code ties, which is what makes incremental repair
// (MortonRepair) able to reproduce a fresh build exactly.
func BuildMortonWorkers(src *particle.Set, leafSize, workers int) (*Tree, *MortonIndex) {
	if leafSize < 1 {
		panic("tree: leaf size must be >= 1")
	}
	if src == nil {
		panic("tree: nil particle set")
	}
	n := src.Len()
	t := &Tree{
		Particles: src.Clone(),
		Perm:      particle.Identity(n),
		LeafSize:  leafSize,
	}
	mi := &MortonIndex{}
	if n == 0 {
		return t, mi
	}
	mi.Domain = SnapMortonDomain(src.Bounds())

	inCodes := mi.EncodeInto(nil, src, workers)
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	slices.SortFunc(ord, func(a, b int32) int {
		if inCodes[a] != inCodes[b] {
			if inCodes[a] < inCodes[b] {
				return -1
			}
			return 1
		}
		return int(a - b)
	})

	mi.Codes = make([]uint64, n)
	pool.Blocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			o := ord[i]
			t.Particles.X[i] = src.X[o]
			t.Particles.Y[i] = src.Y[o]
			t.Particles.Z[i] = src.Z[o]
			t.Particles.Q[i] = src.Q[o]
			t.Perm[i] = int(o)
			mi.Codes[i] = inCodes[o]
		}
	})

	deriveMortonTopology(t, mi)
	t.RefitBoxesWorkers(workers)
	return t, mi
}

// deriveMortonTopology (re)derives t's nodes, cells and build statistics
// from the sorted codes in mi.Codes — the canonical topology shared by
// fresh builds and repairs. Boxes are not set; callers follow with
// RefitBoxesWorkers.
func deriveMortonTopology(t *Tree, mi *MortonIndex) {
	n := len(mi.Codes)
	mb := &mortonBuilder{
		codes:    mi.Codes,
		leafSize: t.LeafSize,
		nodes:    make([]Node, 0, nodeCapHint(n, t.LeafSize)),
	}
	// The sort's gather pass moves every particle once; charge it like the
	// midpoint build charges its partition swaps.
	mb.stats.ParticleMoves = n
	mb.build(-1, 0, n, 0, mortonTopShift)
	t.Nodes = mb.nodes
	t.Stats = mb.stats
	mi.CellPrefix = mb.prefix
	mi.CellShift = mb.shift
}

// mortonBuilder derives the canonical topology from sorted Morton codes.
type mortonBuilder struct {
	codes    []uint64
	leafSize int
	nodes    []Node
	prefix   []uint64
	shift    []uint8
	stats    BuildStats
}

func digit3(c uint64, shift int) uint64 { return c >> uint(shift) & 7 }

// build creates the node over sorted-code range [lo, hi) and recursively
// splits it by the first 3-bit digit level (at or below shift) where its
// codes differ. Digit levels shared by every code in the range are skipped,
// so a chain of single-occupancy octants collapses into one edge and the
// depth stays bounded by the code length regardless of clustering.
func (b *mortonBuilder) build(parent int32, lo, hi, level, shift int) int32 {
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Lo: lo, Hi: hi, Parent: parent, Level: level})
	p, s := cellOf(b.codes[lo], b.codes[hi-1])
	b.prefix = append(b.prefix, p)
	b.shift = append(b.shift, s)
	b.stats.Nodes++
	if level > b.stats.MaxDepth {
		b.stats.MaxDepth = level
	}
	b.stats.ParticleScans += hi - lo // box refit scan
	if hi-lo <= b.leafSize {
		b.stats.Leaves++
		return idx
	}
	for shift >= 0 && digit3(b.codes[lo], shift) == digit3(b.codes[hi-1], shift) {
		shift -= 3
	}
	if shift < 0 {
		// Every code in the range is identical (coincident particles up to
		// quantization): no further split is possible.
		b.stats.Leaves++
		return idx
	}
	b.stats.ParticleScans += hi - lo // partition scan
	children := make([]int32, 0, 8)
	for pos := lo; pos < hi; {
		// First code outside the current octant: the octant's codes are a
		// contiguous run of the sorted range, found by binary search.
		limit := (b.codes[pos]>>uint(shift) + 1) << uint(shift)
		end := pos + sort.Search(hi-pos, func(k int) bool { return b.codes[pos+k] >= limit })
		children = append(children, b.build(idx, pos, end, level+1, shift-3))
		pos = end
	}
	b.nodes[idx].Children = children
	return idx
}

// RefitBoxesWorkers recomputes every node's minimal bounding box — and the
// Center and Radius the MAC reads — from the current particle coordinates:
// leaf boxes by scanning their particle ranges (parallel over nodes),
// internal boxes bottom-up by combining child boxes left to right with the
// same first-wins comparisons as the build scans. Nodes are stored in
// preorder (children after parents), so one reverse sweep suffices. For
// unchanged coordinates the refit is idempotent bit for bit; after
// coordinates change it yields exactly the boxes a fresh build of the same
// topology would produce.
func (t *Tree) RefitBoxesWorkers(workers int) {
	if len(t.Nodes) == 0 {
		return
	}
	pool.For(len(t.Nodes), workers, func(i int) {
		nd := &t.Nodes[i]
		if !nd.IsLeaf() {
			return
		}
		nd.Box = boundsRange(t.Particles, nd.Lo, nd.Hi)
		nd.Center = nd.Box.Center()
		nd.Radius = nd.Box.Radius()
	})
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		nd := &t.Nodes[i]
		if nd.IsLeaf() {
			continue
		}
		box := t.Nodes[nd.Children[0]].Box
		for _, c := range nd.Children[1:] {
			combineBox(&box, t.Nodes[c].Box)
		}
		nd.Box = box
		nd.Center = box.Center()
		nd.Radius = box.Radius()
	}
}

// Drifters appends to out the tree positions (ascending) whose new code has
// left its leaf's Morton cell — the particles an incremental repair must
// re-bucket. codes holds the new codes in tree order.
func (mi *MortonIndex) Drifters(t *Tree, codes []uint64, out []int32) []int32 {
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if !nd.IsLeaf() {
			continue
		}
		p, s := mi.CellPrefix[i]>>mi.CellShift[i], mi.CellShift[i]
		for j := nd.Lo; j < nd.Hi; j++ {
			if codes[j]>>s != p {
				out = append(out, int32(j))
			}
		}
	}
	return out
}

// OutOfTolerance counts the particles lying outside their leaf's bounding
// box dilated by tol times the leaf's drift scale on every side; positions
// exactly on the dilated boundary are inside. This is the refit fast
// path's drift test: while every particle stays within tolerance of its
// leaf, refitting boxes in place keeps the cached interaction lists
// geometrically honest (up to the θ recheck).
//
// The drift scale is the larger of the leaf's box radius and half the
// side of its Morton cell. The radius ties the envelope to the cluster
// the cached structures describe; the cell floor keeps sparse leaves —
// down to a single particle, whose box radius is zero — from pinning the
// envelope at nothing, since movement on the scale of the leaf's own
// (empty) cell cannot invalidate more than the MAC recheck guards.
func (mi *MortonIndex) OutOfTolerance(t *Tree, tol float64) int {
	side := mi.Domain.Hi.X - mi.Domain.Lo.X
	out := 0
	p := t.Particles
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if !nd.IsLeaf() {
			continue
		}
		scale := nd.Radius
		if half := math.Ldexp(side, int(mi.CellShift[i])/3-MortonBits-1); half > scale {
			scale = half
		}
		e := tol * scale
		lo, hi := nd.Box.Lo, nd.Box.Hi
		for j := nd.Lo; j < nd.Hi; j++ {
			if p.X[j] < lo.X-e || p.X[j] > hi.X+e ||
				p.Y[j] < lo.Y-e || p.Y[j] > hi.Y+e ||
				p.Z[j] < lo.Z-e || p.Z[j] > hi.Z+e {
				out++
			}
		}
	}
	return out
}

// MortonRepair re-establishes the canonical Morton order after particle
// drift and re-derives the tree from it. codes holds the new codes in
// current tree order and drifters the positions that left their leaf's
// cell (ascending, from Drifters). The non-drifters of each leaf are
// re-sorted within their run (sub-cell code bits may have changed), the
// drifters are sorted globally, and the two sequences merge by
// (code, original index) — the same strict total order the fresh build
// sorts by — so the repaired tree, permutation, codes, cells and statistics
// are bit-identical to BuildMortonWorkers on the same particles in original
// input order. Boxes are refit from scratch. The tree's particle arrays and
// permutation are replaced; mi.Codes is updated in place.
func (t *Tree) MortonRepair(mi *MortonIndex, codes []uint64, drifters []int32, workers int) {
	n := t.Particles.Len()
	if n == 0 {
		return
	}
	less := func(a, b int32) int {
		if codes[a] != codes[b] {
			if codes[a] < codes[b] {
				return -1
			}
			return 1
		}
		return t.Perm[a] - t.Perm[b]
	}

	// Stayers, sorted within each leaf run. Leaves appear in preorder with
	// ascending, disjoint cells, and every stayer's code is still inside
	// its leaf's cell, so the concatenation is globally sorted.
	base := make([]int32, 0, n-len(drifters))
	di := 0
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if !nd.IsLeaf() {
			continue
		}
		start := len(base)
		for j := nd.Lo; j < nd.Hi; j++ {
			if di < len(drifters) && drifters[di] == int32(j) {
				di++
				continue
			}
			base = append(base, int32(j))
		}
		slices.SortFunc(base[start:], less)
	}
	drift := slices.Clone(drifters)
	slices.SortFunc(drift, less)

	// Merge into the canonical order: ord[k] = current tree position of the
	// particle that belongs at sorted position k.
	ord := make([]int32, 0, n)
	bi, dj := 0, 0
	for bi < len(base) && dj < len(drift) {
		if less(base[bi], drift[dj]) < 0 {
			ord = append(ord, base[bi])
			bi++
		} else {
			ord = append(ord, drift[dj])
			dj++
		}
	}
	ord = append(ord, base[bi:]...)
	ord = append(ord, drift[dj:]...)

	// Gather every per-particle array through ord.
	old, oldPerm := t.Particles, t.Perm
	t.Particles = &particle.Set{
		X: make([]float64, n), Y: make([]float64, n),
		Z: make([]float64, n), Q: make([]float64, n),
	}
	t.Perm = make(particle.Permutation, n)
	mi.Codes = make([]uint64, n)
	pool.Blocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			o := ord[i]
			t.Particles.X[i] = old.X[o]
			t.Particles.Y[i] = old.Y[o]
			t.Particles.Z[i] = old.Z[o]
			t.Particles.Q[i] = old.Q[o]
			t.Perm[i] = oldPerm[o]
			mi.Codes[i] = codes[o]
		}
	})

	deriveMortonTopology(t, mi)
	t.RefitBoxesWorkers(workers)
}

// BatchSetFromTree derives the target batch set from a cluster tree built
// with leaf size equal to the batch size: the batches are exactly the
// tree's leaves, sharing the tree's particle storage and permutation.
func BatchSetFromTree(t *Tree) *BatchSet {
	bs := &BatchSet{
		Targets:   t.Particles,
		Perm:      t.Perm,
		BatchSize: t.LeafSize,
		Stats:     t.Stats,
	}
	bs.Batches = make([]Batch, 0, t.Stats.Leaves)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.IsLeaf() {
			bs.Batches = append(bs.Batches, Batch{
				Center: nd.Center,
				Radius: nd.Radius,
				Lo:     nd.Lo,
				Hi:     nd.Hi,
			})
		}
	}
	return bs
}

// RefreshFromTree re-reads the batch geometry (centers, radii) from the
// tree's leaves after a box refit. The topology — batch count, particle
// ranges, storage and permutation — is unchanged by construction, so only
// the MAC-relevant fields move.
func (bs *BatchSet) RefreshFromTree(t *Tree) {
	k := 0
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.IsLeaf() {
			bs.Batches[k].Center = nd.Center
			bs.Batches[k].Radius = nd.Radius
			k++
		}
	}
}
