package tree

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"barytree/internal/particle"
)

// mortonTestSets returns the particle distributions the Morton tests sweep.
func mortonTestSets(n int, rng *rand.Rand) map[string]*particle.Set {
	return map[string]*particle.Set{
		"uniform":  particle.UniformCube(n, rng),
		"gaussian": particle.GaussianBlob(n, 0.3, rng),
		"plummer":  particle.Plummer(n, 1.0, rng),
	}
}

func TestMortonBuildValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for name, src := range mortonTestSets(5000, rng) {
		for _, leafSize := range []int{1, 7, 64, 500, 10000} {
			tr, mi := BuildMorton(src, leafSize)
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s leaf=%d: %v", name, leafSize, err)
			}
			if len(mi.Codes) != src.Len() {
				t.Fatalf("%s leaf=%d: %d codes for %d particles", name, leafSize, len(mi.Codes), src.Len())
			}
			if len(mi.CellPrefix) != len(tr.Nodes) || len(mi.CellShift) != len(tr.Nodes) {
				t.Fatalf("%s leaf=%d: cell arrays sized %d/%d for %d nodes",
					name, leafSize, len(mi.CellPrefix), len(mi.CellShift), len(tr.Nodes))
			}
			// Codes sorted, ties broken by original index.
			for i := 1; i < len(mi.Codes); i++ {
				if mi.Codes[i] < mi.Codes[i-1] ||
					(mi.Codes[i] == mi.Codes[i-1] && tr.Perm[i] < tr.Perm[i-1]) {
					t.Fatalf("%s leaf=%d: order violated at %d", name, leafSize, i)
				}
			}
			// Particles really are the gathered input, codes match positions.
			for i := 0; i < tr.Particles.Len(); i++ {
				o := tr.Perm[i]
				if tr.Particles.X[i] != src.X[o] || tr.Particles.Y[i] != src.Y[o] ||
					tr.Particles.Z[i] != src.Z[o] || tr.Particles.Q[i] != src.Q[o] {
					t.Fatalf("%s leaf=%d: particle %d does not match input %d", name, leafSize, i, o)
				}
				if mi.Codes[i] != MortonEncode(mi.Domain, src.X[o], src.Y[o], src.Z[o]) {
					t.Fatalf("%s leaf=%d: stale code at %d", name, leafSize, i)
				}
			}
			// Every particle is inside its leaf's cell (zero drifters).
			if d := mi.Drifters(tr, mi.Codes, nil); len(d) != 0 {
				t.Fatalf("%s leaf=%d: fresh build reports %d drifters", name, leafSize, len(d))
			}
			// And within tolerance of its leaf box.
			if out := mi.OutOfTolerance(tr, 0); out != 0 {
				t.Fatalf("%s leaf=%d: fresh build reports %d out of tolerance", name, leafSize, out)
			}
		}
	}
}

func TestMortonBuildWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := particle.GaussianBlob(4000, 0.4, rng)
	ref, refIdx := BuildMortonWorkers(src, 40, 1)
	for _, w := range []int{2, 3, 8} {
		tr, mi := BuildMortonWorkers(src, 40, w)
		if !reflect.DeepEqual(ref, tr) {
			t.Fatalf("workers=%d: tree differs from serial build", w)
		}
		if !reflect.DeepEqual(refIdx, mi) {
			t.Fatalf("workers=%d: index differs from serial build", w)
		}
	}
}

func TestMortonRefitIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := particle.UniformCube(3000, rng)
	tr, _ := BuildMorton(src, 32)
	before := make([]Node, len(tr.Nodes))
	copy(before, tr.Nodes)
	tr.RefitBoxesWorkers(0)
	if !reflect.DeepEqual(before, tr.Nodes) {
		t.Fatal("refit with unchanged coordinates altered node boxes")
	}
}

// TestMortonRepairMatchesFreshBuild is the canonicity pin behind
// Plan.Update's repair path: after drifting a subset of the particles,
// detecting drifters and repairing must reproduce a fresh Morton build of
// the moved particles (in original input order) bit for bit — nodes, boxes,
// permutation, codes, cells and statistics.
func TestMortonRepairMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for name, src := range mortonTestSets(4000, rng) {
		tr, mi := BuildMorton(src, 50)

		// Drift ~2% of the particles far enough to change octants; jitter
		// the rest slightly (stayers whose sub-cell bits change). Clamping
		// into the original bounds keeps the snapped domain unchanged.
		b := src.Bounds()
		moved := src.Clone()
		for i := 0; i < moved.Len(); i++ {
			amp := 1e-4
			if rng.Intn(50) == 0 {
				amp = 0.4
			}
			moved.X[i] = clampF(moved.X[i]+amp*(rng.Float64()-0.5), b.Lo.X, b.Hi.X)
			moved.Y[i] = clampF(moved.Y[i]+amp*(rng.Float64()-0.5), b.Lo.Y, b.Hi.Y)
			moved.Z[i] = clampF(moved.Z[i]+amp*(rng.Float64()-0.5), b.Lo.Z, b.Hi.Z)
		}
		if SnapMortonDomain(moved.Bounds()) != mi.Domain {
			t.Fatalf("%s: drift changed the snapped domain; adjust the test motion", name)
		}

		// Scatter the moved positions into tree order, as Plan.Update does.
		for ti, oi := range tr.Perm {
			tr.Particles.X[ti] = moved.X[oi]
			tr.Particles.Y[ti] = moved.Y[oi]
			tr.Particles.Z[ti] = moved.Z[oi]
		}
		codes := mi.EncodeInto(nil, tr.Particles, 0)
		drifters := mi.Drifters(tr, codes, nil)
		if len(drifters) == 0 {
			t.Fatalf("%s: no drifters; the test motion is too small", name)
		}
		tr.MortonRepair(mi, codes, drifters, 0)

		fresh, freshIdx := BuildMorton(moved, 50)
		if !reflect.DeepEqual(fresh, tr) {
			t.Fatalf("%s: repaired tree differs from fresh build", name)
		}
		if !reflect.DeepEqual(freshIdx, mi) {
			t.Fatalf("%s: repaired index differs from fresh build", name)
		}
	}
}

// TestMortonRepairZeroDrifters: repair with an empty drifter list is still
// the canonical re-sort (stayers may have changed sub-cell bits).
func TestMortonRepairZeroDrifters(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	src := particle.UniformCube(2000, rng)
	tr, mi := BuildMorton(src, 100)
	moved := src.Clone()
	for i := 0; i < moved.Len(); i++ {
		moved.X[i] += 1e-7 * rng.Float64()
	}
	for ti, oi := range tr.Perm {
		tr.Particles.X[ti] = moved.X[oi]
		tr.Particles.Y[ti] = moved.Y[oi]
		tr.Particles.Z[ti] = moved.Z[oi]
	}
	codes := mi.EncodeInto(nil, tr.Particles, 0)
	drifters := mi.Drifters(tr, codes, nil)
	tr.MortonRepair(mi, codes, drifters, 0)
	fresh, freshIdx := BuildMorton(moved, 100)
	if !reflect.DeepEqual(fresh, tr) || !reflect.DeepEqual(freshIdx, mi) {
		t.Fatal("zero-drifter repair differs from fresh build")
	}
}

func TestMortonDegenerate(t *testing.T) {
	// Empty set.
	tr, mi := BuildMorton(particle.NewSet(0), 10)
	if len(tr.Nodes) != 0 || len(mi.Codes) != 0 {
		t.Fatal("empty build produced nodes")
	}
	tr.MortonRepair(mi, nil, nil, 0) // must not panic

	// Single particle.
	one := particle.NewSet(1)
	one.Append(0.3, -0.2, 0.9, 1.5)
	tr, mi = BuildMorton(one, 10)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 || tr.Nodes[0].Radius != 0 {
		t.Fatalf("single-particle tree has %d nodes, radius %v", len(tr.Nodes), tr.Nodes[0].Radius)
	}

	// All coincident: cannot split below one code; must terminate as a leaf.
	co := particle.NewSet(64)
	for i := 0; i < 64; i++ {
		co.Append(0.125, 0.25, -0.5, 1)
	}
	tr, mi = BuildMorton(co, 10)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Nodes) != 1 {
		t.Fatalf("coincident build produced %d nodes, want 1 leaf", len(tr.Nodes))
	}
	if s := mi.CellShift[0]; s != 0 {
		t.Fatalf("coincident leaf cell shift %d, want 0 (exact code)", s)
	}

	// Two points at opposite corners.
	two := particle.NewSet(2)
	two.Append(-1, -1, -1, 1)
	two.Append(1, 1, 1, -1)
	tr, _ = BuildMorton(two, 1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats.Leaves != 2 {
		t.Fatalf("two-corner build has %d leaves, want 2", tr.Stats.Leaves)
	}
}

func TestSnapMortonDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	src := particle.UniformCube(500, rng)
	d := SnapMortonDomain(src.Bounds())
	side := d.Hi.X - d.Lo.X
	// Power-of-two side with 2x headroom over the ~2-wide cube.
	if side != 4 {
		t.Fatalf("side = %v, want 4", side)
	}
	if frac, _ := math.Frexp(side); frac != 0.5 {
		t.Fatalf("side %v is not a power of two", side)
	}
	// A set with genuine headroom (longest side well below the next
	// power-of-two boundary) keeps its domain bit-identical under drift.
	small := src.Clone()
	for i := range small.X {
		small.X[i] *= 0.6
		small.Y[i] *= 0.6
		small.Z[i] *= 0.6
	}
	ds := SnapMortonDomain(small.Bounds())
	for i := range small.X {
		small.X[i] += 0.05 * rng.Float64()
	}
	if SnapMortonDomain(small.Bounds()) != ds {
		t.Fatal("small drift changed the snapped domain")
	}
	// Large growth changes it.
	small.X[0] += 100
	if SnapMortonDomain(small.Bounds()) == ds {
		t.Fatal("large growth kept the snapped domain")
	}
	// Degenerate point: unit cube at the snapped corner.
	pt := particle.NewSet(1)
	pt.Append(0.7, 0.7, 0.7, 1)
	dp := SnapMortonDomain(pt.Bounds())
	if dp.Hi.X-dp.Lo.X != 1 {
		t.Fatalf("degenerate domain side = %v, want 1", dp.Hi.X-dp.Lo.X)
	}
}

func TestMortonEncodeOrder(t *testing.T) {
	// Codes must be monotone along each axis within the domain grid and
	// clamp outside it.
	d := SnapMortonDomain(particle.UniformCube(100, rand.New(rand.NewSource(17))).Bounds())
	prev := MortonEncode(d, d.Lo.X, d.Lo.Y, d.Lo.Z)
	for i := 1; i < 64; i++ {
		x := d.Lo.X + (d.Hi.X-d.Lo.X)*float64(i)/64
		c := MortonEncode(d, x, d.Lo.Y, d.Lo.Z)
		if c < prev {
			t.Fatalf("code not monotone along x at step %d", i)
		}
		prev = c
	}
	if MortonEncode(d, d.Lo.X-1e9, d.Lo.Y, d.Lo.Z) != 0 {
		t.Fatal("below-domain coordinate did not clamp to cell 0")
	}
	hi := MortonEncode(d, d.Hi.X+1e9, d.Lo.Y, d.Lo.Z)
	if hi != spread3(1<<MortonBits-1) {
		t.Fatal("above-domain coordinate did not clamp to the last cell")
	}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
