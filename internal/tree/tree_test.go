package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"barytree/internal/geom"
	"barytree/internal/particle"
)

func uniform(n int, seed int64) *particle.Set {
	return particle.UniformCube(n, rand.New(rand.NewSource(seed)))
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 5000} {
		for _, leaf := range []int{1, 8, 64, 500} {
			tr := Build(uniform(n, int64(n)), leaf)
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d leaf=%d: %v", n, leaf, err)
			}
		}
	}
}

func TestBuildInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, leafRaw uint8) bool {
		n := 1 + int(nRaw)%400
		leaf := 1 + int(leafRaw)%50
		tr := Build(uniform(n, seed), leaf)
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLeafSizeRespected(t *testing.T) {
	tr := Build(uniform(5000, 1), 100)
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.IsLeaf() {
			if nd.Count() > 100 {
				t.Fatalf("leaf %d holds %d > 100 particles", i, nd.Count())
			}
		} else if nd.Count() <= 100 {
			t.Fatalf("internal node %d holds only %d particles", i, nd.Count())
		}
	}
}

func TestEveryParticleInExactlyOneLeaf(t *testing.T) {
	tr := Build(uniform(3000, 2), 50)
	covered := make([]int, tr.Particles.Len())
	for _, li := range tr.Leaves() {
		nd := &tr.Nodes[li]
		for j := nd.Lo; j < nd.Hi; j++ {
			covered[j]++
		}
	}
	for j, c := range covered {
		if c != 1 {
			t.Fatalf("particle %d covered by %d leaves", j, c)
		}
	}
}

func TestPermutationMapsBack(t *testing.T) {
	src := uniform(1000, 3)
	tr := Build(src, 32)
	for newIdx, oldIdx := range tr.Perm {
		if tr.Particles.X[newIdx] != src.X[oldIdx] ||
			tr.Particles.Y[newIdx] != src.Y[oldIdx] ||
			tr.Particles.Z[newIdx] != src.Z[oldIdx] ||
			tr.Particles.Q[newIdx] != src.Q[oldIdx] {
			t.Fatalf("perm[%d]=%d maps to different particle", newIdx, oldIdx)
		}
	}
}

func TestInputNotModified(t *testing.T) {
	src := uniform(500, 4)
	orig := src.Clone()
	Build(src, 16)
	for i := 0; i < src.Len(); i++ {
		if src.X[i] != orig.X[i] || src.Q[i] != orig.Q[i] {
			t.Fatal("Build modified its input")
		}
	}
}

func TestShrunkenBoxesTouchParticles(t *testing.T) {
	// Minimal bounding boxes: some particle coordinate must coincide with
	// each box face (Section 2.3 relies on this).
	tr := Build(uniform(2000, 5), 100)
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		var loX, hiX, loY, hiY, loZ, hiZ bool
		for j := nd.Lo; j < nd.Hi; j++ {
			p := tr.Particles.At(j)
			loX = loX || p.X == nd.Box.Lo.X
			hiX = hiX || p.X == nd.Box.Hi.X
			loY = loY || p.Y == nd.Box.Lo.Y
			hiY = hiY || p.Y == nd.Box.Hi.Y
			loZ = loZ || p.Z == nd.Box.Lo.Z
			hiZ = hiZ || p.Z == nd.Box.Hi.Z
		}
		if !(loX && hiX && loY && hiY && loZ && hiZ) {
			t.Fatalf("node %d box %v not minimal", i, nd.Box)
		}
	}
}

func TestAspectRatioRule(t *testing.T) {
	// Build over a flat slab: splits must avoid creating needle-shaped
	// children. Every split dimension's side must be within the sqrt(2)
	// rule relative to the longest side of its parent.
	rng := rand.New(rand.NewSource(6))
	s := particle.NewSet(4000)
	for i := 0; i < 4000; i++ {
		s.Append(4*rng.Float64(), 4*rng.Float64(), 0.1*rng.Float64(), 1)
	}
	tr := Build(s, 50)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.IsLeaf() {
			continue
		}
		// A node of the slab should never be split in z while z is tiny:
		// check children count is 2 or 4 near the root where the slab is
		// very flat.
		if nd.Level == 0 && len(nd.Children) == 8 {
			t.Fatalf("root of flat slab split 8 ways")
		}
	}
}

func TestSplitDims(t *testing.T) {
	cube := boxFromSides(1, 1, 1)
	if got := splitDims(cube); len(got) != 3 {
		t.Errorf("cube split dims = %v, want all three", got)
	}
	slab := boxFromSides(1, 1, 0.1)
	if got := splitDims(slab); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("slab split dims = %v, want [0 1]", got)
	}
	needle := boxFromSides(0.1, 1, 0.1)
	if got := splitDims(needle); len(got) != 1 || got[0] != 1 {
		t.Errorf("needle split dims = %v, want [1]", got)
	}
	// Exactly at the threshold: side = long/sqrt(2) is included.
	edge := boxFromSides(1, 1/math.Sqrt2, 0.1)
	if got := splitDims(edge); len(got) != 2 {
		t.Errorf("edge split dims = %v, want 2 dims", got)
	}
	degenerate := boxFromSides(0, 0, 0)
	if got := splitDims(degenerate); got != nil {
		t.Errorf("degenerate split dims = %v, want nil", got)
	}
}

func TestCoincidentParticlesTerminate(t *testing.T) {
	// All particles at the same point: must terminate as a single leaf.
	s := particle.NewSet(100)
	for i := 0; i < 100; i++ {
		s.Append(0.5, 0.5, 0.5, 1)
	}
	tr := Build(s, 10)
	if len(tr.Nodes) != 1 || !tr.Nodes[0].IsLeaf() {
		t.Fatalf("coincident particles produced %d nodes", len(tr.Nodes))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInput(t *testing.T) {
	tr := Build(particle.NewSet(0), 10)
	if len(tr.Nodes) != 0 {
		t.Fatalf("empty input produced %d nodes", len(tr.Nodes))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPanicsOnBadLeafSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Build(uniform(10, 7), 0)
}

func TestStatsPopulated(t *testing.T) {
	tr := Build(uniform(5000, 8), 100)
	st := tr.Stats
	if st.Nodes != len(tr.Nodes) {
		t.Errorf("stats nodes %d != %d", st.Nodes, len(tr.Nodes))
	}
	if st.Leaves != len(tr.Leaves()) {
		t.Errorf("stats leaves %d != %d", st.Leaves, len(tr.Leaves()))
	}
	if st.ParticleScans == 0 || st.MaxDepth == 0 {
		t.Errorf("stats suspiciously empty: %+v", st)
	}
}

func TestRadiusIsHalfDiagonal(t *testing.T) {
	tr := Build(uniform(100, 9), 10)
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		want := nd.Box.Size().Norm() / 2
		if math.Abs(nd.Radius-want) > 1e-15 {
			t.Fatalf("node %d radius %g, want %g", i, nd.Radius, want)
		}
		if nd.Center != nd.Box.Center() {
			t.Fatalf("node %d center mismatch", i)
		}
	}
}

func TestBatchesEquivalentToLeavesWhenSameSize(t *testing.T) {
	// With targets == sources and NB == NL, batches coincide with the
	// source-tree leaves (as in all the paper's experiments).
	src := uniform(3000, 10)
	tr := Build(src, 128)
	bs := BuildBatches(src, 128)
	leaves := tr.Leaves()
	if len(bs.Batches) != len(leaves) {
		t.Fatalf("%d batches vs %d leaves", len(bs.Batches), len(leaves))
	}
	for i, li := range leaves {
		nd := &tr.Nodes[li]
		b := &bs.Batches[i]
		if b.Lo != nd.Lo || b.Hi != nd.Hi || b.Center != nd.Center || b.Radius != nd.Radius {
			t.Fatalf("batch %d differs from leaf %d", i, li)
		}
	}
}

func TestBatchSizesRespected(t *testing.T) {
	bs := BuildBatches(uniform(5000, 11), 200)
	total := 0
	for i := range bs.Batches {
		c := bs.Batches[i].Count()
		if c < 1 || c > 200 {
			t.Fatalf("batch %d has %d targets", i, c)
		}
		total += c
	}
	if total != 5000 {
		t.Fatalf("batches cover %d targets, want 5000", total)
	}
}

// boxFromSides builds a box at the origin with the given side lengths.
func boxFromSides(x, y, z float64) geom.Box {
	return geom.Box{Hi: geom.Vec3{X: x, Y: y, Z: z}}
}
