package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// chromeGolden is the exact expected export for the fixed span set of
// TestChromeGolden. The format is load-bearing: Perfetto and
// chrome://tracing parse exactly this shape (complete "X" events with
// microsecond ts/dur, instant "i" events, process/thread metadata).
const chromeGolden = `{"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"rank 0"}},
{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"host"}},
{"name":"thread_name","ph":"M","pid":0,"tid":1,"args":{"name":"stream-0"}},
{"name":"thread_name","ph":"M","pid":0,"tid":2,"args":{"name":"copy-h2d"}},
{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"rank 1"}},
{"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"net"}},
{"name":"setup","cat":"phase","ph":"X","pid":0,"tid":0,"ts":0,"dur":1000000,"args":{}},
{"name":"mark","cat":"build","ph":"i","s":"t","pid":0,"tid":0,"ts":250000,"args":{"nodes":9}},
{"name":"direct","cat":"kernel","ph":"X","pid":0,"tid":1,"ts":1000000,"dur":500000,"args":{"grid":128,"block":256}},
{"name":"h2d","cat":"transfer","ph":"X","pid":0,"tid":2,"ts":100000,"dur":150000,"args":{"bytes":4096}},
{"name":"rma.get","cat":"comm","ph":"X","pid":1,"tid":0,"ts":2000000,"dur":250000,"args":{"target":0}}
],"displayTimeUnit":"ms"}
`

// TestChromeGolden: a fixed span set exports byte-identically to the
// golden document, and the document is valid JSON in the trace-event
// envelope shape.
func TestChromeGolden(t *testing.T) {
	tr := New()
	tr.Span("direct", CatKernel, 0, StreamTrack(0), 1, 1.5, A("grid", 128), A("block", 256))
	tr.Span("setup", CatPhase, 0, TrackHost, 0, 1)
	tr.Span("rma.get", CatComm, 1, TrackNet, 2, 2.25, A("target", 0))
	tr.Span("h2d", CatTransfer, 0, TrackHtoD, 0.1, 0.25, A("bytes", 4096))
	tr.Span("mark", CatBuild, 0, TrackHost, 0.25, 0.25, A("nodes", 9)) // instant

	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if got != chromeGolden {
		t.Errorf("chrome export mismatch:\n--- got ---\n%s--- want ---\n%s", got, chromeGolden)
	}

	// Structural validity: parses as JSON with a traceEvents array whose
	// events carry the required fields.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var xEvents int
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		switch ph {
		case "X":
			xEvents++
			for _, field := range []string{"name", "cat", "pid", "tid", "ts", "dur"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("X event missing %q: %v", field, ev)
				}
			}
		case "M", "i":
		default:
			t.Errorf("unexpected event phase %q: %v", ph, ev)
		}
	}
	if xEvents != 4 {
		t.Errorf("got %d complete events, want 4", xEvents)
	}
}
