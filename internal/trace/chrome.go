package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteChrome exports the trace in Chrome trace-event JSON format, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Each rank becomes one
// process (pid = rank) and each track one named thread of that process, so
// the timeline shows per-stream kernel rows, copy-engine rows and the net
// row side by side. Timestamps are modeled microseconds. Spans with
// End <= Start are exported as instant events.
//
// The output is deterministic: spans are emitted in the Spans() order and
// all JSON object keys are written in a fixed order. A nil tracer writes a
// valid empty trace.
func (t *Tracer) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	spans := t.Spans()

	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}

	// Metadata: name every rank's process and every track's thread.
	type rankTrack struct {
		rank int
		tid  int
	}
	tids := map[string]rankTrack{} // "rank\x00track" -> assignment
	lastRank := -1
	nextTid := 0
	for _, s := range spans {
		if s.Rank != lastRank {
			lastRank = s.Rank
			nextTid = 0
			emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				s.Rank, jstr(fmt.Sprintf("rank %d", s.Rank))))
		}
		key := fmt.Sprintf("%d\x00%s", s.Rank, s.Track)
		if _, ok := tids[key]; !ok {
			tids[key] = rankTrack{rank: s.Rank, tid: nextTid}
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				s.Rank, nextTid, jstr(s.Track)))
			nextTid++
		}
	}

	for _, s := range spans {
		tid := tids[fmt.Sprintf("%d\x00%s", s.Rank, s.Track)].tid
		ts := s.Start * 1e6
		args := jargs(s.Args)
		if s.End <= s.Start {
			emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s,"args":%s}`,
				jstr(s.Name), jstr(string(s.Cat)), s.Rank, tid, jnum(ts), args))
			continue
		}
		emit(fmt.Sprintf(`{"name":%s,"cat":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":%s}`,
			jstr(s.Name), jstr(string(s.Cat)), s.Rank, tid, jnum(ts), jnum((s.End-s.Start)*1e6), args))
	}

	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeFile writes the Chrome trace to the named file.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jstr JSON-encodes a string (always succeeds).
func jstr(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// jnum formats a microsecond timestamp. json.Marshal of float64 yields the
// shortest round-trip decimal, which is deterministic across platforms.
func jnum(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// jargs encodes span args as a JSON object preserving argument order.
func jargs(args []Arg) string {
	if len(args) == 0 {
		return "{}"
	}
	out := []byte{'{'}
	for i, a := range args {
		if i > 0 {
			out = append(out, ',')
		}
		out = append(out, jstr(a.Key)...)
		out = append(out, ':')
		v, err := json.Marshal(a.Value)
		if err != nil {
			v, _ = json.Marshal(fmt.Sprint(a.Value))
		}
		out = append(out, v...)
	}
	return string(append(out, '}'))
}
