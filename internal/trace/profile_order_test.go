package trace

import (
	"bytes"
	"testing"
)

// profileSpans is a small multi-rank span set covering every aggregation
// table WriteProfile renders.
var profileSpans = []Span{
	{Name: "setup", Cat: CatPhase, Rank: 0, Track: TrackHost, Start: 0, End: 1},
	{Name: "setup", Cat: CatPhase, Rank: 1, Track: TrackHost, Start: 0, End: 2},
	{Name: "compute", Cat: CatPhase, Rank: 0, Track: TrackHost, Start: 1, End: 4},
	{Name: "compute", Cat: CatPhase, Rank: 1, Track: TrackHost, Start: 2, End: 3},
	{Name: "direct", Cat: CatKernel, Rank: 0, Track: "stream-0", Start: 1, End: 2},
	{Name: "approx", Cat: CatKernel, Rank: 1, Track: "stream-1", Start: 2, End: 3},
	{Name: "h2d", Cat: CatTransfer, Rank: 0, Track: TrackHtoD, Start: 0.5, End: 0.7},
	{Name: "rma.get", Cat: CatComm, Rank: 1, Track: TrackNet, Start: 0.2, End: 0.4},
}

// TestWriteProfileEmissionOrderIndependent: the rendered profile (which
// aggregates through several maps internally) must be byte-identical no
// matter what order spans and counters were recorded in — the property the
// maporder analyzer exists to protect.
func TestWriteProfileEmissionOrderIndependent(t *testing.T) {
	forward, backward := New(), New()
	for i, s := range profileSpans {
		forward.Emit(s)
		backward.Emit(profileSpans[len(profileSpans)-1-i])
	}
	counters := []string{"device.launches", "rma.get_bytes", "device.flop_eq"}
	for i, name := range counters {
		forward.Add(name, float64(i+1))
		backward.Add(counters[len(counters)-1-i], float64(len(counters)-i))
	}

	render := func(tr *Tracer) []byte {
		var buf bytes.Buffer
		if err := tr.WriteProfile(&buf, "setup", "compute"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(forward), render(backward)
	if !bytes.Equal(a, b) {
		t.Errorf("profile depends on emission order:\n--- forward ---\n%s\n--- backward ---\n%s", a, b)
	}
	// And rendering twice from one tracer is stable.
	if again := render(forward); !bytes.Equal(a, again) {
		t.Errorf("profile differs across repeated renders:\n%s\nvs\n%s", a, again)
	}
}
