// Package trace is the execution tracing and counters subsystem of the
// treecode: a structured record of *where modeled time goes*, designed to
// make the effects the paper's evaluation discusses visible — launch
// overhead hidden by asynchronous streams (Figure 4), the growing
// precompute fraction on small kernels (Figure 6c,d), and the overlap of
// computation, transfers and RMA communication across ranks.
//
// A Tracer collects spans (named intervals in *modeled* seconds, attributed
// to a rank and a track such as a device stream or a copy engine) and
// counters (monotonic sums: flop-equivalents, bytes moved, launches, LET
// cells shipped). The producing packages are internal/device (one span per
// kernel launch and per copy-engine transfer), internal/core (phase and
// build spans, kernel labels), internal/let and internal/mpisim (LET
// construction, RMA epochs, barriers) and internal/dist (per-rank phases).
//
// Two consumers are provided: WriteChrome exports Chrome trace-event JSON
// (viewable in Perfetto or chrome://tracing, one process per rank and one
// track per stream/engine), and WriteProfile renders text summary tables
// (time by phase, by kernel, by rank). See docs/observability.md.
//
// Every Tracer method is safe to call on a nil receiver and does nothing,
// so instrumentation call sites stay branch-free and a disabled trace has
// zero cost beyond the method call. All recorded times are modeled, never
// wall-clock, so traces are deterministic and machine-independent.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Category classifies spans for filtering and profile aggregation.
type Category string

const (
	// CatPhase marks the paper's coarse accounting phases (setup,
	// precompute, compute) on a rank's host track.
	CatPhase Category = "phase"
	// CatKernel marks one device kernel execution on a stream track.
	CatKernel Category = "kernel"
	// CatTransfer marks one host/device copy on a copy-engine track.
	CatTransfer Category = "transfer"
	// CatComm marks RMA operations, epochs and barriers on the net track.
	CatComm Category = "comm"
	// CatBuild marks host-side construction work (trees, batches,
	// interaction lists, LET assembly).
	CatBuild Category = "build"
)

// Track names. Tracks are rendered as separate rows (threads) of a rank's
// process in the Chrome trace export.
const (
	// TrackHost carries phase and build spans (the rank's host thread).
	TrackHost = "host"
	// TrackHtoD carries host-to-device copy spans.
	TrackHtoD = "copy-h2d"
	// TrackDtoH carries device-to-host copy spans.
	TrackDtoH = "copy-d2h"
	// TrackNet carries RMA and barrier spans.
	TrackNet = "net"
)

// StreamTrack returns the track name of device stream s.
func StreamTrack(s int) string { return fmt.Sprintf("stream-%d", s) }

// Arg is one key/value annotation on a span. Values should be strings,
// integers or floats (they are JSON-marshaled by the Chrome export).
type Arg struct {
	Key   string
	Value any
}

// A is a shorthand Arg constructor: trace.A("grid", 128).
func A(key string, value any) Arg { return Arg{Key: key, Value: value} }

// Span is one attributed interval in modeled seconds. A span with
// End <= Start is an instant marker (exported as a Chrome instant event).
type Span struct {
	// Name identifies what ran (kernel label, phase name, "rma.get", ...).
	Name string
	// Cat is the span's category.
	Cat Category
	// Rank attributes the span to an MPI rank (0 for single-device runs).
	Rank int
	// Track places the span on a timeline row: TrackHost, StreamTrack(i),
	// TrackHtoD, TrackDtoH or TrackNet.
	Track string
	// Start and End are modeled seconds since the start of the run.
	Start, End float64
	// Args are optional annotations (grid/block shape, bytes, targets...).
	Args []Arg
}

// Dur returns the span duration in modeled seconds (0 for instants).
func (s Span) Dur() float64 {
	if s.End <= s.Start {
		return 0
	}
	return s.End - s.Start
}

// Counter is one named accumulated value.
type Counter struct {
	Name  string
	Value float64
}

// Tracer collects spans and counters from concurrent producers. The zero
// value is NOT usable; create one with New. A nil *Tracer is a valid no-op
// sink: every method checks the receiver, so call sites never branch.
type Tracer struct {
	mu       sync.Mutex
	spans    []Span
	counters map[string]float64
}

// New returns an empty enabled Tracer.
func New() *Tracer {
	return &Tracer{counters: map[string]float64{}}
}

// Enabled reports whether the tracer records anything (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one span. Safe for concurrent use and on a nil receiver.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Span records a span built from its fields; a convenience over Emit.
func (t *Tracer) Span(name string, cat Category, rank int, track string, start, end float64, args ...Arg) {
	if t == nil {
		return
	}
	t.Emit(Span{Name: name, Cat: cat, Rank: rank, Track: track, Start: start, End: end, Args: args})
}

// Add accumulates v into the named counter. Safe for concurrent use and on
// a nil receiver.
func (t *Tracer) Add(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += v
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 for nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a sorted copy of all recorded spans. The order is total and
// deterministic regardless of emission order: by rank, then track (host
// first, then streams by index, copy engines, net, then others by name),
// then start time ascending, then end time *descending* (so an enclosing
// span precedes its children, the nesting order Chrome viewers expect),
// then name. A nil tracer returns nil.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return spanLess(out[i], out[j]) })
	return out
}

// Counters returns all counters sorted by name. A nil tracer returns nil.
func (t *Tracer) Counters() []Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Counter, 0, len(t.counters))
	for k, v := range t.counters {
		out = append(out, Counter{Name: k, Value: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// spanLess is the total order documented on Spans.
func spanLess(a, b Span) bool {
	if a.Rank != b.Rank {
		return a.Rank < b.Rank
	}
	ac, ai := trackOrder(a.Track)
	bc, bi := trackOrder(b.Track)
	if ac != bc {
		return ac < bc
	}
	if ai != bi {
		return ai < bi
	}
	if a.Track != b.Track {
		return a.Track < b.Track
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End > b.End // longer (enclosing) span first
	}
	return a.Name < b.Name
}

// trackOrder assigns each track a (class, index) sort key: host, streams by
// index, HtoD, DtoH, net, then everything else (class 5, ordered by name
// via spanLess's tiebreak).
func trackOrder(track string) (class, index int) {
	switch track {
	case TrackHost:
		return 0, 0
	case TrackHtoD:
		return 2, 0
	case TrackDtoH:
		return 3, 0
	case TrackNet:
		return 4, 0
	}
	var s int
	if n, err := fmt.Sscanf(track, "stream-%d", &s); err == nil && n == 1 {
		return 1, s
	}
	return 5, 0
}
