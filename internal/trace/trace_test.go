package trace

import (
	"strings"
	"sync"
	"testing"
)

// TestNilTracerNoOp: every method of a nil *Tracer is a safe no-op, so
// instrumentation call sites never branch on enablement.
func TestNilTracerNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Span{Name: "x"})
	tr.Span("y", CatKernel, 0, TrackHost, 0, 1)
	tr.Add("c", 1)
	if tr.Len() != 0 || tr.Spans() != nil || tr.Counters() != nil {
		t.Fatal("nil tracer recorded something")
	}
	var sb strings.Builder
	if err := tr.WriteChrome(&sb); err != nil {
		t.Fatalf("WriteChrome on nil tracer: %v", err)
	}
	if !strings.Contains(sb.String(), `"traceEvents"`) {
		t.Fatalf("nil trace export is not a valid trace document: %q", sb.String())
	}
	sb.Reset()
	if err := tr.WriteProfile(&sb); err != nil {
		t.Fatalf("WriteProfile on nil tracer: %v", err)
	}
}

// TestSpanOrdering: Spans() imposes the documented total order regardless
// of emission order — rank, then track class (host, streams by index, copy
// engines, net), then start ascending, then end descending (nesting).
func TestSpanOrdering(t *testing.T) {
	tr := New()
	// Deliberately emit in scrambled order.
	tr.Span("k-late", CatKernel, 0, StreamTrack(1), 2, 3)
	tr.Span("net", CatComm, 1, TrackNet, 0, 1)
	tr.Span("child", CatBuild, 0, TrackHost, 0, 1)
	tr.Span("k-early", CatKernel, 0, StreamTrack(0), 1, 2)
	tr.Span("parent", CatPhase, 0, TrackHost, 0, 2)
	tr.Span("d2h", CatTransfer, 0, TrackDtoH, 5, 6)
	tr.Span("h2d", CatTransfer, 0, TrackHtoD, 4, 5)

	got := tr.Spans()
	want := []string{"parent", "child", "k-early", "k-late", "h2d", "d2h", "net"}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("span %d = %q, want %q (order %v)", i, got[i].Name, name, names(got))
		}
	}
}

// TestNestingOrder: equal-start spans sort longest first so an enclosing
// span always precedes its children on the same track.
func TestNestingOrder(t *testing.T) {
	tr := New()
	tr.Span("inner", CatBuild, 0, TrackHost, 1, 2)
	tr.Span("outer", CatPhase, 0, TrackHost, 1, 9)
	tr.Span("mid", CatBuild, 0, TrackHost, 1, 4)
	got := names(tr.Spans())
	want := []string{"outer", "mid", "inner"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nesting order = %v, want %v", got, want)
		}
	}
}

// TestCounters: counters accumulate and list sorted by name.
func TestCounters(t *testing.T) {
	tr := New()
	tr.Add("b", 2)
	tr.Add("a", 1)
	tr.Add("b", 3)
	cs := tr.Counters()
	if len(cs) != 2 || cs[0].Name != "a" || cs[0].Value != 1 || cs[1].Name != "b" || cs[1].Value != 5 {
		t.Fatalf("counters = %+v", cs)
	}
}

// TestConcurrentEmission: many goroutines emitting spans and counters at
// once (the device worker / rank goroutine pattern) lose nothing and — run
// under the race detector — expose no data races.
func TestConcurrentEmission(t *testing.T) {
	tr := New()
	const workers, each = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Span("k", CatKernel, w, StreamTrack(i%4), float64(i), float64(i+1))
				tr.Add("launches", 1)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*each {
		t.Fatalf("lost spans: %d != %d", tr.Len(), workers*each)
	}
	cs := tr.Counters()
	if len(cs) != 1 || cs[0].Value != workers*each {
		t.Fatalf("counter = %+v, want %d", cs, workers*each)
	}
	// The sorted export is a pure function of the recorded set.
	var e1, e2 strings.Builder
	if err := tr.WriteChrome(&e1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChrome(&e2); err != nil {
		t.Fatal(err)
	}
	if e1.String() != e2.String() {
		t.Fatal("chrome export is not deterministic for a fixed span set")
	}
}

func names(spans []Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name
	}
	return out
}

// TestProfileRendersTables: the profile contains the phase, kernel,
// transfer, rank and counter tables with aggregated values.
func TestProfileRendersTables(t *testing.T) {
	tr := New()
	tr.Span("setup", CatPhase, 0, TrackHost, 0, 1)
	tr.Span("compute", CatPhase, 0, TrackHost, 1, 3)
	tr.Span("setup", CatPhase, 1, TrackHost, 0, 2)
	tr.Span("compute", CatPhase, 1, TrackHost, 2, 3)
	tr.Span("direct", CatKernel, 0, StreamTrack(0), 1, 2)
	tr.Span("direct", CatKernel, 1, StreamTrack(0), 1, 2.5)
	tr.Span("approx", CatKernel, 0, StreamTrack(1), 1, 1.5)
	tr.Span("h2d", CatTransfer, 0, TrackHtoD, 0, 0.25)
	tr.Span("rma.get", CatComm, 1, TrackNet, 0.5, 0.75)
	tr.Add("h2d.bytes", 4096)

	var sb strings.Builder
	if err := tr.WriteProfile(&sb, "setup", "precompute", "compute"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"phase", "setup", "compute",
		"kernel", "direct", "approx",
		"transfer/comm", "h2d", "rma.get",
		"rank", "counter", "h2d.bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
	// setup max over ranks is rank 1's 2 s; phase order must start with setup.
	if !strings.Contains(out, "2 s") {
		t.Errorf("profile missing max-over-ranks setup time:\n%s", out)
	}
	si, ci := strings.Index(out, "setup"), strings.Index(out, "compute")
	if si < 0 || ci < 0 || si > ci {
		t.Errorf("phase rows out of order (setup@%d, compute@%d):\n%s", si, ci, out)
	}
}
