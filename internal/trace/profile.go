package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// nameAgg accumulates spans sharing a name.
type nameAgg struct {
	name  string
	count int
	secs  float64
}

// WriteProfile renders text summary tables from the recorded spans and
// counters: modeled time by phase (per rank the phase's spans are summed;
// across ranks the maximum is reported, matching the barrier-separated
// phase accounting of the paper's Section 4), busy time by kernel, by
// transfer/communication operation, per-rank totals, and all counters.
//
// phaseOrder fixes the row order of the phase table (typically setup,
// precompute, compute); phases not listed are appended alphabetically.
// Kernel busy time sums over streams, so it can legitimately exceed the
// compute phase duration when asynchronous streams overlap — that surplus
// is exactly the overlap the paper's Figure 4 credits to async streams.
// A nil tracer writes an empty profile.
func (t *Tracer) WriteProfile(w io.Writer, phaseOrder ...string) error {
	spans := t.Spans()

	// --- Aggregate. ---
	phases := map[string]map[int]float64{} // name -> rank -> summed seconds
	kernels := map[string]*nameAgg{}
	moves := map[string]*nameAgg{} // transfers + comm
	type rankAgg struct {
		kernelSecs, transferSecs, commSecs float64
		launches                           int
	}
	ranks := map[int]*rankAgg{}
	rankOf := func(r int) *rankAgg {
		a := ranks[r]
		if a == nil {
			a = &rankAgg{}
			ranks[r] = a
		}
		return a
	}
	addNamed := func(m map[string]*nameAgg, name string, d float64) {
		a := m[name]
		if a == nil {
			a = &nameAgg{name: name}
			m[name] = a
		}
		a.count++
		a.secs += d
	}
	for _, s := range spans {
		d := s.Dur()
		switch s.Cat {
		case CatPhase:
			pr := phases[s.Name]
			if pr == nil {
				pr = map[int]float64{}
				phases[s.Name] = pr
			}
			pr[s.Rank] += d
		case CatKernel:
			addNamed(kernels, s.Name, d)
			rankOf(s.Rank).kernelSecs += d
			rankOf(s.Rank).launches++
		case CatTransfer:
			addNamed(moves, s.Name, d)
			rankOf(s.Rank).transferSecs += d
		case CatComm:
			addNamed(moves, s.Name, d)
			rankOf(s.Rank).commSecs += d
		}
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)

	// --- Time by phase. ---
	if len(phases) > 0 {
		names := orderedNames(phases, phaseOrder)
		fmt.Fprintln(tw, "phase\tmax-over-ranks\tmax-rank\tsum-over-ranks")
		var total float64
		for _, name := range names {
			maxSec, maxRank, sum := -1.0, 0, 0.0
			perRank := phases[name]
			rs := make([]int, 0, len(perRank))
			for r := range perRank {
				rs = append(rs, r)
			}
			sort.Ints(rs)
			for _, r := range rs {
				sum += perRank[r]
				if perRank[r] > maxSec {
					maxSec, maxRank = perRank[r], r
				}
			}
			total += maxSec
			fmt.Fprintf(tw, "%s\t%.6g s\t%d\t%.6g s\n", name, maxSec, maxRank, sum)
		}
		fmt.Fprintf(tw, "total\t%.6g s\t\t\n", total)
		fmt.Fprintln(tw)
	}

	// --- Busy time by kernel. ---
	if len(kernels) > 0 {
		list := sortedAggs(kernels)
		var total float64
		for _, a := range list {
			total += a.secs
		}
		fmt.Fprintln(tw, "kernel\tlaunches\tbusy\tshare")
		for _, a := range list {
			fmt.Fprintf(tw, "%s\t%d\t%.6g s\t%.1f%%\n", a.name, a.count, a.secs, 100*a.secs/total)
		}
		fmt.Fprintf(tw, "all kernels\t%d\t%.6g s\t\n", countSum(list), total)
		fmt.Fprintln(tw)
	}

	// --- Transfers and communication. ---
	if len(moves) > 0 {
		fmt.Fprintln(tw, "transfer/comm\tops\tbusy")
		for _, a := range sortedAggs(moves) {
			fmt.Fprintf(tw, "%s\t%d\t%.6g s\n", a.name, a.count, a.secs)
		}
		fmt.Fprintln(tw)
	}

	// --- Per rank. ---
	if len(ranks) > 1 {
		ids := make([]int, 0, len(ranks))
		for r := range ranks {
			ids = append(ids, r)
		}
		sort.Ints(ids)
		fmt.Fprintln(tw, "rank\tlaunches\tkernel-busy\ttransfer-busy\tcomm-busy")
		for _, r := range ids {
			a := ranks[r]
			fmt.Fprintf(tw, "%d\t%d\t%.6g s\t%.6g s\t%.6g s\n",
				r, a.launches, a.kernelSecs, a.transferSecs, a.commSecs)
		}
		fmt.Fprintln(tw)
	}

	// --- Counters. ---
	if cs := t.Counters(); len(cs) > 0 {
		fmt.Fprintln(tw, "counter\tvalue")
		for _, c := range cs {
			fmt.Fprintf(tw, "%s\t%.6g\n", c.Name, c.Value)
		}
	}
	return tw.Flush()
}

// orderedNames returns the keys of m with the names in pref first (when
// present), then the rest alphabetically.
func orderedNames(m map[string]map[int]float64, pref []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range pref {
		if _, ok := m[p]; ok && !seen[p] {
			out = append(out, p)
			seen[p] = true
		}
	}
	var rest []string
	for k := range m {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// sortedAggs returns the aggregates sorted by descending busy time, then
// name for determinism.
func sortedAggs(m map[string]*nameAgg) []*nameAgg {
	out := make([]*nameAgg, 0, len(m))
	for _, a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].secs != out[j].secs {
			return out[i].secs > out[j].secs
		}
		return out[i].name < out[j].name
	})
	return out
}

// countSum sums the op counts of the aggregates.
func countSum(list []*nameAgg) int {
	var n int
	for _, a := range list {
		n += a.count
	}
	return n
}
