package geom

import (
	"fmt"
	"math"
)

// Box is an axis-aligned bounding box, represented by its lower and upper
// corners. The zero Box is empty (Lo > Hi in every dimension) and behaves as
// the identity for Union.
type Box struct {
	Lo, Hi Vec3
}

// EmptyBox returns a box that contains no points and acts as the identity
// element for Union and Extend.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{Lo: Vec3{inf, inf, inf}, Hi: Vec3{-inf, -inf, -inf}}
}

// NewBox returns the box with the given corners, swapping coordinates as
// needed so that Lo <= Hi holds componentwise.
func NewBox(a, b Vec3) Box {
	lo := Vec3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
	hi := Vec3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
	return Box{Lo: lo, Hi: hi}
}

// IsEmpty reports whether the box contains no points.
func (b Box) IsEmpty() bool {
	return b.Lo.X > b.Hi.X || b.Lo.Y > b.Hi.Y || b.Lo.Z > b.Hi.Z
}

// Extend returns the smallest box containing both b and the point p.
func (b Box) Extend(p Vec3) Box {
	return Box{
		Lo: Vec3{math.Min(b.Lo.X, p.X), math.Min(b.Lo.Y, p.Y), math.Min(b.Lo.Z, p.Z)},
		Hi: Vec3{math.Max(b.Hi.X, p.X), math.Max(b.Hi.Y, p.Y), math.Max(b.Hi.Z, p.Z)},
	}
}

// Union returns the smallest box containing both b and c.
func (b Box) Union(c Box) Box {
	if b.IsEmpty() {
		return c
	}
	if c.IsEmpty() {
		return b
	}
	return Box{
		Lo: Vec3{math.Min(b.Lo.X, c.Lo.X), math.Min(b.Lo.Y, c.Lo.Y), math.Min(b.Lo.Z, c.Lo.Z)},
		Hi: Vec3{math.Max(b.Hi.X, c.Hi.X), math.Max(b.Hi.Y, c.Hi.Y), math.Max(b.Hi.Z, c.Hi.Z)},
	}
}

// Contains reports whether p lies inside b (boundaries inclusive).
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Lo.X && p.X <= b.Hi.X &&
		p.Y >= b.Lo.Y && p.Y <= b.Hi.Y &&
		p.Z >= b.Lo.Z && p.Z <= b.Hi.Z
}

// ContainsBox reports whether c lies entirely inside b.
func (b Box) ContainsBox(c Box) bool {
	if c.IsEmpty() {
		return true
	}
	return b.Contains(c.Lo) && b.Contains(c.Hi)
}

// Center returns the midpoint of the box.
func (b Box) Center() Vec3 {
	return Vec3{(b.Lo.X + b.Hi.X) / 2, (b.Lo.Y + b.Hi.Y) / 2, (b.Lo.Z + b.Hi.Z) / 2}
}

// Size returns the edge lengths of the box.
func (b Box) Size() Vec3 {
	return Vec3{b.Hi.X - b.Lo.X, b.Hi.Y - b.Lo.Y, b.Hi.Z - b.Lo.Z}
}

// Radius returns half the length of the box diagonal. This is the cluster
// and batch "radius" used in the multipole acceptance criterion (13).
func (b Box) Radius() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.Size().Norm() / 2
}

// Volume returns the volume of the box (0 for empty or degenerate boxes).
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// LongestSide returns the length of the longest edge and its dimension index.
func (b Box) LongestSide() (length float64, dim int) {
	s := b.Size()
	length, dim = s.X, 0
	if s.Y > length {
		length, dim = s.Y, 1
	}
	if s.Z > length {
		length, dim = s.Z, 2
	}
	return length, dim
}

// ShortestSide returns the length of the shortest edge and its dimension
// index.
func (b Box) ShortestSide() (length float64, dim int) {
	s := b.Size()
	length, dim = s.X, 0
	if s.Y < length {
		length, dim = s.Y, 1
	}
	if s.Z < length {
		length, dim = s.Z, 2
	}
	return length, dim
}

// AspectRatio returns the ratio of the longest to the shortest edge. A cube
// has aspect ratio 1. Degenerate boxes (zero shortest side) return +Inf,
// and empty boxes return NaN.
func (b Box) AspectRatio() float64 {
	if b.IsEmpty() {
		return math.NaN()
	}
	long, _ := b.LongestSide()
	short, _ := b.ShortestSide()
	return long / short
}

// Interval returns the [lo, hi] extent of the box along dimension d.
func (b Box) Interval(d int) (lo, hi float64) {
	return b.Lo.Component(d), b.Hi.Component(d)
}

// String implements fmt.Stringer.
func (b Box) String() string { return fmt.Sprintf("[%v, %v]", b.Lo, b.Hi) }

// BoundingBox returns the minimal box containing the points with the given
// coordinate slices. The three slices must have equal length; an empty input
// yields EmptyBox().
func BoundingBox(xs, ys, zs []float64) Box {
	b := EmptyBox()
	for i := range xs {
		b = b.Extend(Vec3{xs[i], ys[i], zs[i]})
	}
	return b
}
