package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Errorf("Dist(a,a) = %v", got)
	}
}

func TestVecComponents(t *testing.T) {
	v := Vec3{7, 8, 9}
	for d, want := range []float64{7, 8, 9} {
		if got := v.Component(d); got != want {
			t.Errorf("Component(%d) = %v, want %v", d, got, want)
		}
	}
	if got := v.WithComponent(1, -1); got != (Vec3{7, -1, 9}) {
		t.Errorf("WithComponent = %v", got)
	}
	// Original unchanged (value semantics).
	if v != (Vec3{7, 8, 9}) {
		t.Errorf("WithComponent mutated receiver: %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("Component(3) should panic")
		}
	}()
	v.Component(3)
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary float64s (incl. NaN/Inf from quick) into a sane range.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}

func TestEmptyBox(t *testing.T) {
	e := EmptyBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBox not empty")
	}
	if e.Radius() != 0 || e.Volume() != 0 {
		t.Errorf("empty box radius=%v volume=%v", e.Radius(), e.Volume())
	}
	b := NewBox(Vec3{0, 0, 0}, Vec3{1, 1, 1})
	if got := e.Union(b); got != b {
		t.Errorf("empty union b = %v", got)
	}
	if got := b.Union(e); got != b {
		t.Errorf("b union empty = %v", got)
	}
}

func TestNewBoxSwapsCorners(t *testing.T) {
	b := NewBox(Vec3{1, -2, 3}, Vec3{-1, 2, -3})
	want := Box{Lo: Vec3{-1, -2, -3}, Hi: Vec3{1, 2, 3}}
	if b != want {
		t.Errorf("NewBox = %v, want %v", b, want)
	}
}

func TestBoxExtendContains(t *testing.T) {
	b := EmptyBox()
	pts := []Vec3{{0, 0, 0}, {1, 2, -1}, {-3, 0.5, 4}}
	for _, p := range pts {
		b = b.Extend(p)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box %v does not contain %v", b, p)
		}
	}
	if b.Contains(Vec3{10, 0, 0}) {
		t.Error("box contains far point")
	}
	if want := (Box{Lo: Vec3{-3, 0, -1}, Hi: Vec3{1, 2, 4}}); b != want {
		t.Errorf("box = %v, want %v", b, want)
	}
}

func TestBoxGeometry(t *testing.T) {
	b := Box{Lo: Vec3{0, 0, 0}, Hi: Vec3{2, 4, 4}}
	if c := b.Center(); c != (Vec3{1, 2, 2}) {
		t.Errorf("Center = %v", c)
	}
	if s := b.Size(); s != (Vec3{2, 4, 4}) {
		t.Errorf("Size = %v", s)
	}
	if r := b.Radius(); r != 3 {
		t.Errorf("Radius = %v, want 3", r)
	}
	if v := b.Volume(); v != 32 {
		t.Errorf("Volume = %v", v)
	}
	long, dim := b.LongestSide()
	if long != 4 || dim != 1 {
		t.Errorf("LongestSide = %v,%v", long, dim)
	}
	short, dim := b.ShortestSide()
	if short != 2 || dim != 0 {
		t.Errorf("ShortestSide = %v,%v", short, dim)
	}
	if ar := b.AspectRatio(); ar != 2 {
		t.Errorf("AspectRatio = %v", ar)
	}
	lo, hi := b.Interval(2)
	if lo != 0 || hi != 4 {
		t.Errorf("Interval(2) = %v,%v", lo, hi)
	}
}

func TestContainsBox(t *testing.T) {
	outer := Box{Lo: Vec3{0, 0, 0}, Hi: Vec3{10, 10, 10}}
	inner := Box{Lo: Vec3{1, 1, 1}, Hi: Vec3{9, 9, 9}}
	if !outer.ContainsBox(inner) {
		t.Error("outer should contain inner")
	}
	if inner.ContainsBox(outer) {
		t.Error("inner should not contain outer")
	}
	if !outer.ContainsBox(EmptyBox()) {
		t.Error("any box contains the empty box")
	}
}

func TestBoundingBox(t *testing.T) {
	xs := []float64{0, 1, -2}
	ys := []float64{5, -1, 3}
	zs := []float64{0, 0, 7}
	b := BoundingBox(xs, ys, zs)
	want := Box{Lo: Vec3{-2, -1, 0}, Hi: Vec3{1, 5, 7}}
	if b != want {
		t.Errorf("BoundingBox = %v, want %v", b, want)
	}
	if !BoundingBox(nil, nil, nil).IsEmpty() {
		t.Error("BoundingBox of nothing should be empty")
	}
}

func TestUnionCommutativeProperty(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3, c1, c2, c3, d1, d2, d3 float64) bool {
		x := NewBox(Vec3{clamp(a1), clamp(a2), clamp(a3)}, Vec3{clamp(b1), clamp(b2), clamp(b3)})
		y := NewBox(Vec3{clamp(c1), clamp(c2), clamp(c3)}, Vec3{clamp(d1), clamp(d2), clamp(d3)})
		u := x.Union(y)
		return u == y.Union(x) && u.ContainsBox(x) && u.ContainsBox(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDegenerateBoxAspect(t *testing.T) {
	flat := Box{Lo: Vec3{0, 0, 0}, Hi: Vec3{1, 1, 0}}
	if !math.IsInf(flat.AspectRatio(), 1) {
		t.Errorf("flat box aspect = %v, want +Inf", flat.AspectRatio())
	}
	if !math.IsNaN(EmptyBox().AspectRatio()) {
		t.Error("empty box aspect should be NaN")
	}
}
