// Package geom provides the small geometric primitives used throughout the
// treecode: 3-vectors, axis-aligned bounding boxes, and the center/radius
// summaries that the multipole acceptance criterion operates on.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or displacement in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the Euclidean inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Component returns the d-th coordinate of v, d in {0,1,2}.
func (v Vec3) Component(d int) float64 {
	switch d {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("geom: invalid component index %d", d))
}

// WithComponent returns a copy of v with the d-th coordinate replaced by x.
func (v Vec3) WithComponent(d int, x float64) Vec3 {
	switch d {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("geom: invalid component index %d", d))
	}
	return v
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }
