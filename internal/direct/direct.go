// Package direct implements O(N^2) direct summation of particle potentials,
// the exact reference that the treecode approximates (equation (1) of the
// paper) and the baseline in Figure 4. It provides a serial evaluator, a
// multicore evaluator parallelized over targets, and sampled-target
// evaluation for error measurement at large N (Section 4 samples the error
// at a random subset of targets for systems of 8M particles and up).
package direct

import (
	"runtime"
	"sync"

	"barytree/internal/kernel"
	"barytree/internal/particle"
)

// Sum computes phi[i] = sum_j G(x_i, y_j) q_j serially for all targets.
// When targets and sources are the same set, the singular self term is
// excluded by the kernel convention G(x,x) = 0.
func Sum(k kernel.Kernel, targets, sources *particle.Set) []float64 {
	phi := make([]float64, targets.Len())
	for i := range phi {
		phi[i] = at(k, targets, i, sources)
	}
	return phi
}

// SumParallel computes the same potentials using up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Targets are partitioned into
// contiguous blocks; each worker owns its block of the output, so no
// synchronization on phi is needed.
func SumParallel(k kernel.Kernel, targets, sources *particle.Set, workers int) []float64 {
	n := targets.Len()
	phi := make([]float64, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range phi {
			phi[i] = at(k, targets, i, sources)
		}
		return phi
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				phi[i] = at(k, targets, i, sources)
			}
		}(lo, hi)
	}
	wg.Wait()
	return phi
}

// SumAt computes the potentials only at the target indices in sample,
// returning them in the same order. This is the sampled reference used for
// error norms at large N.
func SumAt(k kernel.Kernel, targets *particle.Set, sample []int, sources *particle.Set) []float64 {
	phi := make([]float64, len(sample))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sample) {
		workers = len(sample)
	}
	if workers <= 1 {
		for i, t := range sample {
			phi[i] = at(k, targets, t, sources)
		}
		return phi
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(sample) / workers
		hi := (w + 1) * len(sample) / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				phi[i] = at(k, targets, sample[i], sources)
			}
		}(lo, hi)
	}
	wg.Wait()
	return phi
}

// at computes the potential at target index i due to all sources.
func at(k kernel.Kernel, targets *particle.Set, i int, sources *particle.Set) float64 {
	tx, ty, tz := targets.X[i], targets.Y[i], targets.Z[i]
	var phi float64
	for j := 0; j < sources.Len(); j++ {
		phi += k.Eval(tx, ty, tz, sources.X[j], sources.Y[j], sources.Z[j]) * sources.Q[j]
	}
	return phi
}

// Interactions returns the number of kernel evaluations a full direct sum
// performs; the performance model converts it to modeled time for the
// Figure 4 reference lines.
func Interactions(targets, sources *particle.Set) int64 {
	return int64(targets.Len()) * int64(sources.Len())
}
