// Package direct implements O(N^2) direct summation of particle potentials,
// the exact reference that the treecode approximates (equation (1) of the
// paper) and the baseline in Figure 4. It provides a serial evaluator, a
// multicore evaluator parallelized over targets, and sampled-target
// evaluation for error measurement at large N (Section 4 samples the error
// at a random subset of targets for systems of 8M particles and up).
//
// All evaluators resolve the kernel's tiled fast path (kernel.AsTile, and
// the register-blocked kernel.Tile8 when the kernel has one) once per call
// and evaluate a tile of targets per dispatch, so the O(N^2) inner loop
// streams the source arrays once per target tile and pays one dynamic
// dispatch per tile, not per pairwise interaction. Each target's potential
// is accumulated from zero in source order either way, so the tiling is
// bit-identical to the per-target block path for exact kernels; kernels
// whose installed tile carries a measured-ULP contract (kernel.TileMaxULP
// > 0, e.g. the vectorized Yukawa exp) match it within that contract.
package direct

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/pool"
)

// Sum computes phi[i] = sum_j G(x_i, y_j) q_j serially for all targets.
// When targets and sources are the same set, the singular self term is
// excluded by the kernel convention G(x,x) = 0.
func Sum(k kernel.Kernel, targets, sources *particle.Set) []float64 {
	tk := kernel.AsTile(k)
	t8 := kernel.Tile8(k)
	phi := make([]float64, targets.Len())
	sumRange(tk, t8, targets, sources, phi, 0, len(phi))
	return phi
}

// SumParallel computes the same potentials using up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Targets are partitioned into
// contiguous blocks; each worker owns its block of the output and tiles
// within it, so no synchronization on phi is needed.
func SumParallel(k kernel.Kernel, targets, sources *particle.Set, workers int) []float64 {
	tk := kernel.AsTile(k)
	t8 := kernel.Tile8(k)
	phi := make([]float64, targets.Len())
	pool.Blocks(len(phi), workers, func(_, lo, hi int) {
		sumRange(tk, t8, targets, sources, phi, lo, hi)
	})
	return phi
}

// SumAt computes the potentials only at the target indices in sample,
// returning them in the same order. This is the sampled reference used for
// error norms at large N. Tiles gather up to TileWidth sampled targets per
// dispatch; the indices need not be contiguous.
func SumAt(k kernel.Kernel, targets *particle.Set, sample []int, sources *particle.Set) []float64 {
	tk := kernel.AsTile(k)
	phi := make([]float64, len(sample))
	pool.Blocks(len(sample), 0, func(_, lo, hi int) {
		var tx, ty, tz, acc [kernel.TileWidth]float64
		i := lo
		for ; i+kernel.TileWidth <= hi; i += kernel.TileWidth {
			for l := 0; l < kernel.TileWidth; l++ {
				si := sample[i+l]
				tx[l] = targets.X[si]
				ty[l] = targets.Y[si]
				tz[l] = targets.Z[si]
				acc[l] = 0
			}
			tk.EvalTileAccum(&tx, &ty, &tz, sources.X, sources.Y, sources.Z, sources.Q, &acc)
			for l := 0; l < kernel.TileWidth; l++ {
				phi[i+l] = acc[l]
			}
		}
		for ; i < hi; i++ {
			phi[i] = at(tk, targets, sample[i], sources)
		}
	})
	return phi
}

// sumRange fills phi[lo:hi] with the potentials of targets [lo, hi)
// against all sources: Tile8Width register-blocked tiles first when the
// kernel has them, then TileWidth tiles, then the ragged tail through the
// single-target block path.
//
//hot:path
func sumRange(tk kernel.TileKernel, t8 kernel.Tile8Func, targets, sources *particle.Set, phi []float64, lo, hi int) {
	i := lo
	if t8 != nil {
		var tx8, ty8, tz8, acc8 [kernel.Tile8Width]float64
		for ; i+kernel.Tile8Width <= hi; i += kernel.Tile8Width {
			for l := 0; l < kernel.Tile8Width; l++ {
				tx8[l] = targets.X[i+l]
				ty8[l] = targets.Y[i+l]
				tz8[l] = targets.Z[i+l]
				acc8[l] = 0
			}
			t8(&tx8, &ty8, &tz8, sources.X, sources.Y, sources.Z, sources.Q, &acc8)
			for l := 0; l < kernel.Tile8Width; l++ {
				phi[i+l] = acc8[l]
			}
		}
	}
	var tx, ty, tz, acc [kernel.TileWidth]float64
	for ; i+kernel.TileWidth <= hi; i += kernel.TileWidth {
		for l := 0; l < kernel.TileWidth; l++ {
			tx[l] = targets.X[i+l]
			ty[l] = targets.Y[i+l]
			tz[l] = targets.Z[i+l]
			acc[l] = 0
		}
		tk.EvalTileAccum(&tx, &ty, &tz, sources.X, sources.Y, sources.Z, sources.Q, &acc)
		for l := 0; l < kernel.TileWidth; l++ {
			phi[i+l] = acc[l]
		}
	}
	for ; i < hi; i++ {
		phi[i] = at(tk, targets, i, sources)
	}
}

// at computes the potential at target index i due to all sources through
// the single-target block fast path.
//
//hot:path
func at(bk kernel.BlockKernel, targets *particle.Set, i int, sources *particle.Set) float64 {
	return bk.EvalBlockAccum(targets.X[i], targets.Y[i], targets.Z[i],
		sources.X, sources.Y, sources.Z, sources.Q)
}

// Interactions returns the number of kernel evaluations a full direct sum
// performs; the performance model converts it to modeled time for the
// Figure 4 reference lines.
func Interactions(targets, sources *particle.Set) int64 {
	return int64(targets.Len()) * int64(sources.Len())
}
