// Package direct implements O(N^2) direct summation of particle potentials,
// the exact reference that the treecode approximates (equation (1) of the
// paper) and the baseline in Figure 4. It provides a serial evaluator, a
// multicore evaluator parallelized over targets, and sampled-target
// evaluation for error measurement at large N (Section 4 samples the error
// at a random subset of targets for systems of 8M particles and up).
//
// All evaluators resolve the kernel's block fast path (kernel.AsBlock) once
// per call, so the O(N^2) inner loop pays one dynamic dispatch per target,
// not per pairwise interaction.
package direct

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/pool"
)

// Sum computes phi[i] = sum_j G(x_i, y_j) q_j serially for all targets.
// When targets and sources are the same set, the singular self term is
// excluded by the kernel convention G(x,x) = 0.
func Sum(k kernel.Kernel, targets, sources *particle.Set) []float64 {
	bk := kernel.AsBlock(k)
	phi := make([]float64, targets.Len())
	for i := range phi {
		phi[i] = at(bk, targets, i, sources)
	}
	return phi
}

// SumParallel computes the same potentials using up to workers goroutines
// (workers <= 0 selects GOMAXPROCS). Targets are partitioned into
// contiguous blocks; each worker owns its block of the output, so no
// synchronization on phi is needed.
func SumParallel(k kernel.Kernel, targets, sources *particle.Set, workers int) []float64 {
	bk := kernel.AsBlock(k)
	phi := make([]float64, targets.Len())
	pool.For(len(phi), workers, func(i int) {
		phi[i] = at(bk, targets, i, sources)
	})
	return phi
}

// SumAt computes the potentials only at the target indices in sample,
// returning them in the same order. This is the sampled reference used for
// error norms at large N.
func SumAt(k kernel.Kernel, targets *particle.Set, sample []int, sources *particle.Set) []float64 {
	bk := kernel.AsBlock(k)
	phi := make([]float64, len(sample))
	pool.For(len(sample), 0, func(i int) {
		phi[i] = at(bk, targets, sample[i], sources)
	})
	return phi
}

// at computes the potential at target index i due to all sources through
// the block fast path.
//
//hot:path
func at(bk kernel.BlockKernel, targets *particle.Set, i int, sources *particle.Set) float64 {
	return bk.EvalBlockAccum(targets.X[i], targets.Y[i], targets.Z[i],
		sources.X, sources.Y, sources.Z, sources.Q)
}

// Interactions returns the number of kernel evaluations a full direct sum
// performs; the performance model converts it to modeled time for the
// Figure 4 reference lines.
func Interactions(targets, sources *particle.Set) int64 {
	return int64(targets.Len()) * int64(sources.Len())
}
