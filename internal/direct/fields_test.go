package direct

import (
	"math"
	"math/rand"
	"testing"

	"barytree/internal/kernel"
	"barytree/internal/particle"
)

func TestFieldsTwoParticles(t *testing.T) {
	s := particle.NewSet(2)
	s.Append(0, 0, 0, 1)
	s.Append(2, 0, 0, 3)
	k := kernel.Coulomb{}
	phi, gx, gy, gz := Fields(k, s, s)
	// phi[0] = 3/2; d/dx (3/|x-y|) at x=0 toward y=+2: 3 * (x-y)/r^3 *
	// (-1) = 3*( -2 )/8 * ... = +3*2/8 = 0.75? Compute: grad 1/r =
	// -(x-y)/r^3; x-y = (-2,0,0), r=2 -> -(-2)/8 = +0.25, times q=3 -> 0.75.
	if phi[0] != 1.5 {
		t.Errorf("phi[0] = %g, want 1.5", phi[0])
	}
	if math.Abs(gx[0]-0.75) > 1e-15 || gy[0] != 0 || gz[0] != 0 {
		t.Errorf("grad[0] = (%g,%g,%g), want (0.75,0,0)", gx[0], gy[0], gz[0])
	}
	// Newton's third law flavor: the gradient at particle 1 points the
	// opposite way with magnitude scaled by the other charge.
	if math.Abs(gx[1]+0.25) > 1e-15 {
		t.Errorf("grad[1].x = %g, want -0.25", gx[1])
	}
}

func TestFieldsMatchFiniteDifferenceOfPotential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sources := particle.UniformCube(300, rng)
	k := kernel.Yukawa{Kappa: 0.7}
	// Probe at a point well outside the cube.
	probe := particle.NewSet(1)
	probe.Append(3, 0.5, -0.25, 0)
	_, gx, gy, gz := Fields(k, probe, sources)

	const h = 1e-6
	shift := func(dx, dy, dz float64) float64 {
		p := particle.NewSet(1)
		p.Append(3+dx, 0.5+dy, -0.25+dz, 0)
		return Sum(k, p, sources)[0]
	}
	fdx := (shift(h, 0, 0) - shift(-h, 0, 0)) / (2 * h)
	fdy := (shift(0, h, 0) - shift(0, -h, 0)) / (2 * h)
	fdz := (shift(0, 0, h) - shift(0, 0, -h)) / (2 * h)
	scale := math.Abs(fdx) + math.Abs(fdy) + math.Abs(fdz) + 1e-12
	if math.Abs(gx[0]-fdx)/scale > 1e-5 || math.Abs(gy[0]-fdy)/scale > 1e-5 || math.Abs(gz[0]-fdz)/scale > 1e-5 {
		t.Errorf("analytic (%g,%g,%g) vs FD (%g,%g,%g)", gx[0], gy[0], gz[0], fdx, fdy, fdz)
	}
}

func TestFieldsAtMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := particle.UniformCube(400, rng)
	k := kernel.Coulomb{}
	phi, gx, gy, gz := Fields(k, pts, pts)
	sample := []int{0, 100, 399}
	sp, sgx, sgy, sgz := FieldsAt(k, pts, sample, pts)
	for i, idx := range sample {
		if sp[i] != phi[idx] || sgx[i] != gx[idx] || sgy[i] != gy[idx] || sgz[i] != gz[idx] {
			t.Fatalf("sampled field mismatch at %d", idx)
		}
	}
}

func TestFieldsEmptySources(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tg := particle.UniformCube(5, rng)
	phi, gx, _, _ := Fields(kernel.Coulomb{}, tg, particle.NewSet(0))
	for i := range phi {
		if phi[i] != 0 || gx[i] != 0 {
			t.Fatal("no sources but nonzero field")
		}
	}
}
