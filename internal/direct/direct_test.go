package direct

import (
	"math"
	"math/rand"
	"testing"

	"barytree/internal/kernel"
	"barytree/internal/particle"
)

func TestSumTwoParticles(t *testing.T) {
	s := particle.NewSet(2)
	s.Append(0, 0, 0, 2)
	s.Append(1, 0, 0, 3)
	phi := Sum(kernel.Coulomb{}, s, s)
	// phi[0] = q1/|x0-y1| = 3, phi[1] = q0/1 = 2 (self term excluded).
	if phi[0] != 3 || phi[1] != 2 {
		t.Fatalf("phi = %v", phi)
	}
}

func TestSumMatchesHandComputed(t *testing.T) {
	tg := particle.NewSet(1)
	tg.Append(0, 0, 0, 0)
	src := particle.NewSet(3)
	src.Append(1, 0, 0, 1)  // contributes 1
	src.Append(0, 2, 0, -4) // contributes -2
	src.Append(0, 0, 4, 8)  // contributes 2
	phi := Sum(kernel.Coulomb{}, tg, src)
	if math.Abs(phi[0]-1) > 1e-15 {
		t.Fatalf("phi = %v, want 1", phi[0])
	}
}

// TestParallelMatchesSerial checks that partitioning targets over workers
// does not change the potentials. With the pure-Go loops every kernel is
// bit-identical regardless of partition. With the assembly kernels
// installed, a worker boundary can move a target between the vectorized
// tile and the scalar tail, so a kernel with a measured-ULP tile contract
// (Yukawa) is only guaranteed within twice the contract's additive
// tolerance — each side may independently be off by maxULP ulps per term.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := particle.UniformCube(1500, rng)
	k := kernel.Yukawa{Kappa: 0.5}

	check := func(t *testing.T) {
		serial := Sum(k, pts, pts)
		maxULP := kernel.TileMaxULP(k)
		var tol []float64
		if maxULP != 0 {
			tol = make([]float64, pts.Len())
			for i := range tol {
				var absSum float64
				for j := 0; j < pts.Len(); j++ {
					absSum += math.Abs(k.Eval(pts.X[i], pts.Y[i], pts.Z[i], pts.X[j], pts.Y[j], pts.Z[j]) * pts.Q[j])
				}
				ulp := math.Nextafter(absSum, math.Inf(1)) - absSum
				tol[i] = 2 * float64(maxULP+1) * float64(pts.Len()) * ulp
			}
		}
		for _, workers := range []int{1, 2, 4, 7, 16, 0} {
			par := SumParallel(k, pts, pts, workers)
			for i := range serial {
				if maxULP == 0 {
					if par[i] != serial[i] {
						t.Fatalf("workers=%d: phi[%d] %g != %g", workers, i, par[i], serial[i])
					}
				} else if diff := math.Abs(par[i] - serial[i]); diff > tol[i] {
					t.Fatalf("workers=%d: phi[%d] %g vs %g, |diff| %g exceeds ULP-contract tolerance %g",
						workers, i, par[i], serial[i], diff, tol[i])
				}
			}
		}
	}

	t.Run("installed", check)
	t.Run("pure-go", func(t *testing.T) {
		prev := kernel.SetAsmKernels(false)
		defer kernel.SetAsmKernels(prev)
		check(t)
	})
}

func TestSumAtMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := particle.UniformCube(800, rng)
	k := kernel.Coulomb{}
	full := Sum(k, pts, pts)
	sample := []int{0, 17, 203, 799, 400}
	sampled := SumAt(k, pts, sample, pts)
	for i, idx := range sample {
		if sampled[i] != full[idx] {
			t.Fatalf("sampled[%d] = %g, full[%d] = %g", i, sampled[i], idx, full[idx])
		}
	}
}

func TestDisjointTargetsSources(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tg := particle.UniformCube(100, rng)
	src := particle.UniformCube(300, rng)
	phi := SumParallel(kernel.Coulomb{}, tg, src, 0)
	if len(phi) != 100 {
		t.Fatalf("got %d potentials", len(phi))
	}
	// Spot check one target.
	var want float64
	k := kernel.Coulomb{}
	for j := 0; j < src.Len(); j++ {
		want += k.Eval(tg.X[42], tg.Y[42], tg.Z[42], src.X[j], src.Y[j], src.Z[j]) * src.Q[j]
	}
	if phi[42] != want {
		t.Fatalf("phi[42] = %g, want %g", phi[42], want)
	}
}

func TestInteractions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tg := particle.UniformCube(10, rng)
	src := particle.UniformCube(20, rng)
	if got := Interactions(tg, src); got != 200 {
		t.Fatalf("Interactions = %d", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := particle.NewSet(0)
	if got := Sum(kernel.Coulomb{}, empty, empty); len(got) != 0 {
		t.Fatalf("empty sum = %v", got)
	}
	rng := rand.New(rand.NewSource(5))
	tg := particle.UniformCube(5, rng)
	phi := SumParallel(kernel.Coulomb{}, tg, empty, 0)
	for _, v := range phi {
		if v != 0 {
			t.Fatalf("no sources but phi = %v", phi)
		}
	}
}
