package direct

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/pool"
)

// Fields computes potentials and gradients at all targets by direct
// summation, parallelized over targets. The returned slices are indexed by
// target.
func Fields(k kernel.GradKernel, targets, sources *particle.Set) (phi, gx, gy, gz []float64) {
	n := targets.Len()
	phi = make([]float64, n)
	gx = make([]float64, n)
	gy = make([]float64, n)
	gz = make([]float64, n)
	pool.For(n, 0, func(i int) {
		phi[i], gx[i], gy[i], gz[i] = fieldAt(k, targets, i, sources)
	})
	return phi, gx, gy, gz
}

// FieldsAt computes potentials and gradients only at the sampled target
// indices.
func FieldsAt(k kernel.GradKernel, targets *particle.Set, sample []int, sources *particle.Set) (phi, gx, gy, gz []float64) {
	phi = make([]float64, len(sample))
	gx = make([]float64, len(sample))
	gy = make([]float64, len(sample))
	gz = make([]float64, len(sample))
	for i, t := range sample {
		phi[i], gx[i], gy[i], gz[i] = fieldAt(k, targets, t, sources)
	}
	return phi, gx, gy, gz
}

func fieldAt(k kernel.GradKernel, targets *particle.Set, i int, sources *particle.Set) (phi, gx, gy, gz float64) {
	tx, ty, tz := targets.X[i], targets.Y[i], targets.Z[i]
	for j := 0; j < sources.Len(); j++ {
		g, dx, dy, dz := k.EvalGrad(tx, ty, tz, sources.X[j], sources.Y[j], sources.Z[j])
		q := sources.Q[j]
		phi += g * q
		gx += dx * q
		gy += dy * q
		gz += dz * q
	}
	return phi, gx, gy, gz
}
