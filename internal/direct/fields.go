package direct

import (
	"runtime"
	"sync"

	"barytree/internal/kernel"
	"barytree/internal/particle"
)

// Fields computes potentials and gradients at all targets by direct
// summation, parallelized over targets. The returned slices are indexed by
// target.
func Fields(k kernel.GradKernel, targets, sources *particle.Set) (phi, gx, gy, gz []float64) {
	n := targets.Len()
	phi = make([]float64, n)
	gx = make([]float64, n)
	gy = make([]float64, n)
	gz = make([]float64, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				phi[i], gx[i], gy[i], gz[i] = fieldAt(k, targets, i, sources)
			}
		}(lo, hi)
	}
	wg.Wait()
	return phi, gx, gy, gz
}

// FieldsAt computes potentials and gradients only at the sampled target
// indices.
func FieldsAt(k kernel.GradKernel, targets *particle.Set, sample []int, sources *particle.Set) (phi, gx, gy, gz []float64) {
	phi = make([]float64, len(sample))
	gx = make([]float64, len(sample))
	gy = make([]float64, len(sample))
	gz = make([]float64, len(sample))
	for i, t := range sample {
		phi[i], gx[i], gy[i], gz[i] = fieldAt(k, targets, t, sources)
	}
	return phi, gx, gy, gz
}

func fieldAt(k kernel.GradKernel, targets *particle.Set, i int, sources *particle.Set) (phi, gx, gy, gz float64) {
	tx, ty, tz := targets.X[i], targets.Y[i], targets.Z[i]
	for j := 0; j < sources.Len(); j++ {
		g, dx, dy, dz := k.EvalGrad(tx, ty, tz, sources.X[j], sources.Y[j], sources.Z[j])
		q := sources.Q[j]
		phi += g * q
		gx += dx * q
		gy += dy * q
		gz += dz * q
	}
	return phi, gx, gy, gz
}
