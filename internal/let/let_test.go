package let

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"barytree/internal/geom"
	"barytree/internal/interaction"
	"barytree/internal/mpisim"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/rcb"
	"barytree/internal/tree"
)

func TestSerializeRoundTrip(t *testing.T) {
	pts := particle.UniformCube(2000, rand.New(rand.NewSource(1)))
	tr := tree.Build(pts, 100)
	geomArr, topoArr, childArr := SerializeTree(tr)
	v, err := Deserialize(geomArr, topoArr, childArr)
	if err != nil {
		t.Fatal(err)
	}
	if v.N != len(tr.Nodes) {
		t.Fatalf("decoded %d nodes, want %d", v.N, len(tr.Nodes))
	}
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if v.CX[i] != nd.Center.X || v.CY[i] != nd.Center.Y || v.CZ[i] != nd.Center.Z {
			t.Fatalf("node %d center mismatch", i)
		}
		if v.R[i] != nd.Radius {
			t.Fatalf("node %d radius mismatch", i)
		}
		if v.Boxes[i] != nd.Box {
			t.Fatalf("node %d box mismatch", i)
		}
		if int(v.Lo[i]) != nd.Lo || int(v.Count[i]) != nd.Count() {
			t.Fatalf("node %d range mismatch", i)
		}
		if v.IsLeaf(int32(i)) != nd.IsLeaf() {
			t.Fatalf("node %d leaf flag mismatch", i)
		}
		kids := v.ChildrenOf(int32(i))
		if len(kids) != len(nd.Children) {
			t.Fatalf("node %d has %d decoded children, want %d", i, len(kids), len(nd.Children))
		}
		for j := range kids {
			if kids[j] != nd.Children[j] {
				t.Fatalf("node %d child %d mismatch", i, j)
			}
		}
	}
}

func TestDeserializeRejectsCorruptArrays(t *testing.T) {
	pts := particle.UniformCube(200, rand.New(rand.NewSource(2)))
	tr := tree.Build(pts, 50)
	geomArr, topoArr, childArr := SerializeTree(tr)

	if _, err := Deserialize(geomArr[:len(geomArr)-1], topoArr, childArr); err == nil {
		t.Error("truncated geometry accepted")
	}
	if _, err := Deserialize(geomArr, topoArr[:len(topoArr)-1], childArr); err == nil {
		t.Error("truncated topology accepted")
	}
	if len(childArr) > 0 {
		bad := append([]int64{}, childArr...)
		bad[0] = 9999
		if _, err := Deserialize(geomArr, topoArr, bad); err == nil {
			t.Error("out-of-range child accepted")
		}
	}
}

func TestInterleaveParticles(t *testing.T) {
	s := particle.NewSet(2)
	s.Append(1, 2, 3, 4)
	s.Append(5, 6, 7, 8)
	got := InterleaveParticles(s)
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleave = %v", got)
		}
	}
}

func TestFlattenCharges(t *testing.T) {
	qhat := [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}, {9, 10, 11, 12, 13, 14, 15, 16}}
	flat, err := FlattenCharges(qhat, 1) // (1+1)^3 = 8 per node
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 16 || flat[0] != 1 || flat[8] != 9 {
		t.Fatalf("flat = %v", flat)
	}
	if _, err := FlattenCharges([][]float64{{1, 2}}, 1); err == nil {
		t.Error("wrong-size node accepted")
	}
}

// buildWorkers is the worker count buildLETFixture passes to Build; the
// determinism test overrides it to pin worker-count independence, every
// other test runs with the default.
var buildWorkers = 0

// buildLETFixture partitions particles over `ranks` ranks, builds local
// trees, exposes windows with synthetic charges, and builds each rank's
// LET, calling check on each rank's pieces.
func buildLETFixture(t *testing.T, n, ranks int, mac interaction.MAC,
	check func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree)) {
	t.Helper()
	pts := particle.UniformCube(n, rand.New(rand.NewSource(7)))
	dec := rcb.Partition(pts, ranks, pts.Bounds())
	locals := make([]*particle.Set, ranks)
	trees := make([]*tree.Tree, ranks)
	for r := 0; r < ranks; r++ {
		locals[r], _ = dec.Extract(pts, r)
		trees[r] = tree.Build(locals[r], 60)
	}
	np := mac.InterpPoints()
	err := mpisim.Run(ranks, perfmodel.CometIB(), func(r *mpisim.Rank) error {
		tr := trees[r.ID()]
		// Synthetic charges: value encodes (rank, node, point) so fetches
		// can be verified exactly.
		flat := make([]float64, len(tr.Nodes)*np)
		for ni := range tr.Nodes {
			for p := 0; p < np; p++ {
				flat[ni*np+p] = float64(r.ID()*1_000_000 + ni*1000 + p)
			}
		}
		wins := Expose(r, tr, flat, mac.Degree)
		r.Barrier()
		batches := tree.BuildBatches(locals[r.ID()], 60)
		l, err := Build(r, wins, batches, mac, buildWorkers)
		if err != nil {
			return err
		}
		check(r, l, locals, trees)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLETFetchesExactCharges(t *testing.T) {
	mac := interaction.MAC{Theta: 0.7, Degree: 2}
	np := mac.InterpPoints()
	buildLETFixture(t, 4000, 4, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		for i, home := range l.ClusterHome {
			rank, node := int(home[0]), int(home[1])
			if rank == r.ID() {
				t.Errorf("rank %d fetched its own cluster %d", r.ID(), node)
			}
			for p := 0; p < np; p++ {
				want := float64(rank*1_000_000 + node*1000 + p)
				if l.ClusterQhat[i][p] != want {
					t.Fatalf("rank %d cluster %d charge %d = %g, want %g",
						r.ID(), i, p, l.ClusterQhat[i][p], want)
				}
			}
		}
	})
}

func TestLETFetchesExactParticles(t *testing.T) {
	mac := interaction.MAC{Theta: 0.7, Degree: 2}
	buildLETFixture(t, 4000, 3, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		for i, home := range l.LeafHome {
			rank, node := int(home[0]), int(home[1])
			nd := &trees[rank].Nodes[node]
			leaf := l.Leaves[i]
			if leaf.Len() != nd.Count() {
				t.Fatalf("leaf %d has %d particles, want %d", i, leaf.Len(), nd.Count())
			}
			src := trees[rank].Particles
			for j := 0; j < leaf.Len(); j++ {
				if leaf.X[j] != src.X[nd.Lo+j] || leaf.Q[j] != src.Q[nd.Lo+j] {
					t.Fatalf("leaf %d particle %d mismatch", i, j)
				}
			}
		}
	})
}

func TestLETClusterPointsMatchRemoteGrids(t *testing.T) {
	mac := interaction.MAC{Theta: 0.7, Degree: 3}
	buildLETFixture(t, 3000, 2, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		for i, home := range l.ClusterHome {
			rank, node := int(home[0]), int(home[1])
			box := trees[rank].Nodes[node].Box
			// First point is the box's (Hi,Hi,Hi) corner (Chebyshev k=0).
			if l.ClusterPX[i][0] != box.Hi.X || l.ClusterPY[i][0] != box.Hi.Y || l.ClusterPZ[i][0] != box.Hi.Z {
				t.Fatalf("cluster %d first point (%g,%g,%g) != box corner %v",
					i, l.ClusterPX[i][0], l.ClusterPY[i][0], l.ClusterPZ[i][0], box.Hi)
			}
			np := mac.InterpPoints()
			last := np - 1
			if l.ClusterPX[i][last] != box.Lo.X {
				t.Fatalf("cluster %d last point not at box corner", i)
			}
		}
	})
}

func TestLETListsSatisfyMAC(t *testing.T) {
	mac := interaction.MAC{Theta: 0.6, Degree: 2}
	buildLETFixture(t, 5000, 4, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		batches := tree.BuildBatches(locals[r.ID()], 60)
		for bi := range batches.Batches {
			b := &batches.Batches[bi]
			for _, li := range l.Approx[bi] {
				// Reconstruct cluster center from home reference.
				home := l.ClusterHome[li]
				nd := &trees[home[0]].Nodes[home[1]]
				dist := b.Center.Dist(nd.Center)
				if b.Radius+nd.Radius >= mac.Theta*dist {
					t.Fatalf("rank %d batch %d approximates remote cluster violating MAC", r.ID(), bi)
				}
			}
		}
	})
}

func TestLETCoversAllRemoteParticles(t *testing.T) {
	// For each batch, remote direct leaves + remote approx clusters must
	// cover every remote particle exactly once (completeness of the LET).
	mac := interaction.MAC{Theta: 0.7, Degree: 2}
	ranks := 3
	buildLETFixture(t, 3000, ranks, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		var remoteTotal int
		for q := 0; q < ranks; q++ {
			if q != r.ID() {
				remoteTotal += locals[q].Len()
			}
		}
		batches := tree.BuildBatches(locals[r.ID()], 60)
		for bi := range batches.Batches {
			covered := 0
			for _, li := range l.Direct[bi] {
				covered += l.Leaves[li].Len()
			}
			for _, li := range l.Approx[bi] {
				home := l.ClusterHome[li]
				covered += trees[home[0]].Nodes[home[1]].Count()
			}
			if covered != remoteTotal {
				t.Fatalf("rank %d batch %d covers %d remote particles, want %d",
					r.ID(), bi, covered, remoteTotal)
			}
		}
	})
}

func TestLETDedupAcrossBatches(t *testing.T) {
	// A cluster needed by several batches must be fetched exactly once.
	mac := interaction.MAC{Theta: 0.7, Degree: 2}
	buildLETFixture(t, 4000, 2, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		seen := map[[2]int32]bool{}
		for _, h := range l.ClusterHome {
			if seen[h] {
				t.Fatalf("cluster %v fetched twice", h)
			}
			seen[h] = true
		}
		seenLeaf := map[[2]int32]bool{}
		for _, h := range l.LeafHome {
			if seenLeaf[h] {
				t.Fatalf("leaf %v fetched twice", h)
			}
			seenLeaf[h] = true
		}
	})
}

func TestLETBytesPositive(t *testing.T) {
	mac := interaction.MAC{Theta: 0.7, Degree: 2}
	buildLETFixture(t, 3000, 2, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
		if l.Bytes() <= 0 {
			t.Errorf("rank %d LET bytes = %d", r.ID(), l.Bytes())
		}
		if l.Stats.MACTests == 0 {
			t.Errorf("rank %d performed no remote MAC tests", r.ID())
		}
	})
}

func TestGeomBoxRoundTripThroughWindow(t *testing.T) {
	// Guard against stride mismatches: a hand-built 1-node tree must
	// round-trip exactly.
	s := particle.NewSet(3)
	s.Append(0, 0, 0, 1)
	s.Append(1, 2, 3, -1)
	s.Append(0.5, 1, 1.5, 0.25)
	tr := tree.Build(s, 10)
	g, tp, ch := SerializeTree(tr)
	if len(g) != GeomStride || len(tp) != TopoStride || len(ch) != 0 {
		t.Fatalf("unexpected array sizes %d %d %d", len(g), len(tp), len(ch))
	}
	v, err := Deserialize(g, tp, ch)
	if err != nil {
		t.Fatal(err)
	}
	want := geom.BoundingBox(s.X, s.Y, s.Z)
	if v.Boxes[0] != want {
		t.Fatalf("box %v, want %v", v.Boxes[0], want)
	}
}

// TestLETBuildWorkersDeterministic pins the bit-identity contract of the
// parallel LET traversal: the full LET — fetched clusters/leaves, their
// first-encounter ordering, per-batch lists and Stats — must deep-equal the
// serial construction for every worker count.
func TestLETBuildWorkersDeterministic(t *testing.T) {
	mac := interaction.MAC{Theta: 0.7, Degree: 2}
	collect := func(workers int) map[int]*LET {
		old := buildWorkers
		buildWorkers = workers
		defer func() { buildWorkers = old }()
		lets := make(map[int]*LET)
		var mu sync.Mutex
		buildLETFixture(t, 4000, 3, mac, func(r *mpisim.Rank, l *LET, locals []*particle.Set, trees []*tree.Tree) {
			mu.Lock()
			lets[r.ID()] = l
			mu.Unlock()
		})
		return lets
	}
	want := collect(1)
	for _, w := range []int{2, 3, 4, 7, runtime.GOMAXPROCS(0)} {
		got := collect(w)
		for rank, l := range want {
			if !reflect.DeepEqual(l, got[rank]) {
				t.Fatalf("workers=%d: rank %d LET differs from serial", w, rank)
			}
		}
	}
}
