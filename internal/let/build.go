package let

import (
	"fmt"

	"barytree/internal/chebyshev"
	"barytree/internal/geom"
	"barytree/internal/interaction"
	"barytree/internal/mpisim"
	"barytree/internal/particle"
	"barytree/internal/pool"
	"barytree/internal/trace"
	"barytree/internal/tree"
)

// Windows are the RMA windows one rank exposes for LET construction: its
// serialized tree arrays, its source particles (tree order, interleaved
// x,y,z,q with stride 4), and its cluster charges (node-major, (n+1)^3
// values per node).
type Windows struct {
	Geom      *mpisim.Window[float64]
	Topo      *mpisim.Window[int64]
	Child     *mpisim.Window[int64]
	Particles *mpisim.Window[float64]
	Charges   *mpisim.Window[float64]
	Degree    int
}

// InterleaveParticles flattens a particle set into the stride-4 layout of
// the particle window.
func InterleaveParticles(s *particle.Set) []float64 {
	out := make([]float64, 0, 4*s.Len())
	for i := 0; i < s.Len(); i++ {
		out = append(out, s.X[i], s.Y[i], s.Z[i], s.Q[i])
	}
	return out
}

// FlattenCharges concatenates per-node modified charges node-major. Every
// node must carry exactly (degree+1)^3 values.
func FlattenCharges(qhat [][]float64, degree int) ([]float64, error) {
	np := (degree + 1) * (degree + 1) * (degree + 1)
	out := make([]float64, 0, len(qhat)*np)
	for i, q := range qhat {
		if len(q) != np {
			return nil, fmt.Errorf("let: node %d has %d charges, want %d", i, len(q), np)
		}
		out = append(out, q...)
	}
	return out, nil
}

// Expose collectively creates the five RMA windows from this rank's local
// tree and charge data. Every rank must call it at the same point in its
// execution. The charge slice is shared, not copied, so charges computed
// *before* Expose are visible to remote Gets.
func Expose(r *mpisim.Rank, t *tree.Tree, chargesFlat []float64, degree int) *Windows {
	geomArr, topoArr, childArr := SerializeTree(t)
	// Serialization is charged no modeled time (it is part of the tree
	// build's counted work), so it traces as an instant marker.
	r.Tracer.Span("let.serialize", trace.CatBuild, r.ID(), trace.TrackHost,
		r.Clock.Now(), r.Clock.Now(),
		trace.A("nodes", len(t.Nodes)),
		trace.A("words", len(geomArr)+len(topoArr)+len(childArr)))
	return &Windows{
		Geom:      mpisim.NewWindow(r, geomArr),
		Topo:      mpisim.NewWindow(r, topoArr),
		Child:     mpisim.NewWindow(r, childArr),
		Particles: mpisim.NewWindow(r, InterleaveParticles(t.Particles)),
		Charges:   mpisim.NewWindow(r, chargesFlat),
		Degree:    degree,
	}
}

// LET is one rank's locally essential tree: the remote clusters its target
// batches approximate, the remote leaf particles they interact with
// directly, and the per-batch interaction lists over them.
type LET struct {
	Degree int

	// Fetched remote approximation clusters (flattened interpolation
	// points plus modified charges).
	ClusterPX, ClusterPY, ClusterPZ [][]float64
	ClusterQhat                     [][]float64
	// Source rank and node of each fetched cluster, for diagnostics.
	ClusterHome [][2]int32

	// Fetched remote direct-interaction leaves.
	Leaves   []*particle.Set
	LeafHome [][2]int32

	// Per-local-batch interaction lists indexing the slices above.
	Approx [][]int32
	Direct [][]int32

	// Stats accumulates remote-traversal MAC tests and the interaction
	// volume added by remote data.
	Stats interaction.Stats
}

// remoteTraversal is one batch's MAC traversal of one remote tree: the
// remote nodes it approximates and interacts directly with, in traversal
// encounter order, plus the traversal's share of the Stats counters.
type remoteTraversal struct {
	approx, direct []int32
	stats          interaction.Stats
}

// traverseRemote runs the MAC traversal of batch b against a remote tree
// view. It reuses (and returns, possibly grown) the caller's stack.
func traverseRemote(b *tree.Batch, view *TreeView, mac interaction.MAC, np int, stack []int32, res *remoteTraversal) []int32 {
	nb := int64(b.Count())
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.stats.MACTests++
		dx := b.Center.X - view.CX[ci]
		dy := b.Center.Y - view.CY[ci]
		dz := b.Center.Z - view.CZ[ci]
		dist := geom.Vec3{X: dx, Y: dy, Z: dz}.Norm()
		switch mac.Test(dist, b.Radius, view.R[ci], int(view.Count[ci]), view.IsLeaf(ci)) {
		case interaction.Approximate:
			res.approx = append(res.approx, ci)
			res.stats.ApproxPairs++
			res.stats.ApproxInteractions += nb * int64(np)
		case interaction.Direct:
			res.direct = append(res.direct, ci)
			res.stats.DirectPairs++
			res.stats.DirectInteractions += nb * int64(view.Count[ci])
		case interaction.Recurse:
			stack = append(stack, view.ChildrenOf(ci)...)
		}
	}
	return stack
}

// Build constructs this rank's LET: for every remote rank it gets the tree
// arrays, traverses them against the local target batches with the MAC, and
// gets exactly the cluster charges and source particles the resulting
// interaction lists require. All communication is one-sided; no remote rank
// participates.
//
// The per-batch traversals run on up to `workers` goroutines (<= 0 selects
// GOMAXPROCS); batches are independent, and the traversal results are
// merged serially in batch order afterwards, so the LET — including the
// first-encounter ordering of fetched clusters/leaves, the RMA Get
// sequence, the Stats counters and therefore all modeled times and traces —
// is identical to the serial construction for every worker count.
func Build(r *mpisim.Rank, wins *Windows, batches *tree.BatchSet, mac interaction.MAC, workers int) (*LET, error) {
	l := &LET{
		Degree: wins.Degree,
		Approx: make([][]int32, len(batches.Batches)),
		Direct: make([][]int32, len(batches.Batches)),
	}
	np := mac.InterpPoints()
	buildStart := r.Clock.Now()
	results := make([]remoteTraversal, len(batches.Batches))
	for remote := 0; remote < r.Size(); remote++ {
		if remote == r.ID() {
			continue
		}
		// Step 1: get the remote tree arrays and build interaction lists.
		geomArr := wins.Geom.GetAll(r, remote)
		topoArr := wins.Topo.GetAll(r, remote)
		childArr := wins.Child.GetAll(r, remote)
		view, err := Deserialize(geomArr, topoArr, childArr)
		if err != nil {
			return nil, fmt.Errorf("let: rank %d decoding rank %d tree: %w", r.ID(), remote, err)
		}
		if view.N == 0 {
			continue
		}

		pool.Blocks(len(batches.Batches), workers, func(_, lo, hi int) {
			var stack []int32
			for bi := lo; bi < hi; bi++ {
				res := &results[bi]
				res.approx = res.approx[:0]
				res.direct = res.direct[:0]
				res.stats = interaction.Stats{}
				stack = traverseRemote(&batches.Batches[bi], view, mac, np, stack, res)
			}
		})

		approxIdx := map[int32]int32{} // remote node -> LET cluster index
		directIdx := map[int32]int32{} // remote node -> LET leaf index
		var approxNodes, directNodes []int32
		for bi := range results {
			res := &results[bi]
			for _, ci := range res.approx {
				li, ok := approxIdx[ci]
				if !ok {
					li = int32(len(l.ClusterPX) + len(approxNodes))
					approxIdx[ci] = li
					approxNodes = append(approxNodes, ci)
				}
				l.Approx[bi] = append(l.Approx[bi], li)
			}
			for _, ci := range res.direct {
				li, ok := directIdx[ci]
				if !ok {
					li = int32(len(l.Leaves) + len(directNodes))
					directIdx[ci] = li
					directNodes = append(directNodes, ci)
				}
				l.Direct[bi] = append(l.Direct[bi], li)
			}
			l.Stats.MACTests += res.stats.MACTests
			l.Stats.ApproxPairs += res.stats.ApproxPairs
			l.Stats.DirectPairs += res.stats.DirectPairs
			l.Stats.ApproxInteractions += res.stats.ApproxInteractions
			l.Stats.DirectInteractions += res.stats.DirectInteractions
		}

		// Step 2: get the cluster charges and particles the lists demand.
		if len(approxNodes) > 0 {
			epochStart := r.Clock.Now()
			wins.Charges.Lock(remote)
			for _, ci := range approxNodes {
				qhat := make([]float64, np)
				wins.Charges.Get(r, remote, int(ci)*np, qhat)
				g := chebyshev.NewGrid3D(wins.Degree, view.Boxes[ci])
				px, py, pz := g.FlattenedPoints()
				l.ClusterPX = append(l.ClusterPX, px)
				l.ClusterPY = append(l.ClusterPY, py)
				l.ClusterPZ = append(l.ClusterPZ, pz)
				l.ClusterQhat = append(l.ClusterQhat, qhat)
				l.ClusterHome = append(l.ClusterHome, [2]int32{int32(remote), ci})
			}
			wins.Charges.Unlock(remote)
			r.Tracer.Span("rma.epoch", trace.CatComm, r.ID(), trace.TrackNet,
				epochStart, r.Clock.Now(),
				trace.A("target", remote), trace.A("ops", len(approxNodes)))
		}
		if len(directNodes) > 0 {
			epochStart := r.Clock.Now()
			wins.Particles.Lock(remote)
			for _, ci := range directNodes {
				count := int(view.Count[ci])
				buf := make([]float64, 4*count)
				wins.Particles.Get(r, remote, int(view.Lo[ci])*4, buf)
				set := particle.NewSet(count)
				for j := 0; j < count; j++ {
					set.Append(buf[4*j], buf[4*j+1], buf[4*j+2], buf[4*j+3])
				}
				l.Leaves = append(l.Leaves, set)
				l.LeafHome = append(l.LeafHome, [2]int32{int32(remote), ci})
			}
			wins.Particles.Unlock(remote)
			r.Tracer.Span("rma.epoch", trace.CatComm, r.ID(), trace.TrackNet,
				epochStart, r.Clock.Now(),
				trace.A("target", remote), trace.A("ops", len(directNodes)))
		}
	}
	r.Tracer.Span("let.build", trace.CatBuild, r.ID(), trace.TrackHost,
		buildStart, r.Clock.Now(),
		trace.A("clusters", len(l.ClusterQhat)), trace.A("leaves", len(l.Leaves)),
		trace.A("bytes", l.Bytes()), trace.A("mac_tests", l.Stats.MACTests))
	r.Tracer.Add("let.clusters", float64(len(l.ClusterQhat)))
	r.Tracer.Add("let.leaves", float64(len(l.Leaves)))
	r.Tracer.Add("let.bytes", float64(l.Bytes()))
	return l, nil
}

// Bytes returns the approximate size of the LET's fetched payload (cluster
// charges plus particles), i.e. the HtD volume the compute phase must copy
// in addition to local data.
func (l *LET) Bytes() int64 {
	var n int64
	for _, q := range l.ClusterQhat {
		n += int64(len(q)) * 8
	}
	for _, s := range l.Leaves {
		n += int64(s.Len()) * 4 * 8
	}
	return n
}
