package let

import (
	"fmt"

	"barytree/internal/chebyshev"
	"barytree/internal/geom"
	"barytree/internal/interaction"
	"barytree/internal/mpisim"
	"barytree/internal/particle"
	"barytree/internal/pool"
	"barytree/internal/trace"
	"barytree/internal/tree"
)

// Windows are the RMA windows one rank exposes for LET construction: its
// serialized tree arrays, its source particles (tree order, interleaved
// x,y,z,q with stride 4), and its cluster charges (node-major, (n+1)^3
// values per node).
type Windows struct {
	Geom      *mpisim.Window[float64]
	Topo      *mpisim.Window[int64]
	Child     *mpisim.Window[int64]
	Particles *mpisim.Window[float64]
	Charges   *mpisim.Window[float64]
	Degree    int
}

// InterleaveParticles flattens a particle set into the stride-4 layout of
// the particle window.
func InterleaveParticles(s *particle.Set) []float64 {
	out := make([]float64, 0, 4*s.Len())
	for i := 0; i < s.Len(); i++ {
		out = append(out, s.X[i], s.Y[i], s.Z[i], s.Q[i])
	}
	return out
}

// FlattenCharges concatenates per-node modified charges node-major. Every
// node must carry exactly (degree+1)^3 values.
func FlattenCharges(qhat [][]float64, degree int) ([]float64, error) {
	np := (degree + 1) * (degree + 1) * (degree + 1)
	out := make([]float64, 0, len(qhat)*np)
	for i, q := range qhat {
		if len(q) != np {
			return nil, fmt.Errorf("let: node %d has %d charges, want %d", i, len(q), np)
		}
		out = append(out, q...)
	}
	return out, nil
}

// Expose collectively creates the five RMA windows from this rank's local
// tree and charge data. Every rank must call it at the same point in its
// execution. The charge slice is shared, not copied, so charges computed
// *before* Expose are visible to remote Gets.
func Expose(r *mpisim.Rank, t *tree.Tree, chargesFlat []float64, degree int) *Windows {
	geomArr, topoArr, childArr := SerializeTree(t)
	// Serialization is charged no modeled time (it is part of the tree
	// build's counted work), so it traces as an instant marker.
	r.Tracer.Span("let.serialize", trace.CatBuild, r.ID(), trace.TrackHost,
		r.Clock.Now(), r.Clock.Now(),
		trace.A("nodes", len(t.Nodes)),
		trace.A("words", len(geomArr)+len(topoArr)+len(childArr)))
	return &Windows{
		Geom:      mpisim.NewWindow(r, geomArr),
		Topo:      mpisim.NewWindow(r, topoArr),
		Child:     mpisim.NewWindow(r, childArr),
		Particles: mpisim.NewWindow(r, InterleaveParticles(t.Particles)),
		Charges:   mpisim.NewWindow(r, chargesFlat),
		Degree:    degree,
	}
}

// LET is one rank's locally essential tree: the remote clusters its target
// batches approximate, the remote leaf particles they interact with
// directly, and the per-batch interaction lists over them.
type LET struct {
	Degree int

	// Fetched remote approximation clusters (flattened interpolation
	// points plus modified charges).
	ClusterPX, ClusterPY, ClusterPZ [][]float64
	ClusterQhat                     [][]float64
	// Source rank and node of each fetched cluster, for diagnostics.
	ClusterHome [][2]int32

	// Fetched remote direct-interaction leaves.
	Leaves   []*particle.Set
	LeafHome [][2]int32

	// Per-local-batch interaction lists indexing the slices above.
	Approx [][]int32
	Direct [][]int32

	// Stats accumulates remote-traversal MAC tests and the interaction
	// volume added by remote data.
	Stats interaction.Stats
}

// remoteTraversal is one batch's MAC traversal of one remote tree: the
// remote nodes it approximates and interacts directly with, in traversal
// encounter order, plus the traversal's share of the Stats counters.
type remoteTraversal struct {
	approx, direct []int32
	stats          interaction.Stats
}

// traverseRemote runs the MAC traversal of batch b against a remote tree
// view. It reuses (and returns, possibly grown) the caller's stack.
func traverseRemote(b *tree.Batch, view *TreeView, mac interaction.MAC, np int, stack []int32, res *remoteTraversal) []int32 {
	nb := int64(b.Count())
	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.stats.MACTests++
		dx := b.Center.X - view.CX[ci]
		dy := b.Center.Y - view.CY[ci]
		dz := b.Center.Z - view.CZ[ci]
		dist := geom.Vec3{X: dx, Y: dy, Z: dz}.Norm()
		switch mac.Test(dist, b.Radius, view.R[ci], int(view.Count[ci]), view.IsLeaf(ci)) {
		case interaction.Approximate:
			res.approx = append(res.approx, ci)
			res.stats.ApproxPairs++
			res.stats.ApproxInteractions += nb * int64(np)
		case interaction.Direct:
			res.direct = append(res.direct, ci)
			res.stats.DirectPairs++
			res.stats.DirectInteractions += nb * int64(view.Count[ci])
		case interaction.Recurse:
			stack = append(stack, view.ChildrenOf(ci)...)
		}
	}
	return stack
}

// Fetch tracks the in-flight bulk-fetch stage of an asynchronously built
// LET: one nonblocking request per fetched cluster charge array and per
// fetched leaf particle block, indexed exactly like the LET's cluster and
// leaf slices. The functional data is already in place when BuildAsync
// returns (Iget copies immediately); Fetch only carries the modeled
// completion times, so waiting is purely a clock operation.
type Fetch struct {
	r       *mpisim.Rank
	cluster []*mpisim.Request // per LET cluster index; nil = nothing issued
	leaf    []*mpisim.Request // per LET leaf index
	issued  float64           // total modeled wire seconds issued
	stalled float64           // total stall seconds paid by waits so far
}

// WaitBatch completes, in modeled time, every request batch bi's remote
// interaction lists depend on. Requests shared with earlier batches are
// already complete and cost nothing; with no remote work for the batch it
// is a no-op.
func (f *Fetch) WaitBatch(l *LET, bi int) {
	for _, li := range l.Approx[bi] {
		if rq := f.cluster[li]; rq != nil && !rq.Done() {
			f.stalled += rq.Wait()
		}
	}
	for _, li := range l.Direct[bi] {
		if rq := f.leaf[li]; rq != nil && !rq.Done() {
			f.stalled += rq.Wait()
		}
	}
}

// WaitAll completes every outstanding request of the fetch (and any other
// nonblocking operation the rank has in flight), advancing the clock to
// the last completion. Calling it after the per-batch waits is a cheap
// no-op that keeps the rank's pending queue drained.
func (f *Fetch) WaitAll() {
	f.stalled += f.r.Flush()
}

// IssuedSeconds returns the total modeled wire time of the bulk fetch —
// what a synchronous fetch would have charged the origin clock inline.
func (f *Fetch) IssuedSeconds() float64 { return f.issued }

// StalledSeconds returns the stall actually paid by waits so far. The
// difference IssuedSeconds() - StalledSeconds() is the communication time
// hidden under whatever the origin did between issue and wait, measured
// from the executed timeline.
func (f *Fetch) StalledSeconds() float64 { return f.stalled }

// remotePlan is the traversal stage's output for one remote rank: its
// deserialized tree view and the remote nodes the bulk-fetch stage must
// pull, in first-encounter order.
type remotePlan struct {
	remote                   int
	view                     *TreeView
	approxNodes, directNodes []int32
}

// BuildAsync constructs this rank's LET in two stages. The traversal
// stage fetches every remote rank's tree geometry/topology arrays eagerly
// (synchronous gets — they gate the MAC decisions) and traverses them
// against the local target batches, fixing the interaction lists and the
// first-encounter order of remote clusters and leaves. The bulk-fetch
// stage then issues the direct-leaf particles and cluster charge arrays as
// grouped nonblocking Igets: the functional copies happen immediately, so
// the returned LET is complete as data, while the modeled completions ride
// on the origin's NIC-occupancy timeline inside the returned Fetch. The
// caller chooses the schedule: Fetch.WaitAll right away reproduces the
// serial exchange, per-batch WaitBatch calls interleaved with compute
// pipeline it.
//
// The per-batch traversals run on up to `workers` goroutines (<= 0 selects
// GOMAXPROCS); batches are independent, and the traversal results are
// merged serially in batch order afterwards, so the LET — including the
// first-encounter ordering of fetched clusters/leaves, the RMA sequence,
// the Stats counters and therefore all modeled times and traces — is
// identical for every worker count.
func BuildAsync(r *mpisim.Rank, wins *Windows, batches *tree.BatchSet, mac interaction.MAC, workers int) (*LET, *Fetch, error) {
	l := &LET{
		Degree: wins.Degree,
		Approx: make([][]int32, len(batches.Batches)),
		Direct: make([][]int32, len(batches.Batches)),
	}
	f := &Fetch{r: r}
	np := mac.InterpPoints()
	buildStart := r.Clock.Now()
	results := make([]remoteTraversal, len(batches.Batches))
	var plans []remotePlan
	nClusters, nLeaves := 0, 0

	// --- Stage 1: eager tree fetch + MAC traversal per remote rank. ---
	for remote := 0; remote < r.Size(); remote++ {
		if remote == r.ID() {
			continue
		}
		geomArr := wins.Geom.GetAll(r, remote)
		topoArr := wins.Topo.GetAll(r, remote)
		childArr := wins.Child.GetAll(r, remote)
		view, err := Deserialize(geomArr, topoArr, childArr)
		if err != nil {
			return nil, nil, fmt.Errorf("let: rank %d decoding rank %d tree: %w", r.ID(), remote, err)
		}
		if view.N == 0 {
			continue
		}

		pool.Blocks(len(batches.Batches), workers, func(_, lo, hi int) {
			var stack []int32
			for bi := lo; bi < hi; bi++ {
				res := &results[bi]
				res.approx = res.approx[:0]
				res.direct = res.direct[:0]
				res.stats = interaction.Stats{}
				stack = traverseRemote(&batches.Batches[bi], view, mac, np, stack, res)
			}
		})

		approxIdx := map[int32]int32{} // remote node -> LET cluster index
		directIdx := map[int32]int32{} // remote node -> LET leaf index
		plan := remotePlan{remote: remote, view: view}
		for bi := range results {
			res := &results[bi]
			for _, ci := range res.approx {
				li, ok := approxIdx[ci]
				if !ok {
					li = int32(nClusters + len(plan.approxNodes))
					approxIdx[ci] = li
					plan.approxNodes = append(plan.approxNodes, ci)
				}
				l.Approx[bi] = append(l.Approx[bi], li)
			}
			for _, ci := range res.direct {
				li, ok := directIdx[ci]
				if !ok {
					li = int32(nLeaves + len(plan.directNodes))
					directIdx[ci] = li
					plan.directNodes = append(plan.directNodes, ci)
				}
				l.Direct[bi] = append(l.Direct[bi], li)
			}
			l.Stats.MACTests += res.stats.MACTests
			l.Stats.ApproxPairs += res.stats.ApproxPairs
			l.Stats.DirectPairs += res.stats.DirectPairs
			l.Stats.ApproxInteractions += res.stats.ApproxInteractions
			l.Stats.DirectInteractions += res.stats.DirectInteractions
		}
		nClusters += len(plan.approxNodes)
		nLeaves += len(plan.directNodes)
		plans = append(plans, plan)
	}

	// --- Stage 2: grouped nonblocking bulk fetch of charges + particles. ---
	f.cluster = make([]*mpisim.Request, 0, nClusters)
	f.leaf = make([]*mpisim.Request, 0, nLeaves)
	for _, plan := range plans {
		remote, view := plan.remote, plan.view
		if len(plan.approxNodes) > 0 {
			epochStart := r.Clock.Now()
			wins.Charges.Lock(remote)
			for _, ci := range plan.approxNodes {
				qhat := make([]float64, np)
				rq := wins.Charges.Iget(r, remote, int(ci)*np, qhat)
				f.cluster = append(f.cluster, rq)
				f.issued += rq.Duration()
				g := chebyshev.NewGrid3D(wins.Degree, view.Boxes[ci])
				px, py, pz := g.FlattenedPoints()
				l.ClusterPX = append(l.ClusterPX, px)
				l.ClusterPY = append(l.ClusterPY, py)
				l.ClusterPZ = append(l.ClusterPZ, pz)
				l.ClusterQhat = append(l.ClusterQhat, qhat)
				l.ClusterHome = append(l.ClusterHome, [2]int32{int32(remote), ci})
			}
			wins.Charges.Unlock(remote)
			r.Tracer.Span("rma.epoch", trace.CatComm, r.ID(), trace.TrackNet,
				epochStart, r.Clock.Now(),
				trace.A("target", remote), trace.A("ops", len(plan.approxNodes)))
		}
		if len(plan.directNodes) > 0 {
			epochStart := r.Clock.Now()
			wins.Particles.Lock(remote)
			for _, ci := range plan.directNodes {
				count := int(view.Count[ci])
				buf := make([]float64, 4*count)
				rq := wins.Particles.Iget(r, remote, int(view.Lo[ci])*4, buf)
				f.leaf = append(f.leaf, rq)
				f.issued += rq.Duration()
				set := particle.NewSet(count)
				for j := 0; j < count; j++ {
					set.Append(buf[4*j], buf[4*j+1], buf[4*j+2], buf[4*j+3])
				}
				l.Leaves = append(l.Leaves, set)
				l.LeafHome = append(l.LeafHome, [2]int32{int32(remote), ci})
			}
			wins.Particles.Unlock(remote)
			r.Tracer.Span("rma.epoch", trace.CatComm, r.ID(), trace.TrackNet,
				epochStart, r.Clock.Now(),
				trace.A("target", remote), trace.A("ops", len(plan.directNodes)))
		}
	}

	r.Tracer.Span("let.build", trace.CatBuild, r.ID(), trace.TrackHost,
		buildStart, r.Clock.Now(),
		trace.A("clusters", len(l.ClusterQhat)), trace.A("leaves", len(l.Leaves)),
		trace.A("bytes", l.Bytes()), trace.A("mac_tests", l.Stats.MACTests))
	r.Tracer.Add("let.clusters", float64(len(l.ClusterQhat)))
	r.Tracer.Add("let.leaves", float64(len(l.Leaves)))
	r.Tracer.Add("let.bytes", float64(l.Bytes()))
	return l, f, nil
}

// Build constructs this rank's LET with the serial (fully waited)
// schedule: BuildAsync followed immediately by Fetch.WaitAll. The modeled
// clock ends exactly where the pre-pipelining synchronous exchange left
// it — the NIC timeline serializes the grouped Igets at link bandwidth, so
// waiting on all of them right away costs the same seconds as getting each
// inline. All communication is one-sided; no remote rank participates.
func Build(r *mpisim.Rank, wins *Windows, batches *tree.BatchSet, mac interaction.MAC, workers int) (*LET, error) {
	l, f, err := BuildAsync(r, wins, batches, mac, workers)
	if err != nil {
		return nil, err
	}
	f.WaitAll()
	return l, nil
}

// Bytes returns the approximate size of the LET's fetched payload (cluster
// charges plus particles), i.e. the HtD volume the compute phase must copy
// in addition to local data.
func (l *LET) Bytes() int64 {
	var n int64
	for _, q := range l.ClusterQhat {
		n += int64(len(q)) * 8
	}
	for _, s := range l.Leaves {
		n += int64(s.Len()) * 4 * 8
	}
	return n
}
