// Package let implements locally essential trees (Warren & Salmon), the
// distributed-memory core of the paper's Section 3.1: after recursive
// coordinate bisection, each rank owns a local source tree, exposes its
// tree arrays, source particles and cluster charges through RMA windows,
// and then — entirely one-sidedly — pulls from every remote rank (1) the
// tree arrays, from which it builds interaction lists for its local target
// batches, and (2) exactly the remote clusters and source particles those
// lists demand. The union of fetched data is the rank's LET.
package let

import (
	"fmt"

	"barytree/internal/geom"
	"barytree/internal/tree"
)

// Serialization layout of the tree arrays exposed through RMA windows.
const (
	// GeomStride is the number of float64s per node in the geometry array:
	// center (3), radius (1), box lo corner (3), box hi corner (3).
	GeomStride = 10
	// TopoStride is the number of int64s per node in the topology array:
	// child start, child count, particle lo, particle count.
	TopoStride = 4
)

// SerializeTree flattens a cluster tree into the three arrays placed in RMA
// windows: per-node geometry (float64), per-node topology (int64), and the
// concatenated child-index list (int64).
func SerializeTree(t *tree.Tree) (geomArr []float64, topoArr, childArr []int64) {
	n := len(t.Nodes)
	geomArr = make([]float64, 0, n*GeomStride)
	topoArr = make([]int64, 0, n*TopoStride)
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		geomArr = append(geomArr,
			nd.Center.X, nd.Center.Y, nd.Center.Z, nd.Radius,
			nd.Box.Lo.X, nd.Box.Lo.Y, nd.Box.Lo.Z,
			nd.Box.Hi.X, nd.Box.Hi.Y, nd.Box.Hi.Z,
		)
		topoArr = append(topoArr,
			int64(len(childArr)), int64(len(nd.Children)),
			int64(nd.Lo), int64(nd.Count()),
		)
		for _, c := range nd.Children {
			childArr = append(childArr, int64(c))
		}
	}
	return geomArr, topoArr, childArr
}

// TreeView is a remote tree decoded from its serialized arrays: enough
// structure to run the MAC traversal without owning the remote particles.
type TreeView struct {
	N          int
	CX, CY, CZ []float64 // cluster centers
	R          []float64 // cluster radii
	Lo, Count  []int32   // particle ranges (remote tree order)
	ChildStart []int32   // offset into Children
	ChildCount []int32
	Children   []int32
	Boxes      []geom.Box
}

// Deserialize decodes the serialized tree arrays. It returns an error if
// the arrays are structurally inconsistent.
func Deserialize(geomArr []float64, topoArr, childArr []int64) (*TreeView, error) {
	if len(geomArr)%GeomStride != 0 {
		return nil, fmt.Errorf("let: geometry array length %d not a multiple of %d", len(geomArr), GeomStride)
	}
	n := len(geomArr) / GeomStride
	if len(topoArr) != n*TopoStride {
		return nil, fmt.Errorf("let: topology array length %d, want %d", len(topoArr), n*TopoStride)
	}
	v := &TreeView{
		N:          n,
		CX:         make([]float64, n),
		CY:         make([]float64, n),
		CZ:         make([]float64, n),
		R:          make([]float64, n),
		Lo:         make([]int32, n),
		Count:      make([]int32, n),
		ChildStart: make([]int32, n),
		ChildCount: make([]int32, n),
		Children:   make([]int32, len(childArr)),
		Boxes:      make([]geom.Box, n),
	}
	for i := 0; i < n; i++ {
		g := geomArr[i*GeomStride:]
		v.CX[i], v.CY[i], v.CZ[i], v.R[i] = g[0], g[1], g[2], g[3]
		v.Boxes[i] = geom.Box{
			Lo: geom.Vec3{X: g[4], Y: g[5], Z: g[6]},
			Hi: geom.Vec3{X: g[7], Y: g[8], Z: g[9]},
		}
		tp := topoArr[i*TopoStride:]
		v.ChildStart[i] = int32(tp[0])
		v.ChildCount[i] = int32(tp[1])
		v.Lo[i] = int32(tp[2])
		v.Count[i] = int32(tp[3])
		if int(tp[0])+int(tp[1]) > len(childArr) {
			return nil, fmt.Errorf("let: node %d children [%d,%d) out of bounds %d",
				i, tp[0], tp[0]+tp[1], len(childArr))
		}
	}
	for i, c := range childArr {
		if c < 0 || int(c) >= n {
			return nil, fmt.Errorf("let: child entry %d references invalid node %d", i, c)
		}
		v.Children[i] = int32(c)
	}
	return v, nil
}

// IsLeaf reports whether node i of the view has no children.
func (v *TreeView) IsLeaf(i int32) bool { return v.ChildCount[i] == 0 }

// ChildrenOf returns the child node indices of node i.
func (v *TreeView) ChildrenOf(i int32) []int32 {
	s := v.ChildStart[i]
	return v.Children[s : s+v.ChildCount[i]]
}
