package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersClamp(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{10, 4, 4},
		{10, 100, 10},                         // never more workers than items
		{3, 0, min(runtime.GOMAXPROCS(0), 3)}, // <=0 selects GOMAXPROCS
		{0, 4, 1},                             // zero items still report one worker
		{10, -1, min(runtime.GOMAXPROCS(0), 10)},
		{10, 1, 1},
	}
	for _, c := range cases {
		if got := Workers(c.n, c.workers); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestBlocksPartition verifies the ranges tile [0, n) exactly, in worker
// order, for a spread of worker counts.
func TestBlocksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 7, 64, 0} {
			seen := make([]int32, n)
			var calls atomic.Int32
			Blocks(n, workers, func(w, lo, hi int) {
				calls.Add(1)
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("n=%d workers=%d: bad range [%d,%d)", n, workers, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d covered %d times", n, workers, i, c)
				}
			}
			if n > 0 {
				if want := Workers(n, workers); calls.Load() != int32(want) {
					t.Errorf("n=%d workers=%d: fn called %d times, want %d", n, workers, calls.Load(), want)
				}
			} else if calls.Load() != 0 {
				t.Errorf("n=0: fn called %d times, want 0", calls.Load())
			}
		}
	}
}

// TestBlocksSingleWorkerInline pins the inline guarantee: one worker means
// fn runs on the calling goroutine, so callers may use non-thread-safe
// state without synchronization.
func TestBlocksSingleWorkerInline(t *testing.T) {
	sum := 0 // would race if fn ran on another goroutine under -race
	Blocks(100, 1, func(w, lo, hi int) {
		if w != 0 {
			t.Errorf("single worker index = %d", w)
		}
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 4950 {
		t.Errorf("sum = %d, want 4950", sum)
	}
}

func TestForCoversAll(t *testing.T) {
	n := 777
	seen := make([]int32, n)
	For(n, 4, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
