// Package pool is the repository's one worker-pool primitive: contiguous
// range splitting of an index space over a bounded number of goroutines.
//
// Several hot paths fan work out over goroutines with identical ad-hoc
// loops (the simulated device's grid execution, the CPU treecode's batch
// loop, the charge pass, the interaction-list traversal, the direct-sum
// baselines). Centralizing the splitting here keeps the partitioning rule —
// worker w owns [w*n/W, (w+1)*n/W) — identical everywhere, which matters
// for code that reuses per-worker scratch buffers: the worker index passed
// to Blocks is a stable identity for the duration of one call.
//
// The pool is purely a host-execution construct; it never interacts with
// modeled time.
package pool

import (
	"runtime"
	"sync"
)

// Workers returns the number of goroutines Blocks and For will actually use
// for n items and the requested worker count: workers <= 0 selects
// GOMAXPROCS, and the result is clamped to [1, n] (0 items still report 1
// so per-worker state can be sized uniformly).
func Workers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)
	return max(workers, 1)
}

// Blocks partitions [0, n) into Workers(n, workers) contiguous ranges and
// runs fn(w, lo, hi) for each, where w is the worker index in
// [0, Workers(n, workers)). With a single worker fn runs inline on the
// calling goroutine; otherwise each range runs on its own goroutine and
// Blocks returns after all complete. fn must be safe for concurrent calls
// with distinct w.
func Blocks(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(n, workers)
	if w == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * n / w
		hi := (i + 1) * n / w
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			fn(i, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n) using Blocks' range partitioning:
// the common case when no per-worker state is needed.
func For(n, workers int, fn func(i int)) {
	Blocks(n, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
