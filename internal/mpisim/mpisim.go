// Package mpisim is an in-process substitute for the MPI layer of the
// paper's distributed implementation: ranks run as goroutines inside one
// communicator, communicate through typed one-sided RMA windows with
// passive-target synchronization (lock / get / put / flush / unlock), and
// synchronize with barriers — the exact primitives the BLTC's locally
// essential tree construction uses (Section 3.1).
//
// Alongside the functional semantics, every communication operation
// advances the origin rank's virtual clock according to a network cost
// model (latency + bytes/bandwidth, with distinct intra-node parameters),
// so communication time is derived from exactly-counted traffic. Barriers
// synchronize the virtual clocks to their maximum, mirroring how
// barrier-separated phases aggregate across ranks on a real machine.
package mpisim

import (
	"fmt"
	"math"
	"sync"

	"barytree/internal/perfmodel"
	"barytree/internal/trace"
)

// Comm is a communicator: a fixed group of ranks with a shared network
// model. Create one with Run.
type Comm struct {
	size int
	net  perfmodel.NetworkSpec

	barrier *barrier

	winMu      sync.Mutex
	windows    map[int]any // creation-order id -> *winShared[T]
	winAborted bool        // set by abortAll; blocks further window creation

	collMu sync.Mutex
	colls  map[int]*collective
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Net returns the communicator's network model.
func (c *Comm) Net() perfmodel.NetworkSpec { return c.net }

// Rank is the per-goroutine handle to the communicator. Rank methods must
// only be called from the goroutine that owns the rank.
type Rank struct {
	comm *Comm
	id   int
	// Clock is the rank's virtual clock in modeled seconds. Computation
	// models advance it directly; communication and barriers advance it
	// through this package.
	Clock perfmodel.Clock

	// Tracer, when non-nil, receives one comm-category span per RMA
	// operation and per barrier, attributed to this rank. The tracer may
	// be shared by all ranks (it is internally synchronized); set it at
	// the start of the rank function, before any communication.
	Tracer *trace.Tracer

	winSeq  int
	collSeq int

	// nic is this rank's origin-side network-occupancy timeline: every
	// one-sided operation the rank issues reserves the link in issue
	// order, so concurrent in-flight gets serialize on link bandwidth.
	nic perfmodel.NICTimeline
	// pending holds the nonblocking requests issued and not yet flushed.
	pending []*Request
	// inflightBytes is the payload volume currently in flight.
	inflightBytes int64

	// Stats counts this rank's communication activity.
	Stats CommStats
}

// CommStats counts one rank's communication operations and volume.
type CommStats struct {
	// Gets and Puts count one-sided operations this rank originated
	// (nonblocking gets included).
	Gets int
	Puts int
	// IGets counts the nonblocking (Iget) operations among Gets.
	IGets int
	// GetBytes and PutBytes total the payload moved by those operations.
	GetBytes int64
	PutBytes int64
	// Barriers counts collective barrier participations.
	Barriers int
	// RMASeconds totals the modeled seconds this rank's clock advanced
	// inside RMA operations: synchronous Get/Put transfers plus the stall
	// portion of Wait/Flush. In-flight wire time hidden under other work
	// is *not* counted, which is what makes comm/compute overlap
	// measurable from the executed timeline.
	RMASeconds float64
	// InflightPeakBytes is the high-water mark of nonblocking payload
	// bytes in flight at once on this rank's NIC.
	InflightPeakBytes int64
}

// ID returns the rank number in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the communicator size.
func (r *Rank) Size() int { return r.comm.size }

// Comm returns the communicator.
func (r *Rank) Comm() *Comm { return r.comm }

// Run creates a communicator of the given size and runs fn concurrently on
// every rank, returning the first non-nil error (all ranks are always
// joined). size must be >= 1. A panic in any rank is re-raised after all
// ranks stop.
func Run(size int, net perfmodel.NetworkSpec, fn func(r *Rank) error) error {
	if size < 1 {
		return fmt.Errorf("mpisim: communicator size must be >= 1, got %d", size)
	}
	c := &Comm{
		size:    size,
		net:     net,
		barrier: newBarrier(size),
		windows: map[int]any{},
		colls:   map[int]*collective{},
	}
	errs := make([]error, size)
	panics := make([]any, size)
	var wg sync.WaitGroup
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[id] = p
					// Release any ranks blocked in collectives (barriers
					// or window creation) so the program fails loudly
					// instead of deadlocking.
					c.abortAll()
				}
			}()
			errs[id] = fn(&Rank{comm: c, id: id})
		}(i)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// aborter is implemented by collective structures that can be woken when a
// rank dies (see Run's panic recovery).
type aborter interface{ abort() }

// abortAll aborts the barrier, every window-creation wait, and all future
// window creation on this communicator.
func (c *Comm) abortAll() {
	c.barrier.abort()
	c.winMu.Lock()
	defer c.winMu.Unlock()
	c.winAborted = true
	for _, raw := range c.windows {
		if a, ok := raw.(aborter); ok {
			a.abort()
		}
	}
}

// Barrier blocks until every rank has entered it, then synchronizes the
// virtual clocks: all ranks leave with clock = max over ranks plus a small
// modeled barrier cost (log2(P) network latencies).
func (r *Rank) Barrier() {
	r.Stats.Barriers++
	cost := r.comm.net.Latency * math.Ceil(math.Log2(float64(r.comm.size)))
	if r.comm.size == 1 {
		r.Clock.Advance(0)
		return
	}
	start := r.Clock.Now()
	maxClock := r.comm.barrier.sync(r.Clock.Now())
	r.Clock.AdvanceTo(maxClock + cost)
	// The span width is this rank's modeled wait: early ranks show long
	// barrier spans, the straggler a short one — load imbalance at a
	// glance.
	r.Tracer.Span("barrier", trace.CatComm, r.id, trace.TrackNet, start, r.Clock.Now())
}

// barrier is a reusable sense-reversing barrier that also reduces the
// maximum of a float64 contributed by each rank.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	waiting int
	gen     int
	maxVal  float64
	result  float64
	aborted bool
}

func newBarrier(size int) *barrier {
	b := &barrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// sync enters the barrier contributing v and returns the maximum over all
// ranks' contributions for this generation.
func (b *barrier) sync(v float64) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic("mpisim: barrier aborted because a rank panicked")
	}
	gen := b.gen
	if v > b.maxVal {
		b.maxVal = v
	}
	b.waiting++
	if b.waiting == b.size {
		b.result = b.maxVal
		b.maxVal = math.Inf(-1)
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return b.result
	}
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		panic("mpisim: barrier aborted because a rank panicked")
	}
	return b.result
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// collective is the shared state of one AllGather-style operation.
type collective struct {
	once  sync.Once
	slots []any
}

func (c *Comm) getCollective(seq int) *collective {
	c.collMu.Lock()
	defer c.collMu.Unlock()
	col, ok := c.colls[seq]
	if !ok {
		col = &collective{slots: make([]any, c.size)}
		c.colls[seq] = col
	}
	return col
}

// AllGather gathers one value from every rank, returning the slice indexed
// by rank. It is collective: every rank must call it in the same order
// relative to other collectives. The modeled cost is a tree exchange:
// ceil(log2 P) latencies plus the payload bytes (payloadBytes per value).
func AllGather[T any](r *Rank, v T, payloadBytes int) []T {
	seq := r.collSeq
	r.collSeq++
	col := r.comm.getCollective(seq)
	col.slots[r.id] = v
	r.Barrier()
	out := make([]T, r.comm.size)
	for i, s := range col.slots {
		out[i] = s.(T)
	}
	steps := math.Ceil(math.Log2(float64(r.comm.size)))
	if r.comm.size > 1 {
		r.Clock.Advance(steps * (r.comm.net.Latency + float64(payloadBytes*r.comm.size)/r.comm.net.Bandwidth))
	}
	r.Barrier()
	return out
}

// AllReduceMax returns the maximum of v over all ranks.
func AllReduceMax(r *Rank, v float64) float64 {
	vals := AllGather(r, v, 8)
	m := math.Inf(-1)
	for _, x := range vals {
		if x > m {
			m = x
		}
	}
	return m
}

// AllReduceSum returns the sum of v over all ranks.
func AllReduceSum(r *Rank, v float64) float64 {
	vals := AllGather(r, v, 8)
	var s float64
	for _, x := range vals {
		s += x
	}
	return s
}
