package mpisim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"barytree/internal/perfmodel"
)

func testNet() perfmodel.NetworkSpec { return perfmodel.CometIB() }

func TestRunAllRanksExecute(t *testing.T) {
	var count atomic.Int64
	err := Run(7, testNet(), func(r *Rank) error {
		count.Add(1)
		if r.Size() != 7 {
			t.Errorf("rank %d sees size %d", r.ID(), r.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 7 {
		t.Fatalf("ran %d ranks, want 7", count.Load())
	}
}

func TestRunPropagatesError(t *testing.T) {
	sentinel := errors.New("rank 3 failed")
	err := Run(5, testNet(), func(r *Rank) error {
		if r.ID() == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := Run(0, testNet(), func(r *Rank) error { return nil }); err == nil {
		t.Fatal("expected error for size 0")
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	err := Run(4, testNet(), func(r *Rank) error {
		// Each rank does a different amount of "work".
		r.Clock.Advance(float64(r.ID()) * 0.5)
		r.Barrier()
		if r.Clock.Now() < 1.5 {
			return fmt.Errorf("rank %d clock %.3g below the slowest rank's 1.5", r.ID(), r.Clock.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowGetPut(t *testing.T) {
	err := Run(3, testNet(), func(r *Rank) error {
		local := make([]float64, 10)
		for i := range local {
			local[i] = float64(r.ID()*100 + i)
		}
		w := NewWindow(r, local)
		r.Barrier()

		// Get the middle of every other rank's window.
		for q := 0; q < r.Size(); q++ {
			dst := make([]float64, 4)
			w.Lock(q)
			w.Get(r, q, 3, dst)
			w.Unlock(q)
			for i, v := range dst {
				want := float64(q*100 + 3 + i)
				if v != want {
					return fmt.Errorf("rank %d got %g from rank %d slot %d, want %g", r.ID(), v, q, 3+i, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWindowPutVisibleToOwner(t *testing.T) {
	err := Run(2, testNet(), func(r *Rank) error {
		local := make([]int64, 4)
		w := NewWindow(r, local)
		r.Barrier()
		if r.ID() == 0 {
			w.Lock(1)
			w.Put(r, 1, 2, []int64{42, 43})
			w.Unlock(1)
		}
		r.Barrier()
		if r.ID() == 1 {
			if local[2] != 42 || local[3] != 43 {
				return fmt.Errorf("put not visible: %v", local)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetAdvancesClock(t *testing.T) {
	net := testNet()
	err := Run(2, net, func(r *Rank) error {
		w := NewWindow(r, make([]float64, 1000))
		r.Barrier()
		before := r.Clock.Now()
		if r.ID() == 0 {
			_ = w.GetAll(r, 1)
			want := net.TransferTime(0, 1, 8000)
			got := r.Clock.Now() - before
			if got < want*0.99 || got > want*1.01 {
				return fmt.Errorf("get advanced clock by %.3g, want %.3g", got, want)
			}
			if r.Stats.Gets != 1 || r.Stats.GetBytes != 8000 {
				return fmt.Errorf("stats %+v", r.Stats)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	net := testNet() // 4 ranks per node
	intra := net.TransferTime(0, 1, 1<<20)
	inter := net.TransferTime(0, 4, 1<<20)
	if intra >= inter {
		t.Fatalf("intra-node %.3g should be cheaper than inter-node %.3g", intra, inter)
	}
	if net.TransferTime(2, 2, 1<<20) != 0 {
		t.Fatal("self transfer should be free")
	}
}

func TestWindowBoundsChecked(t *testing.T) {
	err := Run(2, testNet(), func(r *Rank) error {
		w := NewWindow(r, make([]float64, 5))
		r.Barrier()
		if r.ID() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-bounds get")
				}
			}()
			dst := make([]float64, 10)
			w.Lock(1)
			defer w.Unlock(1)
			w.Get(r, 1, 0, dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleWindowsMatchByOrder(t *testing.T) {
	err := Run(2, testNet(), func(r *Rank) error {
		a := NewWindow(r, []float64{float64(r.ID())})
		b := NewWindow(r, []int64{int64(10 + r.ID())})
		r.Barrier()
		other := 1 - r.ID()
		av := a.GetAll(r, other)
		bv := b.GetAll(r, other)
		if av[0] != float64(other) || bv[0] != int64(10+other) {
			return fmt.Errorf("rank %d got %v %v", r.ID(), av, bv)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	err := Run(5, testNet(), func(r *Rank) error {
		vals := AllGather(r, r.ID()*r.ID(), 8)
		for q, v := range vals {
			if v != q*q {
				return fmt.Errorf("rank %d: slot %d = %d, want %d", r.ID(), q, v, q*q)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	err := Run(6, testNet(), func(r *Rank) error {
		sum := AllReduceSum(r, float64(r.ID()))
		if sum != 15 {
			return fmt.Errorf("sum=%g want 15", sum)
		}
		max := AllReduceMax(r, float64(r.ID()%4))
		if max != 3 {
			return fmt.Errorf("max=%g want 3", max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankCommIsFree(t *testing.T) {
	err := Run(1, testNet(), func(r *Rank) error {
		w := NewWindow(r, []float64{7})
		r.Barrier()
		v := w.GetAll(r, 0)
		if v[0] != 7 {
			return fmt.Errorf("got %v", v)
		}
		if r.Clock.Now() != 0 {
			return fmt.Errorf("self communication advanced clock to %g", r.Clock.Now())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate from rank")
		}
	}()
	_ = Run(3, testNet(), func(r *Rank) error {
		if r.ID() == 1 {
			panic("rank 1 exploded")
		}
		r.Barrier() // other ranks must not deadlock
		return nil
	})
}

func TestWindowTypeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched window element types")
		}
	}()
	_ = Run(2, testNet(), func(r *Rank) error {
		// Rank 0 creates a float64 window first; rank 1 creates an int64
		// window first. Creation order defines window identity (as in
		// MPI), so this is a programming error the runtime must surface.
		if r.ID() == 0 {
			NewWindow(r, []float64{1})
			NewWindow(r, []int64{2})
		} else {
			NewWindow(r, []int64{2})
			NewWindow(r, []float64{1})
		}
		return nil
	})
}

func TestPutThenGetRoundTrip(t *testing.T) {
	err := Run(4, testNet(), func(r *Rank) error {
		w := NewWindow(r, make([]float64, 16))
		r.Barrier()
		// Each rank writes its signature into every other rank's window
		// at its own offset.
		for q := 0; q < r.Size(); q++ {
			if q == r.ID() {
				continue
			}
			w.Lock(q)
			w.Put(r, q, r.ID()*4, []float64{float64(r.ID()), float64(r.ID() + 10), 0, 0})
			w.Unlock(q)
		}
		r.Barrier()
		// Read everything back from rank (ID+1) % size.
		q := (r.ID() + 1) % r.Size()
		got := w.GetAll(r, q)
		for p := 0; p < r.Size(); p++ {
			if p == q {
				continue
			}
			if got[p*4] != float64(p) || got[p*4+1] != float64(p+10) {
				return fmt.Errorf("rank %d reading rank %d: slot %d = %v", r.ID(), q, p, got[p*4:p*4+2])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentGetsSafe(t *testing.T) {
	// All ranks hammer rank 0's window concurrently; run with -race.
	err := Run(8, testNet(), func(r *Rank) error {
		w := NewWindow(r, make([]float64, 4096))
		r.Barrier()
		for iter := 0; iter < 50; iter++ {
			dst := make([]float64, 64)
			w.Lock(0)
			w.Get(r, 0, (r.ID()*64)%4000, dst)
			w.Unlock(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
