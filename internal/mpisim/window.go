package mpisim

import (
	"fmt"
	"reflect"
	"sync"

	"barytree/internal/trace"
)

// Window is a typed one-sided RMA window, the analogue of an MPI-3 memory
// window used with passive target synchronization. Each rank exposes a
// local slice; any rank may Lock a target rank's window, Get or Put data
// with no involvement from the target, and Unlock. Creation is collective.
//
// The element size used for the communication cost model is derived from T.
type Window[T any] struct {
	shared   *winShared[T]
	elemSize int
}

type winShared[T any] struct {
	data  [][]T
	locks []sync.Mutex

	attachMu   sync.Mutex
	attachCond *sync.Cond
	attached   int
	aborted    bool
}

// abort releases ranks blocked waiting for all peers to attach (used when
// another rank panicked mid-collective).
func (ws *winShared[T]) abort() {
	ws.attachMu.Lock()
	ws.aborted = true
	ws.attachCond.Broadcast()
	ws.attachMu.Unlock()
}

// NewWindow collectively creates a window exposing each rank's local slice.
// Every rank must call NewWindow in the same order with the same type T;
// windows are matched across ranks by creation order, exactly like MPI
// window creation over a communicator. The local slice is shared, not
// copied: remote Puts become visible to the owner (after its next access)
// and local writes become visible to remote Gets, matching passive RMA
// semantics at barrier granularity.
func NewWindow[T any](r *Rank, local []T) *Window[T] {
	seq := r.winSeq
	r.winSeq++

	c := r.comm
	c.winMu.Lock()
	if c.winAborted {
		c.winMu.Unlock()
		panic("mpisim: window creation aborted because a rank panicked")
	}
	raw, ok := c.windows[seq]
	if !ok {
		ws := &winShared[T]{
			data:  make([][]T, c.size),
			locks: make([]sync.Mutex, c.size),
		}
		ws.attachCond = sync.NewCond(&ws.attachMu)
		c.windows[seq] = ws
		raw = ws
	}
	c.winMu.Unlock()

	ws, ok := raw.(*winShared[T])
	if !ok {
		panic(fmt.Sprintf("mpisim: window %d created with mismatched element types across ranks", seq))
	}

	ws.attachMu.Lock()
	ws.data[r.id] = local
	ws.attached++
	if ws.attached == c.size {
		ws.attachCond.Broadcast()
	} else {
		for ws.attached < c.size && !ws.aborted {
			ws.attachCond.Wait()
		}
	}
	aborted := ws.aborted
	ws.attachMu.Unlock()
	if aborted {
		panic("mpisim: window creation aborted because a rank panicked")
	}

	var zero T
	return &Window[T]{shared: ws, elemSize: int(reflect.TypeOf(zero).Size())}
}

// SizeAt returns the length of the slice exposed by the target rank.
func (w *Window[T]) SizeAt(target int) int { return len(w.shared.data[target]) }

// Lock acquires the passive-target lock on the target rank's window
// (exclusive; MPI's MPI_Win_lock).
func (w *Window[T]) Lock(target int) { w.shared.locks[target].Lock() }

// Unlock releases the passive-target lock (MPI_Win_unlock). All operations
// issued while holding the lock are complete when Unlock returns.
func (w *Window[T]) Unlock(target int) { w.shared.locks[target].Unlock() }

// completeTransfer reserves the origin NIC for one synchronous transfer of
// nbytes to/from target and advances the clock to its completion. With an
// idle link this is the classic inline advance by TransferTime; with
// nonblocking operations still in flight the transfer queues behind them,
// so synchronous and asynchronous traffic share one occupancy timeline.
func (r *Rank) completeTransfer(target, nbytes int) {
	if target == r.id {
		return // self transfers bypass the NIC and are free
	}
	now := r.Clock.Now()
	_, completion := r.nic.Enqueue(now, r.comm.net.TransferTime(r.id, target, nbytes))
	r.Clock.AdvanceTo(completion)
	r.Stats.RMASeconds += r.Clock.Now() - now
}

// Get copies len(dst) elements starting at offset from the target rank's
// window into dst, advancing the origin's clock by the modeled transfer
// time (queued behind any in-flight nonblocking operations). The caller
// must hold the target's lock.
func (w *Window[T]) Get(r *Rank, target, offset int, dst []T) {
	src := w.shared.data[target]
	if offset < 0 || offset+len(dst) > len(src) {
		panic(fmt.Sprintf("mpisim: Get [%d,%d) out of window bounds [0,%d) on rank %d",
			offset, offset+len(dst), len(src), target))
	}
	copy(dst, src[offset:offset+len(dst)])
	nbytes := len(dst) * w.elemSize
	r.Stats.Gets++
	r.Stats.GetBytes += int64(nbytes)
	start := r.Clock.Now()
	r.completeTransfer(target, nbytes)
	r.Tracer.Span("rma.get", trace.CatComm, r.id, trace.TrackNet, start, r.Clock.Now(),
		trace.A("target", target), trace.A("bytes", nbytes))
	r.Tracer.Add("rma.get_bytes", float64(nbytes))
}

// Put copies src into the target rank's window starting at offset,
// advancing the origin's clock by the modeled transfer time (queued behind
// any in-flight nonblocking operations). The caller must hold the
// target's lock.
func (w *Window[T]) Put(r *Rank, target, offset int, src []T) {
	dst := w.shared.data[target]
	if offset < 0 || offset+len(src) > len(dst) {
		panic(fmt.Sprintf("mpisim: Put [%d,%d) out of window bounds [0,%d) on rank %d",
			offset, offset+len(src), len(dst), target))
	}
	copy(dst[offset:offset+len(src)], src)
	nbytes := len(src) * w.elemSize
	r.Stats.Puts++
	r.Stats.PutBytes += int64(nbytes)
	start := r.Clock.Now()
	r.completeTransfer(target, nbytes)
	r.Tracer.Span("rma.put", trace.CatComm, r.id, trace.TrackNet, start, r.Clock.Now(),
		trace.A("target", target), trace.A("bytes", nbytes))
	r.Tracer.Add("rma.put_bytes", float64(nbytes))
}

// GetAll locks, gets the target's entire window into a new slice, and
// unlocks — one complete passive-target access epoch. It is the common
// "fetch the whole tree array" pattern of LET construction. The epoch is
// traced as an "rma.epoch" span enclosing the get.
func (w *Window[T]) GetAll(r *Rank, target int) []T {
	dst := make([]T, w.SizeAt(target))
	start := r.Clock.Now()
	w.Lock(target)
	w.Get(r, target, 0, dst)
	w.Unlock(target)
	r.Tracer.Span("rma.epoch", trace.CatComm, r.id, trace.TrackNet, start, r.Clock.Now(),
		trace.A("target", target), trace.A("ops", 1))
	return dst
}
