package mpisim

import (
	"fmt"

	"barytree/internal/trace"
)

// This file is the nonblocking side of the RMA window API: Iget issues a
// one-sided get whose functional copy happens immediately (legal under
// passive-target semantics — the data was exposed before the barrier and
// the target is uninvolved) while its modeled completion time comes from
// the origin rank's network-occupancy timeline (perfmodel.NICTimeline).
// Concurrent in-flight gets therefore serialize on link bandwidth instead
// of each advancing the origin clock inline, and the clock only advances
// when the origin actually waits: Request.Wait and Rank.Flush move it to
// max(now, completion). Work the origin does between issue and wait hides
// communication, exactly the overlap the distributed pipeline exploits.

// Request is the completion handle of one nonblocking one-sided operation,
// the analogue of an MPI_Request from MPI_Rget. It is owned by the issuing
// rank; all methods must be called from that rank's goroutine. Every
// request must reach a Wait or a Rank.Flush before the origin relies on
// its modeled completion (the rmaleak analyzer enforces the local-path
// version of this contract).
type Request struct {
	r      *Rank
	target int
	bytes  int
	// issued is when the origin called Iget; start/completion bound the
	// transfer's occupancy of the origin NIC (start >= issued when earlier
	// transfers still hold the link).
	issued, start, completion float64
	done                      bool
}

// Target returns the target rank of the operation.
func (rq *Request) Target() int { return rq.target }

// Bytes returns the payload size of the operation.
func (rq *Request) Bytes() int { return rq.bytes }

// Duration returns the modeled seconds the transfer occupies the origin
// NIC (what a synchronous Get would have charged the clock inline).
func (rq *Request) Duration() float64 { return rq.completion - rq.start }

// Done reports whether the request has been completed by Wait or Flush.
func (rq *Request) Done() bool { return rq.done }

// Iget copies len(dst) elements starting at offset from the target rank's
// window into dst and returns a completion handle. The caller must hold
// the target's lock while Iget runs (the copy is performed immediately);
// the returned request may be waited on after Unlock. The origin clock is
// not advanced: the transfer is queued on the origin's NIC timeline and
// the clock moves only when Wait or Flush observes the completion.
func (w *Window[T]) Iget(r *Rank, target, offset int, dst []T) *Request {
	src := w.shared.data[target]
	if offset < 0 || offset+len(dst) > len(src) {
		panic(fmt.Sprintf("mpisim: Iget [%d,%d) out of window bounds [0,%d) on rank %d",
			offset, offset+len(dst), len(src), target))
	}
	copy(dst, src[offset:offset+len(dst)])
	nbytes := len(dst) * w.elemSize
	r.Stats.Gets++
	r.Stats.IGets++
	r.Stats.GetBytes += int64(nbytes)
	now := r.Clock.Now()
	start, completion := now, now
	if target != r.id {
		start, completion = r.nic.Enqueue(now, r.comm.net.TransferTime(r.id, target, nbytes))
	}
	rq := &Request{r: r, target: target, bytes: nbytes,
		issued: now, start: start, completion: completion}
	r.pending = append(r.pending, rq)
	r.inflightBytes += int64(nbytes)
	if r.inflightBytes > r.Stats.InflightPeakBytes {
		// The counter accumulates increments of the per-rank high-water
		// mark, so its total is the sum over ranks of each rank's peak.
		r.Tracer.Add("rma.inflight_peak_bytes", float64(r.inflightBytes-r.Stats.InflightPeakBytes))
		r.Stats.InflightPeakBytes = r.inflightBytes
	}
	r.Tracer.Span("rma.iget", trace.CatComm, r.id, trace.TrackNet, start, completion,
		trace.A("target", target), trace.A("bytes", nbytes), trace.A("queued", now))
	r.Tracer.Add("rma.iget_bytes", float64(nbytes))
	return rq
}

// Wait blocks, in modeled time, until the request's transfer completes:
// the origin clock advances to max(now, completion). It returns the stall
// actually paid — zero when the transfer already finished under other work,
// which is the overlap win. Wait is idempotent; repeat calls return 0.
func (rq *Request) Wait() float64 {
	if rq.done {
		return 0
	}
	rq.done = true
	r := rq.r
	now := r.Clock.Now()
	stall := rq.completion - now
	if stall > 0 {
		r.Clock.AdvanceTo(rq.completion)
		r.Stats.RMASeconds += stall
	} else {
		stall = 0
	}
	r.inflightBytes -= int64(rq.bytes)
	r.Tracer.Span("rma.wait", trace.CatComm, r.id, trace.TrackNet, now, r.Clock.Now(),
		trace.A("target", rq.target), trace.A("bytes", rq.bytes), trace.A("stall", stall))
	return stall
}

// Flush completes every outstanding nonblocking operation this rank has
// issued (the analogue of MPI_Win_flush_all over all windows): the clock
// advances to the latest pending completion. It returns the total stall
// paid and is a silent no-op when nothing is outstanding.
func (r *Rank) Flush() float64 {
	start := r.Clock.Now()
	var stall float64
	n := 0
	for _, rq := range r.pending {
		if !rq.done {
			stall += rq.Wait()
			n++
		}
	}
	r.pending = r.pending[:0]
	if n > 0 {
		r.Tracer.Span("rma.flush", trace.CatComm, r.id, trace.TrackNet, start, r.Clock.Now(),
			trace.A("ops", n), trace.A("stall", stall))
	}
	return stall
}

// PendingOps returns the number of nonblocking operations issued and not
// yet completed by Wait or Flush.
func (r *Rank) PendingOps() int {
	n := 0
	for _, rq := range r.pending {
		if !rq.done {
			n++
		}
	}
	return n
}
