package mpisim

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"barytree/internal/trace"
)

// TestIgetCopiesImmediately checks the functional contract: the data is in
// dst when Iget returns, before any Wait, because the copy is legal the
// moment the origin holds the passive-target lock.
func TestIgetCopiesImmediately(t *testing.T) {
	err := Run(2, testNet(), func(r *Rank) error {
		src := make([]float64, 8)
		for i := range src {
			src[i] = float64(r.ID()*100 + i)
		}
		w := NewWindow(r, src)
		r.Barrier()
		other := 1 - r.ID()
		dst := make([]float64, 8)
		w.Lock(other)
		rq := w.Iget(r, other, 0, dst)
		w.Unlock(other)
		for i := range dst {
			if dst[i] != float64(other*100+i) {
				return fmt.Errorf("rank %d: dst[%d] = %g before wait", r.ID(), i, dst[i])
			}
		}
		if rq.Done() {
			return fmt.Errorf("request done before Wait")
		}
		rq.Wait()
		if !rq.Done() {
			return fmt.Errorf("request not done after Wait")
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestIgetWaitAllMatchesSequentialGets checks the key modeled-time
// equivalence that makes the serial schedule a pure refactor: N
// back-to-back Igets followed by a full Flush cost exactly the same
// seconds as N synchronous Gets, because the NIC timeline serializes the
// in-flight transfers at link bandwidth.
func TestIgetWaitAllMatchesSequentialGets(t *testing.T) {
	net := testNet()
	const n = 5
	run := func(async bool) float64 {
		var elapsed float64
		err := Run(2, net, func(r *Rank) error {
			w := NewWindow(r, make([]float64, 1000))
			r.Barrier()
			if r.ID() == 0 {
				before := r.Clock.Now()
				w.Lock(1)
				for i := 0; i < n; i++ {
					dst := make([]float64, 100+50*i)
					if async {
						w.Iget(r, 1, 0, dst)
					} else {
						w.Get(r, 1, 0, dst)
					}
				}
				w.Unlock(1)
				r.Flush()
				elapsed = r.Clock.Now() - before
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	sync, async := run(false), run(true)
	if sync != async {
		t.Errorf("sequential gets cost %.9g s, igets+flush %.9g s; want identical", sync, async)
	}
	if sync == 0 {
		t.Error("transfers cost nothing")
	}
}

// TestIgetOverlapHidesWireTime checks the overlap win: host work advanced
// between issue and wait hides the wire time, the wait stalls for only the
// remainder, and a wait after full completion is free.
func TestIgetOverlapHidesWireTime(t *testing.T) {
	net := testNet()
	err := Run(2, net, func(r *Rank) error {
		w := NewWindow(r, make([]float64, 1<<16))
		r.Barrier()
		if r.ID() == 0 {
			dst := make([]float64, 1<<16)
			wire := net.TransferTime(0, 1, len(dst)*8)
			w.Lock(1)
			rq := w.Iget(r, 1, 0, dst)
			w.Unlock(1)

			// Hide half the wire time under host work: stall = wire - half.
			issueAt := r.Clock.Now()
			r.Clock.Advance(wire / 2)
			stall := rq.Wait()
			want := wire / 2
			if diff := stall - want; diff > 1e-12 || diff < -1e-12 {
				return fmt.Errorf("stall %.6g, want %.6g", stall, want)
			}
			if now := r.Clock.Now(); now != issueAt+wire {
				return fmt.Errorf("clock %.6g after wait, want completion %.6g", now, issueAt+wire)
			}
			if rs := r.Stats.RMASeconds; rs != stall {
				return fmt.Errorf("RMASeconds %.6g, want only the stall %.6g", rs, stall)
			}
			if again := rq.Wait(); again != 0 {
				return fmt.Errorf("repeated Wait stalled %.6g, want 0", again)
			}

			// A transfer fully hidden under host work stalls zero.
			w.Lock(1)
			rq2 := w.Iget(r, 1, 0, dst)
			w.Unlock(1)
			r.Clock.Advance(2 * wire)
			if s := rq2.Wait(); s != 0 {
				return fmt.Errorf("fully hidden transfer stalled %.6g", s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestFlushCompletesAllPending checks Flush semantics: clock lands on the
// last pending completion, PendingOps drains, and a second Flush is a free
// no-op.
func TestFlushCompletesAllPending(t *testing.T) {
	net := testNet()
	err := Run(2, net, func(r *Rank) error {
		w := NewWindow(r, make([]float64, 4096))
		r.Barrier()
		if r.ID() == 0 {
			var wire float64
			w.Lock(1)
			for i := 0; i < 3; i++ {
				dst := make([]float64, 1024)
				w.Iget(r, 1, 0, dst)
				wire += net.TransferTime(0, 1, len(dst)*8)
			}
			w.Unlock(1)
			if got := r.PendingOps(); got != 3 {
				return fmt.Errorf("PendingOps = %d, want 3", got)
			}
			before := r.Clock.Now()
			stall := r.Flush()
			if diff := stall - wire; diff > 1e-12 || diff < -1e-12 {
				return fmt.Errorf("flush stalled %.6g, want full wire time %.6g", stall, wire)
			}
			if got := r.Clock.Now() - before; got-stall > 1e-12 || stall-got > 1e-12 {
				return fmt.Errorf("flush advanced clock %.6g but reported stall %.6g", got, stall)
			}
			if got := r.PendingOps(); got != 0 {
				return fmt.Errorf("PendingOps = %d after flush", got)
			}
			if again := r.Flush(); again != 0 {
				return fmt.Errorf("second flush stalled %.6g", again)
			}
			if r.Stats.IGets != 3 || r.Stats.Gets != 3 {
				return fmt.Errorf("stats %+v", r.Stats)
			}
			if r.Stats.InflightPeakBytes != 3*1024*8 {
				return fmt.Errorf("inflight peak %d, want %d", r.Stats.InflightPeakBytes, 3*1024*8)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSelfIgetIsFree mirrors TestSingleRankCommIsFree for the nonblocking
// path: a rank fetching from itself must not touch the clock or the NIC.
func TestSelfIgetIsFree(t *testing.T) {
	err := Run(1, testNet(), func(r *Rank) error {
		w := NewWindow(r, []float64{1, 2, 3})
		dst := make([]float64, 3)
		w.Lock(0)
		rq := w.Iget(r, 0, 0, dst)
		w.Unlock(0)
		if s := rq.Wait(); s != 0 {
			return fmt.Errorf("self iget stalled %.6g", s)
		}
		if r.Clock.Now() != 0 {
			return fmt.Errorf("self iget advanced clock to %.6g", r.Clock.Now())
		}
		if dst[2] != 3 {
			return fmt.Errorf("self iget copied %v", dst)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPutAdvancesClockAndStats covers the synchronous Put path's cost
// model and counters, symmetric to TestGetAdvancesClock.
func TestPutAdvancesClockAndStats(t *testing.T) {
	net := testNet()
	err := Run(2, net, func(r *Rank) error {
		w := NewWindow(r, make([]float64, 500))
		r.Barrier()
		if r.ID() == 0 {
			src := make([]float64, 500)
			before := r.Clock.Now()
			w.Lock(1)
			w.Put(r, 1, 0, src)
			w.Unlock(1)
			want := net.TransferTime(0, 1, 4000)
			got := r.Clock.Now() - before
			if got-want > 1e-12 || want-got > 1e-12 {
				return fmt.Errorf("put advanced clock by %.6g, want %.6g", got, want)
			}
			if r.Stats.Puts != 1 || r.Stats.PutBytes != 4000 {
				return fmt.Errorf("stats %+v", r.Stats)
			}
			if r.Stats.RMASeconds-got > 1e-15 || got-r.Stats.RMASeconds > 1e-15 {
				return fmt.Errorf("RMASeconds %.6g, want %.6g", r.Stats.RMASeconds, got)
			}
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSyncGetQueuesBehindInflightIgets checks that synchronous and
// asynchronous traffic share one occupancy timeline: a Get issued with an
// Iget still in flight completes only after it.
func TestSyncGetQueuesBehindInflightIgets(t *testing.T) {
	net := testNet()
	err := Run(2, net, func(r *Rank) error {
		w := NewWindow(r, make([]float64, 1<<15))
		r.Barrier()
		if r.ID() == 0 {
			big := make([]float64, 1<<15)
			small := make([]float64, 16)
			wireBig := net.TransferTime(0, 1, len(big)*8)
			wireSmall := net.TransferTime(0, 1, len(small)*8)
			before := r.Clock.Now()
			w.Lock(1)
			rq := w.Iget(r, 1, 0, big)
			w.Get(r, 1, 0, small) // must queue behind the in-flight iget
			w.Unlock(1)
			if got, want := r.Clock.Now()-before, wireBig+wireSmall; got-want > 1e-12 || want-got > 1e-12 {
				return fmt.Errorf("queued get finished after %.6g, want %.6g", got, want)
			}
			if s := rq.Wait(); s != 0 {
				return fmt.Errorf("iget stalled %.6g after later sync get completed", s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMultiOriginEpochs drives every rank through nonblocking
// epochs against every other rank concurrently (run under -race): locks,
// igets, unlocks, host work, flush. Data must be correct and per-rank
// modeled state must stay consistent.
func TestConcurrentMultiOriginEpochs(t *testing.T) {
	const ranks = 6
	var total atomic.Int64
	err := Run(ranks, testNet(), func(r *Rank) error {
		local := make([]float64, 64)
		for i := range local {
			local[i] = float64(r.ID()*1000 + i)
		}
		w := NewWindow(r, local)
		r.Barrier()
		got := make([][]float64, ranks)
		reqs := make([]*Request, 0, ranks-1)
		for target := 0; target < ranks; target++ {
			if target == r.ID() {
				continue
			}
			dst := make([]float64, 64)
			w.Lock(target)
			reqs = append(reqs, w.Iget(r, target, 0, dst))
			w.Unlock(target)
			got[target] = dst
		}
		r.Clock.Advance(1e-6) // host work under the in-flight epochs
		var stall float64
		for _, rq := range reqs {
			stall += rq.Wait()
		}
		r.Flush()
		for target, dst := range got {
			if dst == nil {
				continue
			}
			for i, v := range dst {
				if v != float64(target*1000+i) {
					return fmt.Errorf("rank %d: got[%d][%d] = %g", r.ID(), target, i, v)
				}
			}
			total.Add(1)
		}
		if r.PendingOps() != 0 {
			return fmt.Errorf("rank %d: pending ops after flush", r.ID())
		}
		if r.Stats.IGets != ranks-1 {
			return fmt.Errorf("rank %d: %d igets", r.ID(), r.Stats.IGets)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != ranks*(ranks-1) {
		t.Errorf("completed %d epochs, want %d", total.Load(), ranks*(ranks-1))
	}
}

// TestRMAPanicMessages checks the exact shape of the out-of-bounds panic
// messages on all three one-sided operations — they name the operation,
// the bad range, the window bounds, and the target rank.
func TestRMAPanicMessages(t *testing.T) {
	cases := []struct {
		name string
		op   func(r *Rank, w *Window[float64])
		want string
	}{
		{"get", func(r *Rank, w *Window[float64]) {
			w.Get(r, 1, 3, make([]float64, 10))
		}, "mpisim: Get [3,13) out of window bounds [0,5) on rank 1"},
		{"put", func(r *Rank, w *Window[float64]) {
			w.Put(r, 1, -1, make([]float64, 2))
		}, "mpisim: Put [-1,1) out of window bounds [0,5) on rank 1"},
		{"iget", func(r *Rank, w *Window[float64]) {
			w.Iget(r, 1, 4, make([]float64, 2))
		}, "mpisim: Iget [4,6) out of window bounds [0,5) on rank 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(2, testNet(), func(r *Rank) error {
				w := NewWindow(r, make([]float64, 5))
				r.Barrier()
				if r.ID() == 0 {
					defer func() {
						p := recover()
						if p == nil {
							t.Errorf("%s: expected panic", tc.name)
							return
						}
						msg := fmt.Sprint(p)
						if !strings.Contains(msg, tc.want) {
							t.Errorf("%s: panic %q, want %q", tc.name, msg, tc.want)
						}
					}()
					w.Lock(1)
					defer w.Unlock(1)
					tc.op(r, w)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAsyncSpansTraced checks the async span taxonomy: rma.iget spans
// cover [start, completion] on the NIC track, rma.wait records the stall,
// rma.flush appears only when something was outstanding, and the iget
// byte counters accumulate.
func TestAsyncSpansTraced(t *testing.T) {
	tr := trace.New()
	err := Run(2, testNet(), func(r *Rank) error {
		r.Tracer = tr
		w := NewWindow(r, make([]float64, 256))
		r.Barrier()
		if r.ID() == 0 {
			w.Lock(1)
			a := w.Iget(r, 1, 0, make([]float64, 128))
			w.Iget(r, 1, 128, make([]float64, 128))
			w.Unlock(1)
			a.Wait()
			r.Flush()
			r.Flush() // silent: nothing outstanding
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range tr.Spans() {
		counts[s.Name]++
	}
	if counts["rma.iget"] != 2 {
		t.Errorf("%d rma.iget spans, want 2", counts["rma.iget"])
	}
	if counts["rma.wait"] != 2 { // explicit Wait + the one inside Flush
		t.Errorf("%d rma.wait spans, want 2", counts["rma.wait"])
	}
	if counts["rma.flush"] != 1 {
		t.Errorf("%d rma.flush spans, want 1 (second flush must be silent)", counts["rma.flush"])
	}
	ctrs := map[string]float64{}
	for _, c := range tr.Counters() {
		ctrs[c.Name] = c.Value
	}
	if ctrs["rma.iget_bytes"] != 2*128*8 {
		t.Errorf("rma.iget_bytes = %g, want %d", ctrs["rma.iget_bytes"], 2*128*8)
	}
	if ctrs["rma.inflight_peak_bytes"] != 2*128*8 {
		t.Errorf("rma.inflight_peak_bytes = %g, want %d", ctrs["rma.inflight_peak_bytes"], 2*128*8)
	}
}
