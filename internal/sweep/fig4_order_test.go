package sweep

import (
	"reflect"
	"testing"
)

// TestCheckShapeDeterministic pins the fix for a real ordering bug found
// by the maporder analyzer (cmd/bltcvet): CheckShape used to append its
// violation strings while ranging directly over the per-kernel map, so the
// returned list — and any log or figure harness output containing it —
// came back in a different order on every call. With several kernels
// violating thresholds, repeated calls must now be identical.
func TestCheckShapeDeterministic(t *testing.T) {
	r := &Fig4Result{
		Config: Fig4Config{N: 1_000_000, Thetas: []float64{0.5}, Degrees: []int{3}},
		DirectCPU: map[string]float64{
			"alpha": 1, "beta": 1, "gamma": 1,
		},
		DirectGPU: map[string]float64{
			"alpha": 1, "beta": 1, "gamma": 1,
		},
	}
	for _, name := range []string{"gamma", "alpha", "beta"} {
		// Every point violates all three thresholds, so each kernel
		// contributes several strings and map-order shuffling would be
		// visible immediately.
		r.Points = append(r.Points, Fig4Point{
			Kernel: name, Theta: 0.5, Degree: 3,
			Err: 1e-6, CPUTime: 10, GPUTime: 10,
		})
	}

	first := r.CheckShape()
	if len(first) == 0 {
		t.Fatal("fixture produced no violations; the determinism check is vacuous")
	}
	for i := 0; i < 30; i++ {
		if got := r.CheckShape(); !reflect.DeepEqual(got, first) {
			t.Fatalf("CheckShape order differs between calls:\nfirst: %q\ncall %d: %q", first, i, got)
		}
	}
}
