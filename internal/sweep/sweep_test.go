package sweep

import (
	"bytes"
	"strings"
	"testing"

	"barytree/internal/kernel"
	"barytree/internal/perfmodel"
)

// The sweep tests run each figure harness at a reduced size and assert the
// paper's qualitative shapes hold (who wins, what grows, what shrinks).

func TestFig4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep takes tens of seconds")
	}
	cfg := DefaultFig4(60_000)
	cfg.Degrees = []int{1, 3, 5, 7, 9}
	cfg.BatchSize = 1500
	res, err := RunFig4(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Points); got != 2*3*5 {
		t.Fatalf("got %d points, want 30", got)
	}
	for _, v := range res.CheckShape() {
		t.Errorf("shape violation: %s", v)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "coulomb") || !strings.Contains(out, "yukawa") {
		t.Errorf("render missing kernels:\n%s", out)
	}
}

func TestFig4ErrorsReachHighAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep takes tens of seconds")
	}
	cfg := DefaultFig4(40_000)
	cfg.Kernels = []kernel.Kernel{kernel.Coulomb{}}
	cfg.Thetas = []float64{0.5}
	cfg.Degrees = []int{13}
	cfg.BatchSize = 1000
	res, err := RunFig4(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Points[0].Err; e > 1e-10 {
		t.Errorf("theta=0.5 n=13 error %.2e, expected near machine precision", e)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 sweep takes tens of seconds")
	}
	cfg := DefaultFig5(512) // 15k/31k/62k per GPU
	cfg.GPUs = []int{1, 2, 4, 8}
	cfg.Kernels = []kernel.Kernel{kernel.Coulomb{}}
	res, err := RunFig5(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.CheckShape() {
		t.Errorf("shape violation: %s", v)
	}
}

func TestFig6ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep takes tens of seconds")
	}
	cfg := DefaultFig6(128) // 125k and 500k
	cfg.GPUs = []int{1, 2, 4, 8, 16}
	cfg.Kernels = []kernel.Kernel{kernel.Coulomb{}}
	res, err := RunFig6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.CheckShape() {
		t.Errorf("shape violation: %s", v)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	res.RenderPhases(&buf)
	if !strings.Contains(buf.String(), "efficiency") {
		t.Error("render missing efficiency column")
	}
}

func TestAsyncStreamsAblation(t *testing.T) {
	cfg := DefaultAblation(50_000)
	res, err := RunAsyncStreams(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red := res.Reduction()
	if red <= 0 || red > 0.8 {
		t.Errorf("async reduction %.0f%% implausible", 100*red)
	}
	t.Logf("async streams reduce compute by %.0f%%", 100*red)
}

func TestBatchMACAblation(t *testing.T) {
	cfg := DefaultAblation(50_000)
	res, err := RunBatchMAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	overhead := res.WorkOverhead()
	if overhead < 0 {
		t.Errorf("batched MAC admitted less work than per-target: %.1f%%", 100*overhead)
	}
	if overhead > 1.0 {
		t.Errorf("batched MAC overhead %.0f%% far from 'nearly optimal'", 100*overhead)
	}
	if res.Batched.MACTests >= res.PerTarget.MACTests {
		t.Error("batching should slash MAC test count")
	}
	t.Logf("batch-MAC work overhead %.1f%%, MAC tests %d vs %d",
		100*overhead, res.Batched.MACTests, res.PerTarget.MACTests)
}

func TestSizeCheckAblation(t *testing.T) {
	cfg := DefaultAblation(30_000)
	res, err := RunSizeCheck(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The check replaces small-cluster approximations with direct sums:
	// accuracy must not get worse with the check, and disabling it must
	// not reduce the interaction count below the checked variant's
	// approximation-side count.
	if res.ErrWith > res.ErrWithout*1.2 {
		t.Errorf("size check made accuracy worse: %.2e vs %.2e", res.ErrWith, res.ErrWithout)
	}
	t.Logf("with check: %d interactions err=%.2e; without: %d err=%.2e",
		res.WithCheck.TotalInteractions(), res.ErrWith,
		res.WithoutCheck.TotalInteractions(), res.ErrWithout)
}

func TestLeafSizeSweepHasInteriorOptimum(t *testing.T) {
	cfg := DefaultAblation(100_000)
	pts, err := RunLeafSizeSweep(cfg, []int{100, 500, 2000, 8000, 32000})
	if err != nil {
		t.Fatal(err)
	}
	best, bestIdx := pts[0].GPUTime, 0
	for i, p := range pts {
		if p.GPUTime < best {
			best, bestIdx = p.GPUTime, i
		}
		t.Logf("NL=%d: %.4fs (%d launches)", p.LeafSize, p.GPUTime, p.Launches)
	}
	if bestIdx == 0 || bestIdx == len(pts)-1 {
		t.Errorf("optimal leaf size at sweep boundary (NL=%d); expected interior optimum", pts[bestIdx].LeafSize)
	}
}

func TestAspectRatioAblation(t *testing.T) {
	cfg := DefaultAblation(50_000)
	cfg.Params.LeafSize = 500
	cfg.Params.BatchSize = 500
	res, err := RunAspectRatio(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxAspectWithRule >= res.MaxAspectOctants {
		t.Errorf("sqrt2 rule did not reduce leaf aspect ratios: %.1f vs %.1f",
			res.MaxAspectWithRule, res.MaxAspectOctants)
	}
	t.Logf("max leaf aspect: rule %.2f, octants %.2f; interactions %d vs %d",
		res.MaxAspectWithRule, res.MaxAspectOctants,
		res.WithRule.TotalInteractions(), res.OctantsOnly.TotalInteractions())
}

func TestMixedPrecisionAblation(t *testing.T) {
	cfg := DefaultAblation(20_000)
	cfg.Params.LeafSize = 500
	cfg.Params.BatchSize = 500
	res, err := RunMixedPrecision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrFP32 <= res.ErrFP64 {
		t.Errorf("fp32 error %.2e not above fp64 %.2e", res.ErrFP32, res.ErrFP64)
	}
	if res.TimeFP32 >= res.TimeFP64 {
		t.Errorf("fp32 time %.4fs not below fp64 %.4fs", res.TimeFP32, res.TimeFP64)
	}
}

func TestCommOverlapAblation(t *testing.T) {
	cfg := DefaultAblation(30_000)
	cfg.Params.LeafSize = 500
	cfg.Params.BatchSize = 500
	res, err := RunCommOverlap(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overlapped[perfmodel.PhaseSetup] >= res.Plain[perfmodel.PhaseSetup] {
		t.Errorf("overlap did not reduce setup: %.4f vs %.4f",
			res.Overlapped[perfmodel.PhaseSetup], res.Plain[perfmodel.PhaseSetup])
	}
}

func TestRenderAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("full ablation report is slow")
	}
	cfg := DefaultAblation(40_000)
	cfg.Params.LeafSize = 1000
	cfg.Params.BatchSize = 1000
	var buf bytes.Buffer
	if err := RenderAblations(cfg, 4, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"async streams", "batch MAC", "size check", "leaf size", "aspect ratio", "mixed precision", "comm overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
