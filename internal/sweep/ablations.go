package sweep

import (
	"fmt"
	"io"
	"math/rand"

	"barytree/internal/core"
	"barytree/internal/device"
	"barytree/internal/direct"
	"barytree/internal/dist"
	"barytree/internal/interaction"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/tree"
)

// AblationConfig is the shared workload for the design-choice ablations:
// the Figure 4 workload at configurable size.
type AblationConfig struct {
	N      int
	Params core.Params
	Kernel kernel.Kernel
	Seed   int64
	GPU    perfmodel.GPUSpec
	CPU    perfmodel.CPUSpec
}

// DefaultAblation returns the ablation workload (pass n = 1_000_000 for
// the paper's Figure 4 size).
func DefaultAblation(n int) AblationConfig {
	if n <= 0 {
		n = 200_000
	}
	leaf := SnapLeafSize(n, 2000)
	return AblationConfig{
		N:      n,
		Params: core.Params{Theta: 0.8, Degree: 8, LeafSize: leaf, BatchSize: leaf},
		Kernel: kernel.Coulomb{},
		Seed:   11,
		GPU:    perfmodel.TitanV(),
		CPU:    perfmodel.XeonX5650(),
	}
}

func (cfg AblationConfig) particles() *particle.Set {
	return particle.UniformCube(cfg.N, rand.New(rand.NewSource(cfg.Seed)))
}

// AsyncStreamsResult compares synchronous launches against the paper's
// 4-stream asynchronous launches (Section 3.2 reports ~25% compute-time
// reduction for the 1M-particle case).
type AsyncStreamsResult struct {
	SyncCompute  float64
	AsyncCompute float64
}

// Reduction returns the fractional compute-time reduction from async
// streams.
func (r AsyncStreamsResult) Reduction() float64 { return 1 - r.AsyncCompute/r.SyncCompute }

// RunAsyncStreams executes the async-streams ablation (timing model only).
func RunAsyncStreams(cfg AblationConfig) (*AsyncStreamsResult, error) {
	pts := cfg.particles()
	pl, err := core.NewPlan(pts, pts, cfg.Params)
	if err != nil {
		return nil, err
	}
	sync := core.RunDevice(pl, cfg.Kernel, device.New(cfg.GPU, 0), core.DeviceOptions{
		Sync: true, ModelOnly: true, HostSpec: cfg.CPU,
	})
	async := core.RunDevice(pl, cfg.Kernel, device.New(cfg.GPU, 0), core.DeviceOptions{
		ModelOnly: true, HostSpec: cfg.CPU,
	})
	return &AsyncStreamsResult{
		SyncCompute:  sync.Times[perfmodel.PhaseCompute],
		AsyncCompute: async.Times[perfmodel.PhaseCompute],
	}, nil
}

// BatchMACResult compares the batch-level MAC (the paper's design) with a
// per-target MAC. Batching admits slightly more interactions but needs far
// fewer MAC tests and, on a GPU, avoids thread divergence entirely.
type BatchMACResult struct {
	Batched   interaction.Stats
	PerTarget interaction.Stats
}

// WorkOverhead returns the extra interaction fraction the batched MAC
// admits over the per-target MAC.
func (r BatchMACResult) WorkOverhead() float64 {
	return float64(r.Batched.TotalInteractions())/float64(r.PerTarget.TotalInteractions()) - 1
}

// RunBatchMAC executes the batch-vs-per-target MAC ablation.
func RunBatchMAC(cfg AblationConfig) (*BatchMACResult, error) {
	pts := cfg.particles()
	t := tree.Build(pts, cfg.Params.LeafSize)
	b := tree.BuildBatches(pts, cfg.Params.BatchSize)
	mac := cfg.Params.MAC()
	return &BatchMACResult{
		Batched:   interaction.BuildLists(b, t, mac).Stats,
		PerTarget: interaction.PerTargetStats(b, t, mac),
	}, nil
}

// SizeCheckResult compares the full MAC with a variant lacking the
// (n+1)^3 < N_C cluster-size check: the paper includes the check because a
// direct sum over fewer particles than interpolation points is both faster
// and more accurate.
type SizeCheckResult struct {
	WithCheck    interaction.Stats
	WithoutCheck interaction.Stats
	ErrWith      float64
	ErrWithout   float64
}

// RunSizeCheck executes the cluster-size-check ablation, measuring both
// interaction volume and sampled accuracy. To make the check bind, the
// tree uses a leaf size below (n+1)^3 so that leaf clusters are smaller
// than their interpolation grids.
func RunSizeCheck(cfg AblationConfig) (*SizeCheckResult, error) {
	pts := cfg.particles()
	leaf := cfg.Params.MAC().InterpPoints() / 2
	t := tree.Build(pts, leaf)
	b := tree.BuildBatches(pts, leaf)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	sample := metrics.SampleIndices(cfg.N, 100, rng)
	ref := direct.SumAt(cfg.Kernel, pts, sample, pts)

	res := &SizeCheckResult{}
	for _, disable := range []bool{false, true} {
		mac := cfg.Params.MAC()
		mac.DisableSizeCheck = disable
		lists := interaction.BuildLists(b, t, mac)
		pl := &core.Plan{
			Params:   cfg.Params,
			Sources:  t,
			Batches:  b,
			Lists:    lists,
			Clusters: core.NewClusterData(t, cfg.Params.Degree),
		}
		phi, err := core.EvaluateSampled(pl, cfg.Kernel, sample)
		if err != nil {
			return nil, err
		}
		e := metrics.RelErr2(ref, phi)
		if disable {
			res.WithoutCheck = lists.Stats
			res.ErrWithout = e
		} else {
			res.WithCheck = lists.Stats
			res.ErrWith = e
		}
	}
	return res, nil
}

// LeafSizePoint is one point of the batch/leaf-size sweep.
type LeafSizePoint struct {
	LeafSize int
	GPUTime  float64
	Launches int
}

// RunLeafSizeSweep sweeps NB = NL and reports modeled GPU total time,
// demonstrating why the paper picks ~2000 (Titan V) / ~4000 (P100):
// smaller kernels underutilize the device and pay more launch overhead,
// larger ones reduce the benefit of the treecode approximation.
func RunLeafSizeSweep(cfg AblationConfig, sizes []int) ([]LeafSizePoint, error) {
	if len(sizes) == 0 {
		sizes = []int{250, 500, 1000, 2000, 4000, 8000, 16000}
	}
	pts := cfg.particles()
	var out []LeafSizePoint
	for _, leaf := range sizes {
		p := cfg.Params
		p.LeafSize, p.BatchSize = leaf, leaf
		pl, err := core.NewPlan(pts, pts, p)
		if err != nil {
			return nil, err
		}
		dev := device.New(cfg.GPU, 0)
		r := core.RunDevice(pl, cfg.Kernel, dev, core.DeviceOptions{ModelOnly: true, HostSpec: cfg.CPU})
		out = append(out, LeafSizePoint{
			LeafSize: leaf,
			GPUTime:  r.Times.Total(),
			Launches: dev.StatsSnapshot().Launches,
		})
	}
	return out, nil
}

// AspectRatioResult compares the paper's sqrt(2) aspect-ratio splitting
// rule against always-octant splitting on a skewed (RCB-like) subdomain.
type AspectRatioResult struct {
	WithRule          interaction.Stats
	OctantsOnly       interaction.Stats
	MaxAspectWithRule float64
	MaxAspectOctants  float64
}

// RunAspectRatio executes the aspect-ratio ablation on a 4:2:1 slab.
func RunAspectRatio(cfg AblationConfig) (*AspectRatioResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	pts := particle.NewSet(cfg.N)
	for i := 0; i < cfg.N; i++ {
		pts.Append(4*rng.Float64(), 2*rng.Float64(), rng.Float64(), 2*rng.Float64()-1)
	}
	mac := cfg.Params.MAC()

	run := func(ratio float64) (interaction.Stats, float64) {
		old := tree.MaxAspectRatio
		tree.MaxAspectRatio = ratio
		defer func() { tree.MaxAspectRatio = old }()
		t := tree.Build(pts, cfg.Params.LeafSize)
		b := tree.BuildBatches(pts, cfg.Params.BatchSize)
		var maxAR float64
		for i := range t.Nodes {
			if t.Nodes[i].IsLeaf() {
				if ar := t.Nodes[i].Box.AspectRatio(); ar > maxAR && ar < 1e300 {
					maxAR = ar
				}
			}
		}
		return interaction.BuildLists(b, t, mac).Stats, maxAR
	}

	res := &AspectRatioResult{}
	res.WithRule, res.MaxAspectWithRule = run(1.4142135623730951)
	// A huge threshold makes every nonzero dimension split every time
	// (pure octants), recreating needle-shaped clusters on skewed domains.
	res.OctantsOnly, res.MaxAspectOctants = run(1e18)
	return res, nil
}

// MixedPrecisionResult compares fp64 against the fp32 extension.
type MixedPrecisionResult struct {
	ErrFP64, ErrFP32   float64
	TimeFP64, TimeFP32 float64
}

// RunMixedPrecision executes the mixed-precision extension study
// (functional at the configured size: errors are real, times modeled).
func RunMixedPrecision(cfg AblationConfig) (*MixedPrecisionResult, error) {
	pts := cfg.particles()
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	sample := metrics.SampleIndices(cfg.N, 200, rng)
	ref := direct.SumAt(cfg.Kernel, pts, sample, pts)

	res := &MixedPrecisionResult{}
	for _, prec := range []device.Precision{device.FP64, device.FP32} {
		pl, err := core.NewPlan(pts, pts, cfg.Params)
		if err != nil {
			return nil, err
		}
		r := core.RunDevice(pl, cfg.Kernel, device.New(cfg.GPU, 0), core.DeviceOptions{
			Precision: prec, HostSpec: cfg.CPU,
		})
		e := metrics.RelErr2(ref, metrics.Gather(r.Phi, sample))
		if prec == device.FP32 {
			res.ErrFP32, res.TimeFP32 = e, r.Times.Total()
		} else {
			res.ErrFP64, res.TimeFP64 = e, r.Times.Total()
		}
	}
	return res, nil
}

// CommOverlapResult compares the distributed run with and without the
// comm/compute overlap extension (paper future work).
type CommOverlapResult struct {
	Plain      perfmodel.PhaseTimes
	Overlapped perfmodel.PhaseTimes
}

// RunCommOverlap executes the comm-overlap extension study.
func RunCommOverlap(cfg AblationConfig, ranks int) (*CommOverlapResult, error) {
	pts := cfg.particles()
	base := dist.Config{Ranks: ranks, Params: cfg.Params, GPU: cfg.GPU, CPU: cfg.CPU, ModelOnly: true}
	plain, err := dist.Run(base, cfg.Kernel, pts)
	if err != nil {
		return nil, err
	}
	base.OverlapComm = true
	over, err := dist.Run(base, cfg.Kernel, pts)
	if err != nil {
		return nil, err
	}
	return &CommOverlapResult{Plain: plain.Times, Overlapped: over.Times}, nil
}

// RenderAblations runs every ablation at the given config and writes a
// readable report.
func RenderAblations(cfg AblationConfig, ranks int, w io.Writer) error {
	fmt.Fprintf(w, "Ablation studies, N=%d, theta=%.1f, n=%d, NL=NB=%d, kernel=%s\n",
		cfg.N, cfg.Params.Theta, cfg.Params.Degree, cfg.Params.LeafSize, cfg.Kernel.Name())

	as, err := RunAsyncStreams(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n[async streams]    sync=%.4fs  async(4)=%.4fs  reduction=%.0f%% (paper: ~25%% at 1M)\n",
		as.SyncCompute, as.AsyncCompute, 100*as.Reduction())

	bm, err := RunBatchMAC(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[batch MAC]        batched interactions=%d  per-target=%d  overhead=%.1f%%  MAC tests: %d vs %d\n",
		bm.Batched.TotalInteractions(), bm.PerTarget.TotalInteractions(),
		100*bm.WorkOverhead(), bm.Batched.MACTests, bm.PerTarget.MACTests)

	sc, err := RunSizeCheck(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[size check]       with: %d interactions err=%.2e   without: %d interactions err=%.2e\n",
		sc.WithCheck.TotalInteractions(), sc.ErrWith,
		sc.WithoutCheck.TotalInteractions(), sc.ErrWithout)

	ls, err := RunLeafSizeSweep(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[leaf size]        ")
	for _, p := range ls {
		fmt.Fprintf(w, "NL=%d:%.3fs  ", p.LeafSize, p.GPUTime)
	}
	fmt.Fprintln(w)

	ar, err := RunAspectRatio(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[aspect ratio]     sqrt2 rule: %d interactions (max leaf AR %.1f)   octants: %d (max AR %.1f)\n",
		ar.WithRule.TotalInteractions(), ar.MaxAspectWithRule,
		ar.OctantsOnly.TotalInteractions(), ar.MaxAspectOctants)

	// Mixed precision runs functionally (its errors are real numbers, not
	// model outputs), so cap its size to keep the report quick.
	mpCfg := cfg
	if mpCfg.N > 30000 {
		mpCfg.N = 30000
		mpCfg.Params.LeafSize = 1000
		mpCfg.Params.BatchSize = 1000
	}
	mp, err := RunMixedPrecision(mpCfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[mixed precision]  (N=%d) fp64: err=%.2e %.4fs   fp32: err=%.2e %.4fs\n",
		mpCfg.N, mp.ErrFP64, mp.TimeFP64, mp.ErrFP32, mp.TimeFP32)

	co, err := RunCommOverlap(cfg, ranks)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "[comm overlap]     plain setup=%.4fs total=%.4fs   overlapped setup=%.4fs total=%.4fs\n",
		co.Plain[perfmodel.PhaseSetup], co.Plain.Total(),
		co.Overlapped[perfmodel.PhaseSetup], co.Overlapped.Total())
	return nil
}
