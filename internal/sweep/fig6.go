package sweep

import (
	"fmt"
	"io"
	"math/rand"

	"barytree/internal/core"
	"barytree/internal/dist"
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
)

// Fig6Config parameterizes the strong-scaling experiment of Figure 6:
// fixed total problem sizes (the paper uses 16M and 64M particles) run on
// 1 to 32 GPUs with the Figure 5 treecode parameters, reporting run time,
// parallel efficiency relative to one GPU, and the setup / precompute /
// compute phase distribution.
type Fig6Config struct {
	Sizes   []int
	GPUs    []int
	Params  core.Params
	Kernels []kernel.Kernel
	Seed    int64
	GPU     perfmodel.GPUSpec
	CPU     perfmodel.CPUSpec
	Net     perfmodel.NetworkSpec
	// Overlap selects the pipelined LET-exchange schedule (OverlapComm):
	// the bulk fetch rides the NIC-occupancy timeline under list
	// construction and the local-list kernels instead of being waited out
	// in setup. Results are identical; the setup-share crossover moves to
	// higher rank counts.
	Overlap bool
}

// DefaultFig6 returns the paper's configuration with sizes scaled by
// 1/scaleDiv (scaleDiv = 1 reproduces 16M and 64M).
func DefaultFig6(scaleDiv int) Fig6Config {
	if scaleDiv <= 0 {
		scaleDiv = 64
	}
	leaf := 4000
	if scaleDiv > 8 {
		leaf = 1000
	}
	return Fig6Config{
		Sizes:  []int{16_000_000 / scaleDiv, 64_000_000 / scaleDiv},
		GPUs:   []int{1, 2, 4, 8, 16, 32},
		Params: core.Params{Theta: 0.8, Degree: 8, LeafSize: leaf, BatchSize: leaf},
		Kernels: []kernel.Kernel{
			kernel.Coulomb{}, kernel.Yukawa{Kappa: 0.5},
		},
		Seed: 6,
		GPU:  perfmodel.P100(),
		CPU:  perfmodel.XeonX5650(),
		Net:  perfmodel.CometIB(),
	}
}

// Fig6Point is one strong-scaling measurement.
type Fig6Point struct {
	Kernel     string
	N          int
	GPUs       int
	Times      perfmodel.PhaseTimes
	Efficiency float64 // relative to the 1-GPU run of the same (kernel, N)
	// OverlapSaved is the largest per-rank communication wire time hidden
	// under other work (zero on the serial schedule), measured from the
	// executed timeline.
	OverlapSaved float64
}

// Fig6Result holds the strong-scaling series.
type Fig6Result struct {
	Config Fig6Config
	Points []Fig6Point
}

// RunFig6 executes the strong-scaling sweep with the timing model.
func RunFig6(cfg Fig6Config, progress io.Writer) (*Fig6Result, error) {
	res := &Fig6Result{Config: cfg}
	for _, n := range cfg.Sizes {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		pts := particle.UniformCube(n, rng)
		for _, k := range cfg.Kernels {
			var t1 float64
			for _, gpus := range cfg.GPUs {
				out, err := dist.Run(dist.Config{
					Ranks:       gpus,
					Params:      cfg.Params,
					GPU:         cfg.GPU,
					CPU:         cfg.CPU,
					Net:         cfg.Net,
					ModelOnly:   true,
					OverlapComm: cfg.Overlap,
				}, k, pts)
				if err != nil {
					return nil, err
				}
				tot := out.Times.Total()
				if gpus == cfg.GPUs[0] {
					t1 = tot * float64(cfg.GPUs[0])
				}
				eff := t1 / (float64(gpus) * tot)
				var saved float64
				for i := range out.Ranks {
					if s := out.Ranks[i].OverlapSaved; s > saved {
						saved = s
					}
				}
				res.Points = append(res.Points, Fig6Point{
					Kernel:       k.Name(),
					N:            n,
					GPUs:         gpus,
					Times:        out.Times,
					Efficiency:   eff,
					OverlapSaved: saved,
				})
				if progress != nil {
					fmt.Fprintf(progress, "fig6 %-8s N=%-10d gpus=%-3d total=%8.2fs eff=%5.1f%% (%v)\n",
						k.Name(), n, gpus, tot, 100*eff, out.Times)
				}
			}
		}
	}
	return res, nil
}

// Render writes Figure 6(a,b): run time and efficiency versus GPU count.
func (r *Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 6(a,b): strong scaling, theta=%.1f n=%d NL=NB=%d\n",
		r.Config.Params.Theta, r.Config.Params.Degree, r.Config.Params.LeafSize)
	for _, k := range r.Config.Kernels {
		for _, n := range r.Config.Sizes {
			fmt.Fprintf(w, "%-8s N=%d\n", k.Name(), n)
			fmt.Fprintf(w, "  %8s %12s %12s\n", "GPUs", "time (s)", "efficiency")
			for _, g := range r.Config.GPUs {
				for _, p := range r.Points {
					if p.Kernel == k.Name() && p.N == n && p.GPUs == g {
						fmt.Fprintf(w, "  %8d %12.2f %11.0f%%\n", g, p.Times.Total(), 100*p.Efficiency)
					}
				}
			}
		}
	}
}

// RenderPhases writes Figure 6(c,d): the per-phase time distribution for
// the largest configured size.
func (r *Fig6Result) RenderPhases(w io.Writer) {
	n := r.Config.Sizes[len(r.Config.Sizes)-1]
	fmt.Fprintf(w, "\nFigure 6(c,d): phase distribution, N=%d\n", n)
	for _, k := range r.Config.Kernels {
		fmt.Fprintf(w, "%-8s %6s %10s %12s %14s %12s\n",
			"kernel", "GPUs", "total (s)", "setup %", "precompute %", "compute %")
		for _, g := range r.Config.GPUs {
			for _, p := range r.Points {
				if p.Kernel == k.Name() && p.N == n && p.GPUs == g {
					tot := p.Times.Total()
					fmt.Fprintf(w, "%-8s %6d %10.2f %11.1f%% %13.1f%% %11.1f%%\n",
						k.Name(), g, tot,
						100*p.Times[perfmodel.PhaseSetup]/tot,
						100*p.Times[perfmodel.PhasePrecompute]/tot,
						100*p.Times[perfmodel.PhaseCompute]/tot)
				}
			}
		}
	}
}

// SetupCrossover returns the smallest configured GPU count at which the
// non-compute share (setup + precompute) of the given (kernel, N) series
// reaches the compute share — the point where the paper's Figure 6(c,d)
// phase bars flip from compute-dominated to setup-dominated. It returns 0
// when compute dominates at every configured count. Pipelining the LET
// exchange (Config.Overlap) pushes the crossover to higher rank counts.
func (r *Fig6Result) SetupCrossover(kernelName string, n int) int {
	for _, g := range r.Config.GPUs {
		for _, p := range r.Points {
			if p.Kernel != kernelName || p.N != n || p.GPUs != g {
				continue
			}
			if compute := p.Times[perfmodel.PhaseCompute]; p.Times.Total()-compute >= compute {
				return g
			}
		}
	}
	return 0
}

// CheckShape verifies Figure 6's qualitative claims:
//  1. strong-scaling efficiency stays reasonable (the paper reports 83-84%
//     at 32 GPUs for 64M particles) and the larger problem scales at least
//     as well as the smaller one,
//  2. the compute phase dominates at low GPU counts,
//  3. the setup+precompute share grows as ranks multiply.
//
// Claims 1 and 3 are asymptotic: at strongly reduced sizes the octree
// leaf-size "sawtooth" (which the paper itself cites to explain its
// weak-scaling plateaus) perturbs per-rank work enough to blur the trends,
// so they are only enforced when the large problem carries at least ~30k
// particles per rank at the maximum GPU count.
func (r *Fig6Result) CheckShape() []string {
	var bad []string
	maxGPUs := r.Config.GPUs[len(r.Config.GPUs)-1]
	small, large := r.Config.Sizes[0], r.Config.Sizes[len(r.Config.Sizes)-1]
	atScale := large/maxGPUs >= 30_000
	for _, k := range r.Config.Kernels {
		var effSmall, effLarge float64
		for _, p := range r.Points {
			if p.Kernel != k.Name() || p.GPUs != maxGPUs {
				continue
			}
			if p.N == small {
				effSmall = p.Efficiency
			}
			if p.N == large {
				effLarge = p.Efficiency
			}
		}
		if effLarge < 0.5 {
			bad = append(bad, fmt.Sprintf("%s: efficiency at %d GPUs only %.0f%%", k.Name(), maxGPUs, 100*effLarge))
		}
		if atScale && large != small && effLarge < effSmall*0.9 {
			bad = append(bad, fmt.Sprintf("%s: larger problem scales worse (%.0f%% vs %.0f%%)",
				k.Name(), 100*effLarge, 100*effSmall))
		}
		// Phase distribution trend on the large problem.
		var firstComputeShare, lastComputeShare float64
		for _, p := range r.Points {
			if p.Kernel != k.Name() || p.N != large {
				continue
			}
			share := p.Times[perfmodel.PhaseCompute] / p.Times.Total()
			if p.GPUs == r.Config.GPUs[0] {
				firstComputeShare = share
			}
			if p.GPUs == maxGPUs {
				lastComputeShare = share
			}
		}
		if firstComputeShare < 0.5 {
			bad = append(bad, fmt.Sprintf("%s: compute phase does not dominate on 1 GPU (%.0f%%)",
				k.Name(), 100*firstComputeShare))
		}
		if atScale && lastComputeShare >= firstComputeShare {
			bad = append(bad, fmt.Sprintf("%s: compute share did not shrink with GPUs (%.0f%% -> %.0f%%)",
				k.Name(), 100*firstComputeShare, 100*lastComputeShare))
		}
	}
	return bad
}
