package sweep

import (
	"fmt"
	"io"
	"math/rand"

	"barytree/internal/core"
	"barytree/internal/dist"
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
)

// Fig5Config parameterizes the weak-scaling experiment of Figure 5: the
// number of particles per GPU is held fixed while the GPU count grows from
// 1 to 32 (8 Comet nodes x 4 P100s). The paper's setting: 8, 16 and 32
// million particles per GPU, theta = 0.8, n = 8, NL = NB = 4000 (5-6 digit
// accuracy); the largest run is 1.024 billion particles.
type Fig5Config struct {
	PerGPU  []int // particles per GPU
	GPUs    []int // GPU counts
	Params  core.Params
	Kernels []kernel.Kernel
	Seed    int64
	GPU     perfmodel.GPUSpec
	CPU     perfmodel.CPUSpec
	Net     perfmodel.NetworkSpec
}

// DefaultFig5 returns the paper's configuration with per-GPU sizes scaled
// by 1/scaleDiv (scaleDiv = 1 reproduces the paper's 8/16/32M per GPU;
// the default 64 runs on a laptop). Batch/leaf sizes scale with the cube
// root of the reduction so kernels stay proportionally sized.
func DefaultFig5(scaleDiv int) Fig5Config {
	if scaleDiv <= 0 {
		scaleDiv = 64
	}
	leaf := 4000
	if scaleDiv > 8 {
		leaf = 1000
	}
	return Fig5Config{
		PerGPU: []int{8_000_000 / scaleDiv, 16_000_000 / scaleDiv, 32_000_000 / scaleDiv},
		GPUs:   []int{1, 2, 4, 8, 16, 32},
		Params: core.Params{Theta: 0.8, Degree: 8, LeafSize: leaf, BatchSize: leaf},
		Kernels: []kernel.Kernel{
			kernel.Coulomb{}, kernel.Yukawa{Kappa: 0.5},
		},
		Seed: 5,
		GPU:  perfmodel.P100(),
		CPU:  perfmodel.XeonX5650(),
		Net:  perfmodel.CometIB(),
	}
}

// Fig5Point is one weak-scaling measurement.
type Fig5Point struct {
	Kernel string
	PerGPU int
	GPUs   int
	N      int // total particles
	Times  perfmodel.PhaseTimes
}

// Fig5Result holds the weak-scaling series.
type Fig5Result struct {
	Config Fig5Config
	Points []Fig5Point
}

// RunFig5 executes the weak-scaling sweep with the timing model (functional
// trees and lists at full configured size; kernels model-only).
func RunFig5(cfg Fig5Config, progress io.Writer) (*Fig5Result, error) {
	res := &Fig5Result{Config: cfg}
	for _, per := range cfg.PerGPU {
		for _, gpus := range cfg.GPUs {
			n := per * gpus
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
			pts := particle.UniformCube(n, rng)
			for _, k := range cfg.Kernels {
				out, err := dist.Run(dist.Config{
					Ranks:     gpus,
					Params:    cfg.Params,
					GPU:       cfg.GPU,
					CPU:       cfg.CPU,
					Net:       cfg.Net,
					ModelOnly: true,
				}, k, pts)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, Fig5Point{
					Kernel: k.Name(),
					PerGPU: per,
					GPUs:   gpus,
					N:      n,
					Times:  out.Times,
				})
				if progress != nil {
					fmt.Fprintf(progress, "fig5 %-8s perGPU=%-9d gpus=%-3d N=%-10d total=%8.2fs (%v)\n",
						k.Name(), per, gpus, n, out.Times.Total(), out.Times)
				}
			}
		}
	}
	return res, nil
}

// Render writes the weak-scaling series as run time versus GPU count, one
// row per (kernel, per-GPU size), matching Figure 5's curves.
func (r *Fig5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "\nFigure 5: weak scaling, theta=%.1f n=%d NL=NB=%d (run time in s)\n",
		r.Config.Params.Theta, r.Config.Params.Degree, r.Config.Params.LeafSize)
	fmt.Fprintf(w, "%-8s %-10s", "kernel", "perGPU")
	for _, g := range r.Config.GPUs {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%d GPU", g))
	}
	fmt.Fprintln(w)
	for _, k := range r.Config.Kernels {
		for _, per := range r.Config.PerGPU {
			fmt.Fprintf(w, "%-8s %-10d", k.Name(), per)
			for _, g := range r.Config.GPUs {
				for _, p := range r.Points {
					if p.Kernel == k.Name() && p.PerGPU == per && p.GPUs == g {
						fmt.Fprintf(w, " %10.2f", p.Times.Total())
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// CheckShape verifies Figure 5's qualitative claims: run times grow only
// modestly with GPU count at fixed per-GPU load (consistent with
// O(N log N)), and Yukawa runs somewhat slower than Coulomb.
func (r *Fig5Result) CheckShape() []string {
	var bad []string
	for _, k := range r.Config.Kernels {
		for _, per := range r.Config.PerGPU {
			var t1, tMax float64
			for _, p := range r.Points {
				if p.Kernel != k.Name() || p.PerGPU != per {
					continue
				}
				if p.GPUs == r.Config.GPUs[0] {
					t1 = p.Times.Total()
				}
				if tot := p.Times.Total(); tot > tMax {
					tMax = tot
				}
			}
			if t1 == 0 {
				bad = append(bad, fmt.Sprintf("%s perGPU=%d: missing 1-GPU point", k.Name(), per))
				continue
			}
			// The paper's weak scaling stays within ~2x of the single-GPU
			// time across 1..32 GPUs with millions of particles per GPU.
			// At reduced per-GPU loads communication and leaf-size
			// variation weigh more, so the bound relaxes.
			bound := 2.5
			switch {
			case per < 200_000:
				bound = 7
			case per < 2_000_000:
				bound = 4
			}
			if tMax > bound*t1 {
				bad = append(bad, fmt.Sprintf("%s perGPU=%d: weak scaling degrades %.1fx (%.2fs -> %.2fs, bound %.1fx)",
					k.Name(), per, tMax/t1, t1, tMax, bound))
			}
		}
	}
	return bad
}
