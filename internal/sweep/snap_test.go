package sweep

import (
	"math/rand"
	"testing"

	"barytree/internal/particle"
	"barytree/internal/tree"
)

func TestSnapLeafSizeSmallInputs(t *testing.T) {
	if got := SnapLeafSize(100, 2000); got != 2000 {
		t.Errorf("n below target: got %d, want 2000", got)
	}
	if got := SnapLeafSize(2000, 2000); got != 2000 {
		t.Errorf("n equal target: got %d", got)
	}
}

func TestSnapLeafSizeProducesNearTargetLeaves(t *testing.T) {
	// The whole point of snapping: actual octree leaf populations land
	// within a factor ~2 of the requested target instead of falling into
	// the N/8^d sawtooth troughs.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{30_000, 100_000, 200_000, 500_000} {
		leaf := SnapLeafSize(n, 2000)
		pts := particle.UniformCube(n, rng)
		tr := tree.Build(pts, leaf)
		var total, count int
		for _, li := range tr.Leaves() {
			total += tr.Nodes[li].Count()
			count++
		}
		mean := float64(total) / float64(count)
		if mean < 900 || mean > 4800 {
			t.Errorf("n=%d leaf=%d: mean leaf population %.0f far from target 2000", n, leaf, mean)
		}
	}
}

func TestSnapLeafSizePaperSetting(t *testing.T) {
	// At the paper's N = 1M the snapped bound must keep the ~1953-particle
	// depth-3 leaves the paper's NL = 2000 produces.
	leaf := SnapLeafSize(1_000_000, 2000)
	if leaf < 1953 || leaf > 4*1953 {
		t.Errorf("snapped leaf %d incompatible with 1953-particle depth-3 leaves", leaf)
	}
}
