// Package sweep implements the benchmark harness that regenerates every
// table and figure of the paper's evaluation (Section 4), plus the ablation
// studies for the design choices the paper calls out. Each experiment
// builds the treecode functionally (trees, batches, interaction lists at
// full problem size), evaluates run times through the calibrated
// performance model, and measures errors against sampled direct sums —
// exactly the methodology the paper uses for systems of 8M+ particles.
//
// The default problem sizes are scaled down from the paper's so that the
// harness runs on a laptop in minutes; every entry point takes the real
// sizes through its config and the cmd/ tools expose them as flags.
package sweep

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"barytree/internal/core"
	"barytree/internal/device"
	"barytree/internal/direct"
	"barytree/internal/interaction"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/tree"
)

// Fig4Config parameterizes the single-GPU vs single-CPU run-time/error
// sweep of Figure 4. The paper's setting: N = 1M uniform particles in
// [-1,1]^3, NB = NL = 2000, theta in {0.5, 0.7, 0.9}, degree n = 1:2:13,
// Coulomb and Yukawa (kappa = 0.5), Titan V vs 6-core Xeon X5650.
type Fig4Config struct {
	N         int
	BatchSize int
	Thetas    []float64
	Degrees   []int
	Kernels   []kernel.Kernel
	Samples   int // error-measurement sample size
	// SampleBatches localizes the error sample to this many target
	// batches. The paper samples random targets; restricting the sample
	// to a few batches measures the same relative error while requiring
	// modified charges for far fewer clusters, which keeps the full-size
	// sweep tractable on one core. 0 means fully random sampling.
	SampleBatches int
	Seed          int64
	GPU           perfmodel.GPUSpec
	CPU           perfmodel.CPUSpec
}

// SnapLeafSize returns a leaf/batch bound that makes the octree's actual
// leaf populations land near target. An octree's leaves hold ~N/8^d
// particles for integer depth d; a bound that ignores this "snapping" can
// produce leaves far smaller than intended (the paper's N = 1M with
// NL = 2000 snaps perfectly: 10^6/8^3 = 1953). The returned bound is 1.5x
// the snapped population: comfortably above the depth-d counts' spread,
// comfortably below the depth-(d-1) counts (8x larger).
func SnapLeafSize(n, target int) int {
	if n <= target {
		return target
	}
	d := 0
	pop := float64(n)
	// Choose the depth whose population is closest to target in log space.
	for pop > float64(target)*2.8284 { // sqrt(8): log-space midpoint
		pop /= 8
		d++
	}
	_ = d
	leaf := int(1.5 * pop)
	if leaf < 1 {
		leaf = 1
	}
	return leaf
}

// DefaultFig4 returns the paper's configuration at a laptop-feasible
// problem size (pass n = 1_000_000 for the paper's exact setting).
func DefaultFig4(n int) Fig4Config {
	if n <= 0 {
		n = 200_000
	}
	return Fig4Config{
		N:             n,
		BatchSize:     SnapLeafSize(n, 2000),
		Thetas:        []float64{0.5, 0.7, 0.9},
		Degrees:       []int{1, 3, 5, 7, 9, 11, 13},
		Kernels:       []kernel.Kernel{kernel.Coulomb{}, kernel.Yukawa{Kappa: 0.5}},
		Samples:       200,
		SampleBatches: 4,
		Seed:          20200313, // the paper's arXiv v2 date
		GPU:           perfmodel.TitanV(),
		CPU:           perfmodel.XeonX5650(),
	}
}

// Fig4Point is one point on a Figure 4 curve.
type Fig4Point struct {
	Kernel  string
	Theta   float64
	Degree  int
	Err     float64 // sampled relative 2-norm error (eq. 16)
	CPUTime float64 // modeled seconds, 6-core CPU
	GPUTime float64 // modeled seconds, single GPU
}

// Fig4Result holds the full sweep plus the direct-sum reference lines.
type Fig4Result struct {
	Config    Fig4Config
	Points    []Fig4Point
	DirectCPU map[string]float64 // kernel name -> modeled seconds
	DirectGPU map[string]float64
}

// RunFig4 executes the Figure 4 sweep. The tree and batches are built once
// (they depend only on NB = NL); interaction lists are rebuilt per (theta,
// degree); errors are measured at sampled targets against direct sums.
func RunFig4(cfg Fig4Config, progress io.Writer) (*Fig4Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := particle.UniformCube(cfg.N, rng)
	t := tree.Build(pts, cfg.BatchSize)
	batches := tree.BuildBatches(pts, cfg.BatchSize)

	var sample []int
	if cfg.SampleBatches > 0 {
		sample = sampleFromBatches(batches, cfg.SampleBatches, cfg.Samples, rng)
	} else {
		sample = metrics.SampleIndices(cfg.N, cfg.Samples, rng)
	}
	res := &Fig4Result{
		Config:    cfg,
		DirectCPU: map[string]float64{},
		DirectGPU: map[string]float64{},
	}
	refs := map[string][]float64{}
	for _, k := range cfg.Kernels {
		res.DirectCPU[k.Name()] = core.ModelDirectSumCPU(cfg.CPU, k, cfg.N, cfg.N)
		res.DirectGPU[k.Name()] = core.ModelDirectSumDevice(cfg.GPU, k, cfg.N, cfg.N)
		refs[k.Name()] = direct.SumAt(k, pts, sample, pts)
	}

	for _, n := range cfg.Degrees {
		// Cluster grids and (lazily computed) modified charges depend only
		// on the degree — they are shared across thetas and kernels.
		cd := core.NewClusterData(t, n)
		for _, theta := range cfg.Thetas {
			mac := interaction.MAC{Theta: theta, Degree: n}
			lists := interaction.BuildLists(batches, t, mac)
			pl := &core.Plan{
				Params: core.Params{
					Theta: theta, Degree: n,
					LeafSize: cfg.BatchSize, BatchSize: cfg.BatchSize,
				},
				Sources:  t,
				Batches:  batches,
				Lists:    lists,
				Clusters: cd,
			}
			for _, k := range cfg.Kernels {
				cpuTimes := core.ModelCPURun(pl, k, cfg.CPU)
				dev := device.New(cfg.GPU, 0)
				gpu := core.RunDevice(pl, k, dev, core.DeviceOptions{
					HostSpec:  cfg.CPU,
					ModelOnly: true,
				})
				phi, err := core.EvaluateSampled(pl, k, sample)
				if err != nil {
					return nil, err
				}
				e := metrics.RelErr2(refs[k.Name()], phi)
				res.Points = append(res.Points, Fig4Point{
					Kernel:  k.Name(),
					Theta:   theta,
					Degree:  n,
					Err:     e,
					CPUTime: cpuTimes.Total(),
					GPUTime: gpu.Times.Total(),
				})
				if progress != nil {
					fmt.Fprintf(progress, "fig4 %-8s theta=%.1f n=%-2d err=%.2e cpu=%8.2fs gpu=%8.4fs\n",
						k.Name(), theta, n, e, cpuTimes.Total(), gpu.Times.Total())
				}
			}
		}
	}
	return res, nil
}

// sampleFromBatches draws up to maxSamples target indices (in original
// input order) spread evenly over nBatches randomly chosen batches.
func sampleFromBatches(batches *tree.BatchSet, nBatches, maxSamples int, rng *rand.Rand) []int {
	if nBatches > len(batches.Batches) {
		nBatches = len(batches.Batches)
	}
	chosen := metrics.SampleIndices(len(batches.Batches), nBatches, rng)
	per := maxSamples / nBatches
	if per < 1 {
		per = 1
	}
	var sample []int
	for _, bi := range chosen {
		b := batches.Batches[bi]
		idx := metrics.SampleIndices(b.Count(), per, rng)
		for _, i := range idx {
			sample = append(sample, batches.Perm[b.Lo+i])
		}
	}
	return sample
}

// Render writes the sweep as the paper's two panels (one per kernel), each
// a table of degree rows by theta columns with error and CPU/GPU times.
func (r *Fig4Result) Render(w io.Writer) {
	for _, k := range r.Config.Kernels {
		name := k.Name()
		fmt.Fprintf(w, "\nFigure 4 (%s): run time vs error, N=%d, NB=NL=%d\n",
			name, r.Config.N, r.Config.BatchSize)
		fmt.Fprintf(w, "direct sum reference: CPU %.1fs, GPU %.2fs\n",
			r.DirectCPU[name], r.DirectGPU[name])
		fmt.Fprintf(w, "%6s", "n")
		for _, th := range r.Config.Thetas {
			fmt.Fprintf(w, " | %29s", fmt.Sprintf("theta=%.1f (err, cpu, gpu)", th))
		}
		fmt.Fprintln(w)
		for _, n := range r.Config.Degrees {
			fmt.Fprintf(w, "%6d", n)
			for _, th := range r.Config.Thetas {
				for _, p := range r.Points {
					if p.Kernel == name && p.Theta == th && p.Degree == n {
						fmt.Fprintf(w, " | %9.2e %9.2fs %8.4fs", p.Err, p.CPUTime, p.GPUTime)
					}
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// CheckShape verifies the qualitative claims of Figure 4 on the sweep
// result, returning a list of violations (empty = the shape holds):
//  1. the BLTC beats direct summation on both architectures across the
//     error range,
//  2. the GPU BLTC is much faster than the CPU BLTC (paper: >= 100x at
//     N = 1M),
//  3. error decreases as degree grows at fixed theta,
//  4. Yukawa is slower than Coulomb on both architectures.
//
// Claims 1 and 2 hold asymptotically: direct summation's O(N^2) only
// clearly loses at sufficient N, and the GPU's advantage needs kernels big
// enough to saturate it. The thresholds therefore relax below the paper's
// 1M-particle setting (at reduced N the small-kernel launch overhead that
// the GPU pays is real, not an artifact).
func (r *Fig4Result) CheckShape() []string {
	var bad []string
	minSpeedup := 60.0
	directSlack := 1.0
	switch {
	case r.Config.N < 150_000:
		minSpeedup = 8
		directSlack = 1.6
	case r.Config.N < 500_000:
		minSpeedup = 30
		directSlack = 1.25
	}
	perKernel := map[string][]Fig4Point{}
	for _, p := range r.Points {
		perKernel[p.Kernel] = append(perKernel[p.Kernel], p)
	}
	// Violations are reported in sorted kernel order so the list (and any
	// log containing it) is identical across runs; map iteration order is
	// randomized per run.
	kernels := make([]string, 0, len(perKernel))
	for name := range perKernel {
		kernels = append(kernels, name)
	}
	sort.Strings(kernels)
	for _, name := range kernels {
		pts := perKernel[name]
		for _, p := range pts {
			if p.CPUTime >= r.DirectCPU[name]*directSlack {
				bad = append(bad, fmt.Sprintf("%s theta=%.1f n=%d: CPU treecode %.1fs not below CPU direct %.1fs",
					name, p.Theta, p.Degree, p.CPUTime, r.DirectCPU[name]))
			}
			if p.GPUTime >= r.DirectGPU[name]*directSlack {
				bad = append(bad, fmt.Sprintf("%s theta=%.1f n=%d: GPU treecode %.3fs not below GPU direct %.3fs",
					name, p.Theta, p.Degree, p.GPUTime, r.DirectGPU[name]))
			}
			if ratio := p.CPUTime / p.GPUTime; ratio < minSpeedup {
				bad = append(bad, fmt.Sprintf("%s theta=%.1f n=%d: GPU speedup only %.0fx (threshold %.0fx)",
					name, p.Theta, p.Degree, ratio, minSpeedup))
			}
		}
	}
	// Error decreasing in degree at fixed (kernel, theta).
	for _, name := range kernels {
		pts := perKernel[name]
		for _, th := range r.Config.Thetas {
			var prev float64 = 1e300
			for _, n := range r.Config.Degrees {
				for _, p := range pts {
					if p.Theta == th && p.Degree == n {
						if p.Err > prev*2 && p.Err > 1e-12 {
							bad = append(bad, fmt.Sprintf("%s theta=%.1f: error not decreasing at n=%d (%.2e after %.2e)",
								name, th, n, p.Err, prev))
						}
						prev = p.Err
					}
				}
			}
		}
	}
	// Yukawa slower than Coulomb pointwise.
	for _, pc := range perKernel["coulomb"] {
		for _, py := range perKernel["yukawa"] {
			if pc.Theta == py.Theta && pc.Degree == py.Degree {
				if py.CPUTime <= pc.CPUTime || py.GPUTime <= pc.GPUTime {
					bad = append(bad, fmt.Sprintf("theta=%.1f n=%d: yukawa not slower than coulomb",
						pc.Theta, pc.Degree))
				}
			}
		}
	}
	return bad
}
