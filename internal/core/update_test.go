package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/trace"
	"barytree/internal/tree"
)

// updParams are the Morton-mode parameters shared by the update tests.
// LeafSize == BatchSize makes the hidden target tree identical to the
// source tree, so tolerance/drift evidence is symmetric and easy to pin.
func updParams() Params {
	return Params{Theta: 0.7, Degree: 4, LeafSize: 50, BatchSize: 50, Morton: true}
}

// updSolve runs the plan's state-based solve and returns potentials in the
// original particle order — the same path as the public Plan.Solve.
func updSolve(t *testing.T, pl *Plan, k kernel.Kernel) []float64 {
	t.Helper()
	st := NewChargeState(pl)
	st.Compute(pl, 0)
	phi := make([]float64, pl.Batches.Targets.Len())
	RunComputeState(pl, k, st, phi, 0)
	out := make([]float64, len(phi))
	pl.Batches.Perm.ScatterInto(out, phi)
	return out
}

// wantExact asserts byte-identical potentials (exact ==, no tolerance).
func wantExact(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: phi[%d] = %x, want %x (not byte-identical)", what, i, got[i], want[i])
		}
	}
}

// wantFreshEqual asserts the updated plan's structures are bit-identical to
// a fresh NewPlan at the same positions and charges.
func wantFreshEqual(t *testing.T, pl *Plan, x, y, z, q []float64, p Params) *Plan {
	t.Helper()
	mk := func() *particle.Set {
		return &particle.Set{
			X: append([]float64(nil), x...), Y: append([]float64(nil), y...),
			Z: append([]float64(nil), z...), Q: append([]float64(nil), q...),
		}
	}
	fresh, err := NewPlan(mk(), mk(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl.Sources, fresh.Sources) {
		t.Fatal("updated source tree differs from fresh build")
	}
	if !reflect.DeepEqual(pl.Batches, fresh.Batches) {
		t.Fatal("updated batches differ from fresh build")
	}
	if !reflect.DeepEqual(pl.Lists, fresh.Lists) {
		t.Fatal("updated interaction lists differ from fresh build")
	}
	if !reflect.DeepEqual(pl.Clusters, fresh.Clusters) {
		t.Fatal("updated cluster data differs from fresh build")
	}
	return fresh
}

func TestUpdateZeroDriftByteIdentical(t *testing.T) {
	pts := testParticles(t, 2500, 11)
	k := kernel.Coulomb{}
	pl, err := NewPlan(pts, pts, updParams())
	if err != nil {
		t.Fatal(err)
	}
	before := updSolve(t, pl, k)

	st, err := pl.update(pts.X, pts.Y, pts.Z)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action != UpdateRefit {
		t.Fatalf("zero drift took %v, want refit", st.Action)
	}
	if st.OutOfTolerance != 0 || st.Drifters != 0 || st.MACViolations != 0 {
		t.Fatalf("zero drift reported evidence %+v", st)
	}
	after := updSolve(t, pl, k)
	wantExact(t, after, before, "zero-drift update")

	if pl.Generation() != 1 {
		t.Fatalf("generation = %d after one update, want 1", pl.Generation())
	}
}

// Update is a test-file helper wrapper that threads a nil tracer, keeping
// call sites close to the public API shape.
func (pl *Plan) update(x, y, z []float64) (UpdateStats, error) {
	return pl.Update(x, y, z, nil)
}

func TestUpdateRefitSmallDrift(t *testing.T) {
	pts := testParticles(t, 2500, 12)
	k := kernel.Coulomb{}
	pl, err := NewPlan(pts, pts, updParams())
	if err != nil {
		t.Fatal(err)
	}
	ref := updSolve(t, pl, k)

	rng := rand.New(rand.NewSource(13))
	x := append([]float64(nil), pts.X...)
	y := append([]float64(nil), pts.Y...)
	z := append([]float64(nil), pts.Z...)
	for i := range x {
		x[i] += 1e-9 * (rng.Float64() - 0.5)
		y[i] += 1e-9 * (rng.Float64() - 0.5)
		z[i] += 1e-9 * (rng.Float64() - 0.5)
	}
	st, err := pl.update(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action != UpdateRefit {
		t.Fatalf("tiny drift took %v (evidence %+v), want refit", st.Action, st)
	}
	got := updSolve(t, pl, k)
	// The geometry barely moved; the solve must track it, not the stale one
	// bit-for-bit, but stay numerically indistinguishable at this scale.
	for i := range got {
		if math.Abs(got[i]-ref[i]) > 1e-4*math.Abs(ref[i])+1e-12 {
			t.Fatalf("refit solve drifted at %d: %g vs %g", i, got[i], ref[i])
		}
	}
}

func TestUpdateRepairMatchesFreshPlan(t *testing.T) {
	n := 3000
	pts := testParticles(t, n, 14)
	k := kernel.Coulomb{}
	p := updParams()
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}

	// ~1.3% of particles teleport within the interior of the original
	// bounds (far enough to leave their leaf cells), the rest hold still:
	// local drift, stable quantization domain.
	rng := rand.New(rand.NewSource(15))
	x := append([]float64(nil), pts.X...)
	y := append([]float64(nil), pts.Y...)
	z := append([]float64(nil), pts.Z...)
	for m := 0; m < 40; m++ {
		i := rng.Intn(n)
		x[i] = 0.05 + 0.9*rng.Float64()
		y[i] = 0.05 + 0.9*rng.Float64()
		z[i] = 0.05 + 0.9*rng.Float64()
	}
	st, err := pl.update(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action != UpdateRepair {
		t.Fatalf("local drift took %v (evidence %+v), want repair", st.Action, st)
	}
	if st.OutOfTolerance == 0 || st.Drifters == 0 {
		t.Fatalf("repair with no evidence: %+v", st)
	}
	fresh := wantFreshEqual(t, pl, x, y, z, pts.Q, p)
	wantExact(t, updSolve(t, pl, k), updSolve(t, fresh, k), "post-repair solve")
}

func TestUpdateRebuildMatchesFreshPlan(t *testing.T) {
	n := 2000
	pts := testParticles(t, n, 16)
	k := kernel.Coulomb{}
	p := updParams()

	t.Run("widespread drift", func(t *testing.T) {
		pl, err := NewPlan(pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		x := append([]float64(nil), pts.X...)
		y := append([]float64(nil), pts.Y...)
		z := append([]float64(nil), pts.Z...)
		for i := 0; i < n; i += 2 {
			x[i] = 0.05 + 0.9*rng.Float64()
			y[i] = 0.05 + 0.9*rng.Float64()
			z[i] = 0.05 + 0.9*rng.Float64()
		}
		st, err := pl.update(x, y, z)
		if err != nil {
			t.Fatal(err)
		}
		if st.Action != UpdateRebuild {
			t.Fatalf("50%% drift took %v (evidence %+v), want rebuild", st.Action, st)
		}
		fresh := wantFreshEqual(t, pl, x, y, z, pts.Q, p)
		wantExact(t, updSolve(t, pl, k), updSolve(t, fresh, k), "post-rebuild solve")
	})

	t.Run("domain change", func(t *testing.T) {
		pl, err := NewPlan(pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		x := append([]float64(nil), pts.X...)
		y := append([]float64(nil), pts.Y...)
		z := append([]float64(nil), pts.Z...)
		for i := range x {
			x[i] *= 4
			y[i] *= 4
			z[i] *= 4
		}
		st, err := pl.update(x, y, z)
		if err != nil {
			t.Fatal(err)
		}
		if st.Action != UpdateRebuild {
			t.Fatalf("4x expansion took %v (evidence %+v), want rebuild", st.Action, st)
		}
		fresh := wantFreshEqual(t, pl, x, y, z, pts.Q, p)
		wantExact(t, updSolve(t, pl, k), updSolve(t, fresh, k), "post-rebuild solve")
	})
}

func TestUpdateToleranceBoundary(t *testing.T) {
	defer func(f float64) { RefitMaxOutOfTolerance = f }(RefitMaxOutOfTolerance)
	RefitMaxOutOfTolerance = 0 // pin the strict envelope semantics

	n := 800
	p := updParams()
	p.DriftTol = 0.05
	pts := testParticles(t, n, 18)
	k := kernel.Coulomb{}

	// Find a leaf with a few particles and real extent, and the envelope
	// bound its first particle may drift to in +X. The drift scale mirrors
	// MortonIndex.OutOfTolerance: the larger of the leaf radius and half
	// its Morton cell side.
	build := func(t *testing.T) (*Plan, int, float64) {
		t.Helper()
		pl, err := NewPlan(pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		idx := pl.upd.srcIdx
		side := idx.Domain.Hi.X - idx.Domain.Lo.X
		for i := range pl.Sources.Nodes {
			nd := &pl.Sources.Nodes[i]
			if nd.IsLeaf() && nd.Count() >= 4 && nd.Radius > 0 {
				scale := nd.Radius
				if half := math.Ldexp(side, int(idx.CellShift[i])/3-tree.MortonBits-1); half > scale {
					scale = half
				}
				oi := pl.Sources.Perm[nd.Lo]
				return pl, oi, nd.Box.Hi.X + p.DriftTol*scale
			}
		}
		t.Fatal("no suitable leaf")
		return nil, 0, 0
	}

	t.Run("exactly at bound refits", func(t *testing.T) {
		pl, oi, bound := build(t)
		x := append([]float64(nil), pts.X...)
		x[oi] = bound // inclusive: still within the envelope
		st, err := pl.update(x, pts.Y, pts.Z)
		if err != nil {
			t.Fatal(err)
		}
		if st.OutOfTolerance != 0 {
			t.Fatalf("particle at the exact bound counted out of tolerance: %+v", st)
		}
		if st.Action != UpdateRefit {
			t.Fatalf("boundary drift took %v (evidence %+v), want refit", st.Action, st)
		}
	})

	t.Run("one ulp past bound does not refit", func(t *testing.T) {
		pl, oi, bound := build(t)
		x := append([]float64(nil), pts.X...)
		x[oi] = math.Nextafter(bound, math.Inf(1))
		st, err := pl.update(x, pts.Y, pts.Z)
		if err != nil {
			t.Fatal(err)
		}
		if st.OutOfTolerance == 0 {
			t.Fatalf("particle past the bound not counted: %+v", st)
		}
		if st.Action == UpdateRefit {
			t.Fatalf("out-of-tolerance drift still refit: %+v", st)
		}
		// Whichever non-refit path ran, the plan must equal a fresh build.
		fresh := wantFreshEqual(t, pl, x, pts.Y, pts.Z, pts.Q, p)
		wantExact(t, updSolve(t, pl, k), updSolve(t, fresh, k), "past-bound solve")
	})
}

func TestUpdateLeafEmptiedByDrift(t *testing.T) {
	defer func(f float64) { RepairMaxFraction = f }(RepairMaxFraction)
	RepairMaxFraction = 1.0 // force the repair path even for a whole leaf

	n := 600
	p := updParams()
	p.LeafSize, p.BatchSize = 20, 20
	pts := testParticles(t, n, 19)
	k := kernel.Coulomb{}
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}

	// Empty one interior leaf: every particle of it teleports next to an
	// anchor particle from another region (inside the original bounds).
	var leaf int = -1
	for i := range pl.Sources.Nodes {
		nd := &pl.Sources.Nodes[i]
		if nd.IsLeaf() && nd.Count() >= 4 {
			leaf = i
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaf with >= 4 particles")
	}
	nd := &pl.Sources.Nodes[leaf]
	x := append([]float64(nil), pts.X...)
	y := append([]float64(nil), pts.Y...)
	z := append([]float64(nil), pts.Z...)
	for j := nd.Lo; j < nd.Hi; j++ {
		oi := pl.Sources.Perm[j]
		f := 1e-7 * float64(j-nd.Lo)
		x[oi] = 0.5 + f
		y[oi] = 0.5 + f
		z[oi] = 0.5 + f
	}
	st, err := pl.update(x, y, z)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action != UpdateRepair {
		t.Fatalf("emptied leaf took %v (evidence %+v), want forced repair", st.Action, st)
	}
	fresh := wantFreshEqual(t, pl, x, y, z, pts.Q, p)
	wantExact(t, updSolve(t, pl, k), updSolve(t, fresh, k), "emptied-leaf solve")
}

func TestUpdateSingleParticle(t *testing.T) {
	one := &particle.Set{X: []float64{0.5}, Y: []float64{0.25}, Z: []float64{0.75}, Q: []float64{2}}
	k := kernel.Coulomb{}
	pl, err := NewPlan(one, one, updParams())
	if err != nil {
		t.Fatal(err)
	}
	if st, err := pl.update(one.X, one.Y, one.Z); err != nil || st.Action != UpdateRefit {
		t.Fatalf("stationary single particle: action %v, err %v", st.Action, err)
	}
	if st, err := pl.update([]float64{3}, []float64{-1}, []float64{9}); err != nil {
		t.Fatalf("moving single particle: %v (action %v)", err, st.Action)
	}
	phi := updSolve(t, pl, k)
	if len(phi) != 1 || phi[0] != 0 {
		t.Fatalf("single self-interaction phi = %v, want [0]", phi)
	}
}

func TestUpdateAllCoincident(t *testing.T) {
	n := 64
	pts := &particle.Set{
		X: make([]float64, n), Y: make([]float64, n),
		Z: make([]float64, n), Q: make([]float64, n),
	}
	for i := range pts.Q {
		pts.X[i], pts.Y[i], pts.Z[i] = 0.25, 0.25, 0.25
		pts.Q[i] = float64(i + 1)
	}
	k := kernel.Coulomb{}
	p := updParams()
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i] = 0.7, 0.7, 0.7
	}
	st, err := pl.update(x, y, z)
	if err != nil {
		t.Fatalf("coincident update: %v (action %v)", err, st.Action)
	}
	for i, v := range updSolve(t, pl, k) {
		if v != 0 {
			t.Fatalf("coincident particles phi[%d] = %g, want 0 (G(x,x)=0)", i, v)
		}
	}
}

func TestUpdateErrors(t *testing.T) {
	pts := testParticles(t, 300, 20)
	k := kernel.Coulomb{}

	t.Run("non-morton plan", func(t *testing.T) {
		p := updParams()
		p.Morton = false
		pl, err := NewPlan(pts, pts, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.update(pts.X, pts.Y, pts.Z); err == nil {
			t.Fatal("Update on a midpoint plan did not fail")
		}
	})

	t.Run("distinct targets", func(t *testing.T) {
		tg := testParticles(t, 300, 21)
		pl, err := NewPlan(tg, pts, updParams())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pl.update(pts.X, pts.Y, pts.Z); err == nil {
			t.Fatal("Update with distinct target particles did not fail")
		}
	})

	t.Run("bad input leaves plan untouched", func(t *testing.T) {
		pl, err := NewPlan(pts, pts, updParams())
		if err != nil {
			t.Fatal(err)
		}
		before := updSolve(t, pl, k)
		if _, err := pl.update(pts.X[:10], pts.Y, pts.Z); err == nil {
			t.Fatal("short coordinate slice did not fail")
		}
		bad := append([]float64(nil), pts.X...)
		bad[7] = math.NaN()
		if _, err := pl.update(bad, pts.Y, pts.Z); err == nil {
			t.Fatal("NaN coordinate did not fail")
		}
		bad[7] = math.Inf(1)
		if _, err := pl.update(bad, pts.Y, pts.Z); err == nil {
			t.Fatal("Inf coordinate did not fail")
		}
		if pl.Generation() != 0 {
			t.Fatalf("failed updates bumped generation to %d", pl.Generation())
		}
		wantExact(t, updSolve(t, pl, k), before, "solve after rejected updates")
	})
}

func TestUpdateStaleChargeStatePanics(t *testing.T) {
	pts := testParticles(t, 400, 22)
	pl, err := NewPlan(pts, pts, updParams())
	if err != nil {
		t.Fatal(err)
	}
	st := NewChargeState(pl)
	if _, err := pl.update(pts.X, pts.Y, pts.Z); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stale ChargeState.Compute did not panic after Update")
		}
	}()
	st.Compute(pl, 0)
}

func TestUpdateTraceSpans(t *testing.T) {
	n := 1500
	pts := testParticles(t, n, 23)
	pl, err := NewPlan(pts, pts, updParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()

	// One refit (zero drift), then one forced non-refit (teleport a block).
	if _, err := pl.Update(pts.X, pts.Y, pts.Z, tr); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	x := append([]float64(nil), pts.X...)
	for m := 0; m < 30; m++ {
		x[rng.Intn(n)] = 0.05 + 0.9*rng.Float64()
	}
	st, err := pl.Update(x, pts.Y, pts.Z, tr)
	if err != nil {
		t.Fatal(err)
	}
	if st.Action == UpdateRefit {
		t.Fatalf("teleported block still refit: %+v", st)
	}

	spans := map[string]int{}
	var lastEnd float64
	for _, s := range tr.Spans() {
		spans[s.Name]++
		if s.Start < lastEnd {
			t.Fatalf("update spans overlap on the modeled clock: %q starts at %g before %g", s.Name, s.Start, lastEnd)
		}
		lastEnd = s.End
	}
	if spans[SpanUpdateRefit] != 1 {
		t.Fatalf("got %d %s spans, want 1 (all spans: %v)", spans[SpanUpdateRefit], SpanUpdateRefit, spans)
	}
	if spans[SpanUpdateRepair]+spans[SpanUpdateRebuild] != 1 {
		t.Fatalf("got no repair/rebuild span: %v", spans)
	}
	counters := map[string]float64{}
	for _, c := range tr.Counters() {
		counters[c.Name] = c.Value
	}
	if counters[SpanUpdateRefit] != 1 {
		t.Fatalf("refit counter = %g, want 1", counters[SpanUpdateRefit])
	}
	if counters[CounterUpdateDrifters] != float64(st.Drifters) {
		t.Fatalf("drifter counter = %g, want %d", counters[CounterUpdateDrifters], st.Drifters)
	}
	if counters[CounterUpdateOutOfTolerance] != float64(st.OutOfTolerance) {
		t.Fatalf("tolerance counter = %g, want %d", counters[CounterUpdateOutOfTolerance], st.OutOfTolerance)
	}
}
