package core

import (
	"math"
	"strconv"
	"testing"

	"barytree/internal/device"
	"barytree/internal/kernel"
	"barytree/internal/perfmodel"
)

// referenceListPhi evaluates every batch's interaction list through the
// per-source scalar reference path (EvalDirectTarget/EvalApproxTarget) in
// exactly the per-target add order the drivers guarantee, and returns the
// potentials in original target order. The plan's modified charges must
// already be computed.
func referenceListPhi(pl *Plan, k kernel.Kernel) []float64 {
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	phi := make([]float64, tg.Len())
	for bi := range pl.Batches.Batches {
		b := &pl.Batches.Batches[bi]
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			for ti := b.Lo; ti < b.Hi; ti++ {
				phi[ti] += EvalDirectTarget(k, tg, ti, src, nd.Lo, nd.Hi)
			}
		}
		for _, ci := range pl.Lists.Approx[bi] {
			for ti := b.Lo; ti < b.Hi; ti++ {
				phi[ti] += EvalApproxTarget(k, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci])
			}
		}
	}
	out := make([]float64, len(phi))
	pl.Batches.Perm.ScatterInto(out, phi)
	return out
}

// referenceListAbsStats walks the same interaction lists as
// referenceListPhi but returns, per target in original order, the sum of
// |G·q| over every per-source interaction and the interaction count —
// the inputs to the additive tolerance of a tile kernel's measured-ULP
// contract (kernel.TileMaxULP).
func referenceListAbsStats(pl *Plan, k kernel.Kernel) (absSum []float64, count []int) {
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	sum := make([]float64, tg.Len())
	n := make([]int, tg.Len())
	for bi := range pl.Batches.Batches {
		b := &pl.Batches.Batches[bi]
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			for ti := b.Lo; ti < b.Hi; ti++ {
				for j := nd.Lo; j < nd.Hi; j++ {
					sum[ti] += math.Abs(k.Eval(tg.X[ti], tg.Y[ti], tg.Z[ti], src.X[j], src.Y[j], src.Z[j]) * src.Q[j])
					n[ti]++
				}
			}
		}
		for _, ci := range pl.Lists.Approx[bi] {
			px, py, pz, qhat := cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci]
			for ti := b.Lo; ti < b.Hi; ti++ {
				for j := range qhat {
					sum[ti] += math.Abs(k.Eval(tg.X[ti], tg.Y[ti], tg.Z[ti], px[j], py[j], pz[j]) * qhat[j])
					n[ti]++
				}
			}
		}
	}
	absSum = make([]float64, len(sum))
	count = make([]int, len(n))
	pl.Batches.Perm.ScatterInto(absSum, sum)
	perm := make([]float64, len(n))
	for i, c := range n {
		perm[i] = float64(c)
	}
	out := make([]float64, len(n))
	pl.Batches.Perm.ScatterInto(out, perm)
	for i, c := range out {
		count[i] = int(c)
	}
	return absSum, count
}

// checkSolvePhi compares a full solve against the per-source scalar
// reference under kernel k's tile contract: exact (==) when the resolved
// tile is bit-identical (kernel.TileMaxULP == 0), otherwise within the
// additive tolerance (maxULP+1)·n·ulp(Σ|G·q|) per target — each of the n
// per-source terms may be off by maxULP ulps of the largest magnitude the
// accumulator saw.
func checkSolvePhi(t *testing.T, label string, pl *Plan, k kernel.Kernel, got, want []float64) {
	t.Helper()
	maxULP := kernel.TileMaxULP(k)
	if maxULP == 0 {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s kernel=%s target %d: tiled %v != scalar %v (diff %g)",
					label, k.Name(), i, got[i], want[i], got[i]-want[i])
			}
		}
		return
	}
	absSum, n := referenceListAbsStats(pl, k)
	for i := range want {
		tol := float64(maxULP+1) * float64(n[i]) * (math.Nextafter(absSum[i], math.Inf(1)) - absSum[i])
		if diff := math.Abs(got[i] - want[i]); diff > tol {
			t.Fatalf("%s kernel=%s target %d: tiled %v vs scalar %v, |diff| %g exceeds ULP-contract tolerance %g",
				label, k.Name(), i, got[i], want[i], diff, tol)
		}
	}
}

// TestTiledCPUPathBitIdenticalRagged is the full-solve guarantee for the
// target-tiled compute phase: RunCPU — which cascades Tile8Width and
// TileWidth target tiles per kernel dispatch and finishes ragged batch
// tails on the single-target path — matches the per-source scalar
// reference for batch sizes covering every residue mod Tile8Width and for
// all TileKernel resolutions (assembly-backed Coulomb with its 8-wide
// register-blocked tile, assembly Yukawa under its measured-ULP contract,
// generic adapter over kernel.Func). The "pure-go" subtest repeats the
// sweep with the assembly kernels switched off, where every kernel —
// Yukawa included — must be bit-identical to the scalar reference.
func TestTiledCPUPathBitIdenticalRagged(t *testing.T) {
	targets := testParticles(t, 2003, 31)
	sources := testParticles(t, 2003, 32)
	kernels := []kernel.Kernel{
		kernel.Coulomb{},
		kernel.Yukawa{Kappa: 0.6},
		kernel.Func{KernelName: "coulomb-func", F: kernel.Coulomb{}.Eval},
	}
	sweep := func(t *testing.T, label string) {
		for _, batch := range []int{57, 58, 59, 60, 61, 62, 63, 64} {
			p := Params{Theta: 0.7, Degree: 3, LeafSize: 90, BatchSize: batch}
			for _, k := range kernels {
				pl, err := NewPlan(targets, sources, p)
				if err != nil {
					t.Fatal(err)
				}
				res := RunCPU(pl, k, CPUOptions{})
				want := referenceListPhi(pl, k)
				checkSolvePhi(t, label+" batch="+strconv.Itoa(batch), pl, k, res.Phi, want)
			}
		}
	}
	t.Run("installed", func(t *testing.T) { sweep(t, "installed") })
	t.Run("pure-go", func(t *testing.T) {
		prev := kernel.SetAsmKernels(false)
		defer kernel.SetAsmKernels(prev)
		sweep(t, "pure-go")
	})
}

// TestDeviceTiledBitIdentical pins the two device-path guarantees of the
// target-tiled rewiring. Functionally, the tiled host execution behind
// LaunchBlocks accumulates each target's per-launch block totals in launch
// order, exactly like the CPU driver's list order, so the device result
// equals the CPU result bit for bit even at ragged batch sizes. For the
// model, the launch specs are untouched (one modeled thread block per
// target), so the functional run's phase times equal a model-only run's
// exactly.
func TestDeviceTiledBitIdentical(t *testing.T) {
	pts := testParticles(t, 3001, 33)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 4, LeafSize: 150, BatchSize: 123}

	plCPU, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := RunCPU(plCPU, k, CPUOptions{})

	plDev, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(perfmodel.TitanV(), 0)
	gpu := RunDevice(plDev, k, dev, DeviceOptions{})
	for i := range cpu.Phi {
		if gpu.Phi[i] != cpu.Phi[i] {
			t.Fatalf("target %d: device %v != cpu %v (diff %g)",
				i, gpu.Phi[i], cpu.Phi[i], gpu.Phi[i]-cpu.Phi[i])
		}
	}

	plModel, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	model := RunDevice(plModel, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{ModelOnly: true})
	if model.Times != gpu.Times {
		t.Errorf("functional tiled run changed modeled times: %v != model-only %v", gpu.Times, model.Times)
	}
}
