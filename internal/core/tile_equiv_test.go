package core

import (
	"testing"

	"barytree/internal/device"
	"barytree/internal/kernel"
	"barytree/internal/perfmodel"
)

// referenceListPhi evaluates every batch's interaction list through the
// per-source scalar reference path (EvalDirectTarget/EvalApproxTarget) in
// exactly the per-target add order the drivers guarantee, and returns the
// potentials in original target order. The plan's modified charges must
// already be computed.
func referenceListPhi(pl *Plan, k kernel.Kernel) []float64 {
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	phi := make([]float64, tg.Len())
	for bi := range pl.Batches.Batches {
		b := &pl.Batches.Batches[bi]
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			for ti := b.Lo; ti < b.Hi; ti++ {
				phi[ti] += EvalDirectTarget(k, tg, ti, src, nd.Lo, nd.Hi)
			}
		}
		for _, ci := range pl.Lists.Approx[bi] {
			for ti := b.Lo; ti < b.Hi; ti++ {
				phi[ti] += EvalApproxTarget(k, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci])
			}
		}
	}
	out := make([]float64, len(phi))
	pl.Batches.Perm.ScatterInto(out, phi)
	return out
}

// TestTiledCPUPathBitIdenticalRagged is the full-solve guarantee for the
// target-tiled compute phase: RunCPU — which tiles TileWidth targets per
// kernel dispatch and finishes ragged batch tails on the single-target
// path — produces potentials bit-identical to the per-source scalar
// reference, for batch sizes covering every residue mod TileWidth and for
// all three TileKernel resolutions (assembly-backed Coulomb, Go
// specialization, generic adapter over kernel.Func).
func TestTiledCPUPathBitIdenticalRagged(t *testing.T) {
	targets := testParticles(t, 2003, 31)
	sources := testParticles(t, 2003, 32)
	kernels := []kernel.Kernel{
		kernel.Coulomb{},
		kernel.Yukawa{Kappa: 0.6},
		kernel.Func{KernelName: "coulomb-func", F: kernel.Coulomb{}.Eval},
	}
	for _, batch := range []int{61, 62, 63, 64} {
		p := Params{Theta: 0.7, Degree: 3, LeafSize: 90, BatchSize: batch}
		for _, k := range kernels {
			pl, err := NewPlan(targets, sources, p)
			if err != nil {
				t.Fatal(err)
			}
			res := RunCPU(pl, k, CPUOptions{})
			want := referenceListPhi(pl, k)
			for i := range want {
				if res.Phi[i] != want[i] {
					t.Fatalf("batch=%d kernel=%s target %d: tiled %v != scalar %v (diff %g)",
						batch, k.Name(), i, res.Phi[i], want[i], res.Phi[i]-want[i])
				}
			}
		}
	}
}

// TestDeviceTiledBitIdentical pins the two device-path guarantees of the
// target-tiled rewiring. Functionally, the tiled host execution behind
// LaunchBlocks accumulates each target's per-launch block totals in launch
// order, exactly like the CPU driver's list order, so the device result
// equals the CPU result bit for bit even at ragged batch sizes. For the
// model, the launch specs are untouched (one modeled thread block per
// target), so the functional run's phase times equal a model-only run's
// exactly.
func TestDeviceTiledBitIdentical(t *testing.T) {
	pts := testParticles(t, 3001, 33)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 4, LeafSize: 150, BatchSize: 123}

	plCPU, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := RunCPU(plCPU, k, CPUOptions{})

	plDev, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(perfmodel.TitanV(), 0)
	gpu := RunDevice(plDev, k, dev, DeviceOptions{})
	for i := range cpu.Phi {
		if gpu.Phi[i] != cpu.Phi[i] {
			t.Fatalf("target %d: device %v != cpu %v (diff %g)",
				i, gpu.Phi[i], cpu.Phi[i], gpu.Phi[i]-cpu.Phi[i])
		}
	}

	plModel, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	model := RunDevice(plModel, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{ModelOnly: true})
	if model.Times != gpu.Times {
		t.Errorf("functional tiled run changed modeled times: %v != model-only %v", gpu.Times, model.Times)
	}
}
