package core

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/pool"
)

// FieldResult holds potentials and fields (negative forces per unit
// charge) at every target, in the caller's original target order.
type FieldResult struct {
	Phi        []float64
	GX, GY, GZ []float64 // gradient of phi at each target
	Times      perfmodel.PhaseTimes
}

// EvalDirectFieldTarget accumulates the potential and its gradient at one
// target due to direct summation over sources [cLo, cHi).
func EvalDirectFieldTarget(k kernel.GradKernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) (phi, gx, gy, gz float64) {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	for j := cLo; j < cHi; j++ {
		g, dx, dy, dz := k.EvalGrad(tx, ty, tz, src.X[j], src.Y[j], src.Z[j])
		q := src.Q[j]
		phi += g * q
		gx += dx * q
		gy += dy * q
		gz += dz * q
	}
	return phi, gx, gy, gz
}

// EvalApproxFieldTarget accumulates the potential and gradient at one
// target due to a cluster's Chebyshev proxies: the same direct-sum shape
// as the potential-only kernel, with gradient evaluations of G.
func EvalApproxFieldTarget(k kernel.GradKernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) (phi, gx, gy, gz float64) {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	for j := range qhat {
		g, dx, dy, dz := k.EvalGrad(tx, ty, tz, px[j], py[j], pz[j])
		q := qhat[j]
		phi += g * q
		gx += dx * q
		gy += dy * q
		gz += dz * q
	}
	return phi, gx, gy, gz
}

// RunCPUFields evaluates potentials and gradients for the plan on the CPU
// backend. The modified charges are the ones already used for potentials
// (interpolation is in the source variable, so the gradient with respect
// to the target needs no new cluster data).
func RunCPUFields(pl *Plan, k kernel.GradKernel, opt CPUOptions) *FieldResult {
	opt.defaults()
	rate := opt.Spec.ParallelFlopRate()
	res := &FieldResult{}
	res.Times[perfmodel.PhaseSetup] = pl.SetupWork(opt.Spec)

	chargeFlops := pl.Clusters.ComputeCharges(pl.Sources, opt.Workers)
	res.Times[perfmodel.PhasePrecompute] = chargeFlops / rate

	n := pl.Batches.Targets.Len()
	phi := make([]float64, n)
	gx := make([]float64, n)
	gy := make([]float64, n)
	gz := make([]float64, n)
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	pool.For(len(pl.Batches.Batches), opt.Workers, func(bi int) {
		b := &pl.Batches.Batches[bi]
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			for ti := b.Lo; ti < b.Hi; ti++ {
				p, x, y, z := EvalDirectFieldTarget(k, tg, ti, src, nd.Lo, nd.Hi)
				phi[ti] += p
				gx[ti] += x
				gy[ti] += y
				gz[ti] += z
			}
		}
		for _, ci := range pl.Lists.Approx[bi] {
			for ti := b.Lo; ti < b.Hi; ti++ {
				p, x, y, z := EvalApproxFieldTarget(k, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci])
				phi[ti] += p
				gx[ti] += x
				gy[ti] += y
				gz[ti] += z
			}
		}
	})
	res.Times[perfmodel.PhaseCompute] =
		float64(pl.Lists.Stats.TotalInteractions()) * (kernel.GradCost(k, kernel.ArchCPU) + 8) / rate

	res.Phi = make([]float64, n)
	res.GX = make([]float64, n)
	res.GY = make([]float64, n)
	res.GZ = make([]float64, n)
	pl.Batches.Perm.ScatterInto(res.Phi, phi)
	pl.Batches.Perm.ScatterInto(res.GX, gx)
	pl.Batches.Perm.ScatterInto(res.GY, gy)
	pl.Batches.Perm.ScatterInto(res.GZ, gz)
	return res
}
