package core

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/pool"
)

// FieldResult holds potentials and fields (negative forces per unit
// charge) at every target, in the caller's original target order.
type FieldResult struct {
	Phi        []float64
	GX, GY, GZ []float64 // gradient of phi at each target
	Times      perfmodel.PhaseTimes
}

// EvalDirectFieldTarget accumulates the potential and its gradient at one
// target due to direct summation over sources [cLo, cHi), with the sources'
// own charges.
func EvalDirectFieldTarget(k kernel.GradKernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) (phi, gx, gy, gz float64) {
	return EvalDirectFieldTargetQ(k, tg, ti, src, src.Q, cLo, cHi)
}

// EvalDirectFieldTargetQ is EvalDirectFieldTarget with explicit charges q
// (tree order) — the plan's own or a ChargeState's; the arithmetic is
// identical, so equal charges yield bit-identical sums.
func EvalDirectFieldTargetQ(k kernel.GradKernel, tg *particle.Set, ti int, src *particle.Set, q []float64, cLo, cHi int) (phi, gx, gy, gz float64) {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	for j := cLo; j < cHi; j++ {
		g, dx, dy, dz := k.EvalGrad(tx, ty, tz, src.X[j], src.Y[j], src.Z[j])
		qq := q[j]
		phi += g * qq
		gx += dx * qq
		gy += dy * qq
		gz += dz * qq
	}
	return phi, gx, gy, gz
}

// EvalApproxFieldTarget accumulates the potential and gradient at one
// target due to a cluster's Chebyshev proxies: the same direct-sum shape
// as the potential-only kernel, with gradient evaluations of G.
func EvalApproxFieldTarget(k kernel.GradKernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) (phi, gx, gy, gz float64) {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	for j := range qhat {
		g, dx, dy, dz := k.EvalGrad(tx, ty, tz, px[j], py[j], pz[j])
		q := qhat[j]
		phi += g * q
		gx += dx * q
		gy += dy * q
		gz += dz * q
	}
	return phi, gx, gy, gz
}

// RunCPUFields evaluates potentials and gradients for the plan on the CPU
// backend. The modified charges are the ones already used for potentials
// (interpolation is in the source variable, so the gradient with respect
// to the target needs no new cluster data).
func RunCPUFields(pl *Plan, k kernel.GradKernel, opt CPUOptions) *FieldResult {
	opt.defaults()
	rate := opt.Spec.ParallelFlopRate()
	res := &FieldResult{}
	res.Times[perfmodel.PhaseSetup] = pl.SetupWork(opt.Spec)

	chargeFlops := pl.Clusters.ComputeCharges(pl.Sources, opt.Workers)
	res.Times[perfmodel.PhasePrecompute] = chargeFlops / rate

	n := pl.Batches.Targets.Len()
	phi := make([]float64, n)
	gx := make([]float64, n)
	gy := make([]float64, n)
	gz := make([]float64, n)
	runFieldsBatches(pl, k, pl.Sources.Particles.Q, pl.Clusters.Qhat, phi, gx, gy, gz, opt.Workers)
	res.Times[perfmodel.PhaseCompute] =
		float64(pl.Lists.Stats.TotalInteractions()) * (kernel.GradCost(k, kernel.ArchCPU) + 8) / rate

	res.Phi = make([]float64, n)
	res.GX = make([]float64, n)
	res.GY = make([]float64, n)
	res.GZ = make([]float64, n)
	pl.Batches.Perm.ScatterInto(res.Phi, phi)
	pl.Batches.Perm.ScatterInto(res.GX, gx)
	pl.Batches.Perm.ScatterInto(res.GY, gy)
	pl.Batches.Perm.ScatterInto(res.GZ, gz)
	return res
}

// runFieldsBatches walks every batch's interaction list accumulating
// potentials and gradients into phi/gx/gy/gz (batch target order), with
// charges q and modified charges qhat — the plan's own (RunCPUFields) or a
// ChargeState's (RunFieldsState). The loop structure and per-target add
// order are identical for both, so equal charges yield byte-identical
// fields.
func runFieldsBatches(pl *Plan, k kernel.GradKernel, q []float64, qhat [][]float64, phi, gx, gy, gz []float64, workers int) {
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	pool.For(len(pl.Batches.Batches), workers, func(bi int) {
		b := &pl.Batches.Batches[bi]
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			for ti := b.Lo; ti < b.Hi; ti++ {
				p, x, y, z := EvalDirectFieldTargetQ(k, tg, ti, src, q, nd.Lo, nd.Hi)
				phi[ti] += p
				gx[ti] += x
				gy[ti] += y
				gz[ti] += z
			}
		}
		for _, ci := range pl.Lists.Approx[bi] {
			for ti := b.Lo; ti < b.Hi; ti++ {
				p, x, y, z := EvalApproxFieldTarget(k, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], qhat[ci])
				phi[ti] += p
				gx[ti] += x
				gy[ti] += y
				gz[ti] += z
			}
		}
	})
}

// RunFieldsState evaluates potentials and gradients against a ChargeState's
// charges into the four caller buffers (batch target order). The modified
// charges must be fresh (call st.Compute first). The plan is only read, so
// concurrent calls with distinct (st, buffers) are safe. Byte-identical to
// RunCPUFields' compute pass for equal charges.
func RunFieldsState(pl *Plan, k kernel.GradKernel, st *ChargeState, phi, gx, gy, gz []float64, workers int) {
	st.checkGen(pl)
	runFieldsBatches(pl, k, st.Q, st.Qhat, phi, gx, gy, gz, workers)
}
