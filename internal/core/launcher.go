package core

import (
	"math"

	"barytree/internal/device"
	"barytree/internal/kernel"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/tree"
)

// Launcher queues batch/cluster potential kernels on a simulated device,
// cycling asynchronous streams and advancing the host clock by the launch
// overhead, exactly as the paper's CPU loop over the interaction lists
// does. Both the single-device driver and the distributed driver (which
// additionally launches kernels against LET data) are built on it.
type Launcher struct {
	Dev       *device.Device
	Host      *perfmodel.Clock
	Kernel    kernel.Kernel
	Streams   int
	Sync      bool
	Precision device.Precision
	ModelOnly bool
	// DataReady is the completion time of the HtD transfer the kernels
	// depend on.
	DataReady float64

	tk        kernel.TileKernel
	f32t      kernel.F32TileKernel
	rate      float64
	capacity  float64
	perEval   float64
	syncReady float64
	launch    int
}

// NewLauncher prepares a launcher for the compute phase. streams <= 0
// selects the device default.
func NewLauncher(dev *device.Device, host *perfmodel.Clock, k kernel.Kernel,
	streams int, sync bool, prec device.Precision, modelOnly bool, dataReady float64) *Launcher {

	if streams <= 0 {
		streams = dev.Spec.Streams
	}
	l := &Launcher{
		Dev:       dev,
		Host:      host,
		Kernel:    k,
		Streams:   streams,
		Sync:      sync,
		Precision: prec,
		ModelOnly: modelOnly,
		DataReady: dataReady,
		rate:      dev.Spec.EffectiveFlopRate(),
		capacity:  float64(dev.Spec.ThreadCapacity()),
		perEval:   k.Cost(kernel.ArchGPU) + 2,
	}
	// Resolve the tiled fast path once for the whole compute phase; every
	// kernel body launched below dispatches once per block, not per source,
	// and the host executes TileWidth targets per dispatch.
	l.tk = kernel.AsTile(k)
	if prec == device.FP32 {
		l.rate *= dev.Spec.FP32Speedup
		f32, ok := k.(kernel.F32Kernel)
		if !ok && !modelOnly {
			panic("core: FP32 requested but kernel does not implement kernel.F32Kernel")
		}
		if ok {
			l.f32t = kernel.AsF32Tile(f32)
		}
	}
	return l
}

// queue advances the host clock for one launch and returns the kernel's
// earliest device-side start; in Sync mode the host also waits for the
// kernel itself. label names the kernel in the trace.
func (l *Launcher) queue(label string, work float64, grid, block int) (device.LaunchSpec, float64) {
	spec := device.LaunchSpec{
		Stream: l.launch % l.Streams,
		Grid:   grid,
		Block:  block,
		FlopEq: work,
		Label:  label,
	}
	l.launch++
	l.Host.Advance(l.Dev.Spec.LaunchOverheadHost)
	submit := math.Max(l.Host.Now(), l.DataReady)
	if l.Sync {
		submit = math.Max(submit, l.syncReady)
		u := float64(grid*block) / l.capacity
		if u > 1 {
			u = 1
		}
		if u <= 0 {
			u = 1 / l.capacity
		}
		done := submit + l.Dev.Spec.LaunchLatencyDevice + work/(l.rate*u)
		l.syncReady = done
		l.Host.AdvanceTo(done)
	}
	return spec, submit
}

// LaunchDirect queues one batch-cluster direct sum kernel: targets
// [bLo, bLo+nb) of tg against source particles [cLo, cHi) of src, with one
// modeled thread block per target and atomic accumulation into phi (batch
// target order). The host executes the same arithmetic tiled: one host
// block per TileWidth targets plus single-target blocks for the ragged
// tail, adding each target's block total into phi once. The tile's
// accumulators start at zero, and a sum accumulated from +0 under
// round-to-nearest can never be -0, so the per-lane 0 + total add is
// bit-exact against the single-target path; the modeled spec (grid nb)
// is unchanged.
func (l *Launcher) LaunchDirect(tg *particle.Set, bLo, nb int, src *particle.Set, cLo, cHi int, phi *device.AccumBuffer) {
	work := float64(nb) * float64(cHi-cLo) * l.perEval
	spec, submit := l.queue("direct", work, nb, min(cHi-cLo, 1024))
	fnGrid := nb
	var fn func(int)
	if !l.ModelOnly {
		tk := l.tk
		f32t := l.f32t
		prec := l.Precision
		// The host tile width is per precision: fp32 tiles are
		// F32TileWidth lanes wide, fp64 tiles TileWidth. The modeled spec
		// (grid nb) is unchanged either way.
		tw := kernel.TileWidth
		if prec == device.FP32 {
			tw = kernel.F32TileWidth
		}
		nTiles := nb / tw
		fnGrid = nTiles + nb%tw
		fn = func(block int) {
			if block < nTiles {
				ti := bLo + block*tw
				if prec == device.FP32 {
					var t TargetTileF32
					t.LoadParticles(tg, ti)
					EvalDirectTileBlockF32(f32t, &t, src, cLo, cHi)
					for lane := 0; lane < kernel.F32TileWidth; lane++ {
						phi.Add(ti+lane, float64(t.Acc[lane]))
					}
				} else {
					var t TargetTile
					t.LoadParticles(tg, ti)
					EvalDirectTileBlock(tk, &t, src, cLo, cHi)
					for lane := 0; lane < kernel.TileWidth; lane++ {
						phi.Add(ti+lane, t.Acc[lane])
					}
				}
				return
			}
			ti := bLo + nTiles*tw + (block - nTiles)
			var v float64
			if prec == device.FP32 {
				v = EvalDirectTargetBlockF32(f32t, tg, ti, src, cLo, cHi)
			} else {
				v = EvalDirectTargetBlock(tk, tg, ti, src, cLo, cHi)
			}
			phi.Add(ti, v)
		}
	}
	l.Dev.LaunchBlocks(spec, submit, fnGrid, fn)
}

// LaunchApprox queues one batch-cluster approximation kernel: targets
// [bLo, bLo+nb) against a cluster's Chebyshev points px/py/pz with modified
// charges qhat. Host execution is tiled exactly as in LaunchDirect.
func (l *Launcher) LaunchApprox(tg *particle.Set, bLo, nb int, px, py, pz, qhat []float64, phi *device.AccumBuffer) {
	np := len(px)
	work := float64(nb) * float64(np) * l.perEval
	spec, submit := l.queue("approx", work, nb, min(np, 1024))
	fnGrid := nb
	var fn func(int)
	if !l.ModelOnly {
		tk := l.tk
		f32t := l.f32t
		prec := l.Precision
		tw := kernel.TileWidth
		if prec == device.FP32 {
			tw = kernel.F32TileWidth
		}
		nTiles := nb / tw
		fnGrid = nTiles + nb%tw
		fn = func(block int) {
			if block < nTiles {
				ti := bLo + block*tw
				if prec == device.FP32 {
					var t TargetTileF32
					t.LoadParticles(tg, ti)
					EvalApproxTileBlockF32(f32t, &t, px, py, pz, qhat)
					for lane := 0; lane < kernel.F32TileWidth; lane++ {
						phi.Add(ti+lane, float64(t.Acc[lane]))
					}
				} else {
					var t TargetTile
					t.LoadParticles(tg, ti)
					EvalApproxTileBlock(tk, &t, px, py, pz, qhat)
					for lane := 0; lane < kernel.TileWidth; lane++ {
						phi.Add(ti+lane, t.Acc[lane])
					}
				}
				return
			}
			ti := bLo + nTiles*tw + (block - nTiles)
			var v float64
			if prec == device.FP32 {
				v = EvalApproxTargetBlockF32(f32t, tg, ti, px, py, pz, qhat)
			} else {
				v = EvalApproxTargetBlock(tk, tg, ti, px, py, pz, qhat)
			}
			phi.Add(ti, v)
		}
	}
	l.Dev.LaunchBlocks(spec, submit, fnGrid, fn)
}

// LaunchChargeKernels queues the two preprocessing kernels for every node
// of the source tree (Section 3.2): kernel 1 computes the intermediate
// quantities with one block per particle and threads over the degree;
// kernel 2 computes each modified charge with one block per Chebyshev
// point and threads over the particles. In model-only mode the launches
// are recorded for timing but Qhat stays nil.
func LaunchChargeKernels(cd *ClusterData, t *tree.Tree, dev *device.Device,
	hc *perfmodel.Clock, dataReady float64, streams int, modelOnly bool) {

	if streams <= 0 {
		streams = dev.Spec.Streams
	}
	n := cd.Degree
	m := n + 1
	launch := 0
	// One flat scratch serves every node: functional execution of a launch
	// is synchronous, so pass 1 and pass 2 of a node complete before the
	// next node's launches reuse the buffers. Concurrent blocks of one
	// pass-1 launch write disjoint scratch rows.
	scratch := scratchPool.Get().(*chargeScratch)
	defer scratchPool.Put(scratch)
	for ni := range t.Nodes {
		nd := &t.Nodes[ni]
		nc := nd.Count()
		p1, p2 := chargeWork(n, nc)

		var fn1, fn2 func(int)
		var qhat []float64
		if !modelOnly {
			scratch.Reserve(nc, m)
			qhat = cd.qhatSlot(ni)
			ni := ni
			nd := nd
			fn1 = func(block int) {
				cd.pass1Particle(t.Particles, t.Particles.Q, nd, ni, block, scratch)
			}
			fn2 = func(block int) {
				cd.pass2Point(scratch, block, qhat)
			}
		}

		hc.Advance(dev.Spec.LaunchOverheadHost)
		dev.Launch(device.LaunchSpec{
			Stream: launch % streams,
			Grid:   nc,
			Block:  m,
			FlopEq: p1,
			Label:  "charges.pass1",
		}, math.Max(hc.Now(), dataReady), fn1)
		launch++

		np := cd.Grids[ni].NumPoints()
		hc.Advance(dev.Spec.LaunchOverheadHost)
		dev.Launch(device.LaunchSpec{
			Stream: launch % streams,
			Grid:   np,
			Block:  min(nc, 1024),
			FlopEq: p2,
			Label:  "charges.pass2",
		}, math.Max(hc.Now(), dataReady), fn2)
		launch++
		if !modelOnly {
			cd.Qhat[ni] = qhat
		}
	}
}
