package core

import (
	"time"

	"barytree/internal/interaction"
	"barytree/internal/kernel"
	"barytree/internal/perfmodel"
	"barytree/internal/pool"
)

// Result is the output of a treecode run.
type Result struct {
	// Phi holds the potentials in the caller's original target order.
	Phi []float64
	// Times are the modeled phase durations (the paper's setup /
	// precompute / compute split) on the modeled architecture.
	Times perfmodel.PhaseTimes
	// Wall are the measured wall-clock phase durations of this process
	// (host execution of the functional algorithm), for sanity checking;
	// all reported figures use Times.
	Wall perfmodel.PhaseTimes
	// Interactions are the interaction-list statistics of the run.
	Interactions interaction.Stats
}

// CPUOptions configure the CPU driver.
type CPUOptions struct {
	// Workers is the number of goroutines parallelizing over target
	// batches, the analogue of the paper's OpenMP threads (one batch's
	// interaction list per thread). 0 selects GOMAXPROCS; 1 is serial.
	Workers int
	// Spec is the modeled CPU. Zero value selects the paper's 6-core
	// Xeon X5650.
	Spec perfmodel.CPUSpec
}

func (o *CPUOptions) defaults() {
	if o.Spec.Cores == 0 {
		o.Spec = perfmodel.XeonX5650()
	}
	if o.Workers == 0 {
		o.Workers = o.Spec.Cores
	}
}

// RunCPU evaluates the treecode plan on the CPU: modified charges for every
// source cluster, then each batch's interaction list (direct sums for
// near-field leaves, barycentric approximations for well-separated
// clusters), parallelized over batches.
func RunCPU(pl *Plan, k kernel.Kernel, opt CPUOptions) *Result {
	opt.defaults()
	res := &Result{Interactions: pl.Lists.Stats}
	rate := opt.Spec.ParallelFlopRate()

	// Setup phase (already executed during NewPlan; modeled from counters).
	res.Times[perfmodel.PhaseSetup] = pl.SetupWork(opt.Spec)

	// Precompute phase: modified charges.
	start := time.Now()
	chargeFlops := pl.Clusters.ComputeCharges(pl.Sources, opt.Workers)
	res.Wall[perfmodel.PhasePrecompute] = time.Since(start).Seconds()
	res.Times[perfmodel.PhasePrecompute] = chargeFlops / rate

	// Compute phase: walk every batch's interaction list. The tile kernel
	// is resolved once here; every inner loop below it is devirtualized.
	start = time.Now()
	tk := kernel.AsTile(k)
	t8 := kernel.Tile8(k)
	phiBatch := make([]float64, pl.Batches.Targets.Len())
	pool.For(len(pl.Batches.Batches), opt.Workers, func(bi int) {
		evalBatchLists(pl, tk, t8, bi, phiBatch, pl.Sources.Particles.Q, pl.Clusters.Qhat)
	})
	res.Wall[perfmodel.PhaseCompute] = time.Since(start).Seconds()
	res.Times[perfmodel.PhaseCompute] = computeFlops(pl.Lists.Stats, k, kernel.ArchCPU) / rate

	// Map back to the caller's target order.
	res.Phi = make([]float64, len(phiBatch))
	pl.Batches.Perm.ScatterInto(res.Phi, phiBatch)
	return res
}

// RunComputeOnly evaluates every batch's interaction list into phi (batch
// target order, length = number of targets) using all cores, assuming the
// plan's modified charges are already computed. It is the repeated-solve
// path used by the Solver facade (boundary-integral iterations update
// charges, not geometry). It returns the modeled compute-phase flop count.
func RunComputeOnly(pl *Plan, k kernel.Kernel, phi []float64) float64 {
	return RunComputeOnlyWorkers(pl, k, phi, 0)
}

// RunComputeOnlyWorkers is RunComputeOnly with an explicit worker count
// (<= 0 selects GOMAXPROCS; 1 is serial). It is the multi-core scaling
// probe the compute-phase benchmarks sweep.
func RunComputeOnlyWorkers(pl *Plan, k kernel.Kernel, phi []float64, workers int) float64 {
	tk := kernel.AsTile(k)
	t8 := kernel.Tile8(k)
	pool.For(len(pl.Batches.Batches), workers, func(bi int) {
		evalBatchLists(pl, tk, t8, bi, phi, pl.Sources.Particles.Q, pl.Clusters.Qhat)
	})
	return computeFlops(pl.Lists.Stats, k, kernel.ArchCPU)
}

// evalBatchLists accumulates batch bi's full interaction list into phi
// (batch target order) through the tiled fast path: a register-width group
// of targets walks the whole list together so each source block streams
// from memory once per tile instead of once per target. Per target the
// adds still land in list order — the tile contracts add exactly one block
// total per list entry — and the accumulators are seeded from and stored
// back to phi, so the result is bit-identical to the single-target block
// path (up to each kernel's documented tile ULP contract). The cascade is
// 8 → 4 → 1: when the kernel has a register-blocked Tile8Width tile
// (t8 != nil), full 8-target groups take it first; remaining targets take
// TileWidth tiles; the last <TileWidth targets take the single-target
// epilogue.
//
// q and qhat supply the source charges (tree order) and per-node modified
// charges: the plan's own (RunCPU, RunComputeOnly) or a per-request
// ChargeState's (RunComputeState, RunComputeGroup). The geometry always
// comes from the plan; q/qhat are only ever read, so concurrent calls with
// disjoint phi are safe.
//
//hot:path
func evalBatchLists(pl *Plan, tk kernel.TileKernel, t8 kernel.Tile8Func, bi int, phi, q []float64, qhat [][]float64) {
	b := &pl.Batches.Batches[bi]
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	direct, approx := pl.Lists.Direct[bi], pl.Lists.Approx[bi]

	ti := b.Lo
	if t8 != nil {
		var t80 TargetTile8
		for ; ti+kernel.Tile8Width <= b.Hi; ti += kernel.Tile8Width {
			t80.LoadParticles(tg, ti)
			t80.LoadPotentials(phi, ti)
			for _, ci := range direct {
				nd := &pl.Sources.Nodes[ci]
				EvalDirectTile8BlockQ(t8, &t80, src, q, nd.Lo, nd.Hi)
			}
			for _, ci := range approx {
				EvalApproxTile8Block(t8, &t80, cd.PX[ci], cd.PY[ci], cd.PZ[ci], qhat[ci])
			}
			t80.Store(phi, ti)
		}
	}
	var t TargetTile
	for ; ti+kernel.TileWidth <= b.Hi; ti += kernel.TileWidth {
		t.LoadParticles(tg, ti)
		t.LoadPotentials(phi, ti)
		for _, ci := range direct {
			nd := &pl.Sources.Nodes[ci]
			EvalDirectTileBlockQ(tk, &t, src, q, nd.Lo, nd.Hi)
		}
		for _, ci := range approx {
			EvalApproxTileBlock(tk, &t, cd.PX[ci], cd.PY[ci], cd.PZ[ci], qhat[ci])
		}
		t.Store(phi, ti)
	}
	for ; ti < b.Hi; ti++ {
		for _, ci := range direct {
			nd := &pl.Sources.Nodes[ci]
			phi[ti] += EvalDirectTargetBlockQ(tk, tg, ti, src, q, nd.Lo, nd.Hi)
		}
		for _, ci := range approx {
			phi[ti] += EvalApproxTargetBlock(tk, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], qhat[ci])
		}
	}
}

// ComputeWork returns the modeled flop-equivalents of one compute phase of
// pl under kernel k on the CPU architecture class — the per-request work
// the serving layer attributes to each solve it coalesces.
func ComputeWork(pl *Plan, k kernel.Kernel) float64 {
	return computeFlops(pl.Lists.Stats, k, kernel.ArchCPU)
}

// computeFlops converts interaction counts into modeled flop-equivalents
// for the given kernel and architecture.
func computeFlops(st interaction.Stats, k kernel.Kernel, arch kernel.Arch) float64 {
	perEval := k.Cost(arch)
	// Each kernel evaluation is followed by a multiply-accumulate with the
	// (modified) charge.
	return float64(st.TotalInteractions()) * (perEval + 2)
}

// ModelCPURun returns the modeled phase times of a CPU treecode run without
// executing any kernels: setup from the plan's construction counters,
// precompute from the modified-charge work, compute from the interaction
// lists. It matches RunCPU's Times field exactly.
func ModelCPURun(pl *Plan, k kernel.Kernel, spec perfmodel.CPUSpec) perfmodel.PhaseTimes {
	if spec.Cores == 0 {
		spec = perfmodel.XeonX5650()
	}
	rate := spec.ParallelFlopRate()
	var t perfmodel.PhaseTimes
	t[perfmodel.PhaseSetup] = pl.SetupWork(spec)
	t[perfmodel.PhasePrecompute] = pl.Clusters.TotalChargeWork(pl.Sources) / rate
	t[perfmodel.PhaseCompute] = computeFlops(pl.Lists.Stats, k, kernel.ArchCPU) / rate
	return t
}

// ModelDirectSumCPU returns the modeled seconds for a full direct summation
// of nt targets against ns sources on the given CPU with all cores active
// (the paper's Figure 4 reference line).
func ModelDirectSumCPU(cpu perfmodel.CPUSpec, k kernel.Kernel, nt, ns int) float64 {
	flops := float64(nt) * float64(ns) * (k.Cost(kernel.ArchCPU) + 2)
	return flops / cpu.ParallelFlopRate()
}
