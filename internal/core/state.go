package core

import (
	"fmt"

	"barytree/internal/kernel"
	"barytree/internal/pool"
)

// ChargeState is the per-request mutable half of a solve: the source
// charges (in tree order) and the modified charges they induce. Everything
// else a solve reads — tree, batches, interaction lists, Chebyshev grids —
// lives in the Plan and is never written after NewPlan, so any number of
// ChargeStates can evaluate against one shared Plan concurrently. This is
// the split the serving layer is built on: one cached Plan per geometry,
// one ChargeState per in-flight request.
//
// A ChargeState must not be shared between concurrent solves; it is the
// mutable state. Sequential reuse (an iterative solver calling
// SetCharges/Compute per iteration) is the intended pattern and allocates
// nothing after construction.
type ChargeState struct {
	// Q are the source charges in tree (leaf-contiguous) order.
	Q []float64
	// Qhat[i] are node i's modified charges, views into one flat arena
	// laid out exactly like the plan's own modified-charge arena.
	Qhat [][]float64

	arena []float64
	fresh bool   // Qhat valid for current Q
	gen   uint64 // plan generation the state was created against
}

// checkGen panics if the plan has been Updated since the state was
// created: the state's charges are permuted for the old tree order and
// its arena may be sized for the old topology, so running it would
// silently evaluate stale geometry. Create a fresh state (or use
// Plan.Solve, which always does) after an Update.
func (st *ChargeState) checkGen(pl *Plan) {
	if st.gen != pl.gen {
		panic(fmt.Sprintf("core: charge state from plan generation %d used after Update (plan generation %d); create a new state",
			st.gen, pl.gen))
	}
}

// NewChargeState returns charge state sized for pl, initialized with the
// charges the sources carried when the plan was built. The first Compute
// (or a driver) fills Qhat.
func NewChargeState(pl *Plan) *ChargeState {
	cd := pl.Clusters
	n := len(pl.Sources.Nodes)
	m := cd.Degree + 1
	np := m * m * m
	st := &ChargeState{
		Q:     make([]float64, pl.Sources.Particles.Len()),
		Qhat:  make([][]float64, n),
		arena: make([]float64, n*np),
		gen:   pl.gen,
	}
	copy(st.Q, pl.Sources.Particles.Q)
	for i := 0; i < n; i++ {
		st.Qhat[i] = st.arena[i*np : (i+1)*np : (i+1)*np]
	}
	return st
}

// SetCharges replaces the source charges. q is given in the order the
// sources were passed to NewPlan (original order); the state stores them
// permuted into tree order. The next Compute recomputes the modified
// charges; the plan itself is not touched.
func (st *ChargeState) SetCharges(pl *Plan, q []float64) error {
	st.checkGen(pl)
	src := pl.Sources
	if len(q) != src.Particles.Len() {
		return fmt.Errorf("core: SetCharges got %d charges for %d sources", len(q), src.Particles.Len())
	}
	// Perm maps tree order -> original order.
	for treeIdx, origIdx := range src.Perm {
		st.Q[treeIdx] = q[origIdx]
	}
	st.fresh = false
	return nil
}

// Compute fills the modified charges for the current Q using up to
// `workers` goroutines (<= 0 selects a sensible default), exactly as
// ClusterData.ComputeCharges does for the plan's own charges: same passes,
// same per-node operation order, so equal charges yield bit-identical
// modified charges. It returns the modeled flop-equivalents of the work,
// and is a no-op returning 0 if Qhat is already valid for Q.
func (st *ChargeState) Compute(pl *Plan, workers int) float64 {
	st.checkGen(pl)
	if st.fresh {
		return 0
	}
	cd := pl.Clusters
	t := pl.Sources
	flops := cd.TotalChargeWork(t)
	pool.Blocks(len(t.Nodes), workers, func(_, lo, hi int) {
		s := scratchPool.Get().(*chargeScratch)
		for i := lo; i < hi; i++ {
			cd.computeChargesNodeInto(t.Particles, st.Q, &t.Nodes[i], i, s, st.Qhat[i])
		}
		scratchPool.Put(s)
	})
	st.fresh = true
	return flops
}

// Invalidate marks the modified charges stale, forcing the next Compute to
// re-run (used after direct writes to Q).
func (st *ChargeState) Invalidate() { st.fresh = false }

// ResetToPlan restores the charges the sources carried when the plan was
// built and marks the state stale. It makes a recycled state (e.g. from a
// serving-layer pool) indistinguishable from a fresh NewChargeState: both
// SetCharges and ResetToPlan overwrite every charge, so no prior request's
// values can leak into the next solve.
func (st *ChargeState) ResetToPlan(pl *Plan) {
	st.checkGen(pl)
	copy(st.Q, pl.Sources.Particles.Q)
	st.fresh = false
}

// RunComputeState evaluates every batch's interaction list against the
// state's charges into phi (batch target order, length = number of
// targets), parallelized over batches with up to `workers` goroutines. The
// plan is only read; all mutable inputs come from st and all output goes to
// phi, so concurrent calls with distinct (st, phi) pairs are safe. The
// modified charges must be fresh (call st.Compute first). Returns the
// modeled compute-phase flop count.
func RunComputeState(pl *Plan, k kernel.Kernel, st *ChargeState, phi []float64, workers int) float64 {
	tk := kernel.AsTile(k)
	t8 := kernel.Tile8(k)
	pool.For(len(pl.Batches.Batches), workers, func(bi int) {
		evalBatchLists(pl, tk, t8, bi, phi, st.Q, st.Qhat)
	})
	return computeFlops(pl.Lists.Stats, k, kernel.ArchCPU)
}

// GroupMember is one request of a coalesced compute pass: a kernel, its
// charge state (already Computed) and its output buffer (batch target
// order).
type GroupMember struct {
	Kernel kernel.Kernel
	State  *ChargeState
	Phi    []float64
}

// RunComputeGroup evaluates several requests against one shared plan in a
// single tiled parallel pass: the work items are all (member, batch) pairs,
// so one worker pool spans the whole group instead of one pool per request.
// Each item writes only its own member's Phi range and walks its batch's
// interaction list in list order, exactly as RunComputeState does — so each
// member's output is bit-identical to a solo RunComputeState with the same
// state, regardless of how many requests share the pass or how items are
// scheduled. This is the batching path of the serving layer's request
// coalescing.
func RunComputeGroup(pl *Plan, members []GroupMember, workers int) {
	nb := len(pl.Batches.Batches)
	tks := make([]kernel.TileKernel, len(members))
	t8s := make([]kernel.Tile8Func, len(members))
	for i := range members {
		tks[i] = kernel.AsTile(members[i].Kernel)
		t8s[i] = kernel.Tile8(members[i].Kernel)
	}
	pool.For(len(members)*nb, workers, func(idx int) {
		mi, bi := idx/nb, idx%nb
		m := &members[mi]
		evalBatchLists(pl, tks[mi], t8s[mi], bi, m.Phi, m.State.Q, m.State.Qhat)
	})
}
