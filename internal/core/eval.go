package core

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
)

// EvalDirectTarget computes the potential at one target due to direct
// summation over source particles [cLo, cHi) — the body of one thread block
// of the batch-cluster direct sum kernel (Figure 3b): the loop over sources
// is what the GPU parallelizes over threads and reduces.
//
// This is the scalar reference path (one interface dispatch per pairwise
// interaction). The drivers run EvalDirectTargetBlock, which is bit-identical
// by the BlockKernel contract; this form remains the executable definition of
// that contract and the fallback for ad-hoc evaluation.
//
//hot:path
func EvalDirectTarget(k kernel.Kernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	var phi float64
	for j := cLo; j < cHi; j++ {
		phi += k.Eval(tx, ty, tz, src.X[j], src.Y[j], src.Z[j]) * src.Q[j]
	}
	return phi
}

// EvalApproxTarget computes the potential at one target due to the
// barycentric particle-cluster approximation (equation (11)): a direct sum
// over the cluster's Chebyshev points with modified charges. This identical
// direct-sum structure is what makes the BLTC map efficiently onto GPUs.
// Scalar reference path; the drivers run EvalApproxTargetBlock.
//
//hot:path
func EvalApproxTarget(k kernel.Kernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	var phi float64
	for j := range qhat {
		phi += k.Eval(tx, ty, tz, px[j], py[j], pz[j]) * qhat[j]
	}
	return phi
}

// EvalDirectTargetBlock is the block fast path of EvalDirectTarget: one
// dynamic dispatch for the whole source block instead of one per source.
// Resolve bk once per run with kernel.AsBlock.
//
//hot:path
func EvalDirectTargetBlock(bk kernel.BlockKernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	return bk.EvalBlockAccum(tg.X[ti], tg.Y[ti], tg.Z[ti],
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], src.Q[cLo:cHi])
}

// EvalApproxTargetBlock is the block fast path of EvalApproxTarget.
//
//hot:path
func EvalApproxTargetBlock(bk kernel.BlockKernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	return bk.EvalBlockAccum(tg.X[ti], tg.Y[ti], tg.Z[ti], px, py, pz, qhat)
}

// EvalDirectTargetBlockQ is EvalDirectTargetBlock with the charges supplied
// separately from the particle set (q in tree order, indexed like src):
// the per-request-state form. With q = src.Q it performs the identical
// call, so the two are bit-identical by construction.
//
//hot:path
func EvalDirectTargetBlockQ(bk kernel.BlockKernel, tg *particle.Set, ti int, src *particle.Set, q []float64, cLo, cHi int) float64 {
	return bk.EvalBlockAccum(tg.X[ti], tg.Y[ti], tg.Z[ti],
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], q[cLo:cHi])
}

// TargetTile is the working state of the target-tiled evaluation drivers: a
// tile of kernel.TileWidth targets evaluated together against every source
// block on an interaction list, so the source arrays stream once per tile
// instead of once per target (the paper's thread-block-of-targets layout on
// the host). Acc carries the running potentials; each Eval*TileBlock call
// adds one block total per target, so loading Acc from phi, running the
// list, and storing back reproduces the per-target "phi[ti] += block" add
// chain of the single-target drivers bit-for-bit.
type TargetTile struct {
	TX, TY, TZ [kernel.TileWidth]float64
	Acc        [kernel.TileWidth]float64
}

// LoadParticles gathers the coordinates of targets [ti, ti+TileWidth) and
// zeroes the accumulators.
//
//hot:path
func (t *TargetTile) LoadParticles(tg *particle.Set, ti int) {
	for l := 0; l < kernel.TileWidth; l++ {
		t.TX[l] = tg.X[ti+l]
		t.TY[l] = tg.Y[ti+l]
		t.TZ[l] = tg.Z[ti+l]
		t.Acc[l] = 0
	}
}

// LoadParticlesAt gathers four arbitrary target indices (sampled-target
// evaluation) and zeroes the accumulators.
//
//hot:path
func (t *TargetTile) LoadParticlesAt(tg *particle.Set, i0, i1, i2, i3 int) {
	t.TX = [kernel.TileWidth]float64{tg.X[i0], tg.X[i1], tg.X[i2], tg.X[i3]}
	t.TY = [kernel.TileWidth]float64{tg.Y[i0], tg.Y[i1], tg.Y[i2], tg.Y[i3]}
	t.TZ = [kernel.TileWidth]float64{tg.Z[i0], tg.Z[i1], tg.Z[i2], tg.Z[i3]}
	t.Acc = [kernel.TileWidth]float64{}
}

// LoadProxies gathers proxy points [m, m+TileWidth) of a Chebyshev grid as
// the tile's targets (the cluster-particle variants accumulate potentials
// at proxy points) and zeroes the accumulators.
//
//hot:path
func (t *TargetTile) LoadProxies(px, py, pz []float64, m int) {
	for l := 0; l < kernel.TileWidth; l++ {
		t.TX[l] = px[m+l]
		t.TY[l] = py[m+l]
		t.TZ[l] = pz[m+l]
		t.Acc[l] = 0
	}
}

// LoadPotentials seeds the accumulators from phi[ti:], so the tile's adds
// continue phi's existing rounding chain exactly.
//
//hot:path
func (t *TargetTile) LoadPotentials(phi []float64, ti int) {
	for l := 0; l < kernel.TileWidth; l++ {
		t.Acc[l] = phi[ti+l]
	}
}

// Store writes the accumulators back to phi[ti:].
//
//hot:path
func (t *TargetTile) Store(phi []float64, ti int) {
	for l := 0; l < kernel.TileWidth; l++ {
		phi[ti+l] = t.Acc[l]
	}
}

// EvalDirectTileBlock accumulates one direct-sum source block into the
// tile: Acc[l] += sum over sources [cLo, cHi), per target, in source order
// — the tiled form of EvalDirectTargetBlock. Resolve tk once per run with
// kernel.AsTile.
//
//hot:path
func EvalDirectTileBlock(tk kernel.TileKernel, t *TargetTile, src *particle.Set, cLo, cHi int) {
	tk.EvalTileAccum(&t.TX, &t.TY, &t.TZ,
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], src.Q[cLo:cHi], &t.Acc)
}

// EvalApproxTileBlock accumulates one source block given as flat arrays —
// a cluster's Chebyshev points with modified charges, or any ad-hoc
// source slices — into the tile; the tiled form of EvalApproxTargetBlock.
//
//hot:path
func EvalApproxTileBlock(tk kernel.TileKernel, t *TargetTile, px, py, pz, qhat []float64) {
	tk.EvalTileAccum(&t.TX, &t.TY, &t.TZ, px, py, pz, qhat, &t.Acc)
}

// EvalDirectTileBlockQ is EvalDirectTileBlock with the charges supplied
// separately from the particle set (q in tree order, indexed like src):
// the per-request-state form, bit-identical to EvalDirectTileBlock when
// q = src.Q.
//
//hot:path
func EvalDirectTileBlockQ(tk kernel.TileKernel, t *TargetTile, src *particle.Set, q []float64, cLo, cHi int) {
	tk.EvalTileAccum(&t.TX, &t.TY, &t.TZ,
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], q[cLo:cHi], &t.Acc)
}

// TargetTile8 is the working state of the width-8 register-blocked fp64
// main loop: same contract as TargetTile at kernel.Tile8Width. The
// drivers use it only for kernels whose kernel.Tile8 resolves non-nil;
// because an 8-wide tile of an exact kernel is bit-identical to two
// 4-wide tiles of the same targets, running the width-8 loop first and
// falling back to width-4 and single-target epilogues changes no bits.
type TargetTile8 struct {
	TX, TY, TZ [kernel.Tile8Width]float64
	Acc        [kernel.Tile8Width]float64
}

// LoadParticles gathers the coordinates of targets [ti, ti+Tile8Width)
// and zeroes the accumulators.
//
//hot:path
func (t *TargetTile8) LoadParticles(tg *particle.Set, ti int) {
	for l := 0; l < kernel.Tile8Width; l++ {
		t.TX[l] = tg.X[ti+l]
		t.TY[l] = tg.Y[ti+l]
		t.TZ[l] = tg.Z[ti+l]
		t.Acc[l] = 0
	}
}

// LoadPotentials seeds the accumulators from phi[ti:].
//
//hot:path
func (t *TargetTile8) LoadPotentials(phi []float64, ti int) {
	for l := 0; l < kernel.Tile8Width; l++ {
		t.Acc[l] = phi[ti+l]
	}
}

// Store writes the accumulators back to phi[ti:].
//
//hot:path
func (t *TargetTile8) Store(phi []float64, ti int) {
	for l := 0; l < kernel.Tile8Width; l++ {
		phi[ti+l] = t.Acc[l]
	}
}

// EvalDirectTile8BlockQ is EvalDirectTileBlockQ at Tile8Width, through a
// resolved kernel.Tile8 loop.
//
//hot:path
func EvalDirectTile8BlockQ(t8 kernel.Tile8Func, t *TargetTile8, src *particle.Set, q []float64, cLo, cHi int) {
	t8(&t.TX, &t.TY, &t.TZ,
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], q[cLo:cHi], &t.Acc)
}

// EvalApproxTile8Block is EvalApproxTileBlock at Tile8Width.
//
//hot:path
func EvalApproxTile8Block(t8 kernel.Tile8Func, t *TargetTile8, px, py, pz, qhat []float64) {
	t8(&t.TX, &t.TY, &t.TZ, px, py, pz, qhat, &t.Acc)
}

// TargetTileF32 is the single-precision tile state: float32 coordinates
// (rounded once at load, exactly as the single-target F32 drivers round
// the target) and float32 accumulators, at the eight-lane
// kernel.F32TileWidth.
type TargetTileF32 struct {
	TX, TY, TZ [kernel.F32TileWidth]float32
	Acc        [kernel.F32TileWidth]float32
}

// LoadParticles gathers targets [ti, ti+F32TileWidth), rounding
// coordinates to float32, and zeroes the accumulators.
//
//hot:path
func (t *TargetTileF32) LoadParticles(tg *particle.Set, ti int) {
	for l := 0; l < kernel.F32TileWidth; l++ {
		t.TX[l] = float32(tg.X[ti+l])
		t.TY[l] = float32(tg.Y[ti+l])
		t.TZ[l] = float32(tg.Z[ti+l])
		t.Acc[l] = 0
	}
}

// EvalDirectTileBlockF32 is the fp32 form of EvalDirectTileBlock.
//
//hot:path
func EvalDirectTileBlockF32(tk kernel.F32TileKernel, t *TargetTileF32, src *particle.Set, cLo, cHi int) {
	tk.EvalTileAccumF32(&t.TX, &t.TY, &t.TZ,
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], src.Q[cLo:cHi], &t.Acc)
}

// EvalApproxTileBlockF32 is the fp32 form of EvalApproxTileBlock.
//
//hot:path
func EvalApproxTileBlockF32(tk kernel.F32TileKernel, t *TargetTileF32, px, py, pz, qhat []float64) {
	tk.EvalTileAccumF32(&t.TX, &t.TY, &t.TZ, px, py, pz, qhat, &t.Acc)
}

// EvalDirectTargetF32 is the single-precision variant of EvalDirectTarget,
// used by the mixed-precision extension. Accumulation is float32 as well,
// mirroring an fp32 GPU kernel. Scalar reference path.
//
//hot:path
func EvalDirectTargetF32(k kernel.F32Kernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	tx, ty, tz := float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti])
	var phi float32
	for j := cLo; j < cHi; j++ {
		phi += k.EvalF32(tx, ty, tz, float32(src.X[j]), float32(src.Y[j]), float32(src.Z[j])) * float32(src.Q[j])
	}
	return float64(phi)
}

// EvalApproxTargetF32 is the single-precision variant of EvalApproxTarget.
// Scalar reference path.
//
//hot:path
func EvalApproxTargetF32(k kernel.F32Kernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	tx, ty, tz := float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti])
	var phi float32
	for j := range qhat {
		phi += k.EvalF32(tx, ty, tz, float32(px[j]), float32(py[j]), float32(pz[j])) * float32(qhat[j])
	}
	return float64(phi)
}

// EvalDirectTargetBlockF32 is the block fast path of EvalDirectTargetF32.
//
//hot:path
func EvalDirectTargetBlockF32(bk kernel.F32BlockKernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	return float64(bk.EvalBlockAccumF32(float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti]),
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], src.Q[cLo:cHi]))
}

// EvalApproxTargetBlockF32 is the block fast path of EvalApproxTargetF32.
//
//hot:path
func EvalApproxTargetBlockF32(bk kernel.F32BlockKernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	return float64(bk.EvalBlockAccumF32(float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti]), px, py, pz, qhat))
}
