package core

import (
	"runtime"
	"sync"

	"barytree/internal/kernel"
	"barytree/internal/particle"
)

// EvalDirectTarget computes the potential at one target due to direct
// summation over source particles [cLo, cHi) — the body of one thread block
// of the batch-cluster direct sum kernel (Figure 3b): the loop over sources
// is what the GPU parallelizes over threads and reduces.
func EvalDirectTarget(k kernel.Kernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	var phi float64
	for j := cLo; j < cHi; j++ {
		phi += k.Eval(tx, ty, tz, src.X[j], src.Y[j], src.Z[j]) * src.Q[j]
	}
	return phi
}

// EvalApproxTarget computes the potential at one target due to the
// barycentric particle-cluster approximation (equation (11)): a direct sum
// over the cluster's Chebyshev points with modified charges. This identical
// direct-sum structure is what makes the BLTC map efficiently onto GPUs.
func EvalApproxTarget(k kernel.Kernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	var phi float64
	for j := range qhat {
		phi += k.Eval(tx, ty, tz, px[j], py[j], pz[j]) * qhat[j]
	}
	return phi
}

// EvalDirectTargetF32 is the single-precision variant of EvalDirectTarget,
// used by the mixed-precision extension. Accumulation is float32 as well,
// mirroring an fp32 GPU kernel.
func EvalDirectTargetF32(k kernel.F32Kernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	tx, ty, tz := float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti])
	var phi float32
	for j := cLo; j < cHi; j++ {
		phi += k.EvalF32(tx, ty, tz, float32(src.X[j]), float32(src.Y[j]), float32(src.Z[j])) * float32(src.Q[j])
	}
	return float64(phi)
}

// EvalApproxTargetF32 is the single-precision variant of EvalApproxTarget.
func EvalApproxTargetF32(k kernel.F32Kernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	tx, ty, tz := float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti])
	var phi float32
	for j := range qhat {
		phi += k.EvalF32(tx, ty, tz, float32(px[j]), float32(py[j]), float32(pz[j])) * float32(qhat[j])
	}
	return float64(phi)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// parallelForNodes runs fn(i) for i in [0, n) over up to `workers`
// goroutines (workers <= 0 selects GOMAXPROCS). Work is distributed in
// contiguous ranges.
func parallelForNodes(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
