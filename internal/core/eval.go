package core

import (
	"barytree/internal/kernel"
	"barytree/internal/particle"
)

// EvalDirectTarget computes the potential at one target due to direct
// summation over source particles [cLo, cHi) — the body of one thread block
// of the batch-cluster direct sum kernel (Figure 3b): the loop over sources
// is what the GPU parallelizes over threads and reduces.
//
// This is the scalar reference path (one interface dispatch per pairwise
// interaction). The drivers run EvalDirectTargetBlock, which is bit-identical
// by the BlockKernel contract; this form remains the executable definition of
// that contract and the fallback for ad-hoc evaluation.
//
//hot:path
func EvalDirectTarget(k kernel.Kernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	var phi float64
	for j := cLo; j < cHi; j++ {
		phi += k.Eval(tx, ty, tz, src.X[j], src.Y[j], src.Z[j]) * src.Q[j]
	}
	return phi
}

// EvalApproxTarget computes the potential at one target due to the
// barycentric particle-cluster approximation (equation (11)): a direct sum
// over the cluster's Chebyshev points with modified charges. This identical
// direct-sum structure is what makes the BLTC map efficiently onto GPUs.
// Scalar reference path; the drivers run EvalApproxTargetBlock.
//
//hot:path
func EvalApproxTarget(k kernel.Kernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	tx, ty, tz := tg.X[ti], tg.Y[ti], tg.Z[ti]
	var phi float64
	for j := range qhat {
		phi += k.Eval(tx, ty, tz, px[j], py[j], pz[j]) * qhat[j]
	}
	return phi
}

// EvalDirectTargetBlock is the block fast path of EvalDirectTarget: one
// dynamic dispatch for the whole source block instead of one per source.
// Resolve bk once per run with kernel.AsBlock.
//
//hot:path
func EvalDirectTargetBlock(bk kernel.BlockKernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	return bk.EvalBlockAccum(tg.X[ti], tg.Y[ti], tg.Z[ti],
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], src.Q[cLo:cHi])
}

// EvalApproxTargetBlock is the block fast path of EvalApproxTarget.
//
//hot:path
func EvalApproxTargetBlock(bk kernel.BlockKernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	return bk.EvalBlockAccum(tg.X[ti], tg.Y[ti], tg.Z[ti], px, py, pz, qhat)
}

// EvalDirectTargetF32 is the single-precision variant of EvalDirectTarget,
// used by the mixed-precision extension. Accumulation is float32 as well,
// mirroring an fp32 GPU kernel. Scalar reference path.
//
//hot:path
func EvalDirectTargetF32(k kernel.F32Kernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	tx, ty, tz := float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti])
	var phi float32
	for j := cLo; j < cHi; j++ {
		phi += k.EvalF32(tx, ty, tz, float32(src.X[j]), float32(src.Y[j]), float32(src.Z[j])) * float32(src.Q[j])
	}
	return float64(phi)
}

// EvalApproxTargetF32 is the single-precision variant of EvalApproxTarget.
// Scalar reference path.
//
//hot:path
func EvalApproxTargetF32(k kernel.F32Kernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	tx, ty, tz := float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti])
	var phi float32
	for j := range qhat {
		phi += k.EvalF32(tx, ty, tz, float32(px[j]), float32(py[j]), float32(pz[j])) * float32(qhat[j])
	}
	return float64(phi)
}

// EvalDirectTargetBlockF32 is the block fast path of EvalDirectTargetF32.
//
//hot:path
func EvalDirectTargetBlockF32(bk kernel.F32BlockKernel, tg *particle.Set, ti int, src *particle.Set, cLo, cHi int) float64 {
	return float64(bk.EvalBlockAccumF32(float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti]),
		src.X[cLo:cHi], src.Y[cLo:cHi], src.Z[cLo:cHi], src.Q[cLo:cHi]))
}

// EvalApproxTargetBlockF32 is the block fast path of EvalApproxTargetF32.
//
//hot:path
func EvalApproxTargetBlockF32(bk kernel.F32BlockKernel, tg *particle.Set, ti int, px, py, pz, qhat []float64) float64 {
	return float64(bk.EvalBlockAccumF32(float32(tg.X[ti]), float32(tg.Y[ti]), float32(tg.Z[ti]), px, py, pz, qhat))
}
