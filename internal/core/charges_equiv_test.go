package core

import (
	"math"
	"testing"

	"barytree/internal/chebyshev"
	"barytree/internal/kernel"
	"barytree/internal/tree"
)

// referenceCharges is the textbook implementation of the two charge passes
// (equations (14) and (15)) with per-particle allocations, kept in the test
// as the semantic reference for the allocation-free production pass.
func referenceCharges(cd *ClusterData, t *tree.Tree) [][]float64 {
	m := cd.Degree + 1
	factors1D := func(g chebyshev.Grid1D, x float64) ([]float64, float64) {
		tv := make([]float64, m)
		var d float64
		for k := range tv {
			diff := x - g.Points[k]
			if math.Abs(diff) <= chebyshev.SingularityTol {
				for i := range tv {
					tv[i] = 0
				}
				tv[k] = 1
				return tv, 1
			}
			tv[k] = g.Weights[k] / diff
			d += tv[k]
		}
		return tv, d
	}
	out := make([][]float64, len(t.Nodes))
	src := t.Particles
	for ni := range t.Nodes {
		nd := &t.Nodes[ni]
		g := cd.Grids[ni]
		nc := nd.Count()
		tx := make([][]float64, nc)
		ty := make([][]float64, nc)
		tz := make([][]float64, nc)
		qt := make([]float64, nc)
		for j := 0; j < nc; j++ {
			p := nd.Lo + j
			var dx, dy, dz float64
			tx[j], dx = factors1D(g.Dims[0], src.X[p])
			ty[j], dy = factors1D(g.Dims[1], src.Y[p])
			tz[j], dz = factors1D(g.Dims[2], src.Z[p])
			qt[j] = src.Q[p] / (dx * dy * dz)
		}
		np := g.NumPoints()
		qhat := make([]float64, np)
		for b := 0; b < np; b++ {
			k3 := b % m
			k2 := (b / m) % m
			k1 := b / (m * m)
			var sum float64
			for j := 0; j < nc; j++ {
				sum += tx[j][k1] * ty[j][k2] * tz[j][k3] * qt[j]
			}
			qhat[b] = sum
		}
		out[ni] = qhat
	}
	return out
}

// TestComputeChargesMatchesReference verifies the flat-scratch charge pass
// is bit-identical to the allocating reference, for serial and parallel
// worker counts (scratch reuse across clusters must not leak state between
// them).
func TestComputeChargesMatchesReference(t *testing.T) {
	src := testParticles(t, 4000, 17)
	tr := tree.Build(src, 60)
	for _, workers := range []int{1, 3, 0} {
		cd := NewClusterData(tr, 4)
		cd.ComputeCharges(tr, workers)
		want := referenceCharges(cd, tr)
		for ni := range tr.Nodes {
			if len(cd.Qhat[ni]) != len(want[ni]) {
				t.Fatalf("workers=%d node %d: qhat length %d, want %d",
					workers, ni, len(cd.Qhat[ni]), len(want[ni]))
			}
			for b, v := range cd.Qhat[ni] {
				if v != want[ni][b] {
					t.Fatalf("workers=%d node %d point %d: qhat = %v, want %v (diff %g)",
						workers, ni, b, v, want[ni][b], v-want[ni][b])
				}
			}
		}
	}
}

// TestBlockPathBitIdenticalToScalar is the end-to-end devirtualization
// guarantee: running the full treecode through a built-in kernel (which
// resolves to its specialized block loops) produces bit-identical
// potentials to the same kernel hidden behind kernel.Func (which resolves
// to the generic adapter, the per-source scalar loop). The one exception
// is a kernel whose installed assembly tile carries a measured-ULP
// contract instead of bit-identity (Yukawa's vectorized exp): there the
// installed run is checked against the contract's tolerance, and an extra
// pass with the assembly kernels switched off pins that the pure-Go
// specialization is still exactly bit-identical.
func TestBlockPathBitIdenticalToScalar(t *testing.T) {
	targets := testParticles(t, 3000, 5)
	sources := testParticles(t, 3000, 6)
	p := Params{Theta: 0.7, Degree: 4, LeafSize: 100, BatchSize: 64}
	for _, k := range []kernel.Kernel{
		kernel.Coulomb{},
		kernel.Yukawa{Kappa: 0.5},
		kernel.Gaussian{Sigma: 1.1},
		kernel.Multiquadric{C: 0.3},
		kernel.RegularizedCoulomb{Eps: 0.02},
		kernel.InversePower{P: 3},
	} {
		t.Run(k.Name(), func(t *testing.T) {
			run := func() (*Plan, *Result, *Result) {
				pl, err := NewPlan(targets, sources, p)
				if err != nil {
					t.Fatal(err)
				}
				fast := RunCPU(pl, k, CPUOptions{})

				pl2, err := NewPlan(targets, sources, p)
				if err != nil {
					t.Fatal(err)
				}
				wrapped := kernel.Func{KernelName: k.Name() + "-scalar", F: k.Eval}
				slow := RunCPU(pl2, wrapped, CPUOptions{})
				return pl, fast, slow
			}

			pl, fast, slow := run()
			checkSolvePhi(t, "installed", pl, k, fast.Phi, slow.Phi)

			if kernel.TileMaxULP(k) != 0 {
				// The installed tile is only ULP-close; re-pin exactness
				// on the pure-Go specialization.
				prev := kernel.SetAsmKernels(false)
				defer kernel.SetAsmKernels(prev)
				_, fast, slow = run()
				checkSolvePhi(t, "pure-go", pl, k, fast.Phi, slow.Phi)
			}
		})
	}
}
