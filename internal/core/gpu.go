package core

import (
	"time"

	"barytree/internal/device"
	"barytree/internal/kernel"
	"barytree/internal/perfmodel"
	"barytree/internal/trace"
)

// DeviceOptions configure the simulated-GPU driver.
type DeviceOptions struct {
	// Streams overrides the number of asynchronous streams (0 keeps the
	// device default of 4). Used by the async-streams ablation.
	Streams int
	// Sync forces synchronous kernel launches: the host waits for each
	// kernel before queueing the next, so launch overheads are exposed and
	// kernels never overlap. This is the counterfactual for the paper's
	// asynchronous-streams design (Section 3.2).
	Sync bool
	// Precision selects fp64 (paper) or fp32 (mixed-precision extension)
	// for the potential-evaluation kernels.
	Precision device.Precision
	// HostSpec is the CPU driving the device (setup phase + kernel launch
	// loop). Zero value selects the Xeon X5650.
	HostSpec perfmodel.CPUSpec
	// ModelOnly skips all functional kernel execution while still
	// replaying the exact launch/transfer sequence through the timing
	// model. Result.Phi is nil. This lets the figure harnesses model runs
	// at the paper's full problem sizes; errors are then measured
	// separately with EvaluateSampled.
	ModelOnly bool
	// Tracer, when non-nil, records phase/build spans, one span per kernel
	// launch and per transfer, and activity counters. Tracing never
	// changes modeled times.
	Tracer *trace.Tracer
}

func (o *DeviceOptions) defaults() {
	if o.HostSpec.Cores == 0 {
		o.HostSpec = perfmodel.XeonX5650()
	}
}

// RunDevice evaluates the treecode plan on one simulated GPU, following the
// host/device flow of the paper's Section 3.2 for a single rank:
//
//	HtD copy of source data; modified-charge kernels per cluster; DtH copy
//	of modified charges; HtD copy of targets (and, in the distributed code,
//	the LET); batch/cluster kernels cycling over asynchronous streams with
//	atomic accumulation; DtH copy of the potentials.
func RunDevice(pl *Plan, k kernel.Kernel, dev *device.Device, opt DeviceOptions) *Result {
	opt.defaults()
	res := &Result{Interactions: pl.Lists.Stats}
	streams := dev.Spec.Streams
	if opt.Streams > 0 {
		streams = opt.Streams
	}
	dev.Precision = opt.Precision
	tr := opt.Tracer
	dev.Tracer = tr

	var hc perfmodel.Clock

	// --- Setup phase (tree, batches, interaction lists: host work). ---
	hc.Advance(pl.SetupWork(opt.HostSpec))
	res.Times[perfmodel.PhaseSetup] = hc.Now()
	if tr.Enabled() {
		// Reconstruct the setup sub-intervals from the same counters
		// SetupWork charges: source tree, target batches, then lists.
		srcT := float64(pl.Sources.Stats.ParticleScans+pl.Sources.Stats.ParticleMoves) / opt.HostSpec.TreeOpRate
		batchT := float64(pl.Batches.Stats.ParticleScans+pl.Batches.Stats.ParticleMoves) / opt.HostSpec.TreeOpRate
		pl.Sources.Stats.TraceSpan(tr, "tree.build", dev.Rank, 0, srcT)
		pl.Batches.Stats.TraceSpan(tr, "batches.build", dev.Rank, srcT, srcT+batchT)
		tr.Span("lists.build", trace.CatBuild, dev.Rank, trace.TrackHost, srcT+batchT, hc.Now(),
			trace.A("mac_tests", pl.Lists.Stats.MACTests),
			trace.A("direct_pairs", pl.Lists.Stats.DirectPairs),
			trace.A("approx_pairs", pl.Lists.Stats.ApproxPairs))
		tr.Span("setup", trace.CatPhase, dev.Rank, trace.TrackHost, 0, hc.Now())
	}

	// --- Precompute phase: modified charges on the device. ---
	start := time.Now()
	dev.BeginPhase(hc.Now())
	nSrc := int64(pl.Sources.Particles.Len())
	copyDone := dev.CopyIn(hc.Now(), 4*8*nSrc) // x, y, z, q
	LaunchChargeKernels(pl.Clusters, pl.Sources, dev, &hc, copyDone, streams, opt.ModelOnly)
	hc.AdvanceTo(dev.Drain())
	hc.AdvanceTo(dev.CopyOut(hc.Now(), pl.Clusters.ChargesBytes()))
	res.Times[perfmodel.PhasePrecompute] = hc.Now() - res.Times[perfmodel.PhaseSetup]
	res.Wall[perfmodel.PhasePrecompute] = time.Since(start).Seconds()
	tr.Span("precompute", trace.CatPhase, dev.Rank, trace.TrackHost,
		res.Times[perfmodel.PhaseSetup], hc.Now())

	// --- Compute phase: potential evaluation on the device. ---
	start = time.Now()
	preEnd := hc.Now()
	dev.BeginPhase(hc.Now())
	nTg := int64(pl.Batches.Targets.Len())
	// Targets are copied in; the source/cluster data is already resident
	// for a single-rank run (the distributed driver copies the LET here
	// instead).
	copyDone = dev.CopyIn(hc.Now(), 3*8*nTg)
	var phi *device.AccumBuffer
	if !opt.ModelOnly {
		phi = device.NewAccumBuffer(int(nTg))
	}
	l := NewLauncher(dev, &hc, k, streams, opt.Sync, opt.Precision, opt.ModelOnly, copyDone)
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	for bi := range pl.Batches.Batches {
		b := &pl.Batches.Batches[bi]
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			l.LaunchDirect(tg, b.Lo, b.Count(), src, nd.Lo, nd.Hi, phi)
		}
		for _, ci := range pl.Lists.Approx[bi] {
			l.LaunchApprox(tg, b.Lo, b.Count(), cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci], phi)
		}
	}
	hc.AdvanceTo(dev.Drain())
	hc.AdvanceTo(dev.CopyOut(hc.Now(), 8*nTg))
	res.Times[perfmodel.PhaseCompute] = hc.Now() - preEnd
	res.Wall[perfmodel.PhaseCompute] = time.Since(start).Seconds()
	tr.Span("compute", trace.CatPhase, dev.Rank, trace.TrackHost, preEnd, hc.Now())

	if !opt.ModelOnly {
		res.Phi = make([]float64, nTg)
		pl.Batches.Perm.ScatterInto(res.Phi, phi.Values())
	}
	return res
}

// ModelDirectSumDevice returns the modeled seconds for direct summation of
// nt targets against ns sources computed by a single launch of the
// batch-cluster direct sum kernel with a batch of all targets and a cluster
// of all sources, exactly as the paper computes its GPU direct-sum
// reference (Section 4). Transfers of the particle data and potentials are
// included.
func ModelDirectSumDevice(spec perfmodel.GPUSpec, k kernel.Kernel, nt, ns int) float64 {
	work := float64(nt) * float64(ns) * (k.Cost(kernel.ArchGPU) + 2)
	t := spec.TransferLatency + float64(4*8*ns)/spec.HtoDBandwidth
	t += spec.TransferLatency + float64(3*8*nt)/spec.HtoDBandwidth
	t += spec.LaunchOverheadHost + spec.LaunchLatencyDevice
	u := float64(nt) / float64(spec.ThreadCapacity())
	if u > 1 {
		u = 1
	}
	t += work / (spec.EffectiveFlopRate() * u)
	t += spec.TransferLatency + float64(8*nt)/spec.DtoHBandwidth
	return t
}
