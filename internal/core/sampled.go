package core

import (
	"fmt"
	"sort"

	"barytree/internal/kernel"
	"barytree/internal/pool"
)

// EvaluateSampled functionally evaluates the treecode potential only at the
// given target indices (in the caller's original target ordering) and
// returns the potentials in sample order.
//
// This is the mechanism that lets the benchmark harness reproduce the
// paper's experiments at full problem size on a laptop: the tree, batches
// and interaction lists are built for the complete system (so every work
// counter feeding the performance model is exact), while kernel evaluations
// — the O(N log N) bulk — run only for a sampled subset of targets, exactly
// mirroring how the paper samples its error measurement for systems of 8M
// particles and more. Modified charges are computed lazily, only for
// clusters that appear on a sampled batch's interaction list.
func EvaluateSampled(pl *Plan, k kernel.Kernel, sample []int) ([]float64, error) {
	nTargets := pl.Batches.Targets.Len()
	inv := pl.Batches.Perm.Inverse() // original index -> batch order index
	// Locate the batch of every sampled target.
	batchOf := make([]int, len(sample))
	needBatch := map[int]struct{}{}
	for i, orig := range sample {
		if orig < 0 || orig >= nTargets {
			return nil, fmt.Errorf("core: sample index %d out of range [0,%d)", orig, nTargets)
		}
		bi := findBatch(pl, inv[orig])
		if bi < 0 {
			return nil, fmt.Errorf("core: no batch contains target %d", orig)
		}
		batchOf[i] = bi
		needBatch[bi] = struct{}{}
	}
	// Compute charges for clusters on the needed batches' approx lists.
	needCluster := map[int32]struct{}{}
	for bi := range needBatch {
		for _, ci := range pl.Lists.Approx[bi] {
			needCluster[ci] = struct{}{}
		}
	}
	clusters := make([]int32, 0, len(needCluster))
	for ci := range needCluster {
		if pl.Clusters.Qhat[ci] == nil {
			clusters = append(clusters, ci)
		}
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	pool.Blocks(len(clusters), 0, func(_, lo, hi int) {
		s := scratchPool.Get().(*chargeScratch)
		for i := lo; i < hi; i++ {
			ci := clusters[i]
			pl.Clusters.computeChargesNode(pl.Sources.Particles, &pl.Sources.Nodes[ci], int(ci), s)
		}
		scratchPool.Put(s)
	})

	// Evaluate the sampled targets through the tiled fast path (resolved
	// once). Samples are grouped by batch so that up to TileWidth targets
	// sharing an interaction list walk it together, streaming each source
	// block once per group; leftovers take the single-target path. Every
	// sample's potential is accumulated from zero in list order in either
	// form, so the grouping — and where the worker split cuts a group —
	// cannot change bits.
	tk := kernel.AsTile(k)
	phi := make([]float64, len(sample))
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	cd := pl.Clusters
	order := make([]int, len(sample))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return batchOf[order[a]] < batchOf[order[b]] })
	pool.Blocks(len(order), 0, func(_, lo, hi int) {
		var t TargetTile
		for i := lo; i < hi; {
			bi := batchOf[order[i]]
			g := i + 1
			for g < hi && g-i < kernel.TileWidth && batchOf[order[g]] == bi {
				g++
			}
			direct, approx := pl.Lists.Direct[bi], pl.Lists.Approx[bi]
			if g-i == kernel.TileWidth {
				i0, i1, i2, i3 := order[i], order[i+1], order[i+2], order[i+3]
				t.LoadParticlesAt(tg, inv[sample[i0]], inv[sample[i1]], inv[sample[i2]], inv[sample[i3]])
				for _, ci := range direct {
					nd := &pl.Sources.Nodes[ci]
					EvalDirectTileBlock(tk, &t, src, nd.Lo, nd.Hi)
				}
				for _, ci := range approx {
					EvalApproxTileBlock(tk, &t, cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci])
				}
				phi[i0], phi[i1], phi[i2], phi[i3] = t.Acc[0], t.Acc[1], t.Acc[2], t.Acc[3]
			} else {
				for s := i; s < g; s++ {
					ti := inv[sample[order[s]]]
					var v float64
					for _, ci := range direct {
						nd := &pl.Sources.Nodes[ci]
						v += EvalDirectTargetBlock(tk, tg, ti, src, nd.Lo, nd.Hi)
					}
					for _, ci := range approx {
						v += EvalApproxTargetBlock(tk, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci])
					}
					phi[order[s]] = v
				}
			}
			i = g
		}
	})
	return phi, nil
}

// findBatch returns the index of the batch whose [Lo, Hi) range contains
// batch-order target index ti, using binary search over the (sorted,
// contiguous) batch ranges.
func findBatch(pl *Plan, ti int) int {
	bs := pl.Batches.Batches
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ti < bs[mid].Lo:
			hi = mid
		case ti >= bs[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}
