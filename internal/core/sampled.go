package core

import (
	"fmt"
	"sort"

	"barytree/internal/kernel"
	"barytree/internal/pool"
)

// EvaluateSampled functionally evaluates the treecode potential only at the
// given target indices (in the caller's original target ordering) and
// returns the potentials in sample order.
//
// This is the mechanism that lets the benchmark harness reproduce the
// paper's experiments at full problem size on a laptop: the tree, batches
// and interaction lists are built for the complete system (so every work
// counter feeding the performance model is exact), while kernel evaluations
// — the O(N log N) bulk — run only for a sampled subset of targets, exactly
// mirroring how the paper samples its error measurement for systems of 8M
// particles and more. Modified charges are computed lazily, only for
// clusters that appear on a sampled batch's interaction list.
func EvaluateSampled(pl *Plan, k kernel.Kernel, sample []int) ([]float64, error) {
	nTargets := pl.Batches.Targets.Len()
	inv := pl.Batches.Perm.Inverse() // original index -> batch order index
	// Locate the batch of every sampled target.
	batchOf := make([]int, len(sample))
	needBatch := map[int]struct{}{}
	for i, orig := range sample {
		if orig < 0 || orig >= nTargets {
			return nil, fmt.Errorf("core: sample index %d out of range [0,%d)", orig, nTargets)
		}
		bi := findBatch(pl, inv[orig])
		if bi < 0 {
			return nil, fmt.Errorf("core: no batch contains target %d", orig)
		}
		batchOf[i] = bi
		needBatch[bi] = struct{}{}
	}
	// Compute charges for clusters on the needed batches' approx lists.
	needCluster := map[int32]struct{}{}
	for bi := range needBatch {
		for _, ci := range pl.Lists.Approx[bi] {
			needCluster[ci] = struct{}{}
		}
	}
	clusters := make([]int32, 0, len(needCluster))
	for ci := range needCluster {
		if pl.Clusters.Qhat[ci] == nil {
			clusters = append(clusters, ci)
		}
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i] < clusters[j] })
	pool.Blocks(len(clusters), 0, func(_, lo, hi int) {
		s := scratchPool.Get().(*chargeScratch)
		for i := lo; i < hi; i++ {
			ci := clusters[i]
			pl.Clusters.computeChargesNode(pl.Sources.Particles, &pl.Sources.Nodes[ci], int(ci), s)
		}
		scratchPool.Put(s)
	})

	// Evaluate each sampled target against its batch's lists through the
	// block fast path (resolved once).
	bk := kernel.AsBlock(k)
	phi := make([]float64, len(sample))
	tg := pl.Batches.Targets
	src := pl.Sources.Particles
	pool.For(len(sample), 0, func(i int) {
		bi := batchOf[i]
		ti := inv[sample[i]]
		var v float64
		for _, ci := range pl.Lists.Direct[bi] {
			nd := &pl.Sources.Nodes[ci]
			v += EvalDirectTargetBlock(bk, tg, ti, src, nd.Lo, nd.Hi)
		}
		cd := pl.Clusters
		for _, ci := range pl.Lists.Approx[bi] {
			v += EvalApproxTargetBlock(bk, tg, ti, cd.PX[ci], cd.PY[ci], cd.PZ[ci], cd.Qhat[ci])
		}
		phi[i] = v
	})
	return phi, nil
}

// findBatch returns the index of the batch whose [Lo, Hi) range contains
// batch-order target index ti, using binary search over the (sorted,
// contiguous) batch ranges.
func findBatch(pl *Plan, ti int) int {
	bs := pl.Batches.Batches
	lo, hi := 0, len(bs)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case ti < bs[mid].Lo:
			hi = mid
		case ti >= bs[mid].Hi:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}
