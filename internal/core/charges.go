package core

import (
	"math"

	"barytree/internal/chebyshev"
	"barytree/internal/particle"
	"barytree/internal/tree"
)

// ClusterData holds, for every node of a source tree, the tensor-product
// Chebyshev grid over the node's (minimal) bounding box, the flattened
// interpolation-point coordinates, and — once a charge pass has run — the
// modified charges q-hat of equation (12).
type ClusterData struct {
	Degree int
	Grids  []chebyshev.Grid3D
	// PX/PY/PZ[i] are the flattened coordinates of node i's (n+1)^3
	// interpolation points in chebyshev.Grid3D flat-index order.
	PX, PY, PZ [][]float64
	// Qhat[i] are node i's modified charges, nil before a charge pass.
	Qhat [][]float64
}

// NewClusterData lays out degree-n interpolation grids for every node of t.
// Modified charges are left nil; call ComputeCharges (or run a driver) to
// fill them.
func NewClusterData(t *tree.Tree, degree int) *ClusterData {
	n := len(t.Nodes)
	cd := &ClusterData{
		Degree: degree,
		Grids:  make([]chebyshev.Grid3D, n),
		PX:     make([][]float64, n),
		PY:     make([][]float64, n),
		PZ:     make([][]float64, n),
		Qhat:   make([][]float64, n),
	}
	for i := range t.Nodes {
		g := chebyshev.NewGrid3D(degree, t.Nodes[i].Box)
		cd.Grids[i] = g
		cd.PX[i], cd.PY[i], cd.PZ[i] = g.FlattenedPoints()
	}
	return cd
}

// chargeWork returns the modeled flop-equivalents of the two preprocessing
// kernels for a cluster of nc particles at degree n: the first kernel is
// O((n+1)*nc) (three denominator sums per particle), the second is
// O((n+1)^3*nc) (one product term per particle per interpolation point).
func chargeWork(n, nc int) (pass1, pass2 float64) {
	m := float64(n + 1)
	pass1 = float64(nc) * (6*m + 12)
	pass2 = float64(nc) * 4 * m * m * m
	return pass1, pass2
}

// clusterScratch holds the per-particle barycentric factors of the first
// preprocessing kernel: t*[j][k] = w_k/(y_j - s_k) per dimension (with
// removable singularities resolved to Kronecker deltas), and the
// intermediate charges q-tilde of equation (14).
type clusterScratch struct {
	tx, ty, tz [][]float64
	qt         []float64
}

func newClusterScratch(nc int) *clusterScratch {
	return &clusterScratch{
		tx: make([][]float64, nc),
		ty: make([][]float64, nc),
		tz: make([][]float64, nc),
		qt: make([]float64, nc),
	}
}

// pass1Particle computes the intermediate quantity q-tilde (equation (14))
// and the barycentric factors for the j-th particle of node nd, mirroring
// one thread block of the first preprocessing kernel.
func (cd *ClusterData) pass1Particle(src *particle.Set, nd *tree.Node, ni, j int, s *clusterScratch) {
	g := cd.Grids[ni]
	m := cd.Degree + 1
	p := nd.Lo + j
	tx, dx := barycentricFactors(g.Dims[0], src.X[p], m)
	ty, dy := barycentricFactors(g.Dims[1], src.Y[p], m)
	tz, dz := barycentricFactors(g.Dims[2], src.Z[p], m)
	s.tx[j], s.ty[j], s.tz[j] = tx, ty, tz
	s.qt[j] = src.Q[p] / (dx * dy * dz)
}

// barycentricFactors returns the vector t_k = w_k/(x - s_k) and its sum d
// for a 1D grid. If x coincides with a node within the singularity
// tolerance, t becomes the Kronecker delta at that node and d = 1, which
// enforces L_k(x) = delta exactly (Section 2.3 of the paper).
func barycentricFactors(g chebyshev.Grid1D, x float64, m int) (t []float64, d float64) {
	t = make([]float64, m)
	for k := 0; k < m; k++ {
		diff := x - g.Points[k]
		if math.Abs(diff) <= chebyshev.SingularityTol {
			for i := range t {
				t[i] = 0
			}
			t[k] = 1
			return t, 1
		}
		t[k] = g.Weights[k] / diff
		d += t[k]
	}
	return t, d
}

// pass2Point computes the modified charge q-hat at the flat-index-`block`
// Chebyshev point of node ni from the intermediate quantities
// (equation (15)), mirroring one thread block of the second preprocessing
// kernel (threads over particles, reduction at the end).
func (cd *ClusterData) pass2Point(ni int, s *clusterScratch, block int, qhat []float64) {
	m := cd.Degree + 1
	k3 := block % m
	k2 := (block / m) % m
	k1 := block / (m * m)
	var sum float64
	for j := range s.qt {
		sum += s.tx[j][k1] * s.ty[j][k2] * s.tz[j][k3] * s.qt[j]
	}
	qhat[block] = sum
}

// computeChargesNode fills Qhat[ni] on the host (both passes, serial).
func (cd *ClusterData) computeChargesNode(src *particle.Set, nd *tree.Node, ni int) {
	nc := nd.Count()
	s := newClusterScratch(nc)
	for j := 0; j < nc; j++ {
		cd.pass1Particle(src, nd, ni, j, s)
	}
	np := cd.Grids[ni].NumPoints()
	qhat := make([]float64, np)
	for b := 0; b < np; b++ {
		cd.pass2Point(ni, s, b, qhat)
	}
	cd.Qhat[ni] = qhat
}

// ComputeCharges fills the modified charges of every cluster on the host
// using up to `workers` goroutines (workers <= 0 selects a sensible
// default). It returns the total modeled flop-equivalents of the work.
func (cd *ClusterData) ComputeCharges(t *tree.Tree, workers int) float64 {
	flops := cd.TotalChargeWork(t)
	parallelForNodes(len(t.Nodes), workers, func(i int) {
		cd.computeChargesNode(t.Particles, &t.Nodes[i], i)
	})
	return flops
}

// TotalChargeWork returns the modeled flop-equivalents of a full charge
// pass over tree t without executing it.
func (cd *ClusterData) TotalChargeWork(t *tree.Tree) float64 {
	var flops float64
	for i := range t.Nodes {
		p1, p2 := chargeWork(cd.Degree, t.Nodes[i].Count())
		flops += p1 + p2
	}
	return flops
}

// ChargesBytes returns the total size in bytes of all modified-charge
// arrays (the DtH traffic after the precompute phase).
func (cd *ClusterData) ChargesBytes() int64 {
	var n int64
	for _, g := range cd.Grids {
		n += int64(g.NumPoints()) * 8
	}
	return n
}
