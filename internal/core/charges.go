package core

import (
	"math"
	"sync"

	"barytree/internal/chebyshev"
	"barytree/internal/particle"
	"barytree/internal/pool"
	"barytree/internal/tree"
)

// ClusterData holds, for every node of a source tree, the tensor-product
// Chebyshev grid over the node's (minimal) bounding box, the flattened
// interpolation-point coordinates, and — once a charge pass has run — the
// modified charges q-hat of equation (12).
type ClusterData struct {
	Degree int
	Grids  []chebyshev.Grid3D
	// PX/PY/PZ[i] are the flattened coordinates of node i's (n+1)^3
	// interpolation points in chebyshev.Grid3D flat-index order. Every
	// per-node slice is a view into one flat arena (ptArena), so the whole
	// layout costs a handful of allocations rather than ~4 per node.
	PX, PY, PZ [][]float64
	// Qhat[i] are node i's modified charges, nil before a charge pass.
	// When filled by the host or device charge pass, Qhat[i] aliases node
	// i's slot of a flat arena (qhatArena), so repeated passes after
	// Solver.UpdateCharges-style invalidation allocate nothing.
	Qhat [][]float64

	cache     *chebyshev.DegreeCache // degree-dependent cos/weights tables
	gridArena []float64              // 1D grid points, 3*(degree+1) per node
	ptArena   []float64              // flattened coords, 3*(n+1)^3 per node
	qhatArena []float64              // modified-charge slots, (n+1)^3 per node
}

// NewClusterData lays out degree-n interpolation grids for every node of t
// using all available cores; it is NewClusterDataWorkers with the default
// worker count. Modified charges are left nil; call ComputeCharges (or run
// a driver) to fill them.
func NewClusterData(t *tree.Tree, degree int) *ClusterData {
	return NewClusterDataWorkers(t, degree, 0)
}

// NewClusterDataWorkers is NewClusterData with an explicit worker bound
// (workers <= 0 selects GOMAXPROCS). Grids for independent nodes are filled
// in parallel; the coordinate values are bit-identical to the serial
// chebyshev.NewGrid3D + FlattenedPoints layout for every worker count —
// each grid is an affine map of one cached cos(pi*k/n) table, the same
// expression NewGrid1D evaluates per node.
func NewClusterDataWorkers(t *tree.Tree, degree, workers int) *ClusterData {
	n := len(t.Nodes)
	cd := &ClusterData{
		Degree: degree,
		Grids:  make([]chebyshev.Grid3D, n),
		PX:     make([][]float64, n),
		PY:     make([][]float64, n),
		PZ:     make([][]float64, n),
		Qhat:   make([][]float64, n),
	}
	if n == 0 {
		return cd
	}
	// Degree validity is checked by NewDegreeCache exactly as the per-node
	// NewGrid1D used to (only reachable with nodes present, as before).
	cd.cache = chebyshev.NewDegreeCache(degree)
	m := degree + 1
	np := m * m * m
	cd.gridArena = make([]float64, n*3*m)
	cd.ptArena = make([]float64, n*3*np)
	cd.qhatArena = make([]float64, n*np)
	pool.For(n, workers, func(i int) {
		g := cd.cache.Grid3DInto(t.Nodes[i].Box, cd.gridArena[i*3*m:(i+1)*3*m])
		cd.Grids[i] = g
		base := i * 3 * np
		px := cd.ptArena[base : base+np : base+np]
		py := cd.ptArena[base+np : base+2*np : base+2*np]
		pz := cd.ptArena[base+2*np : base+3*np : base+3*np]
		g.FlattenedPointsInto(px, py, pz)
		cd.PX[i], cd.PY[i], cd.PZ[i] = px, py, pz
	})
	return cd
}

// RefitGridsWorkers re-lays the interpolation grid of every node over the
// tree's current (refit) boxes, reusing the grid and point arenas, and
// unpublishes the modified charges (Qhat[i] = nil) so the next charge pass
// recomputes them against the new grids. This is Plan.Update's refit fast
// path for the cluster data: the node count is unchanged by construction,
// so no allocation or re-slicing is needed, and after the next charge pass
// the cluster data is indistinguishable from a fresh NewClusterDataWorkers
// over the refit tree — same arena layout, same bits.
func (cd *ClusterData) RefitGridsWorkers(t *tree.Tree, workers int) {
	n := len(t.Nodes)
	if n != len(cd.Grids) {
		panic("core: RefitGridsWorkers on a tree with a different node count")
	}
	if n == 0 {
		return
	}
	m := cd.Degree + 1
	np := m * m * m
	pool.For(n, workers, func(i int) {
		g := cd.cache.Grid3DInto(t.Nodes[i].Box, cd.gridArena[i*3*m:(i+1)*3*m])
		cd.Grids[i] = g
		base := i * 3 * np
		px := cd.ptArena[base : base+np : base+np]
		py := cd.ptArena[base+np : base+2*np : base+2*np]
		pz := cd.ptArena[base+2*np : base+3*np : base+3*np]
		g.FlattenedPointsInto(px, py, pz)
		cd.PX[i], cd.PY[i], cd.PZ[i] = px, py, pz
		cd.Qhat[i] = nil
	})
}

// qhatSlot returns node ni's slot of the modified-charge arena, the buffer
// a charge pass fills and publishes as Qhat[ni].
func (cd *ClusterData) qhatSlot(ni int) []float64 {
	m := cd.Degree + 1
	np := m * m * m
	return cd.qhatArena[ni*np : (ni+1)*np : (ni+1)*np]
}

// chargeWork returns the modeled flop-equivalents of the two preprocessing
// kernels for a cluster of nc particles at degree n: the first kernel is
// O((n+1)*nc) (three denominator sums per particle), the second is
// O((n+1)^3*nc) (one product term per particle per interpolation point).
func chargeWork(n, nc int) (pass1, pass2 float64) {
	m := float64(n + 1)
	pass1 = float64(nc) * (6*m + 12)
	pass2 = float64(nc) * 4 * m * m * m
	return pass1, pass2
}

// chargeScratch holds the per-particle intermediates of the first
// preprocessing kernel for one cluster: the barycentric factors
// t*[j*m+k] = w_k/(y_j - s_k) per dimension (with removable singularities
// resolved to Kronecker deltas) and the intermediate charges q-tilde of
// equation (14).
//
// The buffers are flat (row j of tx is tx[j*m:(j+1)*m]) and grown
// monotonically by Reserve, so one scratch value per worker serves every
// cluster that worker processes without allocating in the hot loop. Rows
// are fully overwritten by pass 1 before pass 2 reads them, so no clearing
// between clusters is needed. Distinct particles touch disjoint rows, which
// keeps concurrent pass-1 block functions of one device launch race-free.
type chargeScratch struct {
	tx, ty, tz []float64
	qt         []float64
}

// scratchPool recycles charge scratch across charge passes. The root
// cluster's scratch alone is nc*m floats per dimension — ~11 MB for 50k
// particles at degree 8 — so letting each pass allocate fresh buffers
// dominates the pass's B/op; pooling amortizes it to zero in steady state.
// Safe for determinism: Reserve sizes every row and pass 1 fully
// overwrites it before pass 2 reads, so results never depend on what a
// recycled buffer held.
var scratchPool = sync.Pool{New: func() any { return new(chargeScratch) }}

// Reserve sizes the scratch for a cluster of nc particles at m = degree+1
// points per dimension, reusing prior capacity.
func (s *chargeScratch) Reserve(nc, m int) {
	if n := nc * m; cap(s.tx) < n {
		s.tx = make([]float64, n)
		s.ty = make([]float64, n)
		s.tz = make([]float64, n)
	} else {
		s.tx = s.tx[:n]
		s.ty = s.ty[:n]
		s.tz = s.tz[:n]
	}
	if cap(s.qt) < nc {
		s.qt = make([]float64, nc)
	} else {
		s.qt = s.qt[:nc]
	}
}

// pass1Particle computes the intermediate quantity q-tilde (equation (14))
// and the barycentric factors for the j-th particle of node nd, mirroring
// one thread block of the first preprocessing kernel. q supplies the source
// charges in tree order — the plan's own Q for a plan-owned pass, or a
// ChargeState's Q for a per-request pass; the arithmetic is identical.
//
//hot:path
func (cd *ClusterData) pass1Particle(src *particle.Set, q []float64, nd *tree.Node, ni, j int, s *chargeScratch) {
	g := cd.Grids[ni]
	m := cd.Degree + 1
	p := nd.Lo + j
	row := j * m
	dx := barycentricFactorsInto(g.Dims[0], src.X[p], s.tx[row:row+m])
	dy := barycentricFactorsInto(g.Dims[1], src.Y[p], s.ty[row:row+m])
	dz := barycentricFactorsInto(g.Dims[2], src.Z[p], s.tz[row:row+m])
	s.qt[j] = q[p] / (dx * dy * dz)
}

// barycentricFactorsInto fills t[k] = w_k/(x - s_k) for a 1D grid and
// returns the sum d. If x coincides with a node within the singularity
// tolerance, t becomes the Kronecker delta at that node and d = 1, which
// enforces L_k(x) = delta exactly (Section 2.3 of the paper). len(t) is the
// number of grid points m.
//
//hot:path
func barycentricFactorsInto(g chebyshev.Grid1D, x float64, t []float64) (d float64) {
	for k := range t {
		diff := x - g.Points[k]
		if math.Abs(diff) <= chebyshev.SingularityTol {
			for i := range t {
				t[i] = 0
			}
			t[k] = 1
			return 1
		}
		t[k] = g.Weights[k] / diff
		d += t[k]
	}
	return d
}

// pass2Point computes the modified charge q-hat at the flat-index-`block`
// Chebyshev point of node ni from the intermediate quantities
// (equation (15)), mirroring one thread block of the second preprocessing
// kernel (threads over particles, reduction at the end).
//
//hot:path
func (cd *ClusterData) pass2Point(s *chargeScratch, block int, qhat []float64) {
	m := cd.Degree + 1
	k3 := block % m
	k2 := (block / m) % m
	k1 := block / (m * m)
	var sum float64
	for j := range s.qt {
		row := j * m
		sum += s.tx[row+k1] * s.ty[row+k2] * s.tz[row+k3] * s.qt[j]
	}
	qhat[block] = sum
}

// computeChargesNodeInto runs both host passes for node ni with charges q
// (tree order) into the caller-provided qhat buffer, using the caller's
// scratch — the pass itself allocates nothing. This is the shared body of
// the plan-owned pass (qhat = the plan's arena slot) and the per-request
// pass (qhat = a ChargeState's arena slot); for equal q the filled values
// are bit-identical because the operation sequence does not depend on
// which buffer receives them.
func (cd *ClusterData) computeChargesNodeInto(src *particle.Set, q []float64, nd *tree.Node, ni int, s *chargeScratch, qhat []float64) {
	nc := nd.Count()
	s.Reserve(nc, cd.Degree+1)
	for j := 0; j < nc; j++ {
		cd.pass1Particle(src, q, nd, ni, j, s)
	}
	np := cd.Grids[ni].NumPoints()
	for b := 0; b < np; b++ {
		cd.pass2Point(s, b, qhat)
	}
}

// computeChargesNode fills Qhat[ni] on the host (both passes, serial),
// using the caller's scratch buffers and the node's arena slot — the pass
// itself allocates nothing.
func (cd *ClusterData) computeChargesNode(src *particle.Set, nd *tree.Node, ni int, s *chargeScratch) {
	qhat := cd.qhatSlot(ni)
	cd.computeChargesNodeInto(src, src.Q, nd, ni, s, qhat)
	cd.Qhat[ni] = qhat
}

// ComputeCharges fills the modified charges of every cluster on the host
// using up to `workers` goroutines (workers <= 0 selects a sensible
// default). Each worker reuses one flat scratch buffer across its clusters
// and writes into the modified-charge arena, so a steady-state pass
// allocates nothing. It returns the total modeled flop-equivalents of the
// work.
func (cd *ClusterData) ComputeCharges(t *tree.Tree, workers int) float64 {
	flops := cd.TotalChargeWork(t)
	pool.Blocks(len(t.Nodes), workers, func(_, lo, hi int) {
		s := scratchPool.Get().(*chargeScratch)
		for i := lo; i < hi; i++ {
			cd.computeChargesNode(t.Particles, &t.Nodes[i], i, s)
		}
		scratchPool.Put(s)
	})
	return flops
}

// TotalChargeWork returns the modeled flop-equivalents of a full charge
// pass over tree t without executing it.
func (cd *ClusterData) TotalChargeWork(t *tree.Tree) float64 {
	var flops float64
	for i := range t.Nodes {
		p1, p2 := chargeWork(cd.Degree, t.Nodes[i].Count())
		flops += p1 + p2
	}
	return flops
}

// ChargesBytes returns the total size in bytes of all modified-charge
// arrays (the DtH traffic after the precompute phase).
func (cd *ClusterData) ChargesBytes() int64 {
	var n int64
	for _, g := range cd.Grids {
		n += int64(g.NumPoints()) * 8
	}
	return n
}
