package core

import (
	"math"
	"math/rand"
	"testing"

	"barytree/internal/device"
	"barytree/internal/direct"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
)

func testParticles(t *testing.T, n int, seed int64) *particle.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return particle.UniformCube(n, rng)
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"default", DefaultParams(), true},
		{"theta zero", Params{Theta: 0, Degree: 4, LeafSize: 10, BatchSize: 10}, false},
		{"theta one", Params{Theta: 1, Degree: 4, LeafSize: 10, BatchSize: 10}, false},
		{"degree zero", Params{Theta: 0.5, Degree: 0, LeafSize: 10, BatchSize: 10}, false},
		{"leaf zero", Params{Theta: 0.5, Degree: 4, LeafSize: 0, BatchSize: 10}, false},
		{"batch zero", Params{Theta: 0.5, Degree: 4, LeafSize: 10, BatchSize: 0}, false},
		{"valid small", Params{Theta: 0.9, Degree: 1, LeafSize: 1, BatchSize: 1}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatalf("expected error for %+v", c.p)
			}
		})
	}
}

func TestCPUMatchesDirectSum(t *testing.T) {
	pts := testParticles(t, 4000, 1)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)

	for _, tc := range []struct {
		theta  float64
		degree int
		maxErr float64
	}{
		{0.5, 2, 1e-2},
		{0.5, 6, 1e-5},
		{0.7, 8, 1e-5},
		{0.9, 10, 1e-4},
	} {
		pl, err := NewPlan(pts, pts, Params{Theta: tc.theta, Degree: tc.degree, LeafSize: 200, BatchSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		res := RunCPU(pl, k, CPUOptions{})
		e := metrics.RelErr2(ref, res.Phi)
		if e > tc.maxErr {
			t.Errorf("theta=%g n=%d: error %.3g exceeds %.3g", tc.theta, tc.degree, e, tc.maxErr)
		}
		if e == 0 {
			t.Errorf("theta=%g n=%d: error exactly zero, approximation never engaged", tc.theta, tc.degree)
		}
	}
}

func TestCPUYukawaMatchesDirectSum(t *testing.T) {
	pts := testParticles(t, 3000, 2)
	k := kernel.Yukawa{Kappa: 0.5}
	ref := direct.SumParallel(k, pts, pts, 0)
	pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: 7, LeafSize: 150, BatchSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	res := RunCPU(pl, k, CPUOptions{})
	e := metrics.RelErr2(ref, res.Phi)
	if e > 1e-5 {
		t.Errorf("yukawa error %.3g too large", e)
	}
}

func TestErrorDecreasesWithDegree(t *testing.T) {
	pts := testParticles(t, 3000, 3)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	var prev float64 = math.Inf(1)
	for _, n := range []int{1, 3, 5, 7, 9} {
		pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: n, LeafSize: 100, BatchSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		res := RunCPU(pl, k, CPUOptions{})
		e := metrics.RelErr2(ref, res.Phi)
		// Convergence is fast but allow small non-monotonic wiggle near
		// machine precision.
		if e > prev*1.5 && e > 1e-12 {
			t.Errorf("degree %d: error %.3g did not decrease from %.3g", n, e, prev)
		}
		prev = e
	}
	if prev > 1e-6 {
		t.Errorf("degree 9 error %.3g not small", prev)
	}
}

func TestErrorIncreasesWithTheta(t *testing.T) {
	pts := testParticles(t, 3000, 4)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, pts, pts, 0)
	var errs []float64
	for _, theta := range []float64{0.3, 0.6, 0.9} {
		pl, err := NewPlan(pts, pts, Params{Theta: theta, Degree: 4, LeafSize: 100, BatchSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		res := RunCPU(pl, k, CPUOptions{})
		errs = append(errs, metrics.RelErr2(ref, res.Phi))
	}
	if !(errs[0] < errs[2]) {
		t.Errorf("error at theta=0.3 (%.3g) should be below theta=0.9 (%.3g)", errs[0], errs[2])
	}
}

func TestDeviceMatchesCPU(t *testing.T) {
	pts := testParticles(t, 5000, 5)
	k := kernel.Yukawa{Kappa: 0.5}
	p := Params{Theta: 0.7, Degree: 5, LeafSize: 200, BatchSize: 200}

	plCPU, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := RunCPU(plCPU, k, CPUOptions{})

	plGPU, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	dev := device.New(perfmodel.TitanV(), 0)
	gpu := RunDevice(plGPU, k, dev, DeviceOptions{})

	// Same interaction lists, same arithmetic, different accumulation
	// order: results agree to tight tolerance.
	if e := metrics.RelErr2(cpu.Phi, gpu.Phi); e > 1e-13 {
		t.Errorf("device result deviates from CPU: rel err %.3g", e)
	}
}

func TestDeviceFasterThanCPUModel(t *testing.T) {
	// Leaf/batch sizes are chosen so leaves stay near the bound and GPU
	// kernels are large enough to saturate the device (the reason the
	// paper uses NB = NL ~ 2000-4000).
	pts := testParticles(t, 20000, 6)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 6, LeafSize: 2500, BatchSize: 2500}
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := RunCPU(pl, k, CPUOptions{})
	pl2, _ := NewPlan(pts, pts, p)
	gpu := RunDevice(pl2, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{})
	ratio := cpu.Times[perfmodel.PhaseCompute] / gpu.Times[perfmodel.PhaseCompute]
	if ratio < 40 {
		t.Errorf("modeled GPU compute speedup %.1fx implausibly low", ratio)
	}
	t.Logf("modeled compute speedup %.0fx (total %.0fx)", ratio, cpu.Times.Total()/gpu.Times.Total())
}

func TestAsyncStreamsReduceComputeTime(t *testing.T) {
	pts := testParticles(t, 20000, 7)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.8, Degree: 8, LeafSize: 2000, BatchSize: 2000}

	pl1, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	sync := RunDevice(pl1, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{Sync: true})

	pl2, _ := NewPlan(pts, pts, p)
	async := RunDevice(pl2, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{})

	ts, ta := sync.Times[perfmodel.PhaseCompute], async.Times[perfmodel.PhaseCompute]
	red := 1 - ta/ts
	if red < 0.05 || red > 0.75 {
		// The paper reports ~25% for the 1M-particle case; the exact
		// fraction depends on per-launch kernel size, but it must be a
		// substantial, not total, reduction.
		t.Errorf("async-stream reduction %.0f%% outside plausible band: sync=%.4g async=%.4g",
			100*red, ts, ta)
	}
	t.Logf("compute: sync=%.4gs async=%.4gs (%.0f%% reduction)", ts, ta, 100*red)

	// Results must be identical regardless of stream configuration.
	if e := metrics.RelErr2(sync.Phi, async.Phi); e != 0 {
		t.Errorf("stream configuration changed the numbers: rel err %.3g", e)
	}
}

func TestMixedPrecisionAccuracy(t *testing.T) {
	pts := testParticles(t, 5000, 8)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 8, LeafSize: 200, BatchSize: 200}
	ref := direct.SumParallel(k, pts, pts, 0)

	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	fp64 := RunDevice(pl, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{})
	pl2, _ := NewPlan(pts, pts, p)
	fp32 := RunDevice(pl2, k, device.New(perfmodel.TitanV(), 0), DeviceOptions{Precision: device.FP32})

	e64 := metrics.RelErr2(ref, fp64.Phi)
	e32 := metrics.RelErr2(ref, fp32.Phi)
	if e32 < e64 {
		t.Errorf("fp32 error %.3g unexpectedly below fp64 error %.3g", e32, e64)
	}
	if e32 > 1e-3 {
		t.Errorf("fp32 error %.3g implausibly large", e32)
	}
	// fp32 kernels run at twice the modeled rate.
	if fp32.Times[perfmodel.PhaseCompute] >= fp64.Times[perfmodel.PhaseCompute] {
		t.Errorf("fp32 compute (%.4g) not faster than fp64 (%.4g)",
			fp32.Times[perfmodel.PhaseCompute], fp64.Times[perfmodel.PhaseCompute])
	}
	t.Logf("fp64 err=%.3g fp32 err=%.3g", e64, e32)
}

func TestTargetsDifferentFromSources(t *testing.T) {
	sources := testParticles(t, 3000, 9)
	targets := testParticles(t, 1000, 10)
	k := kernel.Coulomb{}
	ref := direct.SumParallel(k, targets, sources, 0)
	pl, err := NewPlan(targets, sources, Params{Theta: 0.6, Degree: 6, LeafSize: 150, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	res := RunCPU(pl, k, CPUOptions{})
	if e := metrics.RelErr2(ref, res.Phi); e > 1e-5 {
		t.Errorf("disjoint targets/sources error %.3g too large", e)
	}
	if len(res.Phi) != targets.Len() {
		t.Errorf("got %d potentials, want %d", len(res.Phi), targets.Len())
	}
}

func TestSerialMatchesParallelCPU(t *testing.T) {
	pts := testParticles(t, 4000, 11)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 4, LeafSize: 100, BatchSize: 100}
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	serial := RunCPU(pl, k, CPUOptions{Workers: 1})
	pl2, _ := NewPlan(pts, pts, p)
	parallel := RunCPU(pl2, k, CPUOptions{Workers: 8})
	for i := range serial.Phi {
		if serial.Phi[i] != parallel.Phi[i] {
			t.Fatalf("potential %d differs: serial %g parallel %g", i, serial.Phi[i], parallel.Phi[i])
		}
	}
}

func TestChargeSumInvariant(t *testing.T) {
	// Partition of unity: for every cluster, sum_k qhat_k = sum_j q_j.
	pts := testParticles(t, 2000, 12)
	pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: 5, LeafSize: 100, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	pl.Clusters.ComputeCharges(pl.Sources, 0)
	for ni := range pl.Sources.Nodes {
		nd := &pl.Sources.Nodes[ni]
		var qsum float64
		for j := nd.Lo; j < nd.Hi; j++ {
			qsum += pl.Sources.Particles.Q[j]
		}
		var qhatSum float64
		for _, v := range pl.Clusters.Qhat[ni] {
			qhatSum += v
		}
		if math.Abs(qsum-qhatSum) > 1e-9*math.Max(1, math.Abs(qsum)) {
			t.Fatalf("node %d: sum qhat %.12g != sum q %.12g", ni, qhatSum, qsum)
		}
	}
}

func TestModelDirectSumOrdering(t *testing.T) {
	k := kernel.Coulomb{}
	cpu := perfmodel.XeonX5650()
	gpu := perfmodel.TitanV()
	n := 1_000_000
	tCPU := ModelDirectSumCPU(cpu, k, n, n)
	tGPU := ModelDirectSumDevice(gpu, k, n, n)
	if tGPU >= tCPU {
		t.Errorf("GPU direct sum (%.3g s) should beat CPU (%.3g s)", tGPU, tCPU)
	}
	ratio := tCPU / tGPU
	if ratio < 25 {
		t.Errorf("direct-sum GPU/CPU speedup %.0fx below the paper's >=25x", ratio)
	}
	t.Logf("direct sum 1M: cpu=%.1fs gpu=%.2fs (%.0fx)", tCPU, tGPU, ratio)
}
