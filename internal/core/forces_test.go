package core

import (
	"math"
	"testing"

	"barytree/internal/direct"
	"barytree/internal/kernel"
	"barytree/internal/metrics"
)

func TestFieldsMatchDirectSum(t *testing.T) {
	pts := testParticles(t, 3000, 21)
	k := kernel.Coulomb{}
	refPhi, refGX, refGY, refGZ := direct.Fields(k, pts, pts)

	pl, err := NewPlan(pts, pts, Params{Theta: 0.6, Degree: 7, LeafSize: 150, BatchSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	res := RunCPUFields(pl, k, CPUOptions{})
	if e := metrics.RelErr2(refPhi, res.Phi); e > 1e-5 {
		t.Errorf("potential error %.3g", e)
	}
	for name, pair := range map[string][2][]float64{
		"gx": {refGX, res.GX}, "gy": {refGY, res.GY}, "gz": {refGZ, res.GZ},
	} {
		if e := metrics.RelErr2(pair[0], pair[1]); e > 1e-4 {
			t.Errorf("%s error %.3g", name, e)
		}
	}
}

func TestFieldsYukawa(t *testing.T) {
	pts := testParticles(t, 2000, 22)
	k := kernel.Yukawa{Kappa: 0.5}
	_, refGX, _, _ := direct.Fields(k, pts, pts)
	pl, err := NewPlan(pts, pts, Params{Theta: 0.6, Degree: 8, LeafSize: 120, BatchSize: 120})
	if err != nil {
		t.Fatal(err)
	}
	res := RunCPUFields(pl, k, CPUOptions{})
	if e := metrics.RelErr2(refGX, res.GX); e > 1e-4 {
		t.Errorf("yukawa gx error %.3g", e)
	}
}

func TestFieldPhiMatchesPotentialOnlyPath(t *testing.T) {
	// The potential computed by the field path must agree closely with
	// the potential-only path (same lists, same charges; the only
	// difference is evaluation order within a target's accumulation).
	pts := testParticles(t, 2000, 23)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 5, LeafSize: 100, BatchSize: 100}
	pl1, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	potOnly := RunCPU(pl1, k, CPUOptions{})
	pl2, _ := NewPlan(pts, pts, p)
	fields := RunCPUFields(pl2, k, CPUOptions{})
	if e := metrics.RelErr2(potOnly.Phi, fields.Phi); e > 1e-14 {
		t.Errorf("field-path potential deviates: %.3g", e)
	}
}

func TestFieldGradientConvergesWithDegree(t *testing.T) {
	pts := testParticles(t, 2000, 24)
	k := kernel.Coulomb{}
	_, refGX, _, _ := direct.Fields(k, pts, pts)
	var prev = math.Inf(1)
	for _, n := range []int{2, 5, 8} {
		pl, err := NewPlan(pts, pts, Params{Theta: 0.6, Degree: n, LeafSize: 100, BatchSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		res := RunCPUFields(pl, k, CPUOptions{})
		e := metrics.RelErr2(refGX, res.GX)
		if e > prev*1.5 && e > 1e-12 {
			t.Errorf("degree %d: gradient error %.3g did not decrease from %.3g", n, e, prev)
		}
		prev = e
	}
	if prev > 1e-5 {
		t.Errorf("degree 8 gradient error %.3g too large", prev)
	}
}

func TestFieldTimesExceedPotentialTimes(t *testing.T) {
	// Gradients cost more per interaction; the model must reflect it.
	pts := testParticles(t, 2000, 25)
	k := kernel.Coulomb{}
	p := Params{Theta: 0.7, Degree: 5, LeafSize: 100, BatchSize: 100}
	pl1, _ := NewPlan(pts, pts, p)
	pot := RunCPU(pl1, k, CPUOptions{})
	pl2, _ := NewPlan(pts, pts, p)
	fld := RunCPUFields(pl2, k, CPUOptions{})
	if fld.Times.Total() <= pot.Times.Total() {
		t.Errorf("field time %.4g not above potential time %.4g", fld.Times.Total(), pot.Times.Total())
	}
}
