// Package core implements the barycentric Lagrange treecode (BLTC) itself:
// cluster interpolation data, modified charges, the batch/cluster potential
// evaluation kernels, and drivers for serial CPU, multicore CPU and
// simulated-GPU execution. The distributed multi-GPU driver lives in
// internal/dist on top of this package.
package core

import (
	"fmt"

	"barytree/internal/interaction"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/tree"
)

// Params are the treecode parameters of the paper: MAC parameter theta,
// interpolation degree n, source-tree leaf size NL and target batch size NB.
type Params struct {
	Theta     float64 // MAC opening parameter, 0 < Theta < 1
	Degree    int     // interpolation degree n >= 1
	LeafSize  int     // NL, maximum particles per source leaf
	BatchSize int     // NB, maximum targets per batch

	// Workers bounds the host goroutines used by the setup phase (tree and
	// batch construction, interaction lists, cluster-grid layout) and the
	// host charge pass; <= 0 selects GOMAXPROCS. It is a host execution
	// knob only: results, modeled times and trace output are bit-identical
	// for every value.
	Workers int

	// Morton selects the Morton-ordered canonical build (tree.BuildMorton)
	// instead of the midpoint-split build. A Morton plan supports
	// Plan.Update — in-place refit, incremental repair, or full rebuild
	// after its particles move — because the whole structure is a pure
	// function of the particle multiset; see internal/tree/morton.go. The
	// two builds produce different (both valid) trees, so Morton changes
	// result bits relative to the default build and participates in the
	// serving layer's geometry hash.
	Morton bool

	// DriftTol is Plan.Update's refit tolerance: a particle may stray from
	// its leaf's bounding box by at most DriftTol times the leaf radius
	// (boundary inclusive) for the update to refit boxes in place and keep
	// the cached interaction lists. 0 selects DefaultDriftTol; it does not
	// affect results (every update path is exact for its geometry), only
	// the refit/repair/rebuild policy, so it is excluded from the serving
	// layer's geometry hash.
	DriftTol float64
}

// DefaultDriftTol is the refit drift tolerance used when Params.DriftTol
// is zero: a quarter of the leaf radius per side.
const DefaultDriftTol = 0.25

// driftTol returns the effective update drift tolerance.
func (p Params) driftTol() float64 {
	if p.DriftTol > 0 {
		return p.DriftTol
	}
	return DefaultDriftTol
}

// DefaultParams returns the parameters of the paper's scaling runs:
// theta = 0.8, n = 8, NL = NB = 4000 (5-6 digit accuracy).
func DefaultParams() Params {
	return Params{Theta: 0.8, Degree: 8, LeafSize: 4000, BatchSize: 4000}
}

// Validate returns an error if the parameters are out of range.
func (p Params) Validate() error {
	if !(p.Theta > 0 && p.Theta < 1) {
		return fmt.Errorf("core: MAC parameter theta must be in (0,1), got %g", p.Theta)
	}
	if p.Degree < 1 {
		return fmt.Errorf("core: interpolation degree must be >= 1, got %d", p.Degree)
	}
	if p.LeafSize < 1 {
		return fmt.Errorf("core: leaf size must be >= 1, got %d", p.LeafSize)
	}
	if p.BatchSize < 1 {
		return fmt.Errorf("core: batch size must be >= 1, got %d", p.BatchSize)
	}
	if p.DriftTol < 0 {
		return fmt.Errorf("core: drift tolerance must be >= 0, got %g", p.DriftTol)
	}
	return nil
}

// MAC returns the multipole acceptance criterion for these parameters.
func (p Params) MAC() interaction.MAC {
	return interaction.MAC{Theta: p.Theta, Degree: p.Degree}
}

// Plan is the output of the treecode's setup phase for a shared-memory run:
// the source cluster tree, the target batches, the batch/cluster interaction
// lists, and the per-cluster interpolation grids. A Plan is independent of
// the interaction kernel, so one Plan can be evaluated under several kernels
// (as Figure 4 does for Coulomb and Yukawa).
type Plan struct {
	Params   Params
	Sources  *tree.Tree
	Batches  *tree.BatchSet
	Lists    *interaction.Lists
	Clusters *ClusterData

	// upd holds the Morton-mode update state (nil for midpoint builds);
	// gen counts Updates applied so far and invalidates ChargeStates
	// created against earlier geometry. See update.go.
	upd *updState
	gen uint64
}

// NewPlan runs the setup phase: build the source tree and target batches,
// create the interaction lists, and lay out the cluster interpolation grids.
func NewPlan(targets, sources *particle.Set, p Params) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := sources.Validate(); err != nil {
		return nil, fmt.Errorf("core: bad sources: %w", err)
	}
	if err := targets.Validate(); err != nil {
		return nil, fmt.Errorf("core: bad targets: %w", err)
	}
	if p.Morton {
		return newMortonPlan(targets, sources, p), nil
	}
	t := tree.BuildWorkers(sources, p.LeafSize, p.Workers)
	b := tree.BuildBatchesWorkers(targets, p.BatchSize, p.Workers)
	lists := interaction.BuildListsWorkers(b, t, p.MAC(), p.Workers)
	return &Plan{
		Params:   p,
		Sources:  t,
		Batches:  b,
		Lists:    lists,
		Clusters: NewClusterDataWorkers(t, p.Degree, p.Workers),
	}, nil
}

// newMortonPlan is the Morton-mode setup phase, shared by NewPlan and
// Plan.Update's rebuild path (which is what makes a rebuild trivially
// bit-identical to a fresh plan at the new positions). The target batches
// come from a Morton tree of the targets with leaf size BatchSize, kept
// alongside the plan so updates can refit and repair it too.
func newMortonPlan(targets, sources *particle.Set, p Params) *Plan {
	st, srcIdx := tree.BuildMortonWorkers(sources, p.LeafSize, p.Workers)
	tt, tgtIdx := tree.BuildMortonWorkers(targets, p.BatchSize, p.Workers)
	b := tree.BatchSetFromTree(tt)
	lists := interaction.BuildListsWorkers(b, st, p.MAC(), p.Workers)
	return &Plan{
		Params:   p,
		Sources:  st,
		Batches:  b,
		Lists:    lists,
		Clusters: NewClusterDataWorkers(st, p.Degree, p.Workers),
		upd: &updState{
			srcIdx: srcIdx,
			tgt:    tt,
			tgtIdx: tgtIdx,
			shared: samePositions(targets, sources),
		},
	}
}

// samePositions reports whether two particle sets hold bit-identical
// coordinates (charges may differ).
func samePositions(a, b *particle.Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Z[i] != b.Z[i] {
			return false
		}
	}
	return true
}

// SetupWork converts the plan's construction counters into modeled CPU
// seconds for the setup phase.
func (pl *Plan) SetupWork(cpu perfmodel.CPUSpec) float64 {
	treeOps := float64(pl.Sources.Stats.ParticleScans + pl.Sources.Stats.ParticleMoves +
		pl.Batches.Stats.ParticleScans + pl.Batches.Stats.ParticleMoves)
	return treeOps/cpu.TreeOpRate + float64(pl.Lists.Stats.MACTests)/cpu.MACTestRate
}
