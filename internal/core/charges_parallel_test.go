package core

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"barytree/internal/chebyshev"
	"barytree/internal/particle"
	"barytree/internal/tree"
)

// TestNewClusterDataWorkersDeterministic pins the arena rebuild: grids,
// flattened points and (after a charge pass) modified charges must be
// value-identical for every worker count.
func TestNewClusterDataWorkersDeterministic(t *testing.T) {
	pts := particle.UniformCube(5000, rand.New(rand.NewSource(6)))
	tr := tree.Build(pts, 200)
	want := NewClusterDataWorkers(tr, 4, 1)
	want.ComputeCharges(tr, 1)
	for _, w := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		got := NewClusterDataWorkers(tr, 4, w)
		got.ComputeCharges(tr, w)
		if !reflect.DeepEqual(want.Grids, got.Grids) {
			t.Fatalf("workers=%d: grids differ", w)
		}
		if !reflect.DeepEqual(want.PX, got.PX) || !reflect.DeepEqual(want.PY, got.PY) ||
			!reflect.DeepEqual(want.PZ, got.PZ) {
			t.Fatalf("workers=%d: flattened points differ", w)
		}
		if !reflect.DeepEqual(want.Qhat, got.Qhat) {
			t.Fatalf("workers=%d: modified charges differ", w)
		}
	}
}

// TestNewClusterDataMatchesLegacyLayout pins the arena layout against the
// reference per-node construction chebyshev.NewGrid3D + FlattenedPoints.
func TestNewClusterDataMatchesLegacyLayout(t *testing.T) {
	pts := particle.GaussianBlob(3000, 0.4, rand.New(rand.NewSource(8)))
	tr := tree.Build(pts, 150)
	cd := NewClusterData(tr, 5)
	for i := range tr.Nodes {
		g := chebyshev.NewGrid3D(5, tr.Nodes[i].Box)
		px, py, pz := g.FlattenedPoints()
		if !reflect.DeepEqual(cd.PX[i], px) || !reflect.DeepEqual(cd.PY[i], py) ||
			!reflect.DeepEqual(cd.PZ[i], pz) {
			t.Fatalf("node %d: arena points differ from per-node layout", i)
		}
		for d := 0; d < 3; d++ {
			if !reflect.DeepEqual(cd.Grids[i].Dims[d].Points, g.Dims[d].Points) {
				t.Fatalf("node %d dim %d: grid points differ", i, d)
			}
		}
	}
}

// TestClusterDataQhatArenaReuse pins the steady-state allocation contract:
// invalidating Qhat (as Solver.UpdateCharges does) and recomputing must
// land every node back on its arena slot, not a fresh allocation.
func TestClusterDataQhatArenaReuse(t *testing.T) {
	pts := particle.UniformCube(2000, rand.New(rand.NewSource(12)))
	tr := tree.Build(pts, 100)
	cd := NewClusterData(tr, 3)
	cd.ComputeCharges(tr, 0)
	first := make([]*float64, len(cd.Qhat))
	for i, q := range cd.Qhat {
		first[i] = &q[0]
	}
	for i := range cd.Qhat {
		cd.Qhat[i] = nil
	}
	cd.ComputeCharges(tr, 0)
	for i, q := range cd.Qhat {
		if &q[0] != first[i] {
			t.Fatalf("node %d: recompute allocated a new qhat buffer", i)
		}
	}
}

// TestNewClusterDataEmptyTree pins the empty-input behavior: no nodes, no
// arenas, no panic regardless of degree (the old per-node path never
// validated degree on an empty tree).
func TestNewClusterDataEmptyTree(t *testing.T) {
	tr := tree.Build(particle.NewSet(0), 10)
	cd := NewClusterData(tr, 0) // degree 0 must not panic with zero nodes
	if len(cd.Grids) != 0 || len(cd.Qhat) != 0 {
		t.Fatalf("empty tree produced %d grids", len(cd.Grids))
	}
}
