package core

import (
	"fmt"

	"barytree/internal/interaction"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/trace"
	"barytree/internal/tree"
)

// UpdateAction is the structural path one Plan.Update took.
type UpdateAction int

const (
	// UpdateRefit kept the tree topology and cached interaction lists,
	// refitting node boxes bottom-up and re-laying the Chebyshev grids in
	// place: the particles stayed within the drift tolerance of their
	// leaves and the cached approximations still pass the MAC (the odd
	// marginal pair is demoted to exact direct summation, see
	// RefitMaxMACDemotions).
	UpdateRefit UpdateAction = iota
	// UpdateRepair re-established the canonical Morton order
	// incrementally — re-bucketing the particles that left their leaf's
	// cell — and rebuilt the interaction lists; bit-identical to a fresh
	// build at the new positions.
	UpdateRepair
	// UpdateRebuild ran the full Morton setup phase from scratch (domain
	// change, widespread drift, or too many MAC violations to trust
	// locality); trivially bit-identical to a fresh build.
	UpdateRebuild
)

// String returns the action's span name ("update.refit" etc.).
func (a UpdateAction) String() string {
	switch a {
	case UpdateRefit:
		return SpanUpdateRefit
	case UpdateRepair:
		return SpanUpdateRepair
	default:
		return SpanUpdateRebuild
	}
}

// Trace span and counter names emitted by Plan.Update; see
// docs/observability.md for the taxonomy.
const (
	SpanUpdateRefit   = "update.refit"
	SpanUpdateRepair  = "update.repair"
	SpanUpdateRebuild = "update.rebuild"

	CounterUpdateDrifters       = "update.drifters"
	CounterUpdateOutOfTolerance = "update.out_of_tolerance"
	CounterUpdateMACViolations  = "update.mac_violations"
)

// UpdateSpanNames returns the phase/span names Plan.Update can emit, for
// the public TracePhaseNames listing.
func UpdateSpanNames() []string {
	return []string{SpanUpdateRefit, SpanUpdateRepair, SpanUpdateRebuild}
}

// UpdateStats reports what one Plan.Update decided and why.
type UpdateStats struct {
	// Action is the structural path taken.
	Action UpdateAction
	// OutOfTolerance counts particles (sources + targets) that left their
	// leaf's drift-tolerance envelope; beyond RefitMaxOutOfTolerance of
	// the particle count it disables the refit path.
	OutOfTolerance int
	// Drifters counts particles (sources + targets) whose Morton code left
	// its leaf's cell — the particles a repair re-buckets. Beyond
	// RepairMaxFraction of the particles, Update rebuilds instead.
	Drifters int
	// MACViolations counts cached approximation pairs that failed the
	// geometric MAC recheck after a tentative box refit. Up to
	// RefitMaxMACDemotions of the approximation pairs, the violators are
	// demoted to (exact) direct summation and the refit stands; beyond
	// that the update falls through to repair or rebuild.
	MACViolations int
}

// RepairMaxFraction bounds the incremental-repair path: when more than
// this fraction of the particles left their leaf cells, a full rebuild is
// cheaper and better conditioned than re-bucketing. A variable so tests
// can force each path.
var RepairMaxFraction = 0.10

// RefitMaxMACDemotions bounds the list-repair half of the refit fast
// path: when at most this fraction of the cached approximation pairs fail
// the MAC recheck, the failing pairs are demoted to direct summation
// (exact for any geometry, see interaction.DemoteFailingApprox) and the
// refit stands; beyond it the lists have genuinely degraded and the
// update falls through to repair or rebuild. A variable so tests can pin
// each path.
var RefitMaxMACDemotions = 0.01

// RefitMaxOutOfTolerance bounds the refit fast path: the tentative refit
// (and its MAC recheck) is attempted while at most this fraction of the
// particles (targets and sources counted together) breached their leaf's
// drift envelope. The envelope is a locality heuristic, not a correctness
// bound — the MAC recheck is what keeps a refit exact — so the few
// stragglers every large dynamic system produces (tight pairs whose leaf
// envelope is tiny) must not force a repair of an otherwise-stationary
// tree. Zero admits only fully-in-tolerance refits. A variable so tests
// can pin each path.
var RefitMaxOutOfTolerance = 0.001

// updState is the per-plan state behind Plan.Update (Morton mode only):
// the source-tree Morton index, the hidden target tree whose leaves are
// the batch set, a modeled clock for trace spans, and scratch reused
// across updates.
type updState struct {
	srcIdx *tree.MortonIndex
	tgt    *tree.Tree // target tree with leaf size = BatchSize; Batches are its leaves
	tgtIdx *tree.MortonIndex
	shared bool    // targets and sources had bit-identical positions at build
	clock  float64 // modeled seconds consumed by updates so far (span placement)

	srcCodes, tgtCodes   []uint64
	srcDrifts, tgtDrifts []int32
}

// Generation returns the number of Updates applied to the plan so far.
// ChargeStates remember the generation they were created against and
// refuse to run after it moves on.
func (pl *Plan) Generation() uint64 { return pl.gen }

// Update moves the plan to new particle positions, given in the order the
// particles were originally passed to NewPlan. It requires a Morton-mode
// plan (Params.Morton) whose targets and sources coincide, and picks the
// cheapest structural path that keeps the plan exact for the new geometry:
//
//   - refit: all but a vanishing fraction of the particles (see
//     RefitMaxOutOfTolerance) are within DriftTol of their leaf and the
//     cached approximations still pass the MAC recheck — boxes are refit
//     bottom-up, the Chebyshev grids re-laid in place, and the few
//     marginal approximation pairs that flipped (at most
//     RefitMaxMACDemotions) demoted to exact direct summation; the tree
//     order and topology are untouched.
//   - repair: drift is local (at most RepairMaxFraction of particles left
//     their leaf's Morton cell) and the quantization domain is unchanged —
//     the canonical order is restored incrementally and the lists rebuilt.
//   - rebuild: the full Morton setup phase re-runs.
//
// After a repair or rebuild the plan is bit-identical to a fresh NewPlan
// at the new positions (same input order, same charges); after a refit
// with unchanged positions the plan is bit-identical to itself. The
// decision and its evidence are emitted as trace spans and counters on tr
// (nil is fine).
//
// Update mutates the plan and must have it exclusively: no concurrent
// solves, and ChargeStates created before the update panic on their next
// SetCharges/Compute rather than silently evaluating stale geometry.
// Plan-level Solve calls create a fresh state per call and are always
// safe after an Update.
func (pl *Plan) Update(x, y, z []float64, tr *trace.Tracer) (UpdateStats, error) {
	var st UpdateStats
	u := pl.upd
	if u == nil {
		return st, fmt.Errorf("core: Plan.Update requires a Morton-mode plan (set Params.Morton)")
	}
	if !u.shared {
		return st, fmt.Errorf("core: Plan.Update requires the plan's targets and sources to be the same particles")
	}
	n := pl.Sources.Particles.Len()
	if len(x) != n || len(y) != n || len(z) != n {
		return st, fmt.Errorf("core: Update got %d/%d/%d coordinates for %d particles", len(x), len(y), len(z), n)
	}
	for i := 0; i < n; i++ {
		if !isFinite(x[i]) || !isFinite(y[i]) || !isFinite(z[i]) {
			return st, fmt.Errorf("core: non-finite coordinate at index %d", i)
		}
	}
	workers := pl.Params.Workers
	if n == 0 {
		st.Action = UpdateRefit
		pl.finishUpdate(st, 0, tr)
		return st, nil
	}

	// New positions into tree order (sources) and batch order (targets).
	// pl.Batches.Targets aliases u.tgt.Particles, so one scatter covers
	// both views.
	src := pl.Sources.Particles
	for ti, oi := range pl.Sources.Perm {
		src.X[ti], src.Y[ti], src.Z[ti] = x[oi], y[oi], z[oi]
	}
	tgt := u.tgt.Particles
	for ti, oi := range u.tgt.Perm {
		tgt.X[ti], tgt.Y[ti], tgt.Z[ti] = x[oi], y[oi], z[oi]
	}

	// Evidence: tolerance breaches against the current leaf boxes, new
	// Morton codes under the current domain, cell drifters, domain drift.
	tol := pl.Params.driftTol()
	st.OutOfTolerance = u.srcIdx.OutOfTolerance(pl.Sources, tol) + u.tgtIdx.OutOfTolerance(u.tgt, tol)
	u.srcCodes = u.srcIdx.EncodeInto(u.srcCodes, src, workers)
	u.tgtCodes = u.tgtIdx.EncodeInto(u.tgtCodes, tgt, workers)
	u.srcDrifts = u.srcIdx.Drifters(pl.Sources, u.srcCodes, u.srcDrifts[:0])
	u.tgtDrifts = u.tgtIdx.Drifters(u.tgt, u.tgtCodes, u.tgtDrifts[:0])
	st.Drifters = len(u.srcDrifts) + len(u.tgtDrifts)
	domainOK := tree.SnapMortonDomain(src.Bounds()) == u.srcIdx.Domain

	if float64(st.OutOfTolerance) <= RefitMaxOutOfTolerance*float64(2*n) {
		// Tentative refit: new boxes, then recheck every cached
		// approximation. Falling through to repair/rebuild is safe — both
		// recompute boxes from scratch.
		pl.Sources.RefitBoxesWorkers(workers)
		u.tgt.RefitBoxesWorkers(workers)
		pl.Batches.RefreshFromTree(u.tgt)
		st.MACViolations = interaction.RecheckApproxWorkers(pl.Lists, pl.Batches, pl.Sources, pl.Params.MAC(), workers)
		if float64(st.MACViolations) <= RefitMaxMACDemotions*float64(pl.Lists.Stats.ApproxPairs) {
			if st.MACViolations > 0 {
				interaction.DemoteFailingApprox(pl.Lists, pl.Batches, pl.Sources, pl.Params.MAC(), workers)
			}
			pl.Clusters.RefitGridsWorkers(pl.Sources, workers)
			u.srcIdx.Codes, u.srcCodes = u.srcCodes, u.srcIdx.Codes
			u.tgtIdx.Codes, u.tgtCodes = u.tgtCodes, u.tgtIdx.Codes
			st.Action = UpdateRefit
			spec := perfmodel.XeonX5650()
			dur := 4*float64(n)/spec.TreeOpRate + float64(pl.Lists.Stats.ApproxPairs)/spec.MACTestRate
			pl.finishUpdate(st, dur, tr)
			return st, nil
		}
	}

	maxRepair := int(RepairMaxFraction * float64(n))
	if domainOK && len(u.srcDrifts) <= maxRepair && len(u.tgtDrifts) <= maxRepair {
		pl.Sources.MortonRepair(u.srcIdx, u.srcCodes, u.srcDrifts, workers)
		u.tgt.MortonRepair(u.tgtIdx, u.tgtCodes, u.tgtDrifts, workers)
		pl.Batches = tree.BatchSetFromTree(u.tgt)
		pl.Lists = interaction.BuildListsWorkers(pl.Batches, pl.Sources, pl.Params.MAC(), workers)
		pl.Clusters = NewClusterDataWorkers(pl.Sources, pl.Params.Degree, workers)
		st.Action = UpdateRepair
		pl.finishUpdate(st, pl.SetupWork(perfmodel.XeonX5650()), tr)
		return st, nil
	}

	// Full rebuild through the same code path as NewPlan, from the
	// original-order coordinates and the charges carried by the current
	// trees (scattered back to original order).
	origSrc := &particle.Set{X: cloneF(x), Y: cloneF(y), Z: cloneF(z), Q: make([]float64, n)}
	for ti, oi := range pl.Sources.Perm {
		origSrc.Q[oi] = src.Q[ti]
	}
	origTgt := &particle.Set{X: cloneF(x), Y: cloneF(y), Z: cloneF(z), Q: make([]float64, n)}
	for ti, oi := range u.tgt.Perm {
		origTgt.Q[oi] = tgt.Q[ti]
	}
	np := newMortonPlan(origTgt, origSrc, pl.Params)
	np.upd.clock = u.clock
	pl.Sources, pl.Batches, pl.Lists, pl.Clusters, pl.upd = np.Sources, np.Batches, np.Lists, np.Clusters, np.upd
	st.Action = UpdateRebuild
	pl.finishUpdate(st, pl.SetupWork(perfmodel.XeonX5650()), tr)
	return st, nil
}

// finishUpdate bumps the plan generation and emits the decision's trace
// span (on the plan's modeled update clock) and counters. Safe on a nil
// tracer.
func (pl *Plan) finishUpdate(st UpdateStats, modeled float64, tr *trace.Tracer) {
	pl.gen++
	u := pl.upd
	start := u.clock
	u.clock += modeled
	tr.Span(st.Action.String(), trace.CatPhase, 0, trace.TrackHost, start, u.clock,
		trace.A("out_of_tolerance", st.OutOfTolerance),
		trace.A("drifters", st.Drifters),
		trace.A("mac_violations", st.MACViolations))
	tr.Add(st.Action.String(), 1)
	tr.Add(CounterUpdateDrifters, float64(st.Drifters))
	tr.Add(CounterUpdateOutOfTolerance, float64(st.OutOfTolerance))
	tr.Add(CounterUpdateMACViolations, float64(st.MACViolations))
}

func isFinite(v float64) bool { return v-v == 0 }

func cloneF(s []float64) []float64 {
	c := make([]float64, len(s))
	copy(c, s)
	return c
}
