package core

import (
	"testing"

	"barytree/internal/kernel"
	"barytree/internal/particle"
)

func TestEvaluateSampledMatchesFullRun(t *testing.T) {
	pts := testParticles(t, 5000, 31)
	k := kernel.Yukawa{Kappa: 0.5}
	p := Params{Theta: 0.7, Degree: 5, LeafSize: 200, BatchSize: 200}
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	full := RunCPU(pl, k, CPUOptions{})

	pl2, _ := NewPlan(pts, pts, p)
	sample := []int{0, 1, 999, 2500, 4999, 3123}
	phi, err := EvaluateSampled(pl2, k, sample)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range sample {
		if d := phi[i] - full.Phi[idx]; d > 1e-12 || d < -1e-12 {
			t.Errorf("sample %d (target %d): %.15g vs full %.15g", i, idx, phi[i], full.Phi[idx])
		}
	}
}

func TestEvaluateSampledLazyCharges(t *testing.T) {
	// Only clusters on sampled batches' lists get charges.
	pts := testParticles(t, 8000, 32)
	p := Params{Theta: 0.5, Degree: 4, LeafSize: 100, BatchSize: 100}
	pl, err := NewPlan(pts, pts, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateSampled(pl, kernel.Coulomb{}, []int{42}); err != nil {
		t.Fatal(err)
	}
	computed := 0
	for _, q := range pl.Clusters.Qhat {
		if q != nil {
			computed++
		}
	}
	if computed == 0 {
		t.Fatal("no charges computed at all")
	}
	if computed == len(pl.Clusters.Qhat) {
		t.Error("sampled evaluation computed charges for every cluster; laziness broken")
	}
	t.Logf("charges computed for %d/%d clusters", computed, len(pl.Clusters.Qhat))
}

func TestEvaluateSampledRejectsBadIndices(t *testing.T) {
	pts := testParticles(t, 500, 33)
	pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: 3, LeafSize: 50, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateSampled(pl, kernel.Coulomb{}, []int{500}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := EvaluateSampled(pl, kernel.Coulomb{}, []int{-1}); err == nil {
		t.Error("negative index accepted")
	}
}

func TestEvaluateSampledRepeatedCallsShareCharges(t *testing.T) {
	pts := testParticles(t, 3000, 34)
	pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: 4, LeafSize: 100, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.Coulomb{}
	a, err := EvaluateSampled(pl, k, []int{7, 2999})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EvaluateSampled(pl, k, []int{7, 2999})
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("repeated sampled evaluation changed results")
	}
}

func TestTinyProblems(t *testing.T) {
	k := kernel.Coulomb{}
	for _, n := range []int{1, 2, 3, 9} {
		pts := testParticles(t, n, int64(40+n))
		pl, err := NewPlan(pts, pts, Params{Theta: 0.5, Degree: 2, LeafSize: 4, BatchSize: 4})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res := RunCPU(pl, k, CPUOptions{})
		// Tiny systems are computed entirely directly: exact.
		var want float64
		for j := 1; j < n; j++ {
			want += k.Eval(pts.X[0], pts.Y[0], pts.Z[0], pts.X[j], pts.Y[j], pts.Z[j]) * pts.Q[j]
		}
		orig0 := res.Phi[0]
		if d := orig0 - want; d > 1e-12 || d < -1e-12 {
			t.Errorf("n=%d: phi[0] = %g, want %g", n, orig0, want)
		}
	}
}

func TestSnappedVsUnsnappedAccuracyEquivalent(t *testing.T) {
	// Leaf-size snapping changes performance, never correctness.
	pts := testParticles(t, 5000, 35)
	k := kernel.Coulomb{}
	var errs []float64
	for _, leaf := range []int{150, 200, 380} {
		pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: 5, LeafSize: leaf, BatchSize: leaf})
		if err != nil {
			t.Fatal(err)
		}
		res := RunCPU(pl, k, CPUOptions{})
		errs = append(errs, res.Phi[0])
	}
	// All leaf sizes approximate the same sum: spot value within treecode
	// tolerance of each other.
	for i := 1; i < len(errs); i++ {
		if d := errs[i] - errs[0]; d > 1e-4 || d < -1e-4 {
			t.Errorf("leaf-size variants disagree: %v", errs)
		}
	}
}

func TestFindBatch(t *testing.T) {
	pts := testParticles(t, 1000, 36)
	pl, err := NewPlan(pts, pts, Params{Theta: 0.7, Degree: 3, LeafSize: 64, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for bi := range pl.Batches.Batches {
		b := &pl.Batches.Batches[bi]
		for ti := b.Lo; ti < b.Hi; ti++ {
			if got := findBatch(pl, ti); got != bi {
				t.Fatalf("findBatch(%d) = %d, want %d", ti, got, bi)
			}
		}
	}
	if findBatch(pl, -1) != -1 || findBatch(pl, pts.Len()) != -1 {
		t.Error("out-of-range target should return -1")
	}
}

func TestLatticeParticlesExerciseSingularities(t *testing.T) {
	// A regular lattice guarantees many exact coordinate coincidences
	// between particles and cluster box corners, stressing the removable
	// singularity handling of Section 2.3.
	pts := particle.Lattice(12) // 1728 points
	k := kernel.Coulomb{}
	pl, err := NewPlan(pts, pts, Params{Theta: 0.6, Degree: 4, LeafSize: 100, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	res := RunCPU(pl, k, CPUOptions{})
	for i, v := range res.Phi {
		if v != v { // NaN check
			t.Fatalf("NaN potential at lattice point %d", i)
		}
	}
	// Compare against direct at a few points.
	for _, i := range []int{0, 100, 863, 1727} {
		var want float64
		for j := 0; j < pts.Len(); j++ {
			want += k.Eval(pts.X[i], pts.Y[i], pts.Z[i], pts.X[j], pts.Y[j], pts.Z[j]) * pts.Q[j]
		}
		rel := (res.Phi[i] - want) / want
		if rel > 1e-4 || rel < -1e-4 {
			t.Errorf("lattice point %d: phi %.6g vs direct %.6g", i, res.Phi[i], want)
		}
	}
}
