package serve

import (
	"math/rand"

	"barytree/internal/core"
	"barytree/internal/particle"
)

// testSet builds a deterministic point cloud with zero charges (the
// geometry form plans are built from) plus a matching charge vector.
func testSet(n int, seed int64) (*particle.Set, []float64) {
	rng := rand.New(rand.NewSource(seed))
	s := &particle.Set{
		X: make([]float64, n),
		Y: make([]float64, n),
		Z: make([]float64, n),
		Q: make([]float64, n),
	}
	q := make([]float64, n)
	for i := 0; i < n; i++ {
		s.X[i] = rng.Float64()
		s.Y[i] = rng.Float64()
		s.Z[i] = rng.Float64()
		q[i] = 2*rng.Float64() - 1
	}
	return s, q
}

// withCharges clones set with q installed, for reference solves through
// the one-shot library path.
func withCharges(s *particle.Set, q []float64) *particle.Set {
	c := &particle.Set{X: s.X, Y: s.Y, Z: s.Z, Q: q}
	return c
}

// testParams are small-but-structured treecode parameters: deep enough
// for real interaction lists, cheap enough for -race stress loops.
func testParams() core.Params {
	return core.Params{Theta: 0.7, Degree: 3, LeafSize: 60, BatchSize: 60}
}

// pointsSpec converts a particle set to its wire form.
func pointsSpec(s *particle.Set) *PointsSpec {
	return &PointsSpec{X: s.X, Y: s.Y, Z: s.Z}
}

// paramsSpec converts params to their wire form.
func paramsSpec(p core.Params) *ParamsSpec {
	return &ParamsSpec{Theta: p.Theta, Degree: p.Degree, LeafSize: p.LeafSize, BatchSize: p.BatchSize}
}
