package serve

import (
	"fmt"

	"barytree/internal/core"
	"barytree/internal/kernel"
	"barytree/internal/particle"
)

// KernelSpec selects an interaction kernel by name over the wire. The
// parameter fields are kernel-specific; unused ones are ignored. Supported
// names: "coulomb" (default when the spec is omitted), "yukawa" (kappa),
// "gaussian" (sigma), "multiquadric" (c), "regularized-coulomb" (eps).
type KernelSpec struct {
	Name  string  `json:"name"`
	Kappa float64 `json:"kappa,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
	C     float64 `json:"c,omitempty"`
	Eps   float64 `json:"eps,omitempty"`
}

// Build resolves the spec to a kernel. A nil spec is the Coulomb kernel.
func (ks *KernelSpec) Build() (kernel.Kernel, error) {
	if ks == nil {
		return kernel.Coulomb{}, nil
	}
	switch ks.Name {
	case "", "coulomb":
		return kernel.Coulomb{}, nil
	case "yukawa":
		if ks.Kappa < 0 {
			return nil, fmt.Errorf("yukawa kappa must be >= 0, got %g", ks.Kappa)
		}
		return kernel.Yukawa{Kappa: ks.Kappa}, nil
	case "gaussian":
		if ks.Sigma <= 0 {
			return nil, fmt.Errorf("gaussian sigma must be > 0, got %g", ks.Sigma)
		}
		return kernel.Gaussian{Sigma: ks.Sigma}, nil
	case "multiquadric":
		return kernel.Multiquadric{C: ks.C}, nil
	case "regularized-coulomb":
		if ks.Eps < 0 {
			return nil, fmt.Errorf("regularized-coulomb eps must be >= 0, got %g", ks.Eps)
		}
		return kernel.RegularizedCoulomb{Eps: ks.Eps}, nil
	}
	return nil, fmt.Errorf("unknown kernel %q (want coulomb, yukawa, gaussian, multiquadric or regularized-coulomb)", ks.Name)
}

// PointsSpec carries particle positions as parallel coordinate arrays
// (the wire form of the structure-of-arrays layout).
type PointsSpec struct {
	X []float64 `json:"x"`
	Y []float64 `json:"y"`
	Z []float64 `json:"z"`
}

// set converts the spec to a particle set with zero charges (charges are
// per-request state, never part of a geometry).
func (ps *PointsSpec) set(what string) (*particle.Set, error) {
	if ps == nil {
		return nil, fmt.Errorf("%s missing", what)
	}
	n := len(ps.X)
	if n == 0 {
		return nil, fmt.Errorf("%s empty", what)
	}
	if len(ps.Y) != n || len(ps.Z) != n {
		return nil, fmt.Errorf("%s ragged coordinate arrays x=%d y=%d z=%d", what, n, len(ps.Y), len(ps.Z))
	}
	s := &particle.Set{X: ps.X, Y: ps.Y, Z: ps.Z, Q: make([]float64, n)}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", what, err)
	}
	return s, nil
}

// ParamsSpec carries treecode parameters over the wire. Omitted
// (zero-valued) specs select core.DefaultParams; individual fields cannot
// be defaulted piecewise — send the full set or none.
type ParamsSpec struct {
	Theta     float64 `json:"theta"`
	Degree    int     `json:"degree"`
	LeafSize  int     `json:"leaf_size"`
	BatchSize int     `json:"batch_size"`
}

// params resolves the spec (nil → DefaultParams) with the daemon's worker
// bound applied. Validation happens in core.NewPlan.
func (ps *ParamsSpec) params(workers int) core.Params {
	p := core.DefaultParams()
	if ps != nil && (ps.Theta != 0 || ps.Degree != 0 || ps.LeafSize != 0 || ps.BatchSize != 0) {
		p = core.Params{Theta: ps.Theta, Degree: ps.Degree, LeafSize: ps.LeafSize, BatchSize: ps.BatchSize}
	}
	p.Workers = workers
	return p
}

// GeometrySpec is the common geometry body of plan-creation and inline
// solve requests: targets (required), sources (omitted = targets) and
// treecode parameters (omitted = paper defaults).
type GeometrySpec struct {
	Targets *PointsSpec `json:"targets"`
	Sources *PointsSpec `json:"sources,omitempty"`
	Params  *ParamsSpec `json:"params,omitempty"`
}

// resolve converts the geometry to particle sets and parameters.
func (g *GeometrySpec) resolve(workers int) (targets, sources *particle.Set, p core.Params, err error) {
	targets, err = g.Targets.set("targets")
	if err != nil {
		return nil, nil, core.Params{}, err
	}
	sources = targets
	if g.Sources != nil {
		sources, err = g.Sources.set("sources")
		if err != nil {
			return nil, nil, core.Params{}, err
		}
	}
	return targets, sources, g.Params.params(workers), nil
}

// PlanRequest is the body of POST /v1/plans.
type PlanRequest struct {
	GeometrySpec
}

// PlanInfo describes one cached plan.
type PlanInfo struct {
	Plan     string `json:"plan"`
	Targets  int    `json:"targets"`
	Sources  int    `json:"sources"`
	Nodes    int    `json:"nodes"`
	Batches  int    `json:"batches"`
	Hits     uint64 `json:"hits"`
	Building bool   `json:"building,omitempty"`
}

// PlanResponse is the body returned by POST /v1/plans.
type PlanResponse struct {
	PlanInfo
	// Created reports whether this request ran the setup phase (false on
	// a cache hit).
	Created bool `json:"created"`
}

// PlanListResponse is the body of GET /v1/plans.
type PlanListResponse struct {
	Plans []PlanInfo `json:"plans"`
	Stats CacheStats `json:"stats"`
}

// SolveRequest is the body of POST /v1/solve. Exactly one of Plan (a key
// from POST /v1/plans or a previous solve) or inline geometry must be
// present. Charges are given in the order the source arrays were sent;
// potentials come back in the order the target arrays were sent.
type SolveRequest struct {
	Plan string `json:"plan,omitempty"`
	GeometrySpec
	Kernel  *KernelSpec `json:"kernel,omitempty"`
	Charges []float64   `json:"charges"`
}

// SolveResponse is the body returned by POST /v1/solve. Phi is
// byte-identical to what barytree.Solve returns for the same geometry,
// parameters, kernel and charges (Go's JSON encoding of float64 is
// shortest-round-trip, so the bits survive the wire).
type SolveResponse struct {
	Plan string `json:"plan"`
	// Cache is "hit" when the plan was reused, "miss" when this request
	// built it.
	Cache string `json:"cache"`
	// Coalesced is the number of requests served by the compute pass this
	// solve rode in (1 = it ran alone).
	Coalesced int       `json:"coalesced"`
	Phi       []float64 `json:"phi"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
