package serve

import (
	"sync"

	"barytree/internal/core"
	"barytree/internal/kernel"
)

// solveJob is one solve request in flight against a cached plan: inputs
// (kernel, charges in the caller's source order), output (potentials in
// the caller's target order) and completion signalling. A job belongs to
// exactly one group pass; done is closed when phi/err are final.
type solveJob struct {
	kernel  kernel.Kernel
	charges []float64 // original source order; nil = the plan's build charges

	phi       []float64
	err       error
	groupSize int // how many requests shared the job's compute pass

	phiBatch []float64 // batch target order, scratch until scatter
	done     chan struct{}
}

// groupReport carries one coalesced pass's accounting to the server:
// requests served and modeled flop-equivalents of the two phases (for the
// modeled-time trace spans).
type groupReport struct {
	Size         int
	ChargeFlops  float64
	ComputeFlops float64
}

// planQueue coalesces concurrent solve requests against one plan into
// shared compute passes. Arrival batching, no timers: while a group pass
// runs, newly arriving requests accumulate in pending; when the pass
// finishes, the drainer takes the whole accumulation as the next group.
// Under load this converges to group-per-pass sizes matching the arrival
// rate (the group-commit pattern); an idle queue runs a request alone
// immediately, adding no latency.
//
// Correctness: each request keeps its own ChargeState and output buffer,
// and core.RunComputeGroup evaluates each (request, batch) pair exactly as
// a solo solve would — so a request's potentials are byte-identical
// whether it ran alone or in a group of any size (pinned by
// TestGroupMatchesSolo and the handler identity tests).
type planQueue struct {
	mu      sync.Mutex
	pending []*solveJob
	running bool

	// states recycles ChargeStates across requests on this plan; every
	// recycled state is fully reset (SetCharges or ResetToPlan overwrite
	// all charges) before reuse.
	states sync.Pool
}

// submit enqueues job and blocks until its group pass completes. workers
// bounds the host goroutines of each pass; onGroup (may be nil) is called
// once per group pass with its accounting, after results are final.
func (q *planQueue) submit(pl *core.Plan, workers int, job *solveJob, onGroup func(groupReport)) {
	job.done = make(chan struct{})
	q.mu.Lock()
	q.pending = append(q.pending, job)
	start := !q.running
	if start {
		q.running = true
	}
	q.mu.Unlock()
	if start {
		go q.drain(pl, workers, onGroup)
	}
	<-job.done
}

// drain runs group passes until the queue is empty, then retires. Exactly
// one drainer runs per queue at a time (the running flag).
func (q *planQueue) drain(pl *core.Plan, workers int, onGroup func(groupReport)) {
	for {
		q.mu.Lock()
		batch := q.pending
		q.pending = nil
		if len(batch) == 0 {
			q.running = false
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		q.runGroup(pl, batch, workers, onGroup)
	}
}

// runGroup executes one coalesced pass: per-request modified charges
// (each internally parallel), then a single tiled compute pass spanning
// every (request, batch) pair, then per-request scatter back to original
// target order. Requests with invalid charges fail fast and drop out of
// the group before any compute.
func (q *planQueue) runGroup(pl *core.Plan, jobs []*solveJob, workers int, onGroup func(groupReport)) {
	var rep groupReport
	live := make([]*solveJob, 0, len(jobs))
	members := make([]core.GroupMember, 0, len(jobs))
	for _, j := range jobs {
		st, _ := q.states.Get().(*core.ChargeState)
		if st == nil {
			st = core.NewChargeState(pl)
		}
		if j.charges != nil {
			if err := st.SetCharges(pl, j.charges); err != nil {
				q.states.Put(st)
				j.err = err
				close(j.done)
				continue
			}
		} else {
			st.ResetToPlan(pl)
		}
		rep.ChargeFlops += st.Compute(pl, workers)
		rep.ComputeFlops += core.ComputeWork(pl, j.kernel)
		j.phiBatch = make([]float64, pl.Batches.Targets.Len())
		members = append(members, core.GroupMember{Kernel: j.kernel, State: st, Phi: j.phiBatch})
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	core.RunComputeGroup(pl, members, workers)
	rep.Size = len(live)
	for i, j := range live {
		j.phi = make([]float64, len(j.phiBatch))
		pl.Batches.Perm.ScatterInto(j.phi, j.phiBatch)
		j.phiBatch = nil
		j.groupSize = len(live)
		q.states.Put(members[i].State)
	}
	if onGroup != nil {
		onGroup(rep)
	}
	for _, j := range live {
		close(j.done)
	}
}
