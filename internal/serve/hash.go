package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"barytree/internal/core"
	"barytree/internal/particle"
)

// GeometryKey returns the deterministic plan-cache key of a solve
// geometry: a SHA-256 over the treecode parameters, the particle counts
// and the exact float64 bit patterns of every target and source
// coordinate, rendered as 64 hex characters.
//
// Two requests share a key exactly when a Plan built for one is valid for
// the other, so the key covers precisely the inputs NewPlan reads:
//
//   - Theta, Degree, LeafSize, BatchSize (they shape the tree, the
//     batches, the interaction lists and the cluster grids);
//   - Morton: the Z-order build produces a different (equally valid) tree
//     than the midpoint build, so results differ bitwise across the flag;
//   - target and source positions, bit-for-bit (coordinates that differ
//     in the last ulp produce different trees).
//
// Deliberately excluded:
//
//   - charges (Q): a Plan is charge-independent — charges are per-request
//     state, and hashing them would defeat the cache;
//   - Params.Workers: a host execution knob with bit-identical output for
//     every value (see core.Params), so plans built with different worker
//     counts are interchangeable;
//   - Params.DriftTol: an update-policy knob — every update path is exact
//     for its geometry, so plans differing only in tolerance are
//     interchangeable (and served plans are never updated);
//   - the kernel: plans are kernel-independent (the paper's Figure 4
//     evaluates Coulomb and Yukawa on one set of structures).
func GeometryKey(targets, sources *particle.Set, p core.Params) string {
	h := sha256.New()
	var buf [8]byte
	putU := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	putU(math.Float64bits(p.Theta))
	putU(uint64(int64(p.Degree)))
	putU(uint64(int64(p.LeafSize)))
	putU(uint64(int64(p.BatchSize)))
	if p.Morton {
		putU(1)
	} else {
		putU(0)
	}
	putU(uint64(int64(targets.Len())))
	putU(uint64(int64(sources.Len())))
	for _, s := range [][]float64{targets.X, targets.Y, targets.Z, sources.X, sources.Y, sources.Z} {
		writeFloats(h, s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeFloats streams a float64 slice into h as little-endian bits,
// buffering chunks so large geometries hash at memory speed rather than
// one 8-byte Write per value.
func writeFloats(h hash.Hash, s []float64) {
	const chunk = 512
	var buf [chunk * 8]byte
	for len(s) > 0 {
		n := len(s)
		if n > chunk {
			n = chunk
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(s[i]))
		}
		h.Write(buf[:n*8])
		s = s[n:]
	}
}
