// Package serve is the solver-as-a-service layer of the treecode: a
// stdlib-only net/http API that evaluates solve requests against a cache
// of immutable Plans keyed by geometry hash.
//
// The design rests on the Plan/request-state split (DESIGN.md §6): the
// setup phase's output — tree, batches, interaction lists, Chebyshev
// grids — depends only on particle positions and parameters, is immutable
// after construction, and is therefore shareable by any number of
// concurrent requests; everything a request mutates (charges, modified
// charges, potentials) lives in a per-request core.ChargeState. The
// daemon turns that split into three serving mechanisms:
//
//   - plan cache: requests carrying the same geometry (bit-for-bit) map
//     to one cached Plan (single-flight build, LRU-bounded); the setup
//     phase — the dominant cost of a one-shot solve — is paid once per
//     geometry instead of once per request.
//   - request coalescing: concurrent requests against one plan batch into
//     a single tiled compute pass (core.RunComputeGroup) with per-request
//     outputs bit-identical to solo execution.
//   - admission control: a bounded number of in-flight solves; excess
//     load is rejected immediately with 429 + Retry-After instead of
//     queueing without bound.
//
// Observability: /metrics exposes serving counters and latency quantiles
// plus the plan-cache and tracer counters; /trace exports the daemon's
// modeled-time span record (plan builds, coalesced precompute/compute
// passes) as Chrome trace-event JSON via internal/trace. See
// docs/serving.md for the endpoint reference and worked examples.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"barytree/internal/core"
	"barytree/internal/particle"
	"barytree/internal/perfmodel"
	"barytree/internal/trace"
)

// Config tunes the daemon. The zero value is serviceable: paper-default
// params accepted per request, DefaultMaxPlans cached plans, 64 in-flight
// solves, 256 MiB request bodies.
type Config struct {
	// MaxPlans bounds the plan cache (LRU eviction beyond it); <= 0
	// selects DefaultMaxPlans.
	MaxPlans int
	// MaxInFlight bounds concurrently admitted solve requests; further
	// requests receive 429 + Retry-After. <= 0 selects 64. Admitted
	// requests waiting in a coalescing queue count against the bound, so
	// it also bounds the daemon's transient per-request memory.
	MaxInFlight int
	// Workers bounds the host goroutines of each setup/charge/compute
	// pass (<= 0 selects all cores). Results are bit-identical for every
	// value; this only trades single-request latency against throughput
	// under concurrency.
	Workers int
	// MaxRequestBytes caps a request body; <= 0 selects 256 MiB (a 1M-
	// particle inline geometry is ~75 MB of JSON).
	MaxRequestBytes int64
	// TraceSpans caps the spans kept by the daemon's tracer (counters are
	// unaffected); <= 0 selects 4096. The cap keeps /trace memory bounded
	// on a long-lived daemon: once reached, new spans are dropped.
	TraceSpans int
}

// Server is the serving layer: plan cache, coalescing queues, admission
// control, metrics and trace. Create with New; serve via Handler.
type Server struct {
	cfg     Config
	cache   *PlanCache
	metrics *Metrics
	tracer  *trace.Tracer
	admit   chan struct{}
	cpu     perfmodel.CPUSpec

	// clockMu guards clockNow, the daemon's modeled timeline: group
	// passes and plan builds append their modeled durations here, giving
	// /trace a deterministic time axis (internal/trace records modeled
	// seconds, never wall-clock).
	clockMu  sync.Mutex
	clockNow float64
}

// advance reserves [t, t+d) on the modeled timeline and returns t.
func (s *Server) advance(d float64) float64 {
	s.clockMu.Lock()
	t := s.clockNow
	s.clockNow += d
	s.clockMu.Unlock()
	return t
}

// New returns a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = 256 << 20
	}
	if cfg.TraceSpans <= 0 {
		cfg.TraceSpans = 4096
	}
	return &Server{
		cfg:     cfg,
		cache:   NewPlanCache(cfg.MaxPlans),
		metrics: &Metrics{},
		tracer:  trace.New(),
		admit:   make(chan struct{}, cfg.MaxInFlight),
		cpu:     perfmodel.XeonX5650(),
	}
}

// Metrics returns the server's metrics aggregator (shared, live).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer returns the server's tracer (shared, live).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/plans        run (or reuse) the setup phase for a geometry
//	GET    /v1/plans        list cached plans + cache stats
//	GET    /v1/plans/{key}  inspect one cached plan
//	DELETE /v1/plans/{key}  invalidate one cached plan
//	POST   /v1/solve        solve against a cached plan or inline geometry
//	GET    /metrics         serving counters + latency quantiles (text)
//	GET    /trace           modeled-time spans (Chrome trace-event JSON)
//	GET    /healthz         liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plans", s.handlePlanCreate)
	mux.HandleFunc("GET /v1/plans", s.handlePlanList)
	mux.HandleFunc("GET /v1/plans/{key}", s.handlePlanGet)
	mux.HandleFunc("DELETE /v1/plans/{key}", s.handlePlanDelete)
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	//lint:ignore errdrop status line already committed by WriteHeader; an encode failure here has no channel back to the client
	_ = enc.Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode parses a JSON body under the configured size cap.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return fmt.Errorf("bad JSON: %v", err)
	}
	return nil
}

// buildPlan runs the setup phase for a resolved geometry and records its
// modeled build span and counters.
func (s *Server) buildPlan(key string, targets, sources *particle.Set, p core.Params) (*core.Plan, error) {
	pl, err := core.NewPlan(targets, sources, p)
	if err != nil {
		return nil, err
	}
	setup := pl.SetupWork(s.cpu)
	t0 := s.advance(setup)
	s.emitSpan(trace.Span{
		Name: "serve.plan.build", Cat: trace.CatBuild, Track: trace.TrackHost,
		Start: t0, End: t0 + setup,
		Args: []trace.Arg{trace.A("plan", shortKey(key)), trace.A("sources", sources.Len()), trace.A("targets", targets.Len())},
	})
	s.tracer.Add("serve.plan.builds", 1)
	return pl, nil
}

// emitSpan records a span unless the daemon's span cap is reached
// (counters keep accumulating past the cap).
func (s *Server) emitSpan(sp trace.Span) {
	if s.tracer.Len() >= s.cfg.TraceSpans {
		return
	}
	s.tracer.Emit(sp)
}

// onGroup accounts one coalesced compute pass: metrics, counters, and the
// pass's modeled precompute/compute spans on the daemon timeline.
func (s *Server) onGroup(key string) func(groupReport) {
	return func(rep groupReport) {
		s.metrics.ObserveGroup(rep.Size)
		rate := s.cpu.ParallelFlopRate()
		pre, comp := rep.ChargeFlops/rate, rep.ComputeFlops/rate
		t0 := s.advance(pre + comp)
		args := []trace.Arg{trace.A("plan", shortKey(key)), trace.A("requests", rep.Size)}
		s.emitSpan(trace.Span{
			Name: "serve.precompute", Cat: trace.CatPhase, Track: trace.TrackHost,
			Start: t0, End: t0 + pre, Args: args,
		})
		s.emitSpan(trace.Span{
			Name: "serve.compute", Cat: trace.CatPhase, Track: trace.TrackHost,
			Start: t0 + pre, End: t0 + pre + comp, Args: args,
		})
		s.tracer.Add("serve.groups", 1)
		s.tracer.Add("serve.group.requests", float64(rep.Size))
		s.tracer.Add("serve.flops.precompute", rep.ChargeFlops)
		s.tracer.Add("serve.flops.compute", rep.ComputeFlops)
	}
}

// shortKey abbreviates a plan key for span args.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

func (s *Server) handlePlanCreate(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := s.decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	targets, sources, p, err := req.resolve(s.cfg.Workers)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := GeometryKey(targets, sources, p)
	e, hit, err := s.cache.GetOrBuild(key, func() (*core.Plan, error) {
		return s.buildPlan(key, targets, sources, p)
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "plan build failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponse{PlanInfo: planInfo(e), Created: !hit})
}

// planInfo snapshots a ready entry for responses.
func planInfo(e *planEntry) PlanInfo {
	pl := e.Plan()
	return PlanInfo{
		Plan:    e.Key,
		Targets: pl.Batches.Targets.Len(),
		Sources: pl.Sources.Particles.Len(),
		Nodes:   len(pl.Sources.Nodes),
		Batches: len(pl.Batches.Batches),
		Hits:    e.hits.Load(),
	}
}

func (s *Server) handlePlanList(w http.ResponseWriter, r *http.Request) {
	infos := s.cache.List()
	stats, _ := s.cache.Stats()
	resp := PlanListResponse{Plans: make([]PlanInfo, 0, len(infos)), Stats: stats}
	for _, in := range infos {
		resp.Plans = append(resp.Plans, PlanInfo{
			Plan: in.Key, Targets: in.Targets, Sources: in.Sources,
			Nodes: in.Nodes, Batches: in.Batches, Hits: in.Hits, Building: in.Building,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePlanGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	e := s.cache.Get(key)
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown plan %q", key)
		return
	}
	writeJSON(w, http.StatusOK, planInfo(e))
}

func (s *Server) handlePlanDelete(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !s.cache.Invalidate(key) {
		writeError(w, http.StatusNotFound, "unknown plan %q", key)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	// Admission control: bounded in-flight solves, immediate rejection
	// beyond the bound. Retry-After tells well-behaved clients to back
	// off; the load harness measures how often this fires.
	select {
	case s.admit <- struct{}{}:
		defer func() { <-s.admit }()
	default:
		s.metrics.ObserveRejected()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "solver saturated (%d in flight); retry", cap(s.admit))
		return
	}
	start := time.Now()

	var req SolveRequest
	if err := s.decode(w, r, &req); err != nil {
		s.metrics.ObserveError(true)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	k, err := req.Kernel.Build()
	if err != nil {
		s.metrics.ObserveError(true)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Charges) == 0 {
		s.metrics.ObserveError(true)
		writeError(w, http.StatusBadRequest, "charges required")
		return
	}

	// Resolve the plan: by key, or by inline geometry (cached implicitly
	// under its hash, so repeating the same geometry hits).
	var e *planEntry
	hit := true
	switch {
	case req.Plan != "":
		e = s.cache.Get(req.Plan)
		if e == nil {
			s.metrics.ObserveError(true)
			writeError(w, http.StatusNotFound,
				"unknown plan %q (expired or never created): POST /v1/plans or send inline geometry", req.Plan)
			return
		}
	case req.Targets != nil:
		targets, sources, p, rerr := req.resolve(s.cfg.Workers)
		if rerr != nil {
			s.metrics.ObserveError(true)
			writeError(w, http.StatusBadRequest, "%v", rerr)
			return
		}
		key := GeometryKey(targets, sources, p)
		var berr error
		e, hit, berr = s.cache.GetOrBuild(key, func() (*core.Plan, error) {
			return s.buildPlan(key, targets, sources, p)
		})
		if berr != nil {
			s.metrics.ObserveError(true)
			writeError(w, http.StatusBadRequest, "plan build failed: %v", berr)
			return
		}
	default:
		s.metrics.ObserveError(true)
		writeError(w, http.StatusBadRequest, "either plan key or inline geometry (targets) required")
		return
	}

	job := &solveJob{kernel: k, charges: req.Charges}
	e.queue.submit(e.Plan(), s.cfg.Workers, job, s.onGroup(e.Key))
	if job.err != nil {
		s.metrics.ObserveError(true)
		writeError(w, http.StatusBadRequest, "%v", job.err)
		return
	}
	s.tracer.Add("serve.solves", 1)
	cacheState := "hit"
	if !hit {
		cacheState = "miss"
	}
	s.metrics.ObserveSolve(time.Since(start).Seconds(), hit)
	writeJSON(w, http.StatusOK, SolveResponse{
		Plan: e.Key, Cache: cacheState, Coalesced: job.groupSize, Phi: job.phi,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats, size := s.cache.Stats()
	extra := []string{
		fmt.Sprintf("bltcd_inflight %d", len(s.admit)),
		fmt.Sprintf("bltcd_inflight_max %d", cap(s.admit)),
		fmt.Sprintf("bltcd_plan_cache_size %d", size),
		fmt.Sprintf("bltcd_plan_cache_hits_total %d", stats.Hits),
		fmt.Sprintf("bltcd_plan_cache_misses_total %d", stats.Misses),
		fmt.Sprintf("bltcd_plan_cache_builds_total %d", stats.Builds),
		fmt.Sprintf("bltcd_plan_cache_build_errors_total %d", stats.BuildErrors),
		fmt.Sprintf("bltcd_plan_cache_evictions_total %d", stats.Evictions),
		fmt.Sprintf("bltcd_plan_cache_invalidations_total %d", stats.Invalidations),
	}
	// Tracer counters come pre-sorted by name from Counters().
	for _, c := range s.tracer.Counters() {
		extra = append(extra, fmt.Sprintf("bltcd_trace{counter=%q} %g", c.Name, c.Value))
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.metrics.WriteText(w, extra...)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop best-effort trace export to a committed response; a write failure means the client went away
	_ = s.tracer.WriteChrome(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
