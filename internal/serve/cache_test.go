package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"barytree/internal/core"
)

// buildTestPlan runs the real setup phase for a small deterministic
// geometry (cache tests need genuine immutable plans, not stubs).
func buildTestPlan(t *testing.T, seed int64) *core.Plan {
	t.Helper()
	s, _ := testSet(150, seed)
	pl, err := core.NewPlan(s, s, testParams())
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewPlanCache(4)
	pl := buildTestPlan(t, 1)

	var builds atomic.Int64
	gate := make(chan struct{})
	build := func() (*core.Plan, error) {
		builds.Add(1)
		<-gate // hold the build until every goroutine has called in
		return pl, nil
	}

	const callers = 16
	var wg sync.WaitGroup
	entries := make([]*planEntry, callers)
	started := make(chan struct{}, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			e, _, err := c.GetOrBuild("k", build)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			entries[i] = e
		}(i)
	}
	for i := 0; i < callers; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d concurrent callers ran %d builds, want 1", callers, n)
	}
	for i, e := range entries {
		if e == nil || e.Plan() != pl {
			t.Fatalf("caller %d got entry %v, want the shared plan", i, e)
		}
	}
	stats, size := c.Stats()
	if stats.Builds != 1 || stats.Misses != 1 || size != 1 {
		t.Fatalf("stats %+v size %d, want one build/miss and one resident plan", stats, size)
	}
	if stats.Hits != callers-1 {
		t.Fatalf("hits = %d, want %d (every caller after the builder)", stats.Hits, callers-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	pl := buildTestPlan(t, 2)
	add := func(key string) {
		if _, _, err := c.GetOrBuild(key, func() (*core.Plan, error) { return pl, nil }); err != nil {
			t.Fatal(err)
		}
	}

	add("a")
	add("b")
	if e := c.Get("a"); e == nil { // refresh a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	add("c") // evicts b

	if c.Get("b") != nil {
		t.Fatalf("b survived eviction; want it dropped as LRU")
	}
	for _, key := range []string{"a", "c"} {
		if c.Get(key) == nil {
			t.Fatalf("%s evicted; want it resident", key)
		}
	}
	stats, size := c.Stats()
	if stats.Evictions != 1 || size != 2 {
		t.Fatalf("evictions = %d size = %d, want 1 and 2", stats.Evictions, size)
	}
}

func TestCacheEvictionKeepsHandedOutPlans(t *testing.T) {
	c := NewPlanCache(1)
	pl1 := buildTestPlan(t, 3)
	pl2 := buildTestPlan(t, 4)

	e1, _, _ := c.GetOrBuild("one", func() (*core.Plan, error) { return pl1, nil })
	c.GetOrBuild("two", func() (*core.Plan, error) { return pl2, nil }) // evicts "one"

	if c.Get("one") != nil {
		t.Fatal("evicted key still resident")
	}
	// The handed-out entry keeps working: eviction severs the key, not the
	// plan.
	if e1.Plan() != pl1 {
		t.Fatal("eviction clobbered a handed-out plan")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewPlanCache(4)
	pl := buildTestPlan(t, 5)
	c.GetOrBuild("k", func() (*core.Plan, error) { return pl, nil })

	if !c.Invalidate("k") {
		t.Fatal("invalidate of a resident key reported absent")
	}
	if c.Invalidate("k") {
		t.Fatal("second invalidate reported resident")
	}
	if c.Get("k") != nil {
		t.Fatal("key survived invalidation")
	}

	// The geometry rebuilds on next request.
	var rebuilt bool
	c.GetOrBuild("k", func() (*core.Plan, error) { rebuilt = true; return pl, nil })
	if !rebuilt {
		t.Fatal("request after invalidation did not rebuild")
	}
}

func TestCacheFailedBuildRetries(t *testing.T) {
	c := NewPlanCache(4)
	pl := buildTestPlan(t, 6)
	boom := errors.New("boom")

	if _, _, err := c.GetOrBuild("k", func() (*core.Plan, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("build error %v, want boom", err)
	}
	if c.Get("k") != nil {
		t.Fatal("failed build left a resident entry")
	}
	e, hit, err := c.GetOrBuild("k", func() (*core.Plan, error) { return pl, nil })
	if err != nil || hit || e.Plan() != pl {
		t.Fatalf("retry after failed build: e=%v hit=%v err=%v, want fresh successful build", e, hit, err)
	}
	stats, _ := c.Stats()
	if stats.BuildErrors != 1 || stats.Builds != 2 {
		t.Fatalf("stats %+v, want 1 build error and 2 builds", stats)
	}
}

func TestCacheListDeterministic(t *testing.T) {
	c := NewPlanCache(8)
	pl := buildTestPlan(t, 7)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("key-%d", 4-i) // insert in reverse order
		c.GetOrBuild(key, func() (*core.Plan, error) { return pl, nil })
	}
	infos := c.List()
	if len(infos) != 5 {
		t.Fatalf("listed %d entries, want 5", len(infos))
	}
	for i, in := range infos {
		want := fmt.Sprintf("key-%d", i)
		if in.Key != want {
			t.Fatalf("entry %d is %s, want %s (sorted by key)", i, in.Key, want)
		}
		if in.Sources != 150 {
			t.Fatalf("entry %d reports %d sources, want 150", i, in.Sources)
		}
	}
}
