package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"barytree/internal/kernel"
)

// newTestServer starts an httptest server around a fresh daemon.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON posts body and decodes the response into out (if non-nil),
// returning the status code and raw body.
func doJSON(t *testing.T, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

func TestServerPlanLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s, _ := testSet(150, 31)
	req := PlanRequest{GeometrySpec: GeometrySpec{Targets: pointsSpec(s), Params: paramsSpec(testParams())}}

	var created PlanResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/plans", req, &created); code != http.StatusOK {
		t.Fatalf("create: %d %s", code, raw)
	}
	if !created.Created || created.Targets != 150 || created.Plan == "" {
		t.Fatalf("create response %+v, want created=true targets=150", created)
	}

	// Same geometry again: cache hit, no new build.
	var again PlanResponse
	doJSON(t, "POST", ts.URL+"/v1/plans", req, &again)
	if again.Created || again.Plan != created.Plan {
		t.Fatalf("repeat create %+v, want created=false same key %s", again, created.Plan)
	}

	var list PlanListResponse
	doJSON(t, "GET", ts.URL+"/v1/plans", nil, &list)
	if len(list.Plans) != 1 || list.Plans[0].Plan != created.Plan || list.Stats.Builds != 1 {
		t.Fatalf("list %+v, want the one plan with one build", list)
	}

	var info PlanInfo
	if code, raw := doJSON(t, "GET", ts.URL+"/v1/plans/"+created.Plan, nil, &info); code != http.StatusOK {
		t.Fatalf("get: %d %s", code, raw)
	}
	if info.Plan != created.Plan || info.Sources != 150 {
		t.Fatalf("get %+v", info)
	}

	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/plans/"+created.Plan, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", code)
	}
	if code, _ := doJSON(t, "GET", ts.URL+"/v1/plans/"+created.Plan, nil, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", code)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/plans/"+created.Plan, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: %d, want 404", code)
	}
}

// TestServerSolveMatchesLibrary pins the end-to-end identity: potentials
// served over HTTP — by plan key or inline geometry, any kernel — are
// byte-identical to barytree.Solve (JSON float64 encoding is shortest-
// round-trip, so the bits survive the wire).
func TestServerSolveMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s, q := testSet(200, 37)
	p := testParams()

	var plan PlanResponse
	doJSON(t, "POST", ts.URL+"/v1/plans", PlanRequest{
		GeometrySpec: GeometrySpec{Targets: pointsSpec(s), Params: paramsSpec(p)},
	}, &plan)

	cases := []struct {
		name string
		spec *KernelSpec
		k    kernel.Kernel
	}{
		{"coulomb by key", &KernelSpec{Name: "coulomb"}, kernel.Coulomb{}},
		{"yukawa by key", &KernelSpec{Name: "yukawa", Kappa: 0.5}, kernel.Yukawa{Kappa: 0.5}},
		{"default kernel", nil, kernel.Coulomb{}},
	}
	for _, tc := range cases {
		var sol SolveResponse
		code, raw := doJSON(t, "POST", ts.URL+"/v1/solve", SolveRequest{
			Plan: plan.Plan, Kernel: tc.spec, Charges: q,
		}, &sol)
		if code != http.StatusOK {
			t.Fatalf("%s: %d %s", tc.name, code, raw)
		}
		if sol.Cache != "hit" || sol.Coalesced < 1 {
			t.Fatalf("%s: response %+v, want a cache hit", tc.name, sol)
		}
		want := refSolve(t, tc.k, s, q, p)
		for i := range want {
			if sol.Phi[i] != want[i] {
				t.Fatalf("%s: phi[%d] served %v != library %v", tc.name, i, sol.Phi[i], want[i])
			}
		}
	}

	// Inline geometry: first solve builds (cache miss), repeat hits, both
	// identical to the library.
	s2, q2 := testSet(180, 41)
	inline := SolveRequest{
		GeometrySpec: GeometrySpec{Targets: pointsSpec(s2), Params: paramsSpec(p)},
		Charges:      q2,
	}
	var first, second SolveResponse
	doJSON(t, "POST", ts.URL+"/v1/solve", inline, &first)
	doJSON(t, "POST", ts.URL+"/v1/solve", inline, &second)
	if first.Cache != "miss" || second.Cache != "hit" {
		t.Fatalf("inline cache states %q then %q, want miss then hit", first.Cache, second.Cache)
	}
	want := refSolve(t, kernel.Coulomb{}, s2, q2, p)
	for i := range want {
		if first.Phi[i] != want[i] || second.Phi[i] != want[i] {
			t.Fatalf("inline phi[%d]: %v / %v != library %v", i, first.Phi[i], second.Phi[i], want[i])
		}
	}
}

func TestServerSolveErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s, q := testSet(120, 43)
	p := testParams()
	var plan PlanResponse
	doJSON(t, "POST", ts.URL+"/v1/plans", PlanRequest{
		GeometrySpec: GeometrySpec{Targets: pointsSpec(s), Params: paramsSpec(p)},
	}, &plan)

	cases := []struct {
		name string
		req  SolveRequest
		code int
		msg  string
	}{
		{"no charges", SolveRequest{Plan: plan.Plan}, http.StatusBadRequest, "charges required"},
		{"unknown plan", SolveRequest{Plan: "deadbeef", Charges: q}, http.StatusNotFound, "unknown plan"},
		{"no plan or geometry", SolveRequest{Charges: q}, http.StatusBadRequest, "either plan key or inline geometry"},
		{"bad kernel", SolveRequest{Plan: plan.Plan, Kernel: &KernelSpec{Name: "nope"}, Charges: q}, http.StatusBadRequest, "unknown kernel"},
		{"short charges", SolveRequest{Plan: plan.Plan, Charges: q[:7]}, http.StatusBadRequest, "120"},
	}
	for _, tc := range cases {
		code, raw := doJSON(t, "POST", ts.URL+"/v1/solve", tc.req, nil)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.code, raw)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || !strings.Contains(er.Error, tc.msg) {
			t.Errorf("%s: body %s, want error containing %q", tc.name, raw, tc.msg)
		}
	}

	// Ragged geometry on the plan path.
	code, raw := doJSON(t, "POST", ts.URL+"/v1/plans", PlanRequest{
		GeometrySpec: GeometrySpec{Targets: &PointsSpec{X: s.X, Y: s.Y[:50], Z: s.Z}},
	}, nil)
	if code != http.StatusBadRequest || !strings.Contains(string(raw), "ragged") {
		t.Errorf("ragged geometry: %d %s, want 400 mentioning ragged arrays", code, raw)
	}
}

// TestServerBackpressure fills the admission semaphore directly and checks
// the deterministic 429 + Retry-After path, then drains it and checks
// recovery.
func TestServerBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxInFlight: 2})
	s, q := testSet(120, 47)
	p := testParams()
	var plan PlanResponse
	doJSON(t, "POST", ts.URL+"/v1/plans", PlanRequest{
		GeometrySpec: GeometrySpec{Targets: pointsSpec(s), Params: paramsSpec(p)},
	}, &plan)

	// Occupy both slots as if two solves were in flight.
	srv.admit <- struct{}{}
	srv.admit <- struct{}{}

	req, _ := json.Marshal(SolveRequest{Plan: plan.Plan, Charges: q})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: %d %s, want 429", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}

	// Drain one slot: the next request is admitted and solves.
	<-srv.admit
	var sol SolveResponse
	if code, raw := doJSON(t, "POST", ts.URL+"/v1/solve", SolveRequest{Plan: plan.Plan, Charges: q}, &sol); code != http.StatusOK {
		t.Fatalf("solve after drain: %d %s", code, raw)
	}
	<-srv.admit // release the remaining held slot

	// The rejection is visible on /metrics.
	if !strings.Contains(scrape(t, ts), "bltcd_rejected_total 1") {
		t.Error("rejection not counted on /metrics")
	}
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

func TestServerMetricsAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	s, q := testSet(120, 53)
	p := testParams()
	var sol SolveResponse
	doJSON(t, "POST", ts.URL+"/v1/solve", SolveRequest{
		GeometrySpec: GeometrySpec{Targets: pointsSpec(s), Params: paramsSpec(p)},
		Charges:      q,
	}, &sol)

	metrics := scrape(t, ts)
	for _, want := range []string{
		"bltcd_solve_requests_total 1",
		"bltcd_solve_ok_total 1",
		"bltcd_solve_plan_misses_total 1",
		"bltcd_plan_cache_size 1",
		"bltcd_coalesce_groups_total 1",
		"bltcd_solve_latency_seconds_count 1",
		`bltcd_trace{counter="serve.plan.builds"} 1`,
		`bltcd_trace{counter="serve.solves"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("/trace is not Chrome trace JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, ev := range doc.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"serve.plan.build", "serve.precompute", "serve.compute"} {
		if !names[want] {
			t.Errorf("/trace missing span %q (have %v)", want, names)
		}
	}

	if code, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz: %d", code)
	}
}

// TestServerConcurrentSolves is the -race plan-cache stress: goroutines
// hammer one daemon across two shared plans with distinct charge vectors;
// every response must be byte-identical to the library path.
func TestServerConcurrentSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxInFlight: 64})
	p := testParams()

	type geom struct {
		s    *PointsSpec
		key  string
		want [][]float64 // per charge vector
		q    [][]float64
	}
	geoms := make([]*geom, 2)
	for gi := range geoms {
		s, _ := testSet(160, 59+int64(gi))
		g := &geom{s: pointsSpec(s)}
		var plan PlanResponse
		doJSON(t, "POST", ts.URL+"/v1/plans", PlanRequest{
			GeometrySpec: GeometrySpec{Targets: g.s, Params: paramsSpec(p)},
		}, &plan)
		g.key = plan.Plan
		for v := 0; v < 3; v++ {
			_, q := testSet(160, 300+int64(10*gi+v))
			g.q = append(g.q, q)
			g.want = append(g.want, refSolve(t, kernel.Coulomb{}, s, q, p))
		}
		geoms[gi] = g
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				g := geoms[(w+r)%len(geoms)]
				v := (w * r) % len(g.q)
				var sol SolveResponse
				code, raw := doJSON(t, "POST", ts.URL+"/v1/solve", SolveRequest{Plan: g.key, Charges: g.q[v]}, &sol)
				if code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: %d %s", w, code, raw)
					return
				}
				for i := range g.want[v] {
					if sol.Phi[i] != g.want[v][i] {
						errs <- fmt.Errorf("worker %d phi[%d]: %v != %v", w, i, sol.Phi[i], g.want[v][i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
