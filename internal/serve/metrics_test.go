package serve

import (
	"math"
	"strings"
	"testing"
)

// TestHistBucketFloor: the underflow bucket catches zero, negative and
// at-floor samples.
func TestHistBucketFloor(t *testing.T) {
	for _, sec := range []float64{0, -1, -1e-9, histFloor, histFloor / 2} {
		if got := histBucket(sec); got != 0 {
			t.Errorf("histBucket(%g) = %d, want 0 (underflow bucket)", sec, got)
		}
	}
	if got := histBucket(histFloor * 1.0001); got != 1 {
		t.Errorf("histBucket(just above floor) = %d, want 1", got)
	}
}

// TestHistBucketEdges pins the log-bucket boundary semantics: a value
// just below bound i lands in bucket i, and the exact bound lands in
// bucket i or i+1 (the float log cannot promise which side of the integer
// 10*log10 falls on), never further away.
func TestHistBucketEdges(t *testing.T) {
	for i := 1; i < histBucketsTotal-1; i++ {
		bound := histBound(i)
		if got := histBucket(bound * (1 - 1e-9)); got != i {
			t.Errorf("histBucket(%g just below bound %d) = %d, want %d", bound, i, got, i)
		}
		got := histBucket(bound)
		if got != i && got != i+1 {
			t.Errorf("histBucket(exact bound %d = %g) = %d, want %d or %d", i, bound, got, i, i+1)
		}
	}
}

// TestHistBucketMonotonic: bucket index never decreases as latency grows.
func TestHistBucketMonotonic(t *testing.T) {
	prev := histBucket(0)
	for sec := 1e-7; sec < 1e3; sec *= 1.07 {
		b := histBucket(sec)
		if b < prev {
			t.Fatalf("histBucket not monotonic: histBucket(%g) = %d after %d", sec, b, prev)
		}
		if b < 0 || b >= histBucketsTotal {
			t.Fatalf("histBucket(%g) = %d out of range [0,%d)", sec, b, histBucketsTotal)
		}
		prev = b
	}
}

// TestHistBucketOverflow: everything at or beyond the 100s ceiling lands
// in the last bucket, however extreme.
func TestHistBucketOverflow(t *testing.T) {
	last := histBucketsTotal - 1
	for _, sec := range []float64{200, 1e3, 1e9, math.MaxFloat64} {
		if got := histBucket(sec); got != last {
			t.Errorf("histBucket(%g) = %d, want overflow bucket %d", sec, got, last)
		}
	}
	// The ceiling itself maps to the last in-range bucket or overflow,
	// depending on float rounding; both are within the clamp.
	ceil := histBound(histBucketsTotal - 2)
	if got := histBucket(ceil); got != last && got != last-1 {
		t.Errorf("histBucket(ceiling %g) = %d, want %d or %d", ceil, got, last-1, last)
	}
}

// TestObserveSolvePreservesCount: every observation lands in exactly one
// bucket.
func TestObserveSolvePreservesCount(t *testing.T) {
	var m Metrics
	secs := []float64{0, 1e-7, 1e-6, 3e-6, 1e-3, 0.5, 1, 42, 99, 101, 1e6}
	for _, s := range secs {
		m.ObserveSolve(s, false)
	}
	var total uint64
	for _, n := range m.latHist {
		total += n
	}
	if total != m.latCount || m.latCount != uint64(len(secs)) {
		t.Errorf("bucket sum %d, latCount %d, observations %d: must all agree", total, m.latCount, len(secs))
	}
}

// TestQuantileZeroLatency documents the floor clamp: a histogram holding
// only sub-floor samples reports histFloor (1µs), the smallest value the
// layout can resolve, not zero.
func TestQuantileZeroLatency(t *testing.T) {
	var m Metrics
	for i := 0; i < 10; i++ {
		m.ObserveSolve(0, false)
	}
	m.mu.Lock()
	got := m.quantileLocked(0.5)
	m.mu.Unlock()
	if got != histFloor {
		t.Errorf("p50 of all-zero latencies = %g, want histFloor %g (resolution floor)", got, histFloor)
	}
}

// TestQuantileOverflowBucket: in the unbounded last bucket the
// interpolation ceiling is the observed max, so q=1 returns it exactly.
func TestQuantileOverflowBucket(t *testing.T) {
	var m Metrics
	m.ObserveSolve(200, false)
	m.ObserveSolve(400, false)
	m.mu.Lock()
	p100 := m.quantileLocked(1)
	p50 := m.quantileLocked(0.5)
	m.mu.Unlock()
	if p100 != 400 {
		t.Errorf("q=1 over overflow bucket = %g, want latMax 400", p100)
	}
	// Interpolation inside the overflow bucket stays within (lo, latMax].
	lo := histBound(histBucketsTotal - 2)
	if p50 <= lo || p50 > 400 {
		t.Errorf("q=0.5 over overflow bucket = %g, want within (%g, 400]", p50, lo)
	}
}

// TestQuantileInterpolationBounds: estimates stay inside the winning
// bucket's geometric bounds.
func TestQuantileInterpolationBounds(t *testing.T) {
	var m Metrics
	for i := 0; i < 100; i++ {
		m.ObserveSolve(3e-3, false)
	}
	b := histBucket(3e-3)
	lo, hi := histBound(b-1), histBound(b)
	m.mu.Lock()
	got := m.quantileLocked(0.9)
	m.mu.Unlock()
	// hi is clamped to latMax = 3e-3 inside the estimator.
	if hi > 3e-3 {
		hi = 3e-3
	}
	if got < lo || got > hi {
		t.Errorf("p90 = %g outside its bucket bounds [%g, %g]", got, lo, hi)
	}
}

// TestExactQuantile covers the sorted-sample primitive the load harness
// uses.
func TestExactQuantile(t *testing.T) {
	sample := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		if got := Quantile(sample, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %g, want 0", got)
	}
	// The input must not be reordered.
	if sample[0] != 4 || sample[3] != 2 {
		t.Errorf("Quantile mutated its input: %v", sample)
	}
}

// TestWriteTextLatencyLines: the exposition includes the count/sum/max
// and quantile lines derived from the histogram.
func TestWriteTextLatencyLines(t *testing.T) {
	var m Metrics
	m.ObserveSolve(2e-3, true)
	m.ObserveSolve(8e-3, false)
	var sb strings.Builder
	m.WriteText(&sb, "extra_line 1")
	out := sb.String()
	for _, want := range []string{
		"bltcd_solve_latency_seconds_count 2",
		"bltcd_solve_latency_seconds_max 0.008",
		`bltcd_solve_latency_seconds{quantile="0.5"}`,
		`bltcd_solve_latency_seconds{quantile="0.99"}`,
		"bltcd_solve_plan_hits_total 1",
		"bltcd_solve_plan_misses_total 1",
		"extra_line 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
