package serve

import (
	"fmt"
	"sync"
	"testing"

	"barytree"
	"barytree/internal/core"
	"barytree/internal/kernel"
)

// refSolve computes the reference potentials through the one-shot library
// path (fresh setup per call — the baseline every served result must match
// byte-for-byte).
func refSolve(t *testing.T, k kernel.Kernel, s *barytree.Particles, q []float64, p core.Params) []float64 {
	t.Helper()
	set := withCharges(s, q)
	phi, err := barytree.Solve(k, set, set, p)
	if err != nil {
		t.Fatal(err)
	}
	return phi
}

// TestGroupMatchesSolo pins the coalescing invariant: a request's
// potentials are byte-identical whether its compute pass ran alone or
// shared with any mix of other requests (other charges, other kernels).
func TestGroupMatchesSolo(t *testing.T) {
	s, _ := testSet(300, 21)
	p := testParams()
	pl, err := core.NewPlan(s, s, p)
	if err != nil {
		t.Fatal(err)
	}

	kernels := []kernel.Kernel{kernel.Coulomb{}, kernel.Yukawa{Kappa: 0.5}, kernel.Coulomb{}, kernel.Gaussian{Sigma: 1.2}}
	const jobs = 4
	charges := make([][]float64, jobs)
	for i := range charges {
		_, q := testSet(300, 100+int64(i))
		charges[i] = q
	}

	newJob := func(i int) *solveJob {
		return &solveJob{kernel: kernels[i], charges: charges[i], done: make(chan struct{})}
	}

	// Solo: each job in its own group pass.
	var q planQueue
	solo := make([][]float64, jobs)
	for i := 0; i < jobs; i++ {
		j := newJob(i)
		q.runGroup(pl, []*solveJob{j}, 0, nil)
		if j.err != nil {
			t.Fatalf("solo job %d: %v", i, j.err)
		}
		if j.groupSize != 1 {
			t.Fatalf("solo job %d reports group size %d", i, j.groupSize)
		}
		solo[i] = j.phi
	}

	// Grouped: all jobs in one pass.
	grouped := make([]*solveJob, jobs)
	for i := range grouped {
		grouped[i] = newJob(i)
	}
	var rep groupReport
	q.runGroup(pl, grouped, 0, func(r groupReport) { rep = r })
	if rep.Size != jobs {
		t.Fatalf("group pass reports size %d, want %d", rep.Size, jobs)
	}

	for i, j := range grouped {
		if j.err != nil {
			t.Fatalf("grouped job %d: %v", i, j.err)
		}
		if j.groupSize != jobs {
			t.Fatalf("grouped job %d reports group size %d, want %d", i, j.groupSize, jobs)
		}
		want := refSolve(t, kernels[i], s, charges[i], p)
		for n := range want {
			if j.phi[n] != solo[i][n] {
				t.Fatalf("job %d phi[%d]: grouped %v != solo %v", i, n, j.phi[n], solo[i][n])
			}
			if j.phi[n] != want[n] {
				t.Fatalf("job %d phi[%d]: served %v != library %v", i, n, j.phi[n], want[n])
			}
		}
	}
}

// TestGroupBadChargesFailFast pins that an invalid request drops out of
// its group before compute without poisoning the other members.
func TestGroupBadChargesFailFast(t *testing.T) {
	s, q0 := testSet(200, 23)
	p := testParams()
	pl, err := core.NewPlan(s, s, p)
	if err != nil {
		t.Fatal(err)
	}

	good := &solveJob{kernel: kernel.Coulomb{}, charges: q0, done: make(chan struct{})}
	bad := &solveJob{kernel: kernel.Coulomb{}, charges: q0[:50], done: make(chan struct{})}
	var q planQueue
	q.runGroup(pl, []*solveJob{bad, good}, 0, nil)

	if bad.err == nil {
		t.Fatal("short charge vector accepted")
	}
	if good.err != nil {
		t.Fatalf("good job failed alongside a bad one: %v", good.err)
	}
	if good.groupSize != 1 {
		t.Fatalf("good job reports group size %d, want 1 (bad job dropped before compute)", good.groupSize)
	}
	want := refSolve(t, kernel.Coulomb{}, s, q0, p)
	for n := range want {
		if good.phi[n] != want[n] {
			t.Fatalf("phi[%d]: %v != library %v", n, good.phi[n], want[n])
		}
	}
}

// TestQueueConcurrentSubmit hammers one plan queue from many goroutines
// under -race: every result must be byte-identical to the library path no
// matter how the group-commit batching slices the arrivals.
func TestQueueConcurrentSubmit(t *testing.T) {
	s, _ := testSet(200, 29)
	p := testParams()
	pl, err := core.NewPlan(s, s, p)
	if err != nil {
		t.Fatal(err)
	}

	const vectors = 6
	charges := make([][]float64, vectors)
	want := make([][]float64, vectors)
	for i := range charges {
		_, q := testSet(200, 200+int64(i))
		charges[i] = q
		want[i] = refSolve(t, kernel.Coulomb{}, s, q, p)
	}

	var q planQueue
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				i := (g + r) % vectors
				job := &solveJob{kernel: kernel.Coulomb{}, charges: charges[i]}
				q.submit(pl, 0, job, nil)
				if job.err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, job.err)
					return
				}
				for n := range want[i] {
					if job.phi[n] != want[i][n] {
						errs <- fmt.Errorf("goroutine %d vector %d phi[%d]: %v != %v", g, i, n, job.phi[n], want[i][n])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
