package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"barytree/internal/core"
)

// DefaultMaxPlans bounds the plan cache when Config.MaxPlans is zero. A
// cached plan for N particles holds the tree, batches, interaction lists
// and cluster grids — roughly the setup-phase footprint of one solve — so
// the bound is a memory bound, not a correctness knob.
const DefaultMaxPlans = 16

// CacheStats are the plan cache's monotonic counters.
type CacheStats struct {
	// Hits counts GetOrBuild/Get calls that found the key resident
	// (including plans still building — the caller waits, it does not
	// rebuild).
	Hits uint64
	// Misses counts GetOrBuild calls that had to build.
	Misses uint64
	// Builds counts setup phases actually run (== Misses; kept separate so
	// the invariant is checkable from /metrics).
	Builds uint64
	// BuildErrors counts builds that failed; failed keys are removed so a
	// later request retries.
	BuildErrors uint64
	// Evictions counts plans dropped by the LRU bound.
	Evictions uint64
	// Invalidations counts explicit DELETE /v1/plans/{key} removals.
	Invalidations uint64
}

// planEntry is one resident plan: the immutable core.Plan, the coalescing
// queue of in-flight solves against it, and cache bookkeeping. Fields
// below the comment are guarded by the owning cache's mutex.
type planEntry struct {
	// Key is the entry's geometry hash (see GeometryKey).
	Key string

	// ready is closed when plan/err are set; readers that find the entry
	// mid-build wait on it instead of building again (single-flight).
	ready chan struct{}
	plan  *core.Plan
	err   error

	// queue coalesces concurrent solves against this plan.
	queue planQueue

	// hits counts cache lookups that returned this entry (atomic: read by
	// response snapshots without the cache lock).
	hits atomic.Uint64

	// guarded by PlanCache.mu:
	lastUsed uint64
	building bool
}

// Plan returns the built plan (nil until ready is closed or on build
// error). Callers must have waited on ready.
func (e *planEntry) Plan() *core.Plan { return e.plan }

// PlanCache is a concurrency-safe, LRU-bounded, single-flight cache of
// immutable Plans keyed by geometry hash.
//
// Sharing model: entries hand out *core.Plan pointers that remain valid
// after eviction or invalidation — a Plan is immutable and garbage
// collected, so eviction only severs the key; solves already holding the
// entry finish on it unaffected, and the next request for that key
// rebuilds a fresh entry. Concurrent requests for one missing key build
// exactly once: the first caller runs the setup phase, the rest block on
// the entry's ready channel.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	seq     uint64 // logical LRU clock: bumped per access
	entries map[string]*planEntry
	stats   CacheStats
}

// NewPlanCache returns a cache bounded to max resident plans (max <= 0
// selects DefaultMaxPlans).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultMaxPlans
	}
	return &PlanCache{max: max, entries: make(map[string]*planEntry)}
}

// GetOrBuild returns the entry for key, building it with build() if
// absent. hit reports whether the key was already resident (possibly still
// building — the call then waits for the in-flight build instead of
// duplicating it). On build failure the key is removed so a later call can
// retry, and every waiter receives the same error.
func (c *PlanCache) GetOrBuild(key string, build func() (*core.Plan, error)) (e *planEntry, hit bool, err error) {
	c.mu.Lock()
	c.seq++
	if e, ok := c.entries[key]; ok {
		e.lastUsed = c.seq
		e.hits.Add(1)
		c.stats.Hits++
		c.mu.Unlock()
		<-e.ready
		return e, true, e.err
	}
	c.stats.Misses++
	c.stats.Builds++
	e = &planEntry{Key: key, ready: make(chan struct{}), lastUsed: c.seq, building: true}
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	pl, buildErr := build()

	c.mu.Lock()
	e.plan, e.err = pl, buildErr
	e.building = false
	if buildErr != nil {
		// Only remove if the slot still holds this entry (it may already
		// have been invalidated and replaced while building).
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
		}
		c.stats.BuildErrors++
	}
	c.mu.Unlock()
	close(e.ready)
	return e, false, buildErr
}

// Get returns the resident entry for key, or nil. It waits out an
// in-flight build; a nil return means the key is not cached (or its build
// failed).
func (c *PlanCache) Get(key string) *planEntry {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.seq++
		e.lastUsed = c.seq
		e.hits.Add(1)
		c.stats.Hits++
	}
	c.mu.Unlock()
	if !ok {
		return nil
	}
	<-e.ready
	if e.err != nil {
		return nil
	}
	return e
}

// Invalidate removes key from the cache, reporting whether it was
// resident. In-flight solves holding the entry complete unaffected; the
// next request for the geometry rebuilds.
func (c *PlanCache) Invalidate(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok {
		return false
	}
	delete(c.entries, key)
	c.stats.Invalidations++
	return true
}

// EntryInfo is a point-in-time snapshot of one cached plan, for the
// listing endpoint.
type EntryInfo struct {
	Key      string
	Hits     uint64
	Building bool
	Targets  int
	Sources  int
	Nodes    int
	Batches  int
}

// List returns snapshots of all resident entries sorted by key (the map
// iteration is unordered; sorting keeps the endpoint deterministic).
func (c *PlanCache) List() []EntryInfo {
	c.mu.Lock()
	infos := make([]EntryInfo, 0, len(c.entries))
	for _, e := range c.entries {
		info := EntryInfo{Key: e.Key, Hits: e.hits.Load(), Building: e.building}
		if !e.building && e.plan != nil {
			info.Targets = e.plan.Batches.Targets.Len()
			info.Sources = e.plan.Sources.Particles.Len()
			info.Nodes = len(e.plan.Sources.Nodes)
			info.Batches = len(e.plan.Batches.Batches)
		}
		infos = append(infos, info)
	}
	c.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos
}

// Stats returns a snapshot of the cache counters and the current size.
func (c *PlanCache) Stats() (CacheStats, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, len(c.entries)
}

// evictLocked drops least-recently-used ready entries until the cache fits
// its bound. Entries mid-build are never evicted (their builder holds
// them); if everything is building the cache temporarily exceeds the
// bound rather than stall admission.
func (c *PlanCache) evictLocked() {
	for len(c.entries) > c.max {
		var victim *planEntry
		for _, e := range c.entries {
			if e.building {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			return
		}
		delete(c.entries, victim.Key)
		c.stats.Evictions++
	}
}
