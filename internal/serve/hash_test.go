package serve

import (
	"math"
	"testing"

	"barytree/internal/core"
)

func TestGeometryKeyDeterministic(t *testing.T) {
	s, _ := testSet(200, 3)
	p := testParams()
	k1 := GeometryKey(s, s, p)
	k2 := GeometryKey(s, s, p)
	if k1 != k2 {
		t.Fatalf("same inputs hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key is %d hex chars, want 64", len(k1))
	}

	// A copy of the data (different backing arrays, same bits) must map to
	// the same plan.
	c, _ := testSet(200, 3)
	if got := GeometryKey(c, c, p); got != k1 {
		t.Fatalf("bit-identical copy hashed differently")
	}
}

func TestGeometryKeySensitivity(t *testing.T) {
	s, _ := testSet(100, 5)
	p := testParams()
	base := GeometryKey(s, s, p)

	perturb := func(name string, f func(s2 *core.Params, pts *[3][]float64)) {
		t.Helper()
		c, _ := testSet(100, 5)
		p2 := p
		coords := [3][]float64{c.X, c.Y, c.Z}
		f(&p2, &coords)
		c.X, c.Y, c.Z = coords[0], coords[1], coords[2]
		if GeometryKey(c, c, p2) == base {
			t.Errorf("%s change did not change the key", name)
		}
	}

	perturb("last-ulp coordinate", func(_ *core.Params, pts *[3][]float64) {
		pts[0][42] = math.Nextafter(pts[0][42], 2)
	})
	perturb("theta", func(p2 *core.Params, _ *[3][]float64) { p2.Theta = 0.8 })
	perturb("degree", func(p2 *core.Params, _ *[3][]float64) { p2.Degree++ })
	perturb("leaf size", func(p2 *core.Params, _ *[3][]float64) { p2.LeafSize++ })
	perturb("batch size", func(p2 *core.Params, _ *[3][]float64) { p2.BatchSize++ })
}

func TestGeometryKeyIgnoresChargesAndWorkers(t *testing.T) {
	s, q := testSet(100, 7)
	p := testParams()
	base := GeometryKey(s, s, p)

	if got := GeometryKey(withCharges(s, q), withCharges(s, q), p); got != base {
		t.Errorf("charges changed the key: plans are charge-independent")
	}
	p2 := p
	p2.Workers = 8
	if got := GeometryKey(s, s, p2); got != base {
		t.Errorf("workers changed the key: output is identical for every worker count")
	}
}

func TestGeometryKeyDistinguishesTargetsFromSources(t *testing.T) {
	a, _ := testSet(100, 11)
	b, _ := testSet(100, 13)
	p := testParams()
	if GeometryKey(a, b, p) == GeometryKey(b, a, p) {
		t.Fatalf("swapping targets and sources kept the key")
	}
}
