package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// latency histogram layout: logarithmic buckets from 1µs to 100s, ten per
// decade (ratio 10^0.1 ≈ 1.26), plus an underflow and an overflow bucket.
// Quantiles are estimated by log-linear interpolation inside the bucket,
// which is accurate to ~±13% — plenty for p50/p99 serving dashboards; the
// load harness records exact per-request latencies for the BENCH record.
const (
	histDecades      = 8                             // 1e-6 .. 1e2 seconds
	histPerDecade    = 10                            //
	histFloor        = 1e-6                          // seconds
	histBucketsTotal = histDecades*histPerDecade + 2 // + under/overflow
)

// histBound returns the upper bound of bucket i (i in [0, total-2); the
// last bucket is unbounded).
func histBound(i int) float64 {
	return histFloor * math.Pow(10, float64(i)/histPerDecade)
}

// histBucket maps a latency in seconds to its bucket index.
func histBucket(sec float64) int {
	if sec <= histFloor {
		return 0
	}
	i := 1 + int(math.Floor(histPerDecade*math.Log10(sec/histFloor)))
	// sec > histFloor makes the true index >= 1; anything else means the
	// division overflowed to +Inf (or sec was NaN) and int() produced
	// garbage — those belong in the overflow bucket with the rest of the
	// absurd latencies.
	if i >= histBucketsTotal || i < 1 {
		return histBucketsTotal - 1
	}
	return i
}

// Metrics aggregates the serving counters exposed on /metrics. All methods
// are safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	solves      uint64 // completed solve requests (any status)
	solveOK     uint64
	clientErr   uint64 // 4xx other than rejection
	serverErr   uint64
	rejected    uint64 // 429 backpressure rejections
	cacheHits   uint64 // solve-path plan reuse
	cacheMisses uint64 // solve-path plan builds

	groups       uint64 // coalesced compute passes
	groupJobs    uint64 // requests served by those passes
	maxGroupSize int

	latCount uint64
	latSum   float64
	latMax   float64
	latHist  [histBucketsTotal]uint64
}

// ObserveSolve records one completed solve: wall latency, the size of the
// group pass that served it, and whether its plan came from cache.
func (m *Metrics) ObserveSolve(sec float64, cacheHit bool) {
	m.mu.Lock()
	m.solves++
	m.solveOK++
	if cacheHit {
		m.cacheHits++
	} else {
		m.cacheMisses++
	}
	m.latCount++
	m.latSum += sec
	if sec > m.latMax {
		m.latMax = sec
	}
	m.latHist[histBucket(sec)]++
	m.mu.Unlock()
}

// ObserveGroup records one coalesced compute pass of the given size.
func (m *Metrics) ObserveGroup(size int) {
	m.mu.Lock()
	m.groups++
	m.groupJobs += uint64(size)
	if size > m.maxGroupSize {
		m.maxGroupSize = size
	}
	m.mu.Unlock()
}

// ObserveError records one failed solve request (client = 4xx).
func (m *Metrics) ObserveError(client bool) {
	m.mu.Lock()
	m.solves++
	if client {
		m.clientErr++
	} else {
		m.serverErr++
	}
	m.mu.Unlock()
}

// ObserveRejected records one 429 backpressure rejection.
func (m *Metrics) ObserveRejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// quantileLocked estimates the q-quantile (q in [0,1]) of the latency
// histogram by rank-walking the buckets and interpolating geometrically
// inside the winning bucket. Returns 0 with no observations.
func (m *Metrics) quantileLocked(q float64) float64 {
	if m.latCount == 0 {
		return 0
	}
	rank := q * float64(m.latCount)
	var cum float64
	for i, n := range m.latHist {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			frac := (rank - cum) / float64(n)
			lo, hi := histFloor, m.latMax
			if i > 0 {
				lo = histBound(i - 1)
			}
			if i < histBucketsTotal-1 {
				hi = histBound(i)
			}
			if hi > m.latMax {
				hi = m.latMax
			}
			if hi <= lo {
				return lo
			}
			return lo * math.Pow(hi/lo, frac)
		}
		cum = next
	}
	return m.latMax
}

// WriteText renders the metrics in a flat `name value` exposition format
// (one metric per line, sorted stable order — Prometheus-scrapable as
// untyped metrics). extra appends pre-formatted lines (cache and tracer
// counters composed by the server).
func (m *Metrics) WriteText(w io.Writer, extra ...string) {
	m.mu.Lock()
	lines := []string{
		fmt.Sprintf("bltcd_solve_requests_total %d", m.solves),
		fmt.Sprintf("bltcd_solve_ok_total %d", m.solveOK),
		fmt.Sprintf("bltcd_solve_client_errors_total %d", m.clientErr),
		fmt.Sprintf("bltcd_solve_server_errors_total %d", m.serverErr),
		fmt.Sprintf("bltcd_rejected_total %d", m.rejected),
		fmt.Sprintf("bltcd_solve_plan_hits_total %d", m.cacheHits),
		fmt.Sprintf("bltcd_solve_plan_misses_total %d", m.cacheMisses),
		fmt.Sprintf("bltcd_coalesce_groups_total %d", m.groups),
		fmt.Sprintf("bltcd_coalesce_jobs_total %d", m.groupJobs),
		fmt.Sprintf("bltcd_coalesce_max_group_size %d", m.maxGroupSize),
		fmt.Sprintf("bltcd_solve_latency_seconds_count %d", m.latCount),
		fmt.Sprintf("bltcd_solve_latency_seconds_sum %g", m.latSum),
		fmt.Sprintf("bltcd_solve_latency_seconds_max %g", m.latMax),
		fmt.Sprintf("bltcd_solve_latency_seconds{quantile=\"0.5\"} %g", m.quantileLocked(0.5)),
		fmt.Sprintf("bltcd_solve_latency_seconds{quantile=\"0.9\"} %g", m.quantileLocked(0.9)),
		fmt.Sprintf("bltcd_solve_latency_seconds{quantile=\"0.99\"} %g", m.quantileLocked(0.99)),
	}
	m.mu.Unlock()
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	for _, l := range extra {
		fmt.Fprintln(w, l)
	}
}

// Quantile returns the exact q-quantile (q in [0,1]) of a latency sample
// by sorting a copy — the load harness's percentile primitive (nearest-
// rank with linear interpolation). Returns 0 on an empty sample.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
