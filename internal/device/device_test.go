package device

import (
	"math"
	"sync/atomic"
	"testing"

	"barytree/internal/perfmodel"
)

func testSpec() perfmodel.GPUSpec {
	s := perfmodel.TitanV()
	return s
}

func TestLaunchExecutesAllBlocks(t *testing.T) {
	d := New(testSpec(), 4)
	var count atomic.Int64
	hit := make([]atomic.Bool, 1000)
	d.BeginPhase(0)
	d.Launch(LaunchSpec{Grid: 1000, Block: 32, FlopEq: 1000}, 0, func(b int) {
		count.Add(1)
		if hit[b].Swap(true) {
			t.Errorf("block %d executed twice", b)
		}
	})
	if count.Load() != 1000 {
		t.Fatalf("executed %d blocks, want 1000", count.Load())
	}
	for b := range hit {
		if !hit[b].Load() {
			t.Fatalf("block %d never executed", b)
		}
	}
}

func TestNilFnRecordsTimingOnly(t *testing.T) {
	d := New(testSpec(), 1)
	d.BeginPhase(0)
	d.Launch(LaunchSpec{Grid: 100, Block: 100, FlopEq: 1e9}, 0, nil)
	if done := d.Drain(); done <= 0 {
		t.Fatalf("drain = %g", done)
	}
	if st := d.StatsSnapshot(); st.Launches != 1 || st.FlopEq != 1e9 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDrainIdempotent(t *testing.T) {
	d := New(testSpec(), 1)
	d.BeginPhase(1.5)
	d.Launch(LaunchSpec{Grid: 10, Block: 10, FlopEq: 1e8}, 1.5, nil)
	a := d.Drain()
	b := d.Drain()
	if a != b {
		t.Fatalf("drain not idempotent: %g vs %g", a, b)
	}
	if a <= 1.5 {
		t.Fatalf("drain %g not after phase base", a)
	}
}

func TestDrainNoLaunchesReturnsBase(t *testing.T) {
	d := New(testSpec(), 1)
	d.BeginPhase(2.25)
	if got := d.Drain(); got != 2.25 {
		t.Fatalf("drain = %g, want base 2.25", got)
	}
}

func TestSaturatedKernelTimeMatchesRate(t *testing.T) {
	spec := testSpec()
	d := New(spec, 1)
	d.BeginPhase(0)
	work := 1e12
	// Fully saturating launch.
	d.Launch(LaunchSpec{Grid: spec.ThreadCapacity(), Block: 1, FlopEq: work}, 0, nil)
	got := d.Drain()
	want := spec.LaunchLatencyDevice + work/spec.EffectiveFlopRate()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("saturated kernel time %g, want %g", got, want)
	}
}

func TestSmallKernelRunsSlower(t *testing.T) {
	// A kernel with 1% of the device's thread capacity should take ~100x
	// longer than a saturating one for the same work.
	spec := testSpec()
	work := 1e10
	cap := spec.ThreadCapacity()

	d1 := New(spec, 1)
	d1.BeginPhase(0)
	d1.Launch(LaunchSpec{Grid: cap, Block: 1, FlopEq: work}, 0, nil)
	tBig := d1.Drain()

	d2 := New(spec, 1)
	d2.BeginPhase(0)
	d2.Launch(LaunchSpec{Grid: cap / 100, Block: 1, FlopEq: work}, 0, nil)
	tSmall := d2.Drain()

	ratio := tSmall / tBig
	if ratio < 50 || ratio > 150 {
		t.Fatalf("under-occupied kernel ratio %g, want ~100", ratio)
	}
}

func TestStreamsOverlapSmallKernels(t *testing.T) {
	// Four quarter-capacity kernels on one stream serialize; on four
	// streams they co-run and finish ~4x sooner.
	spec := testSpec()
	work := 1e10
	quarter := spec.ThreadCapacity() / 4

	serial := New(spec, 1)
	serial.BeginPhase(0)
	for i := 0; i < 4; i++ {
		serial.Launch(LaunchSpec{Stream: 0, Grid: quarter, Block: 1, FlopEq: work}, 0, nil)
	}
	tSerial := serial.Drain()

	par := New(spec, 1)
	par.BeginPhase(0)
	for i := 0; i < 4; i++ {
		par.Launch(LaunchSpec{Stream: i, Grid: quarter, Block: 1, FlopEq: work}, 0, nil)
	}
	tPar := par.Drain()

	speedup := tSerial / tPar
	if speedup < 3.5 || speedup > 4.5 {
		t.Fatalf("stream overlap speedup %g, want ~4", speedup)
	}
}

func TestStreamsShareSaturatedDevice(t *testing.T) {
	// Two saturating kernels on different streams cannot beat the device
	// throughput: total time equals the serial sum.
	spec := testSpec()
	work := 1e11
	cap := spec.ThreadCapacity()

	d := New(spec, 1)
	d.BeginPhase(0)
	d.Launch(LaunchSpec{Stream: 0, Grid: cap, Block: 1, FlopEq: work}, 0, nil)
	d.Launch(LaunchSpec{Stream: 1, Grid: cap, Block: 1, FlopEq: work}, 0, nil)
	got := d.Drain()
	want := spec.LaunchLatencyDevice + 2*work/spec.EffectiveFlopRate()
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("two saturating kernels finish at %g, want %g", got, want)
	}
}

func TestPerStreamFIFO(t *testing.T) {
	// A later kernel on the same stream cannot start before the earlier
	// one finishes, even if submitted long before.
	spec := testSpec()
	d := New(spec, 1)
	d.BeginPhase(0)
	work := 1e10
	d.Launch(LaunchSpec{Stream: 0, Grid: spec.ThreadCapacity(), Block: 1, FlopEq: work}, 0, nil)
	d.Launch(LaunchSpec{Stream: 0, Grid: spec.ThreadCapacity(), Block: 1, FlopEq: work}, 0, nil)
	got := d.Drain()
	single := work / spec.EffectiveFlopRate()
	if got < 2*single {
		t.Fatalf("same-stream kernels overlapped: %g < %g", got, 2*single)
	}
}

func TestLateSubmissionDelaysStart(t *testing.T) {
	spec := testSpec()
	d := New(spec, 1)
	d.BeginPhase(0)
	work := 1e9
	submit := 5.0
	d.Launch(LaunchSpec{Stream: 0, Grid: spec.ThreadCapacity(), Block: 1, FlopEq: work}, submit, nil)
	got := d.Drain()
	want := submit + spec.LaunchLatencyDevice + work/spec.EffectiveFlopRate()
	if math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("late submit finishes at %g, want %g", got, want)
	}
}

func TestCopyEnginesSerializeAndAccumulate(t *testing.T) {
	spec := testSpec()
	d := New(spec, 1)
	d.BeginPhase(0)
	a := d.CopyIn(0, 1<<20)
	b := d.CopyIn(0, 1<<20)
	if b <= a {
		t.Fatalf("copies did not serialize: %g then %g", a, b)
	}
	wantA := spec.TransferLatency + float64(1<<20)/spec.HtoDBandwidth
	if math.Abs(a-wantA)/wantA > 1e-9 {
		t.Fatalf("copy time %g, want %g", a, wantA)
	}
	// DtoH engine independent of HtoD.
	c := d.CopyOut(0, 1<<20)
	if math.Abs(c-wantA)/wantA > 1e-9 {
		t.Fatalf("DtoH copy %g should not wait for HtoD engine", c)
	}
	st := d.StatsSnapshot()
	if st.BytesHtoD != 2<<20 || st.BytesDtoH != 1<<20 || st.Transfers != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBeginPhaseResetsLaunches(t *testing.T) {
	d := New(testSpec(), 1)
	d.BeginPhase(0)
	d.Launch(LaunchSpec{Grid: 10, Block: 1, FlopEq: 1e9}, 0, nil)
	first := d.Drain()
	d.BeginPhase(first)
	if got := d.Drain(); got != first {
		t.Fatalf("new phase drain = %g, want %g", got, first)
	}
}

func TestInvalidLaunchPanics(t *testing.T) {
	d := New(testSpec(), 1)
	d.BeginPhase(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid geometry")
		}
	}()
	d.Launch(LaunchSpec{Grid: 1, Block: 0}, 0, nil)
}

func TestPrecisionString(t *testing.T) {
	if FP64.String() != "fp64" || FP32.String() != "fp32" {
		t.Fatalf("precision strings %q %q", FP64.String(), FP32.String())
	}
}

func TestAccumBuffer(t *testing.T) {
	a := NewAccumBuffer(8)
	if a.Len() != 8 {
		t.Fatalf("len = %d", a.Len())
	}
	a.Add(3, 1.5)
	a.Add(3, 2.5)
	if got := a.Load(3); got != 4 {
		t.Fatalf("load = %g", got)
	}
	a.Store(0, -1)
	vals := a.Values()
	if vals[0] != -1 || vals[3] != 4 || vals[1] != 0 {
		t.Fatalf("values = %v", vals)
	}
	dst := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	a.AddValues(dst)
	if dst[3] != 5 || dst[0] != 0 || dst[2] != 1 {
		t.Fatalf("addvalues = %v", dst)
	}
}

func TestAccumBufferConcurrent(t *testing.T) {
	a := NewAccumBuffer(1)
	d := New(testSpec(), 8)
	d.BeginPhase(0)
	d.Launch(LaunchSpec{Grid: 10000, Block: 1, FlopEq: 1}, 0, func(b int) {
		a.Add(0, 1)
	})
	if got := a.Load(0); got != 10000 {
		t.Fatalf("concurrent adds lost updates: %g", got)
	}
}
