package device

import (
	"math"
	"sync/atomic"
)

// AccumBuffer is a float64 accumulation buffer supporting lock-free atomic
// adds, mirroring the `#pragma acc atomic` updates the paper uses when
// several stream-concurrent kernels accumulate potentials for the same
// target particles.
type AccumBuffer struct {
	bits []atomic.Uint64
}

// NewAccumBuffer returns a zeroed buffer of length n.
func NewAccumBuffer(n int) *AccumBuffer {
	return &AccumBuffer{bits: make([]atomic.Uint64, n)}
}

// Len returns the buffer length.
func (a *AccumBuffer) Len() int { return len(a.bits) }

// Add atomically performs buf[i] += v via a compare-and-swap loop.
func (a *AccumBuffer) Add(i int, v float64) {
	for {
		old := a.bits[i].Load()
		val := math.Float64frombits(old) + v
		if a.bits[i].CompareAndSwap(old, math.Float64bits(val)) {
			return
		}
	}
}

// Load returns the current value of buf[i].
func (a *AccumBuffer) Load(i int) float64 {
	return math.Float64frombits(a.bits[i].Load())
}

// Store sets buf[i] = v (not atomic with respect to concurrent Add; use
// only during initialization).
func (a *AccumBuffer) Store(i int, v float64) {
	a.bits[i].Store(math.Float64bits(v))
}

// Values copies the buffer into a new []float64.
func (a *AccumBuffer) Values() []float64 {
	out := make([]float64, len(a.bits))
	for i := range a.bits {
		out[i] = math.Float64frombits(a.bits[i].Load())
	}
	return out
}

// AddValues copies the buffer into dst, adding elementwise.
func (a *AccumBuffer) AddValues(dst []float64) {
	for i := range a.bits {
		dst[i] += math.Float64frombits(a.bits[i].Load())
	}
}
