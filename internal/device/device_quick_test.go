package device

import (
	"math/rand"
	"testing"
	"testing/quick"

	"barytree/internal/perfmodel"
)

// randomLaunches builds a reproducible random launch set from a seed.
func randomLaunches(seed int64) []LaunchSpec {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(40)
	specs := make([]LaunchSpec, n)
	for i := range specs {
		specs[i] = LaunchSpec{
			Stream: rng.Intn(4),
			Grid:   1 + rng.Intn(4000),
			Block:  1 + rng.Intn(1024),
			FlopEq: float64(1+rng.Intn(1000)) * 1e6,
		}
	}
	return specs
}

func runSchedule(specs []LaunchSpec, streams int) float64 {
	spec := perfmodel.TitanV()
	spec.Streams = streams
	d := New(spec, 1)
	d.BeginPhase(0)
	for i, s := range specs {
		s.Stream = s.Stream % streams
		d.Launch(s, float64(i)*1e-6, nil)
	}
	return d.Drain()
}

// TestScheduleLowerBoundProperty: the device can never finish faster than
// total work divided by peak effective rate, nor before the last
// submission.
func TestScheduleLowerBoundProperty(t *testing.T) {
	spec := perfmodel.TitanV()
	f := func(seed int64) bool {
		specs := randomLaunches(seed)
		var work float64
		for _, s := range specs {
			work += s.FlopEq
		}
		finish := runSchedule(specs, 4)
		lower := work / spec.EffectiveFlopRate()
		lastSubmit := float64(len(specs)-1) * 1e-6
		return finish >= lower*(1-1e-9) && finish >= lastSubmit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScheduleUpperBoundProperty: the fluid schedule can never be slower
// than fully serial execution of under-occupied kernels.
func TestScheduleUpperBoundProperty(t *testing.T) {
	spec := perfmodel.TitanV()
	f := func(seed int64) bool {
		specs := randomLaunches(seed)
		var serial float64
		for _, s := range specs {
			u := float64(s.Grid*s.Block) / float64(spec.ThreadCapacity())
			if u > 1 {
				u = 1
			}
			serial += s.FlopEq / (spec.EffectiveFlopRate() * u)
		}
		serial += float64(len(specs))*1e-6 + spec.LaunchLatencyDevice
		finish := runSchedule(specs, 4)
		return finish <= serial*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMoreStreamsNeverSlowerProperty: with identical launches, 4 streams
// finish no later than 1 stream (stream parallelism only removes
// serialization constraints).
func TestMoreStreamsNeverSlowerProperty(t *testing.T) {
	f := func(seed int64) bool {
		specs := randomLaunches(seed)
		t1 := runSchedule(specs, 1)
		t4 := runSchedule(specs, 4)
		return t4 <= t1*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScheduleDeterministic: the simulator is a pure function of its
// inputs.
func TestScheduleDeterministic(t *testing.T) {
	specs := randomLaunches(7)
	a := runSchedule(specs, 4)
	b := runSchedule(specs, 4)
	if a != b {
		t.Fatalf("schedule not deterministic: %g vs %g", a, b)
	}
}
