package device

import (
	"testing"

	"barytree/internal/perfmodel"
	"barytree/internal/trace"
)

// TestDrainEmitsKernelSpans checks that Drain emits exactly one span per
// launch, that the spans reproduce the fluid-flow schedule (per-stream FIFO
// with no overlap within a stream, nothing past the Drain time), and that a
// second Drain without new launches emits nothing.
func TestDrainEmitsKernelSpans(t *testing.T) {
	d := New(perfmodel.TitanV(), 1)
	d.Tracer = trace.New()
	d.Rank = 3
	d.BeginPhase(0)

	const launches = 24
	submit := 0.0
	for i := 0; i < launches; i++ {
		d.Launch(LaunchSpec{
			Stream: i % d.Spec.Streams,
			Grid:   64 + i,
			Block:  128,
			FlopEq: 1e7 * float64(1+i%3),
			Label:  "direct",
		}, submit, nil)
		submit += d.Spec.LaunchOverheadHost
	}
	end := d.Drain()

	spans := d.Tracer.Spans()
	var kernels []trace.Span
	for _, s := range spans {
		if s.Cat == trace.CatKernel {
			kernels = append(kernels, s)
		}
	}
	if len(kernels) != launches {
		t.Fatalf("got %d kernel spans, want %d", len(kernels), launches)
	}
	lastEnd := map[string]float64{}
	for _, s := range kernels {
		if s.Name != "direct" {
			t.Errorf("span name %q, want %q", s.Name, "direct")
		}
		if s.Rank != 3 {
			t.Errorf("span rank %d, want 3", s.Rank)
		}
		if s.End <= s.Start {
			t.Errorf("span on %s has non-positive duration [%g, %g]", s.Track, s.Start, s.End)
		}
		if s.End > end+1e-12 {
			t.Errorf("span ends at %g after Drain time %g", s.End, end)
		}
		// Spans() sorts by start within a track, so FIFO-with-no-overlap
		// means each span starts at or after the previous one's end.
		if s.Start < lastEnd[s.Track]-1e-12 {
			t.Errorf("stream %s: span starting %g overlaps previous end %g",
				s.Track, s.Start, lastEnd[s.Track])
		}
		lastEnd[s.Track] = s.End
	}

	if again := d.Drain(); again != end {
		t.Errorf("second Drain returned %g, want %g", again, end)
	}
	if n := d.Tracer.Len(); n != len(spans) {
		t.Errorf("second Drain grew span count %d -> %d", len(spans), n)
	}
}

// TestTracingDoesNotChangeTiming runs the same launch sequence with and
// without a tracer and checks the Drain times agree exactly: attaching a
// tracer must never perturb modeled time.
func TestTracingDoesNotChangeTiming(t *testing.T) {
	run := func(tr *trace.Tracer) (float64, float64) {
		d := New(perfmodel.P100(), 1)
		d.Tracer = tr
		d.BeginPhase(0)
		submit := 0.0
		for i := 0; i < 40; i++ {
			d.Launch(LaunchSpec{
				Stream: i % d.Spec.Streams,
				Grid:   32 + 7*i,
				Block:  256,
				FlopEq: 5e6 * float64(1+i%5),
				Label:  "approx",
			}, submit, nil)
			submit += d.Spec.LaunchOverheadHost
		}
		in := d.CopyIn(submit, 1<<20)
		out := d.CopyOut(d.Drain(), 1<<18)
		return in, out
	}

	inA, outA := run(nil)
	inB, outB := run(trace.New())
	if inA != inB || outA != outB {
		t.Errorf("tracing changed modeled times: (%g, %g) vs (%g, %g)", inA, outA, inB, outB)
	}
}
